(* Standalone timed-event-graph tool — the role of the ERS toolbox
   (scscyc / eg_sim) on generic nets, not tied to a pipeline mapping. *)

open Cmdliner
open Petrinet

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"NET" ~doc:"Timed event graph file.")

let load path =
  match Teg_io.parse_file path with
  | Ok teg -> teg
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      exit 2

(* analyze: validation, boundedness, critical cycle (the scscyc role) *)

let analyze_run path =
  let teg = load path in
  Format.printf "transitions           : %d@." (Teg.n_transitions teg);
  Format.printf "places                : %d@." (Teg.n_places teg);
  (match Teg.validate teg with
  | Ok () -> Format.printf "structure             : live event graph@."
  | Error msg -> Format.printf "structure             : INVALID (%s)@." msg);
  (match Structural.boundedness teg with
  | Structural.Bounded -> Format.printf "marking space         : bounded (every place on a cycle)@."
  | Structural.Possibly_unbounded places ->
      Format.printf "marking space         : possibly unbounded (%d uncovered places)@."
        (List.length places));
  (match Cycle_time.analyse teg with
  | None -> Format.printf "period                : 0 (acyclic)@."
  | Some { Cycle_time.period; critical } ->
      Format.printf "period                : %.6g@." period;
      Format.printf "throughput            : %.6g firings of each transition per time unit@."
        (1.0 /. period);
      Format.printf "critical cycle        :";
      List.iter (fun e -> Format.printf " %s" (Teg.label teg e.Graphs.Digraph.dst)) critical;
      Format.printf "@.");
  0

let analyze_cmd =
  Cmd.v (Cmd.info "analyze" ~doc:"Validate a net and compute its critical cycle (scscyc role)")
    Term.(const analyze_run $ file_arg)

(* simulate: the eg_sim role *)

let simulate_run path iterations exponential seed =
  let teg = load path in
  let watch = List.init (Teg.n_transitions teg) Fun.id in
  let sample =
    if exponential then begin
      let g = Prng.create ~seed in
      Some
        (fun ~transition ~firing:_ ->
          Dist.sample (Dist.exponential_of_mean (Teg.time teg transition)) g)
    end
    else None
  in
  let series = Eg_sim.simulate ?sample teg ~iterations ~watch in
  let horizon = Array.fold_left (fun acc s -> max acc s.(iterations - 1)) 0.0 series in
  Format.printf "%d firings of every transition in %.6g time units@." iterations horizon;
  Format.printf "firing rate per transition: %.6g@." (float_of_int iterations /. horizon);
  List.iteri
    (fun k v ->
      Format.printf "  %-24s last completion %.6g@." (Teg.label teg v) series.(k).(iterations - 1))
    watch;
  0

let simulate_cmd =
  let iterations =
    Arg.(value & opt int 10_000 & info [ "iterations"; "n" ] ~doc:"Firings per transition.")
  in
  let exponential =
    Arg.(value & flag & info [ "exponential"; "e" ]
           ~doc:"Exponential firing times with the nominal durations as means.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  Cmd.v (Cmd.info "simulate" ~doc:"Simulate the dater recurrence (eg_sim role)")
    Term.(const simulate_run $ file_arg $ iterations $ exponential $ seed)

(* markov: exponential stationary analysis *)

let markov_run path cap =
  let teg = load path in
  let rates v =
    let t = Teg.time teg v in
    if t <= 0.0 then (
      Format.eprintf "error: transition %s has zero duration, no exponential rate@."
        (Teg.label teg v);
      exit 2)
    else 1.0 /. t
  in
  let chain =
    try Markov.Tpn_markov.analyse ~cap ~rates teg
    with Supervise.Error.Solver_error err ->
      Format.eprintf "error: %s@." (Supervise.Error.to_string err);
      (match err with
      | Supervise.Error.State_space_exceeded _ ->
          Format.eprintf "hint: retry with a larger --cap (currently %d)@." cap
      | _ -> ());
      exit 3
  in
  Format.printf "reachable markings    : %d (%d recurrent)@." (Markov.Tpn_markov.n_markings chain)
    (Markov.Tpn_markov.n_recurrent chain);
  for v = 0 to Teg.n_transitions teg - 1 do
    Format.printf "  %-24s firing rate %.6g  P(enabled) %.4f@." (Teg.label teg v)
      (Markov.Tpn_markov.firing_rate chain v)
      (Markov.Tpn_markov.enabled_probability chain v)
  done;
  0

let markov_cmd =
  let cap =
    Arg.(value & opt int 200_000 & info [ "cap" ] ~doc:"Marking exploration bound.")
  in
  Cmd.v
    (Cmd.info "markov" ~doc:"Exponential stationary analysis of the marking chain (Theorem 2)")
    Term.(const markov_run $ file_arg $ cap)

(* dot *)

let dot_run path =
  Format.printf "%a" (Dot.pp ?rankdir:None) (load path);
  0

let dot_cmd =
  Cmd.v (Cmd.info "dot" ~doc:"Print the net in Graphviz format") Term.(const dot_run $ file_arg)

let main =
  Cmd.group
    (Cmd.info "tpn_cli" ~version:"1.0.0" ~doc:"Timed event graph analysis tools")
    [ analyze_cmd; simulate_cmd; markov_cmd; dot_cmd ]

let () = exit (Cmd.eval' main)
