(* Command-line front end: analyse instances, run simulations, regenerate
   the paper's experiments. *)

open Cmdliner
open Streaming

let model_conv =
  let parse = function
    | "overlap" -> Ok Model.Overlap
    | "strict" -> Ok Model.Strict
    | s -> Error (`Msg (Printf.sprintf "unknown model %S (use overlap|strict)" s))
  in
  Arg.conv (parse, fun ppf m -> Format.pp_print_string ppf (Model.to_string m))

let model_arg =
  Arg.(value & opt model_conv Model.Overlap & info [ "model"; "m" ] ~docv:"MODEL"
         ~doc:"Execution model: overlap or strict.")

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"INSTANCE" ~doc:"Instance file.")

let load path =
  match Instance_io.parse_file path with
  | Ok mapping -> mapping
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      exit 2

(* --trace FILE: record span timelines for the run and export them as a
   Chrome trace_event file (chrome://tracing, Perfetto). *)

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Record a span timeline of the run and write it to $(docv) in Chrome \
               trace_event JSON (open in chrome://tracing or Perfetto).")

let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
      Obs.Trace.clear ();
      Obs.Trace.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Obs.Trace.set_enabled false;
          Obs.Trace.write_chrome path;
          Format.eprintf "trace: wrote %d events to %s@."
            (List.length (Obs.Trace.events ())) path)
        f

(* analyze *)

(* Typed solver failures reach the user as one actionable line (exit 3),
   never as a raw exception backtrace. *)
let solver_error_exit ~cap err =
  Format.eprintf "error: %s@." (Supervise.Error.to_string err);
  (match err with
  | Supervise.Error.State_space_exceeded _ ->
      Format.eprintf
        "hint: the marking space does not fit the exploration bound; retry with a larger --cap \
         (currently %d), reduce the replication factors, or use the overlap model's per-column \
         decomposition@."
        cap
  | Supervise.Error.No_convergence _ ->
      Format.eprintf "hint: the iterative solver stalled; a looser tolerance may help@."
  | Supervise.Error.Non_ergodic _ ->
      Format.eprintf "hint: the marking chain has no unique recurrent class@."
  | Supervise.Error.Numerical _ | Supervise.Error.Budget_exhausted _ -> ());
  exit 3

let analyze_run path model cap with_expo with_utilization with_sensitivity =
  let mapping = load path in
  Format.printf "%a" Mapping.pp mapping;
  let a = Deterministic.analyse mapping model in
  Format.printf "model                 : %s@." (Model.to_string model);
  Format.printf "rows (paths)          : %d@." (Mapping.rows mapping);
  Format.printf "deterministic period  : %.6g per data set@." a.Deterministic.period;
  Format.printf "deterministic rate    : %.6g data sets per time unit@." a.Deterministic.throughput;
  Format.printf "max resource cycle    : %.6g (%s)@." a.Deterministic.mct a.Deterministic.bottleneck;
  if Deterministic.has_critical_resource a then
    Format.printf "critical resource     : yes (the bottleneck is a physical resource)@."
  else
    Format.printf "critical resource     : NO (gap %.2f%%: replication alone limits the rate)@."
      (100.0 *. Deterministic.critical_resource_gap a);
  if with_expo then begin
    let expo =
      try
        match model with
        | Model.Overlap -> Expo.overlap_throughput mapping
        | Model.Strict -> Expo.strict_throughput ~cap mapping
      with Supervise.Error.Solver_error err -> solver_error_exit ~cap err
    in
    Format.printf "exponential rate      : %.6g@." expo;
    Format.printf "N.B.U.E. bounds       : [%.6g, %.6g] (Theorem 7)@." expo
      a.Deterministic.throughput
  end;
  if with_utilization then begin
    Format.printf "-- resource utilization (deterministic steady state) --@.";
    Format.printf "%a" Utilization.pp (Utilization.analyse mapping model)
  end;
  if with_sensitivity then begin
    Format.printf "-- upgrade gains (each resource 25%% faster, deterministic) --@.";
    Format.printf "%a" Sensitivity.pp (Sensitivity.upgrade_gains mapping model)
  end;
  0

let analyze_cmd =
  let cap =
    Arg.(value & opt int 2_000_000 & info [ "cap" ]
           ~doc:"Marking exploration bound for the strict exponential analysis.")
  in
  let with_expo =
    Arg.(value & flag & info [ "exponential"; "e" ]
           ~doc:"Also compute the exponential-case throughput (may be expensive for strict).")
  in
  let with_utilization =
    Arg.(value & flag & info [ "utilization"; "u" ]
           ~doc:"Also report the busy fraction of every resource ring.")
  in
  let with_sensitivity =
    Arg.(value & flag & info [ "sensitivity"; "s" ]
           ~doc:"Also rank the resources by the throughput gain of a 25% speedup.")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Deterministic (and optionally exponential) throughput of an instance")
    Term.(const analyze_run $ file_arg $ model_arg $ cap $ with_expo $ with_utilization
          $ with_sensitivity)

(* simulate *)

let law_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "deterministic" ] -> Ok `Deterministic
    | [ "exponential" ] -> Ok `Exponential
    | [ "uniform" ] -> Ok (`Uniform 0.5)
    | [ "uniform"; w ] -> (
        match float_of_string_opt w with
        | Some w when w > 0.0 && w <= 1.0 -> Ok (`Uniform w)
        | _ -> Error (`Msg "uniform:W needs a half-width W in (0,1]"))
    | [ "gamma"; k ] -> (
        match float_of_string_opt k with
        | Some k when k > 0.0 -> Ok (`Gamma k)
        | _ -> Error (`Msg "gamma:K needs a positive shape"))
    | [ "gauss"; sigma ] -> (
        match float_of_string_opt sigma with
        | Some s when s > 0.0 -> Ok (`Gauss s)
        | _ -> Error (`Msg "gauss:S needs a positive relative sigma"))
    | [ "erlang"; k ] -> (
        match int_of_string_opt k with
        | Some k when k >= 1 -> Ok (`Erlang k)
        | _ -> Error (`Msg "erlang:K needs a positive integer phase count"))
    | [ "hyperexp"; scv ] -> (
        match float_of_string_opt scv with
        | Some c when c > 1.0 -> Ok (`Hyperexp c)
        | _ -> Error (`Msg "hyperexp:SCV needs a squared coefficient of variation > 1"))
    | _ -> Error (`Msg (Printf.sprintf "unknown law %S" s))
  in
  let print ppf = function
    | `Deterministic -> Format.pp_print_string ppf "deterministic"
    | `Exponential -> Format.pp_print_string ppf "exponential"
    | `Uniform w -> Format.fprintf ppf "uniform:%g" w
    | `Gamma k -> Format.fprintf ppf "gamma:%g" k
    | `Gauss s -> Format.fprintf ppf "gauss:%g" s
    | `Erlang k -> Format.fprintf ppf "erlang:%d" k
    | `Hyperexp c -> Format.fprintf ppf "hyperexp:%g" c
  in
  Arg.conv (parse, print)

let family_of_law = function
  | `Deterministic -> fun mu -> Dist.Deterministic mu
  | `Exponential -> Dist.exponential_of_mean
  | `Uniform w -> fun mu -> Dist.Uniform ((1.0 -. w) *. mu, (1.0 +. w) *. mu)
  | `Gamma k -> fun mu -> Dist.with_mean (Dist.Gamma (k, 1.0)) mu
  | `Gauss s -> fun mu -> Dist.Normal_trunc (mu, s *. mu)
  | `Erlang k -> fun mu -> Dist.with_mean (Dist.Erlang (k, 1.0)) mu
  | `Hyperexp scv ->
      (* balanced two-branch hyperexponential with the requested variance *)
      let w = sqrt ((scv -. 1.0) /. (scv +. 1.0)) in
      let p = 0.5 *. (1.0 +. w) in
      fun mu -> Dist.with_mean (Dist.Hyperexp [ (p, 2.0 *. p); (1.0 -. p, 2.0 *. (1.0 -. p)) ]) mu

let simulate_run path model law data_sets seed engine =
  let mapping = load path in
  let family = family_of_law law in
  let laws = Laws.of_family mapping ~family in
  let rho =
    match engine with
    | `Des ->
        Des.Pipeline_sim.throughput mapping model ~timing:(Des.Pipeline_sim.Independent laws)
          ~seed ~data_sets
    | `Eg_sim -> Teg_sim.throughput mapping model ~laws ~seed ~data_sets
  in
  Format.printf "simulated throughput  : %.6g (%s, %d data sets, seed %d)@." rho
    (Model.to_string model) data_sets seed;
  let det = Deterministic.throughput mapping model in
  Format.printf "deterministic bound   : %.6g (ratio %.3f)@." det (rho /. det);
  0

let simulate_cmd =
  let law =
    Arg.(value & opt law_conv `Exponential & info [ "law"; "l" ] ~docv:"LAW"
           ~doc:"Law family: deterministic, exponential, uniform[:W], gamma:K, gauss:S, erlang:K, hyperexp:SCV.")
  in
  let data_sets =
    Arg.(value & opt int 20_000 & info [ "data-sets"; "n" ] ~doc:"Number of data sets.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let engine_conv =
    Arg.conv
      ( (function
        | "des" -> Ok `Des
        | "eg_sim" -> Ok `Eg_sim
        | s -> Error (`Msg (Printf.sprintf "unknown engine %S (des|eg_sim)" s))),
        fun ppf e -> Format.pp_print_string ppf (match e with `Des -> "des" | `Eg_sim -> "eg_sim")
      )
  in
  let engine =
    Arg.(value & opt engine_conv `Des & info [ "engine" ] ~doc:"Simulation engine: des or eg_sim.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Estimate the throughput of an instance by simulation")
    Term.(const simulate_run $ file_arg $ model_arg $ law $ data_sets $ seed $ engine)

(* bounds *)

let bounds_run path model =
  let mapping = load path in
  let b =
    try Bounds.compute ~strict_cap:2_000_000 mapping model
    with Supervise.Error.Solver_error err -> solver_error_exit ~cap:2_000_000 err
  in
  Format.printf "Theorem 7 bounds (%s model):@." (Model.to_string model);
  Format.printf "  deterministic upper bound : %.6g@." b.Bounds.upper;
  Format.printf "  exponential lower bound   : %.6g@." b.Bounds.lower;
  Format.printf "  relative width            : %.1f%%@." (100.0 *. Bounds.width b);
  Format.printf "Any N.B.U.E. operation-time law lands inside; exact Erlang values:@.";
  List.iter
    (fun k ->
      let v =
        try Throughput.evaluate ~cap:2_000_000 (Throughput.Erlang_times k) mapping model
        with Supervise.Error.Solver_error err -> solver_error_exit ~cap:2_000_000 err
      in
      Format.printf "  erlang-%d (scv %.2f)        : %.6g@." k (1.0 /. float_of_int k) v)
    [ 2; 4 ];
  0

let bounds_cmd =
  Cmd.v
    (Cmd.info "bounds" ~doc:"N.B.U.E. throughput bounds of an instance (Theorem 7)")
    Term.(const bounds_run $ file_arg $ model_arg)

(* experiment *)

let experiment_run id full trace =
  with_trace trace @@ fun () ->
  let quick = not full in
  match id with
  | "all" ->
      Experiments.Registry.run_all ~quick Format.std_formatter;
      0
  | id -> (
      match Experiments.Registry.find id with
      | Some e ->
          e.Experiments.Registry.run ~quick Format.std_formatter;
          0
      | None ->
          Format.eprintf "unknown experiment %S; try 'list'@." id;
          1)

let experiment_cmd =
  let id =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID"
           ~doc:"Experiment id (see 'list'), or 'all'.")
  in
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Run at full size (slower, closer to the paper).")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a table or figure of the paper")
    Term.(const experiment_run $ id $ full $ trace_arg)

(* experiments: the supervised, journaled, resumable runner *)

(* the experiments-layer SUPERVISE_INJECT rules (fail/flaky/degrade);
   the full grammar, shared with the service and cluster layers, is
   documented in EXPERIMENTS.md *)
let inject_of_env () =
  match Sys.getenv_opt "SUPERVISE_INJECT" with
  | None | Some "" -> None
  | Some spec ->
      let rules =
        String.split_on_char ',' spec
        |> List.filter_map (fun rule ->
               match String.index_opt rule '=' with
               | None -> None
               | Some i ->
                   let kind = String.sub rule 0 i in
                   let target = String.sub rule (i + 1) (String.length rule - i - 1) in
                   let exp, point =
                     match String.index_opt target ':' with
                     | None -> (target, None)
                     | Some j ->
                         ( String.sub target 0 j,
                           Some (String.sub target (j + 1) (String.length target - j - 1)) )
                   in
                   (match kind with
                   | "fail" -> Some (`Fail, exp, point)
                   | "flaky" | "degrade" -> Some (`Flaky, exp, point)
                   | _ -> None))
      in
      if rules = [] then None
      else
        Some
          (fun ~exp ~point ~attempt ->
            List.iter
              (fun (kind, e, p) ->
                if e = exp && (match p with None -> true | Some p -> p = point) then
                  if kind = `Fail || attempt = 0 then
                    Supervise.Error.raise_
                      (Supervise.Error.Numerical
                         { what = "injected fault"; where = exp ^ "/" ^ point }))
              rules)

let experiments_run ids all full journal resume wall trace =
  with_trace trace @@ fun () ->
  let quick = not full in
  if resume && journal = None then begin
    Format.eprintf "error: --resume requires --journal@.";
    exit 2
  end;
  let entries =
    if all then Experiments.Registry.all
    else
      List.map
        (fun id ->
          match Experiments.Registry.find id with
          | Some e -> e
          | None ->
              Format.eprintf "unknown experiment %S; try 'list'@." id;
              exit 2)
        ids
  in
  if entries = [] then begin
    Format.eprintf "error: no experiments selected (pass ids or --all)@.";
    exit 2
  end;
  let point_budget = Option.map (fun wall -> Supervise.Budget.create ~wall ()) wall in
  let health =
    Experiments.Registry.run_entries ~quick ?journal ~resume ?point_budget
      ?inject:(inject_of_env ()) entries Format.std_formatter
  in
  if health.Experiments.Runner.failed > 0 then begin
    Format.eprintf "error: %d point(s) failed for good; the journal keeps the completed ones@."
      health.Experiments.Runner.failed;
    1
  end
  else begin
    if health.Experiments.Runner.degraded > 0 then
      Format.eprintf "warning: %d point(s) solved degraded (see the journal for details)@."
        health.Experiments.Runner.degraded;
    0
  end

let experiments_cmd =
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (see 'list').")
  in
  let all = Arg.(value & flag & info [ "all"; "a" ] ~doc:"Run every registered experiment.") in
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Run at full size (slower, closer to the paper).")
  in
  let journal =
    Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE"
           ~doc:"Journal each completed point to $(docv) (JSONL, atomically rewritten).")
  in
  let resume =
    Arg.(value & flag & info [ "resume" ]
           ~doc:"Replay points already journaled (requires --journal); failed points are re-run.")
  in
  let wall =
    Arg.(value & opt (some float) None & info [ "wall" ] ~docv:"SECONDS"
           ~doc:"Wall-clock budget per solve attempt.")
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Run experiments under supervision: journaled, resumable, with degraded retries")
    Term.(const experiments_run $ ids $ all $ full $ journal $ resume $ wall $ trace_arg)

(* profile: run one experiment under tracing and print the span tree *)

let profile_run id full trace =
  match Experiments.Registry.find id with
  | None ->
      Format.eprintf "unknown experiment %S; try 'list'@." id;
      1
  | Some e ->
      let quick = not full in
      let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
      Obs.Trace.clear ();
      Obs.Trace.set_enabled true;
      let t0 = Obs.Clock.now_ns () in
      let finish () =
        let wall_ns = Obs.Clock.now_ns () - t0 in
        Obs.Trace.set_enabled false;
        (wall_ns, Obs.Trace.events ())
      in
      (match Experiments.Registry.run_entries ~quick ~resume:false ~err:null_ppf [ e ] null_ppf with
      | (_ : Experiments.Runner.health) -> ()
      | exception exn ->
          ignore (finish ());
          raise exn);
      let wall_ns, events = finish () in
      Format.printf "profile: %s (%s), wall %.3f s@." id
        (if quick then "quick" else "full")
        (Obs.Clock.ns_to_s wall_ns);
      Obs.Profile.print ~wall_ns Format.std_formatter events;
      (match trace with
      | None -> ()
      | Some path ->
          Obs.Trace.write_chrome path;
          Format.printf "trace: wrote %d events to %s@." (List.length events) path);
      0

let profile_cmd =
  let id =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID"
           ~doc:"Experiment id to profile (see 'list').")
  in
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Profile the full-size run (slower).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run one experiment under tracing and print a nested wall-time profile tree")
    Term.(const profile_run $ id $ full $ trace_arg)

(* list *)

let list_run () =
  List.iter
    (fun e ->
      Format.printf "%-8s %s@." e.Experiments.Registry.id e.Experiments.Registry.title)
    Experiments.Registry.all;
  0

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List the reproducible tables and figures") Term.(const list_run $ const ())

(* dot *)

let dot_run path model =
  let mapping = load path in
  let tpn = Tpn.build mapping model in
  Format.printf "%a" (Petrinet.Dot.pp ?rankdir:None) (Tpn.teg tpn);
  0

let dot_cmd =
  Cmd.v
    (Cmd.info "dot"
       ~doc:"Print the timed Petri net of an instance in Graphviz format (cf. paper Figs 2-3)")
    Term.(const dot_run $ file_arg $ model_arg)

(* serve: the persistent throughput-query daemon *)

let addr_conv =
  Arg.conv
    ( (fun s ->
        match Service.Protocol.addr_of_string s with
        | Ok addr -> Ok addr
        | Error msg -> Error (`Msg msg)),
      fun ppf addr -> Format.pp_print_string ppf (Service.Protocol.addr_to_string addr) )

let addr_arg =
  Arg.(
    required
    & opt (some addr_conv) None
    & info [ "socket"; "s" ] ~docv:"ADDR"
        ~doc:"Service address: unix:PATH, tcp:HOST:PORT, or a bare socket path.")

let serve_run addr cache_capacity max_inflight max_frame wall quiet flight trace =
  let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ()) in
  let default = Service.Server.default_config () in
  let config =
    {
      Service.Server.cache_capacity;
      max_inflight = (match max_inflight with Some m -> m | None -> default.Service.Server.max_inflight);
      max_frame;
      default_wall = wall;
      log = (if quiet then null_ppf else Format.err_formatter);
      flight;
    }
  in
  let server = Service.Server.create config in
  let run () =
    match Service.Server.serve server addr with
    | () -> 0
    | exception Unix.Unix_error (err, fn, arg) ->
        Format.eprintf "error: cannot serve on %s: %s (%s %s)@."
          (Service.Protocol.addr_to_string addr) (Unix.error_message err) fn arg;
        2
  in
  match trace with
  | None -> run ()
  | Some path ->
      (* per-process export with our pid and a human name, so a cluster's
         worker exports merge into one multi-process timeline *)
      Obs.Trace.clear ();
      Obs.Trace.set_enabled true;
      Fun.protect
        ~finally:(fun () ->
          Obs.Trace.set_enabled false;
          let name =
            match Sys.getenv_opt "OBS_PROCESS_NAME" with
            | Some n -> n
            | None -> Printf.sprintf "serve pid %d" (Unix.getpid ())
          in
          Obs.Trace.write_chrome ~pid:(Unix.getpid ()) ~process_name:name path)
        run

let serve_cmd =
  let cache =
    Arg.(value & opt int 256 & info [ "cache" ] ~docv:"N" ~doc:"LRU result-cache capacity.")
  in
  let max_inflight =
    Arg.(value & opt (some int) None & info [ "max-inflight" ] ~docv:"N"
           ~doc:"Concurrent solve/batch requests admitted before the daemon answers busy \
                 (default 4x the domain-pool size).")
  in
  let max_frame =
    Arg.(value & opt int (1 lsl 20) & info [ "max-frame" ] ~docv:"BYTES"
           ~doc:"Request line size limit; longer frames get an oversized_frame error.")
  in
  let wall =
    Arg.(value & opt (some float) None & info [ "wall" ] ~docv:"SECONDS"
           ~doc:"Server-side wall-clock budget applied to requests that carry none.")
  in
  let quiet = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No connection/drain log on stderr.") in
  let flight =
    Arg.(value & opt (some string) None & info [ "flight" ] ~docv:"FILE"
           ~doc:"Arm the crash flight recorder: recent spans and events are dumped to $(docv) \
                 atomically on exit, on a typed-error burst, and on an injected crash.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the persistent throughput-query daemon (NDJSON over a socket; SIGTERM drains)")
    Term.(const serve_run $ addr_arg $ cache $ max_inflight $ max_frame $ wall $ quiet $ flight
          $ trace_arg)

(* query: the matching client *)

let service_law_conv =
  Arg.conv
    ( (fun s ->
        match Service.Engine.law_of_string s with Ok l -> Ok l | Error msg -> Error (`Msg msg)),
      fun ppf l -> Format.pp_print_string ppf (Service.Engine.law_to_string l) )

let query_run addr command instance model law cap wall simulate repeat fleet =
  let fail msg =
    Format.eprintf "error: %s@." msg;
    exit 1
  in
  let client =
    match Service.Client.connect addr with
    | Ok c -> c
    | Error e -> fail (Service.Client.error_message e)
  in
  Fun.protect ~finally:(fun () -> Service.Client.close client) @@ fun () ->
  let print_reply = function
    | Ok line ->
        print_endline line;
        ()
    | Error e -> fail (Service.Client.error_message e)
  in
  match command with
  | "ping" | "stats" | "shutdown" ->
      let request =
        Service.Json.Obj
          [ ("v", Service.Json.Int Service.Protocol.version); ("cmd", Service.Json.String command) ]
      in
      print_reply (Service.Client.rpc_raw client (Service.Json.render request));
      0
  | "metrics" -> (
      let request =
        Service.Json.Obj
          ([ ("v", Service.Json.Int Service.Protocol.version);
             ("cmd", Service.Json.String "metrics") ]
          @ if fleet then [ ("fleet", Service.Json.Bool true) ] else [])
      in
      match Service.Client.rpc_raw client (Service.Json.render request) with
      | Error e -> fail (Service.Client.error_message e)
      | Ok line -> (
          (* the reply wraps the exposition text in JSON; unwrap it so the
             output pipes straight into a Prometheus scrape file *)
          match
            Result.to_option (Service.Json.parse line)
            |> Fun.flip Option.bind (Service.Json.member "result")
            |> Fun.flip Option.bind (Service.Json.member "text")
            |> Fun.flip Option.bind (fun t -> Service.Json.to_string_opt t)
          with
          | Some text ->
              print_string text;
              0
          | None ->
              print_endline line;
              0))
  | "solve" -> (
      match instance with
      | None -> fail "solve needs an INSTANCE file (positional argument)"
      | Some path ->
          let text =
            match In_channel.with_open_text path In_channel.input_all with
            | text -> text
            | exception Sys_error msg -> fail msg
          in
          let request =
            Service.Client.solve_request ~model ~law ?cap ?wall ~simulate ~instance:text ()
          in
          let line = Service.Json.render request in
          for _ = 1 to repeat do
            print_reply (Service.Client.rpc_raw client line)
          done;
          0)
  | cmd -> fail (Printf.sprintf "unknown query command %S (ping|stats|metrics|solve|shutdown)" cmd)

let query_cmd =
  let command =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"COMMAND"
           ~doc:"One of ping, stats, metrics, solve, shutdown.  [metrics] prints the \
                 daemon's metric registry in the Prometheus text format.")
  in
  let instance =
    Arg.(value & pos 1 (some file) None & info [] ~docv:"INSTANCE"
           ~doc:"Instance file (for solve).")
  in
  let law =
    Arg.(value & opt service_law_conv Service.Engine.Exponential & info [ "law"; "l" ] ~docv:"LAW"
           ~doc:"Law: deterministic, exponential or erlang:K.")
  in
  let cap =
    Arg.(value & opt (some int) None & info [ "cap" ] ~doc:"Marking exploration bound (strict).")
  in
  let wall =
    Arg.(value & opt (some float) None & info [ "wall" ] ~docv:"SECONDS"
           ~doc:"Per-request wall-clock budget.")
  in
  let simulate =
    Arg.(value & flag & info [ "simulate" ]
           ~doc:"Allow the degraded DES rung when the exact/iterative ladder fails.")
  in
  let repeat =
    Arg.(value & opt int 1 & info [ "repeat"; "n" ] ~docv:"N"
           ~doc:"Send the solve N times on one connection (cache/load study).")
  in
  let fleet =
    Arg.(value & flag & info [ "fleet" ]
           ~doc:"With metrics against a cluster router: federate every Up worker's registry \
                 behind the router's own, each worker's series relabeled with worker=\"i\".")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Query a running throughput daemon (NDJSON replies on stdout)")
    Term.(const query_run $ addr_arg $ command $ instance $ model_arg $ law $ cap $ wall
          $ simulate $ repeat $ fleet)

(* optimize: search for a high-throughput mapping *)

let optimize_metric_conv =
  let parse = function
    | "deterministic" -> Ok Optimize.Objective.Deterministic
    | "exponential" -> Ok Optimize.Objective.Exponential
    | "strict" -> Ok Optimize.Objective.Strict
    | s ->
        Error (`Msg (Printf.sprintf "unknown metric %S (deterministic|exponential|strict)" s))
  in
  Arg.conv
    (parse, fun ppf m -> Format.pp_print_string ppf (Optimize.Objective.metric_name m))

let rungs_conv =
  let parse s =
    let parts = String.split_on_char ',' s |> List.filter (fun p -> p <> "") in
    if parts = [] then Error (`Msg "empty rung list")
    else
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | p :: rest -> (
            match Optimize.Engine.rung_of_string p with
            | Ok r -> go (r :: acc) rest
            | Error msg -> Error (`Msg msg))
      in
      go [] parts
  in
  Arg.conv
    ( parse,
      fun ppf rungs ->
        Format.pp_print_string ppf
          (String.concat "," (List.map Optimize.Engine.rung_to_string rungs)) )

let optimize_run instance_file random stages procs inst_seed homogeneous metric rungs seed cap
    wall domains socket check jsonl trace =
  with_trace trace @@ fun () ->
  let app, platform =
    match (instance_file, random) with
    | Some path, false ->
        let mapping = load path in
        (Mapping.app mapping, Mapping.platform mapping)
    | None, true when homogeneous ->
        (* identical processors and links, heterogeneous works: the regime
           where the exhaustive composition sweep is provably optimal *)
        let g = Prng.create ~seed:inst_seed in
        let app =
          Application.create
            ~work:(Array.init stages (fun _ -> Prng.uniform g 1.0 10.0))
            ~files:(Array.init (stages - 1) (fun _ -> Prng.uniform g 0.2 2.0))
        in
        (app, Platform.fully_connected ~speeds:(Array.make procs 1.0) ~bw:1.0)
    | None, true ->
        let params =
          {
            Workload.Gen.i_stages = stages;
            i_procs = procs;
            i_comp_range = (1.0, 10.0);
            i_comm_range = (0.2, 2.0);
          }
        in
        Workload.Gen.random_instance (Prng.create ~seed:inst_seed) params
    | Some _, true ->
        Format.eprintf "error: give an INSTANCE file or --random, not both@.";
        exit 2
    | None, false ->
        Format.eprintf "error: optimize needs an INSTANCE file or --random@.";
        exit 2
  in
  let pool, owned =
    match domains with
    | Some d -> (Parallel.Pool.create ~domains:d, true)
    | None -> (Parallel.Pool.get (), false)
  in
  Fun.protect ~finally:(fun () -> if owned then Parallel.Pool.shutdown pool) @@ fun () ->
  let objective = Optimize.Objective.create ~cap ?wall ~seed metric in
  let client =
    match socket with
    | None -> None
    | Some addr -> (
        match Service.Client.connect addr with
        | Ok c -> Some c
        | Error e ->
            Format.eprintf "error: cannot reach the daemon: %s@."
              (Service.Client.error_message e);
            exit 2)
  in
  Fun.protect ~finally:(fun () -> Option.iter Service.Client.close client) @@ fun () ->
  let settings =
    {
      (Optimize.Search.default_settings ~pool ~objective
         ~procs:(List.init (Platform.n_processors platform) Fun.id))
      with
      Optimize.Search.seed;
      evaluator = Option.map (fun c -> Optimize.Remote.evaluator c ~objective) client;
    }
  in
  let run rungs =
    try Optimize.Engine.run ~rungs ~app ~platform settings
    with Supervise.Error.Solver_error err -> solver_error_exit ~cap err
  in
  let report = run rungs in
  Format.printf "metric     : %s@." report.Optimize.Engine.metric;
  Format.printf "rungs      : %s@."
    (String.concat "," (List.map Optimize.Engine.rung_to_string rungs));
  Format.printf "search     : %d candidates, %d evaluated, %d pruned, %d failed@."
    report.Optimize.Engine.candidates report.Optimize.Engine.evaluated
    report.Optimize.Engine.pruned report.Optimize.Engine.failed;
  (match report.Optimize.Engine.best with
  | None -> Format.printf "best       : none found@."
  | Some (cand, rho) ->
      Format.printf "best       : %s@." (Optimize.Candidate.key cand);
      Format.printf "throughput : %.6g data sets per time unit@." rho);
  (match jsonl with
  | None -> print_endline (Optimize.Engine.report_to_string report)
  | Some path ->
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      output_string oc (Optimize.Engine.report_to_string report);
      output_char oc '\n';
      close_out oc;
      Format.printf "record     : appended to %s@." path);
  if not check then 0
  else begin
    (* agreement smoke: the requested ladder must reach the exhaustive
       composition optimum (equality on homogeneous platforms; on
       heterogeneous ones the ladder may legitimately exceed it) *)
    let reference = run [ Optimize.Engine.Exhaustive ] in
    match (report.Optimize.Engine.best, reference.Optimize.Engine.best) with
    | Some (_, got), Some (_, want) ->
        let tol = 1e-6 *. Float.max 1.0 (Float.abs want) in
        if got >= want -. tol then begin
          Format.printf "check      : ladder %.6g >= exhaustive %.6g (ok)@." got want;
          0
        end
        else begin
          Format.eprintf "check FAILED: ladder %.6g < exhaustive %.6g@." got want;
          4
        end
    | _ ->
        Format.eprintf "check FAILED: a search found no mapping@.";
        4
  end

let optimize_cmd =
  let instance =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"INSTANCE"
           ~doc:"Instance file; its application and platform are searched over (the mapping it \
                 carries is ignored).")
  in
  let random =
    Arg.(value & flag & info [ "random" ]
           ~doc:"Generate a random instance (see --stages, --procs, --inst-seed) instead of \
                 reading a file.")
  in
  let stages =
    Arg.(value & opt int 3 & info [ "stages" ] ~docv:"N" ~doc:"Stages of the random instance.")
  in
  let procs =
    Arg.(value & opt int 6 & info [ "procs" ] ~docv:"M" ~doc:"Processors of the random instance.")
  in
  let inst_seed =
    Arg.(value & opt int 1 & info [ "inst-seed" ] ~docv:"SEED"
           ~doc:"Seed of the random instance generation.")
  in
  let homogeneous =
    Arg.(value & flag & info [ "homogeneous" ]
           ~doc:"Identical processors and links for the random instance — the regime where the \
                 exhaustive rung is provably optimal, used by the --check smoke.")
  in
  let metric =
    Arg.(value & opt optimize_metric_conv Optimize.Objective.Exponential
         & info [ "metric" ] ~docv:"METRIC"
             ~doc:"Objective: deterministic (critical cycles), exponential (Theorem 3/4, Overlap) \
                   or strict (supervised ladder).")
  in
  let rungs =
    Arg.(value & opt rungs_conv Optimize.Engine.default_rungs & info [ "rungs" ] ~docv:"RUNGS"
           ~doc:"Comma-separated search ladder: greedy, local, anneal, exhaustive (in order, \
                 sharing one incumbent and memo).")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Seed of the annealing PRNG streams (and the strict metric's DES rung).")
  in
  let cap =
    Arg.(value & opt int 200_000 & info [ "cap" ]
           ~doc:"Pattern/marking exploration bound per candidate evaluation.")
  in
  let wall =
    Arg.(value & opt (some float) None & info [ "wall" ] ~docv:"SECONDS"
           ~doc:"Wall-clock budget per candidate (breaks bit-identity across pool sizes).")
  in
  let domains =
    Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N"
           ~doc:"Domain-pool size for candidate fan-out (default: the global pool). The result \
                 is bit-identical for every value.")
  in
  let socket =
    Arg.(value & opt (some addr_conv) None & info [ "socket"; "s" ] ~docv:"ADDR"
           ~doc:"Evaluate candidates through a running throughput daemon (batch requests) \
                 instead of in-process.")
  in
  let check =
    Arg.(value & flag & info [ "check" ]
           ~doc:"After the ladder, run the exhaustive rung on a fresh state and fail (exit 4) if \
                 the ladder's best falls below the composition optimum.")
  in
  let jsonl =
    Arg.(value & opt (some string) None & info [ "jsonl" ] ~docv:"FILE"
           ~doc:"Append the deterministic result record to $(docv) instead of printing it.")
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Search one-to-many replicated mappings for maximum throughput (greedy, local \
             search, annealing, exhaustive — bound-pruned, parallel, deterministic)")
    Term.(const optimize_run $ instance $ random $ stages $ procs $ inst_seed $ homogeneous
          $ metric $ rungs $ seed $ cap $ wall $ domains $ socket $ check $ jsonl $ trace_arg)

(* statespace: the million-state kernel smoke — sharded exploration and
   rotation-quotient solve cross-checked against the serial, unlumped
   path.  Exit code 5 signals a divergence (a correctness failure of the
   parallel or lumped kernel), distinct from cmdliner's own codes. *)

let statespace_run u v phases cap wall domains check_serial =
  let rate ~sender:_ ~receiver:_ = 1.0 in
  let budget = Supervise.Budget.create ?wall ?states:cap () in
  let exit_divergence = 5 in
  Parallel.Pool.with_pool ~domains @@ fun pool ->
  let serial_ok =
    if not check_serial then true
    else begin
      let base = Young.Pattern.build ~u ~v ~time:(fun ~sender:_ ~receiver:_ -> 1.0) in
      let teg =
        if phases = 1 then base
        else Petrinet.Expand.teg (Petrinet.Expand.erlang ~phases:(fun _ -> phases) base)
      in
      let serial = Petrinet.Marking.explore_graph ?cap ~budget teg in
      let sharded = Petrinet.Marking.explore_graph ?cap ~budget ~pool teg in
      let same =
        serial.Petrinet.Marking.markings = sharded.Petrinet.Marking.markings
        && serial.Petrinet.Marking.row_ptr = sharded.Petrinet.Marking.row_ptr
        && serial.Petrinet.Marking.succ = sharded.Petrinet.Marking.succ
        && serial.Petrinet.Marking.via = sharded.Petrinet.Marking.via
      in
      Format.printf "serial vs sharded (%d domains): %s (%d states, %d edges)@." domains
        (if same then "identical" else "DIVERGED")
        (Array.length serial.Petrinet.Marking.markings)
        (Array.length serial.Petrinet.Marking.succ);
      same
    end
  in
  let lumped =
    Young.Pattern.supervised_inner_throughput ?cap ~budget ~pool ~lump:true ~phases ~u ~v ~rate
      ()
  in
  let full =
    Young.Pattern.supervised_inner_throughput ?cap ~budget ~lump:false ~phases ~u ~v ~rate ()
  in
  let rel =
    abs_float (lumped.Young.Pattern.throughput -. full.Young.Pattern.throughput)
    /. abs_float full.Young.Pattern.throughput
  in
  let lump_ok = rel <= 1e-9 in
  Format.printf "%dx%d ph%d: %d states, %d edges@." u v phases lumped.Young.Pattern.states
    lumped.Young.Pattern.edges;
  (match lumped.Young.Pattern.lump with
  | Some ls ->
      Format.printf "rotation quotient: %d -> %d classes (%.1fx)@."
        ls.Markov.Tpn_markov.lump_states ls.Markov.Tpn_markov.lump_classes
        (float_of_int ls.Markov.Tpn_markov.lump_states
        /. float_of_int ls.Markov.Tpn_markov.lump_classes)
  | None -> Format.printf "rotation quotient: not applicable@.");
  Format.printf "lumped    %.12g  (%s)@." lumped.Young.Pattern.throughput
    (Supervise.Provenance.describe lumped.Young.Pattern.provenance);
  Format.printf "unlumped  %.12g  (%s)@." full.Young.Pattern.throughput
    (Supervise.Provenance.describe full.Young.Pattern.provenance);
  Format.printf "lumped vs unlumped: %s (rel %.3g)@."
    (if lump_ok then "agree" else "DIVERGED")
    rel;
  if serial_ok && lump_ok then 0 else exit_divergence

let statespace_cmd =
  let u =
    Arg.(value & opt int 5 & info [ "u" ] ~docv:"U" ~doc:"Sender count of the pattern.")
  in
  let v =
    Arg.(value & opt int 6 & info [ "v" ] ~docv:"V" ~doc:"Receiver count (coprime with $(b,--u)).")
  in
  let phases =
    Arg.(value & opt int 1 & info [ "phases" ] ~docv:"P" ~doc:"Erlang phase count per transfer.")
  in
  let cap =
    Arg.(value & opt (some int) None & info [ "cap" ] ~docv:"N" ~doc:"State-space cap.")
  in
  let wall =
    Arg.(value & opt (some float) None & info [ "wall" ] ~docv:"SECONDS"
           ~doc:"Wall-clock budget for the whole check.")
  in
  let domains =
    Arg.(value & opt int 2 & info [ "domains" ] ~docv:"D"
           ~doc:"Domain-pool size for the sharded exploration.")
  in
  let check_serial =
    Arg.(value & flag & info [ "check-serial" ]
           ~doc:"Also explore serially and require the sharded marking graph to be byte-identical.")
  in
  Cmd.v
    (Cmd.info "statespace"
       ~doc:"State-space kernel smoke: sharded exploration and rotation-quotient solve of a u×v \
             pattern, cross-checked against the serial, unlumped path (exit 5 on divergence)")
    Term.(const statespace_run $ u $ v $ phases $ cap $ wall $ domains $ check_serial)

(* template *)

let template_run () =
  Format.printf "%a" Instance_io.print Workload.Scenarios.example_a;
  0

let template_cmd =
  Cmd.v
    (Cmd.info "template" ~doc:"Print a sample instance file (Example A) to stdout")
    Term.(const template_run $ const ())

(* cluster: router + supervised worker fleet *)

let null_ppf = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

let cluster_run addr workers sock_dir injects cache max_inflight wall request_deadline heartbeat
    restarts quiet trace flight_dir =
  let fail msg =
    Format.eprintf "error: %s@." msg;
    exit 1
  in
  if workers < 1 then fail "need at least one worker";
  let log = if quiet then null_ppf else Format.err_formatter in
  let dir = match sock_dir with Some d -> d | None -> Filename.get_temp_dir_name () in
  (match flight_dir with
  | Some d when not (Sys.file_exists d) -> (
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  | _ -> ());
  (* with --trace, each worker writes its own Chrome export on drain; the
     router merges them with its own after the fleet shuts down *)
  let worker_trace i =
    match trace with
    | None -> None
    | Some _ ->
        Some (Filename.concat dir (Printf.sprintf "cluster-w%d-%d.trace.json" (Unix.getpid ()) i))
  in
  let inject_tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      match String.index_opt s ':' with
      | Some i -> (
          match int_of_string_opt (String.sub s 0 i) with
          | Some idx when idx >= 0 && idx < workers ->
              Hashtbl.replace inject_tbl idx (String.sub s (i + 1) (String.length s - i - 1))
          | _ -> fail (Printf.sprintf "--inject %S: index out of range" s))
      | None -> fail (Printf.sprintf "--inject %S: expected IDX:SPEC (see EXPERIMENTS.md)" s))
    injects;
  (* workers inherit our environment minus any inject spec aimed at the
     experiments layer of this process; per-worker rules are appended *)
  let base_env =
    Unix.environment () |> Array.to_list
    |> List.filter (fun kv -> not (String.length kv >= 16 && String.sub kv 0 16 = "SUPERVISE_INJECT"))
    |> Array.of_list
  in
  let self = Sys.executable_name in
  let specs =
    Array.init workers (fun i ->
        let path = Filename.concat dir (Printf.sprintf "cluster-w%d-%d.sock" (Unix.getpid ()) i) in
        let argv =
          List.concat
            [
              [ self; "serve"; "--socket"; "unix:" ^ path; "--cache"; string_of_int cache ];
              (match max_inflight with Some m -> [ "--max-inflight"; string_of_int m ] | None -> []);
              (match wall with Some w -> [ "--wall"; string_of_float w ] | None -> []);
              (match worker_trace i with Some p -> [ "--trace"; p ] | None -> []);
              (match flight_dir with
              | Some d -> [ "--flight"; Filename.concat d (Printf.sprintf "worker-%d.flight.json" i) ]
              | None -> []);
              (if quiet then [ "--quiet" ] else []);
            ]
          |> Array.of_list
        in
        let env =
          let env =
            match Hashtbl.find_opt inject_tbl i with
            | Some spec -> Array.append base_env [| "SUPERVISE_INJECT=" ^ spec |]
            | None -> base_env
          in
          if trace = None then env
          else Array.append env [| Printf.sprintf "OBS_PROCESS_NAME=worker %d" i |]
        in
        { Cluster.Supervisor.argv; env; addr = Service.Protocol.Unix_domain path })
  in
  let backoff = { Supervise.Backoff.default_restart with max_attempts = restarts } in
  let sup = Cluster.Supervisor.start ~backoff ~heartbeat_period:heartbeat ~log specs in
  if not (Cluster.Supervisor.wait_up ~deadline:(Unix.gettimeofday () +. 15.0) sup) then
    Format.fprintf log "cluster: warning: not every worker is up yet; serving anyway@.";
  let config = { (Cluster.Router.default_config ()) with request_deadline; log } in
  let router = Cluster.Router.create config sup in
  if trace <> None then begin
    Obs.Trace.clear ();
    Obs.Trace.set_enabled true
  end;
  (* serve drains the fleet before returning, so the workers' per-process
     trace exports exist by the time we merge them with our own *)
  let merge_traces () =
    match trace with
    | None -> ()
    | Some path ->
        Obs.Trace.set_enabled false;
        let own = Obs.Trace.to_chrome_json ~pid:(Unix.getpid ()) ~process_name:"router" () in
        let worker_docs =
          List.init workers (fun i ->
              match worker_trace i with
              | None -> None
              | Some p -> (
                  match In_channel.with_open_text p In_channel.input_all with
                  | doc ->
                      (try Sys.remove p with Sys_error _ -> ());
                      Some doc
                  | exception Sys_error _ -> None))
          |> List.filter_map Fun.id
        in
        let merged = Obs.Trace.merge_chrome (own :: worker_docs) in
        Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc merged);
        Format.fprintf log "cluster: wrote merged trace (%d process(es)) to %s@."
          (1 + List.length worker_docs) path
  in
  match Cluster.Router.serve router addr with
  | () ->
      merge_traces ();
      0
  | exception Unix.Unix_error (err, fn, arg) ->
      Cluster.Supervisor.shutdown sup;
      merge_traces ();
      Format.eprintf "error: cannot serve on %s: %s (%s %s)@."
        (Service.Protocol.addr_to_string addr) (Unix.error_message err) fn arg;
      2

let cluster_cmd =
  let workers =
    Arg.(value & opt int 4 & info [ "workers"; "w" ] ~docv:"N" ~doc:"Worker processes to run.")
  in
  let sock_dir =
    Arg.(value & opt (some dir) None & info [ "socket-dir" ] ~docv:"DIR"
           ~doc:"Directory for the workers' Unix-domain sockets (default: \\$TMPDIR).")
  in
  let injects =
    Arg.(value & opt_all string [] & info [ "inject" ] ~docv:"IDX:SPEC"
           ~doc:"Set SUPERVISE_INJECT=SPEC for worker IDX (repeatable; grammar in \
                 EXPERIMENTS.md), e.g. 0:kill-after=25.")
  in
  let cache =
    Arg.(value & opt int 256 & info [ "cache" ] ~docv:"N" ~doc:"Per-worker LRU cache capacity.")
  in
  let max_inflight =
    Arg.(value & opt (some int) None & info [ "max-inflight" ] ~docv:"N"
           ~doc:"Per-worker concurrent-solve admission limit.")
  in
  let wall =
    Arg.(value & opt (some float) None & info [ "wall" ] ~docv:"SECONDS"
           ~doc:"Per-worker server-side wall budget for requests that carry none.")
  in
  let request_deadline =
    Arg.(value & opt float 30.0 & info [ "deadline" ] ~docv:"SECONDS"
           ~doc:"Router per-request budget: retries stop and the request is shed once it passes.")
  in
  let heartbeat =
    Arg.(value & opt float 1.0 & info [ "heartbeat" ] ~docv:"SECONDS"
           ~doc:"Worker health-check period.")
  in
  let restarts =
    Arg.(value & opt int 5 & info [ "max-restarts" ] ~docv:"N"
           ~doc:"Restart attempts before a crash-looping worker is marked dead.")
  in
  let quiet = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No supervision log on stderr.") in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Trace the whole fleet: the router records router:* spans, every request is \
                 forwarded with a trace context so worker spans share its trace id, and on \
                 drain the per-worker exports are merged with the router's into one \
                 Chrome-loadable $(docv).")
  in
  let flight_dir =
    Arg.(value & opt (some string) None & info [ "flight-dir" ] ~docv:"DIR"
           ~doc:"Arm each worker's crash flight recorder, dumping to \
                 $(docv)/worker-N.flight.json on death, exit or a typed-error burst.")
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:"Run a sharded fleet of query daemons behind one consistent-hashing router \
             (supervision, retries, circuit breaking; SIGTERM drains the whole fleet)")
    Term.(const cluster_run $ addr_arg $ workers $ sock_dir $ injects $ cache $ max_inflight
          $ wall $ request_deadline $ heartbeat $ restarts $ quiet $ trace $ flight_dir)

(* top: a live fleet view over the federated metrics endpoint *)

let top_run addr interval count window plain =
  let metrics_req =
    Service.Json.render
      (Service.Json.Obj
         [
           ("v", Service.Json.Int Service.Protocol.version);
           ("cmd", Service.Json.String "metrics");
           ("fleet", Service.Json.Bool true);
         ])
  in
  let scrape () =
    let deadline = Unix.gettimeofday () +. 2.0 in
    match Service.Client.connect ~deadline addr with
    | Error e -> Error (Service.Client.error_message e)
    | Ok client -> (
        Fun.protect ~finally:(fun () -> Service.Client.close client) @@ fun () ->
        match Service.Client.rpc_raw ~deadline client metrics_req with
        | Error e -> Error (Service.Client.error_message e)
        | Ok line -> (
            match
              Result.to_option (Service.Json.parse line)
              |> Fun.flip Option.bind (Service.Json.member "result")
              |> Fun.flip Option.bind (Service.Json.member "text")
              |> Fun.flip Option.bind Service.Json.to_string_opt
            with
            | Some text -> Ok text
            | None -> Error ("unexpected reply: " ^ line)))
  in
  let find samples name lbls =
    List.find_map
      (fun (n, ls, v) ->
        if n = name && List.for_all (fun (k, x) -> List.assoc_opt k ls = Some x) lbls then
          Some v
        else None)
      samples
  in
  let sum samples name =
    List.fold_left
      (fun acc (n, _, v) -> if n = name then acc +. v else acc)
      0.0 samples
  in
  (* one sliding window for the fleet, one per worker, fed with counter
     deltas between scrapes so the rate reflects the last W seconds *)
  let fleet_win = Obs.Window.create ~seconds:window () in
  let fleet_last = ref nan in
  let worker_wins : (string, Obs.Window.t * float ref) Hashtbl.t = Hashtbl.create 8 in
  let bump win last now total =
    if Float.is_nan !last then last := total
    else begin
      let d = int_of_float (Float.max 0.0 (total -. !last)) in
      last := total;
      Obs.Window.add ~n:d win ~now
    end;
    Obs.Window.rate win ~now
  in
  let ms v = match v with Some x when not (Float.is_nan x) -> Printf.sprintf "%8.2f" (1000.0 *. x) | _ -> "       -" in
  let failures = ref 0 and ticks = ref 0 in
  let tick () =
    incr ticks;
    let now = Unix.gettimeofday () in
    match scrape () with
    | Error msg ->
        incr failures;
        Printf.printf "top: scrape failed: %s\n%!" msg
    | Ok text ->
        let samples =
          String.split_on_char '\n' text |> List.filter_map Obs.Exposition.parse_line
        in
        let workers =
          List.filter_map
            (fun (n, ls, _) ->
              if n = "cluster_worker_up" then List.assoc_opt "worker" ls else None)
            samples
          |> List.sort_uniq (fun a b ->
                 compare (int_of_string_opt a) (int_of_string_opt b))
        in
        if not plain then print_string "\027[2J\027[H";
        let clock = Unix.localtime now in
        if workers = [] then begin
          (* single daemon: no fleet series, report its own registry *)
          let total = sum samples "service_requests_total" in
          let rate = bump fleet_win fleet_last now total in
          Printf.printf "daemon %s @ %02d:%02d:%02d   req/s %.1f (last %ds)   p50 %s ms   p99 %s ms\n%!"
            (Service.Protocol.addr_to_string addr) clock.Unix.tm_hour clock.Unix.tm_min
            clock.Unix.tm_sec rate window
            (String.trim (ms (find samples "service_latency_seconds_p50" [])))
            (String.trim (ms (find samples "service_latency_seconds_p99" [])))
        end
        else begin
          let total = sum samples "cluster_forwarded_total" in
          let rate = bump fleet_win fleet_last now total in
          Printf.printf "fleet %s @ %02d:%02d:%02d   %d worker(s)   fwd/s %.1f (last %ds)   shed %.0f\n"
            (Service.Protocol.addr_to_string addr) clock.Unix.tm_hour clock.Unix.tm_min
            clock.Unix.tm_sec (List.length workers) rate window
            (sum samples "cluster_shed_total");
          Printf.printf "%-8s %-5s %-8s %8s %8s %8s %9s\n" "worker" "up" "breaker" "fwd/s"
            "p50(ms)" "p99(ms)" "restarts";
          List.iter
            (fun w ->
              let lbl = [ ("worker", w) ] in
              let win, last =
                match Hashtbl.find_opt worker_wins w with
                | Some p -> p
                | None ->
                    let p = (Obs.Window.create ~seconds:window (), ref nan) in
                    Hashtbl.add worker_wins w p;
                    p
              in
              let fwd = Option.value ~default:0.0 (find samples "cluster_forwarded_total" lbl) in
              let wrate = bump win last now fwd in
              Printf.printf "%-8s %-5s %-8s %8.1f %s %s %9.0f\n" w
                (match find samples "cluster_worker_up" lbl with
                | Some 1.0 -> "up"
                | _ -> "DOWN")
                (match find samples "cluster_breaker_open" lbl with
                | Some 1.0 -> "open"
                | _ -> "closed")
                wrate
                (ms (find samples "service_latency_seconds_p50" lbl))
                (ms (find samples "service_latency_seconds_p99" lbl))
                (Option.value ~default:0.0 (find samples "cluster_worker_restarts" lbl)))
            workers;
          flush stdout
        end
  in
  let rec loop i =
    tick ();
    if count = 0 || i < count then begin
      Unix.sleepf interval;
      loop (i + 1)
    end
  in
  loop 1;
  if !failures = !ticks then 1 else 0

let top_cmd =
  let interval =
    Arg.(value & opt float 2.0 & info [ "interval"; "i" ] ~docv:"SECONDS"
           ~doc:"Seconds between scrapes.")
  in
  let count =
    Arg.(value & opt int 0 & info [ "count"; "n" ] ~docv:"N"
           ~doc:"Stop after N scrapes (0 = run until interrupted).")
  in
  let window =
    Arg.(value & opt int 10 & info [ "window" ] ~docv:"SECONDS"
           ~doc:"Sliding window, in seconds, for the req/s rates.")
  in
  let plain =
    Arg.(value & flag & info [ "plain" ]
           ~doc:"Append each refresh instead of redrawing the screen (for logs and CI).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live view of a cluster (or single daemon): per-worker request rates over a \
             sliding window, latency quantiles, breaker and supervision state, refreshed \
             from the federated metrics endpoint")
    Term.(const top_run $ addr_arg $ interval $ count $ window $ plain)

(* loadgen: concurrent load against a daemon or cluster *)

let loadgen_run addr instance_files connections duration stages law cap window out quiet =
  let fail msg =
    Format.eprintf "error: %s@." msg;
    exit 1
  in
  if connections < 1 then fail "need at least one connection";
  if duration <= 0.0 then fail "duration must be positive";
  let stages = max 1 (min stages connections) in
  let log = if quiet then null_ppf else Format.err_formatter in
  let instances =
    match instance_files with
    | [] ->
        [
          Instance_io.to_string Workload.Scenarios.example_a;
          Instance_io.to_string Workload.Scenarios.fig10_system;
          Instance_io.to_string (Workload.Scenarios.pattern_chain ~stages:3 ());
          Instance_io.to_string (Workload.Scenarios.pattern_chain ~stages:5 ());
        ]
    | files ->
        List.map
          (fun path ->
            match In_channel.with_open_text path In_channel.input_all with
            | text -> text
            | exception Sys_error msg -> fail msg)
          files
  in
  let request_lines =
    instances
    |> List.map (fun text ->
           Service.Json.render (Service.Client.solve_request ~law ?cap ~instance:text ()))
    |> Array.of_list
  in
  let registry = Obs.Metrics.create_registry () in
  let latency =
    Obs.Metrics.Histogram.create ~registry ~help:"client-observed request latency, seconds"
      ~buckets:[| 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0 |]
      "loadgen_request_seconds"
  in
  let win = Obs.Window.create ~seconds:window () in
  let ok = Atomic.make 0
  and errors = Atomic.make 0
  and transport = Atomic.make 0
  and retried = Atomic.make 0 in
  let t0 = Unix.gettimeofday () in
  let t_end = t0 +. duration in
  let stage_len = duration /. float_of_int stages in
  let stop = Atomic.make false in
  let worker i () =
    (* staged ramp: thread i joins at the start of its stage *)
    let stage = i * stages / connections in
    let start_at = t0 +. (float_of_int stage *. stage_len) in
    let now = Unix.gettimeofday () in
    if start_at > now then Thread.delay (start_at -. now);
    let conn = ref None in
    let rec get_conn attempt =
      if Atomic.get stop || Unix.gettimeofday () >= t_end then None
      else
        match !conn with
        | Some c -> Some c
        | None -> (
            match Service.Client.connect ~deadline:(Unix.gettimeofday () +. 2.0) addr with
            | Ok c ->
                conn := Some c;
                Some c
            | Error _ ->
                Atomic.incr transport;
                Thread.delay
                  (Supervise.Backoff.delay Supervise.Backoff.default_retry ~seed:i ~attempt:(min attempt 3));
                get_conn (attempt + 1))
    in
    let k = ref (i mod Array.length request_lines) in
    while (not (Atomic.get stop)) && Unix.gettimeofday () < t_end do
      match get_conn 0 with
      | None -> ()
      | Some c -> (
          let line = request_lines.(!k mod Array.length request_lines) in
          incr k;
          let before = Unix.gettimeofday () in
          match Service.Client.rpc_raw ~deadline:(before +. 5.0) c line with
          | Ok reply ->
              Obs.Metrics.Histogram.observe latency (Unix.gettimeofday () -. before);
              Obs.Window.add win ~now:(Unix.gettimeofday ());
              if
                String.length reply >= 1
                && Service.Client.reply_ok
                     (match Service.Json.parse reply with Ok j -> j | Error _ -> Service.Json.Null)
              then Atomic.incr ok
              else begin
                Atomic.incr errors;
                Atomic.incr retried
              end
          | Error _ ->
              Atomic.incr transport;
              (match !conn with Some c -> Service.Client.close c | None -> ());
              conn := None)
    done;
    match !conn with Some c -> Service.Client.close c | None -> ()
  in
  let threads = List.init connections (fun i -> Thread.create (worker i) ()) in
  let peak = ref 0.0 in
  let rec report () =
    let now = Unix.gettimeofday () in
    if now < t_end then begin
      Thread.delay (Float.min 1.0 (t_end -. now));
      let now = Unix.gettimeofday () in
      let rate = Obs.Window.rate win ~now in
      if rate > !peak then peak := rate;
      let stage = min (stages - 1) (int_of_float ((now -. t0) /. stage_len)) in
      let active = (stage + 1) * connections / stages in
      Format.fprintf log
        "loadgen: t=%5.1fs stage %d/%d conns=%d rate=%8.1f req/s ok=%d err=%d transport=%d@."
        (now -. t0) (stage + 1) stages (max 1 active) rate (Atomic.get ok) (Atomic.get errors)
        (Atomic.get transport);
      report ()
    end
  in
  report ();
  Atomic.set stop true;
  List.iter Thread.join threads;
  let elapsed = Unix.gettimeofday () -. t0 in
  let total = Obs.Metrics.Histogram.count latency in
  let q p = Obs.Metrics.Histogram.quantile latency p in
  let num f = if Float.is_nan f then Service.Json.Null else Service.Json.Float f in
  let json =
    Service.Json.Obj
      [
        ("bench", Service.Json.String "cluster-loadgen");
        ("addr", Service.Json.String (Service.Protocol.addr_to_string addr));
        ("connections", Service.Json.Int connections);
        ("stages", Service.Json.Int stages);
        ("duration_s", Service.Json.Float elapsed);
        ("instances", Service.Json.Int (Array.length request_lines));
        ("requests", Service.Json.Int total);
        ("ok", Service.Json.Int (Atomic.get ok));
        ("errors", Service.Json.Int (Atomic.get errors));
        ("transport_failures", Service.Json.Int (Atomic.get transport));
        ("throughput_rps", num (float_of_int total /. elapsed));
        ("window_rps_peak", num !peak);
        ( "latency_s",
          Service.Json.Obj
            [
              ( "mean",
                num
                  (if total = 0 then Float.nan
                   else Obs.Metrics.Histogram.sum latency /. float_of_int total) );
              ("p50", num (q 0.50));
              ("p90", num (q 0.90));
              ("p99", num (q 0.99));
            ] );
      ]
  in
  let rendered = Service.Json.render json in
  (match out with
  | Some path ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc rendered;
          Out_channel.output_char oc '\n')
  | None -> ());
  print_endline rendered;
  Format.fprintf log "loadgen: %d requests in %.1f s (%.1f req/s), p50=%.4fs p99=%.4fs@." total
    elapsed
    (float_of_int total /. elapsed)
    (q 0.50) (q 0.99);
  if Atomic.get ok = 0 then 1 else 0

let loadgen_cmd =
  let instances =
    Arg.(value & opt_all file [] & info [ "instance"; "i" ] ~docv:"FILE"
           ~doc:"Instance file(s) to cycle through (repeatable; default: four built-in \
                 scenarios of increasing size).")
  in
  let connections =
    Arg.(value & opt int 8 & info [ "connections"; "c" ] ~docv:"N"
           ~doc:"Concurrent client connections at full ramp.")
  in
  let duration =
    Arg.(value & opt float 10.0 & info [ "duration"; "d" ] ~docv:"SECONDS" ~doc:"Total run time.")
  in
  let stages =
    Arg.(value & opt int 4 & info [ "stages" ] ~docv:"K"
           ~doc:"Ramp stages: connection K/N of the fleet joins at stage K.")
  in
  let law =
    Arg.(value & opt service_law_conv Service.Engine.Exponential & info [ "law"; "l" ] ~docv:"LAW"
           ~doc:"Law for the generated solve requests.")
  in
  let cap =
    Arg.(value & opt (some int) None & info [ "cap" ] ~doc:"Marking exploration bound (strict).")
  in
  let window =
    Arg.(value & opt int 5 & info [ "window" ] ~docv:"SECONDS"
           ~doc:"Sliding window of the live throughput readout.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Write the result JSON here as well as stdout (e.g. BENCH_cluster.json).")
  in
  let quiet = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"No live readout on stderr.") in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Generate staged concurrent load against a daemon or cluster; report live \
             sliding-window throughput and exact latency quantiles")
    Term.(const loadgen_run $ addr_arg $ instances $ connections $ duration $ stages $ law $ cap
          $ window $ out $ quiet)

(* tenants: the multi-tenant shared-platform tier *)

let load_multi path =
  match Instance_io.parse_multi_file path with
  | Ok decls -> decls
  | Error msg ->
      Format.eprintf "error: %s@." msg;
      exit 2

let multi_request ~cmd ~instance ~model ~law ~cap ~wall =
  Service.Json.Obj
    ([
       ("v", Service.Json.Int Service.Protocol.version);
       ("cmd", Service.Json.String cmd);
       ("instance", Service.Json.String instance);
       ("model", Service.Json.String (Model.to_string model));
       ("law", Service.Json.String (Service.Engine.law_to_string law));
     ]
    @ (match cap with Some c -> [ ("cap", Service.Json.Int c) ] | None -> [])
    @ match wall with Some w -> [ ("wall", Service.Json.Float w) ] | None -> [])

(* one multi-tenant RPC: prints the raw reply line, returns the parsed
   JSON so callers can turn typed outcomes into exit codes *)
let multi_rpc addr request =
  let fail msg =
    Format.eprintf "error: %s@." msg;
    exit 1
  in
  let client =
    match Service.Client.connect addr with
    | Ok c -> c
    | Error e -> fail (Service.Client.error_message e)
  in
  Fun.protect ~finally:(fun () -> Service.Client.close client) @@ fun () ->
  match Service.Client.rpc_raw client (Service.Json.render request) with
  | Error e -> fail (Service.Client.error_message e)
  | Ok line -> (
      print_endline line;
      match Service.Json.parse line with Ok j -> j | Error msg -> fail msg)

let tenants_generate_run tenants procs stage_range team_range floor_frac seed over_budget model
    out =
  if tenants < 1 then begin
    Format.eprintf "error: need at least one tenant@.";
    exit 1
  end;
  let p =
    {
      Workload.Gen.default_mix with
      Workload.Gen.mix_tenants = tenants;
      mix_procs = procs;
      mix_stage_range = stage_range;
      mix_team_range = team_range;
      mix_floor_frac = floor_frac;
    }
  in
  let g = Prng.create ~seed in
  let decls = Workload.Gen.random_tenant_mix ~model g p in
  let decls = if over_budget then Workload.Gen.with_over_budget ~model decls else decls in
  let text = Instance_io.multi_to_string decls in
  (match out with
  | Some path -> Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc text)
  | None -> print_string text);
  0

let tenants_solve_run path model law cap wall socket check_des seed data_sets =
  match socket with
  | Some addr ->
      let instance =
        match In_channel.with_open_text path In_channel.input_all with
        | text -> text
        | exception Sys_error msg ->
            Format.eprintf "error: %s@." msg;
            exit 1
      in
      let reply =
        multi_rpc addr
          (multi_request ~cmd:"solve_multi" ~instance ~model ~law ~cap ~wall)
      in
      if Service.Client.reply_ok reply then 0
      else if Service.Client.reply_error_kind reply = Some "admission_rejected" then 5
      else 1
  | None -> (
      let decls = load_multi path in
      match Tenancy.Platform_share.create ~tenants:decls with
      | Error msg ->
          Format.eprintf "error: %s@." msg;
          exit 2
      | Ok ps ->
          let k = Tenancy.Platform_share.n_tenants ps in
          let cap = Option.value cap ~default:Service.Engine.default_cap in
          Format.printf "%-10s %8s %10s %12s %12s@." "tenant" "weight" "floor" "bound"
            "exponential";
          let violated = ref [] in
          for i = 0 to k - 1 do
            let d = Tenancy.Platform_share.decl ps i in
            let bound = Tenancy.Platform_share.bound ps ~tenant:i model in
            let expo = Tenancy.Platform_share.exponential_throughput ~cap ps ~tenant:i model in
            if bound < d.Instance_io.floor then
              violated := d.Instance_io.tenant_id :: !violated;
            Format.printf "%-10s %8.4f %10.6g %12.6g %12.6g%s@." d.Instance_io.tenant_id
              d.Instance_io.weight d.Instance_io.floor bound expo
              (if bound < d.Instance_io.floor then "  (floor violated)" else "")
          done;
          (match !violated with
          | [] -> ()
          | ids ->
              Format.printf "floor violations      : %s@." (String.concat ", " (List.rev ids)));
          (match check_des with
          | None -> if !violated = [] then () else exit 5
          | Some tol ->
              let estimates =
                Tenancy.Sim.cross_check ~cap ps model ~seed ~data_sets
              in
              Format.printf "-- DES cross-check (seed %d, %d data sets per tenant) --@." seed
                data_sets;
              let worst = ref 0.0 in
              List.iter
                (fun e ->
                  if e.Tenancy.Sim.rel_err > !worst then worst := e.Tenancy.Sim.rel_err;
                  Format.printf "%-10s des %12.6g exact %12.6g rel.err %6.2f%%@."
                    e.Tenancy.Sim.id e.Tenancy.Sim.des e.Tenancy.Sim.exact
                    (100.0 *. e.Tenancy.Sim.rel_err))
                estimates;
              if !worst > tol then begin
                Format.eprintf
                  "error: DES and exact per-tenant throughput diverge: %.2f%% > %.2f%%@."
                  (100.0 *. !worst) (100.0 *. tol);
                exit 6
              end;
              if !violated <> [] then exit 5);
          0)

let tenants_admit_run path model law socket expect_reject =
  let finish ~rejected =
    if expect_reject && not rejected then begin
      Format.eprintf "error: expected at least one rejection; every tenant was admitted@.";
      4
    end
    else 0
  in
  match socket with
  | Some addr ->
      let instance =
        match In_channel.with_open_text path In_channel.input_all with
        | text -> text
        | exception Sys_error msg ->
            Format.eprintf "error: %s@." msg;
            exit 1
      in
      let reply =
        multi_rpc addr (multi_request ~cmd:"admit" ~instance ~model ~law ~cap:None ~wall:None)
      in
      if not (Service.Client.reply_ok reply) then 1
      else
        let rejected =
          match
            Option.bind (Service.Client.reply_result reply) (Service.Json.member "steps")
          with
          | Some (Service.Json.List steps) ->
              List.exists
                (fun s ->
                  match Service.Json.member "admitted" s with
                  | Some (Service.Json.Bool b) -> not b
                  | _ -> false)
                steps
          | _ -> false
        in
        finish ~rejected
  | None -> (
      let decls = load_multi path in
      match Tenancy.Admission.sequence ~model decls with
      | Error msg ->
          Format.eprintf "error: %s@." msg;
          exit 2
      | Ok steps ->
          List.iter
            (fun (s : Tenancy.Admission.step) ->
              let id = s.Tenancy.Admission.decl.Instance_io.tenant_id in
              match s.Tenancy.Admission.rejection with
              | None ->
                  Format.printf "%-10s admitted  (bounds: %s)@." id
                    (String.concat ", "
                       (List.map
                          (fun (t, b) -> Printf.sprintf "%s=%.6g" t b)
                          s.Tenancy.Admission.bounds))
              | Some r ->
                  Format.printf "%-10s REJECTED  victim %s: bound %.6g < floor %.6g@." id
                    r.Tenancy.Admission.victim r.Tenancy.Admission.bound
                    r.Tenancy.Admission.floor)
            steps;
          let admitted = Tenancy.Admission.admitted steps in
          Format.printf "admitted              : %s@."
            (String.concat ", "
               (List.map (fun d -> d.Instance_io.tenant_id) admitted));
          finish
            ~rejected:(List.exists (fun (s : Tenancy.Admission.step) -> not s.Tenancy.Admission.admitted) steps))

let tenants_cmd =
  let multi_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"MIX"
           ~doc:"Multi-tenant instance file ([tenancy 1] block).")
  in
  let socket_opt =
    Arg.(value & opt (some addr_conv) None & info [ "socket"; "s" ] ~docv:"ADDR"
           ~doc:"Send the request to a running daemon or cluster instead of solving locally.")
  in
  let law =
    Arg.(value & opt service_law_conv Service.Engine.Exponential & info [ "law"; "l" ] ~docv:"LAW"
           ~doc:"Law for the daemon-side solve: deterministic, exponential or erlang:K.")
  in
  let generate =
    let tenants =
      Arg.(value & opt int 3 & info [ "tenants"; "k" ] ~docv:"K" ~doc:"Number of tenants.")
    in
    let procs =
      Arg.(value & opt int 8 & info [ "procs"; "p" ] ~docv:"M" ~doc:"Shared processor count.")
    in
    let stage_range =
      Arg.(value & opt (pair int int) (2, 3) & info [ "stages" ] ~docv:"LO,HI"
             ~doc:"Stage count per tenant, drawn uniformly in this inclusive range.")
    in
    let team_range =
      Arg.(value & opt (pair int int) (3, 5) & info [ "team" ] ~docv:"LO,HI"
             ~doc:"Processors per tenant, drawn uniformly in this inclusive range.")
    in
    let floor_frac =
      Arg.(value & opt float 0.5 & info [ "floor-frac" ] ~docv:"F"
             ~doc:"Floors as a fraction of each tenant's contended admission bound; below 1.0 \
                   the whole mix is admissible by construction.")
    in
    let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
    let over_budget =
      Arg.(value & flag & info [ "over-budget" ]
             ~doc:"Append a \"greedy\" clone of the last tenant whose floor is set to twice its \
                   own bound — a tenant the admission sequence must reject.")
    in
    let out =
      Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
             ~doc:"Write the mix here instead of stdout.")
    in
    Cmd.v
      (Cmd.info "generate" ~doc:"Generate a random tenant mix on one shared platform")
      Term.(const tenants_generate_run $ tenants $ procs $ stage_range $ team_range $ floor_frac
            $ seed $ over_budget $ model_arg $ out)
  in
  let solve =
    let cap =
      Arg.(value & opt (some int) None & info [ "cap" ]
             ~doc:"Marking exploration bound (strict exponential solves).")
    in
    let wall =
      Arg.(value & opt (some float) None & info [ "wall" ] ~docv:"SECONDS"
             ~doc:"Whole-request wall budget for the daemon-side solve (split across tenants \
                   by weight).")
    in
    let check_des =
      Arg.(value & opt (some float) None & info [ "check-des" ] ~docv:"TOL"
             ~doc:"Cross-check every tenant's exact throughput against an interleaved-tenant \
                   discrete-event simulation; exit 6 if any relative error exceeds $(docv).")
    in
    let seed =
      Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"DES cross-check seed.")
    in
    let data_sets =
      Arg.(value & opt int 4000 & info [ "data-sets" ] ~docv:"N"
             ~doc:"Data sets per tenant in the DES cross-check.")
    in
    Cmd.v
      (Cmd.info "solve"
         ~doc:"Per-tenant throughput of a mix under contention (local table, or solve_multi \
               against a daemon)")
      Term.(const tenants_solve_run $ multi_file $ model_arg $ law $ cap $ wall $ socket_opt
            $ check_des $ seed $ data_sets)
  in
  let admit =
    let expect_reject =
      Arg.(value & flag & info [ "expect-reject" ]
             ~doc:"Fail (exit 4) unless the audit rejects at least one tenant.")
    in
    Cmd.v
      (Cmd.info "admit"
         ~doc:"Sequential admission audit of a mix in declaration order (local, or the \
               daemon's admit command)")
      Term.(const tenants_admit_run $ multi_file $ model_arg $ law $ socket_opt $ expect_reject)
  in
  Cmd.group
    (Cmd.info "tenants"
       ~doc:"Multi-tenant tier: generate tenant mixes, solve per-tenant throughput under \
             contention, audit admission control")
    [ generate; solve; admit ]

let main =
  Cmd.group
    (Cmd.info "streaming_cli" ~version:"1.0.0"
       ~doc:"Throughput of probabilistic and replicated streaming applications")
    [
      analyze_cmd;
      bounds_cmd;
      simulate_cmd;
      experiment_cmd;
      experiments_cmd;
      profile_cmd;
      list_cmd;
      dot_cmd;
      optimize_cmd;
      statespace_cmd;
      template_cmd;
      serve_cmd;
      query_cmd;
      cluster_cmd;
      top_cmd;
      loadgen_cmd;
      tenants_cmd;
    ]

let () = exit (Cmd.eval' main)
