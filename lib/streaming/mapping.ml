type t = {
  app : Application.t;
  platform : Platform.t;
  teams : int array array;
  stage_of_proc : int option array;
  m : int;  (** lcm of the replication factors *)
}

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let lcm a b =
  let g = gcd a b in
  let r = a / g * b in
  if r <= 0 || r / b <> a / g then invalid_arg "Mapping: lcm of replication factors overflows";
  r

let comm_time t ~file ~src ~dst =
  Application.file_size t.app file /. Platform.bandwidth t.platform ~src ~dst

let create ~app ~platform ~teams =
  let n = Application.n_stages app in
  let m_procs = Platform.n_processors platform in
  if Array.length teams <> n then invalid_arg "Mapping.create: one team per stage required";
  let stage_of_proc = Array.make m_procs None in
  Array.iteri
    (fun i team ->
      if Array.length team = 0 then invalid_arg "Mapping.create: empty team";
      Array.iter
        (fun p ->
          if p < 0 || p >= m_procs then invalid_arg "Mapping.create: processor id out of range";
          match stage_of_proc.(p) with
          | Some _ -> invalid_arg "Mapping.create: a processor may execute at most one stage"
          | None -> stage_of_proc.(p) <- Some i)
        team)
    teams;
  let m = Array.fold_left (fun acc team -> lcm acc (Array.length team)) 1 teams in
  let t = { app; platform; teams = Array.map Array.copy teams; stage_of_proc; m } in
  (* Validate the communication times of every link the round-robin will
     actually use: downstream exponential analysis inverts them into
     rates, so a zero or near-zero time (zero-byte file, infinite
     bandwidth) would silently produce infinite rates that poison the
     marking CTMC.  Failing here gives the caller a clear error at
     mapping-construction time instead. *)
  for file = 0 to n - 2 do
    let senders = teams.(file) and receivers = teams.(file + 1) in
    let g = gcd (Array.length senders) (Array.length receivers) in
    Array.iteri
      (fun a src ->
        Array.iteri
          (fun b dst ->
            if a mod g = b mod g then begin
              let time = comm_time t ~file ~src ~dst in
              if (not (Float.is_finite time)) || time <= 1e-30 then
                invalid_arg
                  (Printf.sprintf
                     "Mapping.create: communication time of file F%d on link P%d->P%d is %g \
                      (zero-byte file or infinite bandwidth); exponential rates would be infinite"
                     (file + 1) src dst time)
            end)
          receivers)
      senders
  done;
  t

let app t = t.app
let platform t = t.platform
let n_stages t = Application.n_stages t.app
let n_processors t = Platform.n_processors t.platform
let team t i = Array.copy t.teams.(i)
let replication t = Array.map Array.length t.teams
let rows t = t.m
let proc_at t ~stage ~row = t.teams.(stage).(row mod Array.length t.teams.(stage))
let stage_of t p = t.stage_of_proc.(p)

let comp_time t ~stage ~proc = Application.work t.app stage /. Platform.speed t.platform proc

let mean_time t resource =
  match resource with
  | Resource.Compute p -> (
      match t.stage_of_proc.(p) with
      | Some stage -> comp_time t ~stage ~proc:p
      | None -> invalid_arg "Mapping.mean_time: processor not mapped")
  | Resource.Transfer (src, dst) -> (
      match (t.stage_of_proc.(src), t.stage_of_proc.(dst)) with
      | Some i, Some j when j = i + 1 -> comm_time t ~file:i ~src ~dst
      | _ -> invalid_arg "Mapping.mean_time: link not used by the mapping")

let resources t =
  let computes =
    Array.to_list t.teams |> List.concat_map Array.to_list
    |> List.sort compare
    |> List.map (fun p -> Resource.Compute p)
  in
  let transfers = ref [] in
  for i = n_stages t - 2 downto 0 do
    let senders = t.teams.(i) and receivers = t.teams.(i + 1) in
    (* The round-robin pairs sender index a with receiver index b on rows
       j ≡ a (mod R_i), j ≡ b (mod R_{i+1}): the link exists iff a ≡ b
       modulo gcd(R_i, R_{i+1}). *)
    let g = gcd (Array.length senders) (Array.length receivers) in
    Array.iteri
      (fun b q ->
        Array.iteri
          (fun a p -> if a mod g = b mod g then transfers := Resource.Transfer (p, q) :: !transfers)
          senders)
      receivers
  done;
  computes @ !transfers

let pp ppf t =
  Format.fprintf ppf "mapping (%d stages on %d processors, %d paths)@\n" (n_stages t)
    (n_processors t) t.m;
  Array.iteri
    (fun i team ->
      Format.fprintf ppf "  T%d -> {" (i + 1);
      Array.iteri (fun k p -> Format.fprintf ppf "%sP%d" (if k > 0 then ", " else "") p) team;
      Format.fprintf ppf "}@\n")
    t.teams
