let completions mapping model ~laws ~seed ~data_sets =
  if data_sets < 1 then invalid_arg "Teg_sim.completions: need at least one data set";
  Obs.Trace.span "streaming:eg_sim" @@ fun () ->
  Obs.Trace.add_attr "data_sets" (string_of_int data_sets);
  let tpn = Tpn.build mapping model in
  let teg = Tpn.teg tpn in
  let m = Tpn.n_rows tpn in
  let iterations = (data_sets + m - 1) / m in
  let g = Prng.create ~seed in
  let dist_of = Array.init (Petrinet.Teg.n_transitions teg) (fun v -> laws (Tpn.resource_of tpn v)) in
  let sample ~transition ~firing:_ = Dist.sample dist_of.(transition) g in
  let series = Petrinet.Eg_sim.simulate ~sample teg ~iterations ~watch:(Tpn.last_column tpn) in
  let merged = Petrinet.Eg_sim.merged_completions series in
  (* every row simulates the same number of firings, so when decoupled
     rows run at different speeds the fastest row stops producing first;
     only the window where every row is still active reflects the system
     rate — truncate at the earliest per-row final completion *)
  let horizon =
    Array.fold_left (fun acc row -> min acc row.(iterations - 1)) infinity series
  in
  let cut = ref (Array.length merged) in
  (try
     Array.iteri
       (fun i c ->
         if c > horizon then begin
           cut := i;
           raise Exit
         end)
       merged
   with Exit -> ());
  Array.sub merged 0 !cut

let throughput ?warmup_fraction mapping model ~laws ~seed ~data_sets =
  let series = completions mapping model ~laws ~seed ~data_sets in
  Stats.Series.throughput_of_completions ?warmup_fraction series

let replicated_throughputs ?pool ?warmup_fraction mapping model ~laws ~seeds ~data_sets =
  let pool = match pool with Some p -> p | None -> Parallel.Pool.get () in
  Parallel.Pool.map_list pool
    (fun seed -> throughput ?warmup_fraction mapping model ~laws ~seed ~data_sets)
    seeds
