(** Stochastic simulation of a mapping through its timed event graph — the
    role played by the ERS tool `eg_sim` in §7.

    The TPN of the mapping is simulated by iterating its dater recurrence
    with operation durations drawn independently from each resource's law;
    the throughput is estimated from the completion instants of the last
    column (one per processed data set). *)

val completions :
  Mapping.t -> Model.t -> laws:Laws.t -> seed:int -> data_sets:int -> float array
(** Completion times of (at least) [data_sets] consecutive data sets,
    sorted. *)

val throughput :
  ?warmup_fraction:float ->
  Mapping.t ->
  Model.t ->
  laws:Laws.t ->
  seed:int ->
  data_sets:int ->
  float
(** Steady-state throughput estimate (least-squares slope of the completion
    sequence, skipping the transient prefix). *)

val replicated_throughputs :
  ?pool:Parallel.Pool.t ->
  ?warmup_fraction:float ->
  Mapping.t ->
  Model.t ->
  laws:Laws.t ->
  seeds:int list ->
  data_sets:int ->
  float list
(** One {!throughput} estimate per seed, in seed order, the replications
    running on [pool] (default {!Parallel.Pool.get}).  Each replica draws
    from its own generator seeded by its own seed, so the result list is
    identical for every pool size. *)
