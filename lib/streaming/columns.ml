type communication = {
  file : int;
  residue : int;
  u : int;
  v : int;
  senders : int array;
  receivers : int array;
}

type component = Compute of { stage : int; proc : int } | Communication of communication

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let pattern_time mapping comm ~sender ~receiver =
  Mapping.comm_time mapping ~file:comm.file ~src:comm.senders.(sender)
    ~dst:comm.receivers.(receiver)

let is_homogeneous mapping comm =
  let reference = pattern_time mapping comm ~sender:0 ~receiver:0 in
  (* relative tolerance with an absolute floor: a (near-)zero reference
     time would otherwise collapse the tolerance to zero and declare a
     homogeneous component heterogeneous on float noise *)
  let tol = Float.max (1e-12 *. abs_float reference) 1e-15 in
  let same = ref true in
  for s = 0 to comm.u - 1 do
    for r = 0 to comm.v - 1 do
      let t = pattern_time mapping comm ~sender:s ~receiver:r in
      if abs_float (t -. reference) > tol then same := false
    done
  done;
  !same

let communication_components mapping file =
  let senders_team = Mapping.team mapping file in
  let receivers_team = Mapping.team mapping (file + 1) in
  let r_in = Array.length senders_team and r_out = Array.length receivers_team in
  let g = gcd r_in r_out in
  let u = r_in / g and v = r_out / g in
  List.init g (fun residue ->
      Communication
        {
          file;
          residue;
          u;
          v;
          senders = Array.init u (fun a -> senders_team.((residue + (a * g)) mod r_in));
          receivers = Array.init v (fun b -> receivers_team.((residue + (b * g)) mod r_out));
        })

let components mapping =
  let n = Mapping.n_stages mapping in
  let per_stage stage =
    let computes =
      Array.to_list (Mapping.team mapping stage) |> List.map (fun p -> Compute { stage; proc = p })
    in
    if stage < n - 1 then computes @ communication_components mapping stage else computes
  in
  List.concat_map per_stage (List.init n Fun.id)

let rows_of mapping = function
  | Compute { stage; proc } ->
      let team = Mapping.team mapping stage in
      let r_i = Array.length team in
      let idx =
        match Array.find_index (Int.equal proc) team with
        | Some idx -> idx
        | None -> invalid_arg "Columns: processor not in team"
      in
      let m = Mapping.rows mapping in
      List.init (m / r_i) (fun k -> idx + (k * r_i))
  | Communication { file; residue; u; v; _ } ->
      let g =
        gcd (Array.length (Mapping.team mapping file)) (Array.length (Mapping.team mapping (file + 1)))
      in
      ignore (u, v);
      let m = Mapping.rows mapping in
      List.init (m / g) (fun k -> residue + (k * g))

let fold_throughput ?pool mapping ~inner =
  let pool = match pool with Some p -> p | None -> Parallel.Pool.get () in
  let comps = Array.of_list (components mapping) in
  (* the inner solves (one CTMC per communication component) are
     independent and dominate the cost: run them on the pool, then do the
     cheap rate propagation sequentially in column order *)
  let inners = Parallel.Pool.map pool inner comps in
  let m = Mapping.rows mapping in
  let row_rate = Array.make m infinity in
  Array.iteri
    (fun k component ->
      let rows = rows_of mapping component in
      let count = float_of_int (List.length rows) in
      let inner_per_row = inners.(k) /. count in
      let input_rate = List.fold_left (fun acc j -> min acc row_rate.(j)) infinity rows in
      let rate = min inner_per_row input_rate in
      List.iter (fun j -> row_rate.(j) <- rate) rows)
    comps;
  Array.fold_left ( +. ) 0.0 row_rate
