let overlap_throughput ?pool ?pattern_cap ?(closed_form_only = false) mapping =
  let inner = function
    | Columns.Compute { stage; proc } -> 1.0 /. Mapping.comp_time mapping ~stage ~proc
    | Columns.Communication comm ->
        let u = comm.Columns.u and v = comm.Columns.v in
        if Columns.is_homogeneous mapping comm then
          let lambda = 1.0 /. Columns.pattern_time mapping comm ~sender:0 ~receiver:0 in
          Young.Pattern.homogeneous_inner_throughput ~u ~v ~lambda
        else if closed_form_only then
          invalid_arg "Expo.overlap_throughput: heterogeneous component under closed_form_only"
        else
          Young.Pattern.exponential_inner_throughput ?cap:pattern_cap ~u ~v
            ~rate:(fun ~sender ~receiver ->
              1.0 /. Columns.pattern_time mapping comm ~sender ~receiver)
            ()
  in
  Columns.fold_throughput ?pool mapping ~inner

let markov_throughput ?cap tpn =
  let teg = Tpn.teg tpn in
  let rates v = 1.0 /. Petrinet.Teg.time teg v in
  let chain = Markov.Tpn_markov.analyse ?cap ~rates teg in
  Markov.Tpn_markov.throughput_of chain (Tpn.last_column tpn)

let strict_throughput ?cap mapping = markov_throughput ?cap (Tpn.build mapping Model.Strict)

(* Supervised variant: the exact/iterative pipeline runs under a budget and
   an escalation ladder; if the whole ladder fails (or the state space blows
   the cap) and a [simulate] rung is supplied, the result degrades to a
   simulation estimate instead of an exception. *)
let m_des_fallback =
  Obs.Metrics.Counter.create
    ~help:"Supervised strict solves that degraded to the DES simulation rung"
    "expo_des_fallback_total"

let strict_throughput_supervised ?cap ?budget ?ladder ?simulate mapping =
  Obs.Trace.span "expo:strict_supervised" @@ fun () ->
  let tpn = Tpn.build mapping Model.Strict in
  let teg = Tpn.teg tpn in
  let rates v = 1.0 /. Petrinet.Teg.time teg v in
  try
    let chain, provenance =
      Markov.Tpn_markov.analyse_supervised ?cap ?budget ?ladder ~rates teg
    in
    (Markov.Tpn_markov.throughput_of chain (Tpn.last_column tpn), provenance)
  with Supervise.Error.Solver_error err as exn -> (
    match simulate with
    | None -> raise exn
    | Some sim ->
        let prior =
          [ { Supervise.Provenance.rung = "general-method"; outcome = Error err } ]
        in
        Obs.Metrics.Counter.incr m_des_fallback;
        let value, ci =
          Obs.Trace.span "expo:des_fallback" (fun () -> sim ())
        in
        (value, Supervise.Provenance.solved ~rung:"des" ~prior (Supervise.Provenance.Simulated { ci })))

(* Bound every row-forward place of the Overlap TPN by a back-place with
   [buffer] tokens: the marking space becomes finite, at the price of a
   blocking semantics that underestimates the true throughput (the gap
   vanishes as the buffer grows). *)
let bound_row_places tpn ~buffer =
  let teg = Tpn.teg tpn in
  let forward =
    List.filter
      (fun p ->
        (* row-forward places: same row, next column (ring places stay in
           one column, self-loops are excluded by the column test) *)
        Tpn.row_of tpn p.Petrinet.Teg.src = Tpn.row_of tpn p.Petrinet.Teg.dst
        && Tpn.col_of tpn p.Petrinet.Teg.dst = Tpn.col_of tpn p.Petrinet.Teg.src + 1)
      (Petrinet.Teg.places teg)
  in
  List.iter
    (fun p -> Petrinet.Teg.add_place teg ~src:p.Petrinet.Teg.dst ~dst:p.Petrinet.Teg.src ~tokens:buffer)
    forward

let general_throughput ?cap ?(buffer = 4) mapping model =
  let tpn = Tpn.build mapping model in
  (match model with
  | Model.Overlap -> bound_row_places tpn ~buffer
  | Model.Strict -> ());
  markov_throughput ?cap tpn

let throughput mapping = function
  | Model.Overlap -> overlap_throughput mapping
  | Model.Strict -> strict_throughput mapping

let overlap_throughput_erlang ?pool ?pattern_cap ~phases mapping =
  if phases < 1 then invalid_arg "Expo.overlap_throughput_erlang: phases must be at least 1";
  let inner = function
    | Columns.Compute { stage; proc } ->
        (* a saturated single server completes at 1/mean for any law *)
        1.0 /. Mapping.comp_time mapping ~stage ~proc
    | Columns.Communication comm ->
        Young.Pattern.erlang_inner_throughput ?cap:pattern_cap ~phases ~u:comm.Columns.u
          ~v:comm.Columns.v
          ~rate:(fun ~sender ~receiver ->
            1.0 /. Columns.pattern_time mapping comm ~sender ~receiver)
          ()
  in
  Columns.fold_throughput ?pool mapping ~inner

let strict_throughput_erlang ?cap ~phases mapping =
  if phases < 1 then invalid_arg "Expo.strict_throughput_erlang: phases must be at least 1";
  let tpn = Tpn.build mapping Model.Strict in
  let teg = Tpn.teg tpn in
  let expansion = Petrinet.Expand.erlang ~phases:(fun _ -> phases) teg in
  let original_rate v = 1.0 /. Petrinet.Teg.time teg v in
  let rates id = Petrinet.Expand.phase_rates expansion ~original_rate id in
  let chain = Markov.Tpn_markov.analyse ?cap ~rates (Petrinet.Expand.teg expansion) in
  Markov.Tpn_markov.throughput_of chain
    (List.map (fun v -> Petrinet.Expand.last expansion v) (Tpn.last_column tpn))

let overlap_throughput_ph ?pool ?pattern_cap ~ph mapping =
  let inner = function
    | Columns.Compute { stage; proc } ->
        (* a saturated single server completes at 1/mean for any law *)
        1.0 /. Mapping.comp_time mapping ~stage ~proc
    | Columns.Communication comm ->
        Young.Pattern.ph_inner_throughput ?cap:pattern_cap ~u:comm.Columns.u ~v:comm.Columns.v
          ~ph:(fun ~sender ~receiver ->
            ph (Resource.Transfer (comm.Columns.senders.(sender), comm.Columns.receivers.(receiver))))
          ()
  in
  Columns.fold_throughput ?pool mapping ~inner

let strict_throughput_ph ?cap ~ph mapping =
  let tpn = Tpn.build mapping Model.Strict in
  let teg = Tpn.teg tpn in
  let ph_of v = ph (Tpn.resource_of tpn v) in
  let chain = Markov.Tpn_markov_ph.analyse ?cap ~ph_of teg in
  Markov.Tpn_markov_ph.throughput_of chain (Tpn.last_column tpn)
