(** Throughput with I.I.D. exponential computation and communication times
    (§5).  Rates are the inverses of the nominal (mean) durations of the
    mapping. *)

val overlap_throughput :
  ?pool:Parallel.Pool.t -> ?pattern_cap:int -> ?closed_form_only:bool -> Mapping.t -> float
(** Theorem 3's per-column decomposition for the Overlap model.
    Each communication component is analysed through its pattern CTMC
    (S(u,v) states), except that components with homogeneous link times use
    Theorem 4's closed form u*v*lambda/(u+v-1) directly.  With
    [closed_form_only] (default false), a heterogeneous component raises
    [Invalid_argument] instead of building the CTMC — this is the
    polynomial-time algorithm of Theorem 4. *)

val strict_throughput : ?cap:int -> Mapping.t -> float
(** Theorem 2's general method on the Strict TPN: reachable markings →
    CTMC → stationary firing rate of the last column.  The Strict TPN is
    covered by token-invariant cycles, so its marking space is finite; the
    cost is exponential in the replication factors. *)

val strict_throughput_supervised :
  ?cap:int ->
  ?budget:Supervise.Budget.t ->
  ?ladder:Markov.Ctmc.rung list ->
  ?simulate:(unit -> float * float) ->
  Mapping.t ->
  float * Supervise.Provenance.t
(** {!strict_throughput} under supervision: exploration respects [cap] and
    the [budget]'s state ceiling / wall deadline, the stationary solve
    climbs {!Markov.Ctmc.stationary_supervised}'s ladder, and the returned
    provenance records every attempt.  If the whole exact/iterative
    pipeline fails and [simulate] is supplied, its [(estimate, ci)] result
    is returned as a degraded [Simulated] value instead of raising;
    without [simulate] the final [Supervise.Error.Solver_error]
    propagates. *)

val general_throughput : ?cap:int -> ?buffer:int -> Mapping.t -> Model.t -> float
(** The general method on the full TPN of either model.  The Overlap TPN
    has unbounded forward places, so for [Model.Overlap] the row places
    are bounded by back-places holding [buffer] tokens (default 4) —
    a finite blocking approximation that converges to the true throughput
    from below as [buffer] grows.  For [Model.Strict] this is exact and
    [buffer] is ignored. *)

val throughput : Mapping.t -> Model.t -> float
(** Dispatch: {!overlap_throughput} for Overlap, {!strict_throughput} for
    Strict. *)

val overlap_throughput_erlang :
  ?pool:Parallel.Pool.t -> ?pattern_cap:int -> phases:int -> Mapping.t -> float
(** Exact throughput when every operation time is Erlang([phases]) with
    the nominal means (Overlap model): same per-column decomposition as
    {!overlap_throughput}, with each communication pattern analysed
    through its phase-expanded marking CTMC.  [phases = 1] is the
    exponential case; increasing [phases] interpolates monotonically
    towards the deterministic case — an exact refinement of the Theorem 7
    sandwich for Erlang laws (which are N.B.U.E.).  Computation
    components are insensitive (a saturated serial server produces at
    rate 1/mean under any law). *)

val strict_throughput_erlang : ?cap:int -> phases:int -> Mapping.t -> float
(** The general method on the phase-expanded Strict TPN: exact Erlang
    throughput, at a marking-space cost growing quickly with [phases]. *)

val overlap_throughput_ph :
  ?pool:Parallel.Pool.t -> ?pattern_cap:int -> ph:(Resource.t -> Markov.Ph.t) -> Mapping.t -> float
(** Exact throughput for arbitrary phase-type operation times (Overlap
    model), through the phase-augmented marking chains of
    {!Markov.Tpn_markov_ph}.  The law of each resource must have the
    resource's nominal mean (use {!Markov.Ph.with_mean}); computation
    components are rate-insensitive, communication patterns are solved
    exactly.  Hyperexponential (D.F.R.) laws give exact values *below*
    the exponential bound of Theorem 7. *)

val strict_throughput_ph : ?cap:int -> ph:(Resource.t -> Markov.Ph.t) -> Mapping.t -> float
(** The phase-augmented general method on the Strict TPN: exact throughput
    for arbitrary phase-type operation times.  State space = markings ×
    enabled phases; keep laws and replication small. *)
