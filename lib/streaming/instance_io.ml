let strip_comment line = match String.index_opt line '#' with None -> line | Some i -> String.sub line 0 i

let tokens_of_line line =
  strip_comment line |> String.split_on_char ' '
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse text =
  let lines = String.split_on_char '\n' text in
  let n_stages = ref None in
  let work = ref None in
  let files = ref None in
  let n_procs = ref None in
  let speeds = ref None in
  let bw_default = ref None in
  let bw_overrides = ref [] in
  let teams = ref [] in
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  let float_of s = match float_of_string_opt s with Some f -> Some f | None -> None in
  let floats rest =
    let parsed = List.map float_of rest in
    if List.exists (( = ) None) parsed then None
    else Some (Array.of_list (List.map Option.get parsed))
  in
  let ints rest =
    let parsed = List.map int_of_string_opt rest in
    if List.exists (( = ) None) parsed then None
    else Some (Array.of_list (List.map Option.get parsed))
  in
  (* numeric sanity is checked where the line number is still at hand, so a
     NaN three screens into a file is reported as "line 47: ...", not as a
     late [Invalid_argument] from the model constructors *)
  let bad ~strict v = (not (Float.is_finite v)) || if strict then v <= 0.0 else v < 0.0 in
  let any_bad ~strict a = Array.exists (bad ~strict) a in
  List.iteri
    (fun lineno raw ->
      let lineno = lineno + 1 in
      match tokens_of_line raw with
      | [] -> ()
      | "stages" :: [ n ] -> (
          match int_of_string_opt n with
          | Some n -> n_stages := Some n
          | None -> fail (Printf.sprintf "line %d: bad stage count" lineno))
      | "processors" :: [ n ] -> (
          match int_of_string_opt n with
          | Some n -> n_procs := Some n
          | None -> fail (Printf.sprintf "line %d: bad processor count" lineno))
      | "work" :: rest -> (
          match floats rest with
          | Some a when any_bad ~strict:true a ->
              fail (Printf.sprintf "line %d: work sizes must be finite and positive" lineno)
          | Some a -> work := Some a
          | None -> fail (Printf.sprintf "line %d: bad work sizes" lineno))
      | "files" :: rest -> (
          match floats rest with
          | Some a when any_bad ~strict:false a ->
              fail (Printf.sprintf "line %d: file sizes must be finite and non-negative" lineno)
          | Some a -> files := Some a
          | None -> fail (Printf.sprintf "line %d: bad file sizes" lineno))
      | "speeds" :: rest -> (
          match floats rest with
          | Some a when any_bad ~strict:true a ->
              fail (Printf.sprintf "line %d: speeds must be finite and positive" lineno)
          | Some a -> speeds := Some a
          | None -> fail (Printf.sprintf "line %d: bad speeds" lineno))
      | [ "bandwidth"; "default"; v ] -> (
          match float_of v with
          | Some b when bad ~strict:true b ->
              fail (Printf.sprintf "line %d: default bandwidth must be finite and positive" lineno)
          | Some b -> bw_default := Some b
          | None -> fail (Printf.sprintf "line %d: bad default bandwidth" lineno))
      | [ "bandwidth"; p; q; v ] -> (
          match (int_of_string_opt p, int_of_string_opt q, float_of v) with
          | Some _, Some _, Some b when bad ~strict:true b ->
              fail (Printf.sprintf "line %d: bandwidth must be finite and positive" lineno)
          | Some p, Some q, Some b -> bw_overrides := (lineno, p, q, b) :: !bw_overrides
          | _ -> fail (Printf.sprintf "line %d: bad bandwidth override" lineno))
      | "team" :: rest -> (
          match ints rest with
          | Some a when Array.length a > 0 -> teams := a :: !teams
          | _ -> fail (Printf.sprintf "line %d: bad team" lineno))
      | keyword :: _ -> fail (Printf.sprintf "line %d: unknown keyword %s" lineno keyword))
    lines;
  match !error with
  | Some msg -> Error msg
  | None -> (
      match (!n_stages, !work, !n_procs, !speeds, !bw_default) with
      | None, _, _, _, _ -> Error "missing 'stages'"
      | _, None, _, _, _ -> Error "missing 'work'"
      | _, _, None, _, _ -> Error "missing 'processors'"
      | _, _, _, None, _ -> Error "missing 'speeds'"
      | _, _, _, _, None -> Error "missing 'bandwidth default'"
      | Some n, Some work, Some m, Some speeds, Some bw ->
          let files = match !files with Some f -> f | None -> [||] in
          let teams = Array.of_list (List.rev !teams) in
          if Array.length teams <> n then Error "need exactly one 'team' line per stage"
          else begin
            let bandwidth = Array.init m (fun _ -> Array.make m bw) in
            let range_error = ref None in
            List.iter
              (fun (lineno, p, q, b) ->
                if p >= 0 && p < m && q >= 0 && q < m then bandwidth.(p).(q) <- b
                else if !range_error = None then
                  range_error :=
                    Some
                      (Printf.sprintf
                         "line %d: bandwidth override %d %d out of range (processors %d)" lineno p
                         q m))
              (List.rev !bw_overrides);
            match !range_error with
            | Some msg -> Error msg
            | None -> (
                try
                  let app = Application.create ~work ~files in
                  let platform = Platform.create ~speeds ~bandwidth in
                  Ok (Mapping.create ~app ~platform ~teams)
                with Invalid_argument msg -> Error msg)
          end)

(* shortest decimal representation that parses back to the same float,
   so that printed instances round-trip exactly *)
let exact_float v =
  let short = Printf.sprintf "%.12g" v in
  if float_of_string short = v then short else Printf.sprintf "%.17g" v

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

let print ppf mapping =
  let app = Mapping.app mapping in
  let platform = Mapping.platform mapping in
  let n = Application.n_stages app in
  let m = Platform.n_processors platform in
  Format.fprintf ppf "stages %d@\n" n;
  Format.fprintf ppf "work";
  for i = 0 to n - 1 do
    Format.fprintf ppf " %s" (exact_float (Application.work app i))
  done;
  Format.fprintf ppf "@\nfiles";
  for i = 0 to n - 2 do
    Format.fprintf ppf " %s" (exact_float (Application.file_size app i))
  done;
  Format.fprintf ppf "@\nprocessors %d@\nspeeds" m;
  for p = 0 to m - 1 do
    Format.fprintf ppf " %s" (exact_float (Platform.speed platform p))
  done;
  Format.fprintf ppf "@\nbandwidth default %s@\n"
    (exact_float (Platform.bandwidth platform ~src:0 ~dst:(min 1 (m - 1))));
  let default = Platform.bandwidth platform ~src:0 ~dst:(min 1 (m - 1)) in
  for p = 0 to m - 1 do
    for q = 0 to m - 1 do
      if p <> q && Platform.bandwidth platform ~src:p ~dst:q <> default then
        Format.fprintf ppf "bandwidth %d %d %s@\n" p q (exact_float (Platform.bandwidth platform ~src:p ~dst:q))
    done
  done;
  for i = 0 to n - 1 do
    Format.fprintf ppf "team";
    Array.iter (fun p -> Format.fprintf ppf " %d" p) (Mapping.team mapping i);
    Format.fprintf ppf "@\n"
  done

let to_string mapping =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  print ppf mapping;
  Format.pp_print_flush ppf ();
  Buffer.contents buf
