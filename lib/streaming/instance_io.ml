let strip_comment line = match String.index_opt line '#' with None -> line | Some i -> String.sub line 0 i

let tokens_of_line line =
  strip_comment line |> String.split_on_char ' '
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let float_of s = match float_of_string_opt s with Some f -> Some f | None -> None

let floats rest =
  let parsed = List.map float_of rest in
  if List.exists (( = ) None) parsed then None
  else Some (Array.of_list (List.map Option.get parsed))

let ints rest =
  let parsed = List.map int_of_string_opt rest in
  if List.exists (( = ) None) parsed then None
  else Some (Array.of_list (List.map Option.get parsed))

(* numeric sanity is checked where the line number is still at hand, so a
   NaN three screens into a file is reported as "line 47: ...", not as a
   late [Invalid_argument] from the model constructors *)
let bad ~strict v = (not (Float.is_finite v)) || if strict then v <= 0.0 else v < 0.0
let any_bad ~strict a = Array.exists (bad ~strict) a

let parse text =
  let lines = String.split_on_char '\n' text in
  let n_stages = ref None in
  let work = ref None in
  let files = ref None in
  let n_procs = ref None in
  let speeds = ref None in
  let bw_default = ref None in
  let bw_overrides = ref [] in
  let teams = ref [] in
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  List.iteri
    (fun lineno raw ->
      let lineno = lineno + 1 in
      match tokens_of_line raw with
      | [] -> ()
      | "stages" :: [ n ] -> (
          match int_of_string_opt n with
          | Some n -> n_stages := Some n
          | None -> fail (Printf.sprintf "line %d: bad stage count" lineno))
      | "processors" :: [ n ] -> (
          match int_of_string_opt n with
          | Some n -> n_procs := Some n
          | None -> fail (Printf.sprintf "line %d: bad processor count" lineno))
      | "work" :: rest -> (
          match floats rest with
          | Some a when any_bad ~strict:true a ->
              fail (Printf.sprintf "line %d: work sizes must be finite and positive" lineno)
          | Some a -> work := Some a
          | None -> fail (Printf.sprintf "line %d: bad work sizes" lineno))
      | "files" :: rest -> (
          match floats rest with
          | Some a when any_bad ~strict:false a ->
              fail (Printf.sprintf "line %d: file sizes must be finite and non-negative" lineno)
          | Some a -> files := Some a
          | None -> fail (Printf.sprintf "line %d: bad file sizes" lineno))
      | "speeds" :: rest -> (
          match floats rest with
          | Some a when any_bad ~strict:true a ->
              fail (Printf.sprintf "line %d: speeds must be finite and positive" lineno)
          | Some a -> speeds := Some a
          | None -> fail (Printf.sprintf "line %d: bad speeds" lineno))
      | [ "bandwidth"; "default"; v ] -> (
          match float_of v with
          | Some b when bad ~strict:true b ->
              fail (Printf.sprintf "line %d: default bandwidth must be finite and positive" lineno)
          | Some b -> bw_default := Some b
          | None -> fail (Printf.sprintf "line %d: bad default bandwidth" lineno))
      | [ "bandwidth"; p; q; v ] -> (
          match (int_of_string_opt p, int_of_string_opt q, float_of v) with
          | Some _, Some _, Some b when bad ~strict:true b ->
              fail (Printf.sprintf "line %d: bandwidth must be finite and positive" lineno)
          | Some p, Some q, Some b -> bw_overrides := (lineno, p, q, b) :: !bw_overrides
          | _ -> fail (Printf.sprintf "line %d: bad bandwidth override" lineno))
      | "team" :: rest -> (
          match ints rest with
          | Some a when Array.length a > 0 -> teams := a :: !teams
          | _ -> fail (Printf.sprintf "line %d: bad team" lineno))
      | keyword :: _ -> fail (Printf.sprintf "line %d: unknown keyword %s" lineno keyword))
    lines;
  match !error with
  | Some msg -> Error msg
  | None -> (
      match (!n_stages, !work, !n_procs, !speeds, !bw_default) with
      | None, _, _, _, _ -> Error "missing 'stages'"
      | _, None, _, _, _ -> Error "missing 'work'"
      | _, _, None, _, _ -> Error "missing 'processors'"
      | _, _, _, None, _ -> Error "missing 'speeds'"
      | _, _, _, _, None -> Error "missing 'bandwidth default'"
      | Some n, Some work, Some m, Some speeds, Some bw ->
          let files = match !files with Some f -> f | None -> [||] in
          let teams = Array.of_list (List.rev !teams) in
          if Array.length teams <> n then Error "need exactly one 'team' line per stage"
          else begin
            let bandwidth = Array.init m (fun _ -> Array.make m bw) in
            let range_error = ref None in
            List.iter
              (fun (lineno, p, q, b) ->
                if p >= 0 && p < m && q >= 0 && q < m then bandwidth.(p).(q) <- b
                else if !range_error = None then
                  range_error :=
                    Some
                      (Printf.sprintf
                         "line %d: bandwidth override %d %d out of range (processors %d)" lineno p
                         q m))
              (List.rev !bw_overrides);
            match !range_error with
            | Some msg -> Error msg
            | None -> (
                try
                  let app = Application.create ~work ~files in
                  let platform = Platform.create ~speeds ~bandwidth in
                  Ok (Mapping.create ~app ~platform ~teams)
                with Invalid_argument msg -> Error msg)
          end)

(* shortest decimal representation that parses back to the same float,
   so that printed instances round-trip exactly *)
let exact_float v =
  let short = Printf.sprintf "%.12g" v in
  if float_of_string short = v then short else Printf.sprintf "%.17g" v

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

let print ppf mapping =
  let app = Mapping.app mapping in
  let platform = Mapping.platform mapping in
  let n = Application.n_stages app in
  let m = Platform.n_processors platform in
  Format.fprintf ppf "stages %d@\n" n;
  Format.fprintf ppf "work";
  for i = 0 to n - 1 do
    Format.fprintf ppf " %s" (exact_float (Application.work app i))
  done;
  Format.fprintf ppf "@\nfiles";
  for i = 0 to n - 2 do
    Format.fprintf ppf " %s" (exact_float (Application.file_size app i))
  done;
  Format.fprintf ppf "@\nprocessors %d@\nspeeds" m;
  for p = 0 to m - 1 do
    Format.fprintf ppf " %s" (exact_float (Platform.speed platform p))
  done;
  Format.fprintf ppf "@\nbandwidth default %s@\n"
    (exact_float (Platform.bandwidth platform ~src:0 ~dst:(min 1 (m - 1))));
  let default = Platform.bandwidth platform ~src:0 ~dst:(min 1 (m - 1)) in
  for p = 0 to m - 1 do
    for q = 0 to m - 1 do
      if p <> q && Platform.bandwidth platform ~src:p ~dst:q <> default then
        Format.fprintf ppf "bandwidth %d %d %s@\n" p q (exact_float (Platform.bandwidth platform ~src:p ~dst:q))
    done
  done;
  for i = 0 to n - 1 do
    Format.fprintf ppf "team";
    Array.iter (fun p -> Format.fprintf ppf " %d" p) (Mapping.team mapping i);
    Format.fprintf ppf "@\n"
  done

let to_string mapping =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  print ppf mapping;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* ---- multi-tenant blocks (version 1) ---- *)

type tenant_decl = {
  tenant_id : string;
  weight : float;
  floor : float;
  tenant_mapping : Mapping.t;
}

(* one tenant being accumulated while its lines stream past *)
type pending = {
  p_line : int;
  p_id : string;
  p_weight : float;
  p_floor : float;
  mutable p_stages : int option;
  mutable p_work : float array option;
  mutable p_files : float array option;
  mutable p_teams : int array list;  (* reversed *)
}

let parse_multi text =
  let lines = String.split_on_char '\n' text in
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  let version = ref false in
  let n_procs = ref None in
  let speeds = ref None in
  let bw_default = ref None in
  let bw_overrides = ref [] in
  let pendings = ref [] in
  (* reversed *)
  let current () = match !pendings with [] -> None | t :: _ -> Some t in
  let platform_line lineno set =
    (* the shared platform is declared once, before the first tenant *)
    match current () with
    | Some _ -> fail (Printf.sprintf "line %d: platform line after the first 'tenant'" lineno)
    | None -> set ()
  in
  let tenant_line lineno keyword body =
    match current () with
    | None ->
        fail (Printf.sprintf "line %d: '%s' outside a tenant declaration" lineno keyword)
    | Some t -> body t
  in
  List.iteri
    (fun lineno raw ->
      let lineno = lineno + 1 in
      if !error = None then
        match tokens_of_line raw with
        | [] -> ()
        | [ "tenancy"; v ] ->
            if !version then fail (Printf.sprintf "line %d: duplicate 'tenancy' line" lineno)
            else if v <> "1" then
              fail
                (Printf.sprintf "line %d: unsupported tenancy version %s (this reader speaks 1)"
                   lineno v)
            else version := true
        | _ :: _ when not !version ->
            fail (Printf.sprintf "line %d: multi-tenant instances start with 'tenancy 1'" lineno)
        | "processors" :: [ n ] ->
            platform_line lineno (fun () ->
                match int_of_string_opt n with
                | Some n -> n_procs := Some n
                | None -> fail (Printf.sprintf "line %d: bad processor count" lineno))
        | "speeds" :: rest ->
            platform_line lineno (fun () ->
                match floats rest with
                | Some a when any_bad ~strict:true a ->
                    fail (Printf.sprintf "line %d: speeds must be finite and positive" lineno)
                | Some a -> speeds := Some a
                | None -> fail (Printf.sprintf "line %d: bad speeds" lineno))
        | [ "bandwidth"; "default"; v ] ->
            platform_line lineno (fun () ->
                match float_of v with
                | Some b when bad ~strict:true b ->
                    fail
                      (Printf.sprintf "line %d: default bandwidth must be finite and positive"
                         lineno)
                | Some b -> bw_default := Some b
                | None -> fail (Printf.sprintf "line %d: bad default bandwidth" lineno))
        | [ "bandwidth"; p; q; v ] ->
            platform_line lineno (fun () ->
                match (int_of_string_opt p, int_of_string_opt q, float_of v) with
                | Some _, Some _, Some b when bad ~strict:true b ->
                    fail (Printf.sprintf "line %d: bandwidth must be finite and positive" lineno)
                | Some p, Some q, Some b -> bw_overrides := (lineno, p, q, b) :: !bw_overrides
                | _ -> fail (Printf.sprintf "line %d: bad bandwidth override" lineno))
        | [ "tenant"; id; "weight"; w; "floor"; f ] -> (
            match (float_of w, float_of f) with
            | Some w, _ when bad ~strict:true w ->
                fail (Printf.sprintf "line %d: tenant weight must be finite and positive" lineno)
            | _, Some f when bad ~strict:false f ->
                fail
                  (Printf.sprintf "line %d: tenant floor must be finite and non-negative" lineno)
            | Some w, Some f ->
                pendings :=
                  {
                    p_line = lineno;
                    p_id = id;
                    p_weight = w;
                    p_floor = f;
                    p_stages = None;
                    p_work = None;
                    p_files = None;
                    p_teams = [];
                  }
                  :: !pendings
            | _ -> fail (Printf.sprintf "line %d: bad tenant weight or floor" lineno))
        | "tenant" :: _ ->
            fail (Printf.sprintf "line %d: tenant line is 'tenant ID weight W floor F'" lineno)
        | "stages" :: [ n ] ->
            tenant_line lineno "stages" (fun t ->
                match int_of_string_opt n with
                | Some n -> t.p_stages <- Some n
                | None -> fail (Printf.sprintf "line %d: bad stage count" lineno))
        | "work" :: rest ->
            tenant_line lineno "work" (fun t ->
                match floats rest with
                | Some a when any_bad ~strict:true a ->
                    fail
                      (Printf.sprintf "line %d: work sizes must be finite and positive" lineno)
                | Some a -> t.p_work <- Some a
                | None -> fail (Printf.sprintf "line %d: bad work sizes" lineno))
        | "files" :: rest ->
            tenant_line lineno "files" (fun t ->
                match floats rest with
                | Some a when any_bad ~strict:false a ->
                    fail
                      (Printf.sprintf "line %d: file sizes must be finite and non-negative"
                         lineno)
                | Some a -> t.p_files <- Some a
                | None -> fail (Printf.sprintf "line %d: bad file sizes" lineno))
        | "team" :: rest ->
            tenant_line lineno "team" (fun t ->
                match ints rest with
                | Some a when Array.length a > 0 -> t.p_teams <- a :: t.p_teams
                | _ -> fail (Printf.sprintf "line %d: bad team" lineno))
        | keyword :: _ -> fail (Printf.sprintf "line %d: unknown keyword %s" lineno keyword))
    lines;
  match !error with
  | Some msg -> Error msg
  | None -> (
      if not !version then Error "missing 'tenancy 1'"
      else
        match (!n_procs, !speeds, !bw_default) with
        | None, _, _ -> Error "missing 'processors'"
        | _, None, _ -> Error "missing 'speeds'"
        | _, _, None -> Error "missing 'bandwidth default'"
        | Some m, Some speeds, Some bw -> (
            let bandwidth = Array.init m (fun _ -> Array.make m bw) in
            let range_error = ref None in
            List.iter
              (fun (lineno, p, q, b) ->
                if p >= 0 && p < m && q >= 0 && q < m then bandwidth.(p).(q) <- b
                else if !range_error = None then
                  range_error :=
                    Some
                      (Printf.sprintf
                         "line %d: bandwidth override %d %d out of range (processors %d)" lineno
                         p q m))
              (List.rev !bw_overrides);
            match !range_error with
            | Some msg -> Error msg
            | None -> (
                match
                  let platform = Platform.create ~speeds ~bandwidth in
                  let seen = Hashtbl.create 8 in
                  List.rev !pendings
                  |> List.map (fun t ->
                         if Hashtbl.mem seen t.p_id then
                           failwith
                             (Printf.sprintf "line %d: duplicate tenant id %s" t.p_line t.p_id);
                         Hashtbl.add seen t.p_id ();
                         let ctx msg =
                           failwith (Printf.sprintf "tenant %s: %s" t.p_id msg)
                         in
                         match (t.p_stages, t.p_work) with
                         | None, _ -> ctx "missing 'stages'"
                         | _, None -> ctx "missing 'work'"
                         | Some n, Some work ->
                             let files = match t.p_files with Some f -> f | None -> [||] in
                             let teams = Array.of_list (List.rev t.p_teams) in
                             if Array.length teams <> n then
                               ctx "need exactly one 'team' line per stage"
                             else begin
                               match
                                 let app = Application.create ~work ~files in
                                 Mapping.create ~app ~platform ~teams
                               with
                               | mapping ->
                                   {
                                     tenant_id = t.p_id;
                                     weight = t.p_weight;
                                     floor = t.p_floor;
                                     tenant_mapping = mapping;
                                   }
                               | exception Invalid_argument msg -> ctx msg
                             end)
                with
                | [] -> Error "a tenancy block needs at least one tenant"
                | decls -> Ok decls
                | exception Failure msg -> Error msg
                | exception Invalid_argument msg -> Error msg)))

let parse_multi_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_multi text
  | exception Sys_error msg -> Error msg

let shared_platform decls =
  match decls with
  | [] -> invalid_arg "Instance_io.multi_to_string: no tenants"
  | first :: rest ->
      let platform = Mapping.platform first.tenant_mapping in
      let m = Platform.n_processors platform in
      let same p =
        p == platform
        || Platform.n_processors p = m
           &&
           let ok = ref true in
           for i = 0 to m - 1 do
             if Platform.speed p i <> Platform.speed platform i then ok := false;
             for j = 0 to m - 1 do
               if
                 i <> j
                 && Platform.bandwidth p ~src:i ~dst:j
                    <> Platform.bandwidth platform ~src:i ~dst:j
               then ok := false
             done
           done;
           !ok
      in
      List.iter
        (fun d ->
          if not (same (Mapping.platform d.tenant_mapping)) then
            invalid_arg "Instance_io.multi_to_string: tenants do not share one platform")
        rest;
      platform

let print_multi ppf decls =
  let platform = shared_platform decls in
  let m = Platform.n_processors platform in
  Format.fprintf ppf "tenancy 1@\n";
  Format.fprintf ppf "processors %d@\nspeeds" m;
  for p = 0 to m - 1 do
    Format.fprintf ppf " %s" (exact_float (Platform.speed platform p))
  done;
  let default = Platform.bandwidth platform ~src:0 ~dst:(min 1 (m - 1)) in
  Format.fprintf ppf "@\nbandwidth default %s@\n" (exact_float default);
  for p = 0 to m - 1 do
    for q = 0 to m - 1 do
      if p <> q && Platform.bandwidth platform ~src:p ~dst:q <> default then
        Format.fprintf ppf "bandwidth %d %d %s@\n" p q
          (exact_float (Platform.bandwidth platform ~src:p ~dst:q))
    done
  done;
  List.iter
    (fun d ->
      let app = Mapping.app d.tenant_mapping in
      let n = Application.n_stages app in
      Format.fprintf ppf "tenant %s weight %s floor %s@\n" d.tenant_id (exact_float d.weight)
        (exact_float d.floor);
      Format.fprintf ppf "stages %d@\nwork" n;
      for i = 0 to n - 1 do
        Format.fprintf ppf " %s" (exact_float (Application.work app i))
      done;
      Format.fprintf ppf "@\nfiles";
      for i = 0 to n - 2 do
        Format.fprintf ppf " %s" (exact_float (Application.file_size app i))
      done;
      Format.fprintf ppf "@\n";
      for i = 0 to n - 1 do
        Format.fprintf ppf "team";
        Array.iter (fun p -> Format.fprintf ppf " %d" p) (Mapping.team d.tenant_mapping i);
        Format.fprintf ppf "@\n"
      done)
    decls

let multi_to_string decls =
  let buf = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer buf in
  print_multi ppf decls;
  Format.pp_print_flush ppf ();
  Buffer.contents buf
