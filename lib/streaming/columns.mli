(** Per-column decomposition of the Overlap TPN (Theorems 1, 3, 4).

    Under the Overlap model, every cycle of the TPN stays within a single
    column, and the columns form a feed-forward DAG of strongly connected
    components: one component per processor in a computation column, and
    [g = gcd(R_i, R_{i+1})] pattern components in a communication column.

    The steady-state throughput follows by saturation: a component's
    per-row rate is the minimum of its own inner per-row rate and the
    per-row rates of the components feeding its rows; the global
    throughput is the sum over the rows of their final rates.  (The
    paper's Theorem 4 states the same min-composition per component; the
    per-row normalisation makes it exact when components span different
    row subsets.) *)

type communication = {
  file : int;  (** file index [0 .. N-2] *)
  residue : int;  (** component id within the column: rows ≡ residue (mod g) *)
  u : int;  (** senders in the pattern, [R_i / g] *)
  v : int;  (** receivers in the pattern, [R_{i+1} / g] *)
  senders : int array;  (** processor id per sender slot *)
  receivers : int array;  (** processor id per receiver slot *)
}

type component =
  | Compute of { stage : int; proc : int }
  | Communication of communication

val pattern_time : Mapping.t -> communication -> sender:int -> receiver:int -> float
(** Nominal transfer time between the processors of two pattern slots. *)

val is_homogeneous : Mapping.t -> communication -> bool
(** Whether all links of the component share the same nominal time. *)

val components : Mapping.t -> component list
(** All components, column by column from the first stage to the last. *)

val fold_throughput : ?pool:Parallel.Pool.t -> Mapping.t -> inner:(component -> float) -> float
(** Propagates per-row rates down the columns.  [inner c] must return the
    inner throughput of the component (data sets per time unit for the
    whole component, in isolation).  The [inner] calls — independent CTMC
    solves — run on [pool] (default {!Parallel.Pool.get}); [inner] must
    therefore be safe to call from several domains, which every solver in
    this repository is.  The result is identical for every pool size. *)
