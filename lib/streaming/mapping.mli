(** A one-to-many mapping of an application onto a platform (§2.2).

    Each stage is assigned a non-empty *team* of processors; a processor
    belongs to at most one team.  The processors of a team serve successive
    data sets in round-robin order: data set [n] is handled, at stage [i],
    by [team.(i).(n mod R_i)].  By Proposition 1 the data sets follow
    [m = lcm(R_1, ..., R_N)] distinct paths, and data set [n] follows path
    [n mod m]. *)

type t

val create : app:Application.t -> platform:Platform.t -> teams:int array array -> t
(** Raises [Invalid_argument] if a team is empty, a processor id is out of
    range, a processor appears in two teams (or twice in one), or any
    communication time the round-robin will use is zero, near-zero
    (<= 1e-30) or non-finite — e.g. a zero-byte file or an infinite
    bandwidth — since the exponential analysis inverts those times into
    rates. *)

val app : t -> Application.t
val platform : t -> Platform.t
val n_stages : t -> int
val n_processors : t -> int

val team : t -> int -> int array
(** Processor ids of the team of a stage (copy). *)

val replication : t -> int array
(** [R_i] for every stage. *)

val rows : t -> int
(** [m = lcm(R_1, ..., R_N)] — the number of distinct data paths. *)

val proc_at : t -> stage:int -> row:int -> int
(** The processor handling the given stage on the given path. *)

val stage_of : t -> int -> int option
(** The stage a processor is assigned to, if any. *)

val comp_time : t -> stage:int -> proc:int -> float
(** [w_i / s_p]. *)

val comm_time : t -> file:int -> src:int -> dst:int -> float
(** delta_i / b_(src,dst). *)

val mean_time : t -> Resource.t -> float
(** Nominal (deterministic / mean) duration of one operation on the
    resource.  Well defined because a processor computes a single stage,
    hence a link between two mapped processors carries a single file type.
    Raises [Invalid_argument] for a resource not used by the mapping. *)

val resources : t -> Resource.t list
(** Every resource the mapping uses: one [Compute] per mapped processor and
    one [Transfer] per (sender, receiver) pair of consecutive teams, in a
    deterministic order. *)

val pp : Format.formatter -> t -> unit
