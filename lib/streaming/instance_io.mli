(** A small textual format for problem instances, so that the command-line
    tool can analyse user-provided mappings.

    Example:
    {v
    # four stages on seven processors
    stages    4
    work      52 48 72 32
    files     24 36 28
    processors 7
    speeds    2 0.8 1.1 0.9 1.3 0.7 1.6
    bandwidth default 0.5
    bandwidth 0 1 0.35        # src dst value, overrides the default
    team 0                    # one line per stage, processor ids
    team 1 2
    team 3 4 5
    team 6
    v}

    Lines starting with [#] (or trailing [#] comments) are ignored. *)

val parse : string -> (Mapping.t, string) result
(** Parse the contents of an instance description.  Numeric values are
    vetted where they are read: work sizes, speeds and bandwidths must be
    finite and positive, file sizes finite and non-negative, and a
    bandwidth override must name processors that exist — violations are
    reported with the offending line number. *)

val parse_file : string -> (Mapping.t, string) result

val print : Format.formatter -> Mapping.t -> unit
(** Write a mapping back in the same format. *)

val to_string : Mapping.t -> string
(** The canonical rendering of a mapping: {!print} into a string.  Two
    instance texts that parse to the same mapping render identically
    (whatever their spacing, comments, line order or float spellings), and
    the rendering parses back to the same mapping — [parse ∘ to_string =
    id].  The query service's cache keys and the experiment journals both
    key on this rendering. *)

(** {1 Multi-tenant instances}

    Version 1 of the multi-tenant block: one shared platform, then [K]
    tenant declarations, each a pipeline mapped onto the shared
    processors.  Declaration order is significant — it is the admission
    order of the tenancy tier.

    {v
    tenancy 1
    processors 4
    speeds    2 1 1 1.5
    bandwidth default 0.5
    bandwidth 0 1 0.35
    tenant a weight 2 floor 0.05
    stages 2
    work   3 4
    files  2
    team 0
    team 1 2
    tenant b weight 1 floor 0.01
    stages 1
    work   5
    team 3
    v}

    Different tenants may (and, for contention to matter, should) map
    teams onto the same processors; within one tenant the usual
    one-team-per-processor rule of {!Mapping.create} holds. *)

type tenant_decl = {
  tenant_id : string;  (** non-empty, no whitespace, unique in a block *)
  weight : float;  (** relative share weight; finite and positive *)
  floor : float;
      (** declared throughput floor for admission; finite, non-negative *)
  tenant_mapping : Mapping.t;  (** the tenant's pipeline on the shared platform *)
}

val parse_multi : string -> (tenant_decl list, string) result
(** Parse a versioned [tenancy] block.  The shared platform lines must
    precede the first [tenant] line; every tenant's mapping is built on
    the one shared {!Platform.t} (physically shared, so downstream code
    may compare platforms with [==]).  Validations mirror {!parse} and
    add: a leading [tenancy 1] version line, unique tenant ids, finite
    positive weights, finite non-negative floors, at least one tenant. *)

val parse_multi_file : string -> (tenant_decl list, string) result

val multi_to_string : tenant_decl list -> string
(** Canonical rendering of a tenant block; [parse_multi ∘ multi_to_string
    = id], and the tenancy service tier keys its cache on this rendering.
    Raises [Invalid_argument] if the declarations do not share one
    platform. *)
