(** A small textual format for problem instances, so that the command-line
    tool can analyse user-provided mappings.

    Example:
    {v
    # four stages on seven processors
    stages    4
    work      52 48 72 32
    files     24 36 28
    processors 7
    speeds    2 0.8 1.1 0.9 1.3 0.7 1.6
    bandwidth default 0.5
    bandwidth 0 1 0.35        # src dst value, overrides the default
    team 0                    # one line per stage, processor ids
    team 1 2
    team 3 4 5
    team 6
    v}

    Lines starting with [#] (or trailing [#] comments) are ignored. *)

val parse : string -> (Mapping.t, string) result
(** Parse the contents of an instance description.  Numeric values are
    vetted where they are read: work sizes, speeds and bandwidths must be
    finite and positive, file sizes finite and non-negative, and a
    bandwidth override must name processors that exist — violations are
    reported with the offending line number. *)

val parse_file : string -> (Mapping.t, string) result

val print : Format.formatter -> Mapping.t -> unit
(** Write a mapping back in the same format. *)

val to_string : Mapping.t -> string
(** The canonical rendering of a mapping: {!print} into a string.  Two
    instance texts that parse to the same mapping render identically
    (whatever their spacing, comments, line order or float spellings), and
    the rendering parses back to the same mapping — [parse ∘ to_string =
    id].  The query service's cache keys and the experiment journals both
    key on this rendering. *)
