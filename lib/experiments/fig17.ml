open Streaming

type point = { senders : int; law : string; nbue : bool; normalised : float; lower : float }

let laws =
  [
    ("Gamma 0.2", false, fun mu -> Dist.with_mean (Dist.Gamma (0.2, 1.0)) mu);
    ("Gamma 0.5", false, fun mu -> Dist.with_mean (Dist.Gamma (0.5, 1.0)) mu);
    ("Gamma 2", true, fun mu -> Dist.with_mean (Dist.Gamma (2.0, 1.0)) mu);
    ("Gamma 5", true, fun mu -> Dist.with_mean (Dist.Gamma (5.0, 1.0)) mu);
    ("Gamma 8", true, fun mu -> Dist.with_mean (Dist.Gamma (8.0, 1.0)) mu);
    ("Weibull 0.5", false, fun mu -> Dist.with_mean (Dist.Weibull (0.5, 1.0)) mu);
    ("Uniform 1", true, fun mu -> Dist.Uniform (0.5 *. mu, 1.5 *. mu));
    ("Uniform 2", true, fun mu -> Dist.Uniform (0.0, 2.0 *. mu));
  ]

let compute ?(quick = false) () =
  let receivers = 5 in
  let sender_counts = if quick then [ 3; 7 ] else [ 2; 3; 4; 6; 7; 9; 11; 13 ] in
  let data_sets = if quick then 10_000 else 30_000 in
  List.concat
  @@ Parallel.Pool.map_list (Parallel.Pool.get ())
    (fun senders ->
      let mapping = Workload.Scenarios.single_communication ~u:senders ~v:receivers () in
      let bounds = Bounds.compute mapping Model.Overlap in
      let cst = bounds.Bounds.upper in
      List.mapi
        (fun k (name, nbue, family) ->
          let rho =
            Exp_common.des_throughput ~data_sets mapping Model.Overlap
              ~laws:(Laws.of_family mapping ~family)
              ~seed:(170 + k)
          in
          { senders; law = name; nbue; normalised = rho /. cst; lower = bounds.Bounds.lower /. cst })
        laws)
    sender_counts

let run ?quick ppf =
  Exp_common.header ppf "Figure 17: non-N.B.U.E. laws can fall below the exponential bound";
  Exp_common.row ppf "%8s %-12s %6s %12s %12s %14s" "senders" "law" "NBUE" "normalised"
    "exp bound" "below bound?";
  List.iter
    (fun p ->
      Exp_common.row ppf "%8d %-12s %6s %12.6f %12.6f %14s" p.senders p.law
        (if p.nbue then "yes" else "no")
        p.normalised p.lower
        (if p.normalised < p.lower -. 0.02 then "below" else "within"))
    (compute ?quick ())
