open Streaming

type point = {
  u : int;
  v : int;
  cst_theory : float;
  cst_des : float;
  cst_eg : float;
  exp_des : float;
  exp_eg : float;
  exp_theory : float;
}

let pairs quick =
  if quick then [ (2, 3); (3, 4) ] else [ (2, 3); (3, 4); (4, 5); (5, 6); (6, 7); (7, 8); (8, 9) ]

let measure ~data_sets ~time (u, v) =
  let mapping =
    Workload.Scenarios.single_communication ~comp_time:1e-3 ~comm_time:time ~u ~v ()
  in
  let det = Laws.deterministic mapping and expo = Laws.exponential mapping in
  {
    u;
    v;
    cst_theory = Deterministic.overlap_throughput_decomposed mapping;
    cst_des = Exp_common.des_throughput ~data_sets mapping Model.Overlap ~laws:det ~seed:7;
    cst_eg = Teg_sim.throughput mapping Model.Overlap ~laws:det ~seed:8 ~data_sets;
    exp_des = Exp_common.des_throughput ~data_sets mapping Model.Overlap ~laws:expo ~seed:9;
    exp_eg = Teg_sim.throughput mapping Model.Overlap ~laws:expo ~seed:10 ~data_sets;
    exp_theory =
      (* the heterogeneous pattern CTMC has S(u,v) states; keep the exact
         value only while that stays tractable *)
      (if Young.Combin.state_count ~u ~v <= 10_000 then
         Expo.overlap_throughput ~pattern_cap:2_000_000 mapping
       else nan);
  }

let compute ?(quick = false) () =
  let data_sets = if quick then 10_000 else 40_000 in
  let g = Prng.create ~seed:(Exp_common.base_seed + 14) in
  (* the link-time draws stay sequential (one shared generator), only the
     measurements fan out on the pool *)
  let drawn =
    List.map
      (fun (u, v) ->
        ((u, v), Array.init u (fun _ -> Array.init v (fun _ -> Prng.uniform g 100.0 1000.0))))
      (pairs quick)
  in
  Parallel.Pool.map_list (Parallel.Pool.get ())
    (fun ((u, v), times) -> measure ~data_sets ~time:(fun s r -> times.(s).(r)) (u, v))
    drawn

let compute_dominated ?(quick = false) () =
  (* the regime the paper describes — "a single link limits all
     communications": one link an order of magnitude slower than the rest *)
  let data_sets = if quick then 10_000 else 40_000 in
  let dominated (u, v) =
    measure ~data_sets ~time:(fun s r -> if s = 0 && r = 0 then 2000.0 else 150.0) (u, v)
  in
  Parallel.Pool.map_list (Parallel.Pool.get ()) dominated (pairs quick)

let print_rows ppf points =
  Exp_common.row ppf "%7s %12s %12s %12s %12s %12s" "u.v" "Cst(scscyc)" "Cst(eg_sim)" "Exp(DES)"
    "Exp(eg_sim)" "Exp(theory)";
  List.iter
    (fun p ->
      let n = p.cst_des in
      Exp_common.row ppf "%3d.%-3d %12.6f %12.6f %12.6f %12.6f %12.6f" p.u p.v (p.cst_theory /. n)
        (p.cst_eg /. n) (p.exp_des /. n) (p.exp_eg /. n) (p.exp_theory /. n))
    points

let run ?quick ppf =
  Exp_common.header ppf "Figure 14: heterogeneous network (normalised to constant DES)";
  Exp_common.row ppf "(a) link times drawn uniformly in [100,1000] (paper protocol)";
  print_rows ppf (compute ?quick ());
  Exp_common.row ppf
    "(b) one dominant link (the regime of the paper's <2%% observation: a single link gates the round-robin)";
  print_rows ppf (compute_dominated ?quick ())
