(** Running-time study of the compact state-space kernel: per-stage cold
    timings (marking-graph construction, recurrent-class isolation,
    stationary solve) and warm-path timings over a ladder of u×v patterns
    and Erlang phase counts.  Run by [bench/main.exe -- --statespace],
    which writes the results to BENCH_statespace.json; a two-rung smoke
    version runs in the test suite. *)

type rung = {
  r_u : int;
  r_v : int;
  r_phases : int;
  r_states : int;  (** reachable markings *)
  r_edges : int;  (** marking-graph edges *)
  r_recurrent : int;  (** states of the recurrent class *)
  r_explore_s : float;  (** marking-graph construction (lattice walk or BFS) *)
  r_structure_s : float;  (** SCC / recurrent-class isolation *)
  r_solve_s : float;  (** CTMC build + stationary distribution *)
  r_warm_s : float;  (** same query answered by the pattern-solve memo *)
  r_throughput : float;
}

val ladder : (int * int) list
(** The default (u, v) rungs, u·v increasing from 9 to 36. *)

val phase_counts : int list
(** Erlang phase counts measured per rung (1, 2, 3). *)

val study : ?ladder:(int * int) list -> ?phases:int list -> unit -> rung list
(** Measure every (rung, phase count) combination.  Clears the pattern
    caches before and after, so timings are cold-path and the process-wide
    caches are left empty. *)

val print : Format.formatter -> rung list -> unit

val write_json : path:string -> rung list -> unit
