(** Running-time study of the compact state-space kernel: per-stage cold
    timings (marking-graph construction, recurrent-class isolation,
    stationary solve), the rotation-quotient solve (exact lumping over the
    pattern's u·v-fold symmetry) and warm-path timings over a ladder of
    u×v patterns and Erlang phase counts.  Run by
    [bench/main.exe -- --statespace], which writes the results to
    BENCH_statespace.json ([--big] adds the million-state rung); a
    two-rung smoke version runs in the test suite. *)

type rung = {
  r_u : int;
  r_v : int;
  r_phases : int;
  r_states : int;  (** reachable markings *)
  r_edges : int;  (** marking-graph edges *)
  r_recurrent : int;  (** states of the recurrent class *)
  r_explore_s : float;  (** marking-graph construction (lattice walk or BFS) *)
  r_structure_s : float;  (** SCC / recurrent-class isolation *)
  r_solve_s : float;  (** CTMC build + stationary distribution, unlumped *)
  r_lump_classes : int;  (** orbits of the rotation quotient *)
  r_lump_solve_s : float;  (** quotient build + supervised solve + lift *)
  r_rung : string;  (** ladder rung that solved the quotient *)
  r_warm_s : float;  (** same query answered by the pattern-solve memo *)
  r_throughput : float;
}

val ladder : (int * int) list
(** The default (u, v) rungs, u·v increasing from 9 to 36. *)

val phase_counts : int list
(** Erlang phase counts measured per rung (1, 2, 3). *)

val study : ?ladder:(int * int) list -> ?phases:int list -> unit -> rung list
(** Measure every (rung, phase count) combination.  Clears the pattern
    caches before and after, so timings are cold-path and the process-wide
    caches are left empty.  Raises [Supervise.Error.Solver_error
    (Numerical _)] if a rung's lumped solve diverges from the full one. *)

val print : Format.formatter -> rung list -> unit

type big = {
  b_u : int;
  b_v : int;
  b_phases : int;
  b_cap : int;  (** state-cap handed to the exploration *)
  b_wall_budget_s : float;  (** cooperative wall deadline of the whole run *)
  b_domains : int;  (** pool size of the sharded exploration *)
  b_states : int;
  b_edges : int;
  b_explore_s : float;  (** sharded exploration + recurrent-class isolation *)
  b_lumped_solve_s : float;  (** orbit partition, quotient build, ladder, lift *)
  b_lump_classes : int;
  b_rung : string;  (** ladder rung that solved the quotient *)
  b_throughput : float;
  b_total_s : float;
}

val big_study :
  ?u:int ->
  ?v:int ->
  ?phases:int ->
  ?cap:int ->
  ?wall_budget_s:float ->
  ?domains:int ->
  unit ->
  big
(** One cold solve of a pattern in the millions of states — default
    (11,12), whose 7 759 752 markings the Young-lattice walk cannot pack
    into one machine int, so the pool-sharded BFS explores them — under a
    wall budget, followed by the exact rotation-quotient solve.  Raises
    [Supervise.Error.Solver_error (Budget_exhausted _)] if the budget
    expires mid-run. *)

val print_big : Format.formatter -> big -> unit

val write_json : ?big:big -> path:string -> rung list -> unit
