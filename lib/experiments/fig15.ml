open Streaming

type point = {
  senders : int;
  receivers : int;
  exp_theorem : float;
  exp_des : float;
  ratio_formula : float;
}

let compute ?(quick = false) () =
  let receivers = 5 in
  let sender_counts = if quick then [ 2; 4; 7 ] else [ 2; 3; 4; 6; 7; 8; 9; 11; 12; 13; 14 ] in
  let data_sets = if quick then 10_000 else 40_000 in
  Parallel.Pool.map_list (Parallel.Pool.get ())
    (fun senders ->
      let mapping = Workload.Scenarios.single_communication ~u:senders ~v:receivers () in
      let cst = Deterministic.overlap_throughput_decomposed mapping in
      let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
      let g = gcd senders receivers in
      let u = senders / g and v = receivers / g in
      {
        senders;
        receivers;
        exp_theorem = Expo.overlap_throughput mapping /. cst;
        exp_des =
          Exp_common.des_throughput ~data_sets mapping Model.Overlap
            ~laws:(Laws.exponential mapping) ~seed:15
          /. cst;
        ratio_formula = float_of_int (max u v) /. float_of_int (u + v - 1);
      })
    sender_counts

let run ?quick ppf =
  Exp_common.header ppf "Figure 15: exponential vs constant ratio = max(u,v)/(u+v-1)";
  Exp_common.row ppf "%8s %14s %12s %16s" "senders" "Exp(theorem)" "Exp(DES)" "max(u,v)/(u+v-1)";
  List.iter
    (fun p ->
      Exp_common.row ppf "%8d %14.6f %12.6f %16.6f" p.senders p.exp_theorem p.exp_des
        p.ratio_formula)
    (compute ?quick ())
