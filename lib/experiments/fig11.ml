open Streaming

type point = { data_sets : int; des : Stats.Summary.report; eg : Stats.Summary.report }

let compute ?(quick = false) () =
  let mapping = Workload.Scenarios.fig10_system in
  let replicas = if quick then 20 else 120 in
  let counts = if quick then [ 500; 2_000 ] else [ 500; 1_000; 5_000; 10_000 ] in
  let expo = Laws.exponential mapping in
  let reference = Deterministic.overlap_throughput_decomposed mapping in
  let pool = Parallel.Pool.get () in
  let points =
    List.map
      (fun data_sets ->
        (* independent replications, one seed each: the pooled runs return
           in seed order, so the summaries accumulate exactly the
           sequential stream of values *)
        let des_values =
          Des.Pipeline_sim.replicated_throughputs ~pool mapping Model.Overlap
            ~timing:(Des.Pipeline_sim.Independent expo)
            ~seeds:(List.init replicas (fun r -> 100 + r + 1))
            ~data_sets
        in
        let eg_values =
          Teg_sim.replicated_throughputs ~pool mapping Model.Overlap ~laws:expo
            ~seeds:(List.init replicas (fun r -> 4_000 + r + 1))
            ~data_sets
        in
        let des = Stats.Summary.create () and eg = Stats.Summary.create () in
        List.iter2
          (fun d e ->
            Stats.Summary.add des d;
            Stats.Summary.add eg e)
          des_values eg_values;
        { data_sets; des = Stats.Summary.report des; eg = Stats.Summary.report eg })
      counts
  in
  (reference, points)

let run ?quick ppf =
  Exp_common.header ppf "Figure 11: dispersion of the throughput across simulation runs";
  let reference, points = compute ?quick () in
  Exp_common.row ppf "constant-case reference: %.6f" reference;
  Exp_common.row ppf "%10s %6s | %10s %10s %10s %10s | %10s %10s" "data sets" "runs" "DES avg"
    "DES min" "DES max" "DES sd" "eg avg" "eg sd";
  List.iter
    (fun p ->
      Exp_common.row ppf "%10d %6d | %10.5f %10.5f %10.5f %10.5f | %10.5f %10.5f" p.data_sets
        p.des.Stats.Summary.n p.des.Stats.Summary.mean p.des.Stats.Summary.min
        p.des.Stats.Summary.max p.des.Stats.Summary.std_dev p.eg.Stats.Summary.mean
        p.eg.Stats.Summary.std_dev)
    points
