(** Registry of the paper's tables and figures, each reproduced by one
    module of this library. *)

type entry = {
  id : string;  (** e.g. "table1", "fig13" *)
  title : string;
  run : ?quick:bool -> Format.formatter -> unit;
  points : ?quick:bool -> unit -> Runner.point list;
      (** decomposition for the resumable runner; the concatenated point
          fragments equal [run]'s output byte for byte *)
}

val all : entry list
val find : string -> entry option

val run_all : ?quick:bool -> Format.formatter -> unit
(** One-shot parallel run of every experiment (no journal). *)

val run_entries :
  ?quick:bool ->
  ?journal:string ->
  ?resume:bool ->
  ?point_budget:Supervise.Budget.t ->
  ?inject:Runner.inject ->
  ?err:Format.formatter ->
  entry list ->
  Format.formatter ->
  Runner.health
(** Resumable counterpart of {!run_all} over a chosen subset of entries:
    solves the entries' points in order through {!Runner.run_tasks},
    journaling / replaying as requested.  Output on the main formatter is
    byte-identical to running the same entries through {!run_all}'s
    format (each experiment followed by a blank line); health and
    diagnostics go to [err]. *)
