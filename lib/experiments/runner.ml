(* Crash-safe resumable execution of experiment points.

   An experiment is decomposed into [point]s, each rendering one fragment
   of the experiment's output.  The runner solves the points in registry
   order, journals every completed (experiment, point) as one JSONL record
   (whole-journal atomic rewrite, tmp + rename), and on [resume] replays
   the journaled fragments verbatim instead of re-solving — so a run
   killed between two points and resumed produces byte-identical output.
   Failed points are not reused on resume: they are re-queued, each
   attempt getting a freshly restarted budget, and a point whose first
   attempt raised but whose retry succeeded is recorded as degraded. *)

type outcome = { status : Supervise.Journal.status; detail : string; output : string }

type point = { key : string; solve : ?budget:Supervise.Budget.t -> unit -> outcome }

type task = { exp : string; points : point list }

type health = { exact : int; degraded : int; failed : int; reused : int }

type inject = exp:string -> point:string -> attempt:int -> unit

let ok ?(status = Supervise.Journal.Exact) ?(detail = "") output = { status; detail; output }

let render f =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let quick_tag quick = if quick then "quick" else "full"

let meta_record quick =
  {
    Supervise.Journal.exp = "@meta";
    point = quick_tag quick;
    status = Supervise.Journal.Exact;
    detail = "experiment runner journal";
    output = "";
    elapsed = "";
  }

(* The journal is only trusted when its meta record matches the requested
   mode: resuming a quick journal under --full (or vice versa) would splice
   fragments of the wrong series. *)
let load_journal ~quick path =
  match Supervise.Journal.load path with
  | meta :: rest when meta.Supervise.Journal.exp = "@meta" && meta.point = quick_tag quick -> rest
  | _ -> []

let run_tasks ?(quick = false) ?journal ?(resume = false) ?point_budget ?inject
    ?(err = Format.err_formatter) tasks ppf =
  let prior = match journal with Some path when resume -> load_journal ~quick path | _ -> [] in
  let reusable = Hashtbl.create 64 in
  List.iter
    (fun r ->
      match r.Supervise.Journal.status with
      | Supervise.Journal.Exact | Supervise.Journal.Degraded ->
          Hashtbl.replace reusable (r.Supervise.Journal.exp, r.Supervise.Journal.point) r
      | Supervise.Journal.Failed -> ())
    prior;
  (* records accumulate most-recent-first; the journal is rewritten whole
     (atomically) after every point so a kill loses at most the point in
     flight *)
  let records = ref [ meta_record quick ] in
  let save () =
    match journal with
    | None -> ()
    | Some path -> Supervise.Journal.save path (List.rev !records)
  in
  let health = ref { exact = 0; degraded = 0; failed = 0; reused = 0 } in
  let count status ~was_reused =
    let h = !health in
    let h =
      match status with
      | Supervise.Journal.Exact -> { h with exact = h.exact + 1 }
      | Supervise.Journal.Degraded -> { h with degraded = h.degraded + 1 }
      | Supervise.Journal.Failed -> { h with failed = h.failed + 1 }
    in
    health := if was_reused then { h with reused = h.reused + 1 } else h
  in
  let emit r =
    Format.pp_print_string ppf r.Supervise.Journal.output;
    records := r :: !records;
    save ()
  in
  List.iter
    (fun task ->
      List.iter
        (fun pt ->
          match Hashtbl.find_opt reusable (task.exp, pt.key) with
          | Some r ->
              emit r;
              count r.Supervise.Journal.status ~was_reused:true
          | None ->
              let attempt n =
                (match inject with
                | Some f -> f ~exp:task.exp ~point:pt.key ~attempt:n
                | None -> ());
                let budget = Option.map Supervise.Budget.restart point_budget in
                pt.solve ?budget ()
              in
              let t0 = Obs.Clock.now_ns () in
              let outcome, retried =
                Obs.Trace.span ("point:" ^ task.exp ^ "/" ^ pt.key) (fun () ->
                    try (attempt 0, false)
                    with Supervise.Error.Solver_error first -> (
                      Format.fprintf err "supervise: %s/%s: %s; retrying@." task.exp pt.key
                        (Supervise.Error.to_string first);
                      try (attempt 1, true)
                      with Supervise.Error.Solver_error second ->
                        ( {
                            status = Supervise.Journal.Failed;
                            detail = Supervise.Error.to_string second;
                            output = "";
                          },
                          true )))
              in
              let elapsed =
                Printf.sprintf "%.6f" (Obs.Clock.ns_to_s (Obs.Clock.now_ns () - t0))
              in
              let status =
                match (outcome.status, retried) with
                | Supervise.Journal.Exact, true -> Supervise.Journal.Degraded
                | s, _ -> s
              in
              let detail =
                if retried && status = Supervise.Journal.Degraded && outcome.detail = "" then
                  "first attempt failed; retry succeeded"
                else outcome.detail
              in
              emit
                {
                  Supervise.Journal.exp = task.exp;
                  point = pt.key;
                  status;
                  detail;
                  output = outcome.output;
                  elapsed;
                };
              count status ~was_reused:false)
        task.points;
      (* experiment separator, matching [Registry.run_all]'s trailing @\n *)
      Format.pp_print_string ppf "\n")
    tasks;
  Format.pp_print_flush ppf ();
  let h = !health in
  Format.fprintf err "supervise: %d exact, %d degraded, %d failed, %d reused@." h.exact h.degraded
    h.failed h.reused;
  h
