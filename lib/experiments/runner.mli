(** Crash-safe resumable execution of experiment points.

    Experiments are decomposed into [point]s, each rendering one fragment
    of the experiment's output; the concatenation of a task's fragments
    (plus a blank separator line) is byte-identical to the experiment's
    monolithic rendering.  The runner journals every completed point and,
    on resume, replays journaled fragments verbatim instead of re-solving
    them. *)

type outcome = {
  status : Supervise.Journal.status;
  detail : string;  (** human-readable provenance / error note *)
  output : string;  (** the rendered fragment, emitted verbatim *)
}

type point = { key : string; solve : ?budget:Supervise.Budget.t -> unit -> outcome }
(** [solve] renders the fragment; it may raise
    [Supervise.Error.Solver_error], in which case the runner retries once
    with a freshly restarted budget before recording the point as
    failed. *)

type task = { exp : string; points : point list }

type health = { exact : int; degraded : int; failed : int; reused : int }
(** Per-point tallies of a run; [reused] counts the points replayed from
    the journal (also counted under their status). *)

type inject = exp:string -> point:string -> attempt:int -> unit
(** Fault-injection hook, called before every solve attempt; raising
    [Supervise.Error.Solver_error] simulates that attempt failing. *)

val ok : ?status:Supervise.Journal.status -> ?detail:string -> string -> outcome

val render : (Format.formatter -> unit) -> string
(** Render into a fresh buffer and return the text. *)

val run_tasks :
  ?quick:bool ->
  ?journal:string ->
  ?resume:bool ->
  ?point_budget:Supervise.Budget.t ->
  ?inject:inject ->
  ?err:Format.formatter ->
  task list ->
  Format.formatter ->
  health
(** Runs the tasks' points in order, writing fragments to the given
    formatter and a health summary to [err] (default stderr — the output
    stream stays byte-identical to the unjournalled run).  With [journal],
    every completed point appends a record and the whole journal is
    rewritten atomically (tmp + rename); with [resume], points already
    journaled as exact or degraded are replayed verbatim, while failed
    points are re-queued.  A journal whose meta record does not match
    [quick] is ignored (fresh start).  [point_budget] is restarted
    ([Supervise.Budget.restart]) for every attempt. *)
