open Streaming

type point = {
  u : int;
  v : int;
  cst_des : float;
  exp_des : float;
  exp_theorem : float;
  cst_theory : float;
}

let pairs quick =
  if quick then [ (2, 2); (2, 3); (3, 4); (5, 7) ]
  else [ (2, 2); (2, 3); (3, 3); (3, 4); (4, 5); (5, 5); (5, 6); (6, 7); (7, 8); (8, 9); (9, 9) ]

let compute ?(quick = false) () =
  let data_sets = if quick then 10_000 else 40_000 in
  Parallel.Pool.map_list (Parallel.Pool.get ())
    (fun (u, v) ->
      let mapping = Workload.Scenarios.single_communication ~u ~v () in
      {
        u;
        v;
        cst_des =
          Exp_common.des_throughput ~data_sets mapping Model.Overlap
            ~laws:(Laws.deterministic mapping) ~seed:5;
        exp_des =
          Exp_common.des_throughput ~data_sets mapping Model.Overlap
            ~laws:(Laws.exponential mapping) ~seed:6;
        exp_theorem = Expo.overlap_throughput mapping;
        cst_theory = Deterministic.overlap_throughput_decomposed mapping;
      })
    (pairs quick)

let run ?quick ppf =
  Exp_common.header ppf "Figure 13: homogeneous network, Theorem 4 vs simulation (normalised)";
  Exp_common.row ppf "%7s %12s %12s %14s %14s" "u.v" "Cst(DES)" "Exp(DES)" "Exp(theorem)"
    "Exp/Cst";
  List.iter
    (fun p ->
      Exp_common.row ppf "%3d.%-3d %12.6f %12.6f %14.6f %14.6f" p.u p.v
        (p.cst_des /. p.cst_theory) (p.exp_des /. p.cst_theory) (p.exp_theorem /. p.cst_theory)
        (p.exp_theorem /. p.cst_theory))
    (compute ?quick ())
