type entry = {
  id : string;
  title : string;
  run : ?quick:bool -> Format.formatter -> unit;
  points : ?quick:bool -> unit -> Runner.point list;
}

(* Default decomposition: the whole experiment is one point whose fragment
   is the monolithic rendering. *)
let monolithic run ?quick () =
  [
    {
      Runner.key = "all";
      solve = (fun ?budget:_ () -> Runner.ok (Runner.render (fun ppf -> run ?quick ppf)));
    };
  ]

let entry id title run = { id; title; run; points = monolithic run }

let all =
  [
    entry "table1" "Experiments without critical resource" Table1.run;
    {
      id = "fig10";
      title = "Throughput vs number of processed data sets";
      run = Fig10.run;
      points = Fig10.points;
    };
    entry "fig11" "Dispersion of the throughput estimate" Fig11.run;
    entry "fig12" "Throughput vs number of stages" Fig12.run;
    entry "fig13" "Homogeneous network: Theorem 4 vs simulation" Fig13.run;
    entry "fig14" "Heterogeneous network" Fig14.run;
    entry "fig15" "Exponential vs constant ratio" Fig15.run;
    entry "fig16" "N.B.U.E. laws within the bounds" Fig16.run;
    entry "fig17" "non-N.B.U.E. laws outside the bounds" Fig17.run;
    entry "thm8" "associated case ordering (extension)" Thm8.run;
    entry "ablation" "buffer capacity & slow-link dominance (extension)" Ablation.run;
    entry "heuristics" "mapping heuristics comparison (extension)" Heuristics.run;
    entry "erlang" "exact phase-type analysis (extension)" Erlang.run;
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_all ?quick ppf =
  (* Each experiment renders into its own buffer, so the experiments can run
     concurrently on the pool while the output stays in registry order —
     byte-identical to the sequential run.  Per-item error capture means a
     failing experiment no longer discards the others' finished output: the
     prefix before the first failure is printed, then the error propagates. *)
  let outputs =
    Parallel.Pool.map_list_result (Parallel.Pool.get ())
      (fun e ->
        Obs.Trace.span ("experiment:" ^ e.id) (fun () ->
            let buf = Buffer.create 4096 in
            let bppf = Format.formatter_of_buffer buf in
            e.run ?quick bppf;
            Format.fprintf bppf "@\n";
            Format.pp_print_flush bppf ();
            Buffer.contents buf))
      all
  in
  let first_error = ref None in
  List.iter
    (fun r ->
      match (r, !first_error) with
      | Ok text, None -> Format.pp_print_string ppf text
      | Ok _, Some _ -> ()
      | Error e, None -> first_error := Some e
      | Error _, Some _ -> ())
    outputs;
  Format.pp_print_flush ppf ();
  match !first_error with None -> () | Some e -> raise e

let run_entries ?quick ?journal ?resume ?point_budget ?inject ?err entries ppf =
  let tasks =
    List.map (fun e -> { Runner.exp = e.id; points = e.points ?quick () }) entries
  in
  Runner.run_tasks ?quick ?journal ?resume ?point_budget ?inject ?err tasks ppf
