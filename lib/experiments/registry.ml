type entry = { id : string; title : string; run : ?quick:bool -> Format.formatter -> unit }

let all =
  [
    { id = "table1"; title = "Experiments without critical resource"; run = Table1.run };
    { id = "fig10"; title = "Throughput vs number of processed data sets"; run = Fig10.run };
    { id = "fig11"; title = "Dispersion of the throughput estimate"; run = Fig11.run };
    { id = "fig12"; title = "Throughput vs number of stages"; run = Fig12.run };
    { id = "fig13"; title = "Homogeneous network: Theorem 4 vs simulation"; run = Fig13.run };
    { id = "fig14"; title = "Heterogeneous network"; run = Fig14.run };
    { id = "fig15"; title = "Exponential vs constant ratio"; run = Fig15.run };
    { id = "fig16"; title = "N.B.U.E. laws within the bounds"; run = Fig16.run };
    { id = "fig17"; title = "non-N.B.U.E. laws outside the bounds"; run = Fig17.run };
    { id = "thm8"; title = "associated case ordering (extension)"; run = Thm8.run };
    { id = "ablation"; title = "buffer capacity & slow-link dominance (extension)"; run = Ablation.run };
    { id = "heuristics"; title = "mapping heuristics comparison (extension)"; run = Heuristics.run };
    { id = "erlang"; title = "exact phase-type analysis (extension)"; run = Erlang.run };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_all ?quick ppf =
  (* Each experiment renders into its own buffer, so the experiments can run
     concurrently on the pool while the output stays in registry order —
     byte-identical to the sequential run. *)
  let outputs =
    Parallel.Pool.map_list (Parallel.Pool.get ())
      (fun e ->
        let buf = Buffer.create 4096 in
        let bppf = Format.formatter_of_buffer buf in
        e.run ?quick bppf;
        Format.fprintf bppf "@\n";
        Format.pp_print_flush bppf ();
        Buffer.contents buf)
      all
  in
  List.iter (Format.pp_print_string ppf) outputs;
  Format.pp_print_flush ppf ()
