(** Figure 10 (§7.2): throughput estimate as a function of the number of
    processed data sets, for the 7-stage system replicated
    (1,3,4,5,6,7,1), in the constant and exponential cases, for both the
    DES (SimGrid role) and the event-graph simulator (eg_sim role),
    against the theoretical values. *)

type point = {
  data_sets : int;
  cst_des : float;
  cst_eg : float;
  exp_des : float;
  exp_eg : float;
}

type series = { cst_theory : float; exp_theory : float; points : point list }

val compute : ?quick:bool -> unit -> series
val run : ?quick:bool -> Format.formatter -> unit

val points : ?quick:bool -> unit -> Runner.point list
(** Per-point decomposition for the resumable runner: a "head" point
    (header, theory line, column titles) followed by one point per
    data-set count.  The concatenated fragments are byte-identical to
    {!run}'s output.  The other experiments stay monolithic — Table 1 in
    particular draws one PRNG stream sequentially across its
    configurations, so its rows cannot be solved independently. *)
