open Streaming

type row = {
  label : string;
  model : Model.t;
  total : int;
  without_critical : int;
  max_gap : float;
}

let compute ?(quick = false) () =
  let instances = if quick then 8 else 60 in
  let g = Prng.create ~seed:Exp_common.base_seed in
  List.concat_map
    (fun (label, params) ->
      (* cap the row count so the critical-cycle analysis stays fast *)
      let params = { params with Workload.Gen.max_rows = 60 } in
      let mappings = List.init instances (fun _ -> Workload.Gen.random_mapping g params) in
      List.map
        (fun model ->
          (* the generation above shares one generator and stays
             sequential; the per-instance analyses are independent and run
             on the pool, folded in instance order *)
          let per_instance =
            Parallel.Pool.map_list (Parallel.Pool.get ())
              (fun mapping ->
                let a = Deterministic.analyse mapping model in
                let this_gap = Deterministic.critical_resource_gap a in
                if Deterministic.has_critical_resource ~tolerance:1e-6 a then None
                else Some this_gap)
              mappings
          in
          let without, gap =
            List.fold_left
              (fun (without, gap) -> function
                | None -> (without, gap)
                | Some this_gap -> (without + 1, max gap this_gap))
              (0, 0.0) per_instance
          in
          { label; model; total = instances; without_critical = without; max_gap = gap })
        Model.all)
    Workload.Gen.table1_sets

let run ?quick ppf =
  Exp_common.header ppf "Table 1: experiments without critical resource";
  Exp_common.row ppf "%-18s %-8s %21s %10s" "configuration" "model" "#without-critical/total"
    "max gap";
  List.iter
    (fun r ->
      Exp_common.row ppf "%-18s %-8s %12d / %-8d %9.2f%%" r.label (Model.to_string r.model)
        r.without_critical r.total (100.0 *. r.max_gap))
    (compute ?quick ())
