(** The complete escalation ladder for the Strict-model throughput:
    GTH → Gauss–Seidel → power iteration → discrete-event estimate.

    The first three rungs live in {!Markov.Ctmc.stationary_supervised};
    this module supplies the last one — a DES estimate with a batch-means
    confidence interval — which cannot live in [lib/streaming] because the
    simulator sits above it in the library stack. *)

val des_estimate :
  ?data_sets:int ->
  seed:int ->
  Streaming.Mapping.t ->
  Streaming.Model.t ->
  unit ->
  float * float
(** [(estimate, ci)] — simulated throughput under exponential laws with
    its 95% batch-means half-width ([data_sets] defaults to 20_000). *)

val throughput :
  ?cap:int ->
  ?budget:Supervise.Budget.t ->
  ?ladder:Markov.Ctmc.rung list ->
  ?data_sets:int ->
  ?seed:int ->
  Streaming.Mapping.t ->
  float * Supervise.Provenance.t
(** {!Streaming.Expo.strict_throughput_supervised} with the DES rung
    plugged in: never raises for solver reasons — the worst case is a
    degraded [Simulated] result whose provenance lists every failed
    attempt. *)
