open Streaming

type point = { stages : int; cst_des : float; exp_des : float; exp_theory : float }

let compute ?(quick = false) () =
  let stage_counts = if quick then [ 2; 4; 8 ] else [ 2; 4; 6; 8; 12; 16; 20; 24 ] in
  let data_sets = if quick then 6_000 else 20_000 in
  Parallel.Pool.map_list (Parallel.Pool.get ())
    (fun stages ->
      let mapping = Workload.Scenarios.pattern_chain ~stages () in
      {
        stages;
        cst_des =
          Exp_common.des_throughput ~data_sets mapping Model.Overlap
            ~laws:(Laws.deterministic mapping) ~seed:1;
        exp_des =
          Exp_common.des_throughput ~data_sets mapping Model.Overlap
            ~laws:(Laws.exponential mapping) ~seed:2;
        exp_theory = Expo.overlap_throughput mapping;
      })
    stage_counts

let run ?quick ppf =
  Exp_common.header ppf "Figure 12: throughput vs number of stages (5x7 patterns)";
  Exp_common.row ppf "%8s %12s %12s %14s" "stages" "Cst(DES)" "Exp(DES)" "Exp(theorem)";
  List.iter
    (fun p -> Exp_common.row ppf "%8d %12.6f %12.6f %14.6f" p.stages p.cst_des p.exp_des p.exp_theory)
    (compute ?quick ())
