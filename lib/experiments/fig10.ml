open Streaming

type point = {
  data_sets : int;
  cst_des : float;
  cst_eg : float;
  exp_des : float;
  exp_eg : float;
}

type series = { cst_theory : float; exp_theory : float; points : point list }

let counts quick =
  if quick then [ 500; 2_000; 10_000 ] else [ 500; 1_000; 5_000; 10_000; 20_000; 50_000 ]

let theory () =
  let mapping = Workload.Scenarios.fig10_system in
  ( Deterministic.overlap_throughput_decomposed mapping,
    Expo.overlap_throughput mapping )

let solve_point data_sets =
  let mapping = Workload.Scenarios.fig10_system in
  let det = Laws.deterministic mapping and expo = Laws.exponential mapping in
  {
    data_sets;
    cst_des = Exp_common.des_throughput ~data_sets mapping Model.Overlap ~laws:det ~seed:1;
    cst_eg = Teg_sim.throughput mapping Model.Overlap ~laws:det ~seed:1 ~data_sets;
    exp_des = Exp_common.des_throughput ~data_sets mapping Model.Overlap ~laws:expo ~seed:2;
    exp_eg = Teg_sim.throughput mapping Model.Overlap ~laws:expo ~seed:3 ~data_sets;
  }

let compute ?(quick = false) () =
  let cst_theory, exp_theory = theory () in
  let points =
    Parallel.Pool.map_list (Parallel.Pool.get ()) solve_point (counts quick)
  in
  { cst_theory; exp_theory; points }

(* The head and row renderers are shared between the monolithic [run] and
   the per-point decomposition below, so the concatenated fragments are
   byte-identical to the one-shot rendering. *)
let render_head ppf (cst_theory, exp_theory) =
  Exp_common.header ppf "Figure 10: throughput vs number of processed data sets";
  Exp_common.row ppf "theory: constant=%.6f exponential=%.6f" cst_theory exp_theory;
  Exp_common.row ppf "%10s %12s %12s %12s %12s" "data sets" "Cst(DES)" "Cst(eg_sim)" "Exp(DES)"
    "Exp(eg_sim)"

let render_point ppf p =
  Exp_common.row ppf "%10d %12.6f %12.6f %12.6f %12.6f" p.data_sets p.cst_des p.cst_eg p.exp_des
    p.exp_eg

let run ?quick ppf =
  let s = compute ?quick () in
  render_head ppf (s.cst_theory, s.exp_theory);
  List.iter (render_point ppf) s.points

let points ?(quick = false) () =
  {
    Runner.key = "head";
    solve = (fun ?budget:_ () -> Runner.ok (Runner.render (fun ppf -> render_head ppf (theory ()))));
  }
  :: List.map
       (fun data_sets ->
         {
           Runner.key = string_of_int data_sets;
           solve =
             (fun ?budget:_ () ->
               Runner.ok (Runner.render (fun ppf -> render_point ppf (solve_point data_sets))));
         })
       (counts quick)
