open Streaming

type point = {
  data_sets : int;
  cst_des : float;
  cst_eg : float;
  exp_des : float;
  exp_eg : float;
}

type series = { cst_theory : float; exp_theory : float; points : point list }

let counts quick =
  if quick then [ 500; 2_000; 10_000 ] else [ 500; 1_000; 5_000; 10_000; 20_000; 50_000 ]

let compute ?(quick = false) () =
  let mapping = Workload.Scenarios.fig10_system in
  let cst_theory = Deterministic.overlap_throughput_decomposed mapping in
  let exp_theory = Expo.overlap_throughput mapping in
  let det = Laws.deterministic mapping and expo = Laws.exponential mapping in
  let points =
    Parallel.Pool.map_list (Parallel.Pool.get ())
      (fun data_sets ->
        {
          data_sets;
          cst_des = Exp_common.des_throughput ~data_sets mapping Model.Overlap ~laws:det ~seed:1;
          cst_eg =
            Teg_sim.throughput mapping Model.Overlap ~laws:det ~seed:1 ~data_sets;
          exp_des = Exp_common.des_throughput ~data_sets mapping Model.Overlap ~laws:expo ~seed:2;
          exp_eg = Teg_sim.throughput mapping Model.Overlap ~laws:expo ~seed:3 ~data_sets;
        })
      (counts quick)
  in
  { cst_theory; exp_theory; points }

let run ?quick ppf =
  Exp_common.header ppf "Figure 10: throughput vs number of processed data sets";
  let s = compute ?quick () in
  Exp_common.row ppf "theory: constant=%.6f exponential=%.6f" s.cst_theory s.exp_theory;
  Exp_common.row ppf "%10s %12s %12s %12s %12s" "data sets" "Cst(DES)" "Cst(eg_sim)" "Exp(DES)"
    "Exp(eg_sim)";
  List.iter
    (fun p ->
      Exp_common.row ppf "%10d %12.6f %12.6f %12.6f %12.6f" p.data_sets p.cst_des p.cst_eg
        p.exp_des p.exp_eg)
    s.points
