open Streaming

type point = { senders : int; law : string; normalised : float; lower : float; upper : float }

(* "Gauss X" = normal with variance sqrt X (paper notation); "Beta X" =
   Beta(X, X) rescaled to the link mean. *)
let laws =
  [
    ("Gauss 5", fun mu -> Dist.Normal_trunc (mu, sqrt (sqrt 5.0)));
    ("Gauss 10", fun mu -> Dist.Normal_trunc (mu, sqrt (sqrt 10.0)));
    ("Beta 1", fun mu -> Dist.with_mean (Dist.Beta (1.0, 1.0, 1.0)) mu);
    ("Beta 2", fun mu -> Dist.with_mean (Dist.Beta (2.0, 2.0, 1.0)) mu);
    ("Erlang 4", fun mu -> Dist.with_mean (Dist.Erlang (4, 1.0)) mu);
  ]

let compute ?(quick = false) () =
  let receivers = 5 in
  let sender_counts = if quick then [ 2; 7 ] else [ 2; 3; 4; 6; 7; 9; 11; 13 ] in
  let data_sets = if quick then 10_000 else 30_000 in
  List.concat
  @@ Parallel.Pool.map_list (Parallel.Pool.get ())
    (fun senders ->
      (* mean link time 10 so that the Gauss laws (sigma ~ 1.5..1.8) are
         essentially untruncated, as in the paper *)
      let mapping =
        Workload.Scenarios.single_communication ~comm_time:(fun _ _ -> 10.0) ~u:senders
          ~v:receivers ()
      in
      let bounds = Bounds.compute mapping Model.Overlap in
      let cst = bounds.Bounds.upper in
      List.mapi
        (fun k (name, family) ->
          let rho =
            Exp_common.des_throughput ~data_sets mapping Model.Overlap
              ~laws:(Laws.of_family mapping ~family)
              ~seed:(160 + k)
          in
          {
            senders;
            law = name;
            normalised = rho /. cst;
            lower = bounds.Bounds.lower /. cst;
            upper = 1.0;
          })
        laws)
    sender_counts

let run ?quick ppf =
  Exp_common.header ppf "Figure 16: N.B.U.E. laws stay between the exponential and constant cases";
  Exp_common.row ppf "%8s %-10s %12s %12s %12s %8s" "senders" "law" "normalised" "exp bound"
    "cst bound" "inside";
  List.iter
    (fun p ->
      let inside = p.normalised >= p.lower -. 0.02 && p.normalised <= p.upper +. 0.02 in
      Exp_common.row ppf "%8d %-10s %12.6f %12.6f %12.6f %8s" p.senders p.law p.normalised p.lower
        p.upper
        (if inside then "yes" else "NO"))
    (compute ?quick ())
