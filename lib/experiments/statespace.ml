(* Running-time study of the compact state-space kernel (§7.7 companion):
   for a ladder of u×v patterns (u·v from 9 to 36) and Erlang phase counts
   1–3, measure each stage of the cold path — marking-graph construction,
   recurrent-class isolation, CTMC build + stationary solve — plus the
   warm path (the same query answered by the pattern-solve memo).  The
   ladder spans both solver regimes: small rungs are eliminated by GTH,
   large Erlang rungs go through the sparse Gauss–Seidel sweep. *)

type rung = {
  r_u : int;
  r_v : int;
  r_phases : int;
  r_states : int;
  r_edges : int;
  r_recurrent : int;
  r_explore_s : float;
  r_structure_s : float;
  r_solve_s : float;
  r_warm_s : float;
  r_throughput : float;
}

let ladder = [ (1, 9); (3, 4); (2, 9); (3, 5); (4, 5); (3, 7); (5, 6); (5, 7); (4, 9) ]
let phase_counts = [ 1; 2; 3 ]

let rate ~sender:_ ~receiver:_ = 1.0

let timed f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (Unix.gettimeofday () -. t0, x)

let measure_rung ~u ~v ~phases =
  let base = Young.Pattern.build ~u ~v ~time:(fun ~sender:_ ~receiver:_ -> 1.0) in
  (* cold path, stage by stage (bypassing the caches) *)
  let explore_s, (teg, graph) =
    timed (fun () ->
        if phases = 1 then
          let g =
            match Young.Pattern.young_graph ~u ~v () with
            | Some g -> g
            | None -> Petrinet.Marking.explore_graph base
          in
          (base, g)
        else
          let teg = Petrinet.Expand.teg (Petrinet.Expand.erlang ~phases:(fun _ -> phases) base) in
          (teg, Petrinet.Marking.explore_graph teg))
  in
  let structure_s, structure = timed (fun () -> Markov.Tpn_markov.structure_of_graph teg graph) in
  let solve_s, chain =
    timed (fun () -> Markov.Tpn_markov.analyse_with structure ~rates:(fun _ -> float_of_int phases))
  in
  (* warm path: the user-facing query, answered by the result memo (the
     first call fills it and is not timed) *)
  let solve () =
    if phases = 1 then Young.Pattern.exponential_inner_throughput ~u ~v ~rate ()
    else Young.Pattern.erlang_inner_throughput ~phases ~u ~v ~rate ()
  in
  let throughput = solve () in
  let warm_s, warm_throughput = timed solve in
  if warm_throughput <> throughput then
    Supervise.Error.raise_
      (Supervise.Error.Numerical
         { what = "warm solve diverged from cold"; where = "Statespace.measure" });
  {
    r_u = u;
    r_v = v;
    r_phases = phases;
    r_states = Markov.Tpn_markov.structure_states structure;
    r_edges = Markov.Tpn_markov.structure_edges structure;
    r_recurrent = Markov.Tpn_markov.n_recurrent chain;
    r_explore_s = explore_s;
    r_structure_s = structure_s;
    r_solve_s = solve_s;
    r_warm_s = warm_s;
    r_throughput = throughput;
  }

let study ?(ladder = ladder) ?(phases = phase_counts) () =
  Young.Pattern.clear_caches ();
  let rungs =
    List.concat_map
      (fun (u, v) -> List.map (fun p -> measure_rung ~u ~v ~phases:p) phases)
      ladder
  in
  Young.Pattern.clear_caches ();
  rungs

let print fmt rungs =
  Exp_common.header fmt "State-space kernel: exploration and solve times";
  Exp_common.row fmt "%-8s %9s %9s %9s %11s %11s %11s %11s %12s" "pattern" "phases" "states"
    "edges" "explore(s)" "scc(s)" "solve(s)" "warm(s)" "throughput";
  List.iter
    (fun r ->
      Exp_common.row fmt "%dx%-6d %9d %9d %9d %11.4f %11.4f %11.4f %11.6f %12.6f" r.r_u r.r_v
        r.r_phases r.r_states r.r_edges r.r_explore_s r.r_structure_s r.r_solve_s r.r_warm_s
        r.r_throughput)
    rungs

(* Cold-path totals (structure + analyse_with, identical rates) of the
   pre-rewrite kernel, measured on this host at the commit preceding the
   compact kernel; embedded in the emitted JSON so a fresh run still
   documents the speedup against a kernel that no longer exists in the
   tree.  The old structure construction is quadratic in the state count,
   so only rungs that finish in reasonable time are listed. *)
let seed_baseline =
  [
    (5, 6, 1, 0.0199);
    (5, 7, 1, 0.0504);
    (5, 6, 2, 8.621);
    (5, 7, 2, 38.925);
    (4, 9, 3, 1409.74);
    (5, 7, 3, 2564.56);
  ]

let rung_cold r = r.r_explore_s +. r.r_structure_s +. r.r_solve_s

let write_json ~path rungs =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"ladder\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"u\": %d, \"v\": %d, \"phases\": %d, \"states\": %d, \"edges\": %d, \"recurrent\": \
         %d, \"explore_s\": %.6f, \"structure_s\": %.6f, \"solve_s\": %.6f, \"cold_s\": %.6f, \
         \"warm_s\": %.6f, \"throughput\": %.12g}%s\n"
        r.r_u r.r_v r.r_phases r.r_states r.r_edges r.r_recurrent r.r_explore_s r.r_structure_s
        r.r_solve_s (rung_cold r) r.r_warm_s r.r_throughput
        (if i = List.length rungs - 1 then "" else ","))
    rungs;
  (match
     List.fold_left
       (fun acc r -> match acc with Some b when b.r_states >= r.r_states -> acc | _ -> Some r)
       None rungs
   with
  | Some l ->
      Printf.fprintf oc
        "  ],\n  \"largest\": {\"u\": %d, \"v\": %d, \"phases\": %d, \"states\": %d, \"cold_s\": \
         %.6f},\n"
        l.r_u l.r_v l.r_phases l.r_states (rung_cold l)
  | None -> Printf.fprintf oc "  ],\n");
  let baseline =
    List.filter_map
      (fun (u, v, p, seed_s) ->
        Option.map
          (fun r -> (u, v, p, seed_s, rung_cold r))
          (List.find_opt (fun r -> r.r_u = u && r.r_v = v && r.r_phases = p) rungs))
      seed_baseline
  in
  Printf.fprintf oc
    "  \"seed_baseline\": {\n\
    \    \"note\": \"cold-path wall times of the pre-rewrite kernel (list-based exploration, \
     hash-table generator), same pipeline and rates, measured on this host at the commit before \
     the compact kernel\",\n\
    \    \"rungs\": [\n";
  List.iteri
    (fun i (u, v, p, seed_s, now_s) ->
      Printf.fprintf oc
        "      {\"u\": %d, \"v\": %d, \"phases\": %d, \"seed_cold_s\": %.4f, \"cold_s\": %.6f, \
         \"speedup\": %.1f}%s\n"
        u v p seed_s now_s (seed_s /. now_s)
        (if i = List.length baseline - 1 then "" else ","))
    baseline;
  Printf.fprintf oc "    ]\n  }\n}\n";
  close_out oc
