(* Running-time study of the compact state-space kernel (§7.7 companion):
   for a ladder of u×v patterns (u·v from 9 to 36) and Erlang phase counts
   1–3, measure each stage of the cold path — marking-graph construction,
   recurrent-class isolation, CTMC build + stationary solve — plus the
   rotation-quotient solve (exact lumping over the u·v-fold symmetry, the
   production path for large instances) and the warm path (the same query
   answered by the pattern-solve memo).  The ladder spans both solver
   regimes: small rungs are eliminated by GTH, large Erlang rungs go
   through the sparse iterative sweeps.  [big_study] pushes one rung into
   the millions of states: sharded exploration under a wall budget, then
   the lumped supervised solve. *)

type rung = {
  r_u : int;
  r_v : int;
  r_phases : int;
  r_states : int;
  r_edges : int;
  r_recurrent : int;
  r_explore_s : float;
  r_structure_s : float;
  r_solve_s : float;
  r_lump_classes : int;
  r_lump_solve_s : float;
  r_rung : string;
  r_warm_s : float;
  r_throughput : float;
}

let ladder = [ (1, 9); (3, 4); (2, 9); (3, 5); (4, 5); (3, 7); (5, 6); (5, 7); (4, 9) ]
let phase_counts = [ 1; 2; 3 ]

let rate ~sender:_ ~receiver:_ = 1.0

let timed f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (Unix.gettimeofday () -. t0, x)

(* name of the ladder rung that produced the accepted solution *)
let winning_rung (prov : Supervise.Provenance.t) =
  match List.rev prov.Supervise.Provenance.attempts with
  | last :: _ -> last.Supervise.Provenance.rung
  | [] -> "?"

let measure_rung ~u ~v ~phases =
  let base = Young.Pattern.build ~u ~v ~time:(fun ~sender:_ ~receiver:_ -> 1.0) in
  (* cold path, stage by stage (bypassing the caches) *)
  let explore_s, (teg, graph) =
    timed (fun () ->
        if phases = 1 then
          let g =
            match Young.Pattern.young_graph ~u ~v () with
            | Some g -> g
            | None -> Petrinet.Marking.explore_graph base
          in
          (base, g)
        else
          let teg = Petrinet.Expand.teg (Petrinet.Expand.erlang ~phases:(fun _ -> phases) base) in
          (teg, Petrinet.Marking.explore_graph teg))
  in
  let structure_s, structure = timed (fun () -> Markov.Tpn_markov.structure_of_graph teg graph) in
  let solve_s, chain =
    timed (fun () -> Markov.Tpn_markov.analyse_with structure ~rates:(fun _ -> float_of_int phases))
  in
  (* the rotation quotient: homogeneous rates are invariant under the
     1-step shift, so the whole u·v-fold symmetry lumps away *)
  let lump_solve_s, (lumped, prov, stats) =
    timed (fun () ->
        let place_perm, trans_perm = Young.Pattern.rotation_perms ~u ~v ~phases ~shift:1 in
        Markov.Tpn_markov.analyse_with_lumped structure
          ~rates:(fun _ -> float_of_int phases)
          ~place_perm ~trans_perm)
  in
  let outputs = List.init (u * v) Fun.id in
  let full_rho = Markov.Tpn_markov.throughput_of chain outputs in
  let lumped_rho = Markov.Tpn_markov.throughput_of lumped outputs in
  if abs_float (full_rho -. lumped_rho) > 1e-9 *. abs_float full_rho then
    Supervise.Error.raise_
      (Supervise.Error.Numerical
         { what = "lumped solve diverged from full"; where = "Statespace.measure" });
  (* warm path: the user-facing query, answered by the result memo (the
     first call fills it and is not timed) *)
  let solve () =
    if phases = 1 then Young.Pattern.exponential_inner_throughput ~u ~v ~rate ()
    else Young.Pattern.erlang_inner_throughput ~phases ~u ~v ~rate ()
  in
  let throughput = solve () in
  let warm_s, warm_throughput = timed solve in
  if warm_throughput <> throughput then
    Supervise.Error.raise_
      (Supervise.Error.Numerical
         { what = "warm solve diverged from cold"; where = "Statespace.measure" });
  {
    r_u = u;
    r_v = v;
    r_phases = phases;
    r_states = Markov.Tpn_markov.structure_states structure;
    r_edges = Markov.Tpn_markov.structure_edges structure;
    r_recurrent = Markov.Tpn_markov.n_recurrent chain;
    r_explore_s = explore_s;
    r_structure_s = structure_s;
    r_solve_s = solve_s;
    r_lump_classes = stats.Markov.Tpn_markov.lump_classes;
    r_lump_solve_s = lump_solve_s;
    r_rung = winning_rung prov;
    r_warm_s = warm_s;
    r_throughput = throughput;
  }

let study ?(ladder = ladder) ?(phases = phase_counts) () =
  Young.Pattern.clear_caches ();
  let rungs =
    List.concat_map
      (fun (u, v) -> List.map (fun p -> measure_rung ~u ~v ~phases:p) phases)
      ladder
  in
  Young.Pattern.clear_caches ();
  rungs

let print fmt rungs =
  Exp_common.header fmt "State-space kernel: exploration and solve times";
  Exp_common.row fmt "%-8s %7s %9s %9s %10s %8s %8s %7s %9s %8s %12s" "pattern" "phases" "states"
    "edges" "explore(s)" "scc(s)" "solve(s)" "lump" "lump(s)" "warm(s)" "throughput";
  List.iter
    (fun r ->
      Exp_common.row fmt "%dx%-6d %7d %9d %9d %10.4f %8.4f %8.4f %7d %9.4f %8.6f %12.6f" r.r_u
        r.r_v r.r_phases r.r_states r.r_edges r.r_explore_s r.r_structure_s r.r_solve_s
        r.r_lump_classes r.r_lump_solve_s r.r_warm_s r.r_throughput)
    rungs

(* ---- the million-state rung ----

   One pattern beyond anything the per-rung ladder touches: (11,12) has
   S(11,12) = C(22,10)·12 = 7 759 752 reachable markings (the Young-lattice
   position code needs 92 bits, so the generic BFS — sharded over the pool
   — does the exploration), and homogeneous rates lump its chain by the
   full 132-fold rotation before the ladder solves the quotient. *)

type big = {
  b_u : int;
  b_v : int;
  b_phases : int;
  b_cap : int;
  b_wall_budget_s : float;
  b_domains : int;
  b_states : int;
  b_edges : int;
  b_explore_s : float;
  b_lumped_solve_s : float;
  b_lump_classes : int;
  b_rung : string;
  b_throughput : float;
  b_total_s : float;
}

let big_study ?(u = 11) ?(v = 12) ?(phases = 1) ?(cap = 12_000_000) ?(wall_budget_s = 900.0)
    ?(domains = 2) () =
  let budget = Supervise.Budget.create ~wall:wall_budget_s ~states:cap () in
  Parallel.Pool.with_pool ~domains (fun pool ->
      let base = Young.Pattern.build ~u ~v ~time:(fun ~sender:_ ~receiver:_ -> 1.0) in
      let teg =
        if phases = 1 then base
        else Petrinet.Expand.teg (Petrinet.Expand.erlang ~phases:(fun _ -> phases) base)
      in
      let explore_s, structure =
        timed (fun () -> Markov.Tpn_markov.structure ~cap ~budget ~pool teg)
      in
      let solve_s, (chain, prov, stats) =
        timed (fun () ->
            let place_perm, trans_perm = Young.Pattern.rotation_perms ~u ~v ~phases ~shift:1 in
            Markov.Tpn_markov.analyse_with_lumped ~budget structure
              ~rates:(fun _ -> float_of_int phases)
              ~place_perm ~trans_perm)
      in
      let outputs = List.init (u * v) Fun.id in
      {
        b_u = u;
        b_v = v;
        b_phases = phases;
        b_cap = cap;
        b_wall_budget_s = wall_budget_s;
        b_domains = domains;
        b_states = Markov.Tpn_markov.structure_states structure;
        b_edges = Markov.Tpn_markov.structure_edges structure;
        b_explore_s = explore_s;
        b_lumped_solve_s = solve_s;
        b_lump_classes = stats.Markov.Tpn_markov.lump_classes;
        b_rung = winning_rung prov;
        b_throughput = Markov.Tpn_markov.throughput_of chain outputs;
        b_total_s = explore_s +. solve_s;
      })

let print_big fmt b =
  Exp_common.header fmt "Million-state rung: sharded exploration + rotation quotient";
  Exp_common.row fmt "%-24s %dx%d ph%d (cap %d, wall budget %.0f s, %d domains)" "instance" b.b_u
    b.b_v b.b_phases b.b_cap b.b_wall_budget_s b.b_domains;
  Exp_common.row fmt "%-24s %d states, %d edges" "explored" b.b_states b.b_edges;
  Exp_common.row fmt "%-24s %d classes (%.1fx reduction)" "rotation quotient"
    b.b_lump_classes
    (float_of_int b.b_states /. float_of_int (max 1 b.b_lump_classes));
  Exp_common.row fmt "%-24s %s" "ladder rung" b.b_rung;
  Exp_common.row fmt "%-24s explore %.1f s, lumped solve %.1f s, total %.1f s" "wall"
    b.b_explore_s b.b_lumped_solve_s b.b_total_s;
  Exp_common.row fmt "%-24s %.9f" "throughput" b.b_throughput

(* Cold-path totals (structure + analyse_with, identical rates) of the
   pre-rewrite kernel, measured on this host at the commit preceding the
   compact kernel; embedded in the emitted JSON so a fresh run still
   documents the speedup against a kernel that no longer exists in the
   tree.  The old structure construction is quadratic in the state count,
   so only rungs that finish in reasonable time are listed. *)
let seed_baseline =
  [
    (5, 6, 1, 0.0199);
    (5, 7, 1, 0.0504);
    (5, 6, 2, 8.621);
    (5, 7, 2, 38.925);
    (4, 9, 3, 1409.74);
    (5, 7, 3, 2564.56);
  ]

let rung_cold r = r.r_explore_s +. r.r_structure_s +. r.r_solve_s

let write_json ?big ~path rungs =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"ladder\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    {\"u\": %d, \"v\": %d, \"phases\": %d, \"states\": %d, \"edges\": %d, \"recurrent\": \
         %d, \"explore_s\": %.6f, \"structure_s\": %.6f, \"solve_s\": %.6f, \"cold_s\": %.6f, \
         \"lump_classes\": %d, \"lump_reduction\": %.2f, \"lump_solve_s\": %.6f, \"ladder_rung\": \
         %S, \"warm_s\": %.6f, \"throughput\": %.12g}%s\n"
        r.r_u r.r_v r.r_phases r.r_states r.r_edges r.r_recurrent r.r_explore_s r.r_structure_s
        r.r_solve_s (rung_cold r) r.r_lump_classes
        (float_of_int r.r_recurrent /. float_of_int (max 1 r.r_lump_classes))
        r.r_lump_solve_s r.r_rung r.r_warm_s r.r_throughput
        (if i = List.length rungs - 1 then "" else ","))
    rungs;
  (match
     List.fold_left
       (fun acc r -> match acc with Some b when b.r_states >= r.r_states -> acc | _ -> Some r)
       None rungs
   with
  | Some l ->
      Printf.fprintf oc
        "  ],\n  \"largest\": {\"u\": %d, \"v\": %d, \"phases\": %d, \"states\": %d, \"cold_s\": \
         %.6f},\n"
        l.r_u l.r_v l.r_phases l.r_states (rung_cold l)
  | None -> Printf.fprintf oc "  ],\n");
  (match big with
  | Some b ->
      Printf.fprintf oc
        "  \"big\": {\"u\": %d, \"v\": %d, \"phases\": %d, \"cap\": %d, \"wall_budget_s\": %.0f, \
         \"domains\": %d, \"states\": %d, \"edges\": %d, \"explore_s\": %.3f, \"lumped_solve_s\": \
         %.3f, \"total_s\": %.3f, \"lump_classes\": %d, \"lump_reduction\": %.2f, \"ladder_rung\": \
         %S, \"throughput\": %.12g},\n"
        b.b_u b.b_v b.b_phases b.b_cap b.b_wall_budget_s b.b_domains b.b_states b.b_edges
        b.b_explore_s b.b_lumped_solve_s b.b_total_s b.b_lump_classes
        (float_of_int b.b_states /. float_of_int (max 1 b.b_lump_classes))
        b.b_rung b.b_throughput
  | None -> ());
  let baseline =
    List.filter_map
      (fun (u, v, p, seed_s) ->
        Option.map
          (fun r -> (u, v, p, seed_s, rung_cold r))
          (List.find_opt (fun r -> r.r_u = u && r.r_v = v && r.r_phases = p) rungs))
      seed_baseline
  in
  Printf.fprintf oc
    "  \"seed_baseline\": {\n\
    \    \"note\": \"cold-path wall times of the pre-rewrite kernel (list-based exploration, \
     hash-table generator), same pipeline and rates, measured on this host at the commit before \
     the compact kernel\",\n\
    \    \"rungs\": [\n";
  List.iteri
    (fun i (u, v, p, seed_s, now_s) ->
      Printf.fprintf oc
        "      {\"u\": %d, \"v\": %d, \"phases\": %d, \"seed_cold_s\": %.4f, \"cold_s\": %.6f, \
         \"speedup\": %.1f}%s\n"
        u v p seed_s now_s (seed_s /. now_s)
        (if i = List.length baseline - 1 then "" else ","))
    baseline;
  Printf.fprintf oc "    ]\n  }\n}\n";
  close_out oc
