open Streaming

(* The last rung of the escalation ladder: when the exact and iterative
   solvers have all failed (state space over the cap, no convergence,
   budget spent), estimate the throughput by discrete-event simulation and
   report an honest batch-means confidence interval alongside. *)
let des_estimate ?(data_sets = 20_000) ~seed mapping model () =
  let laws = Laws.exponential mapping in
  let completions =
    Des.Pipeline_sim.completions mapping model
      ~timing:(Des.Pipeline_sim.Independent laws)
      ~seed ~data_sets
  in
  let bm = Stats.Batch_means.throughput_of_completions completions in
  (bm.Stats.Batch_means.mean, bm.Stats.Batch_means.half_width)

let throughput ?cap ?budget ?ladder ?(data_sets = 20_000) ?(seed = Exp_common.base_seed) mapping =
  Expo.strict_throughput_supervised ?cap ?budget ?ladder
    ~simulate:(des_estimate ~data_sets ~seed mapping Model.Strict)
    mapping
