open Petrinet

type state = { marking : Marking.t; phases : int array  (** -1 when disabled *) }

type t = {
  states : state array;  (** recurrent class *)
  pi : float array;
  laws : Ph.t array;
  total_states : int;
}

module Table = Hashtbl.Make (struct
  type t = state

  let equal a b = a.marking = b.marking && a.phases = b.phases
  let hash s = Hashtbl.hash (Array.to_list s.marking, Array.to_list s.phases)
end)

(* all (probability, phase assignment patch) combinations for the newly
   enabled transitions, each drawing from its law's initial distribution *)
let initial_assignments laws newly =
  List.fold_left
    (fun acc v ->
      let options =
        Array.to_list laws.(v).Ph.initial
        |> List.mapi (fun phase p -> (phase, p))
        |> List.filter (fun (_, p) -> p > 0.0)
      in
      List.concat_map
        (fun (prob, patch) ->
          List.map (fun (phase, p) -> (prob *. p, (v, phase) :: patch)) options)
        acc)
    [ (1.0, []) ]
    newly

let analyse ?(cap = 500_000) ?budget ~ph_of teg =
  let cap = match budget with None -> cap | Some b -> Supervise.Budget.cap_allowed b cap in
  let n_trans = Teg.n_transitions teg in
  let laws = Array.init n_trans ph_of in
  Array.iteri
    (fun v law ->
      match Ph.validate law with
      | Ok () -> ()
      | Error msg -> invalid_arg (Printf.sprintf "Tpn_markov_ph: law of t%d: %s" v msg))
    laws;
  (* breadth-first construction of the (marking, phases) chain *)
  let index = Table.create 1024 in
  let states = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let edges = ref [] in
  (* (src, dst, rate) *)
  let register s =
    match Table.find_opt index s with
    | Some i -> i
    | None ->
        if !count >= cap then
          Supervise.Error.raise_
            (Supervise.Error.State_space_exceeded { cap; explored = !count });
        (match budget with
        | Some b when !count land 1023 = 0 -> Supervise.Budget.check b
        | _ -> ());
        let i = !count in
        Table.add index s i;
        incr count;
        states := s :: !states;
        Queue.add (s, i) queue;
        i
  in
  (* initial states: initial marking, enabled transitions draw their
     starting phases *)
  let m0 = Marking.initial teg in
  let enabled0 = Marking.enabled teg m0 in
  let base_phases = Array.make n_trans (-1) in
  List.iter
    (fun (_, patch) ->
      let phases = Array.copy base_phases in
      List.iter (fun (v, phase) -> phases.(v) <- phase) patch;
      ignore (register { marking = m0; phases }))
    (initial_assignments laws enabled0);
  while not (Queue.is_empty queue) do
    let s, i = Queue.pop queue in
    Array.iteri
      (fun v phase ->
        if phase >= 0 then begin
          let law = laws.(v) in
          (* phase jumps *)
          Array.iteri
            (fun j r ->
              if j <> phase && r > 0.0 then begin
                let phases = Array.copy s.phases in
                phases.(v) <- j;
                let dst = register { marking = s.marking; phases } in
                edges := (i, dst, r) :: !edges
              end)
            law.Ph.jump.(phase);
          (* completion *)
          let ex = law.Ph.exit.(phase) in
          if ex > 0.0 then begin
            let m' = Marking.fire teg s.marking v in
            let enabled' = Marking.enabled teg m' in
            (* transitions other than v keep their phase; v and the
               freshly enabled ones restart *)
            (* the event-graph property (one consumer per place) means
               firing v can never disable another enabled transition, so
               running phases are simply kept *)
            let kept = Array.copy s.phases in
            kept.(v) <- -1;
            let newly = List.filter (fun w -> kept.(w) < 0) enabled' in
            List.iter
              (fun (prob, patch) ->
                let phases = Array.copy kept in
                List.iter (fun (w, phase') -> phases.(w) <- phase') patch;
                let dst = register { marking = m'; phases } in
                edges := (i, dst, ex *. prob) :: !edges)
              (initial_assignments laws newly)
          end
        end)
      s.phases
  done;
  let n = !count in
  let all_states = Array.of_list (List.rev !states) in
  (* recurrent class via bottom SCC, as in Tpn_markov *)
  let graph = Graphs.Digraph.create n in
  List.iter
    (fun (src, dst, _) -> Graphs.Digraph.add_edge graph ~src ~dst ~weight:0.0 ~tokens:0 ())
    !edges;
  let components = Graphs.Digraph.sccs graph in
  let component_of = Array.make n (-1) in
  List.iteri (fun c nodes -> List.iter (fun s -> component_of.(s) <- c) nodes) components;
  let is_bottom = Array.make (List.length components) true in
  List.iter
    (fun (src, dst, _) ->
      if component_of.(src) <> component_of.(dst) then is_bottom.(component_of.(src)) <- false)
    !edges;
  let bottoms = List.filteri (fun c _ -> is_bottom.(c)) components in
  let recurrent_states =
    match bottoms with
    | [ nodes ] -> List.sort compare nodes
    | _ ->
        let recurrent = List.fold_left (fun acc nodes -> acc + List.length nodes) 0 bottoms in
        Supervise.Error.raise_
          (Supervise.Error.Non_ergodic { recurrent; transient = n - recurrent })
  in
  let recurrent = Array.of_list recurrent_states in
  let local = Array.make n (-1) in
  Array.iteri (fun k s -> local.(s) <- k) recurrent;
  let chain = Ctmc.create (Array.length recurrent) in
  List.iter
    (fun (src, dst, rate) ->
      if local.(src) >= 0 && local.(dst) >= 0 && local.(src) <> local.(dst) then
        Ctmc.add_rate chain local.(src) local.(dst) rate)
    !edges;
  let pi = Ctmc.stationary chain in
  { states = Array.map (fun s -> all_states.(s)) recurrent; pi; laws; total_states = n }

let n_states t = t.total_states

let completion_rate t v =
  let acc = ref 0.0 in
  Array.iteri
    (fun k s ->
      let phase = s.phases.(v) in
      if phase >= 0 then acc := !acc +. (t.pi.(k) *. t.laws.(v).Ph.exit.(phase)))
    t.states;
  !acc

let throughput_of t vs = List.fold_left (fun acc v -> acc +. completion_rate t v) 0.0 vs
