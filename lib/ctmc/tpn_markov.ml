open Petrinet

type t = {
  teg : Teg.t;
  rates : float array;
  recurrent : Marking.t array;  (** markings of the recurrent class *)
  pi : float array;  (** stationary distribution over [recurrent] *)
  total_markings : int;
  chain : Ctmc.t;  (** generator restricted to the recurrent class *)
  initial_state : int option;  (** local index of the initial marking *)
}

(* The reachable marking graph and its recurrent class depend only on the
   structure of the net (places, tokens), never on the transition rates, so
   they can be computed once and reused across rate assignments — this is
   what [Young.Pattern]'s per-shape cache shares between sweep points.
   The graph is kept in the CSR form [Marking.explore_graph] produces:
   three flat int arrays instead of a list of pairs per state. *)
type structure = {
  s_teg : Teg.t;
  markings : Marking.t array;
  row_ptr : int array;  (** per state, slice of [succ]/[via] *)
  succ : int array;  (** successor state id per edge *)
  via : int array;  (** transition fired per edge *)
  s_recurrent : int array;  (** global state ids of the recurrent class *)
  local : int array;  (** global id -> recurrent index, -1 if transient *)
}

(* Iterative Tarjan on the CSR adjacency; returns the component id of every
   state (components numbered in completion order, as they are popped). *)
let scc_components ~n ~row_ptr ~succ =
  let comp = Array.make n (-1) in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = Array.make n 0 in
  let sp = ref 0 in
  let next_index = ref 0 in
  let n_comps = ref 0 in
  (* explicit DFS stack: state and position in its edge slice *)
  let dfs_state = Array.make n 0 in
  let dfs_edge = Array.make n 0 in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      let top = ref 0 in
      dfs_state.(0) <- root;
      dfs_edge.(0) <- row_ptr.(root);
      index.(root) <- !next_index;
      lowlink.(root) <- !next_index;
      incr next_index;
      stack.(!sp) <- root;
      incr sp;
      on_stack.(root) <- true;
      while !top >= 0 do
        let v = dfs_state.(!top) in
        let e = dfs_edge.(!top) in
        if e < row_ptr.(v + 1) then begin
          dfs_edge.(!top) <- e + 1;
          let w = succ.(e) in
          if index.(w) < 0 then begin
            index.(w) <- !next_index;
            lowlink.(w) <- !next_index;
            incr next_index;
            stack.(!sp) <- w;
            incr sp;
            on_stack.(w) <- true;
            incr top;
            dfs_state.(!top) <- w;
            dfs_edge.(!top) <- row_ptr.(w)
          end
          else if on_stack.(w) && index.(w) < lowlink.(v) then lowlink.(v) <- index.(w)
        end
        else begin
          if lowlink.(v) = index.(v) then begin
            let c = !n_comps in
            incr n_comps;
            let continue = ref true in
            while !continue do
              decr sp;
              let w = stack.(!sp) in
              on_stack.(w) <- false;
              comp.(w) <- c;
              if w = v then continue := false
            done
          end;
          decr top;
          if !top >= 0 then begin
            let parent = dfs_state.(!top) in
            if lowlink.(v) < lowlink.(parent) then lowlink.(parent) <- lowlink.(v)
          end
        end
      done
    end
  done;
  (comp, !n_comps)

let structure_of_graph teg (g : Marking.graph) =
  let { Marking.markings; row_ptr; succ; via } = g in
  let n = Array.length markings in
  (* Bottom SCCs = recurrent classes. *)
  let component_of, n_comps = scc_components ~n ~row_ptr ~succ in
  let is_bottom = Array.make n_comps true in
  for i = 0 to n - 1 do
    for e = row_ptr.(i) to row_ptr.(i + 1) - 1 do
      if component_of.(succ.(e)) <> component_of.(i) then is_bottom.(component_of.(i)) <- false
    done
  done;
  let bottom =
    let found = ref (-1) in
    let several = ref false in
    for c = 0 to n_comps - 1 do
      if is_bottom.(c) then if !found < 0 then found := c else several := true
    done;
    if !several || !found < 0 then begin
      (* not ergodic: no unique recurrent class — report how the states
         split between (any) bottom SCC and the transient part *)
      let recurrent = ref 0 in
      Array.iter (fun c -> if c >= 0 && is_bottom.(c) then incr recurrent) component_of;
      Supervise.Error.raise_
        (Supervise.Error.Non_ergodic { recurrent = !recurrent; transient = n - !recurrent })
    end;
    !found
  in
  let n_rec = ref 0 in
  Array.iter (fun c -> if c = bottom then incr n_rec) component_of;
  let s_recurrent = Array.make !n_rec 0 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    (* states in increasing id order, as the seed's [List.sort compare] *)
    if component_of.(i) = bottom then begin
      s_recurrent.(!k) <- i;
      incr k
    end
  done;
  let local = Array.make n (-1) in
  Array.iteri (fun k s -> local.(s) <- k) s_recurrent;
  { s_teg = teg; markings; row_ptr; succ; via; s_recurrent; local }

let structure ?cap ?budget teg = structure_of_graph teg (Marking.explore_graph ?cap ?budget teg)

let structure_states s = Array.length s.markings
let structure_edges s = Array.length s.succ

let build_chain s ~rates =
  let teg = s.s_teg in
  let n_trans = Teg.n_transitions teg in
  let rate_array = Array.init n_trans rates in
  Array.iteri
    (fun v r -> if r <= 0.0 then invalid_arg (Printf.sprintf "Tpn_markov: rate of t%d not positive" v))
    rate_array;
  let { row_ptr; succ; via; s_recurrent = recurrent; local; _ } = s in
  let chain = Ctmc.create (Array.length recurrent) in
  Array.iter
    (fun st ->
      for e = row_ptr.(st) to row_ptr.(st + 1) - 1 do
        (* A marking-preserving firing (e.g. a transition whose only place
           is a token self-loop) is a CTMC self-loop: it does not affect
           the stationary distribution and is skipped. *)
        let j = succ.(e) in
        if local.(j) >= 0 && local.(j) <> local.(st) then
          Ctmc.add_rate chain local.(st) local.(j) rate_array.(via.(e))
      done)
    recurrent;
  (rate_array, chain)

let assemble s ~rate_array ~chain ~pi =
  let { markings; s_recurrent = recurrent; local; _ } = s in
  {
    teg = s.s_teg;
    rates = rate_array;
    recurrent = Array.map (fun st -> markings.(st)) recurrent;
    pi;
    total_markings = Array.length markings;
    chain;
    initial_state = (if local.(0) >= 0 then Some local.(0) else None);
  }

let analyse_with s ~rates =
  let rate_array, chain = build_chain s ~rates in
  let pi = Ctmc.stationary chain in
  assemble s ~rate_array ~chain ~pi

let analyse_with_supervised ?budget ?ladder s ~rates =
  let rate_array, chain = build_chain s ~rates in
  let pi, provenance = Ctmc.stationary_supervised ?budget ?ladder chain in
  (assemble s ~rate_array ~chain ~pi, provenance)

let analyse ?cap ~rates teg = analyse_with (structure ?cap teg) ~rates

let analyse_supervised ?cap ?budget ?ladder ~rates teg =
  analyse_with_supervised ?budget ?ladder (structure ?cap ?budget teg) ~rates

let n_markings t = t.total_markings
let n_recurrent t = Array.length t.recurrent

let enabled_probability t v =
  let acc = ref 0.0 in
  Array.iteri (fun k m -> if Marking.is_enabled t.teg m v then acc := !acc +. t.pi.(k)) t.recurrent;
  !acc

let firing_rate t v = t.rates.(v) *. enabled_probability t v
let throughput_of t vs = List.fold_left (fun acc v -> acc +. firing_rate t v) 0.0 vs

let stationary_throughput = throughput_of

let expected_firings ?tol t ~horizon transitions =
  match t.initial_state with
  | None ->
      invalid_arg "Tpn_markov.expected_firings: the initial marking is transient"
  | Some initial ->
      let occupancy = Transient.occupancy ?tol t.chain ~initial ~horizon in
      List.fold_left
        (fun acc v ->
          let time_enabled = ref 0.0 in
          Array.iteri
            (fun k m -> if Marking.is_enabled t.teg m v then time_enabled := !time_enabled +. occupancy.(k))
            t.recurrent;
          acc +. (t.rates.(v) *. !time_enabled))
        0.0 transitions
