open Petrinet

type t = {
  teg : Teg.t;
  rates : float array;
  recurrent : Marking.t array;  (** markings of the recurrent class *)
  pi : float array;  (** stationary distribution over [recurrent] *)
  total_markings : int;
  chain : Ctmc.t;  (** generator restricted to the recurrent class *)
  initial_state : int option;  (** local index of the initial marking *)
  rec_row : int array;  (** per recurrent state, slice of [rec_via] *)
  rec_via : int array;  (** transitions enabled at each recurrent state *)
  enab : float array;  (** per transition, stationary P(enabled) *)
}

(* The reachable marking graph and its recurrent class depend only on the
   structure of the net (places, tokens), never on the transition rates, so
   they can be computed once and reused across rate assignments — this is
   what [Young.Pattern]'s per-shape cache shares between sweep points.
   The graph is kept in the CSR form [Marking.explore_graph] produces:
   three flat int arrays instead of a list of pairs per state. *)
type structure = {
  s_teg : Teg.t;
  markings : Marking.t array;
  row_ptr : int array;  (** per state, slice of [succ]/[via] *)
  succ : int array;  (** successor state id per edge *)
  via : int array;  (** transition fired per edge *)
  s_recurrent : int array;  (** global state ids of the recurrent class *)
  local : int array;  (** global id -> recurrent index, -1 if transient *)
}

(* Iterative Tarjan on the CSR adjacency; returns the component id of every
   state (components numbered in completion order, as they are popped). *)
let scc_components ~n ~row_ptr ~succ =
  let comp = Array.make n (-1) in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = Array.make n 0 in
  let sp = ref 0 in
  let next_index = ref 0 in
  let n_comps = ref 0 in
  (* explicit DFS stack: state and position in its edge slice *)
  let dfs_state = Array.make n 0 in
  let dfs_edge = Array.make n 0 in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      let top = ref 0 in
      dfs_state.(0) <- root;
      dfs_edge.(0) <- row_ptr.(root);
      index.(root) <- !next_index;
      lowlink.(root) <- !next_index;
      incr next_index;
      stack.(!sp) <- root;
      incr sp;
      on_stack.(root) <- true;
      while !top >= 0 do
        let v = dfs_state.(!top) in
        let e = dfs_edge.(!top) in
        if e < row_ptr.(v + 1) then begin
          dfs_edge.(!top) <- e + 1;
          let w = succ.(e) in
          if index.(w) < 0 then begin
            index.(w) <- !next_index;
            lowlink.(w) <- !next_index;
            incr next_index;
            stack.(!sp) <- w;
            incr sp;
            on_stack.(w) <- true;
            incr top;
            dfs_state.(!top) <- w;
            dfs_edge.(!top) <- row_ptr.(w)
          end
          else if on_stack.(w) && index.(w) < lowlink.(v) then lowlink.(v) <- index.(w)
        end
        else begin
          if lowlink.(v) = index.(v) then begin
            let c = !n_comps in
            incr n_comps;
            let continue = ref true in
            while !continue do
              decr sp;
              let w = stack.(!sp) in
              on_stack.(w) <- false;
              comp.(w) <- c;
              if w = v then continue := false
            done
          end;
          decr top;
          if !top >= 0 then begin
            let parent = dfs_state.(!top) in
            if lowlink.(v) < lowlink.(parent) then lowlink.(parent) <- lowlink.(v)
          end
        end
      done
    end
  done;
  (comp, !n_comps)

let structure_of_graph teg (g : Marking.graph) =
  let { Marking.markings; row_ptr; succ; via } = g in
  let n = Array.length markings in
  (* Bottom SCCs = recurrent classes. *)
  let component_of, n_comps = scc_components ~n ~row_ptr ~succ in
  let is_bottom = Array.make n_comps true in
  for i = 0 to n - 1 do
    for e = row_ptr.(i) to row_ptr.(i + 1) - 1 do
      if component_of.(succ.(e)) <> component_of.(i) then is_bottom.(component_of.(i)) <- false
    done
  done;
  let bottom =
    let found = ref (-1) in
    let several = ref false in
    for c = 0 to n_comps - 1 do
      if is_bottom.(c) then if !found < 0 then found := c else several := true
    done;
    if !several || !found < 0 then begin
      (* not ergodic: no unique recurrent class — report how the states
         split between (any) bottom SCC and the transient part *)
      let recurrent = ref 0 in
      Array.iter (fun c -> if c >= 0 && is_bottom.(c) then incr recurrent) component_of;
      Supervise.Error.raise_
        (Supervise.Error.Non_ergodic { recurrent = !recurrent; transient = n - !recurrent })
    end;
    !found
  in
  let n_rec = ref 0 in
  Array.iter (fun c -> if c = bottom then incr n_rec) component_of;
  let s_recurrent = Array.make !n_rec 0 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    (* states in increasing id order, as the seed's [List.sort compare] *)
    if component_of.(i) = bottom then begin
      s_recurrent.(!k) <- i;
      incr k
    end
  done;
  let local = Array.make n (-1) in
  Array.iteri (fun k s -> local.(s) <- k) s_recurrent;
  { s_teg = teg; markings; row_ptr; succ; via; s_recurrent; local }

let structure ?cap ?budget ?pool teg =
  structure_of_graph teg (Marking.explore_graph ?cap ?budget ?pool teg)

let structure_states s = Array.length s.markings
let structure_edges s = Array.length s.succ

let build_chain s ~rates =
  let teg = s.s_teg in
  let n_trans = Teg.n_transitions teg in
  let rate_array = Array.init n_trans rates in
  Array.iteri
    (fun v r -> if r <= 0.0 then invalid_arg (Printf.sprintf "Tpn_markov: rate of t%d not positive" v))
    rate_array;
  let { row_ptr; succ; via; s_recurrent = recurrent; local; _ } = s in
  let chain = Ctmc.create (Array.length recurrent) in
  Array.iter
    (fun st ->
      for e = row_ptr.(st) to row_ptr.(st + 1) - 1 do
        (* A marking-preserving firing (e.g. a transition whose only place
           is a token self-loop) is a CTMC self-loop: it does not affect
           the stationary distribution and is skipped. *)
        let j = succ.(e) in
        if local.(j) >= 0 && local.(j) <> local.(st) then
          Ctmc.add_rate chain local.(st) local.(j) rate_array.(via.(e))
      done)
    recurrent;
  (rate_array, chain)

let assemble s ~rate_array ~chain ~pi =
  let { markings; row_ptr; via; s_recurrent = recurrent; local; _ } = s in
  (* Per-recurrent-state enabled-transition slices, extracted from the CSR
     rows (exactly one edge per enabled firing), so the throughput queries
     below never rescan markings.  The per-transition stationary enabled
     probability accumulates in recurrent-state order — the same float
     summation order as a per-transition [Marking.is_enabled] scan. *)
  let n_rec = Array.length recurrent in
  let rec_row = Array.make (n_rec + 1) 0 in
  for k = 0 to n_rec - 1 do
    let st = recurrent.(k) in
    rec_row.(k + 1) <- rec_row.(k) + row_ptr.(st + 1) - row_ptr.(st)
  done;
  let rec_via = Array.make rec_row.(n_rec) 0 in
  for k = 0 to n_rec - 1 do
    let st = recurrent.(k) in
    Array.blit via row_ptr.(st) rec_via rec_row.(k) (row_ptr.(st + 1) - row_ptr.(st))
  done;
  let enab = Array.make (Teg.n_transitions s.s_teg) 0.0 in
  for k = 0 to n_rec - 1 do
    for e = rec_row.(k) to rec_row.(k + 1) - 1 do
      enab.(rec_via.(e)) <- enab.(rec_via.(e)) +. pi.(k)
    done
  done;
  {
    teg = s.s_teg;
    rates = rate_array;
    recurrent = Array.map (fun st -> markings.(st)) recurrent;
    pi;
    total_markings = Array.length markings;
    chain;
    initial_state = (if local.(0) >= 0 then Some local.(0) else None);
    rec_row;
    rec_via;
    enab;
  }

let analyse_with s ~rates =
  let rate_array, chain = build_chain s ~rates in
  let pi = Ctmc.stationary chain in
  assemble s ~rate_array ~chain ~pi

let analyse_with_supervised ?budget ?ladder s ~rates =
  let rate_array, chain = build_chain s ~rates in
  let pi, provenance = Ctmc.stationary_supervised ?budget ?ladder chain in
  (assemble s ~rate_array ~chain ~pi, provenance)

(* ---- symmetry quotients ----

   A place permutation σ_P that is an automorphism of the net induces a
   permutation of the reachable markings (m ↦ m ∘ σ_P⁻¹); if a matching
   transition permutation σ_T preserves rates, the orbit partition of the
   marking permutation is exactly lumpable: σ maps the edges out of x
   bijectively onto the edges out of σ(x) with equal rates, so aggregate
   rates into every orbit agree across an orbit's members.  The quotient
   chain solves at 1/|orbit| the size, and because the permuted chain is
   the same chain, π ∘ σ = π: stationary mass is constant on each orbit,
   which makes the uniform lift of [Ctmc.lift] exact, not just
   class-sum-correct. *)

module Mtable = Hashtbl.Make (struct
  type t = Marking.t

  let equal = Marking.equal
  let hash = Marking.hash
end)

let state_permutation s ~place_perm =
  let markings = s.markings in
  let n = Array.length markings in
  let np = Array.length place_perm in
  let index = Mtable.create (2 * n) in
  Array.iteri (fun i m -> Mtable.replace index m i) markings;
  let perm = Array.make n (-1) in
  let image = Array.make np 0 in
  for i = 0 to n - 1 do
    let m = markings.(i) in
    for p = 0 to np - 1 do
      image.(place_perm.(p)) <- m.(p)
    done;
    match Mtable.find_opt index image with
    | Some j -> perm.(i) <- j
    | None ->
        Supervise.Error.raise_
          (Supervise.Error.Numerical
             {
               what =
                 Printf.sprintf "place permutation maps marking %d outside the reachable set" i;
               where = "Tpn_markov.state_permutation";
             })
  done;
  perm

let orbit_partition s ~state_perm =
  let { s_recurrent = recurrent; local; _ } = s in
  let n_rec = Array.length recurrent in
  let classes = Array.make n_rec (-1) in
  let n_classes = ref 0 in
  for k = 0 to n_rec - 1 do
    if classes.(k) < 0 then begin
      let c = !n_classes in
      incr n_classes;
      let g = ref recurrent.(k) in
      let continue = ref true in
      while !continue do
        let l = local.(!g) in
        if l < 0 then
          Supervise.Error.raise_
            (Supervise.Error.Numerical
               {
                 what = "automorphism does not preserve the recurrent class";
                 where = "Tpn_markov.orbit_partition";
               });
        if classes.(l) >= 0 then continue := false
        else begin
          classes.(l) <- c;
          g := state_perm.(!g)
        end
      done
    end
  done;
  (classes, !n_classes)

type lump_stats = { lump_states : int; lump_classes : int }

let m_lumped_analyses =
  Obs.Metrics.Counter.create ~help:"Stationary analyses solved on a symmetry quotient"
    "tpn_lumped_analyses_total"

let analyse_with_lumped ?budget ?ladder s ~rates ~place_perm ~trans_perm =
  Obs.Trace.span "ctmc:analyse_lumped" (fun () ->
      let teg = s.s_teg in
      let n_trans = Teg.n_transitions teg in
      let rate_array = Array.init n_trans rates in
      Array.iteri
        (fun v r ->
          if r <= 0.0 then invalid_arg (Printf.sprintf "Tpn_markov: rate of t%d not positive" v))
        rate_array;
      (* lumpability needs the symmetry to preserve rates exactly *)
      for v = 0 to n_trans - 1 do
        if rate_array.(trans_perm.(v)) <> rate_array.(v) then
          Supervise.Error.raise_
            (Supervise.Error.Numerical
               {
                 what = Printf.sprintf "rates are not invariant under the symmetry at t%d" v;
                 where = "Tpn_markov.analyse_with_lumped";
               })
      done;
      let state_perm = state_permutation s ~place_perm in
      let classes, n_classes = orbit_partition s ~state_perm in
      let { row_ptr; succ; via; s_recurrent = recurrent; local; _ } = s in
      let n_rec = Array.length recurrent in
      (* quotient generator straight from class-representative CSR rows —
         the full n_rec-state chain is never materialised *)
      let q = Ctmc.create n_classes in
      let reps = Array.make n_classes (-1) in
      for k = 0 to n_rec - 1 do
        let c = classes.(k) in
        if reps.(c) < 0 then reps.(c) <- k
      done;
      let acc = Array.make n_classes 0.0 in
      let touched = Array.make n_classes 0 in
      for c = 0 to n_classes - 1 do
        let st = recurrent.(reps.(c)) in
        let nt = ref 0 in
        for e = row_ptr.(st) to row_ptr.(st + 1) - 1 do
          let lj = local.(succ.(e)) in
          if lj >= 0 then begin
            let c' = classes.(lj) in
            if c' <> c then begin
              if acc.(c') = 0.0 then begin
                touched.(!nt) <- c';
                incr nt
              end;
              acc.(c') <- acc.(c') +. rate_array.(via.(e))
            end
          end
        done;
        for i = 0 to !nt - 1 do
          Ctmc.add_rate q c touched.(i) acc.(touched.(i));
          acc.(touched.(i)) <- 0.0
        done
      done;
      let pi_hat, provenance = Ctmc.stationary_supervised ?budget ?ladder q in
      let pi = Ctmc.lift ~classes ~n_classes pi_hat in
      Obs.Metrics.Counter.incr m_lumped_analyses;
      Obs.Trace.add_attr "states" (string_of_int n_rec);
      Obs.Trace.add_attr "classes" (string_of_int n_classes);
      (* [initial_state] indexes [chain], which is now the quotient:
         transient analysis is not preserved by lumping, so it is off *)
      let t = { (assemble s ~rate_array ~chain:q ~pi) with initial_state = None } in
      (t, provenance, { lump_states = n_rec; lump_classes = n_classes }))

let analyse ?cap ~rates teg = analyse_with (structure ?cap teg) ~rates

let analyse_supervised ?cap ?budget ?ladder ~rates teg =
  analyse_with_supervised ?budget ?ladder (structure ?cap ?budget teg) ~rates

let n_markings t = t.total_markings
let n_recurrent t = Array.length t.recurrent
let enabled_probability t v = t.enab.(v)
let firing_rate t v = t.rates.(v) *. enabled_probability t v
let throughput_of t vs = List.fold_left (fun acc v -> acc +. firing_rate t v) 0.0 vs

let stationary_throughput = throughput_of

let stationary_distribution t = Array.copy t.pi

let expected_firings ?tol t ~horizon transitions =
  match t.initial_state with
  | None ->
      invalid_arg "Tpn_markov.expected_firings: the initial marking is transient"
  | Some initial ->
      let occupancy = Transient.occupancy ?tol t.chain ~initial ~horizon in
      List.fold_left
        (fun acc v ->
          let time_enabled = ref 0.0 in
          for k = 0 to Array.length t.pi - 1 do
            for e = t.rec_row.(k) to t.rec_row.(k + 1) - 1 do
              if t.rec_via.(e) = v then time_enabled := !time_enabled +. occupancy.(k)
            done
          done;
          acc +. (t.rates.(v) *. !time_enabled))
        0.0 transitions
