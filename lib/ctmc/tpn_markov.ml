open Petrinet

type t = {
  teg : Teg.t;
  rates : float array;
  recurrent : Marking.t array;  (** markings of the recurrent class *)
  pi : float array;  (** stationary distribution over [recurrent] *)
  total_markings : int;
  chain : Ctmc.t;  (** generator restricted to the recurrent class *)
  initial_state : int option;  (** local index of the initial marking *)
}

module Table = Hashtbl.Make (struct
  type t = Marking.t

  let equal = Marking.equal
  let hash = Marking.hash
end)

(* The reachable marking graph and its recurrent class depend only on the
   structure of the net (places, tokens), never on the transition rates, so
   they can be computed once and reused across rate assignments — this is
   what [Young.Pattern]'s per-shape cache shares between sweep points. *)
type structure = {
  s_teg : Teg.t;
  markings : Marking.t array;
  jumps : (int * int) list array;  (** per state: (transition, successor) *)
  s_recurrent : int array;  (** global state ids of the recurrent class *)
  local : int array;  (** global id -> recurrent index, -1 if transient *)
}

let structure ?cap teg =
  let markings = Marking.explore ?cap teg in
  let n = Array.length markings in
  let index = Table.create (2 * n) in
  Array.iteri (fun i m -> Table.add index m i) markings;
  (* Build the marking graph once; reuse it for the recurrent-class
     restriction and the generator. *)
  let jumps = Array.make n [] in
  let graph = Graphs.Digraph.create n in
  Array.iteri
    (fun i m ->
      List.iter
        (fun v ->
          let j = Table.find index (Marking.fire teg m v) in
          jumps.(i) <- (v, j) :: jumps.(i);
          Graphs.Digraph.add_edge graph ~src:i ~dst:j ~weight:0.0 ~tokens:0 ())
        (Marking.enabled teg m))
    markings;
  (* Bottom SCCs = recurrent classes. *)
  let components = Graphs.Digraph.sccs graph in
  let component_of = Array.make n (-1) in
  List.iteri (fun c states -> List.iter (fun s -> component_of.(s) <- c) states) components;
  let is_bottom = Array.make (List.length components) true in
  Array.iteri
    (fun i succs ->
      List.iter (fun (_, j) -> if component_of.(j) <> component_of.(i) then is_bottom.(component_of.(i)) <- false) succs)
    jumps;
  let bottoms = List.filteri (fun c _ -> is_bottom.(c)) components in
  let recurrent_states =
    match bottoms with
    | [ states ] -> List.sort compare states
    | [] -> failwith "Tpn_markov: no recurrent class (empty chain?)"
    | _ -> failwith "Tpn_markov: several recurrent classes"
  in
  let s_recurrent = Array.of_list recurrent_states in
  let local = Array.make n (-1) in
  Array.iteri (fun k s -> local.(s) <- k) s_recurrent;
  { s_teg = teg; markings; jumps; s_recurrent; local }

let structure_states s = Array.length s.markings

let analyse_with s ~rates =
  let teg = s.s_teg in
  let n_trans = Teg.n_transitions teg in
  let rate_array = Array.init n_trans rates in
  Array.iteri
    (fun v r -> if r <= 0.0 then invalid_arg (Printf.sprintf "Tpn_markov: rate of t%d not positive" v))
    rate_array;
  let { markings; jumps; s_recurrent = recurrent; local; _ } = s in
  let chain = Ctmc.create (Array.length recurrent) in
  Array.iter
    (fun st ->
      List.iter
        (fun (v, j) ->
          (* A marking-preserving firing (e.g. a transition whose only place
             is a token self-loop) is a CTMC self-loop: it does not affect
             the stationary distribution and is skipped. *)
          if local.(j) >= 0 && local.(j) <> local.(st) then
            Ctmc.add_rate chain local.(st) local.(j) rate_array.(v))
        jumps.(st))
    recurrent;
  let pi = Ctmc.stationary chain in
  {
    teg;
    rates = rate_array;
    recurrent = Array.map (fun st -> markings.(st)) recurrent;
    pi;
    total_markings = Array.length markings;
    chain;
    initial_state = (if local.(0) >= 0 then Some local.(0) else None);
  }

let analyse ?cap ~rates teg = analyse_with (structure ?cap teg) ~rates

let n_markings t = t.total_markings
let n_recurrent t = Array.length t.recurrent

let enabled_probability t v =
  let acc = ref 0.0 in
  Array.iteri (fun k m -> if Marking.is_enabled t.teg m v then acc := !acc +. t.pi.(k)) t.recurrent;
  !acc

let firing_rate t v = t.rates.(v) *. enabled_probability t v
let throughput_of t vs = List.fold_left (fun acc v -> acc +. firing_rate t v) 0.0 vs

let stationary_throughput = throughput_of

let expected_firings ?tol t ~horizon transitions =
  match t.initial_state with
  | None ->
      invalid_arg "Tpn_markov.expected_firings: the initial marking is transient"
  | Some initial ->
      let occupancy = Transient.occupancy ?tol t.chain ~initial ~horizon in
      List.fold_left
        (fun acc v ->
          let time_enabled = ref 0.0 in
          Array.iteri
            (fun k m -> if Marking.is_enabled t.teg m v then time_enabled := !time_enabled +. occupancy.(k))
            t.recurrent;
          acc +. (t.rates.(v) *. !time_enabled))
        0.0 transitions
