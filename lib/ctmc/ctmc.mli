(** Continuous-time Markov chains with a pluggable stationary solver. *)

type t

val create : int -> t
(** [create n] is an empty chain over states [0..n-1]. *)

val add_rate : t -> int -> int -> float -> unit
(** Accumulates rate onto the i → j transition. *)

val n_states : t -> int

type method_ = Auto | Gth | Gauss_seidel | Power

val stationary : ?solver:method_ -> t -> float array
(** Stationary distribution of an irreducible chain.  [Auto] (default)
    uses the numerically exact GTH elimination up to 1200 states and
    sparse Gauss–Seidel beyond. *)

type rung =
  | Rung_gth
  | Rung_gauss_seidel of { tol : float }
  | Rung_power of { tol : float }
  | Rung_arnoldi of { tol : float; restart : int }
(** One step of an escalation ladder: a solver paired with the tolerance
    it is asked to reach.  [Rung_arnoldi] is the Krylov rung — restarted
    Arnoldi with an [restart]-dimensional basis (see
    {!Linalg.Sparse.stationary_arnoldi}). *)

val default_ladder : int -> rung list
(** The standard ladder for an [n]-state chain: GTH (only when [n] is
    within the dense threshold), Gauss–Seidel at 1e-12, Gauss–Seidel
    relaxed to 1e-9, power iteration at 1e-10, and finally restarted
    Arnoldi (tol 1e-10, basis 30) for stiff chains that defeat the
    one-dimensional iterations. *)

val stationary_supervised :
  ?budget:Supervise.Budget.t -> ?ladder:rung list -> t -> float array * Supervise.Provenance.t
(** Climbs the ladder (default {!default_ladder}) until a rung succeeds,
    returning the distribution together with a provenance record listing
    every attempt.  A success on any rung after the first is marked
    degraded.  Raises the last rung's [Supervise.Error.Solver_error] if
    all rungs fail, and stops climbing immediately on [Budget_exhausted]
    (a spent wall clock fails every later rung too).  The [budget] is
    threaded into the iterative rungs' sweep loops. *)

val lump : ?verify:bool -> t -> classes:int array -> n_classes:int -> t
(** Exact-lumpability quotient: [classes.(i)] is the class of state [i]
    (class ids [0 .. n_classes-1], every class non-empty).  The quotient
    chain's row for a class is the aggregate row of its lowest-numbered
    member, with intra-class rates dropped (they are quotient self-loops).
    With [verify] (default [true]) every state's aggregate rates into
    other classes are checked against its representative's, within
    relative 1e-9 — a partition that fails the check is not lumpable and
    raises [Supervise.Error.Solver_error (Numerical _)].  Cost: O(nnz)
    with verification, O(classes + their rows) without. *)

val lift : classes:int array -> n_classes:int -> float array -> float array
(** [lift ~classes ~n_classes pi_hat] spreads each class's stationary mass
    uniformly over its members: π(i) = π̂(classes i) / |class|.  Exact when
    the partition is the orbit partition of a rate-preserving automorphism
    of the generator (the Young-lattice rotation quotients built by
    {!Young.Pattern}); for general lumpable partitions only the class sums
    are meaningful. *)

val flow : t -> pi:float array -> src:int -> dst:int -> float
(** Stationary probability flow π(src)·q(src,dst). *)

val outgoing : t -> int -> (int * float) list
(** Outgoing transitions of a state (target, merged rate): duplicate edges
    are merged when the generator is frozen, so each target appears once. *)

val iter_outgoing : t -> int -> (int -> float -> unit) -> unit
(** Allocation-free iteration over the merged outgoing edges of a state. *)

val exit_rate : t -> int -> float
val max_exit_rate : t -> float
