(** Continuous-time Markov chains with a pluggable stationary solver. *)

type t

val create : int -> t
(** [create n] is an empty chain over states [0..n-1]. *)

val add_rate : t -> int -> int -> float -> unit
(** Accumulates rate onto the i → j transition. *)

val n_states : t -> int

type method_ = Auto | Gth | Gauss_seidel | Power

val stationary : ?solver:method_ -> t -> float array
(** Stationary distribution of an irreducible chain.  [Auto] (default)
    uses the numerically exact GTH elimination up to 1200 states and
    sparse Gauss–Seidel beyond. *)

type rung = Rung_gth | Rung_gauss_seidel of { tol : float } | Rung_power of { tol : float }
(** One step of an escalation ladder: a solver paired with the tolerance
    it is asked to reach. *)

val default_ladder : int -> rung list
(** The standard ladder for an [n]-state chain: GTH (only when [n] is
    within the dense threshold), Gauss–Seidel at 1e-12, Gauss–Seidel
    relaxed to 1e-9, power iteration at 1e-10. *)

val stationary_supervised :
  ?budget:Supervise.Budget.t -> ?ladder:rung list -> t -> float array * Supervise.Provenance.t
(** Climbs the ladder (default {!default_ladder}) until a rung succeeds,
    returning the distribution together with a provenance record listing
    every attempt.  A success on any rung after the first is marked
    degraded.  Raises the last rung's [Supervise.Error.Solver_error] if
    all rungs fail, and stops climbing immediately on [Budget_exhausted]
    (a spent wall clock fails every later rung too).  The [budget] is
    threaded into the iterative rungs' sweep loops. *)

val flow : t -> pi:float array -> src:int -> dst:int -> float
(** Stationary probability flow π(src)·q(src,dst). *)

val outgoing : t -> int -> (int * float) list
(** Outgoing transitions of a state (target, merged rate): duplicate edges
    are merged when the generator is frozen, so each target appears once. *)

val iter_outgoing : t -> int -> (int -> float -> unit) -> unit
(** Allocation-free iteration over the merged outgoing edges of a state. *)

val exit_rate : t -> int -> float
val max_exit_rate : t -> float
