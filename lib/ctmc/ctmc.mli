(** Continuous-time Markov chains with a pluggable stationary solver. *)

type t

val create : int -> t
(** [create n] is an empty chain over states [0..n-1]. *)

val add_rate : t -> int -> int -> float -> unit
(** Accumulates rate onto the i → j transition. *)

val n_states : t -> int

type method_ = Auto | Gth | Gauss_seidel | Power

val stationary : ?solver:method_ -> t -> float array
(** Stationary distribution of an irreducible chain.  [Auto] (default)
    uses the numerically exact GTH elimination up to 1200 states and
    sparse Gauss–Seidel beyond. *)

val flow : t -> pi:float array -> src:int -> dst:int -> float
(** Stationary probability flow π(src)·q(src,dst). *)

val outgoing : t -> int -> (int * float) list
(** Outgoing transitions of a state (target, merged rate): duplicate edges
    are merged when the generator is frozen, so each target appears once. *)

val iter_outgoing : t -> int -> (int -> float -> unit) -> unit
(** Allocation-free iteration over the merged outgoing edges of a state. *)

val exit_rate : t -> int -> float
val max_exit_rate : t -> float
