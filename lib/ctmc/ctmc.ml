type t = { n : int; sparse : Linalg.Sparse.t; rates : (int * int, float) Hashtbl.t }

let create n = { n; sparse = Linalg.Sparse.create n; rates = Hashtbl.create 64 }

let add_rate t i j r =
  if r <= 0.0 then invalid_arg "Ctmc.add_rate: rate must be positive";
  Linalg.Sparse.add_rate t.sparse i j r;
  let key = (i, j) in
  let prev = Option.value ~default:0.0 (Hashtbl.find_opt t.rates key) in
  Hashtbl.replace t.rates key (prev +. r)

let n_states t = t.n

type method_ = Auto | Gth | Gauss_seidel | Power

let gth_threshold = 1200

let dense_rates t =
  let m = Array.make_matrix t.n t.n 0.0 in
  Hashtbl.iter (fun (i, j) r -> m.(i).(j) <- r) t.rates;
  m

let stationary ?(solver = Auto) t =
  match solver with
  | Gth -> Linalg.Gth.stationary (dense_rates t)
  | Gauss_seidel -> Linalg.Sparse.stationary_gauss_seidel t.sparse
  | Power -> Linalg.Sparse.stationary_power t.sparse
  | Auto ->
      if t.n <= gth_threshold then Linalg.Gth.stationary (dense_rates t)
      else Linalg.Sparse.stationary_gauss_seidel t.sparse

let flow t ~pi ~src ~dst =
  match Hashtbl.find_opt t.rates (src, dst) with None -> 0.0 | Some r -> pi.(src) *. r

let outgoing t i = Linalg.Sparse.outgoing t.sparse i
let exit_rate t i = Linalg.Sparse.exit_rate t.sparse i

let max_exit_rate t =
  let best = ref 0.0 in
  for i = 0 to t.n - 1 do
    let r = exit_rate t i in
    if r > !best then best := r
  done;
  !best
