type t = { n : int; sparse : Linalg.Sparse.t }

let create n = { n; sparse = Linalg.Sparse.create n }

let add_rate t i j r =
  if r <= 0.0 then invalid_arg "Ctmc.add_rate: rate must be positive";
  Linalg.Sparse.add_rate t.sparse i j r

let n_states t = t.n

type method_ = Auto | Gth | Gauss_seidel | Power

(* Crossover between O(n³) GTH elimination and sparse Gauss–Seidel,
   re-measured on the CSR kernel (see DESIGN.md): GTH stays competitive —
   and is exact — through roughly a thousand states. *)
let gth_threshold = 1200

let stationary ?(solver = Auto) t =
  match solver with
  | Gth -> Linalg.Gth.stationary (Linalg.Sparse.to_dense t.sparse)
  | Gauss_seidel -> Linalg.Sparse.stationary_gauss_seidel t.sparse
  | Power -> Linalg.Sparse.stationary_power t.sparse
  | Auto ->
      if t.n <= gth_threshold then Linalg.Gth.stationary (Linalg.Sparse.to_dense t.sparse)
      else Linalg.Sparse.stationary_gauss_seidel t.sparse

(* ---- supervised solving: the escalation ladder ---- *)

type rung = Rung_gth | Rung_gauss_seidel of { tol : float } | Rung_power of { tol : float }

let rung_name = function
  | Rung_gth -> "gth"
  | Rung_gauss_seidel { tol } -> Printf.sprintf "gauss-seidel(tol=%g)" tol
  | Rung_power { tol } -> Printf.sprintf "power(tol=%g)" tol

(* GTH is exact but dense O(n³), so it only heads the ladder for chains it
   can actually chew through; the iterative rungs then relax the tolerance
   before switching method entirely. *)
let default_ladder n =
  let iterative =
    [
      Rung_gauss_seidel { tol = 1e-12 };
      Rung_gauss_seidel { tol = 1e-9 };
      Rung_power { tol = 1e-10 };
    ]
  in
  if n <= gth_threshold then Rung_gth :: iterative else iterative

let m_gth_solves =
  Obs.Metrics.Counter.create ~help:"Exact GTH stationary solves" "ctmc_gth_solves_total"

let m_sweeps method_ =
  Obs.Metrics.Counter.create
    ~labels:[ ("method", method_) ]
    ~help:"Iterative stationary-solver sweeps" "ctmc_sweeps_total"

let m_gs_sweeps = m_sweeps "gauss-seidel"
let m_power_sweeps = m_sweeps "power"

let m_rung_reached rung =
  Obs.Metrics.Counter.create
    ~labels:[ ("rung", rung) ]
    ~help:"Escalation-ladder rung that produced the accepted solution"
    "ctmc_ladder_rung_total"

let m_ladder_failed =
  Obs.Metrics.Counter.create ~help:"Supervised solves where every rung failed"
    "ctmc_ladder_failed_total"

let run_rung ?budget t = function
  | Rung_gth ->
      let pi = Linalg.Gth.stationary (Linalg.Sparse.to_dense t.sparse) in
      Obs.Metrics.Counter.incr m_gth_solves;
      (pi, Supervise.Provenance.Exact)
  | Rung_gauss_seidel { tol } ->
      let pi, stats = Linalg.Sparse.stationary_gauss_seidel_stats ?budget ~tol t.sparse in
      Obs.Metrics.Counter.add m_gs_sweeps stats.Linalg.Sparse.sweeps;
      (pi, Supervise.Provenance.Iterative { residual = stats.Linalg.Sparse.residual })
  | Rung_power { tol } ->
      let pi, stats = Linalg.Sparse.stationary_power_stats ?budget ~tol t.sparse in
      Obs.Metrics.Counter.add m_power_sweeps stats.Linalg.Sparse.sweeps;
      (pi, Supervise.Provenance.Iterative { residual = stats.Linalg.Sparse.residual })

let stationary_supervised ?budget ?ladder t =
  let ladder = match ladder with Some l -> l | None -> default_ladder t.n in
  if ladder = [] then invalid_arg "Ctmc.stationary_supervised: empty ladder";
  let rec climb prior = function
    | [] -> assert false
    | rung :: rest -> (
        try
          let pi, quality =
            Obs.Trace.span ("ctmc:" ^ rung_name rung) (fun () -> run_rung ?budget t rung)
          in
          Obs.Metrics.Counter.incr (m_rung_reached (rung_name rung));
          (pi, Supervise.Provenance.solved ~rung:(rung_name rung) ~prior quality)
        with Supervise.Error.Solver_error err ->
          let prior =
            prior @ [ { Supervise.Provenance.rung = rung_name rung; outcome = Error err } ]
          in
          (* a spent wall clock fails every later rung too — stop climbing *)
          let final =
            match err with Supervise.Error.Budget_exhausted _ -> true | _ -> rest = []
          in
          if final then begin
            Obs.Metrics.Counter.incr m_ladder_failed;
            raise (Supervise.Error.Solver_error err)
          end
          else climb prior rest)
  in
  Obs.Trace.span "ctmc:stationary_supervised" (fun () ->
      Obs.Trace.add_attr "states" (string_of_int t.n);
      climb [] ladder)

let flow t ~pi ~src ~dst = pi.(src) *. Linalg.Sparse.rate t.sparse src dst
let outgoing t i = Linalg.Sparse.outgoing t.sparse i
let iter_outgoing t i f = Linalg.Sparse.iter_outgoing t.sparse i f
let exit_rate t i = Linalg.Sparse.exit_rate t.sparse i

let max_exit_rate t =
  let best = ref 0.0 in
  for i = 0 to t.n - 1 do
    let r = exit_rate t i in
    if r > !best then best := r
  done;
  !best
