type t = { n : int; sparse : Linalg.Sparse.t }

let create n = { n; sparse = Linalg.Sparse.create n }

let add_rate t i j r =
  if r <= 0.0 then invalid_arg "Ctmc.add_rate: rate must be positive";
  Linalg.Sparse.add_rate t.sparse i j r

let n_states t = t.n

type method_ = Auto | Gth | Gauss_seidel | Power

(* Crossover between O(n³) GTH elimination and sparse Gauss–Seidel,
   re-measured on the CSR kernel (see DESIGN.md): GTH stays competitive —
   and is exact — through roughly a thousand states. *)
let gth_threshold = 1200

let stationary ?(solver = Auto) t =
  match solver with
  | Gth -> Linalg.Gth.stationary (Linalg.Sparse.to_dense t.sparse)
  | Gauss_seidel -> Linalg.Sparse.stationary_gauss_seidel t.sparse
  | Power -> Linalg.Sparse.stationary_power t.sparse
  | Auto ->
      if t.n <= gth_threshold then Linalg.Gth.stationary (Linalg.Sparse.to_dense t.sparse)
      else Linalg.Sparse.stationary_gauss_seidel t.sparse

let flow t ~pi ~src ~dst = pi.(src) *. Linalg.Sparse.rate t.sparse src dst
let outgoing t i = Linalg.Sparse.outgoing t.sparse i
let iter_outgoing t i f = Linalg.Sparse.iter_outgoing t.sparse i f
let exit_rate t i = Linalg.Sparse.exit_rate t.sparse i

let max_exit_rate t =
  let best = ref 0.0 in
  for i = 0 to t.n - 1 do
    let r = exit_rate t i in
    if r > !best then best := r
  done;
  !best
