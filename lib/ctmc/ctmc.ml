type t = { n : int; sparse : Linalg.Sparse.t }

let create n = { n; sparse = Linalg.Sparse.create n }

let add_rate t i j r =
  if r <= 0.0 then invalid_arg "Ctmc.add_rate: rate must be positive";
  Linalg.Sparse.add_rate t.sparse i j r

let n_states t = t.n

type method_ = Auto | Gth | Gauss_seidel | Power

(* Crossover between O(n³) GTH elimination and sparse Gauss–Seidel,
   re-measured on the CSR kernel (see DESIGN.md): GTH stays competitive —
   and is exact — through roughly a thousand states. *)
let gth_threshold = 1200

let stationary ?(solver = Auto) t =
  match solver with
  | Gth -> Linalg.Gth.stationary (Linalg.Sparse.to_dense t.sparse)
  | Gauss_seidel -> Linalg.Sparse.stationary_gauss_seidel t.sparse
  | Power -> Linalg.Sparse.stationary_power t.sparse
  | Auto ->
      if t.n <= gth_threshold then Linalg.Gth.stationary (Linalg.Sparse.to_dense t.sparse)
      else Linalg.Sparse.stationary_gauss_seidel t.sparse

(* ---- supervised solving: the escalation ladder ---- *)

type rung =
  | Rung_gth
  | Rung_gauss_seidel of { tol : float }
  | Rung_power of { tol : float }
  | Rung_arnoldi of { tol : float; restart : int }

let rung_name = function
  | Rung_gth -> "gth"
  | Rung_gauss_seidel { tol } -> Printf.sprintf "gauss-seidel(tol=%g)" tol
  | Rung_power { tol } -> Printf.sprintf "power(tol=%g)" tol
  | Rung_arnoldi { tol; restart } -> Printf.sprintf "arnoldi(tol=%g,m=%d)" tol restart

(* GTH is exact but dense O(n³), so it only heads the ladder for chains it
   can actually chew through; the iterative rungs then relax the tolerance
   before switching method entirely.  The Krylov rung closes the ladder:
   restarted Arnoldi converges on stiff chains where the one-dimensional
   power recurrence stalls, at the price of the basis memory. *)
let default_ladder n =
  let iterative =
    [
      Rung_gauss_seidel { tol = 1e-12 };
      Rung_gauss_seidel { tol = 1e-9 };
      Rung_power { tol = 1e-10 };
      Rung_arnoldi { tol = 1e-10; restart = 30 };
    ]
  in
  if n <= gth_threshold then Rung_gth :: iterative else iterative

let m_gth_solves =
  Obs.Metrics.Counter.create ~help:"Exact GTH stationary solves" "ctmc_gth_solves_total"

let m_sweeps method_ =
  Obs.Metrics.Counter.create
    ~labels:[ ("method", method_) ]
    ~help:"Iterative stationary-solver sweeps" "ctmc_sweeps_total"

let m_gs_sweeps = m_sweeps "gauss-seidel"
let m_power_sweeps = m_sweeps "power"
let m_arnoldi_sweeps = m_sweeps "arnoldi"

let m_rung_reached rung =
  Obs.Metrics.Counter.create
    ~labels:[ ("rung", rung) ]
    ~help:"Escalation-ladder rung that produced the accepted solution"
    "ctmc_ladder_rung_total"

let m_ladder_failed =
  Obs.Metrics.Counter.create ~help:"Supervised solves where every rung failed"
    "ctmc_ladder_failed_total"

let run_rung ?budget t = function
  | Rung_gth ->
      let pi = Linalg.Gth.stationary (Linalg.Sparse.to_dense t.sparse) in
      Obs.Metrics.Counter.incr m_gth_solves;
      (pi, Supervise.Provenance.Exact)
  | Rung_gauss_seidel { tol } ->
      let pi, stats = Linalg.Sparse.stationary_gauss_seidel_stats ?budget ~tol t.sparse in
      Obs.Metrics.Counter.add m_gs_sweeps stats.Linalg.Sparse.sweeps;
      (pi, Supervise.Provenance.Iterative { residual = stats.Linalg.Sparse.residual })
  | Rung_power { tol } ->
      let pi, stats = Linalg.Sparse.stationary_power_stats ?budget ~tol t.sparse in
      Obs.Metrics.Counter.add m_power_sweeps stats.Linalg.Sparse.sweeps;
      (pi, Supervise.Provenance.Iterative { residual = stats.Linalg.Sparse.residual })
  | Rung_arnoldi { tol; restart } ->
      let pi, stats = Linalg.Sparse.stationary_arnoldi_stats ?budget ~tol ~restart t.sparse in
      Obs.Metrics.Counter.add m_arnoldi_sweeps stats.Linalg.Sparse.sweeps;
      (pi, Supervise.Provenance.Iterative { residual = stats.Linalg.Sparse.residual })

let stationary_supervised ?budget ?ladder t =
  let ladder = match ladder with Some l -> l | None -> default_ladder t.n in
  if ladder = [] then invalid_arg "Ctmc.stationary_supervised: empty ladder";
  let rec climb prior = function
    | [] -> assert false
    | rung :: rest -> (
        try
          let pi, quality =
            Obs.Trace.span ("ctmc:" ^ rung_name rung) (fun () -> run_rung ?budget t rung)
          in
          Obs.Metrics.Counter.incr (m_rung_reached (rung_name rung));
          (pi, Supervise.Provenance.solved ~rung:(rung_name rung) ~prior quality)
        with Supervise.Error.Solver_error err ->
          let prior =
            prior @ [ { Supervise.Provenance.rung = rung_name rung; outcome = Error err } ]
          in
          (* a spent wall clock fails every later rung too — stop climbing *)
          let final =
            match err with Supervise.Error.Budget_exhausted _ -> true | _ -> rest = []
          in
          if final then begin
            Obs.Metrics.Counter.incr m_ladder_failed;
            raise (Supervise.Error.Solver_error err)
          end
          else climb prior rest)
  in
  Obs.Trace.span "ctmc:stationary_supervised" (fun () ->
      Obs.Trace.add_attr "states" (string_of_int t.n);
      climb [] ladder)

(* ---- exact lumping ----

   A partition is (strongly) lumpable when every state of a class has the
   same aggregate rate into every OTHER class; the quotient chain over the
   classes is then itself a CTMC whose stationary distribution carries the
   class masses of the original.  The quotient rows are read off any class
   representative (here: the lowest-numbered member, with targets in that
   row's first-touch order, so the quotient build is deterministic). *)

let m_lump_states =
  Obs.Metrics.Counter.create ~help:"States entering exact-lumpability quotients"
    "ctmc_lump_states_total"

let m_lump_classes =
  Obs.Metrics.Counter.create ~help:"Quotient classes produced by exact lumping"
    "ctmc_lump_classes_total"

(* aggregate row of state [i] over classes, written into the scratch pair
   (values + touched-class list in first-touch order) *)
let aggregate_row t ~classes ~acc ~touched i =
  let n_touched = ref 0 in
  Linalg.Sparse.iter_outgoing t.sparse i (fun j r ->
      let c = classes.(j) in
      if acc.(c) = 0.0 then begin
        touched.(!n_touched) <- c;
        incr n_touched
      end;
      acc.(c) <- acc.(c) +. r);
  !n_touched

let lump ?(verify = true) t ~classes ~n_classes =
  Obs.Trace.span "ctmc:lump" (fun () ->
      if Array.length classes <> t.n then invalid_arg "Ctmc.lump: classes length mismatch";
      let reps = Array.make n_classes (-1) in
      for i = 0 to t.n - 1 do
        let c = classes.(i) in
        if c < 0 || c >= n_classes then invalid_arg "Ctmc.lump: class id out of range";
        if reps.(c) < 0 then reps.(c) <- i
      done;
      Array.iteri
        (fun c r -> if r < 0 then invalid_arg (Printf.sprintf "Ctmc.lump: empty class %d" c))
        reps;
      let q = create n_classes in
      let acc = Array.make n_classes 0.0 in
      let touched = Array.make n_classes 0 in
      for c = 0 to n_classes - 1 do
        let k = aggregate_row t ~classes ~acc ~touched reps.(c) in
        for s = 0 to k - 1 do
          let c' = touched.(s) in
          if c' <> c && acc.(c') > 0.0 then add_rate q c c' acc.(c');
          acc.(c') <- 0.0
        done
      done;
      if verify then begin
        (* exactness: every member's aggregate row into other classes must
           match its representative's, or the quotient is not a CTMC of the
           original process *)
        let ref_acc = Array.make n_classes 0.0 in
        let ref_touched = Array.make n_classes 0 in
        for i = 0 to t.n - 1 do
          let c = classes.(i) in
          let r = reps.(c) in
          if i <> r then begin
            let kr = aggregate_row t ~classes ~acc:ref_acc ~touched:ref_touched r in
            let ki = aggregate_row t ~classes ~acc ~touched i in
            let ok = ref true in
            for s = 0 to kr - 1 do
              let c' = ref_touched.(s) in
              if c' <> c then begin
                let a = ref_acc.(c') and b = acc.(c') in
                let scale = max (abs_float a) (abs_float b) in
                if abs_float (a -. b) > 1e-9 *. max scale 1e-300 then ok := false
              end
            done;
            (* classes touched by i but not by the representative *)
            for s = 0 to ki - 1 do
              let c' = touched.(s) in
              if c' <> c && ref_acc.(c') = 0.0 && acc.(c') > 0.0 then ok := false
            done;
            for s = 0 to kr - 1 do
              ref_acc.(ref_touched.(s)) <- 0.0
            done;
            for s = 0 to ki - 1 do
              acc.(touched.(s)) <- 0.0
            done;
            if not !ok then
              Supervise.Error.raise_
                (Supervise.Error.Numerical
                   {
                     what = Printf.sprintf "partition is not exactly lumpable at state %d" i;
                     where = "Ctmc.lump";
                   })
          end
        done
      end;
      Obs.Metrics.Counter.add m_lump_states t.n;
      Obs.Metrics.Counter.add m_lump_classes n_classes;
      Obs.Trace.add_attr "states" (string_of_int t.n);
      Obs.Trace.add_attr "classes" (string_of_int n_classes);
      q)

let lift ~classes ~n_classes pi_hat =
  let n = Array.length classes in
  let sizes = Array.make n_classes 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) classes;
  Array.init n (fun i ->
      let c = classes.(i) in
      pi_hat.(c) /. float_of_int sizes.(c))

let flow t ~pi ~src ~dst = pi.(src) *. Linalg.Sparse.rate t.sparse src dst
let outgoing t i = Linalg.Sparse.outgoing t.sparse i
let iter_outgoing t i f = Linalg.Sparse.iter_outgoing t.sparse i f
let exit_rate t i = Linalg.Sparse.exit_rate t.sparse i

let max_exit_rate t =
  let best = ref 0.0 in
  for i = 0 to t.n - 1 do
    let r = exit_rate t i in
    if r > !best then best := r
  done;
  !best
