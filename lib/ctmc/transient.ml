(* Uniformisation: with Lambda >= max exit rate, the CTMC at time t equals
   the uniformised DTMC observed after Poisson(Lambda.t) jumps.  Poisson
   weights are accumulated in log space to survive large Lambda.t. *)

let dtmc_step chain lambda pi =
  let n = Ctmc.n_states chain in
  let next = Array.make n 0.0 in
  for i = 0 to n - 1 do
    if pi.(i) > 0.0 then begin
      next.(i) <- next.(i) +. (pi.(i) *. (1.0 -. (Ctmc.exit_rate chain i /. lambda)));
      Ctmc.iter_outgoing chain i (fun j r -> next.(j) <- next.(j) +. (pi.(i) *. r /. lambda))
    end
  done;
  next

(* fold over k = 0, 1, ...: [f acc k p_k pi_k] with p_k the Poisson weight
   and pi_k the DTMC distribution after k jumps; stops once the cumulated
   weight exceeds 1 - tol *)
let poisson_fold ?(tol = 1e-12) chain ~initial ~horizon ~f ~init =
  if initial < 0 || initial >= Ctmc.n_states chain then
    invalid_arg "Transient: initial state out of range";
  if horizon < 0.0 then invalid_arg "Transient: negative horizon";
  (* flooring lambda at 1/horizon keeps a = lambda*horizon >= 1, which
     avoids catastrophic cancellation in the 1 - cumulated tails when the
     chain has (almost) no transitions *)
  let lambda = 1.000001 *. max (1.0 /. horizon) (Ctmc.max_exit_rate chain) in
  let a = lambda *. horizon in
  let pi = ref (Array.init (Ctmc.n_states chain) (fun i -> if i = initial then 1.0 else 0.0)) in
  let acc = ref init in
  let log_weight = ref (-.a) in
  let cumulated = ref 0.0 in
  let k = ref 0 in
  while !cumulated < 1.0 -. tol do
    let p = exp !log_weight in
    acc := f !acc !k p !pi;
    cumulated := !cumulated +. p;
    incr k;
    log_weight := !log_weight +. log (a /. float_of_int !k);
    if !cumulated < 1.0 -. tol then pi := dtmc_step chain lambda !pi
  done;
  (!acc, lambda)

let distribution ?tol chain ~initial ~horizon =
  let n = Ctmc.n_states chain in
  if horizon = 0.0 then Array.init n (fun i -> if i = initial then 1.0 else 0.0)
  else begin
    let result, _ =
      poisson_fold ?tol chain ~initial ~horizon ~init:(Array.make n 0.0) ~f:(fun acc _ p pi ->
          Array.iteri (fun j v -> acc.(j) <- acc.(j) +. (p *. v)) pi;
          acc)
    in
    result
  end

let occupancy ?tol chain ~initial ~horizon =
  let n = Ctmc.n_states chain in
  if horizon = 0.0 then Array.make n 0.0
  else begin
    (* E[time in j over [0,t]] = (1/Lambda) sum_k P(Pois(a) > k) pi_k(j);
       track the tail as 1 - cumulative weight *)
    let cumulated = ref 0.0 in
    let result, lambda =
      poisson_fold ?tol chain ~initial ~horizon ~init:(Array.make n 0.0) ~f:(fun acc _ p pi ->
          cumulated := !cumulated +. p;
          let tail = 1.0 -. !cumulated in
          if tail > 0.0 then Array.iteri (fun j v -> acc.(j) <- acc.(j) +. (tail *. v)) pi;
          acc)
    in
    Array.map (fun v -> v /. lambda) result
  end
