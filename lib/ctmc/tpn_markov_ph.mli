(** The general method of §5.1 extended to phase-type firing times.

    The marking process alone is not Markov once firing times are not
    exponential; augmenting the state with the current phase of every
    enabled transition restores the Markov property exactly (phase-type
    laws are absorption times of small CTMCs, and the event-graph
    property guarantees firings never disable other enabled transitions,
    so phases are never discarded).  A transition completes when its PH
    law absorbs; transitions becoming enabled draw their starting phase
    from the law's initial distribution.

    This computes the *exact* throughput for Erlang, hyperexponential,
    Coxian, … operation times — in particular exact values *below* the
    exponential bound of Theorem 7 for D.F.R. laws.  The state space is
    the marking space times the product of the enabled phases; keep the
    laws small. *)

type t

val analyse :
  ?cap:int -> ?budget:Supervise.Budget.t -> ph_of:(int -> Ph.t) -> Petrinet.Teg.t -> t
(** [cap] (default 500_000) bounds the number of (marking, phases)
    states.  Raises [Supervise.Error.Solver_error]:
    [State_space_exceeded _] beyond the cap and [Non_ergodic _] if the
    chain does not have a unique recurrent class.  The [budget] tightens
    the cap and its wall deadline is polled during construction. *)

val n_states : t -> int

val completion_rate : t -> int -> float
(** Stationary rate of completions (absorptions) of one transition. *)

val throughput_of : t -> int list -> float
(** Sum of the completion rates of the listed transitions. *)
