(** The "general method" of §5.1: the marking process of a timed event
    graph with exponential firing times is a CTMC.

    States are the reachable markings; from a marking, every enabled
    transition [v] fires at its rate [rates v] (race semantics — valid
    because exponential laws are memoryless) leading to the marking after
    firing.  The stationary firing rate of a transition [v] is
    [rates v] times the stationary probability that v is enabled, and the throughput of the system is the sum
    of the stationary firing rates of its output transitions. *)

type t

type structure
(** The rate-independent part of the analysis: reachable markings, the
    marking graph and its unique recurrent class.  It depends only on the
    net structure, so one [structure] can be reused across any number of
    rate assignments (and shared between domains — it is never mutated
    after construction). *)

val structure :
  ?cap:int -> ?budget:Supervise.Budget.t -> ?pool:Parallel.Pool.t -> Petrinet.Teg.t -> structure
(** Explores the reachable markings (raising [Supervise.Error.Solver_error
    (State_space_exceeded _)] on a token-unbounded net) and isolates the
    recurrent class.  Raises [Supervise.Error.Solver_error (Non_ergodic _)]
    — carrying the recurrent/transient state counts — if the marking chain
    does not have a unique recurrent class.  The [budget] bounds the
    exploration (state ceiling and wall deadline).  A [pool] of size >= 2
    runs the exploration sharded over its domains with byte-identical
    output (see {!Petrinet.Marking.explore_graph}). *)

val structure_of_graph : Petrinet.Teg.t -> Petrinet.Marking.graph -> structure
(** Builds the rate-independent structure from an already-explored marking
    graph (same contract as {!structure}).  This is the entry point for
    enumerators that construct the graph without a generic breadth-first
    search, such as the Young-lattice walk of [Young.Pattern]. *)

val structure_states : structure -> int
(** Number of reachable markings of the structure. *)

val structure_edges : structure -> int
(** Number of edges of the marking graph (one per enabled firing). *)

val analyse_with : structure -> rates:(int -> float) -> t
(** Builds and solves the CTMC of a structure under the given rates.
    [rates v] must be positive for every transition. *)

val analyse_with_supervised :
  ?budget:Supervise.Budget.t ->
  ?ladder:Ctmc.rung list ->
  structure ->
  rates:(int -> float) ->
  t * Supervise.Provenance.t
(** As {!analyse_with}, but solves the chain through
    {!Ctmc.stationary_supervised}'s escalation ladder and reports the
    provenance of the result. *)

(** {1 Symmetry quotients (exact lumping)}

    A net automorphism — a place permutation that maps the reachable
    marking graph onto itself, together with a transition permutation that
    preserves rates — makes the orbit partition of the recurrent class
    exactly lumpable, and the stationary distribution constant on each
    orbit.  The quotient chain is then solved instead of the full one and
    the result lifted back exactly.  [Young.Pattern] supplies the rotation
    automorphism of the u×v Overlap pattern. *)

val state_permutation : structure -> place_perm:int array -> int array
(** The permutation of global state ids induced by the place permutation
    (marking [m] maps to [m ∘ place_perm⁻¹], i.e. place [p]'s tokens move
    to place [place_perm.(p)]).  Raises [Supervise.Error.Solver_error
    (Numerical _)] if some permuted marking is not itself reachable — the
    given permutation is then not an automorphism of the marking graph. *)

val orbit_partition : structure -> state_perm:int array -> int array * int
(** Orbits of the recurrent class under the state permutation, as
    [(classes, n_classes)] with [classes] indexed by recurrent-local state
    id.  Classes are numbered in order of their lowest member.  Raises
    [Numerical] if an orbit leaves the recurrent class (it cannot, for a
    genuine automorphism). *)

type lump_stats = { lump_states : int; lump_classes : int }
(** Size of the lumped solve: recurrent states in, quotient classes out. *)

val analyse_with_lumped :
  ?budget:Supervise.Budget.t ->
  ?ladder:Ctmc.rung list ->
  structure ->
  rates:(int -> float) ->
  place_perm:int array ->
  trans_perm:int array ->
  t * Supervise.Provenance.t * lump_stats
(** As {!analyse_with_supervised}, but solves the orbit quotient of the
    automorphism [(place_perm, trans_perm)] and lifts the stationary
    vector back (exactly — see the section preamble).  The quotient
    generator is read off one representative CSR row per orbit, so the
    full recurrent chain is never materialised.  Raises [Numerical] if the
    rates are not invariant under [trans_perm] or [place_perm] is not an
    automorphism of the marking graph.  The result's chain is the quotient:
    {!expected_firings} (transient analysis) is unavailable on it, while
    all stationary queries — {!enabled_probability}, {!firing_rate},
    {!throughput_of}, {!stationary_distribution} — are over the full
    recurrent class as usual. *)

val analyse : ?cap:int -> rates:(int -> float) -> Petrinet.Teg.t -> t
(** [analyse ?cap ~rates teg] is
    [analyse_with (structure ?cap teg) ~rates]: explores the reachable
    markings (raising [Supervise.Error.Solver_error
    (State_space_exceeded _)] on a token-unbounded net), restricts the
    chain to its unique recurrent class, and solves for the stationary
    distribution. *)

val analyse_supervised :
  ?cap:int ->
  ?budget:Supervise.Budget.t ->
  ?ladder:Ctmc.rung list ->
  rates:(int -> float) ->
  Petrinet.Teg.t ->
  t * Supervise.Provenance.t
(** Supervised counterpart of {!analyse}: budgeted exploration followed by
    the escalation ladder. *)

val n_markings : t -> int
(** Number of reachable markings (including transient ones). *)

val n_recurrent : t -> int

val firing_rate : t -> int -> float
(** Stationary firing rate of one transition. *)

val throughput_of : t -> int list -> float
(** Sum of the firing rates of the listed transitions. *)

val enabled_probability : t -> int -> float
(** Stationary probability that the transition is enabled. *)

val stationary_throughput : t -> int list -> float
(** Alias of {!throughput_of}. *)

val stationary_distribution : t -> float array
(** Copy of the stationary distribution over the recurrent class, indexed
    like the recurrent states (increasing global state id).  For a lumped
    analysis this is the exactly lifted vector. *)

val expected_firings : ?tol:float -> t -> horizon:float -> int list -> float
(** Expected number of firings of the listed transitions during
    [0, horizon], starting from the initial marking, by uniformisation
    (exact transient counterpart of {!throughput_of}: their ratio tends to
    the stationary throughput as the horizon grows).  Raises
    [Invalid_argument] if the initial marking is not recurrent. *)
