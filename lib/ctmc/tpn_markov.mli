(** The "general method" of §5.1: the marking process of a timed event
    graph with exponential firing times is a CTMC.

    States are the reachable markings; from a marking, every enabled
    transition [v] fires at its rate [rates v] (race semantics — valid
    because exponential laws are memoryless) leading to the marking after
    firing.  The stationary firing rate of a transition [v] is
    [rates v] times the stationary probability that v is enabled, and the throughput of the system is the sum
    of the stationary firing rates of its output transitions. *)

type t

type structure
(** The rate-independent part of the analysis: reachable markings, the
    marking graph and its unique recurrent class.  It depends only on the
    net structure, so one [structure] can be reused across any number of
    rate assignments (and shared between domains — it is never mutated
    after construction). *)

val structure : ?cap:int -> ?budget:Supervise.Budget.t -> Petrinet.Teg.t -> structure
(** Explores the reachable markings (raising [Supervise.Error.Solver_error
    (State_space_exceeded _)] on a token-unbounded net) and isolates the
    recurrent class.  Raises [Supervise.Error.Solver_error (Non_ergodic _)]
    — carrying the recurrent/transient state counts — if the marking chain
    does not have a unique recurrent class.  The [budget] bounds the
    exploration (state ceiling and wall deadline). *)

val structure_of_graph : Petrinet.Teg.t -> Petrinet.Marking.graph -> structure
(** Builds the rate-independent structure from an already-explored marking
    graph (same contract as {!structure}).  This is the entry point for
    enumerators that construct the graph without a generic breadth-first
    search, such as the Young-lattice walk of [Young.Pattern]. *)

val structure_states : structure -> int
(** Number of reachable markings of the structure. *)

val structure_edges : structure -> int
(** Number of edges of the marking graph (one per enabled firing). *)

val analyse_with : structure -> rates:(int -> float) -> t
(** Builds and solves the CTMC of a structure under the given rates.
    [rates v] must be positive for every transition. *)

val analyse_with_supervised :
  ?budget:Supervise.Budget.t ->
  ?ladder:Ctmc.rung list ->
  structure ->
  rates:(int -> float) ->
  t * Supervise.Provenance.t
(** As {!analyse_with}, but solves the chain through
    {!Ctmc.stationary_supervised}'s escalation ladder and reports the
    provenance of the result. *)

val analyse : ?cap:int -> rates:(int -> float) -> Petrinet.Teg.t -> t
(** [analyse ?cap ~rates teg] is
    [analyse_with (structure ?cap teg) ~rates]: explores the reachable
    markings (raising [Supervise.Error.Solver_error
    (State_space_exceeded _)] on a token-unbounded net), restricts the
    chain to its unique recurrent class, and solves for the stationary
    distribution. *)

val analyse_supervised :
  ?cap:int ->
  ?budget:Supervise.Budget.t ->
  ?ladder:Ctmc.rung list ->
  rates:(int -> float) ->
  Petrinet.Teg.t ->
  t * Supervise.Provenance.t
(** Supervised counterpart of {!analyse}: budgeted exploration followed by
    the escalation ladder. *)

val n_markings : t -> int
(** Number of reachable markings (including transient ones). *)

val n_recurrent : t -> int

val firing_rate : t -> int -> float
(** Stationary firing rate of one transition. *)

val throughput_of : t -> int list -> float
(** Sum of the firing rates of the listed transitions. *)

val enabled_probability : t -> int -> float
(** Stationary probability that the transition is enabled. *)

val stationary_throughput : t -> int list -> float
(** Alias of {!throughput_of}. *)

val expected_firings : ?tol:float -> t -> horizon:float -> int list -> float
(** Expected number of firings of the listed transitions during
    [0, horizon], starting from the initial marking, by uniformisation
    (exact transient counterpart of {!throughput_of}: their ratio tends to
    the stationary throughput as the horizon grows).  Raises
    [Invalid_argument] if the initial marking is not recurrent. *)
