(* Sliding-window rate meter: a ring of one-second buckets.

   The load generator reports "live" throughput as events per second
   over the last W seconds; a plain total/elapsed average would smear a
   worker crash or a ramp stage into invisibility.  Time is always
   passed in by the caller, so tests drive the window with a synthetic
   clock and the production path uses the monotonic clock's seconds. *)

type t = {
  seconds : int;  (* window width = ring size *)
  counts : int array;  (* one bucket per whole second *)
  stamps : float array;  (* the second each bucket last belonged to *)
  mutable total : int;  (* events ever added (not windowed) *)
  mutex : Mutex.t;
}

let create ?(seconds = 5) () =
  if seconds < 1 then invalid_arg "Window.create: seconds must be at least 1";
  {
    seconds;
    counts = Array.make seconds 0;
    stamps = Array.make seconds neg_infinity;
    total = 0;
    mutex = Mutex.create ();
  }

let slot t now = int_of_float (Float.of_int t.seconds +. Float.rem now (float_of_int t.seconds))
                 mod t.seconds

(* a bucket is live when it was last written within the window *)
let bucket_live t ~now i = now -. t.stamps.(i) < float_of_int t.seconds

let add ?(n = 1) t ~now =
  let now = Float.floor now in
  Mutex.lock t.mutex;
  let i = slot t now in
  if t.stamps.(i) <> now then begin
    t.counts.(i) <- 0;
    t.stamps.(i) <- now
  end;
  t.counts.(i) <- t.counts.(i) + n;
  t.total <- t.total + n;
  Mutex.unlock t.mutex

let rate t ~now =
  let floor_now = Float.floor now in
  Mutex.lock t.mutex;
  let events = ref 0 and covered = ref 0 in
  for i = 0 to t.seconds - 1 do
    (* the bucket for the current (partial) second is excluded: counting
       a half-filled second would bias the rate downward *)
    if t.stamps.(i) < floor_now && bucket_live t ~now:floor_now i then begin
      events := !events + t.counts.(i);
      incr covered
    end
  done;
  Mutex.unlock t.mutex;
  if !covered = 0 then 0.0 else float_of_int !events /. float_of_int !covered

let total t =
  Mutex.lock t.mutex;
  let n = t.total in
  Mutex.unlock t.mutex;
  n
