let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

(* Split a sample line into (name, label block without braces or None,
   rest after the labels — value and optional timestamp, leading space
   included). The label scan is quote-aware so a '}' inside a quoted
   label value does not terminate the block. *)
let split_line line =
  let len = String.length line in
  let rec name_end i = if i < len && is_name_char line.[i] then name_end (i + 1) else i in
  let ne = name_end 0 in
  if ne = 0 then None
  else
    let name = String.sub line 0 ne in
    if ne < len && line.[ne] = '{' then begin
      let rec close i in_q esc =
        if i >= len then None
        else if esc then close (i + 1) in_q false
        else
          match line.[i] with
          | '\\' when in_q -> close (i + 1) in_q true
          | '"' -> close (i + 1) (not in_q) false
          | '}' when not in_q -> Some i
          | _ -> close (i + 1) in_q false
      in
      match close (ne + 1) false false with
      | None -> None
      | Some ce ->
          Some
            ( name,
              Some (String.sub line (ne + 1) (ce - ne - 1)),
              String.sub line (ce + 1) (len - ce - 1) )
    end
    else Some (name, None, String.sub line ne (len - ne))

let unescape_label v =
  let b = Buffer.create (String.length v) in
  let i = ref 0 in
  let n = String.length v in
  while !i < n do
    (if v.[!i] = '\\' && !i + 1 < n then begin
       (match v.[!i + 1] with
       | 'n' -> Buffer.add_char b '\n'
       | '\\' -> Buffer.add_char b '\\'
       | '"' -> Buffer.add_char b '"'
       | c ->
           Buffer.add_char b '\\';
           Buffer.add_char b c);
       i := !i + 2
     end
     else begin
       Buffer.add_char b v.[!i];
       incr i
     end)
  done;
  Buffer.contents b

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

(* Parse the inside of a label block: k="v",k2="v2". *)
let parse_labels raw =
  let len = String.length raw in
  let rec skip_ws i = if i < len && raw.[i] = ' ' then skip_ws (i + 1) else i in
  let rec pairs acc i =
    let i = skip_ws i in
    if i >= len then Some (List.rev acc)
    else
      let rec key_end j = if j < len && is_name_char raw.[j] then key_end (j + 1) else j in
      let ke = key_end i in
      if ke = i || ke >= len || raw.[ke] <> '=' || ke + 1 >= len || raw.[ke + 1] <> '"'
      then None
      else
        let key = String.sub raw i (ke - i) in
        let rec value_end j esc =
          if j >= len then None
          else if esc then value_end (j + 1) false
          else
            match raw.[j] with
            | '\\' -> value_end (j + 1) true
            | '"' -> Some j
            | _ -> value_end (j + 1) false
        in
        match value_end (ke + 2) false with
        | None -> None
        | Some ve ->
            let v = unescape_label (String.sub raw (ke + 2) (ve - ke - 2)) in
            let i = skip_ws (ve + 1) in
            if i < len && raw.[i] = ',' then pairs ((key, v) :: acc) (i + 1)
            else if i >= len then Some (List.rev ((key, v) :: acc))
            else None
  in
  pairs [] 0

let parse_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then None
  else
    match split_line line with
    | None -> None
    | Some (name, labels_raw, rest) -> (
        let labels =
          match labels_raw with None -> Some [] | Some raw -> parse_labels raw
        in
        match labels with
        | None -> None
        | Some labels -> (
            let rest = String.trim rest in
            let value_tok =
              match String.index_opt rest ' ' with
              | Some i -> String.sub rest 0 i
              | None -> rest
            in
            match float_of_string_opt value_tok with
            | Some v -> Some (name, labels, v)
            | None -> None))

let relabel_line ~key ~value line =
  if line = "" || line.[0] = '#' then line
  else
    match split_line line with
    | None -> line
    | Some (name, labels_raw, rest) -> (
        let ins = Printf.sprintf "%s=\"%s\"" key (escape_label value) in
        match labels_raw with
        | None | Some "" -> Printf.sprintf "%s{%s}%s" name ins rest
        | Some raw -> Printf.sprintf "%s{%s,%s}%s" name ins raw rest)

let split_lines text = String.split_on_char '\n' text

let relabel ~key ~value text =
  split_lines text
  |> List.map (relabel_line ~key ~value)
  |> String.concat "\n"

(* "# HELP name …" / "# TYPE name …" → (kind, name). *)
let header_of line =
  let parts =
    String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
  in
  match parts with
  | "#" :: (("HELP" | "TYPE") as kind) :: name :: _ -> Some (kind, name)
  | _ -> None

let merge ?(head = "") ~label sections =
  let buf = Buffer.create 4096 in
  let seen = Hashtbl.create 32 in
  let emit_line line =
    match header_of line with
    | Some key ->
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          Buffer.add_string buf line;
          Buffer.add_char buf '\n'
        end
    | None ->
        if line <> "" then begin
          Buffer.add_string buf line;
          Buffer.add_char buf '\n'
        end
  in
  List.iter emit_line (split_lines head);
  List.iter
    (fun (value, text) ->
      List.iter
        (fun line -> emit_line (relabel_line ~key:label ~value line))
        (split_lines text))
    sections;
  Buffer.contents buf
