type event = {
  ev_name : string;
  ev_ph : char;
  ev_ts_ns : int;
  ev_tid : int;
  ev_args : (string * string) list;
}

let dummy_event = { ev_name = ""; ev_ph = 'i'; ev_ts_ns = 0; ev_tid = 0; ev_args = [] }

(* One buffer per (domain, systhread). The owner appends without locking:
   it writes the slot, then publishes with an atomic store of the length
   (release); readers load the length first (acquire), so every slot below
   it is safely initialised. Growing the array and exporting both take the
   per-buffer mutex so the array swap cannot tear a concurrent copy. *)
type buffer = {
  tid : int; (* serial used as the Chrome tid *)
  mutable events : event array;
  len : int Atomic.t;
  grow : Mutex.t;
  mutable open_attrs : (string * string) list ref list;
      (* attribute cells of the currently open spans, innermost first;
         owner-thread only *)
}

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

let epoch_ns = Clock.now_ns ()

let buffers : buffer list ref = ref []
let buffer_of : (int * int, buffer) Hashtbl.t = Hashtbl.create 16
let buffers_mutex = Mutex.create ()
let next_tid = Atomic.make 1

(* Thread.id distinguishes the service's per-connection systhreads, which
   all share domain 0. On a fresh worker domain the threads runtime may not
   be initialised yet; fall back to 0 (the domain's only thread). *)
let thread_id () = try Thread.id (Thread.self ()) with _ -> 0

type cached = No_buffer | Cached of int * buffer

let dls_key : cached ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref No_buffer)

let make_buffer key =
  Mutex.lock buffers_mutex;
  let buf =
    match Hashtbl.find_opt buffer_of key with
    | Some b -> b
    | None ->
        let b =
          {
            tid = Atomic.fetch_and_add next_tid 1;
            events = Array.make 256 dummy_event;
            len = Atomic.make 0;
            grow = Mutex.create ();
            open_attrs = [];
          }
        in
        Hashtbl.add buffer_of key b;
        buffers := b :: !buffers;
        b
  in
  Mutex.unlock buffers_mutex;
  buf

let my_buffer () =
  let cache = Domain.DLS.get dls_key in
  let thr = thread_id () in
  match !cache with
  | Cached (t, b) when t = thr -> b
  | _ ->
      let b = make_buffer ((Domain.self () :> int), thr) in
      cache := Cached (thr, b);
      b

let record buf ev =
  let n = Atomic.get buf.len in
  let cap = Array.length buf.events in
  if n = cap then begin
    Mutex.lock buf.grow;
    let bigger = Array.make (2 * cap) dummy_event in
    Array.blit buf.events 0 bigger 0 cap;
    buf.events <- bigger;
    Mutex.unlock buf.grow
  end;
  buf.events.(n) <- ev;
  Atomic.set buf.len (n + 1)

let now_rel () = Clock.now_ns () - epoch_ns

(* Slow path kept out of [span] so the disabled branch stays a tail call
   to [f] after one atomic load — no closure, no allocation. *)
let span_on name f =
  let buf = my_buffer () in
  let ts0 = now_rel () in
  record buf
    { ev_name = name; ev_ph = 'B'; ev_ts_ns = ts0; ev_tid = buf.tid; ev_args = [] };
  let attrs = ref [] in
  buf.open_attrs <- attrs :: buf.open_attrs;
  Fun.protect
    ~finally:(fun () ->
      (match buf.open_attrs with [] -> () | _ :: tl -> buf.open_attrs <- tl);
      let ts1 = now_rel () in
      record buf
        {
          ev_name = name;
          ev_ph = 'E';
          ev_ts_ns = ts1;
          ev_tid = buf.tid;
          ev_args = List.rev !attrs;
        };
      if Recorder.enabled () then Recorder.note_span name ~dur_ns:(ts1 - ts0))
    f

(* When the flight recorder is on but tracing is off, spans still leave a
   completion note in the recorder ring (name + duration); when both are
   off this is exactly [f ()] after two atomic loads. *)
let span_noted name f =
  let t0 = Clock.now_ns () in
  Fun.protect
    ~finally:(fun () -> Recorder.note_span name ~dur_ns:(Clock.now_ns () - t0))
    f

let span name f =
  if Atomic.get on then span_on name f
  else if Recorder.enabled () then span_noted name f
  else f ()

let add_attr k v =
  if Atomic.get on then
    let buf = my_buffer () in
    match buf.open_attrs with [] -> () | attrs :: _ -> attrs := (k, v) :: !attrs

let instant ?(args = []) name =
  if Atomic.get on then
    let buf = my_buffer () in
    record buf
      { ev_name = name; ev_ph = 'i'; ev_ts_ns = now_rel (); ev_tid = buf.tid; ev_args = args }

let snapshot_buffers () =
  Mutex.lock buffers_mutex;
  let bufs = List.rev !buffers in
  Mutex.unlock buffers_mutex;
  bufs

let events () =
  snapshot_buffers ()
  |> List.concat_map (fun b ->
         Mutex.lock b.grow;
         let n = Atomic.get b.len in
         let out = List.init n (fun i -> b.events.(i)) in
         Mutex.unlock b.grow;
         out)

let clear () =
  List.iter (fun b -> Atomic.set b.len 0) (snapshot_buffers ())

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                           *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_chrome_json ?(pid = 1) ?process_name () =
  let evs = events () in
  let buf = Buffer.create 4096 in
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_char buf ',' in
  Buffer.add_string buf "{\"traceEvents\":[";
  (match process_name with
  | None -> ()
  | Some name ->
      sep ();
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
           pid (json_escape name)));
  List.iter
    (fun ev ->
      sep ();
      (* ts is in microseconds; keep sub-µs precision as decimals. The
         monotonic clock is system-wide, so exporting absolute timestamps
         ([epoch_ns] + relative) lets traces from concurrently-running
         processes merge onto one timeline. *)
      let abs_ns = epoch_ns + ev.ev_ts_ns in
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"obs\",\"ph\":\"%c\",\"ts\":%d.%03d,\"pid\":%d,\"tid\":%d"
           (json_escape ev.ev_name) ev.ev_ph (abs_ns / 1000)
           (abs_ns mod 1000) pid ev.ev_tid);
      (match ev.ev_args with
      | [] -> ()
      | args ->
          Buffer.add_string buf ",\"args\":{";
          List.iteri
            (fun j (k, v) ->
              if j > 0 then Buffer.add_char buf ',';
              Buffer.add_string buf
                (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
            args;
          Buffer.add_char buf '}');
      (match ev.ev_ph with
      | 'i' -> Buffer.add_string buf ",\"s\":\"t\"}"
      | _ -> Buffer.add_char buf '}'))
    evs;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

let write_chrome ?pid ?process_name path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_chrome_json ?pid ?process_name ()))

(* ------------------------------------------------------------------ *)
(* Cross-process merge                                                 *)

let chrome_prefix = "{\"traceEvents\":["
let chrome_suffix_key = "],\"displayTimeUnit\""

(* Extract the event-array body of a document produced by
   [to_chrome_json]; [None] for anything that does not match. *)
let chrome_body doc =
  let doc = String.trim doc in
  let pl = String.length chrome_prefix in
  let kl = String.length chrome_suffix_key in
  if String.length doc >= pl + kl && String.sub doc 0 pl = chrome_prefix then begin
    let rec find i =
      if i < pl then None
      else if String.sub doc i kl = chrome_suffix_key then Some i
      else find (i - 1)
    in
    match find (String.length doc - kl) with
    | Some i -> Some (String.sub doc pl (i - pl))
    | None -> None
  end
  else None

let merge_chrome docs =
  let parts =
    List.filter_map chrome_body docs
    |> List.filter (fun s -> String.trim s <> "")
  in
  chrome_prefix ^ String.concat "," parts ^ "],\"displayTimeUnit\":\"ms\"}"

(* ------------------------------------------------------------------ *)
(* Trace ids                                                           *)

let id_counter = Atomic.make 0

let splitmix64 seed =
  let z = Int64.add seed 0x9E3779B97F4A7C15L in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let fresh_id () =
  let seed =
    Int64.logxor
      (Int64.of_int (Clock.now_ns ()))
      (Int64.mul (Int64.of_int (Unix.getpid ())) 0x100000001B3L)
  in
  let z =
    splitmix64 (Int64.add seed (Int64.of_int (Atomic.fetch_and_add id_counter 1)))
  in
  Printf.sprintf "%016Lx" z
