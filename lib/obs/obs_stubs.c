/* Monotonic clock for the observability layer.

   Returns nanoseconds since an unspecified epoch as an immediate OCaml
   integer (Val_long): 62 usable bits hold ~146 years of nanoseconds, so
   no boxing and no allocation on the timing fast path. */

#include <caml/mlvalues.h>
#include <time.h>
#include <sys/time.h>

CAMLprim value obs_monotonic_ns(value unit)
{
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  {
    struct timespec ts;
    if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
      return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
  }
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return Val_long((intnat)tv.tv_sec * 1000000000 + (intnat)tv.tv_usec * 1000);
  }
}
