type node = {
  p_name : string;
  p_total_ns : int;
  p_count : int;
  p_children : node list;
}

(* Mutable accumulation node while replaying one buffer's B/E stream. *)
type acc = {
  a_name : string;
  mutable a_total : int;
  mutable a_count : int;
  a_children : (string, acc) Hashtbl.t;
  mutable a_order : string list; (* reverse first-seen order *)
}

let make_acc name =
  { a_name = name; a_total = 0; a_count = 0; a_children = Hashtbl.create 4; a_order = [] }

let child_of acc name =
  match Hashtbl.find_opt acc.a_children name with
  | Some c -> c
  | None ->
      let c = make_acc name in
      Hashtbl.add acc.a_children name c;
      acc.a_order <- name :: acc.a_order;
      c

let rec freeze acc =
  let children =
    List.rev_map (fun name -> freeze (Hashtbl.find acc.a_children name)) acc.a_order
  in
  let children =
    if children = [] then []
    else begin
      let covered = List.fold_left (fun s c -> s + c.p_total_ns) 0 children in
      let self = acc.a_total - covered in
      if self > 0 then
        children
        @ [ { p_name = "(self)"; p_total_ns = self; p_count = acc.a_count; p_children = [] } ]
      else children
    end
  in
  { p_name = acc.a_name; p_total_ns = acc.a_total; p_count = acc.a_count; p_children = children }

let trees evs =
  (* group by tid, preserving per-buffer event order *)
  let by_tid : (int, Trace.event list ref) Hashtbl.t = Hashtbl.create 8 in
  let tid_order = ref [] in
  List.iter
    (fun (ev : Trace.event) ->
      match Hashtbl.find_opt by_tid ev.ev_tid with
      | Some l -> l := ev :: !l
      | None ->
          Hashtbl.add by_tid ev.ev_tid (ref [ ev ]);
          tid_order := ev.ev_tid :: !tid_order)
    evs;
  List.rev !tid_order
  |> List.map (fun tid ->
         let evs = List.rev !(Hashtbl.find by_tid tid) in
         let root = make_acc "" in
         (* stack of (acc, begin_ts) *)
         let stack = ref [] in
         let scope () = match !stack with [] -> root | (a, _) :: _ -> a in
         let last_ts = ref 0 in
         List.iter
           (fun (ev : Trace.event) ->
             last_ts := ev.ev_ts_ns;
             match ev.ev_ph with
             | 'B' -> stack := (child_of (scope ()) ev.ev_name, ev.ev_ts_ns) :: !stack
             | 'E' -> (
                 match !stack with
                 | (a, t0) :: rest when a.a_name = ev.ev_name ->
                     a.a_total <- a.a_total + (ev.ev_ts_ns - t0);
                     a.a_count <- a.a_count + 1;
                     stack := rest
                 | _ -> () (* unmatched end: ignore *))
             | _ -> ())
           evs;
         (* close anything still open at the last timestamp seen *)
         List.iter
           (fun (a, t0) ->
             a.a_total <- a.a_total + (!last_ts - t0);
             a.a_count <- a.a_count + 1)
           !stack;
         let frozen = freeze root in
         (tid, frozen.p_children))

let rec leaf_sum_ns n =
  match n.p_children with
  | [] -> n.p_total_ns
  | cs -> List.fold_left (fun s c -> s + leaf_sum_ns c) 0 cs

let print ?wall_ns ppf evs =
  let forests = trees evs in
  let root_sum roots = List.fold_left (fun s n -> s + n.p_total_ns) 0 roots in
  let forests =
    List.stable_sort (fun (_, a) (_, b) -> compare (root_sum b) (root_sum a)) forests
  in
  let pct denom ns =
    if denom <= 0 then 0. else 100. *. float_of_int ns /. float_of_int denom
  in
  let rec emit denom depth n =
    Format.fprintf ppf "  %s%-*s %10.3f ms %5.1f%% %8dx@."
      (String.make (2 * depth) ' ')
      (max 1 (36 - (2 * depth)))
      n.p_name
      (float_of_int n.p_total_ns /. 1e6)
      (pct denom n.p_total_ns) n.p_count;
    List.iter (emit denom (depth + 1)) n.p_children
  in
  (match wall_ns with
  | Some w -> Format.fprintf ppf "  %-36s %10.3f ms %5.1f%%@." "total" (float_of_int w /. 1e6) 100.
  | None -> ());
  List.iteri
    (fun i (tid, roots) ->
      if roots <> [] then begin
        if i > 0 || wall_ns <> None then
          Format.fprintf ppf "  -- buffer tid=%d --@." tid;
        let denom = match wall_ns with Some w -> w | None -> root_sum roots in
        List.iter (emit denom 0) roots
      end)
    forests
