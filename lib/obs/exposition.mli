(** Manipulate Prometheus text expositions (version 0.0.4) as text.

    The router federates worker registries by scraping each worker's
    exposition over the wire and merging the texts, so this module works
    on the rendered format directly: inject a distinguishing label into
    every sample line, deduplicate [# HELP]/[# TYPE] headers across
    sections, and parse individual sample lines back out (for the [top]
    live view). *)

val parse_line : string -> (string * (string * string) list * float) option
(** [parse_line line] decodes one sample line into
    [(metric_name, labels, value)]. Comments, blank lines and malformed
    lines yield [None]. Label values are unescaped; an optional trailing
    timestamp is ignored. *)

val relabel : key:string -> value:string -> string -> string
(** [relabel ~key ~value text] injects [key="value"] as the first label of
    every sample line of [text]; comment and blank lines pass through
    unchanged. *)

val merge : ?head:string -> label:string -> (string * string) list -> string
(** [merge ~head ~label sections] builds one exposition: [head] (a local
    exposition, typically the router's own registries) is emitted
    verbatim, then each [(value, text)] section is relabeled with
    [label="value"] and appended. [# HELP]/[# TYPE] headers are emitted at
    most once per metric name across the whole output. *)
