external now_ns : unit -> int = "obs_monotonic_ns" [@@noalloc]

let ns_to_s ns = float_of_int ns /. 1e9
