type state = {
  ring : Log.event option array;
  mutable head : int;  (* next write slot *)
  mutable total : int;  (* events ever recorded *)
  mutable dump_path : string option;
  mutable last_dump : float;
  mutable err_times : float list;  (* newest first, pruned to the window *)
  burst_threshold : int;
  burst_window : float;
  min_dump_interval : float;
  m : Mutex.t;
}

let state : state option Atomic.t = Atomic.make None
let at_exit_armed = Atomic.make false

let enabled () = Atomic.get state <> None

let record s (ev : Log.event) =
  Mutex.lock s.m;
  s.ring.(s.head) <- Some ev;
  s.head <- (s.head + 1) mod Array.length s.ring;
  s.total <- s.total + 1;
  Mutex.unlock s.m

let enable ?(capacity = 512) ?(burst_threshold = 8) ?(burst_window = 10.0)
    ?(min_dump_interval = 30.0) () =
  if not (enabled ()) then begin
    let capacity = max 1 capacity in
    let s =
      { ring = Array.make capacity None; head = 0; total = 0;
        dump_path = None; last_dump = neg_infinity; err_times = [];
        burst_threshold; burst_window; min_dump_interval;
        m = Mutex.create () }
    in
    Atomic.set state (Some s);
    Log.set_tap (Some (fun ev -> record s ev))
  end

let disable () =
  Log.set_tap None;
  Atomic.set state None

let note ?now ?trace ?(attrs = []) ~level ~comp event_name =
  match Atomic.get state with
  | None -> ()
  | Some s ->
      let now = match now with Some n -> n | None -> Unix.gettimeofday () in
      record s
        { Log.lg_ts = now; lg_level = level; lg_comp = comp;
          lg_event = event_name; lg_trace = trace; lg_attrs = attrs;
          lg_suppressed = 0 }

let note_span ?now name ~dur_ns =
  if enabled () then
    note ?now ~level:Log.Debug ~comp:"span"
      ~attrs:[ ("dur_ns", string_of_int dur_ns) ]
      name

let entries () =
  match Atomic.get state with
  | None -> []
  | Some s ->
      Mutex.lock s.m;
      let cap = Array.length s.ring in
      let n = min s.total cap in
      let start = (s.head - n + (cap * 2)) mod cap in
      let out = ref [] in
      for i = n - 1 downto 0 do
        match s.ring.((start + i) mod cap) with
        | Some ev -> out := ev :: !out
        | None -> ()
      done;
      Mutex.unlock s.m;
      !out

let clear () =
  match Atomic.get state with
  | None -> ()
  | Some s ->
      Mutex.lock s.m;
      Array.fill s.ring 0 (Array.length s.ring) None;
      s.head <- 0;
      s.total <- 0;
      s.err_times <- [];
      s.last_dump <- neg_infinity;
      Mutex.unlock s.m

(* Dumping must never raise: it runs from at_exit and from the path
   immediately before an injected [Unix._exit].  Dumps are serialized by
   [dump_m] — concurrent request threads can trip a dump at the same
   instant, and an unserialized pair can interleave truncate/rename so
   the survivor publishes an empty file — and the tmp name carries the
   pid so a dying worker and its freshly-spawned replacement sharing one
   dump path never truncate each other's scratch file. *)
let dump_m = Mutex.create ()

let dump ~reason ~path =
  match Atomic.get state with
  | None -> ()
  | Some _ ->
      Mutex.lock dump_m;
      (try
         let evs = entries () in
         let metrics_text = try Metrics.to_prometheus Metrics.default with _ -> "" in
         let b = Buffer.create 4096 in
         Buffer.add_string b
           (Printf.sprintf
              "{\"flight_recorder\":1,\"pid\":%d,\"reason\":\"%s\",\"dumped_at\":%.6f,\"events\":["
              (Unix.getpid ()) (Log.json_escape reason) (Unix.gettimeofday ()));
         List.iteri
           (fun i ev ->
             if i > 0 then Buffer.add_char b ',';
             Buffer.add_string b (Log.to_json ev))
           evs;
         Buffer.add_string b
           (Printf.sprintf "],\"metrics\":\"%s\"}" (Log.json_escape metrics_text));
         let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
         let oc = open_out tmp in
         output_string oc (Buffer.contents b);
         output_char oc '\n';
         close_out oc;
         Sys.rename tmp path
       with _ -> ());
      Mutex.unlock dump_m

let crash_dump ~reason =
  match Atomic.get state with
  | None -> ()
  | Some s -> (
      match s.dump_path with
      | None -> ()
      | Some path ->
          s.last_dump <- Unix.gettimeofday ();
          dump ~reason ~path)

let install ~path =
  enable ();
  (match Atomic.get state with
  | None -> ()
  | Some s -> s.dump_path <- Some path);
  if not (Atomic.exchange at_exit_armed true) then
    at_exit (fun () -> crash_dump ~reason:"exit")

let error_tick ?now ~kind () =
  match Atomic.get state with
  | None -> ()
  | Some s ->
      let now = match now with Some n -> n | None -> Unix.gettimeofday () in
      let burst =
        Mutex.lock s.m;
        s.err_times <-
          now
          :: List.filter (fun t -> now -. t <= s.burst_window) s.err_times;
        let n = List.length s.err_times in
        let fire =
          n >= s.burst_threshold
          && now -. s.last_dump >= s.min_dump_interval
          && s.dump_path <> None
        in
        if fire then begin
          s.last_dump <- now;
          s.err_times <- []
        end;
        Mutex.unlock s.m;
        fire
      in
      if burst then
        match s.dump_path with
        | Some path -> dump ~reason:("error-burst:" ^ kind) ~path
        | None -> ()
