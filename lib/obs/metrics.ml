type labels = (string * string) list

(* Histogram: fixed non-cumulative bucket counters plus retained samples.
   Up to [retain] observations every sample is kept, so quantiles are
   exact (nearest rank) instead of bucket-interpolated; past the cap a
   uniform reservoir (Algorithm R, deterministic per-metric PRNG) bounds
   memory while keeping the quantiles an unbiased estimate over the whole
   stream. A mutex guards the whole record; histograms are observed once
   per request/solve, never per state, so contention is negligible. *)
type hist = {
  bounds : float array; (* strictly increasing, finite *)
  counts : int array; (* length = Array.length bounds + 1; last = +Inf *)
  mutable hsum : float;
  mutable samples : floatarray;
  mutable n : int; (* retained samples *)
  mutable seen : int; (* total observations ever *)
  retain : int; (* reservoir capacity *)
  mutable rng : int64; (* splitmix64 state, seeded from the metric name *)
  rng0 : int64;
  hm : Mutex.t;
}

type cell =
  | Counter_c of int Atomic.t
  | Gauge_c of float Atomic.t
  | Hist_c of hist

type metric = {
  m_name : string;
  m_labels : labels;
  m_help : string;
  cell : cell;
}

type registry = {
  tbl : (string * labels, metric) Hashtbl.t;
  mutable order : metric list; (* reverse creation order *)
  mutable collectors : (string * (unit -> unit)) list;
  rm : Mutex.t;
}

let create_registry () =
  { tbl = Hashtbl.create 64; order = []; collectors = []; rm = Mutex.create () }

let default = create_registry ()

let valid_name name =
  name <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = ':')
       name
  && not (name.[0] >= '0' && name.[0] <= '9')

let canon_labels labels =
  List.sort (fun (a, _) (b, _) -> compare a b) labels

let kind_name = function
  | Counter_c _ -> "counter"
  | Gauge_c _ -> "gauge"
  | Hist_c _ -> "histogram"

(* Find-or-create under the registry mutex; [make] builds the cell only
   when the metric does not exist yet. *)
let intern registry name labels help make check =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Obs.Metrics: invalid metric name %S" name);
  let labels = canon_labels labels in
  let key = (name, labels) in
  Mutex.lock registry.rm;
  let m =
    match Hashtbl.find_opt registry.tbl key with
    | Some m ->
        if not (check m.cell) then begin
          Mutex.unlock registry.rm;
          invalid_arg
            (Printf.sprintf "Obs.Metrics: %s already registered as a %s" name
               (kind_name m.cell))
        end;
        m
    | None ->
        let m = { m_name = name; m_labels = labels; m_help = help; cell = make () } in
        Hashtbl.add registry.tbl key m;
        registry.order <- m :: registry.order;
        m
  in
  Mutex.unlock registry.rm;
  m

module Counter = struct
  type t = int Atomic.t

  let create ?(registry = default) ?(labels = []) ?(help = "") name =
    let m =
      intern registry name labels help
        (fun () -> Counter_c (Atomic.make 0))
        (function Counter_c _ -> true | _ -> false)
    in
    match m.cell with Counter_c a -> a | _ -> assert false

  let incr t = ignore (Atomic.fetch_and_add t 1)
  let add t n = ignore (Atomic.fetch_and_add t n)
  let value t = Atomic.get t
end

module Gauge = struct
  type t = float Atomic.t

  let create ?(registry = default) ?(labels = []) ?(help = "") name =
    let m =
      intern registry name labels help
        (fun () -> Gauge_c (Atomic.make 0.))
        (function Gauge_c _ -> true | _ -> false)
    in
    match m.cell with Gauge_c a -> a | _ -> assert false

  let set t v = Atomic.set t v

  let rec add t d =
    let v = Atomic.get t in
    if not (Atomic.compare_and_set t v (v +. d)) then add t d

  let value t = Atomic.get t
end

(* splitmix64 — deterministic reservoir decisions, seeded per metric. *)
let splitmix64 seed =
  let z = Int64.add seed 0x9E3779B97F4A7C15L in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

module Histogram = struct
  type t = hist

  let default_retain = 8192

  let create ?(registry = default) ?(labels = []) ?(help = "")
      ?(retain = default_retain) ~buckets name =
    Array.iteri
      (fun i b ->
        if not (Float.is_finite b) then
          invalid_arg "Obs.Metrics.Histogram: non-finite bucket bound";
        if i > 0 && b <= buckets.(i - 1) then
          invalid_arg "Obs.Metrics.Histogram: bounds must be increasing")
      buckets;
    if retain < 1 then
      invalid_arg "Obs.Metrics.Histogram: retain must be >= 1";
    let m =
      intern registry name labels help
        (fun () ->
          let seed = Int64.of_int (Hashtbl.hash (name, labels)) in
          Hist_c
            {
              bounds = Array.copy buckets;
              counts = Array.make (Array.length buckets + 1) 0;
              hsum = 0.;
              samples = Float.Array.create (min 64 retain);
              n = 0;
              seen = 0;
              retain;
              rng = seed;
              rng0 = seed;
              hm = Mutex.create ();
            })
        (function Hist_c _ -> true | _ -> false)
    in
    match m.cell with Hist_c h -> h | _ -> assert false

  let bucket_index bounds v =
    let n = Array.length bounds in
    let rec go i = if i >= n || v <= bounds.(i) then i else go (i + 1) in
    go 0

  (* Uniform draw in [0, bound) off the histogram's own PRNG; caller holds
     the mutex. *)
  let rand_below h bound =
    h.rng <- splitmix64 h.rng;
    Int64.to_int (Int64.rem (Int64.shift_right_logical h.rng 1)
                    (Int64.of_int bound))

  let observe h v =
    Mutex.lock h.hm;
    let i = bucket_index h.bounds v in
    h.counts.(i) <- h.counts.(i) + 1;
    h.hsum <- h.hsum +. v;
    h.seen <- h.seen + 1;
    if h.n < h.retain then begin
      let cap = Float.Array.length h.samples in
      if h.n = cap then begin
        let bigger = Float.Array.create (min h.retain (2 * cap)) in
        Float.Array.blit h.samples 0 bigger 0 cap;
        h.samples <- bigger
      end;
      Float.Array.set h.samples h.n v;
      h.n <- h.n + 1
    end
    else begin
      (* Algorithm R: the new sample replaces a retained one with
         probability retain/seen, keeping the reservoir uniform. *)
      let j = rand_below h h.seen in
      if j < h.retain then Float.Array.set h.samples j v
    end;
    Mutex.unlock h.hm

  let count h =
    Mutex.lock h.hm;
    let n = h.seen in
    Mutex.unlock h.hm;
    n

  let retained h =
    Mutex.lock h.hm;
    let n = h.n in
    Mutex.unlock h.hm;
    n

  let sum h =
    Mutex.lock h.hm;
    let s = h.hsum in
    Mutex.unlock h.hm;
    s

  (* Exact nearest-rank quantile: the ceil(q*n)-th smallest sample. *)
  let quantile_sorted sorted n q =
    if n = 0 then nan
    else begin
      let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
      let rank = max 1 (min n rank) in
      Float.Array.get sorted (rank - 1)
    end

  let quantile h q =
    Mutex.lock h.hm;
    let n = h.n in
    let copy = Float.Array.create (max n 1) in
    Float.Array.blit h.samples 0 copy 0 n;
    Mutex.unlock h.hm;
    let sub = Float.Array.sub copy 0 n in
    Float.Array.sort compare sub;
    quantile_sorted sub n q
end

type histogram_view = {
  h_count : int;
  h_sum : float;
  h_buckets : (float * int) array;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
}

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of histogram_view

type sample = {
  s_name : string;
  s_labels : labels;
  s_help : string;
  s_value : value;
}

let register_collector ?(registry = default) ~name fn =
  Mutex.lock registry.rm;
  registry.collectors <- (name, fn) :: List.remove_assoc name registry.collectors;
  Mutex.unlock registry.rm

let view_hist h =
  Mutex.lock h.hm;
  let n = h.n in
  let seen = h.seen in
  let s = h.hsum in
  let counts = Array.copy h.counts in
  let copy = Float.Array.create (max n 1) in
  Float.Array.blit h.samples 0 copy 0 n;
  Mutex.unlock h.hm;
  let nb = Array.length h.bounds in
  let buckets =
    Array.init (nb + 1) (fun i ->
        ((if i < nb then h.bounds.(i) else infinity), counts.(i)))
  in
  let sorted = Float.Array.sub copy 0 n in
  Float.Array.sort compare sorted;
  let q p = Histogram.quantile_sorted sorted n p in
  {
    h_count = seen;
    h_sum = s;
    h_buckets = buckets;
    h_p50 = q 0.50;
    h_p90 = q 0.90;
    h_p99 = q 0.99;
  }

let samples registry =
  Mutex.lock registry.rm;
  let collectors = registry.collectors in
  Mutex.unlock registry.rm;
  List.iter (fun (_, fn) -> fn ()) (List.rev collectors);
  Mutex.lock registry.rm;
  let metrics = List.rev registry.order in
  Mutex.unlock registry.rm;
  metrics
  |> List.map (fun m ->
         let v =
           match m.cell with
           | Counter_c a -> Counter_v (Atomic.get a)
           | Gauge_c a -> Gauge_v (Atomic.get a)
           | Hist_c h -> Histogram_v (view_hist h)
         in
         { s_name = m.m_name; s_labels = m.m_labels; s_help = m.m_help; s_value = v })
  |> List.sort (fun a b ->
         match compare a.s_name b.s_name with
         | 0 -> compare a.s_labels b.s_labels
         | c -> c)

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition format                                   *)

let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let render_labels ?extra labels =
  let labels = match extra with None -> labels | Some kv -> labels @ [ kv ] in
  match labels with
  | [] -> ""
  | kvs ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) kvs)
      ^ "}"

let render_float v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let to_prometheus registry =
  let ss = samples registry in
  let buf = Buffer.create 1024 in
  let seen_header = Hashtbl.create 16 in
  let header name kind help =
    if not (Hashtbl.mem seen_header name) then begin
      Hashtbl.add seen_header name ();
      if help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun s ->
      match s.s_value with
      | Counter_v v ->
          header s.s_name "counter" s.s_help;
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" s.s_name (render_labels s.s_labels) v)
      | Gauge_v v ->
          header s.s_name "gauge" s.s_help;
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" s.s_name (render_labels s.s_labels)
               (render_float v))
      | Histogram_v h ->
          header s.s_name "histogram" s.s_help;
          let cum = ref 0 in
          Array.iter
            (fun (le, c) ->
              cum := !cum + c;
              let le_s = if le = infinity then "+Inf" else render_float le in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" s.s_name
                   (render_labels ~extra:("le", le_s) s.s_labels)
                   !cum))
            h.h_buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" s.s_name (render_labels s.s_labels)
               (render_float h.h_sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" s.s_name (render_labels s.s_labels)
               h.h_count);
          List.iter
            (fun (suffix, v) ->
              let qname = s.s_name ^ suffix in
              header qname "gauge"
                (if s.s_help = "" then "" else s.s_help ^ " (exact quantile)");
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" qname (render_labels s.s_labels)
                   (render_float v)))
            [ ("_p50", h.h_p50); ("_p90", h.h_p90); ("_p99", h.h_p99) ])
    ss;
  Buffer.contents buf

let reset registry =
  Mutex.lock registry.rm;
  let metrics = registry.order in
  Mutex.unlock registry.rm;
  List.iter
    (fun m ->
      match m.cell with
      | Counter_c a -> Atomic.set a 0
      | Gauge_c a -> Atomic.set a 0.
      | Hist_c h ->
          Mutex.lock h.hm;
          Array.fill h.counts 0 (Array.length h.counts) 0;
          h.hsum <- 0.;
          h.n <- 0;
          h.seen <- 0;
          h.rng <- h.rng0;
          Mutex.unlock h.hm)
    metrics

(* ------------------------------------------------------------------ *)
(* Process identity: every default registry carries an uptime gauge and
   a build-info gauge so federated expositions (router scraping worker
   registries) can tell the processes apart. The values are refreshed by
   a collector, so [reset] does not leave them stuck at zero. *)

let build_version = "1.0.0"
let process_start_ns = Clock.now_ns ()

let () =
  let uptime =
    Gauge.create ~help:"Seconds since this process initialised obs"
      "process_uptime_seconds"
  in
  let info =
    Gauge.create
      ~labels:[ ("version", build_version); ("ocaml", Sys.ocaml_version) ]
      ~help:"Build identity of this process (value is always 1)"
      "streaming_build_info"
  in
  register_collector ~name:"obs.process" (fun () ->
      Gauge.set uptime (Clock.ns_to_s (Clock.now_ns () - process_start_ns));
      Gauge.set info 1.0)
