(** Monotonic clock.

    Thin wrapper over [clock_gettime(CLOCK_MONOTONIC)]. The reading is an
    immediate integer (nanoseconds), so taking a timestamp never allocates —
    the property the disabled-tracing fast path of {!Trace} depends on. *)

val now_ns : unit -> int
(** Nanoseconds since an unspecified (boot-time) epoch. Monotonic across
    domains and threads of one process; never goes backwards. *)

val ns_to_s : int -> float
(** Convert a nanosecond count (or difference) to seconds. *)
