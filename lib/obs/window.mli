(** Sliding-window rate meter: a ring of one-second buckets.

    Reports events per second over the last W {e complete} seconds — the
    current partial second is excluded so the live rate is not biased
    downward.  The caller supplies the clock ([now], in seconds), so
    tests can drive a synthetic timeline; production code passes
    [Clock.ns_to_s (Clock.now_ns ())] or [Unix.gettimeofday ()].
    Thread-safe. *)

type t

val create : ?seconds:int -> unit -> t
(** A window of [seconds] one-second buckets (default 5). *)

val add : ?n:int -> t -> now:float -> unit
(** Record [n] events (default 1) at time [now]. *)

val rate : t -> now:float -> float
(** Events per second averaged over the complete seconds still inside
    the window; [0.0] before the first complete second. *)

val total : t -> int
(** Events ever added, regardless of the window. *)
