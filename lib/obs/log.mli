(** Structured JSONL event log.

    One logger per component ([comp]); each call emits a single-line JSON
    object to the logger's sink. Events carry a wall-clock timestamp, a
    level, an optional trace id (correlating the log line with {!Trace}
    spans), and free-form string attributes.

    Noise control: events below the logger's level are dropped, and each
    distinct event name is rate-limited to [rate] emissions per second —
    when the limit bites, the first emission of the next window carries a
    ["suppressed"] count so nothing is lost silently.

    A process-wide tap (see {!set_tap}) observes {e every} event before
    level and rate filtering — the flight recorder uses it to keep a ring
    of recent events even at [Debug] granularity. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string

val level_of_string : string -> level option

type event = {
  lg_ts : float;  (** Unix wall-clock seconds *)
  lg_level : level;
  lg_comp : string;
  lg_event : string;  (** short machine-readable event name, e.g. ["worker_up"] *)
  lg_trace : string option;  (** trace id correlating with {!Trace} spans *)
  lg_attrs : (string * string) list;
  lg_suppressed : int;
      (** events of this name dropped by rate-limiting since the last
          emission; 0 on the common path *)
}

val to_json : event -> string
(** One-line JSON object:
    [{"ts":…,"level":"…","comp":"…","event":"…","pid":…,…}]. *)

val json_escape : string -> string
(** Escape a string for embedding inside JSON double quotes. *)

type sink = string -> unit

val stderr_sink : sink
(** Write the line to stderr and flush. *)

val formatter_sink : Format.formatter -> sink
(** Write the line (newline-terminated, flushed) to a formatter — used to
    route daemon logs through an existing [config.log]. *)

val null_sink : sink

type t

val create : ?level:level -> ?rate:int -> ?sink:sink -> comp:string -> unit -> t
(** [create ~comp ()] makes a logger for component [comp]. [level] defaults
    to [Info]; [rate] is the per-event-name emission budget per second
    (default 20, [<= 0] disables rate limiting). *)

val log :
  t ->
  ?now:float ->
  ?trace:string ->
  ?attrs:(string * string) list ->
  level ->
  string ->
  unit
(** [log t lvl event] emits one event. [?now] overrides the wall clock
    (deterministic tests). The tap, if installed, sees the event even when
    level or rate filtering drops it. *)

val debug : t -> ?trace:string -> ?attrs:(string * string) list -> string -> unit
val info : t -> ?trace:string -> ?attrs:(string * string) list -> string -> unit
val warn : t -> ?trace:string -> ?attrs:(string * string) list -> string -> unit
val error : t -> ?trace:string -> ?attrs:(string * string) list -> string -> unit

val set_tap : (event -> unit) option -> unit
(** Install (or remove, with [None]) the process-wide tap. The tap runs on
    the caller's thread for every event of every logger, before filtering;
    exceptions it raises are swallowed. *)
