(** Structured spans with monotonic timing.

    Events are recorded into per-(domain, thread) buffers: the owner writes
    without taking any lock (publication via an atomic length, growth and
    export guarded by a per-buffer mutex), so the domain pool can trace
    concurrently without contention, and the service's per-connection
    systhreads — which share domain 0 — still get correctly nested spans.

    When tracing is disabled (the default), {!span} costs one atomic load
    and allocates nothing, so always-on instrumentation in hot paths is
    free. *)

val set_enabled : bool -> unit
(** Toggle recording. Toggle only when no spans are open (e.g. around a
    whole CLI run), otherwise begin/end pairs can be split. *)

val enabled : unit -> bool

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()]; when tracing is enabled, brackets it with
    begin/end events on this thread's buffer. Exceptions still close the
    span. Disabled: exactly [f ()], zero allocation. *)

val add_attr : string -> string -> unit
(** Attach a key/value attribute to the innermost open span of the calling
    thread (carried on its end event). No-op when tracing is disabled or no
    span is open. *)

val instant : ?args:(string * string) list -> string -> unit
(** Record a point event. No-op when disabled. *)

type event = {
  ev_name : string;
  ev_ph : char;  (** ['B'] begin, ['E'] end, ['i'] instant *)
  ev_ts_ns : int;  (** relative to the process trace epoch *)
  ev_tid : int;  (** buffer serial — one per (domain, thread) *)
  ev_args : (string * string) list;
}

val events : unit -> event list
(** Snapshot of all recorded events, grouped per buffer in recording order
    (within one [ev_tid], begin/end pairs nest properly). *)

val clear : unit -> unit
(** Drop all recorded events. Call only when no spans are open. *)

val to_chrome_json : ?pid:int -> ?process_name:string -> unit -> string
(** Render {!events} in the Chrome [trace_event] JSON array format
    (loadable by [chrome://tracing] and Perfetto). Timestamps are
    absolute (monotonic-clock origin), so exports from concurrently
    running processes on the same host land on one timeline. [pid]
    (default 1) labels every event; [process_name] additionally emits a
    [process_name] metadata record so the viewer shows a human name. *)

val write_chrome : ?pid:int -> ?process_name:string -> string -> unit
(** [write_chrome path] writes {!to_chrome_json} to [path]. *)

val merge_chrome : string list -> string
(** Merge documents produced by {!to_chrome_json} (typically one per
    process, with distinct [pid]s) into a single Chrome-loadable
    document. Inputs that do not look like our exporter's output are
    skipped. *)

val fresh_id : unit -> string
(** A 16-hex-digit id for trace contexts, unique across processes with
    overwhelming probability (mixes the monotonic clock, the pid and a
    process-local counter through splitmix64). *)
