type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type event = {
  lg_ts : float;
  lg_level : level;
  lg_comp : string;
  lg_event : string;
  lg_trace : string option;
  lg_attrs : (string * string) list;
  lg_suppressed : int;
}

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let pid = lazy (Unix.getpid ())

let to_json e =
  let b = Buffer.create 160 in
  Buffer.add_string b (Printf.sprintf "{\"ts\":%.6f" e.lg_ts);
  Buffer.add_string b
    (Printf.sprintf ",\"level\":%S" (level_to_string e.lg_level));
  Buffer.add_string b
    (Printf.sprintf ",\"comp\":\"%s\"" (json_escape e.lg_comp));
  Buffer.add_string b
    (Printf.sprintf ",\"event\":\"%s\"" (json_escape e.lg_event));
  Buffer.add_string b (Printf.sprintf ",\"pid\":%d" (Lazy.force pid));
  (match e.lg_trace with
  | Some tr ->
      Buffer.add_string b (Printf.sprintf ",\"trace\":\"%s\"" (json_escape tr))
  | None -> ());
  if e.lg_suppressed > 0 then
    Buffer.add_string b (Printf.sprintf ",\"suppressed\":%d" e.lg_suppressed);
  (match e.lg_attrs with
  | [] -> ()
  | attrs ->
      Buffer.add_string b ",\"attrs\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
        attrs;
      Buffer.add_char b '}');
  Buffer.add_char b '}';
  Buffer.contents b

type sink = string -> unit

let stderr_sink line = prerr_endline line
let formatter_sink ppf line = Format.fprintf ppf "%s@." line
let null_sink (_ : string) = ()

let tap : (event -> unit) option Atomic.t = Atomic.make None
let set_tap f = Atomic.set tap f

(* Per-event-name rate window: [win] is the start of the current 1 s
   window, [n] emissions within it, [dropped] events since the last
   emission (reported on the next one that gets through). *)
type key_state = { mutable win : float; mutable n : int; mutable dropped : int }

type t = {
  comp : string;
  min_level : level;
  rate : int;
  sink : sink;
  keys : (string, key_state) Hashtbl.t;
  lm : Mutex.t;
}

let create ?(level = Info) ?(rate = 20) ?(sink = stderr_sink) ~comp () =
  { comp; min_level = level; rate; sink; keys = Hashtbl.create 8;
    lm = Mutex.create () }

let log t ?now ?trace ?(attrs = []) level event_name =
  let now = match now with Some n -> n | None -> Unix.gettimeofday () in
  let ev =
    { lg_ts = now; lg_level = level; lg_comp = t.comp; lg_event = event_name;
      lg_trace = trace; lg_attrs = attrs; lg_suppressed = 0 }
  in
  (match Atomic.get tap with
  | Some f -> ( try f ev with _ -> ())
  | None -> ());
  if severity level >= severity t.min_level then begin
    let emit =
      if t.rate <= 0 then Some 0
      else begin
        Mutex.lock t.lm;
        let ks =
          match Hashtbl.find_opt t.keys event_name with
          | Some ks -> ks
          | None ->
              let ks = { win = now; n = 0; dropped = 0 } in
              Hashtbl.replace t.keys event_name ks;
              ks
        in
        if now -. ks.win >= 1.0 then begin
          ks.win <- now;
          ks.n <- 0
        end;
        let r =
          if ks.n < t.rate then begin
            ks.n <- ks.n + 1;
            let d = ks.dropped in
            ks.dropped <- 0;
            Some d
          end
          else begin
            ks.dropped <- ks.dropped + 1;
            None
          end
        in
        Mutex.unlock t.lm;
        r
      end
    in
    match emit with
    | None -> ()
    | Some suppressed -> t.sink (to_json { ev with lg_suppressed = suppressed })
  end

let debug t ?trace ?attrs ev = log t ?trace ?attrs Debug ev
let info t ?trace ?attrs ev = log t ?trace ?attrs Info ev
let warn t ?trace ?attrs ev = log t ?trace ?attrs Warn ev
let error t ?trace ?attrs ev = log t ?trace ?attrs Error ev
