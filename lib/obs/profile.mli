(** Plain-text profile tree built from recorded trace events.

    Spans are merged by path (same name under the same parent accumulates
    total time and a call count), per trace buffer. Nodes that have
    children get a [(self)] pseudo-leaf carrying the time not covered by
    any child, so the leaves of the printed tree always sum to the root
    totals. *)

type node = {
  p_name : string;
  p_total_ns : int;
  p_count : int;
  p_children : node list;  (** first-seen order; includes the [(self)] leaf *)
}

val trees : Trace.event list -> (int * node list) list
(** Per-buffer forests, [(tid, roots)], in buffer order. Unmatched end
    events are ignored; spans still open at the end of the event list are
    closed at the last timestamp seen on their buffer. *)

val leaf_sum_ns : node -> int
(** Sum of leaf totals under [node] (equals [p_total_ns] by construction
    whenever the node has children, thanks to the [(self)] leaf). *)

val print : ?wall_ns:int -> Format.formatter -> Trace.event list -> unit
(** Render the forests as an indented tree with durations, percentages and
    call counts. Percentages are relative to [wall_ns] when given (with a
    [total] header line), otherwise to each buffer's root sum. The buffer
    with the largest recorded total is printed first. *)
