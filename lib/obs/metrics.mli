(** Registry of counters, gauges and histograms.

    A registry is an instantiable bag of named metrics. Most code uses the
    process-wide {!default} registry; the service daemon owns a private one
    per server so concurrent servers (as in the tests) do not share state.

    Creation is idempotent: [create] with a (name, labels) pair that already
    exists returns the existing metric, so hot modules can create handles at
    module-init time and instrumentation sites can re-derive labelled
    children cheaply. Creating an existing name with a different metric kind
    raises [Invalid_argument].

    Histograms keep fixed bucket counts (for the service JSON shape) plus
    retained samples: below the [retain] cap every observation is kept and
    the p50/p90/p99 summaries are {e exact} nearest-rank; past the cap a
    uniform reservoir (Algorithm R with a deterministic per-metric PRNG)
    bounds memory in long-running daemons while keeping the quantiles an
    unbiased estimate over the whole stream. *)

type registry

val default : registry
(** The process-wide registry used when [?registry] is omitted. *)

val create_registry : unit -> registry
(** A fresh, empty registry independent of {!default}. *)

type labels = (string * string) list
(** Label pairs; canonically sorted by key internally. *)

module Counter : sig
  type t

  val create :
    ?registry:registry -> ?labels:labels -> ?help:string -> string -> t
  (** Idempotent: same (name, labels) in the same registry returns the same
      underlying counter. *)

  val incr : t -> unit
  val add : t -> int -> unit

  val value : t -> int
end

module Gauge : sig
  type t

  val create :
    ?registry:registry -> ?labels:labels -> ?help:string -> string -> t

  val set : t -> float -> unit
  val add : t -> float -> unit

  val value : t -> float
end

module Histogram : sig
  type t

  val create :
    ?registry:registry ->
    ?labels:labels ->
    ?help:string ->
    ?retain:int ->
    buckets:float array ->
    string ->
    t
  (** [buckets] are strictly increasing finite upper bounds; an implicit
      [+Inf] bucket is appended. [retain] caps the retained samples
      (default 8192, must be [>= 1]); quantiles are exact while the
      observation count stays under the cap and reservoir-estimated past
      it. Idempotent like {!Counter.create} (the bucket bounds and cap of
      the first creation win). *)

  val observe : t -> float -> unit

  val count : t -> int
  (** Total observations ever (not capped by [retain]). *)

  val retained : t -> int
  (** Currently retained samples, [<= retain] — equals {!count} until the
      reservoir engages. *)

  val sum : t -> float

  val quantile : t -> float -> float
  (** Nearest-rank quantile over the retained samples, [q] in (0,1] —
      exact while under the [retain] cap. [nan] when the histogram is
      empty. *)
end

(** Snapshot view of one histogram. *)
type histogram_view = {
  h_count : int;
  h_sum : float;
  h_buckets : (float * int) array;
      (** (upper bound, count in this bucket — {e non}-cumulative); the last
          bound is [infinity]. *)
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;  (** exact nearest-rank quantiles; [nan] when empty *)
}

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of histogram_view

type sample = {
  s_name : string;
  s_labels : labels;
  s_help : string;
  s_value : value;
}

val register_collector : ?registry:registry -> name:string -> (unit -> unit) -> unit
(** Register a callback run before every {!samples} / {!to_prometheus} so
    externally-owned statistics (e.g. the [Young.Pattern] memo caches, the
    service LRU) can be mirrored into gauges on demand. Idempotent by
    [name]: re-registering replaces the previous callback. *)

val samples : registry -> sample list
(** Stable order: sorted by metric name, then labels. Runs collectors. *)

val to_prometheus : registry -> string
(** Render the registry in the Prometheus text exposition format (version
    0.0.4). Histograms emit cumulative [_bucket{le=...}] series plus
    [_sum]/[_count], and additionally [_p50]/[_p90]/[_p99] gauges carrying
    the exact quantiles. Runs collectors. *)

val reset : registry -> unit
(** Zero every metric in the registry (registrations are kept). Intended
    for tests and benchmarks. *)

val build_version : string
(** Version string carried by the [streaming_build_info] gauge that the
    {!default} registry exposes (together with [process_uptime_seconds])
    so federated expositions can identify worker processes. *)
