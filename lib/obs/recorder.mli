(** Crash flight recorder: a bounded ring of the most recent log events
    and span completions, dumped atomically to a file on process death or
    on a typed-error burst.

    The recorder is process-wide and off by default ({!note} and
    {!note_span} are cheap no-ops while disabled, so instrumentation can
    stay unconditional). {!enable} hooks the {!Log} tap so every
    structured log event of every logger lands in the ring regardless of
    level or rate filtering; {!install} arms a dump file and registers an
    [at_exit] dump for clean shutdowns. Abnormal exits that skip [at_exit]
    (e.g. the chaos injector's [Unix._exit]) must call {!crash_dump}
    explicitly first.

    The dump is written to [path ^ ".tmp"] and renamed into place, so
    readers never observe a torn file. It is a single JSON object carrying
    the ring (oldest first) plus a snapshot of the default metrics
    registry. *)

val enable :
  ?capacity:int ->
  ?burst_threshold:int ->
  ?burst_window:float ->
  ?min_dump_interval:float ->
  unit ->
  unit
(** Turn the recorder on (idempotent; the first call's parameters win).
    [capacity] bounds the ring (default 512 events). A dump fires
    automatically when [burst_threshold] errors (default 8) arrive within
    [burst_window] seconds (default 10.0), rate-limited to one auto-dump
    per [min_dump_interval] seconds (default 30.0). *)

val disable : unit -> unit
(** Turn the recorder off and drop its state (tests). *)

val enabled : unit -> bool

val note :
  ?now:float ->
  ?trace:string ->
  ?attrs:(string * string) list ->
  level:Log.level ->
  comp:string ->
  string ->
  unit
(** Append one event to the ring directly (no logger). No-op when
    disabled. *)

val note_span : ?now:float -> string -> dur_ns:int -> unit
(** Record a completed span (name + duration) in the ring. Called by
    {!Trace.span} when the recorder is enabled. No-op when disabled. *)

val install : path:string -> unit
(** Arm [path] as the dump target and register an [at_exit] dump with
    reason ["exit"]. Enables the recorder if it is not enabled yet. *)

val error_tick : ?now:float -> kind:string -> unit -> unit
(** Report one typed error. When errors burst past the configured
    threshold within the window, dumps to the installed path with reason
    ["error-burst:<kind>"]. No-op when disabled or no path installed. *)

val crash_dump : reason:string -> unit
(** Dump immediately to the installed path (no-op when disabled or not
    installed). Never raises — safe on the way down. *)

val dump : reason:string -> path:string -> unit
(** Dump the ring to an explicit [path] (atomic tmp+rename). Never
    raises. *)

val entries : unit -> Log.event list
(** Ring contents, oldest first (tests). Empty when disabled. *)

val clear : unit -> unit
(** Drop ring contents and burst state, keep the recorder enabled. *)
