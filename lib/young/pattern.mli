(** The u×v communication pattern of §5.2.

    A replicated communication between a team of [R_i] senders and a team
    of [R_{i+1}] receivers splits into [g = gcd(R_i, R_{i+1})] connected
    components; each component is a chain of copies of a pattern with
    [u = R_i/g] senders and [v = R_{i+1}/g] receivers (so gcd(u,v) = 1).
    The pattern has u*v transitions — transition [k] is the transfer on
    the component's k-th row, performed by sender [k mod u] towards
    receiver [k mod v] — plus one serialisation ring per sender (one-port
    out) and per receiver (one-port in), each with a single token on its
    wrap-around place.

    The *inner throughput* of the component is its stationary number of
    transfers per time unit in isolation (inputs always available). *)

val build : u:int -> v:int -> time:(sender:int -> receiver:int -> float) -> Petrinet.Teg.t
(** Raises [Invalid_argument] unless u,v ≥ 1 and gcd(u,v) = 1. *)

val transition_of : u:int -> v:int -> int -> int * int
(** [transition_of ~u ~v k] = (sender slot, receiver slot) of transition k. *)

val young_graph : ?cap:int -> u:int -> v:int -> unit -> Petrinet.Marking.graph option
(** Direct enumeration of the reachable marking graph of {!build}'s net:
    a marking is the token position in each of the u+v serialisation
    rings (a pair of Young-diagram paths, Theorem 3), and the enumerator
    walks those position tuples combinatorially instead of firing the
    generic breadth-first search.  The result — marking set, discovery
    order and edge lists — is identical to
    [Petrinet.Marking.explore_graph (build ~u ~v ...)].  Returns [None]
    when the packed position code would exceed one machine int (the
    caller then falls back to the generic exploration); raises
    [Supervise.Error.Solver_error (State_space_exceeded _)] beyond [cap]
    states. *)

(** {1 Rotation symmetry}

    The shift [k ↦ k+1 (mod u·v)] of the transition indices is an
    automorphism of the pattern: sender ring [s] maps onto ring [s+1]
    (ring [u-1] wraps onto ring [0] advanced one slot) and receiver rings
    likewise.  When the transfer rates are invariant under the [d]-step
    shift for a divisor [d] of [u·v], the orbit partition of the reachable
    markings under that shift is exactly lumpable and the stationary
    vector is constant on orbits, so the CTMC can be solved on a quotient
    up to [u·v] times smaller with zero loss of accuracy
    ({!Markov.Tpn_markov.analyse_with_lumped}). *)

val rotation_perms : u:int -> v:int -> phases:int -> shift:int -> int array * int array
(** [(place_perm, trans_perm)] of the [shift]-step rotation on the pattern
    net — on {!build}'s net for [phases = 1], on its Erlang expansion
    ([Petrinet.Expand.erlang] with uniform [phases]) otherwise.
    [place_perm.(p)] / [trans_perm.(k)] are the images of place [p] and
    transition [k].  Raises [Invalid_argument] unless
    [1 <= shift <= u·v]. *)

val invariant_shift : u:int -> v:int -> float array -> int
(** The smallest divisor [d] of [u·v] such that the base rate vector
    (length [u·v], indexed by transition) satisfies
    [rates.((k+d) mod u·v) = rates.(k)] for all [k] — under {e exact}
    float equality, because lumpability tolerates no rate error.  Returns
    [u·v] (the identity shift) when no proper symmetry holds; homogeneous
    rates give 1. *)

val deterministic_inner_throughput : u:int -> v:int -> time:(sender:int -> receiver:int -> float) -> float
(** [u * v / period] where the period is the critical cycle of the pattern:
    data sets per time unit with constant transfer times.  For homogeneous
    time d this equals [min(u,v)/d]. *)

val exponential_inner_throughput :
  ?cap:int -> u:int -> v:int -> rate:(sender:int -> receiver:int -> float) -> unit -> float
(** Exact stationary transfer rate with exponential times (sum of the
    stationary firing rates of the u·v transitions), through the marking
    CTMC of Theorem 3.  The chain has S(u,v) states. *)

val homogeneous_inner_throughput : u:int -> v:int -> lambda:float -> float
(** Theorem 4's closed form u*v*lambda / (u+v-1). *)

val erlang_inner_throughput :
  ?cap:int -> phases:int -> u:int -> v:int -> rate:(sender:int -> receiver:int -> float) -> unit -> float
(** Exact stationary transfer rate when every link time is
    Erlang([phases]) with mean 1/rate: the pattern is expanded into
    exponential phases (which preserves the event-graph property) and the
    marking CTMC is solved.  [phases = 1] coincides with
    {!exponential_inner_throughput}; as [phases] grows the value increases
    towards {!deterministic_inner_throughput} — an exact interpolation of
    the Theorem 7 sandwich. *)

(** {1 Pattern-solve caches}

    The reachable marking graph of a [u x v] pattern depends only on the
    shape, so {!exponential_inner_throughput} and
    {!erlang_inner_throughput} keep two process-wide caches: the explored
    structure per [(u, v, phases, cap)], and the solved throughput per
    [(u, v, phases, cap, rate matrix quantized to 12 significant digits)].
    Both are thread-safe (shared by the {!Parallel.Pool} domains) and
    purely an optimisation: cached and uncached calls return identical
    floats. *)

type cache_stats = {
  hits : int;  (** result-memo lookups answered from the cache *)
  misses : int;  (** result-memo lookups that had to solve *)
  structures : int;  (** cached per-shape marking structures *)
  results : int;  (** cached solved throughputs *)
}

val cache_stats : unit -> cache_stats

val clear_caches : unit -> unit
(** Drop both caches and reset the counters (used by tests and by the
    cold/warm benchmark). *)

type supervised_result = {
  throughput : float;  (** stationary data sets per time unit *)
  provenance : Supervise.Provenance.t;  (** ladder attempts of the solve *)
  states : int;  (** reachable markings explored *)
  edges : int;  (** marking-graph edges *)
  lump : Markov.Tpn_markov.lump_stats option;
      (** quotient size when the rotation lumping was applied, [None] when
          the chain was solved unlumped *)
}

val supervised_inner_throughput :
  ?cap:int ->
  ?budget:Supervise.Budget.t ->
  ?pool:Parallel.Pool.t ->
  ?lump:bool ->
  phases:int ->
  u:int ->
  v:int ->
  rate:(sender:int -> receiver:int -> float) ->
  unit ->
  supervised_result
(** The million-state entry point: budgeted exploration (sharded over
    [pool] when given), exact rotation lumping when the rates allow it
    ([lump], default [true], applies the {!invariant_shift} quotient
    whenever the shift is proper), and the
    {!Markov.Tpn_markov.analyse_with_supervised} escalation ladder on
    whichever chain — quotient or full — is solved.  [phases = 1] is the
    exponential pattern; [phases >= 2] the Erlang expansion.  The
    throughput equals {!exponential_inner_throughput} /
    {!erlang_inner_throughput} on the same instance.  Results are never
    memoised (the provenance describes an actual solve), but the explored
    structure still lands in the shape cache. *)

val ph_inner_throughput :
  ?cap:int -> u:int -> v:int -> ph:(sender:int -> receiver:int -> Markov.Ph.t) -> unit -> float
(** Exact stationary transfer rate for arbitrary phase-type link times,
    through the phase-augmented marking chain
    ({!Markov.Tpn_markov_ph}).  Hyperexponential laws (D.F.R.) yield
    exact values *below* the exponential bound; Erlang laws match
    {!erlang_inner_throughput}. *)
