let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let check u v =
  if u < 1 || v < 1 then invalid_arg "Pattern: u and v must be at least 1";
  if gcd u v <> 1 then invalid_arg "Pattern: u and v must be coprime"

let transition_of ~u ~v k = (k mod u, k mod v)

let build ~u ~v ~time =
  check u v;
  let n = u * v in
  let labels =
    Array.init n (fun k ->
        let s, r = transition_of ~u ~v k in
        Printf.sprintf "xfer(s%d->r%d,k%d)" s r k)
  in
  let times =
    Array.init n (fun k ->
        let s, r = transition_of ~u ~v k in
        time ~sender:s ~receiver:r)
  in
  let teg = Petrinet.Teg.create ~labels ~times in
  let add_ring members =
    let k = Array.length members in
    for l = 0 to k - 1 do
      Petrinet.Teg.add_place teg ~src:members.(l) ~dst:members.((l + 1) mod k)
        ~tokens:(if l = k - 1 then 1 else 0)
    done
  in
  (* one-port rings: each sender's v transfers, each receiver's u ones *)
  for s = 0 to u - 1 do
    add_ring (Array.init v (fun i -> s + (i * u)))
  done;
  for r = 0 to v - 1 do
    add_ring (Array.init u (fun i -> r + (i * v)))
  done;
  teg

(* ---- pattern-solve caches ----

   The reachable marking graph of a [u x v] pattern (and of its Erlang
   expansion) depends only on the shape, never on the transfer times, so
   the explored structure is cached per [(u, v, phases, cap)] and reused
   across rate assignments.  On top of that, the solved throughput itself
   is memoised per quantized rate matrix: parameter sweeps that revisit an
   identical communication component skip both the exploration and the
   elimination.  Both tables are guarded by one mutex so pooled domains
   can share them; values are deterministic functions of their key, so a
   racing duplicate computation is only wasted work, never a wrong
   answer. *)

type cache_stats = { hits : int; misses : int; structures : int; results : int }

type shape = {
  expansion : Petrinet.Expand.t option;  (** [None] for the 1-phase net *)
  structure : Markov.Tpn_markov.structure;
}

let cache_mutex = Mutex.create ()
let shape_cache : (int * int * int * int, shape) Hashtbl.t = Hashtbl.create 16
let result_cache : (string, float) Hashtbl.t = Hashtbl.create 64
let cache_hits = ref 0
let cache_misses = ref 0

let locked f =
  Mutex.lock cache_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_mutex) f

let cache_stats () =
  locked (fun () ->
      {
        hits = !cache_hits;
        misses = !cache_misses;
        structures = Hashtbl.length shape_cache;
        results = Hashtbl.length result_cache;
      })

let clear_caches () =
  locked (fun () ->
      Hashtbl.reset shape_cache;
      Hashtbl.reset result_cache;
      cache_hits := 0;
      cache_misses := 0)

let cap_key = function None -> -1 | Some c -> c

(* Rates are quantized to 12 significant digits in the memo key: close
   enough that two components identical up to float noise share a solve,
   coarse enough that a genuine parameter change never collides. *)
let result_key ~tag ~u ~v ~phases ~cap rates =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "%s:%d:%d:%d:%d" tag u v phases (cap_key cap));
  Array.iter (fun r -> Buffer.add_char buf ','; Buffer.add_string buf (Printf.sprintf "%.12g" r)) rates;
  Buffer.contents buf

let find_result key =
  locked (fun () ->
      match Hashtbl.find_opt result_cache key with
      | Some rho ->
          incr cache_hits;
          Some rho
      | None ->
          incr cache_misses;
          None)

let store_result key rho = locked (fun () -> Hashtbl.replace result_cache key rho)

let shape_of ~u ~v ~phases ~cap =
  let key = (u, v, phases, cap_key cap) in
  match locked (fun () -> Hashtbl.find_opt shape_cache key) with
  | Some shape -> shape
  | None ->
      (* built outside the lock: exploration can be slow, and a duplicate
         build by a racing domain yields an equal value *)
      let base = build ~u ~v ~time:(fun ~sender:_ ~receiver:_ -> 1.0) in
      let shape =
        if phases = 1 then { expansion = None; structure = Markov.Tpn_markov.structure ?cap base }
        else
          let expansion = Petrinet.Expand.erlang ~phases:(fun _ -> phases) base in
          {
            expansion = Some expansion;
            structure = Markov.Tpn_markov.structure ?cap (Petrinet.Expand.teg expansion);
          }
      in
      locked (fun () -> if not (Hashtbl.mem shape_cache key) then Hashtbl.add shape_cache key shape);
      shape

let deterministic_inner_throughput ~u ~v ~time =
  let teg = build ~u ~v ~time in
  match Petrinet.Cycle_time.analyse teg with
  | None -> invalid_arg "Pattern.deterministic_inner_throughput: acyclic pattern"
  | Some { Petrinet.Cycle_time.period; _ } -> float_of_int (u * v) /. period

let exponential_inner_throughput ?cap ~u ~v ~rate () =
  check u v;
  let rates =
    Array.init (u * v) (fun k ->
        let s, r = transition_of ~u ~v k in
        rate ~sender:s ~receiver:r)
  in
  let key = result_key ~tag:"exp" ~u ~v ~phases:1 ~cap rates in
  match find_result key with
  | Some rho -> rho
  | None ->
      let shape = shape_of ~u ~v ~phases:1 ~cap in
      let chain = Markov.Tpn_markov.analyse_with shape.structure ~rates:(fun id -> rates.(id)) in
      let rho = Markov.Tpn_markov.throughput_of chain (List.init (u * v) Fun.id) in
      store_result key rho;
      rho

let homogeneous_inner_throughput ~u ~v ~lambda =
  check u v;
  float_of_int (u * v) *. lambda /. float_of_int (u + v - 1)

let erlang_inner_throughput ?cap ~phases ~u ~v ~rate () =
  if phases < 1 then invalid_arg "Pattern.erlang_inner_throughput: phases must be at least 1";
  if phases = 1 then
    (* a 1-phase Erlang is exponential: share that shape and result memo
       instead of building an (absent) expansion *)
    exponential_inner_throughput ?cap ~u ~v ~rate ()
  else begin
  check u v;
  let base_rates =
    Array.init (u * v) (fun k ->
        let s, r = transition_of ~u ~v k in
        rate ~sender:s ~receiver:r)
  in
  let key = result_key ~tag:"erl" ~u ~v ~phases ~cap base_rates in
  match find_result key with
  | Some rho -> rho
  | None ->
      let shape = shape_of ~u ~v ~phases ~cap in
      let expansion = Option.get shape.expansion in
      let rates id = Petrinet.Expand.phase_rates expansion ~original_rate:(fun k -> base_rates.(k)) id in
      let chain = Markov.Tpn_markov.analyse_with shape.structure ~rates in
      (* one data set completes per firing of a transfer's LAST phase *)
      let rho =
        Markov.Tpn_markov.throughput_of chain
          (List.init (u * v) (fun k -> Petrinet.Expand.last expansion k))
      in
      store_result key rho;
      rho
  end

let ph_inner_throughput ?cap ~u ~v ~ph () =
  let laws =
    Array.init (u * v) (fun k ->
        let s, r = transition_of ~u ~v k in
        ph ~sender:s ~receiver:r)
  in
  let teg = build ~u ~v ~time:(fun ~sender ~receiver -> Markov.Ph.mean (ph ~sender ~receiver)) in
  let chain = Markov.Tpn_markov_ph.analyse ?cap ~ph_of:(fun k -> laws.(k)) teg in
  Markov.Tpn_markov_ph.throughput_of chain (List.init (u * v) Fun.id)
