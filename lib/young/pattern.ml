let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let check u v =
  if u < 1 || v < 1 then invalid_arg "Pattern: u and v must be at least 1";
  if gcd u v <> 1 then invalid_arg "Pattern: u and v must be coprime"

let transition_of ~u ~v k = (k mod u, k mod v)

let build ~u ~v ~time =
  check u v;
  let n = u * v in
  let labels =
    Array.init n (fun k ->
        let s, r = transition_of ~u ~v k in
        Printf.sprintf "xfer(s%d->r%d,k%d)" s r k)
  in
  let times =
    Array.init n (fun k ->
        let s, r = transition_of ~u ~v k in
        time ~sender:s ~receiver:r)
  in
  let teg = Petrinet.Teg.create ~labels ~times in
  let add_ring members =
    let k = Array.length members in
    for l = 0 to k - 1 do
      Petrinet.Teg.add_place teg ~src:members.(l) ~dst:members.((l + 1) mod k)
        ~tokens:(if l = k - 1 then 1 else 0)
    done
  in
  (* one-port rings: each sender's v transfers, each receiver's u ones *)
  for s = 0 to u - 1 do
    add_ring (Array.init v (fun i -> s + (i * u)))
  done;
  for r = 0 to v - 1 do
    add_ring (Array.init u (fun i -> r + (i * v)))
  done;
  teg

(* ---- direct Young-lattice enumeration ----

   The reachable markings of the pattern are pairs of Young diagrams
   (Theorem 3); operationally, every serialisation ring carries exactly one
   token, so a marking is fully described by the *position* of the token in
   each of the u sender rings and v receiver rings.  The enumerator below
   walks that lattice directly on a packed (positions) code — u fields of
   width ⌈log₂ v⌉ and v fields of width ⌈log₂ u⌉ — instead of running the
   generic breadth-first search over the 2·u·v-place marking vector:
   transition k is enabled iff sender ring [k mod u] sits one slot before k
   and receiver ring [k mod v] likewise, and firing k advances both rings.
   Traversal order (breadth-first, transitions in increasing k) matches
   [Marking.explore_graph] exactly, so the resulting graph — markings,
   order, and edges — is identical to the generic one, just cheaper to
   produce. *)

let nbits bound =
  let rec go b acc = if b = 0 then max acc 1 else go (b lsr 1) (acc + 1) in
  go bound 0

(* The lattice walk can only decline for one reason today (position code
   wider than a machine int), but the reason label keeps the Prometheus
   series extensible — and the fallback visible, where it used to be a
   silent [None]. *)
let m_lattice_fallback =
  Obs.Metrics.Counter.create
    ~labels:[ ("reason", "code-width") ]
    ~help:"Young-lattice direct enumerations that fell back to generic BFS"
    "young_lattice_fallback_total"

let young_graph ?(cap = 200_000) ~u ~v () =
  check u v;
  let n = u * v in
  let pw = nbits (v - 1) and qw = nbits (u - 1) in
  if (u * pw) + (v * qw) > 62 then begin
    Obs.Metrics.Counter.incr m_lattice_fallback;
    None
  end
  else begin
    let p_shift = Array.init u (fun s -> s * pw) in
    let q_shift = Array.init v (fun r -> (u * pw) + (r * qw)) in
    let p_mask = (1 lsl pw) - 1 and q_mask = (1 lsl qw) - 1 in
    (* per transition k: the ring fields it reads and the positions they
       must hold for k to be enabled, and the positions firing k writes *)
    let sender = Array.init n (fun k -> k mod u) in
    let receiver = Array.init n (fun k -> k mod v) in
    let p_next = Array.init n (fun k -> k / u) in
    let q_next = Array.init n (fun k -> k / v) in
    let p_need = Array.init n (fun k -> ((k / u) - 1 + v) mod v) in
    let q_need = Array.init n (fun k -> ((k / v) - 1 + u) mod u) in
    let initial =
      let c = ref 0 in
      for s = 0 to u - 1 do
        c := !c lor ((v - 1) lsl p_shift.(s))
      done;
      for r = 0 to v - 1 do
        c := !c lor ((u - 1) lsl q_shift.(r))
      done;
      !c
    in
    let codes = ref (Array.make 1024 0) in
    let count = ref 0 in
    let index : (int, int) Hashtbl.t = Hashtbl.create 1024 in
    let succ = ref (Array.make 1024 0) in
    let via = ref (Array.make 1024 0) in
    let n_edges = ref 0 in
    let row_ptr = ref (Array.make 1025 0) in
    let push_state code =
      match Hashtbl.find_opt index code with
      | Some id -> id
      | None ->
          if !count >= cap then
            Supervise.Error.raise_
              (Supervise.Error.State_space_exceeded { cap; explored = !count });
          let id = !count in
          if id = Array.length !codes then begin
            let a = Array.make (2 * id) 0 in
            Array.blit !codes 0 a 0 id;
            codes := a;
            let rp = Array.make ((2 * id) + 1) 0 in
            Array.blit !row_ptr 0 rp 0 (id + 1);
            row_ptr := rp
          end;
          !codes.(id) <- code;
          Hashtbl.add index code id;
          incr count;
          id
    in
    let push_edge dst k =
      if !n_edges = Array.length !succ then begin
        let grow a = let a' = Array.make (2 * !n_edges) 0 in Array.blit a 0 a' 0 !n_edges; a' in
        succ := grow !succ;
        via := grow !via
      end;
      !succ.(!n_edges) <- dst;
      !via.(!n_edges) <- k;
      incr n_edges
    in
    ignore (push_state initial);
    let head = ref 0 in
    while !head < !count do
      let code = !codes.(!head) in
      !row_ptr.(!head) <- !n_edges;
      for k = 0 to n - 1 do
        let s = sender.(k) and r = receiver.(k) in
        if
          (code lsr p_shift.(s)) land p_mask = p_need.(k)
          && (code lsr q_shift.(r)) land q_mask = q_need.(k)
        then begin
          let code' =
            code
            land lnot (p_mask lsl p_shift.(s))
            land lnot (q_mask lsl q_shift.(r))
            lor (p_next.(k) lsl p_shift.(s))
            lor (q_next.(k) lsl q_shift.(r))
          in
          push_edge (push_state code') k
        end
      done;
      incr head
    done;
    !row_ptr.(!count) <- !n_edges;
    (* decode ring positions back to the 2·u·v-place marking vector, in the
       place order [build] creates: sender ring s occupies places
       [s·v .. s·v+v-1], receiver ring r places [u·v + r·u .. + u-1] *)
    let markings =
      Array.init !count (fun id ->
          let code = !codes.(id) in
          let m = Array.make (2 * n) 0 in
          for s = 0 to u - 1 do
            m.((s * v) + ((code lsr p_shift.(s)) land p_mask)) <- 1
          done;
          for r = 0 to v - 1 do
            m.(n + (r * u) + ((code lsr q_shift.(r)) land q_mask)) <- 1
          done;
          m)
    in
    Some
      {
        Petrinet.Marking.markings;
        row_ptr = Array.sub !row_ptr 0 (!count + 1);
        succ = Array.sub !succ 0 !n_edges;
        via = Array.sub !via 0 !n_edges;
      }
  end

(* ---- rotation symmetry ----

   Transition k of the pattern is performed by sender k mod u towards
   receiver k mod v, so the shift k ↦ k+1 (mod uv) maps the pattern onto
   itself: sender ring s becomes ring s+1 (and ring u-1 wraps onto ring 0
   advanced by one slot), receivers likewise.  It is an automorphism of
   the net — every place (a ring arc) maps to a place — and therefore
   permutes the reachable markings.  When the transfer rates are invariant
   under the shift (e.g. homogeneous rates, or rates depending only on
   k mod d for a divisor d of uv), the orbit partition of σ^d is exactly
   lumpable and the stationary vector is constant on orbits — the quotient
   solve of [Tpn_markov.analyse_with_lumped] is exact, up to uv times
   smaller. *)

(* place and transition permutation of the 1-step shift on the base net *)
let rotation_base ~u ~v =
  let n = u * v in
  let pp = Array.make (2 * n) 0 in
  (* sender ring s, slot l is place s·v+l; the last ring wraps onto ring 0
     advanced one slot *)
  for s = 0 to u - 1 do
    for l = 0 to v - 1 do
      pp.((s * v) + l) <- (if s < u - 1 then ((s + 1) * v) + l else (l + 1) mod v)
    done
  done;
  for r = 0 to v - 1 do
    for l = 0 to u - 1 do
      pp.(n + (r * u) + l) <-
        (if r < v - 1 then n + ((r + 1) * u) + l else n + ((l + 1) mod u))
    done
  done;
  let tp = Array.init n (fun k -> (k + 1) mod n) in
  (pp, tp)

let perm_power perm d =
  let out = Array.init (Array.length perm) Fun.id in
  for _ = 1 to d do
    Array.iteri (fun i x -> out.(i) <- perm.(x)) (Array.copy out)
  done;
  out

let rotation_perms ~u ~v ~phases ~shift =
  check u v;
  if phases < 1 then invalid_arg "Pattern.rotation_perms: phases must be at least 1";
  let n = u * v in
  if shift < 1 || shift > n then invalid_arg "Pattern.rotation_perms: shift out of range";
  let pp1, tp1 = rotation_base ~u ~v in
  let pp = perm_power pp1 shift and tp = perm_power tp1 shift in
  if phases = 1 then (pp, tp)
  else begin
    (* Erlang expansion with uniform phase count p: transition (k, j) has
       id k·p+j; intra-chain place (k, j) has id k·(p-1)+j, and the base
       places follow at offset n·(p-1) in base order (see Expand.erlang) *)
    let p = phases in
    let tp' = Array.make (n * p) 0 in
    for k = 0 to n - 1 do
      for j = 0 to p - 1 do
        tp'.((k * p) + j) <- (tp.(k) * p) + j
      done
    done;
    let pp' = Array.make ((n * (p - 1)) + (2 * n)) 0 in
    for k = 0 to n - 1 do
      for j = 0 to p - 2 do
        pp'.((k * (p - 1)) + j) <- (tp.(k) * (p - 1)) + j
      done
    done;
    for b = 0 to (2 * n) - 1 do
      pp'.((n * (p - 1)) + b) <- (n * (p - 1)) + pp.(b)
    done;
    (pp', tp')
  end

(* Minimal divisor d of u·v with rates invariant under the d-step shift
   (exact float equality — lumpability tolerates no rate error); u·v means
   "no usable symmetry" (the full shift is the identity). *)
let invariant_shift ~u ~v rates =
  check u v;
  let n = u * v in
  if Array.length rates <> n then invalid_arg "Pattern.invariant_shift: rates length mismatch";
  let invariant d =
    let ok = ref true in
    for k = 0 to n - 1 do
      if rates.((k + d) mod n) <> rates.(k) then ok := false
    done;
    !ok
  in
  let rec search d = if d >= n then n else if n mod d = 0 && invariant d then d else search (d + 1) in
  search 1

(* ---- pattern-solve caches ----

   The reachable marking graph of a [u x v] pattern (and of its Erlang
   expansion) depends only on the shape, never on the transfer times, so
   the explored structure is cached per [(u, v, phases, cap)] and reused
   across rate assignments.  On top of that, the solved throughput itself
   is memoised per quantized rate matrix: parameter sweeps that revisit an
   identical communication component skip both the exploration and the
   elimination.  Both tables are guarded by one mutex so pooled domains
   can share them; values are deterministic functions of their key, so a
   racing duplicate computation is only wasted work, never a wrong
   answer. *)

type cache_stats = { hits : int; misses : int; structures : int; results : int }

type shape = {
  expansion : Petrinet.Expand.t option;  (** [None] for the 1-phase net *)
  structure : Markov.Tpn_markov.structure;
}

let cache_mutex = Mutex.create ()
let shape_cache : (int * int * int * int, shape) Hashtbl.t = Hashtbl.create 16
let result_cache : (string, float) Hashtbl.t = Hashtbl.create 64
let cache_hits = ref 0
let cache_misses = ref 0

let locked f =
  Mutex.lock cache_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_mutex) f

let cache_stats () =
  locked (fun () ->
      {
        hits = !cache_hits;
        misses = !cache_misses;
        structures = Hashtbl.length shape_cache;
        results = Hashtbl.length result_cache;
      })

let clear_caches () =
  locked (fun () ->
      Hashtbl.reset shape_cache;
      Hashtbl.reset result_cache;
      cache_hits := 0;
      cache_misses := 0)

let cap_key = function None -> -1 | Some c -> c

(* Rates are quantized to 12 significant digits in the memo key: close
   enough that two components identical up to float noise share a solve,
   coarse enough that a genuine parameter change never collides. *)
let result_key ~tag ~u ~v ~phases ~cap rates =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Printf.sprintf "%s:%d:%d:%d:%d" tag u v phases (cap_key cap));
  Array.iter (fun r -> Buffer.add_char buf ','; Buffer.add_string buf (Printf.sprintf "%.12g" r)) rates;
  Buffer.contents buf

let find_result key =
  locked (fun () ->
      match Hashtbl.find_opt result_cache key with
      | Some rho ->
          incr cache_hits;
          Some rho
      | None ->
          incr cache_misses;
          None)

let store_result key rho = locked (fun () -> Hashtbl.replace result_cache key rho)

let shape_of ?budget ?pool ~u ~v ~phases ~cap () =
  let key = (u, v, phases, cap_key cap) in
  match locked (fun () -> Hashtbl.find_opt shape_cache key) with
  | Some shape -> shape
  | None ->
      Obs.Trace.span "young:structure" @@ fun () ->
      Obs.Trace.add_attr "pattern" (Printf.sprintf "%dx%d ph%d" u v phases);
      (* built outside the lock: exploration can be slow, and a duplicate
         build by a racing domain yields an equal value.  A budget-aborted
         exploration raises here, before anything reaches the cache.  The
         key ignores [budget] and [pool]: both leave the cached value
         byte-identical (the sharded exploration reproduces the serial
         graph exactly, and a completed budgeted build is a full build). *)
      let base = build ~u ~v ~time:(fun ~sender:_ ~receiver:_ -> 1.0) in
      let shape =
        if phases = 1 then
          (* the direct lattice walk produces the same graph as the generic
             BFS; fall back when the position code would not fit an int.
             A wall budget forces the generic path, which polls it. *)
          let structure =
            match (if Option.is_none budget then young_graph ?cap ~u ~v () else None) with
            | Some g -> Markov.Tpn_markov.structure_of_graph base g
            | None -> Markov.Tpn_markov.structure ?cap ?budget ?pool base
          in
          { expansion = None; structure }
        else
          let expansion = Petrinet.Expand.erlang ~phases:(fun _ -> phases) base in
          {
            expansion = Some expansion;
            structure = Markov.Tpn_markov.structure ?cap ?budget ?pool (Petrinet.Expand.teg expansion);
          }
      in
      locked (fun () -> if not (Hashtbl.mem shape_cache key) then Hashtbl.add shape_cache key shape);
      shape

let deterministic_inner_throughput ~u ~v ~time =
  let teg = build ~u ~v ~time in
  match Petrinet.Cycle_time.analyse teg with
  | None -> invalid_arg "Pattern.deterministic_inner_throughput: acyclic pattern"
  | Some { Petrinet.Cycle_time.period; _ } -> float_of_int (u * v) /. period

let exponential_inner_throughput ?cap ~u ~v ~rate () =
  check u v;
  let rates =
    Array.init (u * v) (fun k ->
        let s, r = transition_of ~u ~v k in
        rate ~sender:s ~receiver:r)
  in
  let key = result_key ~tag:"exp" ~u ~v ~phases:1 ~cap rates in
  match find_result key with
  | Some rho -> rho
  | None ->
      let shape = shape_of ~u ~v ~phases:1 ~cap () in
      let chain = Markov.Tpn_markov.analyse_with shape.structure ~rates:(fun id -> rates.(id)) in
      let rho = Markov.Tpn_markov.throughput_of chain (List.init (u * v) Fun.id) in
      store_result key rho;
      rho

let homogeneous_inner_throughput ~u ~v ~lambda =
  check u v;
  float_of_int (u * v) *. lambda /. float_of_int (u + v - 1)

let erlang_inner_throughput ?cap ~phases ~u ~v ~rate () =
  if phases < 1 then invalid_arg "Pattern.erlang_inner_throughput: phases must be at least 1";
  if phases = 1 then
    (* a 1-phase Erlang is exponential: share that shape and result memo
       instead of building an (absent) expansion *)
    exponential_inner_throughput ?cap ~u ~v ~rate ()
  else begin
  check u v;
  let base_rates =
    Array.init (u * v) (fun k ->
        let s, r = transition_of ~u ~v k in
        rate ~sender:s ~receiver:r)
  in
  let key = result_key ~tag:"erl" ~u ~v ~phases ~cap base_rates in
  match find_result key with
  | Some rho -> rho
  | None ->
      let shape = shape_of ~u ~v ~phases ~cap () in
      let expansion = Option.get shape.expansion in
      let rates id = Petrinet.Expand.phase_rates expansion ~original_rate:(fun k -> base_rates.(k)) id in
      let chain = Markov.Tpn_markov.analyse_with shape.structure ~rates in
      (* one data set completes per firing of a transfer's LAST phase *)
      let rho =
        Markov.Tpn_markov.throughput_of chain
          (List.init (u * v) (fun k -> Petrinet.Expand.last expansion k))
      in
      store_result key rho;
      rho
  end

(* ---- supervised solve with the rotation quotient ---- *)

type supervised_result = {
  throughput : float;
  provenance : Supervise.Provenance.t;
  states : int;
  edges : int;
  lump : Markov.Tpn_markov.lump_stats option;
}

let supervised_inner_throughput ?cap ?budget ?pool ?(lump = true) ~phases ~u ~v ~rate () =
  check u v;
  if phases < 1 then
    invalid_arg "Pattern.supervised_inner_throughput: phases must be at least 1";
  let n = u * v in
  let base_rates =
    Array.init n (fun k ->
        let s, r = transition_of ~u ~v k in
        rate ~sender:s ~receiver:r)
  in
  (* never memoised: this entry point reports provenance and lump stats of
     an actual solve, which a cache hit would have nothing to say about *)
  let shape = shape_of ?budget ?pool ~u ~v ~phases ~cap () in
  let rates, outputs =
    match shape.expansion with
    | None -> ((fun id -> base_rates.(id)), List.init n Fun.id)
    | Some e ->
        (* one data set completes per firing of a transfer's LAST phase *)
        ( (fun id -> Petrinet.Expand.phase_rates e ~original_rate:(fun k -> base_rates.(k)) id),
          List.init n (fun k -> Petrinet.Expand.last e k) )
  in
  let d = invariant_shift ~u ~v base_rates in
  let chain, provenance, lstats =
    if lump && d < n then begin
      (* rate invariance under the d-step shift of the base transitions
         carries to the Erlang expansion (phase j of transfer k maps to
         phase j of transfer k+d, with the same rate p·λ(k)) *)
      let place_perm, trans_perm = rotation_perms ~u ~v ~phases ~shift:d in
      let t, prov, ls =
        Markov.Tpn_markov.analyse_with_lumped ?budget shape.structure ~rates ~place_perm
          ~trans_perm
      in
      (t, prov, Some ls)
    end
    else
      let t, prov = Markov.Tpn_markov.analyse_with_supervised ?budget shape.structure ~rates in
      (t, prov, None)
  in
  {
    throughput = Markov.Tpn_markov.throughput_of chain outputs;
    provenance;
    states = Markov.Tpn_markov.structure_states shape.structure;
    edges = Markov.Tpn_markov.structure_edges shape.structure;
    lump = lstats;
  }

let ph_inner_throughput ?cap ~u ~v ~ph () =
  let laws =
    Array.init (u * v) (fun k ->
        let s, r = transition_of ~u ~v k in
        ph ~sender:s ~receiver:r)
  in
  let teg = build ~u ~v ~time:(fun ~sender ~receiver -> Markov.Ph.mean (ph ~sender ~receiver)) in
  let chain = Markov.Tpn_markov_ph.analyse ?cap ~ph_of:(fun k -> laws.(k)) teg in
  Markov.Tpn_markov_ph.throughput_of chain (List.init (u * v) Fun.id)
