(** Random instance generation, following the experimental protocol of §7.1
    (Table 1): team sizes, per-processor computation times and per-link
    communication times drawn uniformly in given ranges.

    Times are controlled directly: each stage has unit work and unit file
    size, processor speeds are the inverses of the drawn computation times
    and bandwidths the inverses of the drawn communication times. *)

type instance_params = {
  i_stages : int;
  i_procs : int;  (** must be >= i_stages *)
  i_comp_range : float * float;  (** computation time per data set, seconds *)
  i_comm_range : float * float;  (** communication time per file, seconds *)
}
(** What {!random_instance} needs: no mapping is drawn, so there is no
    rejection bound to give. *)

type params = {
  n_stages : int;
  n_procs : int;  (** all processors are used; must be >= n_stages *)
  comp_range : float * float;  (** computation time per data set, seconds *)
  comm_range : float * float;  (** communication time per file, seconds *)
  max_rows : int;  (** reject mappings whose lcm of team sizes exceeds this *)
}

val table1_sets : (string * params) list
(** The six configurations of Table 1 (sizes and ranges). *)

val instance_params_of : params -> instance_params
(** Drop the mapping-only [max_rows] field. *)

val random_instance : Prng.t -> instance_params -> Streaming.Application.t * Streaming.Platform.t
(** Draw only the application and the platform (unit works and file
    sizes, speeds and bandwidths as the inverses of the drawn times) and
    leave the mapping open — the input of the [Optimize] engine, which
    searches the one-to-many mappings itself. *)

val random_mapping : Prng.t -> params -> Streaming.Mapping.t
(** Draw team sizes as a uniform random composition of [n_procs] into
    [n_stages] positive parts, then processor and link times; rejects and
    redraws while [lcm] of the team sizes exceeds [max_rows]. *)

val random_team_sizes : Prng.t -> n_stages:int -> n_procs:int -> max_rows:int -> int array

(** {1 Tenant mixes}

    Random multi-tenant scenarios for the tenancy tier: one shared
    platform, [K] tenants whose teams are drawn over the {e same}
    processor pool (so tenants overlap and contention is real), weights
    uniform in [weight_range], and floors calibrated against each
    tenant's deterministic bound {e under the generated contention} —
    [floor = floor_frac * bound] admits everybody for [floor_frac < 1]
    and produces guaranteed rejections above it. *)

type mix_params = {
  mix_tenants : int;  (** K >= 1 *)
  mix_procs : int;  (** shared processor count *)
  mix_stage_range : int * int;  (** stages per tenant, inclusive *)
  mix_team_range : int * int;
      (** processors per tenant, inclusive; capped at [mix_procs] *)
  mix_comp_range : float * float;
  mix_comm_range : float * float;
  mix_weight_range : float * float;
  mix_floor_frac : float;  (** floor as a fraction of the contended bound *)
  mix_max_rows : int;  (** per-tenant lcm rejection bound *)
}

val default_mix : mix_params
(** 3 tenants, 8 processors, 2–3 stages on 3–5 processors each, Table 1
    "short" time ranges, weights in [1, 4], floors at half the contended
    bound. *)

val random_tenant_mix :
  ?model:Streaming.Model.t ->
  Prng.t ->
  mix_params ->
  Streaming.Instance_io.tenant_decl list
(** Draw a mix.  Tenant ids are ["t0"], ["t1"], …; every tenant's mapping
    shares one physical {!Streaming.Platform.t}, so the result feeds
    {!Tenancy.Platform_share.create} (and renders through
    [Instance_io.multi_to_string]) directly.  The default model for floor
    calibration is Overlap. *)

val with_over_budget :
  ?model:Streaming.Model.t ->
  ?factor:float ->
  Streaming.Instance_io.tenant_decl list ->
  Streaming.Instance_io.tenant_decl list
(** Append a copy of the last tenant re-declared as ["greedy"] with its
    floor set to [factor] (default 2.0) times the bound it would get
    under the extended contention — a tenant the admission sequence is
    guaranteed to reject. *)

