(** Random instance generation, following the experimental protocol of §7.1
    (Table 1): team sizes, per-processor computation times and per-link
    communication times drawn uniformly in given ranges.

    Times are controlled directly: each stage has unit work and unit file
    size, processor speeds are the inverses of the drawn computation times
    and bandwidths the inverses of the drawn communication times. *)

type params = {
  n_stages : int;
  n_procs : int;  (** all processors are used; must be >= n_stages *)
  comp_range : float * float;  (** computation time per data set, seconds *)
  comm_range : float * float;  (** communication time per file, seconds *)
  max_rows : int;  (** reject mappings whose lcm of team sizes exceeds this *)
}

val table1_sets : (string * params) list
(** The six configurations of Table 1 (sizes and ranges). *)

val random_instance : Prng.t -> params -> Streaming.Application.t * Streaming.Platform.t
(** Draw only the application and the platform (unit works and file
    sizes, speeds and bandwidths as the inverses of the drawn times) and
    leave the mapping open — the input of the [Optimize] engine, which
    searches the one-to-many mappings itself.  [max_rows] is ignored. *)

val random_mapping : Prng.t -> params -> Streaming.Mapping.t
(** Draw team sizes as a uniform random composition of [n_procs] into
    [n_stages] positive parts, then processor and link times; rejects and
    redraws while [lcm] of the team sizes exceeds [max_rows]. *)

val random_team_sizes : Prng.t -> n_stages:int -> n_procs:int -> max_rows:int -> int array
