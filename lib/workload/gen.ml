open Streaming

type params = {
  n_stages : int;
  n_procs : int;
  comp_range : float * float;
  comm_range : float * float;
  max_rows : int;
}

let table1_sets =
  [
    ("(10,20) short", { n_stages = 10; n_procs = 20; comp_range = (5., 15.); comm_range = (5., 15.); max_rows = 720 });
    ("(10,20) long", { n_stages = 10; n_procs = 20; comp_range = (10., 1000.); comm_range = (10., 1000.); max_rows = 720 });
    ("(20,30) short", { n_stages = 20; n_procs = 30; comp_range = (5., 15.); comm_range = (5., 15.); max_rows = 720 });
    ("(20,30) long", { n_stages = 20; n_procs = 30; comp_range = (10., 1000.); comm_range = (10., 1000.); max_rows = 720 });
    ("(3,7) cheap comp", { n_stages = 3; n_procs = 7; comp_range = (1., 1.); comm_range = (5., 10.); max_rows = 720 });
    ("(3,7) costly comm", { n_stages = 3; n_procs = 7; comp_range = (1., 1.); comm_range = (10., 50.); max_rows = 720 });
  ]

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a / gcd a b * b

let rec random_team_sizes g ~n_stages ~n_procs ~max_rows =
  if n_procs < n_stages then invalid_arg "Gen.random_team_sizes: not enough processors";
  (* uniform composition of n_procs into n_stages positive parts via a
     random subset of cut points *)
  let cuts = Array.make (n_stages - 1) 0 in
  let chosen = Hashtbl.create 16 in
  let rec draw_cut i =
    if i < n_stages - 1 then begin
      let c = 1 + Prng.int g (n_procs - 1) in
      if Hashtbl.mem chosen c then draw_cut i
      else begin
        Hashtbl.add chosen c ();
        cuts.(i) <- c;
        draw_cut (i + 1)
      end
    end
  in
  draw_cut 0;
  Array.sort compare cuts;
  let sizes =
    Array.init n_stages (fun i ->
        let lo = if i = 0 then 0 else cuts.(i - 1) in
        let hi = if i = n_stages - 1 then n_procs else cuts.(i) in
        hi - lo)
  in
  let rows = Array.fold_left lcm 1 sizes in
  if rows > max_rows then random_team_sizes g ~n_stages ~n_procs ~max_rows else sizes

let random_instance g params =
  let clo, chi = params.comp_range in
  let speeds = Array.init params.n_procs (fun _ -> 1.0 /. Prng.uniform g clo chi) in
  let dlo, dhi = params.comm_range in
  let bandwidth =
    Array.init params.n_procs (fun _ ->
        Array.init params.n_procs (fun _ -> 1.0 /. Prng.uniform g dlo dhi))
  in
  let app =
    Application.create
      ~work:(Array.make params.n_stages 1.0)
      ~files:(Array.make (params.n_stages - 1) 1.0)
  in
  (app, Platform.create ~speeds ~bandwidth)

let random_mapping g params =
  let sizes =
    random_team_sizes g ~n_stages:params.n_stages ~n_procs:params.n_procs
      ~max_rows:params.max_rows
  in
  let teams =
    let next = ref 0 in
    Array.map
      (fun size ->
        let team = Array.init size (fun k -> !next + k) in
        next := !next + size;
        team)
      sizes
  in
  let clo, chi = params.comp_range in
  let speeds = Array.init params.n_procs (fun _ -> 1.0 /. Prng.uniform g clo chi) in
  let dlo, dhi = params.comm_range in
  let bandwidth =
    Array.init params.n_procs (fun _ ->
        Array.init params.n_procs (fun _ -> 1.0 /. Prng.uniform g dlo dhi))
  in
  let app =
    Application.create
      ~work:(Array.make params.n_stages 1.0)
      ~files:(Array.make (params.n_stages - 1) 1.0)
  in
  let platform = Platform.create ~speeds ~bandwidth in
  Mapping.create ~app ~platform ~teams
