open Streaming

type instance_params = {
  i_stages : int;
  i_procs : int;
  i_comp_range : float * float;
  i_comm_range : float * float;
}

type params = {
  n_stages : int;
  n_procs : int;
  comp_range : float * float;
  comm_range : float * float;
  max_rows : int;
}

let instance_params_of p =
  { i_stages = p.n_stages; i_procs = p.n_procs; i_comp_range = p.comp_range; i_comm_range = p.comm_range }

let table1_sets =
  [
    ("(10,20) short", { n_stages = 10; n_procs = 20; comp_range = (5., 15.); comm_range = (5., 15.); max_rows = 720 });
    ("(10,20) long", { n_stages = 10; n_procs = 20; comp_range = (10., 1000.); comm_range = (10., 1000.); max_rows = 720 });
    ("(20,30) short", { n_stages = 20; n_procs = 30; comp_range = (5., 15.); comm_range = (5., 15.); max_rows = 720 });
    ("(20,30) long", { n_stages = 20; n_procs = 30; comp_range = (10., 1000.); comm_range = (10., 1000.); max_rows = 720 });
    ("(3,7) cheap comp", { n_stages = 3; n_procs = 7; comp_range = (1., 1.); comm_range = (5., 10.); max_rows = 720 });
    ("(3,7) costly comm", { n_stages = 3; n_procs = 7; comp_range = (1., 1.); comm_range = (10., 50.); max_rows = 720 });
  ]

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let lcm a b = a / gcd a b * b

let rec random_team_sizes g ~n_stages ~n_procs ~max_rows =
  if n_procs < n_stages then invalid_arg "Gen.random_team_sizes: not enough processors";
  (* uniform composition of n_procs into n_stages positive parts via a
     random subset of cut points *)
  let cuts = Array.make (n_stages - 1) 0 in
  let chosen = Hashtbl.create 16 in
  let rec draw_cut i =
    if i < n_stages - 1 then begin
      let c = 1 + Prng.int g (n_procs - 1) in
      if Hashtbl.mem chosen c then draw_cut i
      else begin
        Hashtbl.add chosen c ();
        cuts.(i) <- c;
        draw_cut (i + 1)
      end
    end
  in
  draw_cut 0;
  Array.sort compare cuts;
  let sizes =
    Array.init n_stages (fun i ->
        let lo = if i = 0 then 0 else cuts.(i - 1) in
        let hi = if i = n_stages - 1 then n_procs else cuts.(i) in
        hi - lo)
  in
  let rows = Array.fold_left lcm 1 sizes in
  if rows > max_rows then random_team_sizes g ~n_stages ~n_procs ~max_rows else sizes

let random_instance g params =
  let clo, chi = params.i_comp_range in
  let speeds = Array.init params.i_procs (fun _ -> 1.0 /. Prng.uniform g clo chi) in
  let dlo, dhi = params.i_comm_range in
  let bandwidth =
    Array.init params.i_procs (fun _ ->
        Array.init params.i_procs (fun _ -> 1.0 /. Prng.uniform g dlo dhi))
  in
  let app =
    Application.create
      ~work:(Array.make params.i_stages 1.0)
      ~files:(Array.make (params.i_stages - 1) 1.0)
  in
  (app, Platform.create ~speeds ~bandwidth)

(* ---- tenant mixes ---- *)

type mix_params = {
  mix_tenants : int;
  mix_procs : int;
  mix_stage_range : int * int;
  mix_team_range : int * int;
  mix_comp_range : float * float;
  mix_comm_range : float * float;
  mix_weight_range : float * float;
  mix_floor_frac : float;
  mix_max_rows : int;
}

let default_mix =
  {
    mix_tenants = 3;
    mix_procs = 8;
    mix_stage_range = (2, 3);
    mix_team_range = (3, 5);
    mix_comp_range = (5., 15.);
    mix_comm_range = (5., 15.);
    mix_weight_range = (1., 4.);
    mix_floor_frac = 0.5;
    mix_max_rows = 60;
  }

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = Prng.int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let int_in g (lo, hi) = if hi <= lo then lo else lo + Prng.int g (hi - lo + 1)

let random_tenant_mix ?(model = Model.Overlap) g p =
  if p.mix_tenants < 1 then invalid_arg "Gen.random_tenant_mix: need at least one tenant";
  let slo, _ = p.mix_stage_range in
  if slo < 1 then invalid_arg "Gen.random_tenant_mix: stage range must start at 1";
  (* one shared platform, Table 1 style: speeds and bandwidths as the
     inverses of uniformly drawn times *)
  let clo, chi = p.mix_comp_range in
  let speeds = Array.init p.mix_procs (fun _ -> 1.0 /. Prng.uniform g clo chi) in
  let dlo, dhi = p.mix_comm_range in
  let bandwidth =
    Array.init p.mix_procs (fun _ ->
        Array.init p.mix_procs (fun _ -> 1.0 /. Prng.uniform g dlo dhi))
  in
  let platform = Platform.create ~speeds ~bandwidth in
  let draw_tenant i =
    let n_stages = int_in g p.mix_stage_range in
    let n_procs = min p.mix_procs (max n_stages (int_in g p.mix_team_range)) in
    let sizes = random_team_sizes g ~n_stages ~n_procs ~max_rows:p.mix_max_rows in
    (* teams are drawn over the *shared* pool: a random subset of the
       physical processors, so different tenants overlap and contend *)
    let perm = Array.init p.mix_procs Fun.id in
    shuffle g perm;
    let next = ref 0 in
    let teams =
      Array.map
        (fun size ->
          let team = Array.init size (fun k -> perm.(!next + k)) in
          next := !next + size;
          team)
        sizes
    in
    let app =
      Application.create
        ~work:(Array.init n_stages (fun _ -> Prng.uniform g 0.5 2.0))
        ~files:(Array.init (n_stages - 1) (fun _ -> Prng.uniform g 0.5 2.0))
    in
    {
      Instance_io.tenant_id = Printf.sprintf "t%d" i;
      weight = Prng.uniform g (fst p.mix_weight_range) (snd p.mix_weight_range);
      floor = 0.0;
      tenant_mapping = Mapping.create ~app ~platform ~teams;
    }
  in
  let decls = List.init p.mix_tenants draw_tenant in
  (* calibrate floors against the bound *under the generated contention*
     (shares do not depend on floors, so the bounds stay valid) *)
  match Tenancy.Platform_share.create ~tenants:decls with
  | Error msg -> invalid_arg ("Gen.random_tenant_mix: " ^ msg)
  | Ok ps ->
      List.mapi
        (fun i d ->
          { d with Instance_io.floor = p.mix_floor_frac *. Tenancy.Platform_share.bound ps ~tenant:i model })
        decls

let with_over_budget ?(model = Model.Overlap) ?(factor = 2.0) decls =
  match List.rev decls with
  | [] -> invalid_arg "Gen.with_over_budget: empty mix"
  | last :: _ -> (
      let greedy = { last with Instance_io.tenant_id = "greedy"; floor = 0.0 } in
      let extended = decls @ [ greedy ] in
      match Tenancy.Platform_share.create ~tenants:extended with
      | Error msg -> invalid_arg ("Gen.with_over_budget: " ^ msg)
      | Ok ps ->
          let bound = Tenancy.Platform_share.bound ps ~tenant:(List.length decls) model in
          decls @ [ { greedy with Instance_io.floor = factor *. bound } ])

let random_mapping g params =
  let sizes =
    random_team_sizes g ~n_stages:params.n_stages ~n_procs:params.n_procs
      ~max_rows:params.max_rows
  in
  let teams =
    let next = ref 0 in
    Array.map
      (fun size ->
        let team = Array.init size (fun k -> !next + k) in
        next := !next + size;
        team)
      sizes
  in
  let clo, chi = params.comp_range in
  let speeds = Array.init params.n_procs (fun _ -> 1.0 /. Prng.uniform g clo chi) in
  let dlo, dhi = params.comm_range in
  let bandwidth =
    Array.init params.n_procs (fun _ ->
        Array.init params.n_procs (fun _ -> 1.0 /. Prng.uniform g dlo dhi))
  in
  let app =
    Application.create
      ~work:(Array.make params.n_stages 1.0)
      ~files:(Array.make (params.n_stages - 1) 1.0)
  in
  let platform = Platform.create ~speeds ~bandwidth in
  Mapping.create ~app ~platform ~teams
