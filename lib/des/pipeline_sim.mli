(** Discrete-event simulation of the pipeline's operational semantics —
    the role played by SimGrid in §7, independent of the Petri-net code.

    Every data set [n] follows its round-robin path: at stage [i] it is
    received (over the link from the previous stage's processor), computed
    and sent forward.  Resources serve their operations in data-set order:
    under {!Streaming.Model.Overlap} a processor's compute unit, input
    port and output port are three independent servers; under
    {!Streaming.Model.Strict} the receive–compute–send triple of a data
    set occupies the processor exclusively.

    Two stochastic regimes are supported (§2.4): the *independent* case
    draws every operation duration from its resource's law; the
    *associated* case draws one work size [w_i(n)] and one file size
    [delta_i(n)] per (stage, data set) and divides by the (constant)
    speeds and bandwidths, so the durations of the same data set on
    different resources are positively correlated. *)

type timing =
  | Independent of Streaming.Laws.t
  | Associated of { work : int -> Dist.t; files : int -> Dist.t }
      (** [work i] is the law of the size of stage [i]'s computation;
          [files i] the law of file [i]'s size.  Means are interpreted as
          the nominal sizes of the application. *)
  | Scaled of Dist.t
      (** One positive factor per data set, multiplying every nominal
          duration of that data set: the strongest form of association
          (§6.2/Theorem 8) — a "large" data set is large on every
          resource it touches.  Use a law of mean 1 to preserve the
          nominal means. *)

val completions :
  ?release:(int -> float) ->
  Streaming.Mapping.t ->
  Streaming.Model.t ->
  timing:timing ->
  seed:int ->
  data_sets:int ->
  float array
(** Completion time of data sets 0, 1, …, sorted.  [release n] (default:
    all 0, a saturated source) is the instant data set [n] becomes
    available at the entry of the pipeline. *)

val latencies :
  release:(int -> float) ->
  Streaming.Mapping.t ->
  Streaming.Model.t ->
  timing:timing ->
  seed:int ->
  data_sets:int ->
  float array
(** Per data set, completion time minus release time — the end-to-end
    latency under the given admission process.  With a saturated source
    the latency diverges for any data set not on the bottleneck, so a
    meaningful study admits data sets at a fraction of the maximum
    throughput (see examples/latency_study.ml). *)

val throughput :
  ?warmup_fraction:float ->
  ?release:(int -> float) ->
  Streaming.Mapping.t ->
  Streaming.Model.t ->
  timing:timing ->
  seed:int ->
  data_sets:int ->
  float

val replicated_throughputs :
  ?pool:Parallel.Pool.t ->
  ?warmup_fraction:float ->
  ?release:(int -> float) ->
  Streaming.Mapping.t ->
  Streaming.Model.t ->
  timing:timing ->
  seeds:int list ->
  data_sets:int ->
  float list
(** One {!throughput} estimate per seed, in seed order, the independent
    replications running on [pool] (default {!Parallel.Pool.get}).  Each
    replica draws from its own generator seeded by its own seed, so the
    result list is identical for every pool size. *)
