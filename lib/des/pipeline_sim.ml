open Streaming

type timing =
  | Independent of Laws.t
  | Associated of { work : int -> Dist.t; files : int -> Dist.t }
  | Scaled of Dist.t

let raw_completions ?release mapping model ~timing ~seed ~data_sets =
  if data_sets < 1 then invalid_arg "Pipeline_sim.completions: need at least one data set";
  Obs.Trace.span "des:pipeline_sim" @@ fun () ->
  Obs.Trace.add_attr "data_sets" (string_of_int data_sets);
  let n = Mapping.n_stages mapping in
  let cols = (2 * n) - 1 in
  let replication = Mapping.replication mapping in
  let proc_of ~data_set ~stage = Mapping.proc_at mapping ~stage ~row:data_set in
  let op ~data_set ~col = (data_set * cols) + col in
  let engine = Engine.create ~n_tasks:(data_sets * cols) in
  (match release with
  | None -> ()
  | Some release ->
      for ds = 0 to data_sets - 1 do
        Engine.set_earliest engine ~task:(op ~data_set:ds ~col:0) (release ds)
      done);
  for ds = 0 to data_sets - 1 do
    for col = 1 to cols - 1 do
      (* the data set moves through receive/compute/send in order *)
      Engine.add_dep engine ~task:(op ~data_set:ds ~col) ~after:(op ~data_set:ds ~col:(col - 1))
    done;
    for stage = 0 to n - 1 do
      let r_i = replication.(stage) in
      let prev = ds - r_i in
      match model with
      | Model.Overlap ->
          if prev >= 0 then begin
            (* compute unit of the processor is busy with its previous
               data set *)
            Engine.add_dep engine
              ~task:(op ~data_set:ds ~col:(2 * stage))
              ~after:(op ~data_set:prev ~col:(2 * stage));
            (* one-port out: previous send of the same processor *)
            if stage < n - 1 then
              Engine.add_dep engine
                ~task:(op ~data_set:ds ~col:((2 * stage) + 1))
                ~after:(op ~data_set:prev ~col:((2 * stage) + 1));
            (* one-port in: previous receive of the same processor *)
            if stage > 0 then
              Engine.add_dep engine
                ~task:(op ~data_set:ds ~col:((2 * stage) - 1))
                ~after:(op ~data_set:prev ~col:((2 * stage) - 1))
          end
      | Model.Strict ->
          if prev >= 0 then begin
            let first_col = if stage > 0 then (2 * stage) - 1 else 2 * stage in
            let last_col = if stage < n - 1 then (2 * stage) + 1 else 2 * stage in
            (* the processor is a single server: its receive for this data
               set waits for the send of its previous one *)
            Engine.add_dep engine
              ~task:(op ~data_set:ds ~col:first_col)
              ~after:(op ~data_set:prev ~col:last_col)
          end
    done
  done;
  let g = Prng.create ~seed in
  let duration =
    match timing with
    | Independent laws ->
        fun id ->
          let ds = id / cols and col = id mod cols in
          if col mod 2 = 0 then
            let stage = col / 2 in
            Dist.sample (laws (Resource.Compute (proc_of ~data_set:ds ~stage))) g
          else
            let stage = col / 2 in
            let src = proc_of ~data_set:ds ~stage and dst = proc_of ~data_set:ds ~stage:(stage + 1) in
            Dist.sample (laws (Resource.Transfer (src, dst))) g
    | Associated { work; files } ->
        (* one size draw per (data set, stage) and per (data set, file),
           shared by every resource that touches it *)
        let work_sizes =
          Array.init data_sets (fun _ -> Array.init n (fun i -> Dist.sample (work i) g))
        in
        let file_sizes =
          Array.init data_sets (fun _ -> Array.init (max 0 (n - 1)) (fun i -> Dist.sample (files i) g))
        in
        fun id ->
          let ds = id / cols and col = id mod cols in
          let stage = col / 2 in
          if col mod 2 = 0 then
            let p = proc_of ~data_set:ds ~stage in
            work_sizes.(ds).(stage) /. Platform.speed (Mapping.platform mapping) p
          else
            let src = proc_of ~data_set:ds ~stage and dst = proc_of ~data_set:ds ~stage:(stage + 1) in
            file_sizes.(ds).(stage)
            /. Platform.bandwidth (Mapping.platform mapping) ~src ~dst
    | Scaled law ->
        let factors = Array.init data_sets (fun _ -> Dist.sample law g) in
        fun id ->
          let ds = id / cols and col = id mod cols in
          let stage = col / 2 in
          let nominal =
            if col mod 2 = 0 then
              Mapping.comp_time mapping ~stage ~proc:(proc_of ~data_set:ds ~stage)
            else
              Mapping.comm_time mapping ~file:stage ~src:(proc_of ~data_set:ds ~stage)
                ~dst:(proc_of ~data_set:ds ~stage:(stage + 1))
          in
          factors.(ds) *. nominal
  in
  let completion = Engine.run engine ~duration in
  Array.init data_sets (fun ds -> completion.(op ~data_set:ds ~col:(cols - 1)))

let completions ?release mapping model ~timing ~seed ~data_sets =
  let result = raw_completions ?release mapping model ~timing ~seed ~data_sets in
  (* truncate at the earliest per-row final completion: each round-robin
     row receives a fixed share of the data sets, so beyond the fastest
     row's horizon the merged stream under-counts the system rate when
     rows are decoupled *)
  let m = Mapping.rows mapping in
  let horizon = ref infinity in
  for row = 0 to min m data_sets - 1 do
    let last = row + ((data_sets - 1 - row) / m * m) in
    if result.(last) < !horizon then horizon := result.(last)
  done;
  let kept = Array.of_list (List.filter (fun c -> c <= !horizon) (Array.to_list result)) in
  Array.sort compare kept;
  kept

let latencies ~release mapping model ~timing ~seed ~data_sets =
  let result = raw_completions ~release mapping model ~timing ~seed ~data_sets in
  Array.mapi (fun ds c -> c -. release ds) result

let throughput ?warmup_fraction ?release mapping model ~timing ~seed ~data_sets =
  let series = completions ?release mapping model ~timing ~seed ~data_sets in
  Stats.Series.throughput_of_completions ?warmup_fraction series

let replicated_throughputs ?pool ?warmup_fraction ?release mapping model ~timing ~seeds ~data_sets
    =
  let pool = match pool with Some p -> p | None -> Parallel.Pool.get () in
  Parallel.Pool.map_list pool
    (fun seed -> throughput ?warmup_fraction ?release mapping model ~timing ~seed ~data_sets)
    seeds
