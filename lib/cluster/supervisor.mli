(** Worker fleet supervision: spawn N query daemons as child processes,
    reap and restart crashes on a {!Supervise.Backoff} schedule, probe
    health with deadline-bounded pings, mark crash-looping workers dead,
    and drain the fleet with SIGTERM (escalating to SIGKILL after a
    grace period) on shutdown. *)

type spec = { argv : string array; env : string array; addr : Service.Protocol.addr }
(** How to run one worker: the command (typically this very binary's
    [serve] subcommand), its environment (where per-worker
    [SUPERVISE_INJECT] rules live), and the socket it will serve. *)

type state =
  | Starting  (** spawned, not yet answering pings *)
  | Up
  | Restarting of { attempt : int; until : float }
      (** crashed; next spawn at [until] *)
  | Dead  (** restart attempts exhausted; the router routes around it *)

val state_to_string : state -> string

type t

val start :
  ?backoff:Supervise.Backoff.policy ->
  ?heartbeat_period:float ->
  ?heartbeat_deadline:float ->
  ?start_deadline:float ->
  ?log:Format.formatter ->
  spec array ->
  t
(** Spawns every worker and the monitor thread.  Defaults:
    {!Supervise.Backoff.default_restart}, heartbeat every 1 s with a 1 s
    reply deadline, 10 s to come up, logging to stderr.  Restart
    attempts reset once an [Up] worker survives a full heartbeat period,
    so occasional chaos does not accumulate toward [Dead] but a crash
    loop does. *)

val size : t -> int
val addr : t -> int -> Service.Protocol.addr
val state : t -> int -> state

val alive : t -> int -> bool
(** [state t i = Up]. *)

val restarts : t -> int -> int
(** Lifetime restarts of worker [i]. *)

val restarts_total : t -> int

val wait_up : ?deadline:float -> t -> bool
(** Blocks until every worker is [Up] (true) or the absolute deadline
    passes (false).  Test and startup convenience. *)

val shutdown : ?grace:float -> t -> unit
(** Graceful drain: stop the monitor (no more restarts), SIGTERM every
    live worker — the daemon finishes in-flight requests on SIGTERM —
    wait up to [grace] seconds (default 5), SIGKILL stragglers, reap
    everything.  Idempotent. *)
