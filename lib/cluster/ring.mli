(** Consistent hashing of canonical solve keys onto workers.

    The placement is a pure function of the key and the worker count —
    no PRNG, no process state — so the router, the tests and the chaos
    harness all agree on which worker owns which key. *)

type t

val create : ?vnodes:int -> int -> t
(** [create n] builds a ring over workers [0..n-1], each contributing
    [vnodes] (default 64) points on the circle. *)

val size : t -> int

val lookup : t -> string -> int
(** The worker owning [key]: the first ring point clockwise from the
    key's hash. *)

val preference : t -> string -> int list
(** All workers in fallback order for [key], starting with
    [lookup t key]: the router walks this list when the owner is dead or
    its breaker is open.  Distinct keys get different orders, so a dead
    worker's load spreads instead of dogpiling one neighbour. *)

val hash_string : string -> int
(** The ring's stable string hash (non-negative), exposed for tests. *)
