(* The cluster front door.

   Speaks the same NDJSON protocol as a single daemon, so clients need
   not know they are talking to a fleet.  Solves are routed by their
   canonical cache key ([Engine.prepare]) through the consistent-hash
   ring, which concentrates each key on one worker's LRU; batches go
   round-robin.  Ping/stats/metrics/shutdown are answered locally.

   The request path is hardened end to end: every request gets an
   absolute deadline on arrival; transport failures walk down the key's
   preference list (solves are idempotent — deterministic rendering,
   canonical key — so re-sending to another worker after a torn reply is
   safe); a pass that finds no worker is retried on the Backoff policy
   with deterministic jitter until the deadline; per-worker circuit
   breakers shed a failing worker before it eats the whole budget; and
   when everything is down the client gets a typed, retriable
   [unavailable] reply instead of a hang. *)

module Protocol = Service.Protocol
module Json = Service.Json
module Sockets = Service.Sockets
module Frames = Service.Frames
module Client = Service.Client
module Engine = Service.Engine
module Metrics = Obs.Metrics

type config = {
  max_frame : int;  (** request line byte limit (default 1 MiB) *)
  request_deadline : float;  (** per-request budget, seconds *)
  retry : Supervise.Backoff.policy;
  breaker : Breaker.config;
  vnodes : int;  (** ring points per worker *)
  drain_grace : float;  (** SIGTERM→SIGKILL grace on fleet shutdown *)
  log : Format.formatter;
}

let default_config () =
  {
    max_frame = 1 lsl 20;
    request_deadline = 30.0;
    retry = Supervise.Backoff.default_retry;
    breaker = Breaker.default_config;
    vnodes = 64;
    drain_grace = 5.0;
    log = Format.err_formatter;
  }

type t = {
  config : config;
  sup : Supervisor.t;
  ring : Ring.t;
  breakers : Breaker.t array;
  registry : Metrics.registry;
  forwarded : Metrics.Counter.t array;
  transport_failures : Metrics.Counter.t array;
  retries : Metrics.Counter.t;
  shed : Metrics.Counter.t;
  latency : Metrics.Histogram.t;
  rr : int Atomic.t;
  stop : bool Atomic.t;
  mutable stop_pipe : (Unix.file_descr * Unix.file_descr) option;
  slog : Obs.Log.t;  (* structured events, routed through config.log *)
}

let latency_buckets =
  [| 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0 |]

let create config sup =
  let registry = Metrics.create_registry () in
  let n = Supervisor.size sup in
  let per_worker name help =
    Array.init n (fun i ->
        Metrics.Counter.create ~registry ~labels:[ ("worker", string_of_int i) ] ~help name)
  in
  let t =
    {
      config;
      sup;
      ring = Ring.create ~vnodes:config.vnodes n;
      breakers = Array.init n (fun _ -> Breaker.create ~config:config.breaker ());
      registry;
      forwarded = per_worker "cluster_forwarded_total" "requests answered by this worker";
      transport_failures =
        per_worker "cluster_transport_failures_total" "transport-level forward failures";
      retries =
        Metrics.Counter.create ~registry ~help:"request passes retried after backoff"
          "cluster_retries_total";
      shed =
        Metrics.Counter.create ~registry ~help:"requests answered unavailable"
          "cluster_shed_total";
      latency =
        Metrics.Histogram.create ~registry ~help:"routed request latency, seconds"
          ~buckets:latency_buckets "cluster_request_seconds";
      rr = Atomic.make 0;
      stop = Atomic.make false;
      stop_pipe = None;
      slog =
        Obs.Log.create ~sink:(Obs.Log.formatter_sink config.log)
          ~comp:"router" ();
    }
  in
  Metrics.register_collector ~registry ~name:"cluster_fleet" (fun () ->
      let now = Unix.gettimeofday () in
      for i = 0 to n - 1 do
        let labels = [ ("worker", string_of_int i) ] in
        Metrics.Gauge.set
          (Metrics.Gauge.create ~registry ~labels ~help:"1 when the worker is up"
             "cluster_worker_up")
          (if Supervisor.alive sup i then 1.0 else 0.0);
        Metrics.Gauge.set
          (Metrics.Gauge.create ~registry ~labels ~help:"lifetime restarts"
             "cluster_worker_restarts")
          (float_of_int (Supervisor.restarts sup i));
        Metrics.Gauge.set
          (Metrics.Gauge.create ~registry ~labels ~help:"1 when the breaker is open"
             "cluster_breaker_open")
          (match Breaker.state t.breakers.(i) ~now with
          | Breaker.Open -> 1.0
          | Breaker.Closed | Breaker.Half_open -> 0.0)
      done);
  t

let metrics_registry t = t.registry

let record_cmd t cmd =
  Metrics.Counter.incr
    (Metrics.Counter.create ~registry:t.registry ~labels:[ ("cmd", cmd) ]
       ~help:"requests seen by the router" "cluster_requests_total")

let requests_total t cmd =
  Metrics.Counter.value
    (Metrics.Counter.create ~registry:t.registry ~labels:[ ("cmd", cmd) ]
       "cluster_requests_total")

(* ---- forwarding ---- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* A worker reply that is itself a retriable refusal (busy admission):
   the worker is healthy but shedding, so the router tries the next one.
   The substring test keeps JSON parsing off the fast path — [ok:true]
   replies almost never contain the literal. *)
let reply_is_retriable_refusal line =
  contains line "\"ok\":false"
  &&
  match Json.parse line with Ok j -> Client.reply_retriable j | Error _ -> false

(* One RPC to worker [w] over the per-connection cache.  A cached
   connection may be stale — the worker restarted since we last used
   it — so its failure earns one fresh reconnect before counting as a
   worker failure. *)
let worker_rpc t conns w line ~deadline =
  let fresh () =
    match Client.connect ~deadline (Supervisor.addr t.sup w) with
    | Error e -> Error e
    | Ok c -> (
        conns.(w) <- Some c;
        match Client.rpc_raw ~deadline c line with
        | Ok r -> Ok r
        | Error e ->
            Client.close c;
            conns.(w) <- None;
            Error e)
  in
  match conns.(w) with
  | None -> fresh ()
  | Some c -> (
      match Client.rpc_raw ~deadline c line with
      | Ok r -> Ok r
      | Error _ ->
          Client.close c;
          conns.(w) <- None;
          fresh ())

let route t conns ~id ~pref line =
  let deadline = Unix.gettimeofday () +. t.config.request_deadline in
  let seed = Ring.hash_string line land 0xffff in
  let shed reason =
    Metrics.Counter.incr t.shed;
    Obs.Log.warn t.slog ~attrs:[ ("reason", reason) ] "request_shed";
    Protocol.error_reply ~id (Protocol.Unavailable { reason })
  in
  let rec pass attempt last_reason =
    if Unix.gettimeofday () >= deadline then
      shed (Printf.sprintf "deadline exceeded (%s)" last_reason)
    else begin
      let reason = ref last_reason in
      (* one walk down the preference list; [busy] keeps the last
         shedding reply so it can be forwarded verbatim if every worker
         is alive but refusing *)
      let rec walk busy = function
        | [] -> `Exhausted busy
        | w :: rest ->
            if not (Supervisor.alive t.sup w) then begin
              reason := Printf.sprintf "worker %d %s" w
                  (Supervisor.state_to_string (Supervisor.state t.sup w));
              walk busy rest
            end
            else if not (Breaker.allow t.breakers.(w) ~now:(Unix.gettimeofday ())) then begin
              reason := Printf.sprintf "worker %d breaker open" w;
              walk busy rest
            end
            else begin
              match worker_rpc t conns w line ~deadline with
              | Ok reply ->
                  Breaker.success t.breakers.(w);
                  if reply_is_retriable_refusal reply then begin
                    reason := Printf.sprintf "worker %d busy" w;
                    walk (Some reply) rest
                  end
                  else begin
                    Metrics.Counter.incr t.forwarded.(w);
                    `Reply reply
                  end
              | Error e ->
                  Breaker.failure t.breakers.(w) ~now:(Unix.gettimeofday ());
                  Metrics.Counter.incr t.transport_failures.(w);
                  reason := Printf.sprintf "worker %d: %s" w (Client.error_message e);
                  walk busy rest
            end
      in
      match walk None pref with
      | `Reply reply -> reply
      | `Exhausted busy ->
          if Supervise.Backoff.exhausted t.config.retry ~attempt then
            match busy with Some reply -> reply | None -> shed !reason
          else begin
            Metrics.Counter.incr t.retries;
            let wait = Supervise.Backoff.delay t.config.retry ~seed ~attempt in
            let slack = deadline -. Unix.gettimeofday () in
            if slack <= 0.0 then shed !reason
            else begin
              Thread.delay (Float.min wait slack);
              pass (attempt + 1) !reason
            end
          end
    end
  in
  pass 0 "no worker tried"

(* ---- shard-aware batch splitting ----

   A batch is not one routing decision: each item has its own canonical
   key and therefore its own ring owner.  Splitting the batch into
   per-owner sub-batches sends every item to the worker whose LRU either
   already holds it or should hold it next — the same placement the
   single-solve path uses — instead of warming a random worker's cache.
   Items are reassembled in their original order, so the reply is
   byte-identical to what one daemon would produce (item replies are
   re-rendered through [Json], whose rendering is stable on its own
   output). *)

let error_part e =
  Printf.sprintf "{\"ok\":false,\"error\":%s}" (Json.render (Protocol.error_json e))

(* every item of a failed sub-forward inherits the forward's error
   object, so the client sees the same typed, retriable refusal it would
   see for a single solve *)
let failed_forward_part reply_line =
  match Json.parse reply_line with
  | Ok json -> (
      match Json.member "error" json with
      | Some e -> Printf.sprintf "{\"ok\":false,\"error\":%s}" (Json.render e)
      | None -> error_part (Protocol.Internal "sub-batch forward produced no error object"))
  | Error _ -> error_part (Protocol.Internal "sub-batch forward produced an unparsable reply")

let route_batch t conns ~id ?trace items =
  let n = List.length items in
  let parts = Array.make n "" in
  (* group decodable items by ring owner, remembering original slots *)
  let groups = Hashtbl.create 8 in
  List.iteri
    (fun i item ->
      match item with
      | Error e -> parts.(i) <- error_part e
      | Ok q -> (
          match Engine.prepare q with
          | Error msg -> parts.(i) <- error_part (Protocol.Bad_request msg)
          | Ok prepared ->
              let key = prepared.Engine.key in
              let owner = Ring.lookup t.ring key in
              let tail = try Hashtbl.find groups owner with Not_found -> [] in
              Hashtbl.replace groups owner ((i, q, key) :: tail)))
    items;
  Hashtbl.iter
    (fun _owner rev_group ->
      let group = List.rev rev_group in
      let sub_line =
        Json.render
          (Json.Obj
             ([
                ("v", Json.Int Protocol.version);
                ("cmd", Json.String "batch");
              ]
             (* each sub-batch is a child of the incoming trace: same
                trace id, its own span id *)
             @ (match trace with
               | Some tr ->
                   [ Protocol.obs_field ~trace:tr ~span:(Obs.Trace.fresh_id ()) ]
               | None -> [])
             @ [
                 ( "requests",
                   Json.List (List.map (fun (_, q, _) -> Protocol.query_json q) group) );
               ]))
      in
      (* the owner's full fallback order: first key's preference list
         starts at the shared owner by construction *)
      let _, _, first_key = List.hd group in
      let pref = Ring.preference t.ring first_key in
      let reply = route t conns ~id:None ~pref sub_line in
      let sub_results =
        match Json.parse reply with
        | Ok json when Client.reply_ok json -> (
            match Option.bind (Client.reply_result json) (Json.member "results") with
            | Some (Json.List rs) when List.length rs = List.length group -> Some rs
            | _ -> None)
        | Ok _ -> (
            (* typed refusal from the worker or the shed path *)
            List.iter (fun (i, _, _) -> parts.(i) <- failed_forward_part reply) group;
            None)
        | Error _ ->
            List.iter
              (fun (i, _, _) ->
                parts.(i) <- error_part (Protocol.Internal "unparsable sub-batch reply"))
              group;
            None
      in
      match sub_results with
      | Some rs ->
          List.iter2 (fun (i, _, _) r -> parts.(i) <- Json.render r) group rs
      | None -> (
          (* count mismatch on an ok reply: per-item internal errors *)
          match Json.parse reply with
          | Ok json when Client.reply_ok json ->
              List.iter
                (fun (i, _, _) ->
                  if parts.(i) = "" then
                    parts.(i) <- error_part (Protocol.Internal "sub-batch result count mismatch"))
                group
          | _ -> ()))
    groups;
  let result =
    Printf.sprintf "{\"count\":%d,\"results\":[%s]}" n
      (String.concat "," (Array.to_list parts))
  in
  Protocol.ok_reply ~id ~result ()

(* ---- the protocol surface ---- *)

let stats_json t =
  let now = Unix.gettimeofday () in
  let n = Supervisor.size t.sup in
  Json.Obj
    [
      ("role", Json.String "router");
      ( "workers",
        Json.List
          (List.init n (fun i ->
               Json.Obj
                 [
                   ("index", Json.Int i);
                   ("addr", Json.String (Protocol.addr_to_string (Supervisor.addr t.sup i)));
                   ("state", Json.String (Supervisor.state_to_string (Supervisor.state t.sup i)));
                   ( "breaker",
                     Json.String (Breaker.state_to_string (Breaker.state t.breakers.(i) ~now)) );
                   ("restarts", Json.Int (Supervisor.restarts t.sup i));
                   ("forwarded", Json.Int (Metrics.Counter.value t.forwarded.(i)));
                   ( "transport_failures",
                     Json.Int (Metrics.Counter.value t.transport_failures.(i)) );
                 ])) );
      ("retries", Json.Int (Metrics.Counter.value t.retries));
      ("shed", Json.Int (Metrics.Counter.value t.shed));
      ("routed", Json.Int (Metrics.Histogram.count t.latency));
    ]

(* ---- fleet metrics federation ----

   The router answers [metrics fleet:true] by scraping every Up worker's
   own exposition over the wire (the same [metrics] command a client
   would send) and merging the texts under a [worker="i"] label after its
   own registries.  Down or unresponsive workers become comment lines,
   so a partial fleet still yields a well-formed exposition. *)

let fleet_metrics t conns =
  let head =
    Metrics.to_prometheus t.registry ^ Metrics.to_prometheus Metrics.default
  in
  let deadline =
    Unix.gettimeofday () +. Float.min 2.0 t.config.request_deadline
  in
  let n = Supervisor.size t.sup in
  let sections = ref [] in
  let skipped = Buffer.create 64 in
  let skip w why =
    Buffer.add_string skipped (Printf.sprintf "# worker %d skipped: %s\n" w why)
  in
  for w = 0 to n - 1 do
    if not (Supervisor.alive t.sup w) then
      skip w (Supervisor.state_to_string (Supervisor.state t.sup w))
    else
      match worker_rpc t conns w "{\"v\":1,\"cmd\":\"metrics\"}" ~deadline with
      | Error e -> skip w (Client.error_message e)
      | Ok reply -> (
          match Json.parse reply with
          | Ok json when Client.reply_ok json -> (
              match
                Option.bind (Client.reply_result json) (fun r ->
                    Option.bind (Json.member "text" r) Json.to_string_opt)
              with
              | Some text -> sections := (string_of_int w, text) :: !sections
              | None -> skip w "reply carried no text field")
          | Ok _ -> skip w "worker refused the scrape"
          | Error _ -> skip w "unparsable reply")
  done;
  Obs.Exposition.merge ~head ~label:"worker" (List.rev !sections)
  ^ Buffer.contents skipped

let respond t conns line =
  let err id e = (Protocol.error_reply ~id e, `Continue) in
  match Json.parse line with
  | Error msg ->
      record_cmd t "invalid";
      err None (Protocol.Parse_error msg)
  | Ok json -> (
      match Protocol.parse_request json with
      | Error (id, e) ->
          record_cmd t "invalid";
          err id e
      | Ok (id, request) -> (
          (* Trace-context propagation: when tracing is on, adopt the
             client's envelope or mint a fresh one and splice it into the
             forwarded bytes; when tracing is off the line is forwarded
             verbatim, untouched. *)
          let traced line =
            if not (Obs.Trace.enabled ()) then (line, None)
            else
              match Protocol.obs_context json with
              | Some (trace, _) -> (line, Some trace)
              | None ->
                  let trace = Obs.Trace.fresh_id () in
                  ( Protocol.with_obs line ~trace ~span:(Obs.Trace.fresh_id ()),
                    Some trace )
          in
          let route_traced ~name ~pref line =
            let line, trace = traced line in
            let run () = route t conns ~id ~pref line in
            match trace with
            | None -> run ()
            | Some tr ->
                Obs.Trace.span name (fun () ->
                    Obs.Trace.add_attr "trace_id" tr;
                    run ())
          in
          match request with
          | Protocol.Ping ->
              record_cmd t "ping";
              let result =
                Json.render
                  (Json.Obj
                     [
                       ("pong", Json.Bool true);
                       ("version", Json.Int Protocol.version);
                       ("role", Json.String "router");
                       ("workers", Json.Int (Supervisor.size t.sup));
                     ])
              in
              (Protocol.ok_reply ~id ~result (), `Continue)
          | Protocol.Stats ->
              record_cmd t "stats";
              (Protocol.ok_reply ~id ~result:(Json.render (stats_json t)) (), `Continue)
          | Protocol.Metrics { fleet } ->
              record_cmd t "metrics";
              let text =
                if fleet then fleet_metrics t conns
                else Metrics.to_prometheus t.registry
              in
              let result =
                Json.render
                  (Json.Obj
                     [ ("format", Json.String "prometheus-text"); ("text", Json.String text) ])
              in
              (Protocol.ok_reply ~id ~result (), `Continue)
          | Protocol.Shutdown ->
              record_cmd t "shutdown";
              let result = Json.render (Json.Obj [ ("stopping", Json.Bool true) ]) in
              (Protocol.ok_reply ~id ~result (), `Shutdown)
          | Protocol.Solve q -> (
              record_cmd t "solve";
              match Engine.prepare q with
              | Error msg -> err id (Protocol.Bad_request msg)
              | Ok prepared ->
                  let pref = Ring.preference t.ring prepared.Engine.key in
                  let t0 = Unix.gettimeofday () in
                  let reply = route_traced ~name:"router:solve" ~pref line in
                  Metrics.Histogram.observe t.latency (Unix.gettimeofday () -. t0);
                  (reply, `Continue))
          | Protocol.Solve_multi q -> (
              record_cmd t "solve_multi";
              match Engine.prepare_multi q with
              | Error msg -> err id (Protocol.Bad_request msg)
              | Ok prepared ->
                  let pref = Ring.preference t.ring prepared.Engine.m_key in
                  let t0 = Unix.gettimeofday () in
                  let reply = route_traced ~name:"router:solve_multi" ~pref line in
                  Metrics.Histogram.observe t.latency (Unix.gettimeofday () -. t0);
                  (reply, `Continue))
          | Protocol.Admit q -> (
              record_cmd t "admit";
              match Engine.prepare_multi q with
              | Error msg -> err id (Protocol.Bad_request msg)
              | Ok prepared ->
                  let pref = Ring.preference t.ring prepared.Engine.m_key in
                  let t0 = Unix.gettimeofday () in
                  let reply = route_traced ~name:"router:admit" ~pref line in
                  Metrics.Histogram.observe t.latency (Unix.gettimeofday () -. t0);
                  (reply, `Continue))
          | Protocol.Batch items ->
              record_cmd t "batch";
              let trace =
                if not (Obs.Trace.enabled ()) then None
                else
                  match Protocol.obs_context json with
                  | Some (tr, _) -> Some tr
                  | None -> Some (Obs.Trace.fresh_id ())
              in
              let t0 = Unix.gettimeofday () in
              let reply =
                match trace with
                | None -> route_batch t conns ~id items
                | Some tr ->
                    Obs.Trace.span "router:batch" (fun () ->
                        Obs.Trace.add_attr "trace_id" tr;
                        route_batch t conns ~id ~trace:tr items)
              in
              Metrics.Histogram.observe t.latency (Unix.gettimeofday () -. t0);
              (reply, `Continue)))

(* ---- the socket loop (mirrors Server.serve) ---- *)

let request_stop t =
  if not (Atomic.exchange t.stop true) then
    match t.stop_pipe with
    | Some (_, wr) -> ( try ignore (Unix.write_substring wr "x" 0 1) with Unix.Unix_error _ -> ())
    | None -> ()

let rec wait_readable fd stop_rd =
  match Unix.select [ fd; stop_rd ] [] [] (-1.0) with
  | readable, _, _ -> List.mem fd readable
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable fd stop_rd

let send fd line = match Sockets.send_line fd line with Ok () -> true | Error _ -> false

let conn_loop t stop_rd fd =
  let chunk_len = 4096 in
  let chunk = Bytes.create chunk_len in
  let frames = Frames.create ~max_frame:t.config.max_frame in
  let conns = Array.make (Supervisor.size t.sup) None in
  let alive = ref true in
  let on_event = function
    | Frames.Oversized ->
        if
          not
            (send fd
               (Protocol.error_reply ~id:None
                  (Protocol.Oversized_frame { limit = t.config.max_frame })))
        then alive := false
    | Frames.Line line ->
        (if String.trim line <> "" then begin
           let reply, k = respond t conns line in
           if not (send fd reply) then alive := false;
           match k with
           | `Shutdown ->
               request_stop t;
               alive := false
           | `Continue -> ()
         end);
        if Atomic.get t.stop then alive := false
  in
  while !alive do
    if not (wait_readable fd stop_rd) then alive := false
    else
      match Unix.read fd chunk 0 chunk_len with
      | 0 ->
          if Frames.pending frames then
            ignore
              (send fd
                 (Protocol.error_reply ~id:None
                    (Protocol.Parse_error "truncated line: no newline before end of stream")));
          alive := false
      | n -> Frames.feed frames chunk n on_event
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> alive := false
  done;
  Array.iter (function Some c -> Client.close c | None -> ()) conns;
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve t addr =
  Sockets.ignore_sigpipe ();
  let stop_rd, stop_wr = Unix.pipe () in
  t.stop_pipe <- Some (stop_rd, stop_wr);
  if Atomic.get t.stop then ignore (Unix.write_substring stop_wr "x" 0 1);
  let on_signal = Sys.Signal_handle (fun _ -> request_stop t) in
  let old_term = Sys.signal Sys.sigterm on_signal in
  let old_int = Sys.signal Sys.sigint on_signal in
  let domain =
    match addr with Protocol.Unix_domain _ -> Unix.PF_UNIX | Protocol.Tcp _ -> Unix.PF_INET
  in
  let listen_fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  let cleanup_path () =
    match addr with
    | Protocol.Unix_domain path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Protocol.Tcp _ -> ()
  in
  let finally () =
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    cleanup_path ();
    t.stop_pipe <- None;
    (try Unix.close stop_rd with Unix.Unix_error _ -> ());
    (try Unix.close stop_wr with Unix.Unix_error _ -> ());
    ignore (Sys.signal Sys.sigterm old_term);
    ignore (Sys.signal Sys.sigint old_int)
  in
  Fun.protect ~finally @@ fun () ->
  (match addr with Protocol.Tcp _ -> Unix.setsockopt listen_fd Unix.SO_REUSEADDR true | _ -> ());
  cleanup_path ();
  Unix.bind listen_fd (Protocol.sockaddr_of addr);
  Unix.listen listen_fd 64;
  Obs.Log.info t.slog
    ~attrs:
      [
        ("addr", Protocol.addr_to_string addr);
        ("workers", string_of_int (Supervisor.size t.sup));
      ]
    "router_listening";
  let conns_mutex = Mutex.create () in
  let conns = ref [] in
  let rec accept_loop () =
    if not (Atomic.get t.stop) then
      if wait_readable listen_fd stop_rd then begin
        (match Sockets.accept listen_fd with
        | Ok (fd, _) ->
            let th = Thread.create (fun () -> conn_loop t stop_rd fd) () in
            Mutex.lock conns_mutex;
            conns := th :: !conns;
            Mutex.unlock conns_mutex
        | Error _ -> ());
        accept_loop ()
      end
  in
  accept_loop ();
  Mutex.lock conns_mutex;
  let threads = !conns in
  Mutex.unlock conns_mutex;
  Obs.Log.info t.slog
    ~attrs:[ ("connections", string_of_int (List.length threads)) ]
    "draining";
  List.iter Thread.join threads;
  Obs.Log.info t.slog "fleet_stopping";
  Supervisor.shutdown ~grace:t.config.drain_grace t.sup
