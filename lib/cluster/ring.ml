(* Consistent hashing of canonical solve keys onto workers.

   Workers are integers [0..n-1]; each contributes [vnodes] points on a
   hash circle.  A key is served by the first point clockwise from its
   own hash, and its preference list is the sequence of distinct workers
   met walking onward — the router falls down that list when a worker is
   dead or shedding, so a key's requests concentrate on one worker's LRU
   cache while any worker can serve it correctly (solves are
   deterministic and keyed by canonical instance).

   The hash is a fixed splitmix-style avalanche, not [Hashtbl.hash]: the
   placement must be identical across processes and runs so the chaos
   harness can reason about which worker owns which key. *)

type t = { points : (int * int) array; workers : int }

let mix h =
  let h = h lxor (h lsr 30) in
  let h = h * 0x4be98134a5976fd3 in
  let h = h lxor (h lsr 29) in
  let h = h * 0x3bd6e995bd9d65 in
  h lxor (h lsr 32)

let hash_string s =
  let h = ref 0x27d4eb2f165667 in
  String.iter (fun c -> h := mix ((!h * 0x100000001b3) + Char.code c)) s;
  mix !h land max_int

let create ?(vnodes = 64) workers =
  if workers <= 0 then invalid_arg "Ring.create: need at least one worker";
  if vnodes <= 0 then invalid_arg "Ring.create: need at least one virtual node";
  let points =
    Array.init (workers * vnodes) (fun i ->
        let w = i / vnodes and v = i mod vnodes in
        (hash_string (Printf.sprintf "worker-%d#%d" w v), w))
  in
  Array.sort compare points;
  { points; workers }

let size t = t.workers

(* index of the first point with hash >= h, wrapping to 0 past the end *)
let successor t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) < h then lo := mid + 1 else hi := mid
  done;
  if !lo = n then 0 else !lo

let lookup t key = snd t.points.(successor t (hash_string key))

let preference t key =
  let n = Array.length t.points in
  let start = successor t (hash_string key) in
  let seen = Array.make t.workers false in
  let order = ref [] in
  let found = ref 0 in
  let i = ref 0 in
  while !found < t.workers && !i < n do
    let w = snd t.points.((start + !i) mod n) in
    if not seen.(w) then begin
      seen.(w) <- true;
      order := w :: !order;
      incr found
    end;
    incr i
  done;
  List.rev !order
