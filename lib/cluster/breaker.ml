(* Per-worker circuit breaker.

   Closed counts consecutive failures; at the threshold it opens and the
   router stops offering the worker requests for [cooldown] seconds.
   The first call after the cooldown becomes the half-open probe: it is
   allowed through alone, and its outcome decides between closing again
   and another full cooldown.  Time is an explicit argument everywhere
   so tests drive the clock. *)

type config = { failures : int; cooldown : float }

let default_config = { failures = 5; cooldown = 1.0 }

let validate c =
  if c.failures < 1 then invalid_arg "Breaker: failure threshold must be at least 1";
  if c.cooldown < 0.0 then invalid_arg "Breaker: cooldown must be non-negative";
  c

type state = Closed | Open | Half_open

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"

type t = {
  config : config;
  lock : Mutex.t;
  mutable st : state;
  mutable consecutive : int;  (* failures since the last success *)
  mutable until : float;  (* when Open stops refusing *)
  mutable probing : bool;  (* a half-open probe is in flight *)
  mutable opened : int;  (* times the breaker tripped, for stats *)
}

let create ?(config = default_config) () =
  let config = validate config in
  {
    config;
    lock = Mutex.create ();
    st = Closed;
    consecutive = 0;
    until = 0.0;
    probing = false;
    opened = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let state t ~now =
  locked t @@ fun () ->
  match t.st with Open when now >= t.until -> Half_open | s -> s

let allow t ~now =
  locked t @@ fun () ->
  match t.st with
  | Closed -> true
  | Open when now >= t.until ->
      t.st <- Half_open;
      t.probing <- true;
      true
  | Open -> false
  | Half_open ->
      if t.probing then false
      else begin
        t.probing <- true;
        true
      end

let success t =
  locked t @@ fun () ->
  t.st <- Closed;
  t.consecutive <- 0;
  t.probing <- false

let trip t ~now =
  t.st <- Open;
  t.until <- now +. t.config.cooldown;
  t.probing <- false;
  t.opened <- t.opened + 1

let failure t ~now =
  locked t @@ fun () ->
  t.consecutive <- t.consecutive + 1;
  match t.st with
  | Half_open -> trip t ~now
  | Closed when t.consecutive >= t.config.failures -> trip t ~now
  | Closed | Open -> ()

let opened_total t = locked t @@ fun () -> t.opened
