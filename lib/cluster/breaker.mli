(** Per-worker circuit breaker: after [failures] consecutive failures
    the worker is shed for [cooldown] seconds, then offered a single
    half-open probe whose outcome decides between recovery and another
    cooldown.

    Every operation takes the clock as an explicit [~now] argument
    (absolute seconds, {!Unix.gettimeofday} in production) so tests can
    replay exact scenarios without sleeping. *)

type config = { failures : int; cooldown : float }

val default_config : config
(** 5 consecutive failures, 1 s cooldown. *)

type state = Closed | Open | Half_open

val state_to_string : state -> string

type t

val create : ?config:config -> unit -> t

val state : t -> now:float -> state

val allow : t -> now:float -> bool
(** Whether a request may be offered to the worker now.  In [Half_open]
    exactly one caller is allowed through as the probe; the rest are
    refused until {!success} or {!failure} settles it. *)

val success : t -> unit
(** The offered request completed: close and reset. *)

val failure : t -> now:float -> unit
(** The offered request failed at the transport level.  Failing the
    half-open probe, or the [failures]-th consecutive time, opens the
    breaker until [now + cooldown]. *)

val opened_total : t -> int
(** How many times the breaker has tripped, for stats. *)
