(** The cluster front door: an NDJSON endpoint indistinguishable from a
    single query daemon, backed by a supervised fleet.

    Solves route by their canonical cache key ({!Service.Engine.prepare})
    over a consistent-hash ring, concentrating each key on one worker's
    LRU; batches go round-robin.  Transport failures fall down the key's
    preference list (solves are idempotent, so re-sending after a torn
    reply is safe), whole passes retry on the Backoff policy until the
    per-request deadline, per-worker circuit breakers shed failing
    workers, and when no worker can answer the client gets a typed
    retriable [unavailable] reply, never a hang.

    Observability: [metrics] with ["fleet":true] federates every Up
    worker's exposition under a [worker="i"] label behind the router's
    own; when {!Obs.Trace} is enabled the router adopts (or mints) a
    trace context per request, records a [router:*] span tagged with the
    trace id, and splices the context into the forwarded bytes so worker
    spans join the same trace — with tracing off, client bytes are
    forwarded verbatim, untouched. *)

type config = {
  max_frame : int;  (** request line byte limit (default 1 MiB) *)
  request_deadline : float;  (** per-request budget, seconds (default 30) *)
  retry : Supervise.Backoff.policy;  (** pass-level retry schedule *)
  breaker : Breaker.config;
  vnodes : int;  (** ring points per worker (default 64) *)
  drain_grace : float;  (** SIGTERM→SIGKILL grace on fleet shutdown *)
  log : Format.formatter;
}

val default_config : unit -> config

type t

val create : config -> Supervisor.t -> t
(** The router does not own the supervisor's lifetime until {!serve}
    drains: creating a router is side-effect-free beyond its metric
    registry. *)

val metrics_registry : t -> Obs.Metrics.registry

val requests_total : t -> string -> int
(** Requests seen for one [cmd] label, for tests and stats. *)

val stats_json : t -> Service.Json.t

val respond : t -> Service.Client.t option array -> string -> string * [ `Continue | `Shutdown ]
(** One request line in, one reply line out, over a caller-owned
    per-connection array of cached worker connections
    ([Array.make (Supervisor.size sup) None]).  Exposed so routing
    semantics are testable without the router's own socket. *)

val request_stop : t -> unit
(** Ask a running {!serve} to drain; idempotent, signal-safe. *)

val serve : t -> Service.Protocol.addr -> unit
(** Binds and serves until {!request_stop}, SIGTERM/SIGINT or a
    [shutdown] request; then drains client connections, SIGTERMs the
    fleet through {!Supervisor.shutdown} and returns. *)
