(* Worker fleet supervision.

   Each worker is a child process running the query daemon on its own
   socket.  One monitor thread owns the lifecycle: it reaps exits
   (waitpid WNOHANG), schedules restarts on the Backoff policy, probes
   health with deadline-bounded pings, and escalates a wedged worker
   (heartbeat missed, or stuck in Starting past the start deadline) to
   SIGKILL so the reap-and-restart path handles it like any crash.

   State machine per slot:

     Starting --ping ok--> Up --exit/missed beat--> Restarting --delay--> Starting
                                                        \--attempts exhausted--> Dead

   Attempts reset only on a heartbeat of an Up worker — a worker that
   keeps dying before its first full heartbeat period burns through the
   restart budget and is marked Dead, which is what distinguishes a
   crash loop from occasional chaos. *)

type spec = { argv : string array; env : string array; addr : Service.Protocol.addr }

type state = Starting | Up | Restarting of { attempt : int; until : float } | Dead

let state_to_string = function
  | Starting -> "starting"
  | Up -> "up"
  | Restarting _ -> "restarting"
  | Dead -> "dead"

type slot = {
  spec : spec;
  mutable pid : int option;
  mutable st : state;
  mutable attempts : int;  (* restarts consumed since the last healthy beat *)
  mutable spawned_at : float;
  mutable last_beat : float;
  mutable restarts : int;  (* lifetime restarts, for stats *)
}

type t = {
  slots : slot array;
  backoff : Supervise.Backoff.policy;
  heartbeat_period : float;
  heartbeat_deadline : float;
  start_deadline : float;
  slog : Obs.Log.t;  (* structured events, routed through the ?log formatter *)
  lock : Mutex.t;
  stopping : bool Atomic.t;
  mutable monitor : Thread.t option;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let spawn t i slot =
  let now = Unix.gettimeofday () in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let pid =
    Fun.protect
      ~finally:(fun () -> Unix.close null)
      (fun () ->
        Unix.create_process_env slot.spec.argv.(0) slot.spec.argv slot.spec.env null Unix.stdout
          Unix.stderr)
  in
  slot.pid <- Some pid;
  slot.st <- Starting;
  slot.spawned_at <- now;
  Obs.Log.info t.slog
    ~attrs:
      [
        ("worker", string_of_int i);
        ("pid", string_of_int pid);
        ("addr", Service.Protocol.addr_to_string slot.spec.addr);
      ]
    "worker_spawn"

let ping addr ~deadline =
  match Service.Client.connect ~deadline addr with
  | Error _ -> false
  | Ok client ->
      Fun.protect
        ~finally:(fun () -> Service.Client.close client)
        (fun () ->
          match Service.Client.ping ~deadline client with
          | Ok reply -> Service.Client.reply_ok reply
          | Error _ -> false)

let kill_slot slot signal =
  match slot.pid with
  | Some pid -> ( try Unix.kill pid signal with Unix.Unix_error _ -> ())
  | None -> ()

(* One monitor pass.  State transitions happen under the lock; the ping
   (which can block up to its deadline) runs outside it so readers are
   never stalled behind a probe. *)
let tick t =
  let now = Unix.gettimeofday () in
  (* 1. reap exits and schedule restarts *)
  Array.iteri
    (fun i slot ->
      match slot.pid with
      | None -> ()
      | Some pid -> (
          match Unix.waitpid [ Unix.WNOHANG ] pid with
          | 0, _ -> ()
          | _, status ->
              locked t (fun () ->
                  slot.pid <- None;
                  if Atomic.get t.stopping then slot.st <- Dead
                  else begin
                    let attempt = slot.attempts in
                    if Supervise.Backoff.exhausted t.backoff ~attempt then begin
                      slot.st <- Dead;
                      Obs.Log.error t.slog
                        ~attrs:
                          [ ("worker", string_of_int i); ("attempts", string_of_int attempt) ]
                        "worker_dead"
                    end
                    else begin
                      let wait = Supervise.Backoff.delay t.backoff ~seed:i ~attempt in
                      slot.st <- Restarting { attempt; until = now +. wait };
                      slot.attempts <- attempt + 1;
                      slot.restarts <- slot.restarts + 1;
                      Obs.Log.warn t.slog
                        ~attrs:
                          [
                            ("worker", string_of_int i);
                            ( "status",
                              match status with
                              | Unix.WEXITED c -> Printf.sprintf "exit %d" c
                              | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
                              | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s );
                            ("attempt", string_of_int (attempt + 1));
                            ("wait_s", Printf.sprintf "%.3f" wait);
                          ]
                        "worker_exit"
                    end
                  end)
          | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
              locked t (fun () ->
                  slot.pid <- None;
                  slot.st <- Dead)))
    t.slots;
  (* 2. spawn due restarts *)
  Array.iteri
    (fun i slot ->
      match slot.st with
      | Restarting { until; _ } when now >= until && not (Atomic.get t.stopping) ->
          spawn t i slot
      | _ -> ())
    t.slots;
  (* 3. health: promote Starting workers, heartbeat Up workers *)
  Array.iteri
    (fun i slot ->
      match slot.st with
      | Starting ->
          if ping slot.spec.addr ~deadline:(now +. 0.25) then begin
            locked t (fun () ->
                if slot.st = Starting then begin
                  slot.st <- Up;
                  slot.last_beat <- Unix.gettimeofday ()
                end);
            Obs.Log.info t.slog ~attrs:[ ("worker", string_of_int i) ] "worker_up"
          end
          else if now -. slot.spawned_at > t.start_deadline then begin
            Obs.Log.warn t.slog
              ~attrs:
                [
                  ("worker", string_of_int i);
                  ("deadline_s", Printf.sprintf "%.3g" t.start_deadline);
                ]
              "worker_start_timeout";
            kill_slot slot Sys.sigkill
          end
      | Up when now -. slot.last_beat >= t.heartbeat_period ->
          if ping slot.spec.addr ~deadline:(now +. t.heartbeat_deadline) then
            locked t (fun () ->
                slot.last_beat <- Unix.gettimeofday ();
                slot.attempts <- 0)
          else begin
            Obs.Log.warn t.slog
              ~attrs:[ ("worker", string_of_int i) ]
              "worker_heartbeat_missed";
            kill_slot slot Sys.sigkill
          end
      | _ -> ())
    t.slots

let monitor_loop t =
  while not (Atomic.get t.stopping) do
    (try tick t with _ -> ());
    Thread.delay 0.05
  done

let start ?(backoff = Supervise.Backoff.default_restart) ?(heartbeat_period = 1.0)
    ?(heartbeat_deadline = 1.0) ?(start_deadline = 10.0) ?(log = Format.err_formatter) specs =
  if Array.length specs = 0 then invalid_arg "Supervisor.start: need at least one worker";
  let now = Unix.gettimeofday () in
  let t =
    {
      slots =
        Array.map
          (fun spec ->
            {
              spec;
              pid = None;
              st = Starting;
              attempts = 0;
              spawned_at = now;
              last_beat = now;
              restarts = 0;
            })
          specs;
      backoff;
      heartbeat_period;
      heartbeat_deadline;
      start_deadline;
      slog = Obs.Log.create ~sink:(Obs.Log.formatter_sink log) ~comp:"supervisor" ();
      lock = Mutex.create ();
      stopping = Atomic.make false;
      monitor = None;
    }
  in
  Array.iteri (fun i slot -> spawn t i slot) t.slots;
  t.monitor <- Some (Thread.create monitor_loop t);
  t

let size t = Array.length t.slots
let addr t i = t.slots.(i).spec.addr
let state t i = locked t @@ fun () -> t.slots.(i).st
let alive t i = locked t @@ fun () -> t.slots.(i).st = Up
let restarts t i = locked t @@ fun () -> t.slots.(i).restarts
let restarts_total t = locked t @@ fun () -> Array.fold_left (fun a s -> a + s.restarts) 0 t.slots

let wait_up ?(deadline = infinity) t =
  let rec go () =
    let all = Array.for_all (fun s -> locked t (fun () -> s.st = Up)) t.slots in
    if all then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let shutdown ?(grace = 5.0) t =
  Atomic.set t.stopping true;
  (match t.monitor with
  | Some th ->
      Thread.join th;
      t.monitor <- None
  | None -> ());
  Array.iter (fun slot -> kill_slot slot Sys.sigterm) t.slots;
  let deadline = Unix.gettimeofday () +. grace in
  let pending () =
    Array.exists
      (fun slot ->
        match slot.pid with
        | None -> false
        | Some pid -> (
            match Unix.waitpid [ Unix.WNOHANG ] pid with
            | 0, _ -> true
            | _ ->
                slot.pid <- None;
                slot.st <- Dead;
                false
            | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
                slot.pid <- None;
                slot.st <- Dead;
                false))
      t.slots
  in
  while pending () && Unix.gettimeofday () < deadline do
    Thread.delay 0.02
  done;
  (* stragglers past the grace period get SIGKILL and a blocking reap *)
  Array.iteri
    (fun i slot ->
      match slot.pid with
      | None -> ()
      | Some pid ->
          Obs.Log.warn t.slog
            ~attrs:[ ("worker", string_of_int i) ]
            "sigterm_ignored";
          kill_slot slot Sys.sigkill;
          (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
          slot.pid <- None;
          slot.st <- Dead)
    t.slots;
  Obs.Log.info t.slog
    ~attrs:[ ("restarts", string_of_int (restarts_total t)) ]
    "fleet_stop"
