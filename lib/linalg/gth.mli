(** Grassmann–Taksar–Heyman (GTH) stationary-distribution solver.

    GTH is a pivoting-free Gaussian elimination specialised to Markov
    chains: it uses only additions of non-negative quantities, which makes
    it numerically stable even for badly conditioned generators — exactly
    what the nearly-decoupled chains arising from heterogeneous mappings
    produce.  It applies verbatim to a CTMC rate matrix (the diagonal is
    ignored) and to a DTMC transition matrix. *)

val stationary : float array array -> float array
(** [stationary rates] returns the stationary distribution π (πQ = 0,
    Σπ = 1) of the irreducible chain whose off-diagonal transition rates
    (or probabilities) are [rates].  The diagonal entries are ignored.
    Raises [Invalid_argument] on a non-square input and
    [Supervise.Error.Solver_error (Numerical _)] if the
    chain is reducible (a state with no outgoing rate is reached during
    elimination). *)
