(** Minimal dense float matrices: just what the Markov machinery needs.

    Matrices are [float array array] in row-major order, always rectangular. *)

type t = float array array

val make : int -> int -> float -> t
val identity : int -> t
val dims : t -> int * int
val copy : t -> t
val transpose : t -> t
val mul : t -> t -> t
val mul_vec : t -> float array -> float array

val solve : t -> float array -> float array
(** [solve a b] solves [a x = b] by LU decomposition with partial pivoting.
    Raises [Supervise.Error.Solver_error (Numerical _)] if the matrix is
    (numerically) singular. *)

val pp : Format.formatter -> t -> unit
