(** Sparse stationary-distribution solvers for large Markov chains.

    The GTH solver is O(n³); the Young-diagram pattern chains of Theorem 3
    grow combinatorially with the replication factors, so beyond ~1500
    states we switch to iterative solvers on a sparse representation. *)

type t
(** A CTMC generator: edges accumulate in flat append-only arrays and are
    frozen on first use into compressed-sparse-row form (outgoing and
    incoming), with duplicate i → j entries merged in insertion order.
    Further [add_rate] calls simply invalidate the frozen view. *)

val create : int -> t
(** [create n] is an empty generator over states [0..n-1]. *)

val add_rate : t -> int -> int -> float -> unit
(** [add_rate t i j r] adds rate [r] to the transition i → j (i ≠ j, r > 0). *)

val size : t -> int

val nnz : t -> int
(** Number of inserted edges (before duplicate merging). *)

val exit_rate : t -> int -> float

val outgoing : t -> int -> (int * float) list
(** Merged outgoing transitions of a state, in first-insertion order. *)

val rate : t -> int -> int -> float
(** Merged rate of i → j; 0 if absent. *)

val iter_outgoing : t -> int -> (int -> float -> unit) -> unit
(** [iter_outgoing t i f] calls [f j r] for every merged edge i → j without
    allocating. *)

val to_dense : t -> float array array
(** Dense [n × n] rate matrix built straight from the frozen CSR (zero
    diagonal); input to the GTH solver. *)

val stationary_gauss_seidel : ?tol:float -> ?max_sweeps:int -> t -> float array
(** Gauss–Seidel iteration on the balance equations
    π_j · exit_j = Σ_i π_i q_{ij}, renormalised each sweep.  Converges for
    irreducible chains; raises [Failure] if the tolerance (default 1e-12 on
    the L1 residual) is not met within [max_sweeps] (default 100_000).
    The residual — itself a full sweep — is only evaluated every 8th
    sweep. *)

val stationary_power : ?tol:float -> ?max_iters:int -> t -> float array
(** Power iteration on the uniformised chain; slower but useful as an
    independent cross-check of the Gauss–Seidel result. *)
