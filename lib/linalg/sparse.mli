(** Sparse stationary-distribution solvers for large Markov chains.

    The GTH solver is O(n³); the Young-diagram pattern chains of Theorem 3
    grow combinatorially with the replication factors, so beyond ~1500
    states we switch to iterative solvers on a sparse representation. *)

type t
(** A CTMC generator: edges accumulate in flat append-only arrays and are
    frozen on first use into compressed-sparse-row form (outgoing and
    incoming), with duplicate i → j entries merged in insertion order.
    Further [add_rate] calls simply invalidate the frozen view. *)

val create : int -> t
(** [create n] is an empty generator over states [0..n-1]. *)

val add_rate : t -> int -> int -> float -> unit
(** [add_rate t i j r] adds rate [r] to the transition i → j (i ≠ j, r > 0). *)

val size : t -> int

val nnz : t -> int
(** Number of inserted edges (before duplicate merging). *)

val exit_rate : t -> int -> float

val outgoing : t -> int -> (int * float) list
(** Merged outgoing transitions of a state, in first-insertion order. *)

val rate : t -> int -> int -> float
(** Merged rate of i → j; 0 if absent. *)

val iter_outgoing : t -> int -> (int -> float -> unit) -> unit
(** [iter_outgoing t i f] calls [f j r] for every merged edge i → j without
    allocating. *)

val to_dense : t -> float array array
(** Dense [n × n] rate matrix built straight from the frozen CSR (zero
    diagonal); input to the GTH solver. *)

type stats = { sweeps : int; residual : float }
(** What an iterative solve achieved: sweeps executed and the L1 residual
    of π·Q at the final iterate — the raw material of a result's
    provenance record. *)

val stationary_gauss_seidel :
  ?budget:Supervise.Budget.t -> ?tol:float -> ?max_sweeps:int -> t -> float array
(** Gauss–Seidel iteration on the balance equations
    π_j · exit_j = Σ_i π_i q_{ij}, renormalised each sweep.  Converges for
    irreducible chains; raises [Supervise.Error.Solver_error
    (No_convergence _)] — carrying the sweeps spent and the residual
    achieved — if the tolerance (default 1e-12 on the L1 residual) is not
    met within [max_sweeps] (default 100_000).  The residual — itself a
    full sweep — is only evaluated every 8th sweep, and the [budget]'s
    wall deadline is polled at the same cadence ([Budget_exhausted] when
    it fires); the budget's sweep ceiling tightens [max_sweeps]. *)

val stationary_gauss_seidel_stats :
  ?budget:Supervise.Budget.t -> ?tol:float -> ?max_sweeps:int -> t -> float array * stats
(** As {!stationary_gauss_seidel}, also reporting the sweep count and
    achieved residual of the successful solve. *)

val stationary_power :
  ?budget:Supervise.Budget.t -> ?tol:float -> ?max_iters:int -> t -> float array
(** Power iteration on the uniformised chain; slower but useful as an
    independent cross-check of the Gauss–Seidel result.  Failure and
    budget behaviour as in {!stationary_gauss_seidel}. *)

val stationary_power_stats :
  ?budget:Supervise.Budget.t -> ?tol:float -> ?max_iters:int -> t -> float array * stats
(** As {!stationary_power}, also reporting the iteration count and the L1
    residual of the final iterate (one extra residual pass).

    Sweeps of chains larger than 2¹⁵ states run on a cache-blocked edge
    ordering (edges grouped by 8192-column destination blocks, row-major
    within a block) — bit-identical results, memory-bandwidth-bound
    scatters. *)

val stationary_arnoldi :
  ?budget:Supervise.Budget.t -> ?tol:float -> ?restart:int -> ?max_matvecs:int -> t -> float array
(** Restarted Arnoldi on the uniformised chain P = I + Q/λ: an [restart]-
    dimensional (default 30) Krylov basis is built by modified
    Gram–Schmidt, the stationary direction is approximated by the Ritz
    vector of the dominant eigenpair of the small Hessenberg projection,
    clamped to the nonnegative cone and L1-normalised, and the process
    restarts from it until the L1 residual ‖πQ‖₁ meets [tol] (default
    1e-10).  Each basis extension is one matvec, counted against
    [max_matvecs] (default 100_000) and against the [budget]'s sweep
    ceiling; its wall deadline is polled at the usual cadence.  Raises
    [No_convergence] with matvecs spent and residual achieved, like the
    other iterative solvers.  Sweeps share the blocked-CSR path of
    {!stationary_power}. *)

val stationary_arnoldi_stats :
  ?budget:Supervise.Budget.t ->
  ?tol:float ->
  ?restart:int ->
  ?max_matvecs:int ->
  t ->
  float array * stats
(** As {!stationary_arnoldi}, also reporting matvecs spent and the achieved
    residual. *)
