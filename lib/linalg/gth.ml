let stationary rates =
  let n = Array.length rates in
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg "Gth.stationary: non-square matrix")
    rates;
  if n = 0 then [||]
  else if n = 1 then [| 1.0 |]
  else begin
    let m = Array.map Array.copy rates in
    for i = 0 to n - 1 do
      m.(i).(i) <- 0.0
    done;
    (* Eliminate states n-1 .. 1.  After step k, state k is expressed as a
       linear combination of states < k via the (folded) column m.(i).(k). *)
    for k = n - 1 downto 1 do
      let s = ref 0.0 in
      for j = 0 to k - 1 do
        s := !s +. m.(k).(j)
      done;
      if !s <= 0.0 then
        Supervise.Error.raise_
          (Supervise.Error.Numerical
             {
               what = Printf.sprintf "reducible chain: no outflow mass eliminating state %d" k;
               where = "Gth.stationary";
             });
      for i = 0 to k - 1 do
        m.(i).(k) <- m.(i).(k) /. !s
      done;
      for i = 0 to k - 1 do
        let w = m.(i).(k) in
        if w > 0.0 then
          for j = 0 to k - 1 do
            if j <> i then m.(i).(j) <- m.(i).(j) +. (w *. m.(k).(j))
          done
      done
    done;
    let pi = Array.make n 0.0 in
    pi.(0) <- 1.0;
    for j = 1 to n - 1 do
      let acc = ref 0.0 in
      for i = 0 to j - 1 do
        acc := !acc +. (pi.(i) *. m.(i).(j))
      done;
      pi.(j) <- !acc
    done;
    let total = Array.fold_left ( +. ) 0.0 pi in
    Array.map (fun v -> v /. total) pi
  end
