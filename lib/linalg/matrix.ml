type t = float array array

let make rows cols v = Array.init rows (fun _ -> Array.make cols v)

let identity n =
  let m = make n n 0.0 in
  for i = 0 to n - 1 do
    m.(i).(i) <- 1.0
  done;
  m

let dims m = (Array.length m, if Array.length m = 0 then 0 else Array.length m.(0))
let copy m = Array.map Array.copy m

let transpose m =
  let rows, cols = dims m in
  Array.init cols (fun j -> Array.init rows (fun i -> m.(i).(j)))

let mul a b =
  let ra, ca = dims a and rb, cb = dims b in
  if ca <> rb then invalid_arg "Matrix.mul: dimension mismatch";
  let c = make ra cb 0.0 in
  for i = 0 to ra - 1 do
    for k = 0 to ca - 1 do
      let aik = a.(i).(k) in
      if aik <> 0.0 then
        for j = 0 to cb - 1 do
          c.(i).(j) <- c.(i).(j) +. (aik *. b.(k).(j))
        done
    done
  done;
  c

let mul_vec a x =
  let ra, ca = dims a in
  if ca <> Array.length x then invalid_arg "Matrix.mul_vec: dimension mismatch";
  Array.init ra (fun i ->
      let acc = ref 0.0 in
      for j = 0 to ca - 1 do
        acc := !acc +. (a.(i).(j) *. x.(j))
      done;
      !acc)

let solve a b =
  let n, cols = dims a in
  if n <> cols then invalid_arg "Matrix.solve: matrix must be square";
  if n <> Array.length b then invalid_arg "Matrix.solve: vector size mismatch";
  let m = copy a in
  let x = Array.copy b in
  (* Forward elimination with partial pivoting. *)
  for k = 0 to n - 1 do
    let pivot = ref k in
    for i = k + 1 to n - 1 do
      if abs_float m.(i).(k) > abs_float m.(!pivot).(k) then pivot := i
    done;
    if abs_float m.(!pivot).(k) < 1e-300 then
      Supervise.Error.raise_
        (Supervise.Error.Numerical { what = "singular matrix"; where = "Matrix.solve" });
    if !pivot <> k then begin
      let tmp = m.(k) in
      m.(k) <- m.(!pivot);
      m.(!pivot) <- tmp;
      let tb = x.(k) in
      x.(k) <- x.(!pivot);
      x.(!pivot) <- tb
    end;
    for i = k + 1 to n - 1 do
      let factor = m.(i).(k) /. m.(k).(k) in
      if factor <> 0.0 then begin
        for j = k to n - 1 do
          m.(i).(j) <- m.(i).(j) -. (factor *. m.(k).(j))
        done;
        x.(i) <- x.(i) -. (factor *. x.(k))
      end
    done
  done;
  (* Back substitution. *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (m.(i).(j) *. x.(j))
    done;
    x.(i) <- !acc /. m.(i).(i)
  done;
  x

let pp ppf m =
  Array.iter
    (fun row ->
      Array.iter (fun v -> Format.fprintf ppf "%10.4g " v) row;
      Format.fprintf ppf "@\n")
    m
