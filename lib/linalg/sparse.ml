(* Edges accumulate in flat append-only arrays; the first solve (or
   structural query) freezes them into a CSR form — outgoing and incoming —
   with duplicate i→j entries merged in insertion order, so the merged rate
   is bit-identical to an incremental hash-table accumulation.  The frozen
   arrays are what the solvers sweep: no cons cells on the hot path. *)

type frozen = {
  row_ptr : int array;  (** outgoing CSR, per source *)
  cols : int array;
  vals : float array;
  in_ptr : int array;  (** incoming CSR, per target *)
  in_src : int array;
  in_vals : float array;
}

type t = {
  n : int;
  mutable nnz : int;
  mutable e_src : int array;
  mutable e_dst : int array;
  mutable e_rate : float array;
  exit : float array;  (** maintained at insertion, in insertion order *)
  mutable frozen : frozen option;
}

let create n =
  {
    n;
    nnz = 0;
    e_src = Array.make 16 0;
    e_dst = Array.make 16 0;
    e_rate = Array.make 16 0.0;
    exit = Array.make n 0.0;
    frozen = None;
  }

let add_rate t i j r =
  if i < 0 || i >= t.n || j < 0 || j >= t.n then invalid_arg "Sparse.add_rate: state out of range";
  if i = j then invalid_arg "Sparse.add_rate: no self loops in a generator";
  if r <= 0.0 then invalid_arg "Sparse.add_rate: rate must be positive";
  if t.nnz = Array.length t.e_src then begin
    let cap = 2 * t.nnz in
    let grow_i a = let a' = Array.make cap 0 in Array.blit a 0 a' 0 t.nnz; a' in
    let grow_f a = let a' = Array.make cap 0.0 in Array.blit a 0 a' 0 t.nnz; a' in
    t.e_src <- grow_i t.e_src;
    t.e_dst <- grow_i t.e_dst;
    t.e_rate <- grow_f t.e_rate
  end;
  t.e_src.(t.nnz) <- i;
  t.e_dst.(t.nnz) <- j;
  t.e_rate.(t.nnz) <- r;
  t.nnz <- t.nnz + 1;
  t.exit.(i) <- t.exit.(i) +. r;
  t.frozen <- None

(* one direction of the CSR: group edges by [key], merging duplicate
   [other] entries within a group in insertion order *)
let csr_of ~n ~nnz ~key ~other ~rate =
  let count = Array.make (n + 1) 0 in
  for e = 0 to nnz - 1 do
    count.(key.(e) + 1) <- count.(key.(e) + 1) + 1
  done;
  for i = 1 to n do
    count.(i) <- count.(i) + count.(i - 1)
  done;
  (* stable bucket sort by key *)
  let next = Array.copy count in
  let by_key = Array.make nnz 0 in
  for e = 0 to nnz - 1 do
    let k = key.(e) in
    by_key.(next.(k)) <- e;
    next.(k) <- next.(k) + 1
  done;
  let ptr = Array.make (n + 1) 0 in
  let cols = Array.make nnz 0 in
  let vals = Array.make nnz 0.0 in
  let slot = Array.make n (-1) in
  let stamp = Array.make n (-1) in
  let w = ref 0 in
  for i = 0 to n - 1 do
    ptr.(i) <- !w;
    for idx = count.(i) to count.(i + 1) - 1 do
      let e = by_key.(idx) in
      let j = other.(e) in
      if stamp.(j) = i then vals.(slot.(j)) <- vals.(slot.(j)) +. rate.(e)
      else begin
        stamp.(j) <- i;
        slot.(j) <- !w;
        cols.(!w) <- j;
        vals.(!w) <- rate.(e);
        incr w
      end
    done
  done;
  ptr.(n) <- !w;
  if !w = nnz then (ptr, cols, vals) else (ptr, Array.sub cols 0 !w, Array.sub vals 0 !w)

let freeze t =
  match t.frozen with
  | Some f -> f
  | None ->
      let row_ptr, cols, vals =
        csr_of ~n:t.n ~nnz:t.nnz ~key:t.e_src ~other:t.e_dst ~rate:t.e_rate
      in
      let in_ptr, in_src, in_vals =
        csr_of ~n:t.n ~nnz:t.nnz ~key:t.e_dst ~other:t.e_src ~rate:t.e_rate
      in
      let f = { row_ptr; cols; vals; in_ptr; in_src; in_vals } in
      t.frozen <- Some f;
      f

let size t = t.n
let nnz t = t.nnz
let exit_rate t i = t.exit.(i)

let outgoing t i =
  let f = freeze t in
  let rec collect k acc =
    if k < f.row_ptr.(i) then acc else collect (k - 1) ((f.cols.(k), f.vals.(k)) :: acc)
  in
  collect (f.row_ptr.(i + 1) - 1) []

let rate t i j =
  let f = freeze t in
  let r = ref 0.0 in
  for k = f.row_ptr.(i) to f.row_ptr.(i + 1) - 1 do
    if f.cols.(k) = j then r := f.vals.(k)
  done;
  !r

let iter_outgoing t i fn =
  let f = freeze t in
  for k = f.row_ptr.(i) to f.row_ptr.(i + 1) - 1 do
    fn f.cols.(k) f.vals.(k)
  done

let to_dense t =
  let f = freeze t in
  let m = Array.make_matrix t.n t.n 0.0 in
  for i = 0 to t.n - 1 do
    for k = f.row_ptr.(i) to f.row_ptr.(i + 1) - 1 do
      m.(i).(f.cols.(k)) <- f.vals.(k)
    done
  done;
  m

let normalize pi =
  let total = Array.fold_left ( +. ) 0.0 pi in
  if total <= 0.0 then
    Supervise.Error.raise_
      (Supervise.Error.Numerical { what = "zero distribution mass"; where = "Sparse.normalize" });
  Array.iteri (fun i v -> pi.(i) <- v /. total) pi

let residual_frozen t f pi =
  (* L1 norm of pi.Q *)
  let acc = ref 0.0 in
  for j = 0 to t.n - 1 do
    let inflow = ref 0.0 in
    for k = f.in_ptr.(j) to f.in_ptr.(j + 1) - 1 do
      inflow := !inflow +. (pi.(f.in_src.(k)) *. f.in_vals.(k))
    done;
    acc := !acc +. abs_float (!inflow -. (pi.(j) *. t.exit.(j)))
  done;
  !acc

(* The L1 residual costs a full sweep, so the iterative solvers only check
   it every [check_every] sweeps — a converged iterate only gets more
   converged, and the saved residual passes outweigh the few extra
   sweeps. *)
let check_every = 8

type stats = { sweeps : int; residual : float }

(* the budget's wall deadline is polled at the residual cadence: a handful
   of gettimeofday calls per thousand sweeps *)
let budget_check budget k =
  match budget with
  | None -> ()
  | Some b -> if k mod check_every = 0 then Supervise.Budget.check b

let stationary_gauss_seidel_stats ?budget ?(tol = 1e-12) ?(max_sweeps = 100_000) t =
  let max_sweeps =
    match budget with None -> max_sweeps | Some b -> Supervise.Budget.sweeps_allowed b max_sweeps
  in
  let f = freeze t in
  let pi = Array.make t.n (1.0 /. float_of_int t.n) in
  let rec sweep k =
    if k > max_sweeps then
      Supervise.Error.raise_
        (Supervise.Error.No_convergence { sweeps = max_sweeps; residual = residual_frozen t f pi });
    budget_check budget k;
    for j = 0 to t.n - 1 do
      if t.exit.(j) > 0.0 then begin
        let inflow = ref 0.0 in
        for e = f.in_ptr.(j) to f.in_ptr.(j + 1) - 1 do
          inflow := !inflow +. (pi.(f.in_src.(e)) *. f.in_vals.(e))
        done;
        pi.(j) <- !inflow /. t.exit.(j)
      end
    done;
    normalize pi;
    if k mod check_every = 0 || k >= max_sweeps then begin
      let r = residual_frozen t f pi in
      if r <= tol then { sweeps = k; residual = r } else sweep (k + 1)
    end
    else sweep (k + 1)
  in
  let st = sweep 1 in
  (pi, st)

let stationary_gauss_seidel ?budget ?tol ?max_sweeps t =
  fst (stationary_gauss_seidel_stats ?budget ?tol ?max_sweeps t)

let stationary_power_stats ?budget ?(tol = 1e-12) ?(max_iters = 1_000_000) t =
  let max_iters =
    match budget with None -> max_iters | Some b -> Supervise.Budget.sweeps_allowed b max_iters
  in
  let f = freeze t in
  let lambda = 1.01 *. Array.fold_left max 1e-12 t.exit in
  let pi = Array.make t.n (1.0 /. float_of_int t.n) in
  let next = Array.make t.n 0.0 in
  let rec iterate k =
    if k > max_iters then
      Supervise.Error.raise_
        (Supervise.Error.No_convergence { sweeps = max_iters; residual = residual_frozen t f pi });
    budget_check budget k;
    for j = 0 to t.n - 1 do
      next.(j) <- pi.(j) *. (1.0 -. (t.exit.(j) /. lambda))
    done;
    for i = 0 to t.n - 1 do
      let w = pi.(i) /. lambda in
      for e = f.row_ptr.(i) to f.row_ptr.(i + 1) - 1 do
        next.(f.cols.(e)) <- next.(f.cols.(e)) +. (w *. f.vals.(e))
      done
    done;
    let diff = ref 0.0 in
    for j = 0 to t.n - 1 do
      diff := !diff +. abs_float (next.(j) -. pi.(j));
      pi.(j) <- next.(j)
    done;
    normalize pi;
    if (k mod check_every = 0 || k >= max_iters) && !diff <= tol then
      { sweeps = k; residual = residual_frozen t f pi }
    else iterate (k + 1)
  in
  let st = iterate 1 in
  (pi, st)

let stationary_power ?budget ?tol ?max_iters t =
  fst (stationary_power_stats ?budget ?tol ?max_iters t)
