(* Edges accumulate in flat append-only arrays; the first solve (or
   structural query) freezes them into a CSR form — outgoing and incoming —
   with duplicate i→j entries merged in insertion order, so the merged rate
   is bit-identical to an incremental hash-table accumulation.  The frozen
   arrays are what the solvers sweep: no cons cells on the hot path. *)

type frozen = {
  row_ptr : int array;  (** outgoing CSR, per source *)
  cols : int array;
  vals : float array;
  in_ptr : int array;  (** incoming CSR, per target *)
  in_src : int array;
  in_vals : float array;
}

(* Outgoing edges regrouped by destination block (stable within a block, so
   row-major order is preserved per column): a scatter sweep then keeps its
   random writes inside a cache-sized window.  Per fixed column the
   contributions arrive in exactly the row-major order, so blocked sweeps
   are bit-identical to the plain CSR loop. *)
type blocked = { b_row : int array; b_col : int array; b_val : float array }

type t = {
  n : int;
  mutable nnz : int;
  mutable e_src : int array;
  mutable e_dst : int array;
  mutable e_rate : float array;
  exit : float array;  (** maintained at insertion, in insertion order *)
  mutable frozen : frozen option;
  mutable blocked : blocked option;
}

let create n =
  {
    n;
    nnz = 0;
    e_src = Array.make 16 0;
    e_dst = Array.make 16 0;
    e_rate = Array.make 16 0.0;
    exit = Array.make n 0.0;
    frozen = None;
    blocked = None;
  }

let add_rate t i j r =
  if i < 0 || i >= t.n || j < 0 || j >= t.n then invalid_arg "Sparse.add_rate: state out of range";
  if i = j then invalid_arg "Sparse.add_rate: no self loops in a generator";
  if r <= 0.0 then invalid_arg "Sparse.add_rate: rate must be positive";
  if t.nnz = Array.length t.e_src then begin
    let cap = 2 * t.nnz in
    let grow_i a = let a' = Array.make cap 0 in Array.blit a 0 a' 0 t.nnz; a' in
    let grow_f a = let a' = Array.make cap 0.0 in Array.blit a 0 a' 0 t.nnz; a' in
    t.e_src <- grow_i t.e_src;
    t.e_dst <- grow_i t.e_dst;
    t.e_rate <- grow_f t.e_rate
  end;
  t.e_src.(t.nnz) <- i;
  t.e_dst.(t.nnz) <- j;
  t.e_rate.(t.nnz) <- r;
  t.nnz <- t.nnz + 1;
  t.exit.(i) <- t.exit.(i) +. r;
  t.frozen <- None;
  t.blocked <- None

(* one direction of the CSR: group edges by [key], merging duplicate
   [other] entries within a group in insertion order *)
let csr_of ~n ~nnz ~key ~other ~rate =
  let count = Array.make (n + 1) 0 in
  for e = 0 to nnz - 1 do
    count.(key.(e) + 1) <- count.(key.(e) + 1) + 1
  done;
  for i = 1 to n do
    count.(i) <- count.(i) + count.(i - 1)
  done;
  (* stable bucket sort by key *)
  let next = Array.copy count in
  let by_key = Array.make nnz 0 in
  for e = 0 to nnz - 1 do
    let k = key.(e) in
    by_key.(next.(k)) <- e;
    next.(k) <- next.(k) + 1
  done;
  let ptr = Array.make (n + 1) 0 in
  let cols = Array.make nnz 0 in
  let vals = Array.make nnz 0.0 in
  let slot = Array.make n (-1) in
  let stamp = Array.make n (-1) in
  let w = ref 0 in
  for i = 0 to n - 1 do
    ptr.(i) <- !w;
    for idx = count.(i) to count.(i + 1) - 1 do
      let e = by_key.(idx) in
      let j = other.(e) in
      if stamp.(j) = i then vals.(slot.(j)) <- vals.(slot.(j)) +. rate.(e)
      else begin
        stamp.(j) <- i;
        slot.(j) <- !w;
        cols.(!w) <- j;
        vals.(!w) <- rate.(e);
        incr w
      end
    done
  done;
  ptr.(n) <- !w;
  if !w = nnz then (ptr, cols, vals) else (ptr, Array.sub cols 0 !w, Array.sub vals 0 !w)

let freeze t =
  match t.frozen with
  | Some f -> f
  | None ->
      let row_ptr, cols, vals =
        csr_of ~n:t.n ~nnz:t.nnz ~key:t.e_src ~other:t.e_dst ~rate:t.e_rate
      in
      let in_ptr, in_src, in_vals =
        csr_of ~n:t.n ~nnz:t.nnz ~key:t.e_dst ~other:t.e_src ~rate:t.e_rate
      in
      let f = { row_ptr; cols; vals; in_ptr; in_src; in_vals } in
      t.frozen <- Some f;
      f

let size t = t.n
let nnz t = t.nnz
let exit_rate t i = t.exit.(i)

let outgoing t i =
  let f = freeze t in
  let rec collect k acc =
    if k < f.row_ptr.(i) then acc else collect (k - 1) ((f.cols.(k), f.vals.(k)) :: acc)
  in
  collect (f.row_ptr.(i + 1) - 1) []

let rate t i j =
  let f = freeze t in
  let r = ref 0.0 in
  for k = f.row_ptr.(i) to f.row_ptr.(i + 1) - 1 do
    if f.cols.(k) = j then r := f.vals.(k)
  done;
  !r

let iter_outgoing t i fn =
  let f = freeze t in
  for k = f.row_ptr.(i) to f.row_ptr.(i + 1) - 1 do
    fn f.cols.(k) f.vals.(k)
  done

let to_dense t =
  let f = freeze t in
  let m = Array.make_matrix t.n t.n 0.0 in
  for i = 0 to t.n - 1 do
    for k = f.row_ptr.(i) to f.row_ptr.(i + 1) - 1 do
      m.(i).(f.cols.(k)) <- f.vals.(k)
    done
  done;
  m

let normalize pi =
  let total = Array.fold_left ( +. ) 0.0 pi in
  if total <= 0.0 then
    Supervise.Error.raise_
      (Supervise.Error.Numerical { what = "zero distribution mass"; where = "Sparse.normalize" });
  Array.iteri (fun i v -> pi.(i) <- v /. total) pi

let residual_frozen t f pi =
  (* L1 norm of pi.Q *)
  let acc = ref 0.0 in
  for j = 0 to t.n - 1 do
    let inflow = ref 0.0 in
    for k = f.in_ptr.(j) to f.in_ptr.(j + 1) - 1 do
      inflow := !inflow +. (pi.(f.in_src.(k)) *. f.in_vals.(k))
    done;
    acc := !acc +. abs_float (!inflow -. (pi.(j) *. t.exit.(j)))
  done;
  !acc

(* Chains below this size fit their accumulator vector in cache and gain
   nothing from blocking; above it, sweeps go through the blocked edge
   order.  8192 columns of float64 is a 64 KB write window. *)
let blocked_threshold = 1 lsl 15
let block_cols = 8192

let blocked_of t f =
  match t.blocked with
  | Some b -> b
  | None ->
      let m = Array.length f.cols in
      let nblocks = ((t.n + block_cols - 1) / block_cols) + 1 in
      let count = Array.make (nblocks + 1) 0 in
      for e = 0 to m - 1 do
        let b = f.cols.(e) / block_cols in
        count.(b + 1) <- count.(b + 1) + 1
      done;
      for b = 1 to nblocks do
        count.(b) <- count.(b) + count.(b - 1)
      done;
      let b_row = Array.make m 0 in
      let b_col = Array.make m 0 in
      let b_val = Array.make m 0.0 in
      (* stable by construction: rows visited in ascending order *)
      for i = 0 to t.n - 1 do
        for e = f.row_ptr.(i) to f.row_ptr.(i + 1) - 1 do
          let b = f.cols.(e) / block_cols in
          let w = count.(b) in
          count.(b) <- w + 1;
          b_row.(w) <- i;
          b_col.(w) <- f.cols.(e);
          b_val.(w) <- f.vals.(e)
        done
      done;
      let b = { b_row; b_col; b_val } in
      t.blocked <- Some b;
      b

(* y := x · (I + Q/λ), the uniformised left matvec shared by the power and
   Arnoldi solvers.  Bit-identical whether the scatter runs row-major or
   blocked: per destination column the additions arrive in row order either
   way, and the per-edge product ((x_i/λ)·q_ij) rounds identically. *)
let matvec_uniformized t f ~lambda x y =
  for j = 0 to t.n - 1 do
    y.(j) <- x.(j) *. (1.0 -. (t.exit.(j) /. lambda))
  done;
  if t.n <= blocked_threshold then
    for i = 0 to t.n - 1 do
      let w = x.(i) /. lambda in
      for e = f.row_ptr.(i) to f.row_ptr.(i + 1) - 1 do
        y.(f.cols.(e)) <- y.(f.cols.(e)) +. (w *. f.vals.(e))
      done
    done
  else begin
    let b = blocked_of t f in
    for e = 0 to Array.length b.b_col - 1 do
      y.(b.b_col.(e)) <- y.(b.b_col.(e)) +. (x.(b.b_row.(e)) /. lambda *. b.b_val.(e))
    done
  end

(* The L1 residual costs a full sweep, so the iterative solvers only check
   it every [check_every] sweeps — a converged iterate only gets more
   converged, and the saved residual passes outweigh the few extra
   sweeps. *)
let check_every = 8

type stats = { sweeps : int; residual : float }

(* the budget's wall deadline is polled at the residual cadence: a handful
   of gettimeofday calls per thousand sweeps *)
let budget_check budget k =
  match budget with
  | None -> ()
  | Some b -> if k mod check_every = 0 then Supervise.Budget.check b

let stationary_gauss_seidel_stats ?budget ?(tol = 1e-12) ?(max_sweeps = 100_000) t =
  let max_sweeps =
    match budget with None -> max_sweeps | Some b -> Supervise.Budget.sweeps_allowed b max_sweeps
  in
  let f = freeze t in
  let pi = Array.make t.n (1.0 /. float_of_int t.n) in
  let rec sweep k =
    if k > max_sweeps then
      Supervise.Error.raise_
        (Supervise.Error.No_convergence { sweeps = max_sweeps; residual = residual_frozen t f pi });
    budget_check budget k;
    for j = 0 to t.n - 1 do
      if t.exit.(j) > 0.0 then begin
        let inflow = ref 0.0 in
        for e = f.in_ptr.(j) to f.in_ptr.(j + 1) - 1 do
          inflow := !inflow +. (pi.(f.in_src.(e)) *. f.in_vals.(e))
        done;
        pi.(j) <- !inflow /. t.exit.(j)
      end
    done;
    normalize pi;
    if k mod check_every = 0 || k >= max_sweeps then begin
      let r = residual_frozen t f pi in
      if r <= tol then { sweeps = k; residual = r } else sweep (k + 1)
    end
    else sweep (k + 1)
  in
  let st = sweep 1 in
  (pi, st)

let stationary_gauss_seidel ?budget ?tol ?max_sweeps t =
  fst (stationary_gauss_seidel_stats ?budget ?tol ?max_sweeps t)

let stationary_power_stats ?budget ?(tol = 1e-12) ?(max_iters = 1_000_000) t =
  let max_iters =
    match budget with None -> max_iters | Some b -> Supervise.Budget.sweeps_allowed b max_iters
  in
  let f = freeze t in
  let lambda = 1.01 *. Array.fold_left max 1e-12 t.exit in
  let pi = Array.make t.n (1.0 /. float_of_int t.n) in
  let next = Array.make t.n 0.0 in
  let rec iterate k =
    if k > max_iters then
      Supervise.Error.raise_
        (Supervise.Error.No_convergence { sweeps = max_iters; residual = residual_frozen t f pi });
    budget_check budget k;
    matvec_uniformized t f ~lambda pi next;
    let diff = ref 0.0 in
    for j = 0 to t.n - 1 do
      diff := !diff +. abs_float (next.(j) -. pi.(j));
      pi.(j) <- next.(j)
    done;
    normalize pi;
    if (k mod check_every = 0 || k >= max_iters) && !diff <= tol then
      { sweeps = k; residual = residual_frozen t f pi }
    else iterate (k + 1)
  in
  let st = iterate 1 in
  (pi, st)

let stationary_power ?budget ?tol ?max_iters t =
  fst (stationary_power_stats ?budget ?tol ?max_iters t)

(* ---- restarted Arnoldi ----

   Krylov subspace method on the uniformised chain P = I + Q/λ: build an
   orthonormal basis v_0..v_{m-1} of span{x, xP, ..., xP^{m-1}} by modified
   Gram–Schmidt, so that v_j P = Σ_i h_ij v_i with H the small (m×m)
   Hessenberg projection.  The stationary direction is P's left eigenvector
   for eigenvalue 1 — the eigenvalue of H closest to 1 — so its
   H-coordinates z are recovered by inverse iteration on (H − I): near-
   singularity of the shifted factor is the good case (the amplified solve
   direction IS the eigendirection).  The Ritz vector Σ z_j v_j is clamped
   to the nonnegative cone, L1-normalised, and either accepted (residual
   ‖πQ‖₁ ≤ tol) or used to seed the next restart; the best iterate seen is
   retained so late restarts can never un-converge the answer.  Memory is
   (m+1) vectors; each basis extension is one sweep, which is what the
   budget's sweep ceiling counts. *)

let dot a b =
  let n = Array.length a in
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. (a.(i) *. b.(i))
  done;
  !s

(* right eigenvector of the leading k×k block of hessenberg [h] for the
   eigenvalue closest to 1 (the stationary direction of the projected
   chain), by inverse iteration on (H − I).  One LU factorisation with
   partial pivoting, then a handful of solves; a hard zero pivot is
   perturbed at the underflow scale — near-singularity only makes the
   iteration converge faster.  Deterministic start and iteration count. *)
let stationary_eig h k =
  let a =
    Array.init k (fun i -> Array.init k (fun j -> h.(i).(j) -. if i = j then 1.0 else 0.0))
  in
  let piv = Array.init k Fun.id in
  for c = 0 to k - 1 do
    let best = ref c in
    for r = c + 1 to k - 1 do
      if abs_float a.(r).(c) > abs_float a.(!best).(c) then best := r
    done;
    if !best <> c then begin
      let row = a.(c) in
      a.(c) <- a.(!best);
      a.(!best) <- row;
      let t = piv.(c) in
      piv.(c) <- piv.(!best);
      piv.(!best) <- t
    end;
    if abs_float a.(c).(c) < 1e-300 then a.(c).(c) <- 1e-300;
    for r = c + 1 to k - 1 do
      let f = a.(r).(c) /. a.(c).(c) in
      a.(r).(c) <- f;
      for j = c + 1 to k - 1 do
        a.(r).(j) <- a.(r).(j) -. (f *. a.(c).(j))
      done
    done
  done;
  let z = Array.make k (1.0 /. float_of_int k) in
  let y = Array.make k 0.0 in
  for _ = 1 to 8 do
    for i = 0 to k - 1 do
      y.(i) <- z.(piv.(i))
    done;
    for i = 1 to k - 1 do
      let s = ref y.(i) in
      for j = 0 to i - 1 do
        s := !s -. (a.(i).(j) *. y.(j))
      done;
      y.(i) <- !s
    done;
    for i = k - 1 downto 0 do
      let s = ref y.(i) in
      for j = i + 1 to k - 1 do
        s := !s -. (a.(i).(j) *. y.(j))
      done;
      y.(i) <- !s /. a.(i).(i)
    done;
    let nrm = sqrt (dot y y) in
    if nrm > 0.0 then
      for i = 0 to k - 1 do
        z.(i) <- y.(i) /. nrm
      done
  done;
  z

let stationary_arnoldi_stats ?budget ?(tol = 1e-10) ?(restart = 30) ?(max_matvecs = 100_000) t =
  let max_matvecs =
    match budget with None -> max_matvecs | Some b -> Supervise.Budget.sweeps_allowed b max_matvecs
  in
  let f = freeze t in
  let n = t.n in
  let lambda = 1.01 *. Array.fold_left max 1e-12 t.exit in
  let m = max 2 (min restart n) in
  let v = Array.init (m + 1) (fun _ -> Array.make n 0.0) in
  let h = Array.make_matrix (m + 1) m 0.0 in
  let x = Array.make n (1.0 /. float_of_int n) in
  let best = Array.make n 0.0 in
  let best_r = ref infinity in
  let matvecs = ref 0 in
  let rec restart_loop () =
    let nrm = sqrt (dot x x) in
    for i = 0 to n - 1 do
      v.(0).(i) <- x.(i) /. nrm
    done;
    Array.iter (fun row -> Array.fill row 0 m 0.0) h;
    let k = ref m in
    (try
       for j = 0 to m - 1 do
         incr matvecs;
         budget_check budget !matvecs;
         let w = v.(j + 1) in
         matvec_uniformized t f ~lambda v.(j) w;
         for i = 0 to j do
           let hij = dot w v.(i) in
           h.(i).(j) <- hij;
           let vi = v.(i) in
           for l = 0 to n - 1 do
             w.(l) <- w.(l) -. (hij *. vi.(l))
           done
         done;
         let hh = sqrt (dot w w) in
         h.(j + 1).(j) <- hh;
         (* the Krylov space closed early: the basis already spans an
            invariant subspace containing the stationary direction *)
         if hh <= 1e-13 then begin
           k := j + 1;
           raise Exit
         end;
         for l = 0 to n - 1 do
           w.(l) <- w.(l) /. hh
         done
       done
     with Exit -> ());
    let k = !k in
    let z = stationary_eig h k in
    for l = 0 to n - 1 do
      x.(l) <- 0.0
    done;
    for j = 0 to k - 1 do
      let zj = z.(j) and vj = v.(j) in
      for l = 0 to n - 1 do
        x.(l) <- x.(l) +. (zj *. vj.(l))
      done
    done;
    (* the Ritz vector's global sign is arbitrary; orient it positive, then
       clamp the rounding-level negative entries before normalising *)
    let mass = Array.fold_left ( +. ) 0.0 x in
    if mass < 0.0 then
      for l = 0 to n - 1 do
        x.(l) <- -.x.(l)
      done;
    for l = 0 to n - 1 do
      if x.(l) < 0.0 then x.(l) <- 0.0
    done;
    normalize x;
    let r = residual_frozen t f x in
    if r < !best_r then begin
      best_r := r;
      Array.blit x 0 best 0 n
    end;
    if !best_r <= tol then { sweeps = !matvecs; residual = !best_r }
    else if !matvecs >= max_matvecs then
      Supervise.Error.raise_
        (Supervise.Error.No_convergence { sweeps = !matvecs; residual = !best_r })
    else restart_loop ()
  in
  let st = restart_loop () in
  (best, st)

let stationary_arnoldi ?budget ?tol ?restart ?max_matvecs t =
  fst (stationary_arnoldi_stats ?budget ?tol ?restart ?max_matvecs t)
