type t = { fd : Unix.file_descr; ic : in_channel }

let connect addr =
  match
    let domain =
      match addr with Protocol.Unix_domain _ -> Unix.PF_UNIX | Protocol.Tcp _ -> Unix.PF_INET
    in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Protocol.sockaddr_of addr) with
    | () -> { fd; ic = Unix.in_channel_of_descr fd }
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  with
  | t -> Ok t
  | exception Unix.Unix_error (err, _, _) ->
      Error
        (Printf.sprintf "cannot connect to %s: %s" (Protocol.addr_to_string addr)
           (Unix.error_message err))
  | exception Failure msg -> Error msg

let close t = try close_in t.ic (* closes the shared fd *) with Sys_error _ -> ()

let rec write_all fd s off len =
  if len > 0 then begin
    let n = Unix.write_substring fd s off len in
    write_all fd s (off + n) (len - n)
  end

let rpc_raw t line =
  match
    write_all t.fd (line ^ "\n") 0 (String.length line + 1);
    input_line t.ic
  with
  | reply -> Ok reply
  | exception End_of_file -> Error "connection closed by the daemon"
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  | exception Sys_error msg -> Error msg

let rpc t request =
  match rpc_raw t (Json.render request) with
  | Error _ as e -> e
  | Ok line -> (
      match Json.parse line with
      | Ok reply -> Ok reply
      | Error msg -> Error ("unparsable reply: " ^ msg))

let reply_ok reply =
  match Option.bind (Json.member "ok" reply) Json.to_bool_opt with Some b -> b | None -> false

let reply_error_kind reply =
  Option.bind (Json.member "error" reply) (fun e ->
      Option.bind (Json.member "kind" e) Json.to_string_opt)

let reply_result reply = Json.member "result" reply

let command cmd t = rpc t (Json.Obj [ ("v", Json.Int Protocol.version); ("cmd", Json.String cmd) ])
let ping = command "ping"
let stats = command "stats"
let shutdown = command "shutdown"

let solve_fields ?model ?law ?cap ?wall ?sweeps ?states ?simulate ~instance () =
  let opt name conv v = Option.map (fun v -> (name, conv v)) v in
  List.filter_map Fun.id
    [
      Some ("instance", Json.String instance);
      opt "model" (fun m -> Json.String (Streaming.Model.to_string m)) model;
      opt "law" (fun l -> Json.String (Engine.law_to_string l)) law;
      opt "cap" (fun c -> Json.Int c) cap;
      opt "wall" (fun w -> Json.Float w) wall;
      opt "sweeps" (fun s -> Json.Int s) sweeps;
      opt "states" (fun s -> Json.Int s) states;
      opt "simulate" (fun b -> Json.Bool b) simulate;
    ]

let solve_request ?id ?model ?law ?cap ?wall ?sweeps ?states ?simulate ~instance () =
  Json.Obj
    ([ ("v", Json.Int Protocol.version); ("cmd", Json.String "solve") ]
    @ (match id with Some id -> [ ("id", id) ] | None -> [])
    @ solve_fields ?model ?law ?cap ?wall ?sweeps ?states ?simulate ~instance ())

let batch_request ?id items =
  Json.Obj
    ([ ("v", Json.Int Protocol.version); ("cmd", Json.String "batch") ]
    @ (match id with Some id -> [ ("id", id) ] | None -> [])
    @ [ ("requests", Json.List items) ])
