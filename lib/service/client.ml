type t = { fd : Unix.file_descr; pending : Buffer.t }

type error = Sockets.error =
  | Refused of string
  | Timeout of string
  | Closed of string
  | Transport of string
  | Bad_reply of string

let error_message = Sockets.error_message
let retriable = Sockets.retriable

let connect ?deadline addr =
  match Sockets.connect ?deadline addr with
  | Ok fd -> Ok { fd; pending = Buffer.create 512 }
  | Error _ as e -> e

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let rpc_raw ?deadline t line =
  match Sockets.send_line ?deadline t.fd line with
  | Error _ as e -> e
  | Ok () -> Sockets.recv_line ?deadline t.fd t.pending

let rpc ?deadline t request =
  match rpc_raw ?deadline t (Json.render request) with
  | Error _ as e -> e
  | Ok line -> (
      match Json.parse line with
      | Ok reply -> Ok reply
      | Error msg -> Error (Bad_reply (Printf.sprintf "unparsable reply: %s" msg)))

let reply_ok reply =
  match Option.bind (Json.member "ok" reply) Json.to_bool_opt with Some b -> b | None -> false

let reply_error_kind reply =
  Option.bind (Json.member "error" reply) (fun e ->
      Option.bind (Json.member "kind" e) Json.to_string_opt)

(* a reply is worth retrying when it says so itself: ok:false with
   error.retriable:true (busy, unavailable) *)
let reply_retriable reply =
  (not (reply_ok reply))
  && Option.bind (Json.member "error" reply) (fun e ->
         Option.bind (Json.member "retriable" e) Json.to_bool_opt)
     = Some true

let reply_result reply = Json.member "result" reply

let command cmd ?deadline t =
  rpc ?deadline t (Json.Obj [ ("v", Json.Int Protocol.version); ("cmd", Json.String cmd) ])

let ping ?deadline t = command "ping" ?deadline t
let stats ?deadline t = command "stats" ?deadline t
let shutdown ?deadline t = command "shutdown" ?deadline t

let solve_fields ?model ?law ?cap ?wall ?sweeps ?states ?simulate ~instance () =
  let opt name conv v = Option.map (fun v -> (name, conv v)) v in
  List.filter_map Fun.id
    [
      Some ("instance", Json.String instance);
      opt "model" (fun m -> Json.String (Streaming.Model.to_string m)) model;
      opt "law" (fun l -> Json.String (Engine.law_to_string l)) law;
      opt "cap" (fun c -> Json.Int c) cap;
      opt "wall" (fun w -> Json.Float w) wall;
      opt "sweeps" (fun s -> Json.Int s) sweeps;
      opt "states" (fun s -> Json.Int s) states;
      opt "simulate" (fun b -> Json.Bool b) simulate;
    ]

let obs_member = function
  | None -> []
  | Some (trace, span) -> [ Protocol.obs_field ~trace ~span ]

let fresh_obs () = (Obs.Trace.fresh_id (), Obs.Trace.fresh_id ())

let solve_request ?id ?obs ?model ?law ?cap ?wall ?sweeps ?states ?simulate
    ~instance () =
  Json.Obj
    ([ ("v", Json.Int Protocol.version); ("cmd", Json.String "solve") ]
    @ (match id with Some id -> [ ("id", id) ] | None -> [])
    @ obs_member obs
    @ solve_fields ?model ?law ?cap ?wall ?sweeps ?states ?simulate ~instance ())

let batch_request ?id ?obs items =
  Json.Obj
    ([ ("v", Json.Int Protocol.version); ("cmd", Json.String "batch") ]
    @ (match id with Some id -> [ ("id", id) ] | None -> [])
    @ obs_member obs
    @ [ ("requests", Json.List items) ])
