(** Live daemon metrics: request/error/busy counters, a log-scale solve
    latency histogram, a state-space-size histogram and per-result
    provenance counts, all backed by a private {!Obs.Metrics} registry.
    Served by the [stats] command (JSON), the [metrics] command
    (Prometheus text) and dumped to stderr during graceful drain.
    Thread-safe. *)

type t

val create : unit -> t

val registry : t -> Obs.Metrics.registry
(** The server's private registry, e.g. to attach collectors that mirror
    the LRU cache statistics. *)

val record_request : t -> cmd:string -> unit
(** Counts one incoming request under its command name (including
    requests that later fail). *)

val record_error : t -> kind:string -> unit
(** Counts one error reply under its protocol error kind ([busy]
    rejections land here too). *)

val record_solve : t -> cached:bool -> quality:string -> latency:float -> states:int -> unit
(** Counts one answered solve: cache hit/served-from-cache vs computed,
    winning quality ([exact]/[iterative]/[simulated]), wall latency in
    seconds and the pattern-state-space size proxy of the instance. *)

val record_tenant_solve : t -> tenant:string -> latency:float -> unit
(** Fairness accounting for multi-tenant solves: one counter increment
    and one latency observation under the [tenant] label
    ([service_tenant_solves_total], [service_tenant_solve_seconds]). *)

val record_admission : t -> decision:string -> unit
(** Counts one admission-control decision ([admitted] | [rejected]). *)

val to_json : t -> Json.t
(** Everything above as one stable JSON object (histograms as
    [{"le": bound, "count": n}] lists with a final catch-all bucket, plus
    an exact p50/p90/p99 ["summary"] object). *)

val prometheus : t -> string
(** The registry in Prometheus text exposition format. *)

val dump : t -> Format.formatter -> unit
(** Human-oriented one-per-line rendering for the drain log, including
    the exact latency/state-space quantiles. *)
