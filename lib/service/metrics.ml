(* Counter tables plus two fixed-bucket histograms.  Buckets are
   cumulative-friendly "le" upper bounds with a final +inf catch-all, the
   shape every scraping convention understands. *)

let latency_bounds = [| 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.0; 3.0; 10.0; 100.0 |]
let states_bounds = [| 10.; 100.; 1_000.; 10_000.; 100_000.; 1_000_000.; 10_000_000. |]

type histogram = { bounds : float array; counts : int array; mutable total : int }

let histogram bounds = { bounds; counts = Array.make (Array.length bounds + 1) 0; total = 0 }

let observe h v =
  let rec bucket i =
    if i >= Array.length h.bounds then Array.length h.bounds
    else if v <= h.bounds.(i) then i
    else bucket (i + 1)
  in
  h.counts.(bucket 0) <- h.counts.(bucket 0) + 1;
  h.total <- h.total + 1

type t = {
  started : float;
  requests : (string, int ref) Hashtbl.t;
  errors : (string, int ref) Hashtbl.t;
  provenance : (string, int ref) Hashtbl.t;
  mutable solved : int;
  mutable cache_served : int;
  latency : histogram;
  states : histogram;
  mutex : Mutex.t;
}

let create () =
  {
    started = Unix.gettimeofday ();
    requests = Hashtbl.create 8;
    errors = Hashtbl.create 8;
    provenance = Hashtbl.create 4;
    solved = 0;
    cache_served = 0;
    latency = histogram latency_bounds;
    states = histogram states_bounds;
    mutex = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let bump table key =
  match Hashtbl.find_opt table key with
  | Some r -> incr r
  | None -> Hashtbl.replace table key (ref 1)

let record_request t ~cmd = locked t (fun () -> bump t.requests cmd)
let record_error t ~kind = locked t (fun () -> bump t.errors kind)

let record_solve t ~cached ~quality ~latency ~states =
  locked t (fun () ->
      t.solved <- t.solved + 1;
      if cached then t.cache_served <- t.cache_served + 1;
      bump t.provenance quality;
      observe t.latency latency;
      observe t.states (float_of_int states))

let table_json table =
  Hashtbl.fold (fun k r acc -> (k, Json.Int !r) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> fun fields -> Json.Obj fields

let histogram_json h =
  let buckets =
    Array.to_list
      (Array.mapi
         (fun i count ->
           let le =
             if i < Array.length h.bounds then Json.Float h.bounds.(i) else Json.String "inf"
           in
           Json.Obj [ ("le", le); ("count", Json.Int count) ])
         h.counts)
  in
  Json.Obj [ ("total", Json.Int h.total); ("buckets", Json.List buckets) ]

let to_json t =
  locked t (fun () ->
      Json.Obj
        [
          ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started));
          ("requests", table_json t.requests);
          ("errors", table_json t.errors);
          ("solved", Json.Int t.solved);
          ("cache_served", Json.Int t.cache_served);
          ("provenance", table_json t.provenance);
          ("latency_s", histogram_json t.latency);
          ("pattern_states", histogram_json t.states);
        ])

let dump t ppf =
  let j = to_json t in
  let table title = function
    | Some (Json.Obj fields) ->
        List.iter
          (fun (k, v) ->
            match v with
            | Json.Int n -> Format.fprintf ppf "%-24s %8d@." (title ^ "." ^ k) n
            | _ -> ())
          fields
    | _ -> ()
  in
  (match Json.member "uptime_s" j with
  | Some (Json.Float s) -> Format.fprintf ppf "%-24s %10.3f s@." "uptime" s
  | _ -> ());
  table "requests" (Json.member "requests" j);
  table "errors" (Json.member "errors" j);
  (match (Json.member "solved" j, Json.member "cache_served" j) with
  | Some (Json.Int s), Some (Json.Int c) ->
      Format.fprintf ppf "%-24s %8d@." "solved" s;
      Format.fprintf ppf "%-24s %8d@." "cache_served" c
  | _ -> ());
  table "provenance" (Json.member "provenance" j)
