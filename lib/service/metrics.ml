(* Daemon metrics, backed by the generic [Obs.Metrics] registry.  Each
   server owns a private registry so concurrent servers (the tests spawn
   several) do not share counters; the [stats] JSON shape of the previous
   hand-rolled implementation is preserved (with an added exact-quantile
   "summary" on each histogram), and the same registry renders as
   Prometheus text for the [metrics] protocol command. *)

let latency_bounds = [| 1e-4; 3e-4; 1e-3; 3e-3; 1e-2; 3e-2; 0.1; 0.3; 1.0; 3.0; 10.0; 100.0 |]
let states_bounds = [| 10.; 100.; 1_000.; 10_000.; 100_000.; 1_000_000.; 10_000_000. |]

type t = {
  started : float;
  reg : Obs.Metrics.registry;
  solved : Obs.Metrics.Counter.t;
  cache_served : Obs.Metrics.Counter.t;
  latency : Obs.Metrics.Histogram.t;
  states : Obs.Metrics.Histogram.t;
}

let create () =
  let reg = Obs.Metrics.create_registry () in
  let started = Unix.gettimeofday () in
  let uptime =
    Obs.Metrics.Gauge.create ~registry:reg ~help:"Seconds since the server started"
      "service_uptime_seconds"
  in
  Obs.Metrics.register_collector ~registry:reg ~name:"service.uptime" (fun () ->
      Obs.Metrics.Gauge.set uptime (Unix.gettimeofday () -. started));
  {
    started;
    reg;
    solved =
      Obs.Metrics.Counter.create ~registry:reg ~help:"Solve requests answered"
        "service_solved_total";
    cache_served =
      Obs.Metrics.Counter.create ~registry:reg ~help:"Solve requests answered from the LRU cache"
        "service_cache_served_total";
    latency =
      Obs.Metrics.Histogram.create ~registry:reg ~buckets:latency_bounds
        ~help:"Solve wall latency in seconds" "service_latency_seconds";
    states =
      Obs.Metrics.Histogram.create ~registry:reg ~buckets:states_bounds
        ~help:"Pattern state-space size of solved instances" "service_pattern_states";
  }

let registry t = t.reg

let record_request t ~cmd =
  Obs.Metrics.Counter.incr
    (Obs.Metrics.Counter.create ~registry:t.reg
       ~labels:[ ("cmd", cmd) ]
       ~help:"Requests received, by command" "service_requests_total")

let record_error t ~kind =
  Obs.Metrics.Counter.incr
    (Obs.Metrics.Counter.create ~registry:t.reg
       ~labels:[ ("kind", kind) ]
       ~help:"Error replies, by protocol error kind" "service_errors_total")

let record_solve t ~cached ~quality ~latency ~states =
  Obs.Metrics.Counter.incr t.solved;
  if cached then Obs.Metrics.Counter.incr t.cache_served;
  Obs.Metrics.Counter.incr
    (Obs.Metrics.Counter.create ~registry:t.reg
       ~labels:[ ("quality", quality) ]
       ~help:"Answered solves, by winning provenance quality" "service_provenance_total");
  Obs.Metrics.Histogram.observe t.latency latency;
  Obs.Metrics.Histogram.observe t.states (float_of_int states)

(* per-tenant fairness accounting: label cardinality is bounded by the
   number of distinct tenant ids the daemon has seen, which admission
   control keeps small *)
let record_tenant_solve t ~tenant ~latency =
  Obs.Metrics.Counter.incr
    (Obs.Metrics.Counter.create ~registry:t.reg
       ~labels:[ ("tenant", tenant) ]
       ~help:"Per-tenant solves answered (multi-tenant requests)" "service_tenant_solves_total");
  Obs.Metrics.Histogram.observe
    (Obs.Metrics.Histogram.create ~registry:t.reg ~buckets:latency_bounds
       ~labels:[ ("tenant", tenant) ]
       ~help:"Per-tenant share of multi-tenant solve latency in seconds"
       "service_tenant_solve_seconds")
    latency

let record_admission t ~decision =
  Obs.Metrics.Counter.incr
    (Obs.Metrics.Counter.create ~registry:t.reg
       ~labels:[ ("decision", decision) ]
       ~help:"Admission-control decisions, by outcome" "service_admission_total")

(* ---- stats JSON (same shape as before, plus "summary") ---- *)

let table_json samples name label =
  let fields =
    List.filter_map
      (fun (s : Obs.Metrics.sample) ->
        match s.s_value with
        | Obs.Metrics.Counter_v v when s.s_name = name ->
            Option.map (fun l -> (l, Json.Int v)) (List.assoc_opt label s.s_labels)
        | _ -> None)
      samples
  in
  (* [samples] is already sorted by name then labels *)
  Json.Obj fields

let histogram_json samples name =
  let view =
    List.find_map
      (fun (s : Obs.Metrics.sample) ->
        match s.s_value with
        | Obs.Metrics.Histogram_v h when s.s_name = name -> Some h
        | _ -> None)
      samples
  in
  match view with
  | None -> Json.Obj [ ("total", Json.Int 0); ("buckets", Json.List []) ]
  | Some h ->
      let buckets =
        Array.to_list
          (Array.map
             (fun (le, count) ->
               let le = if le = infinity then Json.String "inf" else Json.Float le in
               Json.Obj [ ("le", le); ("count", Json.Int count) ])
             h.Obs.Metrics.h_buckets)
      in
      Json.Obj
        [
          ("total", Json.Int h.Obs.Metrics.h_count);
          ("buckets", Json.List buckets);
          (* exact nearest-rank quantiles; null while empty *)
          ( "summary",
            Json.Obj
              [
                ("p50", Json.Float h.Obs.Metrics.h_p50);
                ("p90", Json.Float h.Obs.Metrics.h_p90);
                ("p99", Json.Float h.Obs.Metrics.h_p99);
              ] );
        ]

let to_json t =
  let samples = Obs.Metrics.samples t.reg in
  Json.Obj
    [
      ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started));
      ("requests", table_json samples "service_requests_total" "cmd");
      ("errors", table_json samples "service_errors_total" "kind");
      ("solved", Json.Int (Obs.Metrics.Counter.value t.solved));
      ("cache_served", Json.Int (Obs.Metrics.Counter.value t.cache_served));
      ("provenance", table_json samples "service_provenance_total" "quality");
      ("admission", table_json samples "service_admission_total" "decision");
      ("tenant_solves", table_json samples "service_tenant_solves_total" "tenant");
      ("latency_s", histogram_json samples "service_latency_seconds");
      ("pattern_states", histogram_json samples "service_pattern_states");
    ]

let prometheus t = Obs.Metrics.to_prometheus t.reg

let dump t ppf =
  let j = to_json t in
  let table title = function
    | Some (Json.Obj fields) ->
        List.iter
          (fun (k, v) ->
            match v with
            | Json.Int n -> Format.fprintf ppf "%-24s %8d@." (title ^ "." ^ k) n
            | _ -> ())
          fields
    | _ -> ()
  in
  let summary title = function
    | Some j -> (
        match Json.member "summary" j with
        | Some (Json.Obj qs) ->
            List.iter
              (fun (q, v) ->
                match Json.to_float_opt v with
                | Some f -> Format.fprintf ppf "%-24s %10.6f@." (title ^ "." ^ q) f
                | None -> ())
              qs
        | _ -> ())
    | None -> ()
  in
  (match Json.member "uptime_s" j with
  | Some (Json.Float s) -> Format.fprintf ppf "%-24s %10.3f s@." "uptime" s
  | _ -> ());
  table "requests" (Json.member "requests" j);
  table "errors" (Json.member "errors" j);
  (match (Json.member "solved" j, Json.member "cache_served" j) with
  | Some (Json.Int s), Some (Json.Int c) ->
      Format.fprintf ppf "%-24s %8d@." "solved" s;
      Format.fprintf ppf "%-24s %8d@." "cache_served" c
  | _ -> ());
  table "provenance" (Json.member "provenance" j);
  table "admission" (Json.member "admission" j);
  table "tenant_solves" (Json.member "tenant_solves" j);
  summary "latency_s" (Json.member "latency_s" j);
  summary "pattern_states" (Json.member "pattern_states" j)
