(* Deadline-aware, signal-safe socket plumbing shared by the client, the
   daemon and the cluster router.

   Every path retries [EINTR]; a peer closing mid-frame surfaces as a
   typed [Closed] error instead of an exception (or, without the
   process-wide SIGPIPE ignore, a killed thread).  Deadlines are
   absolute [Unix.gettimeofday] instants so one request budget threads
   through connect, write and read without re-arithmetic. *)

type error =
  | Refused of string  (* connect refused / socket absent *)
  | Timeout of string  (* deadline exceeded *)
  | Closed of string  (* peer EOF, reset, or torn frame *)
  | Transport of string  (* any other socket-level failure *)
  | Bad_reply of string  (* reply line that does not parse *)

let error_message = function
  | Refused msg -> "connection refused: " ^ msg
  | Timeout msg -> "deadline exceeded: " ^ msg
  | Closed msg -> "connection closed: " ^ msg
  | Transport msg -> "transport failure: " ^ msg
  | Bad_reply msg -> "bad reply: " ^ msg

(* a broken transport can heal on a fresh attempt; a reply that does not
   parse will not parse twice *)
let retriable = function
  | Refused _ | Timeout _ | Closed _ | Transport _ -> true
  | Bad_reply _ -> false

(* SIGPIPE would kill the whole process when a peer closes mid-reply;
   ignoring it turns the write into an [EPIPE] we map to [Closed].
   Idempotent and cheap, so every entry point just calls it. *)
let sigpipe_ignored = ref false

let ignore_sigpipe () =
  if not !sigpipe_ignored then begin
    (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
     with Invalid_argument _ | Sys_error _ -> ());
    sigpipe_ignored := true
  end

let closing_error err msg =
  match err with
  | Unix.EPIPE | Unix.ECONNRESET | Unix.ESHUTDOWN | Unix.EBADF ->
      Closed (msg ^ ": " ^ Unix.error_message err)
  | _ -> Transport (msg ^ ": " ^ Unix.error_message err)

(* select on one fd, honouring the deadline; [EINTR] restarts with the
   remaining time *)
let rec wait_fd ~for_read fd deadline =
  let timeout =
    match deadline with
    | None -> -1.0
    | Some d ->
        let left = d -. Unix.gettimeofday () in
        if left <= 0.0 then 0.0 else left
  in
  let expired = match deadline with Some _ when timeout = 0.0 -> true | _ -> false in
  if expired then Error (Timeout "socket not ready before the deadline")
  else
    let r, w = if for_read then ([ fd ], []) else ([], [ fd ]) in
    match Unix.select r w [] timeout with
    | [], [], [] -> Error (Timeout "socket not ready before the deadline")
    | _ -> Ok ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_fd ~for_read fd deadline

(* ---- connect ---- *)

let connect ?deadline addr =
  ignore_sigpipe ();
  let domain =
    match addr with Protocol.Unix_domain _ -> Unix.PF_UNIX | Protocol.Tcp _ -> Unix.PF_INET
  in
  let sockaddr =
    try Ok (Protocol.sockaddr_of addr)
    with Failure msg -> Error (Refused msg)
  in
  match sockaddr with
  | Error _ as e -> e
  | Ok sockaddr -> (
      let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
      let fail e =
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error e
      in
      Unix.set_nonblock fd;
      let rec attempt () =
        match Unix.connect fd sockaddr with
        | () -> Ok fd
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> attempt ()
        | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK | Unix.EAGAIN), _, _)
          -> (
            (* non-blocking connect: writability signals the verdict *)
            match wait_fd ~for_read:false fd deadline with
            | Error e -> fail e
            | Ok () -> (
                match Unix.getsockopt_error fd with
                | None -> Ok fd
                | Some (Unix.ECONNREFUSED | Unix.ENOENT) ->
                    fail (Refused (Protocol.addr_to_string addr))
                | Some err -> fail (closing_error err "connect")))
        | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
            fail (Refused (Protocol.addr_to_string addr))
        | exception Unix.Unix_error (err, _, _) -> fail (closing_error err "connect")
      in
      attempt ())

(* ---- writes ---- *)

(* Works on blocking and non-blocking fds alike: [EAGAIN] waits for
   writability (bounded by the deadline), [EINTR] retries, [EPIPE]
   becomes [Closed]. *)
let write_all ?deadline fd s =
  let len = String.length s in
  let rec go off =
    if off >= len then Ok ()
    else
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
          match wait_fd ~for_read:false fd deadline with
          | Ok () -> go off
          | Error _ as e -> e)
      | exception Unix.Unix_error (err, _, _) -> Error (closing_error err "write")
  in
  go 0

let send_line ?deadline fd line = write_all ?deadline fd (line ^ "\n")

(* ---- line reads ---- *)

(* [pending] buffers bytes already read past the previous newline, so
   pipelined replies survive across calls. *)
let recv_line ?deadline fd pending =
  let take_line () =
    let s = Buffer.contents pending in
    match String.index_opt s '\n' with
    | None -> None
    | Some i ->
        Buffer.clear pending;
        Buffer.add_substring pending s (i + 1) (String.length s - i - 1);
        Some (String.sub s 0 i)
  in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match take_line () with
    | Some line -> Ok line
    | None -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 ->
            if Buffer.length pending > 0 then
              Error
                (Closed
                   (Printf.sprintf "torn frame: peer closed after %d byte(s) of an unterminated reply"
                      (Buffer.length pending)))
            else Error (Closed "peer closed the connection")
        | n ->
            Buffer.add_subbytes pending chunk 0 n;
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
            match wait_fd ~for_read:true fd deadline with
            | Ok () -> go ()
            | Error _ as e -> e)
        | exception Unix.Unix_error (err, _, _) -> Error (closing_error err "read"))
  in
  go ()

(* ---- accept ---- *)

let rec accept fd =
  match Unix.accept fd with
  | conn -> Ok conn
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept fd
  | exception Unix.Unix_error (err, _, _) -> Error (closing_error err "accept")
