open Streaming

type law = Deterministic | Exponential | Erlang of int

let law_of_string s =
  match String.split_on_char ':' s with
  | [ "deterministic" ] -> Ok Deterministic
  | [ "exponential" ] -> Ok Exponential
  | [ "erlang"; k ] -> (
      match int_of_string_opt k with
      | Some k when k >= 1 -> Ok (Erlang k)
      | _ -> Error "erlang:K needs a positive integer phase count")
  | _ -> Error (Printf.sprintf "unknown law %S (deterministic|exponential|erlang:K)" s)

let law_to_string = function
  | Deterministic -> "deterministic"
  | Exponential -> "exponential"
  | Erlang k -> Printf.sprintf "erlang:%d" k

type query = {
  instance : string;
  model : Model.t;
  law : law;
  cap : int;
  wall : float option;
  sweeps : int option;
  states : int option;
  simulate : bool;
}

let default_cap = 500_000

type prepared = { key : string; canonical : string; mapping : Mapping.t }

let prepare q =
  match Instance_io.parse q.instance with
  | Error msg -> Error msg
  | Ok mapping ->
      let canonical = Instance_io.to_string mapping in
      let key =
        Printf.sprintf "v1|model=%s|law=%s|cap=%d|sim=%b\n%s" (Model.to_string q.model)
          (law_to_string q.law) q.cap q.simulate canonical
      in
      Ok { key; canonical; mapping }

type outcome = {
  throughput : float;
  quality : string;
  degraded : bool;
  provenance : string;
  pattern_states : int;
}

(* state-space-size proxy: every communication pattern of the mapping
   contributes its Young-lattice size S(u,v) — the quantity that actually
   drives the cost of the exact solvers *)
let pattern_state_count mapping =
  let r = Mapping.replication mapping in
  let total = ref 0 in
  for i = 0 to Array.length r - 2 do
    total := !total + Young.Combin.state_count ~u:r.(i) ~v:r.(i + 1)
  done;
  !total

let quality_string = function
  | Supervise.Provenance.Exact -> "exact"
  | Supervise.Provenance.Iterative _ -> "iterative"
  | Supervise.Provenance.Simulated _ -> "simulated"

let budget_of q =
  match (q.wall, q.sweeps, q.states) with
  | None, None, None -> None
  | wall, sweeps, states -> Some (Supervise.Budget.create ?wall ?sweeps ?states ())

let exact rho = (rho, "exact", false, "exact")

let solve prepared q =
  let mapping = prepared.mapping in
  match
    match (q.law, q.model) with
    | Deterministic, model -> exact (Deterministic.throughput mapping model)
    | Exponential, Model.Overlap -> exact (Expo.overlap_throughput mapping)
    | Exponential, Model.Strict ->
        let budget = budget_of q in
        let rho, prov =
          if q.simulate then Experiments.Solve.throughput ~cap:q.cap ?budget mapping
          else Expo.strict_throughput_supervised ~cap:q.cap ?budget mapping
        in
        ( rho,
          quality_string prov.Supervise.Provenance.quality,
          prov.Supervise.Provenance.degraded,
          Supervise.Provenance.describe prov )
    | Erlang phases, Model.Overlap -> exact (Expo.overlap_throughput_erlang ~phases mapping)
    | Erlang phases, Model.Strict -> exact (Expo.strict_throughput_erlang ~cap:q.cap ~phases mapping)
  with
  | rho, quality, degraded, provenance ->
      Ok
        {
          throughput = rho;
          quality;
          degraded;
          provenance;
          pattern_states = pattern_state_count mapping;
        }
  | exception Supervise.Error.Solver_error err -> Error err
  | exception Invalid_argument msg ->
      Error (Supervise.Error.Numerical { what = msg; where = "Service.Engine.solve" })

let outcome_json o =
  Json.Obj
    [
      ("throughput", Json.Float o.throughput);
      ("quality", Json.String o.quality);
      ("degraded", Json.Bool o.degraded);
      ("provenance", Json.String o.provenance);
      ("pattern_states", Json.Int o.pattern_states);
    ]

(* ---- multi-tenant queries ---- *)

type multi_query = {
  m_instance : string;
  m_model : Model.t;
  m_law : law;
  m_cap : int;
  m_wall : float option;
}

type prepared_multi = { m_key : string; m_canonical : string; m_share : Tenancy.Platform_share.t }

let prepare_multi q =
  match Instance_io.parse_multi q.m_instance with
  | Error msg -> Error msg
  | Ok decls -> (
      match Tenancy.Platform_share.create ~tenants:decls with
      | Error msg -> Error msg
      | Ok share ->
          let canonical = Instance_io.multi_to_string decls in
          let key =
            Printf.sprintf "v1|multi|model=%s|law=%s|cap=%d\n%s" (Model.to_string q.m_model)
              (law_to_string q.m_law) q.m_cap canonical
          in
          Ok { m_key = key; m_canonical = canonical; m_share = share })

type tenant_outcome = {
  t_id : string;
  t_weight : float;
  t_floor : float;
  t_bound : float;
  t_wall : float option;
  t_outcome : outcome;
}

type multi_error =
  | Rejected of { tenant : string; victim : string; floor : float; bound : float }
  | Solver_failed of Supervise.Error.t

(* admission first — the cheap deterministic bounds decide before any
   exact solve is paid for; then each tenant solves on its scaled
   mapping under a weighted-fair split of the request's wall budget *)
let solve_multi prepared q =
  let share = prepared.m_share in
  let k = Tenancy.Platform_share.n_tenants share in
  let bounds = Array.init k (fun i -> Tenancy.Platform_share.bound share ~tenant:i q.m_model) in
  let rejection =
    let rec go i =
      if i >= k then None
      else
        let d = Tenancy.Platform_share.decl share i in
        if bounds.(i) < d.Instance_io.floor then
          Some
            (Rejected
               {
                 tenant = d.Instance_io.tenant_id;
                 victim = d.Instance_io.tenant_id;
                 floor = d.Instance_io.floor;
                 bound = bounds.(i);
               })
        else go (i + 1)
    in
    go 0
  in
  match rejection with
  | Some r -> Error r
  | None -> (
      let total_weight =
        List.fold_left
          (fun acc d -> acc +. d.Instance_io.weight)
          0.0
          (Tenancy.Platform_share.decls share)
      in
      let rec go i acc =
        if i >= k then Ok (List.rev acc)
        else
          let d = Tenancy.Platform_share.decl share i in
          (* weighted-fair budget accounting: tenant i's slice of the
             request's wall budget is proportional to its weight *)
          let wall =
            Option.map (fun w -> w *. d.Instance_io.weight /. total_weight) q.m_wall
          in
          let tq =
            {
              instance = "";
              model = q.m_model;
              law = q.m_law;
              cap = q.m_cap;
              wall;
              sweeps = None;
              states = None;
              simulate = false;
            }
          in
          let tprepared =
            {
              key = "";
              canonical = "";
              mapping = Tenancy.Platform_share.scaled_mapping share ~tenant:i;
            }
          in
          match solve tprepared tq with
          | Error err -> Error (Solver_failed err)
          | Ok outcome ->
              go (i + 1)
                ({
                   t_id = d.Instance_io.tenant_id;
                   t_weight = d.Instance_io.weight;
                   t_floor = d.Instance_io.floor;
                   t_bound = bounds.(i);
                   t_wall = wall;
                   t_outcome = outcome;
                 }
                :: acc)
      in
      go 0 [])

let multi_result_json q outcomes =
  Json.Obj
    [
      ("model", Json.String (Model.to_string q.m_model));
      ("law", Json.String (law_to_string q.m_law));
      ( "tenants",
        Json.List
          (List.map
             (fun t ->
               Json.Obj
                 ([
                    ("tenant", Json.String t.t_id);
                    ("weight", Json.Float t.t_weight);
                    ("floor", Json.Float t.t_floor);
                    ("bound", Json.Float t.t_bound);
                  ]
                 @ (match t.t_wall with
                   | Some w -> [ ("wall", Json.Float w) ]
                   | None -> [])
                 @ [ ("result", outcome_json t.t_outcome) ]))
             outcomes) );
    ]

let admit prepared q =
  Tenancy.Admission.sequence ~model:q.m_model (Tenancy.Platform_share.decls prepared.m_share)
