open Streaming

type law = Deterministic | Exponential | Erlang of int

let law_of_string s =
  match String.split_on_char ':' s with
  | [ "deterministic" ] -> Ok Deterministic
  | [ "exponential" ] -> Ok Exponential
  | [ "erlang"; k ] -> (
      match int_of_string_opt k with
      | Some k when k >= 1 -> Ok (Erlang k)
      | _ -> Error "erlang:K needs a positive integer phase count")
  | _ -> Error (Printf.sprintf "unknown law %S (deterministic|exponential|erlang:K)" s)

let law_to_string = function
  | Deterministic -> "deterministic"
  | Exponential -> "exponential"
  | Erlang k -> Printf.sprintf "erlang:%d" k

type query = {
  instance : string;
  model : Model.t;
  law : law;
  cap : int;
  wall : float option;
  sweeps : int option;
  states : int option;
  simulate : bool;
}

let default_cap = 500_000

type prepared = { key : string; canonical : string; mapping : Mapping.t }

let prepare q =
  match Instance_io.parse q.instance with
  | Error msg -> Error msg
  | Ok mapping ->
      let canonical = Instance_io.to_string mapping in
      let key =
        Printf.sprintf "v1|model=%s|law=%s|cap=%d|sim=%b\n%s" (Model.to_string q.model)
          (law_to_string q.law) q.cap q.simulate canonical
      in
      Ok { key; canonical; mapping }

type outcome = {
  throughput : float;
  quality : string;
  degraded : bool;
  provenance : string;
  pattern_states : int;
}

(* state-space-size proxy: every communication pattern of the mapping
   contributes its Young-lattice size S(u,v) — the quantity that actually
   drives the cost of the exact solvers *)
let pattern_state_count mapping =
  let r = Mapping.replication mapping in
  let total = ref 0 in
  for i = 0 to Array.length r - 2 do
    total := !total + Young.Combin.state_count ~u:r.(i) ~v:r.(i + 1)
  done;
  !total

let quality_string = function
  | Supervise.Provenance.Exact -> "exact"
  | Supervise.Provenance.Iterative _ -> "iterative"
  | Supervise.Provenance.Simulated _ -> "simulated"

let budget_of q =
  match (q.wall, q.sweeps, q.states) with
  | None, None, None -> None
  | wall, sweeps, states -> Some (Supervise.Budget.create ?wall ?sweeps ?states ())

let exact rho = (rho, "exact", false, "exact")

let solve prepared q =
  let mapping = prepared.mapping in
  match
    match (q.law, q.model) with
    | Deterministic, model -> exact (Deterministic.throughput mapping model)
    | Exponential, Model.Overlap -> exact (Expo.overlap_throughput mapping)
    | Exponential, Model.Strict ->
        let budget = budget_of q in
        let rho, prov =
          if q.simulate then Experiments.Solve.throughput ~cap:q.cap ?budget mapping
          else Expo.strict_throughput_supervised ~cap:q.cap ?budget mapping
        in
        ( rho,
          quality_string prov.Supervise.Provenance.quality,
          prov.Supervise.Provenance.degraded,
          Supervise.Provenance.describe prov )
    | Erlang phases, Model.Overlap -> exact (Expo.overlap_throughput_erlang ~phases mapping)
    | Erlang phases, Model.Strict -> exact (Expo.strict_throughput_erlang ~cap:q.cap ~phases mapping)
  with
  | rho, quality, degraded, provenance ->
      Ok
        {
          throughput = rho;
          quality;
          degraded;
          provenance;
          pattern_states = pattern_state_count mapping;
        }
  | exception Supervise.Error.Solver_error err -> Error err
  | exception Invalid_argument msg ->
      Error (Supervise.Error.Numerical { what = msg; where = "Service.Engine.solve" })

let outcome_json o =
  Json.Obj
    [
      ("throughput", Json.Float o.throughput);
      ("quality", Json.String o.quality);
      ("degraded", Json.Bool o.degraded);
      ("provenance", Json.String o.provenance);
      ("pattern_states", Json.Int o.pattern_states);
    ]
