(** Deadline-aware, signal-safe socket plumbing shared by {!Client},
    {!Server} and the cluster router.

    Deadlines are absolute [Unix.gettimeofday] instants: one per-request
    budget threads unchanged through connect, write and read.  Every
    path retries [EINTR]; a peer closing mid-frame is a typed [Closed]
    error, never an exception or a SIGPIPE-killed process. *)

type error =
  | Refused of string  (** connect refused / socket absent *)
  | Timeout of string  (** deadline exceeded *)
  | Closed of string  (** peer EOF, reset, or torn frame *)
  | Transport of string  (** any other socket-level failure *)
  | Bad_reply of string  (** reply line that does not parse *)

val error_message : error -> string

val retriable : error -> bool
(** Whether a fresh attempt can plausibly succeed: everything but
    [Bad_reply] (for idempotent requests — which all solve requests are,
    being keyed by their canonical cache key). *)

val ignore_sigpipe : unit -> unit
(** Ignore SIGPIPE process-wide (idempotent, safe where the signal does
    not exist) so writes to a dead peer surface as [EPIPE] → [Closed]. *)

val connect : ?deadline:float -> Protocol.addr -> (Unix.file_descr, error) result
(** Non-blocking connect bounded by [deadline]; the returned fd is left
    in non-blocking mode. *)

val write_all : ?deadline:float -> Unix.file_descr -> string -> (unit, error) result
(** Write the whole string, waiting for writability (bounded by
    [deadline]) on non-blocking fds, retrying [EINTR] on all. *)

val send_line : ?deadline:float -> Unix.file_descr -> string -> (unit, error) result
(** [write_all] of [line ^ "\n"]. *)

val recv_line : ?deadline:float -> Unix.file_descr -> Buffer.t -> (string, error) result
(** One newline-terminated line (without the newline); bytes past it
    stay in the caller-owned [pending] buffer for the next call.  EOF
    mid-line is a [Closed] torn-frame error. *)

val accept : Unix.file_descr -> (Unix.file_descr * Unix.sockaddr, error) result
(** [EINTR]-retrying accept. *)
