(* NDJSON framing: byte stream in, frame events out.

   One instance per connection.  A frame growing past [max_frame] fires
   [`Oversized] exactly once (at the crossing, so the peer hears about
   it immediately) and the rest of the line is discarded; the newline
   ends the skip and the connection keeps working.  Shared by the
   daemon's connection loop and the cluster router so both ends of a
   forwarded connection frame identically. *)

type t = {
  max_frame : int;
  acc : Buffer.t;
  mutable skipping : bool;
}

type event = Line of string | Oversized

let create ~max_frame =
  if max_frame < 1 then invalid_arg "Frames.create: max_frame must be positive";
  { max_frame; acc = Buffer.create 512; skipping = false }

let feed_char t c emit =
  if c = '\n' then begin
    if t.skipping then t.skipping <- false
    else begin
      let line = Buffer.contents t.acc in
      Buffer.clear t.acc;
      emit (Line line)
    end
  end
  else if not t.skipping then begin
    Buffer.add_char t.acc c;
    if Buffer.length t.acc > t.max_frame then begin
      Buffer.clear t.acc;
      t.skipping <- true;
      emit Oversized
    end
  end

let feed t bytes n emit =
  for i = 0 to n - 1 do
    feed_char t (Bytes.get bytes i) emit
  done

let pending t = (not t.skipping) && Buffer.length t.acc > 0
