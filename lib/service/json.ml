type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* shortest decimal that parses back to the same float, as in
   [Instance_io]: rendering is part of the cache key and must be stable *)
let exact_float v =
  let short = Printf.sprintf "%.12g" v in
  if float_of_string short = v then short else Printf.sprintf "%.17g" v

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let render v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
        if Float.is_finite f then begin
          let s = exact_float f in
          Buffer.add_string buf s;
          (* keep the int/float distinction on the wire *)
          if String.for_all (fun c -> c = '-' || (c >= '0' && c <= '9')) s then
            Buffer.add_string buf ".0"
        end
        else Buffer.add_string buf "null"
    | String s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            go x)
          xs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            escape buf k;
            Buffer.add_string buf "\":";
            go x)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

exception Bad of string

let parse line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos >= n then fail "unexpected end of input" else line.[!pos] in
  let advance () = incr pos in
  let expect c =
    if !pos >= n || line.[!pos] <> c then fail (Printf.sprintf "expected %C" c) else advance ()
  in
  let skip_ws () =
    while !pos < n && (match line.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  (* BMP code point to UTF-8; surrogates are rejected where they are read *)
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let code =
      try int_of_string ("0x" ^ String.sub line !pos 4) with _ -> fail "bad \\u escape"
    in
    pos := !pos + 4;
    code
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      let c = peek () in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          let e = peek () in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              let code = hex4 () in
              if code >= 0xd800 && code <= 0xdfff then fail "surrogate in \\u escape"
              else add_utf8 buf code
          | _ -> fail "unknown escape");
          go ())
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = '-' then advance ();
    let is_digit c = c >= '0' && c <= '9' in
    let digits () =
      if !pos >= n || not (is_digit line.[!pos]) then fail "bad number";
      while !pos < n && is_digit line.[!pos] do
        advance ()
      done
    in
    let int_start = !pos in
    digits ();
    if !pos - int_start > 1 && line.[int_start] = '0' then fail "leading zero";
    let fractional = !pos < n && line.[!pos] = '.' in
    if fractional then begin
      advance ();
      digits ()
    end;
    let exponent = !pos < n && (line.[!pos] = 'e' || line.[!pos] = 'E') in
    if exponent then begin
      advance ();
      if !pos < n && (line.[!pos] = '+' || line.[!pos] = '-') then advance ();
      digits ()
    end;
    let text = String.sub line start (!pos - start) in
    if not (fractional || exponent) then
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
    else Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '"' -> String (parse_string ())
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | ',' -> advance (); members ()
            | '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | ',' -> advance (); elements ()
            | ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | 't' ->
        if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
          pos := !pos + 4;
          Bool true
        end
        else fail "bad literal"
    | 'f' ->
        if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
          pos := !pos + 5;
          Bool false
        end
        else fail "bad literal"
    | 'n' ->
        if !pos + 4 <= n && String.sub line !pos 4 = "null" then begin
          pos := !pos + 4;
          Null
        end
        else fail "bad literal"
    | '-' | '0' .. '9' -> parse_number ()
    | _ -> fail "unexpected character"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg
  | exception Failure _ -> Error "bad number"

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_string_opt = function String s -> Some s | _ -> None

let to_int_opt = function
  | Int n -> Some n
  | Float f when Float.is_integer f && Float.abs f <= 1e15 -> Some (int_of_float f)
  | _ -> None

let to_float_opt = function Int n -> Some (float_of_int n) | Float f -> Some f | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
