(* Classic hash-table-plus-doubly-linked-list LRU.  The list is threaded
   through the nodes themselves: [head] is the most recently used, [tail]
   the eviction candidate. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
}

type stats = { hits : int; misses : int; entries : int; capacity : int; evictions : int }

type 'a t = {
  capacity : int;
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;
  mutable tail : 'a node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutex : Mutex.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  {
    capacity;
    table = Hashtbl.create (min capacity 64);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    mutex = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some nx -> nx.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find t key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some node ->
          t.hits <- t.hits + 1;
          unlink t node;
          push_front t node;
          Some node.value
      | None ->
          t.misses <- t.misses + 1;
          None)

let add t key value =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some node ->
          node.value <- value;
          unlink t node;
          push_front t node
      | None ->
          if Hashtbl.length t.table >= t.capacity then begin
            match t.tail with
            | Some victim ->
                unlink t victim;
                Hashtbl.remove t.table victim.key;
                t.evictions <- t.evictions + 1
            | None -> ()
          end;
          let node = { key; value; prev = None; next = None } in
          Hashtbl.replace t.table key node;
          push_front t node)

let mem t key = locked t (fun () -> Hashtbl.mem t.table key)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        entries = Hashtbl.length t.table;
        capacity = t.capacity;
        evictions = t.evictions;
      })

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.head <- None;
      t.tail <- None;
      (* a cleared cache starts a fresh life: stale hit/miss/eviction
         counters would skew every post-clear hit-rate computation and the
         daemon's stats reply *)
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)
