(** Minimal self-contained JSON for the query service's NDJSON protocol.

    [Supervise.Journal] carries a flat string-field codec that is enough
    for experiment journals; the wire protocol needs the full value space
    (numbers, booleans, nesting), so the service owns this one.  Rendering
    is deterministic — object fields keep their construction order and
    floats use the shortest decimal that parses back to the same value —
    so rendering the same value twice yields byte-identical text.  The
    result cache relies on this to replay answers verbatim. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val render : t -> string
(** One line, no trailing newline.  Non-finite floats render as [null]
    (JSON has no literal for them); solver outputs are vetted finite
    before they get here. *)

val parse : string -> (t, string) result
(** Strict single-value parse of a whole line; trailing garbage, control
    characters in strings, lone surrogates and truncated input are
    errors.  Numbers without [.]/[e] that fit an OCaml [int] parse as
    [Int], everything else as [Float]. *)

(* ---- accessors used by the protocol layer ---- *)

val member : string -> t -> t option
(** [member k (Obj _)] is the field [k]; [None] on missing or non-object. *)

val to_string_opt : t -> string option
val to_int_opt : t -> int option
(** [Int n] and integral [Float]s both convert. *)

val to_float_opt : t -> float option
(** [Int] and [Float] both convert. *)

val to_bool_opt : t -> bool option
