type config = {
  cache_capacity : int;
  max_inflight : int;
  max_frame : int;
  default_wall : float option;
  log : Format.formatter;
  flight : string option;
      (* flight-recorder dump path: arms Obs.Recorder so a dying worker
         leaves its last spans/events behind *)
}

(* Deterministic fault injection, driven by the SUPERVISE_INJECT
   environment variable (grammar in EXPERIMENTS.md).  The cluster chaos
   harness uses these to crash, slow down and corrupt individual workers
   at exact request counts; rule kinds belonging to the experiment
   runner's grammar (fail/flaky/degrade) are ignored here, and vice
   versa, so one variable drives both layers. *)
type inject = {
  kill_after : int option;  (* kill-after=K: die, unacknowledged, on solve K+1 *)
  delay_ms : float option;  (* delay-ms=D: sleep D ms before every solve reply *)
  torn_every : int option;  (* torn-reply=N: truncate every Nth reply, close *)
  refuse_s : float option;  (* refuse-accept=S: bind only after S seconds *)
}

let no_inject = { kill_after = None; delay_ms = None; torn_every = None; refuse_s = None }

let inject_of_env () =
  match Sys.getenv_opt "SUPERVISE_INJECT" with
  | None | Some "" -> no_inject
  | Some spec ->
      List.fold_left
        (fun acc rule ->
          match String.index_opt rule '=' with
          | None -> acc
          | Some i -> (
              let kind = String.sub rule 0 i in
              let arg = String.sub rule (i + 1) (String.length rule - i - 1) in
              match kind with
              | "kill-after" -> (
                  match int_of_string_opt arg with
                  | Some k when k >= 0 -> { acc with kill_after = Some k }
                  | _ -> acc)
              | "delay-ms" -> (
                  match float_of_string_opt arg with
                  | Some d when d >= 0.0 -> { acc with delay_ms = Some d }
                  | _ -> acc)
              | "torn-reply" -> (
                  match int_of_string_opt arg with
                  | Some n when n >= 1 -> { acc with torn_every = Some n }
                  | _ -> acc)
              | "refuse-accept" -> (
                  match float_of_string_opt arg with
                  | Some s when s >= 0.0 -> { acc with refuse_s = Some s }
                  | _ -> acc)
              | _ -> acc))
        no_inject
        (String.split_on_char ',' spec)

let default_config () =
  {
    cache_capacity = 256;
    max_inflight = 4 * Parallel.Pool.size (Parallel.Pool.get ());
    max_frame = 1 lsl 20;
    default_wall = None;
    log = Format.err_formatter;
    flight = None;
  }

(* what a cache hit replays: the rendered result object verbatim, plus the
   two numbers the metrics want without re-parsing it *)
type entry = { rendered : string; quality : string; states : int }

type t = {
  config : config;
  metrics : Metrics.t;
  cache : entry Lru.t;
  admit_mutex : Mutex.t;
  mutable inflight : int;
  stop : bool Atomic.t;
  mutable stop_pipe : (Unix.file_descr * Unix.file_descr) option;
  inject : inject;
  solve_seen : int Atomic.t;  (* solves accepted, for kill-after *)
  replies_sent : int Atomic.t;  (* replies written, for torn-reply *)
  slog : Obs.Log.t;  (* structured event log, routed through config.log *)
}

let create config =
  let t =
    {
      config;
      metrics = Metrics.create ();
      cache = Lru.create ~capacity:config.cache_capacity;
      admit_mutex = Mutex.create ();
      inflight = 0;
      stop = Atomic.make false;
      stop_pipe = None;
      inject = inject_of_env ();
      solve_seen = Atomic.make 0;
      replies_sent = Atomic.make 0;
      slog =
        Obs.Log.create ~sink:(Obs.Log.formatter_sink config.log)
          ~comp:"service" ();
    }
  in
  (match config.flight with
  | Some path -> Obs.Recorder.install ~path
  | None -> ());
  (* Mirror externally-owned statistics into the server's registry on
     demand (stats/metrics requests).  Registration is idempotent by name,
     and the registry is per-server, so concurrent servers stay isolated. *)
  let reg = Metrics.registry t.metrics in
  let lru_gauge name help =
    Obs.Metrics.Gauge.create ~registry:reg ~help ("service_cache_" ^ name)
  in
  let g_hits = lru_gauge "hits" "LRU result-cache hits" in
  let g_misses = lru_gauge "misses" "LRU result-cache misses" in
  let g_entries = lru_gauge "entries" "LRU result-cache live entries" in
  let g_evictions = lru_gauge "evictions" "LRU result-cache evictions" in
  Obs.Metrics.register_collector ~registry:reg ~name:"service.lru" (fun () ->
      let c = Lru.stats t.cache in
      Obs.Metrics.Gauge.set g_hits (float_of_int c.Lru.hits);
      Obs.Metrics.Gauge.set g_misses (float_of_int c.Lru.misses);
      Obs.Metrics.Gauge.set g_entries (float_of_int c.Lru.entries);
      Obs.Metrics.Gauge.set g_evictions (float_of_int c.Lru.evictions));
  let pat_gauge name help =
    Obs.Metrics.Gauge.create ~registry:reg ~help ("young_pattern_cache_" ^ name)
  in
  let g_phits = pat_gauge "hits" "Pattern-solve memo hits" in
  let g_pmisses = pat_gauge "misses" "Pattern-solve memo misses" in
  let g_pstructures = pat_gauge "structures" "Cached per-shape marking structures" in
  let g_presults = pat_gauge "results" "Cached pattern throughput results" in
  Obs.Metrics.register_collector ~registry:reg ~name:"young.pattern" (fun () ->
      let c = Young.Pattern.cache_stats () in
      Obs.Metrics.Gauge.set g_phits (float_of_int c.Young.Pattern.hits);
      Obs.Metrics.Gauge.set g_pmisses (float_of_int c.Young.Pattern.misses);
      Obs.Metrics.Gauge.set g_pstructures (float_of_int c.Young.Pattern.structures);
      Obs.Metrics.Gauge.set g_presults (float_of_int c.Young.Pattern.results));
  t

let metrics t = t.metrics
let cache t = t.cache

let request_stop t =
  if not (Atomic.exchange t.stop true) then
    match t.stop_pipe with
    | Some (_, wr) -> ( try ignore (Unix.write_substring wr "x" 0 1) with Unix.Unix_error _ -> ())
    | None -> ()

(* ---- admission control: bounded in-flight solves, busy past it ---- *)

let try_admit t =
  Mutex.lock t.admit_mutex;
  let admitted = t.inflight < t.config.max_inflight in
  if admitted then t.inflight <- t.inflight + 1;
  let current = t.inflight in
  Mutex.unlock t.admit_mutex;
  if admitted then Ok ()
  else Error (Protocol.Busy { inflight = current; limit = t.config.max_inflight })

let release t () =
  Mutex.lock t.admit_mutex;
  t.inflight <- t.inflight - 1;
  Mutex.unlock t.admit_mutex

let stats_json t =
  let c = Lru.stats t.cache in
  Mutex.lock t.admit_mutex;
  let inflight = t.inflight in
  Mutex.unlock t.admit_mutex;
  Json.Obj
    [
      ("version", Json.Int Protocol.version);
      ("metrics", Metrics.to_json t.metrics);
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int c.Lru.hits);
            ("misses", Json.Int c.Lru.misses);
            ("entries", Json.Int c.Lru.entries);
            ("capacity", Json.Int c.Lru.capacity);
            ("evictions", Json.Int c.Lru.evictions);
          ] );
      ( "young_pattern_cache",
        let c = Young.Pattern.cache_stats () in
        Json.Obj
          [
            ("hits", Json.Int c.Young.Pattern.hits);
            ("misses", Json.Int c.Young.Pattern.misses);
            ("structures", Json.Int c.Young.Pattern.structures);
            ("results", Json.Int c.Young.Pattern.results);
          ] );
      ("pool_domains", Json.Int (Parallel.Pool.size (Parallel.Pool.get ())));
      ("inflight", Json.Int inflight);
      ("max_inflight", Json.Int t.config.max_inflight);
      ("max_frame", Json.Int t.config.max_frame);
      ("draining", Json.Bool (Atomic.get t.stop));
    ]

(* ---- one solve, cache-first ---- *)

let solve_one t q =
  match Engine.prepare q with
  | Error msg -> Error (Protocol.Bad_request msg)
  | Ok prepared -> (
      let t0 = Unix.gettimeofday () in
      match Lru.find t.cache prepared.Engine.key with
      | Some entry ->
          Metrics.record_solve t.metrics ~cached:true ~quality:entry.quality
            ~latency:(Unix.gettimeofday () -. t0)
            ~states:entry.states;
          Ok (entry.rendered, true)
      | None -> (
          (* the server-side wall ceiling protects the daemon from
             budget-less requests; an explicit client budget wins *)
          let q =
            match (q.Engine.wall, t.config.default_wall) with
            | None, Some _ -> { q with Engine.wall = t.config.default_wall }
            | _ -> q
          in
          match Engine.solve prepared q with
          | Ok outcome ->
              let rendered = Json.render (Engine.outcome_json outcome) in
              Lru.add t.cache prepared.Engine.key
                {
                  rendered;
                  quality = outcome.Engine.quality;
                  states = outcome.Engine.pattern_states;
                };
              Metrics.record_solve t.metrics ~cached:false ~quality:outcome.Engine.quality
                ~latency:(Unix.gettimeofday () -. t0)
                ~states:outcome.Engine.pattern_states;
              Ok (rendered, false)
          | Error err -> Error (Protocol.Solver err)))

(* ---- one multi-tenant solve, cache-first ---- *)

(* latency attribution follows the weighted-fair shares: tenant i is
   charged latency * w_i / sum(w) of the whole multi solve *)
let record_tenants t share ~latency =
  let decls = Tenancy.Platform_share.decls share in
  let total = List.fold_left (fun acc d -> acc +. d.Streaming.Instance_io.weight) 0.0 decls in
  List.iter
    (fun d ->
      Metrics.record_tenant_solve t.metrics ~tenant:d.Streaming.Instance_io.tenant_id
        ~latency:(latency *. d.Streaming.Instance_io.weight /. total))
    decls

let multi_quality outcomes =
  let rank = function "exact" -> 0 | "iterative" -> 1 | _ -> 2 in
  List.fold_left
    (fun worst o ->
      let q = o.Engine.t_outcome.Engine.quality in
      if rank q > rank worst then q else worst)
    "exact" outcomes

let solve_multi_one t q =
  match Engine.prepare_multi q with
  | Error msg -> Error (Protocol.Bad_request msg)
  | Ok prepared -> (
      let t0 = Unix.gettimeofday () in
      match Lru.find t.cache prepared.Engine.m_key with
      | Some entry ->
          let latency = Unix.gettimeofday () -. t0 in
          Metrics.record_solve t.metrics ~cached:true ~quality:entry.quality ~latency
            ~states:entry.states;
          Metrics.record_admission t.metrics ~decision:"admitted";
          record_tenants t prepared.Engine.m_share ~latency;
          Ok (entry.rendered, true)
      | None -> (
          let q =
            match (q.Engine.m_wall, t.config.default_wall) with
            | None, Some _ -> { q with Engine.m_wall = t.config.default_wall }
            | _ -> q
          in
          match Engine.solve_multi prepared q with
          | Ok outcomes ->
              let rendered = Json.render (Engine.multi_result_json q outcomes) in
              let states =
                List.fold_left
                  (fun acc o -> acc + o.Engine.t_outcome.Engine.pattern_states)
                  0 outcomes
              in
              let quality = multi_quality outcomes in
              Lru.add t.cache prepared.Engine.m_key { rendered; quality; states };
              let latency = Unix.gettimeofday () -. t0 in
              Metrics.record_solve t.metrics ~cached:false ~quality ~latency ~states;
              Metrics.record_admission t.metrics ~decision:"admitted";
              record_tenants t prepared.Engine.m_share ~latency;
              Ok (rendered, false)
          | Error (Engine.Rejected { tenant; victim; floor; bound }) ->
              Metrics.record_admission t.metrics ~decision:"rejected";
              Error (Protocol.Admission_rejected { tenant; victim; floor; bound })
          | Error (Engine.Solver_failed err) -> Error (Protocol.Solver err)))

(* the [admit] audit: the sequential decision trail, never cached (it is
   already cheap — bounds only, no exact solves) *)
let admit_one t q =
  match Engine.prepare_multi q with
  | Error msg -> Error (Protocol.Bad_request msg)
  | Ok prepared -> (
      match Engine.admit prepared q with
      | Error msg -> Error (Protocol.Internal msg)
      | Ok steps ->
          let step_json (s : Tenancy.Admission.step) =
            Metrics.record_admission t.metrics
              ~decision:(if s.Tenancy.Admission.admitted then "admitted" else "rejected");
            Json.Obj
              ([
                 ("tenant", Json.String s.Tenancy.Admission.decl.Streaming.Instance_io.tenant_id);
                 ("admitted", Json.Bool s.Tenancy.Admission.admitted);
                 ( "bounds",
                   Json.Obj
                     (List.map (fun (id, b) -> (id, Json.Float b)) s.Tenancy.Admission.bounds) );
               ]
              @
              match s.Tenancy.Admission.rejection with
              | None -> []
              | Some r ->
                  [
                    ( "error",
                      Protocol.error_json
                        (Protocol.Admission_rejected
                           {
                             tenant = r.Tenancy.Admission.newcomer;
                             victim = r.Tenancy.Admission.victim;
                             floor = r.Tenancy.Admission.floor;
                             bound = r.Tenancy.Admission.bound;
                           }) );
                  ])
          in
          let rendered_steps = List.map step_json steps in
          let admitted_ids =
            List.filter_map
              (fun (s : Tenancy.Admission.step) ->
                if s.Tenancy.Admission.admitted then
                  Some
                    (Json.String s.Tenancy.Admission.decl.Streaming.Instance_io.tenant_id)
                else None)
              steps
          in
          Ok
            (Json.render
               (Json.Obj
                  [
                    ("model", Json.String (Streaming.Model.to_string q.Engine.m_model));
                    ("admitted", Json.List admitted_ids);
                    ("steps", Json.List rendered_steps);
                  ])))

(* ---- request dispatch ---- *)

(* Injected faults on the solve path.  [kill-after=K] acknowledges the
   first K solves and dies — abruptly, skipping at_exit — on the next
   one, leaving it unacknowledged: the harshest spot for the cluster's
   zero-lost-acks invariant.  [delay-ms] stretches every solve. *)
let inject_solve t =
  (match t.inject.kill_after with
  | Some k ->
      if Atomic.fetch_and_add t.solve_seen 1 >= k then begin
        (* [Unix._exit] skips at_exit on purpose (the death must be
           unacknowledged), so the flight recorder dumps explicitly *)
        Obs.Recorder.crash_dump ~reason:"injected kill-after";
        Unix._exit 9
      end
  | None -> ());
  match t.inject.delay_ms with Some d -> Thread.delay (d /. 1000.0) | None -> ()

let respond t line =
  (* the trace context, when the request carries one, labels both the
     error log lines and the solve spans of this request *)
  let obs_ctx = ref None in
  let err id e =
    let kind = Protocol.error_kind e in
    Metrics.record_error t.metrics ~kind;
    Obs.Recorder.error_tick ~kind ();
    Obs.Log.warn t.slog
      ?trace:(Option.map fst !obs_ctx)
      ~attrs:[ ("kind", kind) ]
      "request_error";
    (Protocol.error_reply ~id e, `Continue)
  in
  (* inside an open span: tag it with the propagated context *)
  let tag_span () =
    match !obs_ctx with
    | Some (trace, span) ->
        Obs.Trace.add_attr "trace_id" trace;
        if span <> "" then Obs.Trace.add_attr "parent_span" span
    | None -> ()
  in
  match Json.parse line with
  | Error msg ->
      Metrics.record_request t.metrics ~cmd:"invalid";
      err None (Protocol.Parse_error msg)
  | Ok json -> (
      obs_ctx := Protocol.obs_context json;
      match Protocol.parse_request json with
      | Error (id, e) ->
          Metrics.record_request t.metrics ~cmd:"invalid";
          err id e
      | Ok (id, request) -> (
          let cmd =
            match request with
            | Protocol.Ping -> "ping"
            | Protocol.Stats -> "stats"
            | Protocol.Metrics _ -> "metrics"
            | Protocol.Shutdown -> "shutdown"
            | Protocol.Solve _ -> "solve"
            | Protocol.Solve_multi _ -> "solve_multi"
            | Protocol.Admit _ -> "admit"
            | Protocol.Batch _ -> "batch"
          in
          Metrics.record_request t.metrics ~cmd;
          match request with
          | Protocol.Ping ->
              let result =
                Json.render (Json.Obj [ ("pong", Json.Bool true); ("version", Json.Int Protocol.version) ])
              in
              (Protocol.ok_reply ~id ~result (), `Continue)
          | Protocol.Stats ->
              (Protocol.ok_reply ~id ~result:(Json.render (stats_json t)) (), `Continue)
          | Protocol.Metrics _ ->
              (* server-scoped metrics first, then the process-wide
                 registry (pool, solver and cache counters); a single
                 daemon has no fleet to scrape, so [fleet] is a no-op
                 here and the router answers it upstream *)
              let text = Metrics.prometheus t.metrics ^ Obs.Metrics.to_prometheus Obs.Metrics.default in
              let result =
                Json.render
                  (Json.Obj
                     [ ("format", Json.String "prometheus-text"); ("text", Json.String text) ])
              in
              (Protocol.ok_reply ~id ~result (), `Continue)
          | Protocol.Shutdown ->
              let result = Json.render (Json.Obj [ ("stopping", Json.Bool true) ]) in
              (Protocol.ok_reply ~id ~result (), `Shutdown)
          | Protocol.Solve q -> (
              inject_solve t;
              match try_admit t with
              | Error busy -> err id busy
              | Ok () -> (
                  Fun.protect ~finally:(release t) @@ fun () ->
                  match
                    Obs.Trace.span "service:solve" (fun () ->
                        tag_span ();
                        solve_one t q)
                  with
                  | Ok (rendered, cached) ->
                      (Protocol.ok_reply ~id ~cached ~result:rendered (), `Continue)
                  | Error e -> err id e))
          | Protocol.Solve_multi q -> (
              inject_solve t;
              match try_admit t with
              | Error busy -> err id busy
              | Ok () -> (
                  Fun.protect ~finally:(release t) @@ fun () ->
                  match
                    Obs.Trace.span "service:solve_multi" (fun () ->
                        tag_span ();
                        solve_multi_one t q)
                  with
                  | Ok (rendered, cached) ->
                      (Protocol.ok_reply ~id ~cached ~result:rendered (), `Continue)
                  | Error e -> err id e))
          | Protocol.Admit q -> (
              match try_admit t with
              | Error busy -> err id busy
              | Ok () -> (
                  Fun.protect ~finally:(release t) @@ fun () ->
                  match
                    Obs.Trace.span "service:admit" (fun () ->
                        tag_span ();
                        admit_one t q)
                  with
                  | Ok rendered -> (Protocol.ok_reply ~id ~result:rendered (), `Continue)
                  | Error e -> err id e))
          | Protocol.Batch items -> (
              inject_solve t;
              match try_admit t with
              | Error busy -> err id busy
              | Ok () ->
                  Fun.protect ~finally:(release t) @@ fun () ->
                  Obs.Trace.span "service:batch" @@ fun () ->
                  tag_span ();
                  let item_error e =
                    Metrics.record_error t.metrics ~kind:(Protocol.error_kind e);
                    Printf.sprintf "{\"ok\":false,\"error\":%s}" (Json.render (Protocol.error_json e))
                  in
                  let parts =
                    Parallel.Pool.map_list (Parallel.Pool.get ())
                      (fun item ->
                        match item with
                        | Error e -> item_error e
                        | Ok q -> (
                            match solve_one t q with
                            | Ok (rendered, cached) ->
                                Printf.sprintf "{\"ok\":true,\"cached\":%b,\"result\":%s}" cached
                                  rendered
                            | Error e -> item_error e))
                      items
                  in
                  let result =
                    Printf.sprintf "{\"count\":%d,\"results\":[%s]}" (List.length items)
                      (String.concat "," parts)
                  in
                  (Protocol.ok_reply ~id ~result (), `Continue))))

(* ---- the socket loop ---- *)

(* One reply line out; [torn-reply=N] injection truncates every Nth
   reply mid-line and reports failure so the connection closes — the
   peer sees a torn frame, exactly what a worker dying mid-write
   produces. *)
let send t fd line =
  let nth = Atomic.fetch_and_add t.replies_sent 1 + 1 in
  match t.inject.torn_every with
  | Some k when nth mod k = 0 ->
      ignore (Sockets.write_all fd (String.sub line 0 (String.length line / 2)));
      false
  | _ -> ( match Sockets.send_line fd line with Ok () -> true | Error _ -> false)

(* Wait until [fd] has data or the stop pipe fires; the stop byte is never
   consumed, so one write wakes every waiter, now and later. *)
let rec wait_readable fd stop_rd =
  match Unix.select [ fd; stop_rd ] [] [] (-1.0) with
  | readable, _, _ -> List.mem fd readable
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait_readable fd stop_rd

let conn_loop t stop_rd fd =
  let chunk_len = 4096 in
  let chunk = Bytes.create chunk_len in
  let frames = Frames.create ~max_frame:t.config.max_frame in
  let alive = ref true in
  let on_event = function
    | Frames.Oversized ->
        Metrics.record_error t.metrics ~kind:"oversized_frame";
        if
          not
            (send t fd
               (Protocol.error_reply ~id:None
                  (Protocol.Oversized_frame { limit = t.config.max_frame })))
        then alive := false
    | Frames.Line line ->
        (if String.trim line <> "" then begin
           let reply, k = respond t line in
           if not (send t fd reply) then alive := false;
           match k with
           | `Shutdown ->
               request_stop t;
               alive := false
           | `Continue -> ()
         end);
        (* a drain lets the request that is already being served finish,
           then closes the connection instead of reading the next frame *)
        if Atomic.get t.stop then alive := false
  in
  while !alive do
    if not (wait_readable fd stop_rd) then alive := false
    else
      match Unix.read fd chunk 0 chunk_len with
      | 0 ->
          (* EOF: an unterminated tail is a truncated frame — answer it
             (best effort; the peer may be gone) and close *)
          if Frames.pending frames then begin
            Metrics.record_error t.metrics ~kind:"parse_error";
            ignore
              (send t fd
                 (Protocol.error_reply ~id:None
                    (Protocol.Parse_error "truncated line: no newline before end of stream")))
          end;
          alive := false
      | n -> Frames.feed frames chunk n on_event
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> alive := false
  done;
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve t addr =
  Sockets.ignore_sigpipe ();
  (* refuse-accept=S injection: the listener does not exist for the
     first S seconds, so connects are refused — a wedged or slow-booting
     worker from the router's point of view *)
  (match t.inject.refuse_s with
  | Some s when s > 0.0 ->
      Obs.Log.info t.slog
        ~attrs:[ ("seconds", Printf.sprintf "%.3g" s) ]
        "inject_refuse_accept";
      Thread.delay s
  | _ -> ());
  let stop_rd, stop_wr = Unix.pipe () in
  t.stop_pipe <- Some (stop_rd, stop_wr);
  if Atomic.get t.stop then ignore (Unix.write_substring stop_wr "x" 0 1);
  let on_signal = Sys.Signal_handle (fun _ -> request_stop t) in
  let old_term = Sys.signal Sys.sigterm on_signal in
  let old_int = Sys.signal Sys.sigint on_signal in
  let domain =
    match addr with Protocol.Unix_domain _ -> Unix.PF_UNIX | Protocol.Tcp _ -> Unix.PF_INET
  in
  let listen_fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  let cleanup_path () =
    match addr with
    | Protocol.Unix_domain path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Protocol.Tcp _ -> ()
  in
  let finally () =
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    cleanup_path ();
    t.stop_pipe <- None;
    (try Unix.close stop_rd with Unix.Unix_error _ -> ());
    (try Unix.close stop_wr with Unix.Unix_error _ -> ());
    ignore (Sys.signal Sys.sigterm old_term);
    ignore (Sys.signal Sys.sigint old_int)
  in
  Fun.protect ~finally @@ fun () ->
  (match addr with Protocol.Tcp _ -> Unix.setsockopt listen_fd Unix.SO_REUSEADDR true | _ -> ());
  cleanup_path ();
  Unix.bind listen_fd (Protocol.sockaddr_of addr);
  Unix.listen listen_fd 64;
  Obs.Log.info t.slog
    ~attrs:
      [
        ("addr", Protocol.addr_to_string addr);
        ("cache", string_of_int t.config.cache_capacity);
        ("max_inflight", string_of_int t.config.max_inflight);
      ]
    "listening";
  let conns_mutex = Mutex.create () in
  let conns = ref [] in
  let rec accept_loop () =
    if not (Atomic.get t.stop) then
      if wait_readable listen_fd stop_rd then begin
        (match Sockets.accept listen_fd with
        | Ok (fd, _) ->
            let th = Thread.create (fun () -> conn_loop t stop_rd fd) () in
            Mutex.lock conns_mutex;
            conns := th :: !conns;
            Mutex.unlock conns_mutex
        | Error _ -> ());
        accept_loop ()
      end
  in
  accept_loop ();
  Obs.Log.info t.slog
    ~attrs:
      [
        ( "connections",
          string_of_int
            (Mutex.lock conns_mutex;
             let n = List.length !conns in
             Mutex.unlock conns_mutex;
             n) );
      ]
    "draining";
  Mutex.lock conns_mutex;
  let threads = !conns in
  Mutex.unlock conns_mutex;
  List.iter Thread.join threads;
  Obs.Log.info t.slog "drained";
  Metrics.dump t.metrics t.config.log
