(** The persistent throughput-query daemon.

    One listening socket (Unix-domain or TCP), one lightweight thread per
    connection, NDJSON request/reply in order per connection.  Solves are
    admitted against a bounded in-flight budget — past it the daemon
    answers a retriable [busy] error instead of queueing unboundedly —
    and answered from the LRU result cache or computed on the shared
    domain pool ({!Parallel.Pool.get}; batches fan their items out across
    it).  SIGTERM/SIGINT (and the [shutdown] command) start a graceful
    drain: stop accepting, let every in-flight request finish and its
    reply flush, dump the metrics, exit the serve loop.

    The request machinery is exposed separately from the socket loop
    ({!create} / {!respond}) so the protocol semantics are testable
    without a socket. *)

type config = {
  cache_capacity : int;  (** LRU entries (default 256) *)
  max_inflight : int;
      (** concurrent solve/batch requests admitted; 0 refuses all solves
          (useful in tests), default [4 * Parallel.Pool.size] *)
  max_frame : int;  (** request line byte limit (default 1 MiB) *)
  default_wall : float option;
      (** server-side wall budget applied to requests that carry none *)
  log : Format.formatter;
      (** structured-event (JSONL) log sink; use a null formatter to
          silence *)
  flight : string option;
      (** when set, arms the {!Obs.Recorder} flight recorder with this
          dump path: recent spans/events are dumped there atomically on
          exit, on a typed-error burst, and on an injected crash *)
}

val default_config : unit -> config

type entry = { rendered : string; quality : string; states : int }
(** A cached answer: the rendered [result] object replayed verbatim on a
    hit, plus what the metrics need without re-parsing it. *)

type t

val create : config -> t

val metrics : t -> Metrics.t
val cache : t -> entry Lru.t

val respond : t -> string -> string * [ `Continue | `Shutdown ]
(** [respond t line] is the reply to one request line, plus whether the
    daemon should keep serving.  Never raises on malformed input — every
    failure mode maps to a typed error reply. *)

val stats_json : t -> Json.t
(** What the [stats] command returns: metrics, cache counters, pool and
    admission state. *)

val request_stop : t -> unit
(** Ask a running {!serve} loop to drain and return; idempotent, safe
    from signal handlers and other threads. *)

val serve : t -> Protocol.addr -> unit
(** Binds, listens and serves until {!request_stop} (or SIGTERM/SIGINT,
    which it installs handlers for, or a [shutdown] request) fires; then
    drains in-flight connections, dumps metrics to [config.log] and
    returns.  Raises [Unix.Unix_error] if the socket cannot be bound.
    A pre-existing Unix-domain socket file at the path is replaced. *)
