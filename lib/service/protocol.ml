let version = 1

type error =
  | Parse_error of string
  | Version_mismatch of { got : string }
  | Unknown_command of string
  | Bad_request of string
  | Oversized_frame of { limit : int }
  | Busy of { inflight : int; limit : int }
  | Unavailable of { reason : string }
  | Admission_rejected of { tenant : string; victim : string; floor : float; bound : float }
  | Solver of Supervise.Error.t
  | Internal of string

let error_kind = function
  | Parse_error _ -> "parse_error"
  | Version_mismatch _ -> "version_mismatch"
  | Unknown_command _ -> "unknown_command"
  | Bad_request _ -> "bad_request"
  | Oversized_frame _ -> "oversized_frame"
  | Busy _ -> "busy"
  | Unavailable _ -> "unavailable"
  | Admission_rejected _ -> "admission_rejected"
  | Internal _ -> "internal"
  | Solver err -> (
      match err with
      | Supervise.Error.No_convergence _ -> "no_convergence"
      | Supervise.Error.State_space_exceeded _ -> "state_space_exceeded"
      | Supervise.Error.Non_ergodic _ -> "non_ergodic"
      | Supervise.Error.Numerical _ -> "numerical"
      | Supervise.Error.Budget_exhausted _ -> "budget_exhausted")

let error_message = function
  | Parse_error msg -> "malformed JSON: " ^ msg
  | Version_mismatch { got } ->
      Printf.sprintf "protocol version mismatch: daemon speaks %d, request says %s" version got
  | Unknown_command cmd -> Printf.sprintf "unknown command %S" cmd
  | Bad_request msg -> msg
  | Oversized_frame { limit } -> Printf.sprintf "frame exceeds the %d-byte limit" limit
  | Busy { inflight; limit } ->
      Printf.sprintf "daemon busy: %d request(s) in flight (limit %d); retry later" inflight limit
  | Unavailable { reason } -> Printf.sprintf "no worker available: %s; retry later" reason
  | Admission_rejected { tenant; victim; floor; bound } ->
      Printf.sprintf
        "admission rejected for tenant %S: tenant %S's bound %g falls below its floor %g" tenant
        victim bound floor
  | Solver err -> Supervise.Error.to_string err
  | Internal msg -> "internal error: " ^ msg

(* the typed payload survives the wire: a client can react to
   [budget_exhausted] vs [state_space_exceeded] without parsing prose *)
let error_extras = function
  | Solver (Supervise.Error.No_convergence { sweeps; residual }) ->
      [ ("sweeps", Json.Int sweeps); ("residual", Json.Float residual) ]
  | Solver (Supervise.Error.State_space_exceeded { cap; explored }) ->
      [ ("cap", Json.Int cap); ("explored", Json.Int explored) ]
  | Solver (Supervise.Error.Non_ergodic { recurrent; transient }) ->
      [ ("recurrent", Json.Int recurrent); ("transient", Json.Int transient) ]
  | Solver (Supervise.Error.Numerical { what; where }) ->
      [ ("what", Json.String what); ("where", Json.String where) ]
  | Solver (Supervise.Error.Budget_exhausted { elapsed }) ->
      [ ("elapsed_s", Json.Float elapsed) ]
  | Busy { inflight; limit } -> [ ("inflight", Json.Int inflight); ("limit", Json.Int limit) ]
  | Unavailable { reason } -> [ ("reason", Json.String reason) ]
  | Admission_rejected { tenant; victim; floor; bound } ->
      [
        ("tenant", Json.String tenant);
        ("victim", Json.String victim);
        ("floor", Json.Float floor);
        ("bound", Json.Float bound);
      ]
  | Oversized_frame { limit } -> [ ("limit", Json.Int limit) ]
  | _ -> []

(* [Unavailable] is the router shedding while every candidate worker is
   down or breaker-open — the sibling of a worker's own [Busy] *)
let retriable = function Busy _ | Unavailable _ -> true | _ -> false

let error_json e =
  Json.Obj
    ([
       ("kind", Json.String (error_kind e));
       ("message", Json.String (error_message e));
       ("retriable", Json.Bool (retriable e));
     ]
    @ error_extras e)

(* ---- request decoding ---- *)

let decode_query json =
  let str k = Option.bind (Json.member k json) Json.to_string_opt in
  let int k = Option.bind (Json.member k json) Json.to_int_opt in
  let flt k = Option.bind (Json.member k json) Json.to_float_opt in
  let bool_ k = Option.bind (Json.member k json) Json.to_bool_opt in
  let field_type_ok k conv =
    match Json.member k json with None -> true | Some v -> conv v <> None
  in
  if not (field_type_ok "instance" Json.to_string_opt) then
    Error (Bad_request "field 'instance' must be a string")
  else
    match str "instance" with
    | None -> Error (Bad_request "solve needs a string field 'instance'")
    | Some instance -> (
        let model_result =
          match str "model" with
          | None when field_type_ok "model" Json.to_string_opt -> Ok Streaming.Model.Overlap
          | Some "overlap" -> Ok Streaming.Model.Overlap
          | Some "strict" -> Ok Streaming.Model.Strict
          | Some m -> Error (Bad_request (Printf.sprintf "unknown model %S (overlap|strict)" m))
          | None -> Error (Bad_request "field 'model' must be a string")
        in
        let law_result =
          match str "law" with
          | None when field_type_ok "law" Json.to_string_opt -> Ok Engine.Exponential
          | Some l -> (
              match Engine.law_of_string l with
              | Ok law -> Ok law
              | Error msg -> Error (Bad_request msg))
          | None -> Error (Bad_request "field 'law' must be a string")
        in
        match (model_result, law_result) with
        | Error e, _ | _, Error e -> Error e
        | Ok model, Ok law ->
            let cap = Option.value (int "cap") ~default:Engine.default_cap in
            let wall = flt "wall" in
            let sweeps = int "sweeps" in
            let states = int "states" in
            let simulate = Option.value (bool_ "simulate") ~default:false in
            let bad_opt check = function Some v -> not (check v) | None -> false in
            if cap <= 0 then Error (Bad_request "cap must be positive")
            else if bad_opt (fun w -> w > 0.0 && Float.is_finite w) wall then
              Error (Bad_request "wall must be positive and finite")
            else if bad_opt (fun s -> s > 0) sweeps then Error (Bad_request "sweeps must be positive")
            else if bad_opt (fun s -> s > 0) states then Error (Bad_request "states must be positive")
            else Ok { Engine.instance; model; law; cap; wall; sweeps; states; simulate })

let decode_multi_query json =
  let str k = Option.bind (Json.member k json) Json.to_string_opt in
  let int k = Option.bind (Json.member k json) Json.to_int_opt in
  let flt k = Option.bind (Json.member k json) Json.to_float_opt in
  let field_type_ok k conv =
    match Json.member k json with None -> true | Some v -> conv v <> None
  in
  if not (field_type_ok "instance" Json.to_string_opt) then
    Error (Bad_request "field 'instance' must be a string")
  else
    match str "instance" with
    | None -> Error (Bad_request "solve_multi needs a string field 'instance'")
    | Some instance -> (
        let model_result =
          match str "model" with
          | None when field_type_ok "model" Json.to_string_opt -> Ok Streaming.Model.Overlap
          | Some "overlap" -> Ok Streaming.Model.Overlap
          | Some "strict" -> Ok Streaming.Model.Strict
          | Some m -> Error (Bad_request (Printf.sprintf "unknown model %S (overlap|strict)" m))
          | None -> Error (Bad_request "field 'model' must be a string")
        in
        let law_result =
          match str "law" with
          | None when field_type_ok "law" Json.to_string_opt -> Ok Engine.Exponential
          | Some l -> (
              match Engine.law_of_string l with
              | Ok law -> Ok law
              | Error msg -> Error (Bad_request msg))
          | None -> Error (Bad_request "field 'law' must be a string")
        in
        match (model_result, law_result) with
        | Error e, _ | _, Error e -> Error e
        | Ok m_model, Ok m_law ->
            let m_cap = Option.value (int "cap") ~default:Engine.default_cap in
            let m_wall = flt "wall" in
            if m_cap <= 0 then Error (Bad_request "cap must be positive")
            else if
              match m_wall with
              | Some w -> not (w > 0.0 && Float.is_finite w)
              | None -> false
            then Error (Bad_request "wall must be positive and finite")
            else Ok { Engine.m_instance = instance; m_model; m_law; m_cap; m_wall })

(* re-render a decoded query as a request object: [decode_query (query_json q) = Ok q],
   which is what lets the router re-issue split batches without touching
   the original bytes of each item *)
let query_json (q : Engine.query) =
  let opt k f = function Some v -> [ (k, f v) ] | None -> [] in
  Json.Obj
    ([
       ("instance", Json.String q.Engine.instance);
       ("model", Json.String (Streaming.Model.to_string q.Engine.model));
       ("law", Json.String (Engine.law_to_string q.Engine.law));
       ("cap", Json.Int q.Engine.cap);
     ]
    @ opt "wall" (fun w -> Json.Float w) q.Engine.wall
    @ opt "sweeps" (fun s -> Json.Int s) q.Engine.sweeps
    @ opt "states" (fun s -> Json.Int s) q.Engine.states
    @ [ ("simulate", Json.Bool q.Engine.simulate) ])

type request =
  | Ping
  | Stats
  | Metrics of { fleet : bool }
  | Shutdown
  | Solve of Engine.query
  | Solve_multi of Engine.multi_query
  | Admit of Engine.multi_query
  | Batch of (Engine.query, error) result list

let max_batch = 64

let parse_request json =
  let id = Json.member "id" json in
  match json with
  | Json.Obj _ -> (
      let v_ok =
        match Json.member "v" json with
        | None -> Ok ()
        | Some (Json.Int v) when v = version -> Ok ()
        | Some other -> Error (Version_mismatch { got = Json.render other })
      in
      match v_ok with
      | Error e -> Error (id, e)
      | Ok () -> (
          match Option.bind (Json.member "cmd" json) Json.to_string_opt with
          | None -> Error (id, Bad_request "request needs a string field 'cmd'")
          | Some "ping" -> Ok (id, Ping)
          | Some "stats" -> Ok (id, Stats)
          | Some "metrics" ->
              let fleet =
                match Option.bind (Json.member "fleet" json) Json.to_bool_opt with
                | Some b -> b
                | None -> false
              in
              Ok (id, Metrics { fleet })
          | Some "shutdown" -> Ok (id, Shutdown)
          | Some "solve" -> (
              match decode_query json with
              | Ok q -> Ok (id, Solve q)
              | Error e -> Error (id, e))
          | Some "solve_multi" -> (
              match decode_multi_query json with
              | Ok q -> Ok (id, Solve_multi q)
              | Error e -> Error (id, e))
          | Some "admit" -> (
              match decode_multi_query json with
              | Ok q -> Ok (id, Admit q)
              | Error e -> Error (id, e))
          | Some "batch" -> (
              match Json.member "requests" json with
              | Some (Json.List items) when List.length items <= max_batch ->
                  Ok (id, Batch (List.map decode_query items))
              | Some (Json.List items) ->
                  Error
                    ( id,
                      Bad_request
                        (Printf.sprintf "batch of %d exceeds the %d-request limit"
                           (List.length items) max_batch) )
              | _ -> Error (id, Bad_request "batch needs a list field 'requests'"))
          | Some cmd -> Error (id, Unknown_command cmd)))
  | _ -> Error (None, Parse_error "request must be a JSON object")

(* ---- trace-context envelope ----
   An optional ["obs"] member of any request carries a trace context:
   [{"trace":"<id>","span":"<parent span id>"}]. [decode_query] ignores
   unknown members, so the envelope is invisible to the cache key and to
   daemons that predate it — legacy and traced peers interoperate without
   negotiation. *)

let obs_context json =
  match Json.member "obs" json with
  | Some (Json.Obj _ as o) -> (
      match Option.bind (Json.member "trace" o) Json.to_string_opt with
      | Some trace ->
          let span =
            Option.value ~default:""
              (Option.bind (Json.member "span" o) Json.to_string_opt)
          in
          Some (trace, span)
      | None -> None)
  | _ -> None

let obs_field ~trace ~span =
  ( "obs",
    Json.Obj [ ("trace", Json.String trace); ("span", Json.String span) ] )

(* Splice an ["obs"] envelope into an already-rendered request line. The
   router forwards client bytes verbatim, so when tracing is on it cannot
   re-render the request without risking byte drift — instead the envelope
   is inserted textually before the closing brace. *)
let with_obs line ~trace ~span =
  let rec rstrip i =
    if i > 0 && (match line.[i - 1] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false)
    then rstrip (i - 1)
    else i
  in
  let stop = rstrip (String.length line) in
  if stop = 0 || line.[stop - 1] <> '}' then line
  else
    let rec prev_solid i =
      if i > 0 && (match line.[i - 1] with ' ' | '\t' | '\r' | '\n' -> true | _ -> false)
      then prev_solid (i - 1)
      else i
    in
    let before = prev_solid (stop - 1) in
    let comma = if before > 0 && line.[before - 1] = '{' then "" else "," in
    let envelope =
      Printf.sprintf "%s\"obs\":{\"trace\":%s,\"span\":%s}" comma
        (Json.render (Json.String trace))
        (Json.render (Json.String span))
    in
    String.sub line 0 (stop - 1) ^ envelope ^ "}"

(* ---- reply assembly ----
   Replies are assembled by splicing rendered fragments, so a cached
   [result] string reaches the wire byte-for-byte unchanged. *)

let id_fragment = function
  | None -> ""
  | Some id -> Printf.sprintf "\"id\":%s," (Json.render id)

let ok_reply ~id ?cached ~result () =
  let cached_fragment =
    match cached with
    | None -> ""
    | Some c -> Printf.sprintf "\"cached\":%b," c
  in
  Printf.sprintf "{\"v\":%d,%s\"ok\":true,%s\"result\":%s}" version (id_fragment id)
    cached_fragment result

let error_reply ~id e =
  Printf.sprintf "{\"v\":%d,%s\"ok\":false,\"error\":%s}" version (id_fragment id)
    (Json.render (error_json e))

(* ---- addresses ---- *)

type addr = Unix_domain of string | Tcp of string * int

let addr_of_string s =
  let port_of p =
    match int_of_string_opt p with
    | Some port when port > 0 && port < 65536 -> Ok port
    | _ -> Error (Printf.sprintf "bad port %S" p)
  in
  if String.length s >= 5 && String.sub s 0 5 = "unix:" then
    Ok (Unix_domain (String.sub s 5 (String.length s - 5)))
  else if String.length s >= 4 && String.sub s 0 4 = "tcp:" then
    match String.split_on_char ':' (String.sub s 4 (String.length s - 4)) with
    | [ host; p ] -> Result.map (fun port -> Tcp (host, port)) (port_of p)
    | [ p ] -> Result.map (fun port -> Tcp ("127.0.0.1", port)) (port_of p)
    | _ -> Error (Printf.sprintf "bad tcp address %S (use tcp:HOST:PORT)" s)
  else if s = "" then Error "empty service address"
  else Ok (Unix_domain s)

let addr_to_string = function
  | Unix_domain path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let sockaddr_of = function
  | Unix_domain path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      let ip =
        try Unix.inet_addr_of_string host
        with Failure _ -> (
          match Unix.getaddrinfo host "" [ Unix.AI_FAMILY Unix.PF_INET ] with
          | { Unix.ai_addr = Unix.ADDR_INET (ip, _); _ } :: _ -> ip
          | _ -> failwith (Printf.sprintf "cannot resolve host %S" host))
      in
      Unix.ADDR_INET (ip, port)
