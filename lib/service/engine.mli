(** Query dispatch: one parsed [solve] request in, one solved (or typed
    failure) out.  This is the seam between the wire protocol and the
    paper's machinery — everything socket-shaped stays in {!Server},
    everything solver-shaped is reached from here.

    A query names an instance (in the {!Streaming.Instance_io} textual
    format), an execution model, an operation-time law and optional
    bounds.  Dispatch:

    - [Deterministic] → critical-cycle analysis (§4), both models;
    - [Exponential], Overlap → Theorem 3/4 per-column decomposition
      (sharing the process-wide pattern caches);
    - [Exponential], Strict → the supervised general method: marking
      exploration under [cap], the GTH → Gauss–Seidel → power ladder
      under the request's budget, and optionally (with [simulate]) the
      DES final rung;
    - [Erlang k] → the phase-expanded exact solvers of §6.

    Budgets are per-request: the wall clock starts when the solve is
    dispatched, never when the daemon starts. *)

type law = Deterministic | Exponential | Erlang of int

val law_of_string : string -> (law, string) result
(** ["deterministic"], ["exponential"], ["erlang:K"] with [K >= 1]. *)

val law_to_string : law -> string

type query = {
  instance : string;  (** instance text, [Instance_io] format *)
  model : Streaming.Model.t;
  law : law;
  cap : int;  (** marking-exploration bound for the Strict solvers *)
  wall : float option;  (** per-request wall-clock budget, seconds *)
  sweeps : int option;  (** iterative-sweep budget *)
  states : int option;  (** explored-state budget *)
  simulate : bool;  (** allow the degraded DES rung (Strict+Exponential) *)
}

val default_cap : int

type prepared = { key : string; canonical : string; mapping : Streaming.Mapping.t }

val prepare : query -> (prepared, string) result
(** Validates the instance through the hardened parser and canonicalizes
    it: [key] is the cache key — the canonical instance rendering plus
    every solve-relevant parameter (model, law, cap; budgets are
    excluded, because they bound effort, not the value) — so two
    textually different descriptions of the same solve share one cache
    entry. *)

type outcome = {
  throughput : float;
  quality : string;  (** ["exact"] | ["iterative"] | ["simulated"] *)
  degraded : bool;
  provenance : string;  (** the attempt trail, human-oriented *)
  pattern_states : int;
      (** state-space-size proxy: sum of S(u,v) over the instance's
          communication patterns *)
}

val solve : prepared -> query -> (outcome, Supervise.Error.t) result
(** Runs the dispatch above under a fresh budget built from the query.
    [Invalid_argument] from a model constructor is mapped to a
    [Numerical] solver error; no exception escapes for solver reasons. *)

val outcome_json : outcome -> Json.t
(** The [result] object of a [solve] reply; rendering it is what the
    cache stores and replays byte-identically. *)

val pattern_state_count : Streaming.Mapping.t -> int

(** {1 Multi-tenant queries}

    A multi query names a whole tenant mix (the versioned
    [Instance_io.parse_multi] block) instead of a single mapping.
    Admission runs {e first} on the cheap deterministic bounds of the
    scaled mappings (Theorem 7 makes them admissible upper bounds for
    the exponential throughput); only an all-clear pays for the exact
    per-tenant solves. *)

type multi_query = {
  m_instance : string;  (** multi-tenant text, [Instance_io.parse_multi] format *)
  m_model : Streaming.Model.t;
  m_law : law;
  m_cap : int;
  m_wall : float option;
      (** whole-request wall budget; split across tenants by weight *)
}

type prepared_multi = {
  m_key : string;
  m_canonical : string;
  m_share : Tenancy.Platform_share.t;
}

val prepare_multi : multi_query -> (prepared_multi, string) result
(** Parse, build the contention structure, canonicalize.  Like
    {!prepare}, the key contains every value-relevant parameter plus the
    canonical mix rendering, so equivalent texts share a cache entry. *)

type tenant_outcome = {
  t_id : string;
  t_weight : float;
  t_floor : float;
  t_bound : float;  (** admission bound of the scaled mapping *)
  t_wall : float option;  (** the weighted-fair slice this tenant got *)
  t_outcome : outcome;
}

type multi_error =
  | Rejected of { tenant : string; victim : string; floor : float; bound : float }
      (** static admission failure: [victim]'s bound under the full mix
          fell below its [floor] (here [tenant = victim]) *)
  | Solver_failed of Supervise.Error.t

val solve_multi : prepared_multi -> multi_query -> (tenant_outcome list, multi_error) result
(** Admission first, then one exact solve per tenant on its scaled
    mapping.  [m_wall] (when present) is divided between tenants in
    proportion to their weights — the weighted-fair budget accounting. *)

val multi_result_json : multi_query -> tenant_outcome list -> Json.t
(** The [result] object of a [solve_multi] reply. *)

val admit : prepared_multi -> multi_query -> (Tenancy.Admission.step list, string) result
(** The sequential admission audit (declaration order), no solves. *)
