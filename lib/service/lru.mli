(** Bounded least-recently-used result cache, safe for concurrent use.

    Keys are canonical request renderings (see {!Engine.cache_key}), so
    two textually different requests that describe the same solve share
    one entry.  Values are immutable rendered replies; a hit returns the
    stored string verbatim, which is what makes repeated identical
    queries byte-identical.  All operations take an internal mutex —
    the daemon's connection threads and the batch pool insert
    concurrently. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity >= 1]; raises [Invalid_argument] otherwise. *)

val find : 'a t -> string -> 'a option
(** Looks up and promotes the entry to most-recently-used; counts a hit
    or a miss. *)

val add : 'a t -> string -> 'a -> unit
(** Inserts (or refreshes) the entry as most-recently-used, evicting the
    least-recently-used one when the cache is full. *)

val mem : 'a t -> string -> bool
(** Membership without promotion and without touching the counters. *)

type stats = { hits : int; misses : int; entries : int; capacity : int; evictions : int }

val stats : 'a t -> stats
val clear : 'a t -> unit
(** Drops every entry and zeroes the hit/miss/eviction counters, so
    post-clear hit rates describe the cache's new life only. *)
