(** Blocking NDJSON client for the query daemon and the cluster router:
    one connection, one request line out, one reply line back, in order.

    Every operation takes an optional [?deadline] — an absolute
    [Unix.gettimeofday] instant — so a hung peer can never block the
    caller forever: connect, write and read all give up with [Timeout]
    once it passes.  Transport failures are typed ({!error}); SIGPIPE is
    ignored process-wide on first use, so a peer closing mid-reply is a
    [Closed] error, not a dead process. *)

type t

type error = Sockets.error =
  | Refused of string  (** connect refused / socket absent *)
  | Timeout of string  (** deadline exceeded *)
  | Closed of string  (** peer EOF, reset, or torn frame *)
  | Transport of string  (** any other socket-level failure *)
  | Bad_reply of string  (** reply line that does not parse *)

val error_message : error -> string

val retriable : error -> bool
(** Everything but [Bad_reply]: solve requests are idempotent (keyed by
    their canonical cache key, rendered deterministically), so a fresh
    attempt is always safe. *)

val connect : ?deadline:float -> Protocol.addr -> (t, error) result
val close : t -> unit

val rpc : ?deadline:float -> t -> Json.t -> (Json.t, error) result
(** Sends one request object, reads one reply line.  [Error] means a
    transport problem — protocol-level failures come back as [Ok]
    replies with [ok:false]. *)

val rpc_raw : ?deadline:float -> t -> string -> (string, error) result
(** Same, without encoding/decoding — the load paths use this to keep
    client-side JSON cost out of the measured latency. *)

(* ---- reply helpers ---- *)

val reply_ok : Json.t -> bool
(** The [ok] field (false when missing). *)

val reply_error_kind : Json.t -> string option
(** [error.kind] of an [ok:false] reply. *)

val reply_retriable : Json.t -> bool
(** [ok:false] with [error.retriable:true] — the daemon itself invites a
    retry (busy admission, router shedding). *)

val reply_result : Json.t -> Json.t option

(* ---- canned requests ---- *)

val ping : ?deadline:float -> t -> (Json.t, error) result
val stats : ?deadline:float -> t -> (Json.t, error) result
val shutdown : ?deadline:float -> t -> (Json.t, error) result

val fresh_obs : unit -> string * string
(** A fresh [(trace_id, span_id)] pair for the [?obs] argument below —
    mint one per logical operation so router and worker spans correlate
    under a single trace id. *)

val solve_request :
  ?id:Json.t ->
  ?obs:string * string ->
  ?model:Streaming.Model.t ->
  ?law:Engine.law ->
  ?cap:int ->
  ?wall:float ->
  ?sweeps:int ->
  ?states:int ->
  ?simulate:bool ->
  instance:string ->
  unit ->
  Json.t
(** The request object for one solve; omitted fields are left to the
    daemon's defaults.  [?obs] is a [(trace_id, parent_span_id)] context
    carried in the optional ["obs"] envelope (outside the cache key).
    Compose with {!rpc}, or wrap a list of them as a batch with
    {!batch_request}. *)

val batch_request : ?id:Json.t -> ?obs:string * string -> Json.t list -> Json.t
(** Wraps solve request objects (their [cmd]/[v] fields are ignored by
    the daemon) into one [batch] request. *)
