(** Blocking NDJSON client for the query daemon: one connection, one
    request line out, one reply line back, in order.  Used by
    [streaming_cli query] and the service load bench. *)

type t

val connect : Protocol.addr -> (t, string) result
val close : t -> unit

val rpc : t -> Json.t -> (Json.t, string) result
(** Sends one request object, reads one reply line.  [Error] means a
    transport problem (connection refused/reset, unparsable reply) —
    protocol-level failures come back as [Ok] replies with [ok:false]. *)

val rpc_raw : t -> string -> (string, string) result
(** Same, without encoding/decoding — the load bench uses this to keep
    client-side JSON cost out of the measured latency. *)

(* ---- reply helpers ---- *)

val reply_ok : Json.t -> bool
(** The [ok] field (false when missing). *)

val reply_error_kind : Json.t -> string option
(** [error.kind] of an [ok:false] reply. *)

val reply_result : Json.t -> Json.t option

(* ---- canned requests ---- *)

val ping : t -> (Json.t, string) result
val stats : t -> (Json.t, string) result
val shutdown : t -> (Json.t, string) result

val solve_request :
  ?id:Json.t ->
  ?model:Streaming.Model.t ->
  ?law:Engine.law ->
  ?cap:int ->
  ?wall:float ->
  ?sweeps:int ->
  ?states:int ->
  ?simulate:bool ->
  instance:string ->
  unit ->
  Json.t
(** The request object for one solve; omitted fields are left to the
    daemon's defaults.  Compose with {!rpc}, or wrap a list of them as a
    batch with {!batch_request}. *)

val batch_request : ?id:Json.t -> Json.t list -> Json.t
(** Wraps solve request objects (their [cmd]/[v] fields are ignored by
    the daemon) into one [batch] request. *)
