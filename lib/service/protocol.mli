(** The wire protocol of the throughput query service.

    Version 1, newline-delimited JSON: each request is one JSON object on
    one line, each reply one object on one line, in request order.

    Requests: [{"v":1, "id":..., "cmd":"solve"|"batch"|"stats"|"metrics"|
    "ping"|"shutdown", ...}].  ["v"] defaults to 1 when absent; any other
    value is a [version_mismatch].  ["id"] is an arbitrary JSON value
    echoed verbatim in the reply (absent → omitted).  [metrics] answers
    with [{"format":"prometheus-text","text":...}] — the full metric
    registry in the Prometheus text exposition format.

    [solve] fields: ["instance"] (string, {!Streaming.Instance_io}
    format, required), ["model"] ("overlap", default | "strict"),
    ["law"] ("deterministic" | "exponential", default | "erlang:K"),
    ["cap"], ["wall"], ["sweeps"], ["states"], ["simulate"] (bool).
    [batch] carries ["requests"], a list of solve-field objects.

    Replies: [{"v":1, "id":..., "ok":true, "cached":bool, "result":{...}}]
    or [{"v":1, "id":..., "ok":false, "error":{"kind":..., "message":...,
    "retriable":bool, ...}}].  Solver failures keep their typed payload
    ([budget_exhausted] carries ["elapsed_s"], [state_space_exceeded]
    carries ["cap"]/["explored"], ...). *)

val version : int

val max_batch : int
(** Largest [batch] request the daemon accepts (64 items); clients chunk
    larger fan-outs. *)

(** Typed reasons a request is answered with [ok:false]. *)
type error =
  | Parse_error of string  (** the line is not a JSON object *)
  | Version_mismatch of { got : string }
  | Unknown_command of string
  | Bad_request of string  (** well-formed JSON, invalid fields/instance *)
  | Oversized_frame of { limit : int }
  | Busy of { inflight : int; limit : int }  (** backpressure; retriable *)
  | Unavailable of { reason : string }
      (** the cluster router shedding: every candidate worker is down or
          breaker-open; retriable *)
  | Admission_rejected of { tenant : string; victim : string; floor : float; bound : float }
      (** per-tenant admission control said no: [victim]'s admission
          [bound] under the proposed mix falls below its declared
          [floor].  For the static [solve_multi] check [tenant = victim];
          in a sequential [admit] audit [tenant] is the newcomer whose
          arrival hurt [victim].  Not retriable — the mix itself is
          infeasible. *)
  | Solver of Supervise.Error.t
  | Internal of string

val error_kind : error -> string
(** The stable [kind] string of the reply ([parse_error], [busy],
    [budget_exhausted], ...). *)

val error_json : error -> Json.t
(** The ["error"] object: kind, message, retriable, typed extras. *)

type request =
  | Ping
  | Stats
  | Metrics of { fleet : bool }
      (** ["cmd":"metrics"]; the optional ["fleet":true] flag asks the
          cluster router to additionally scrape every Up worker and merge
          the expositions under a [worker="i"] label (a single daemon
          ignores the flag) *)
  | Shutdown
  | Solve of Engine.query
  | Solve_multi of Engine.multi_query
      (** ["cmd":"solve_multi"]: instance is a multi-tenant block
          ([tenancy 1] header); fields model/law/cap/wall as for solve *)
  | Admit of Engine.multi_query
      (** ["cmd":"admit"]: sequential admission audit over the same
          multi-tenant block, no exact solves *)
  | Batch of (Engine.query, error) result list

val parse_request : Json.t -> (Json.t option * request, Json.t option * error) result
(** Decodes one request object; the first component is the echoed [id].
    A [Batch] keeps per-item decode errors in place so one bad item does
    not poison its siblings. *)

val query_json : Engine.query -> Json.t
(** Re-render a decoded solve query as a request object (sans [v]/[cmd]/
    [id]); [decode_query] of the result round-trips.  The router uses it
    to re-issue batch items split by shard owner. *)

val decode_query : Json.t -> (Engine.query, error) result
val decode_multi_query : Json.t -> (Engine.multi_query, error) result

(* ---- trace-context envelope ---- *)

val obs_context : Json.t -> (string * string) option
(** [obs_context request] reads the optional ["obs"] envelope —
    [{"trace":"<id>","span":"<parent span id>"}] — from a request object:
    [(trace_id, parent_span_id)], the span id defaulting to [""].
    [decode_query] ignores unknown members, so the envelope never reaches
    the cache key and legacy daemons simply skip it. *)

val obs_field : trace:string -> span:string -> string * Json.t
(** The [("obs", {...})] member for building a traced request object. *)

val with_obs : string -> trace:string -> span:string -> string
(** [with_obs line ~trace ~span] splices an ["obs"] envelope into an
    already-rendered request line (inserted before the final closing
    brace, leaving every other byte untouched) — how the router tags the
    verbatim client bytes it forwards. Returns [line] unchanged when it
    does not end in ['}']. *)

val ok_reply : id:Json.t option -> ?cached:bool -> result:string -> unit -> string
(** Assembles an [ok:true] reply line around an already-rendered
    [result] object, splicing it verbatim — the cache's byte-identical
    replay depends on this. *)

val error_reply : id:Json.t option -> error -> string

(* ---- service addresses ---- *)

type addr = Unix_domain of string | Tcp of string * int

val addr_of_string : string -> (addr, string) result
(** ["unix:PATH"], ["tcp:HOST:PORT"], or a bare path (→ Unix domain). *)

val addr_to_string : addr -> string
val sockaddr_of : addr -> Unix.sockaddr
