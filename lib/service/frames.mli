(** NDJSON framing shared by the daemon and the cluster router: byte
    stream in, frame events out, oversized frames skipped to the next
    newline without damaging the connection. *)

type t
(** Per-connection framing state. *)

type event =
  | Line of string  (** one complete frame, newline stripped *)
  | Oversized
      (** the current frame just crossed [max_frame]; its remaining
          bytes are being discarded up to the next newline *)

val create : max_frame:int -> t

val feed : t -> bytes -> int -> (event -> unit) -> unit
(** Process the first [n] bytes of the buffer, invoking the callback for
    each event in order. *)

val pending : t -> bool
(** True when a partial frame is buffered — at EOF this is a truncated
    frame the peer should be told about. *)
