(** Interleaved-tenant DES validation of the sharing model.

    Reserved shares decouple tenants, so the discrete-event simulation of
    the shared platform factorizes: each tenant's completion process on
    the shared platform is exactly its pipeline's DES on the derated
    platform of {!Platform_share.scaled_mapping}.  This module runs the
    per-tenant simulations, merges their completion timelines into one
    interleaved, tenant-tagged event sequence, and estimates each
    tenant's steady-state throughput from the merged timeline — the
    cross-check that the share computation, the rate scaling and the
    per-tenant dynamics all agree with the exact solvers. *)

type event = { time : float; tenant : int  (** index into the share's decl order *) }

val interleaved_completions :
  Platform_share.t -> Streaming.Model.t -> seed:int -> data_sets:int -> event array
(** [data_sets] completions per tenant with I.I.D. exponential operation
    times (each tenant on its own deterministic stream derived from
    [seed]), merged and sorted by completion time. *)

type estimate = {
  id : string;
  des : float;  (** throughput measured on the interleaved timeline *)
  exact : float;  (** {!Platform_share.exponential_throughput} *)
  rel_err : float;  (** |des - exact| / exact *)
}

val cross_check :
  ?cap:int ->
  ?warmup_fraction:float ->
  Platform_share.t ->
  Streaming.Model.t ->
  seed:int ->
  data_sets:int ->
  estimate list
(** Per-tenant DES vs exact agreement.  Events are counted on the common
    horizon (the earliest tenant's last completion) after discarding the
    warm-up prefix (default fraction 0.2), so every tenant is measured on
    an interval where all tenants are still active. *)
