open Streaming

type event = { time : float; tenant : int }

let interleaved_completions ps model ~seed ~data_sets =
  let k = Platform_share.n_tenants ps in
  let events = Array.make (k * data_sets) { time = 0.0; tenant = 0 } in
  for i = 0 to k - 1 do
    let scaled = Platform_share.scaled_mapping ps ~tenant:i in
    let completions =
      Des.Pipeline_sim.completions scaled model
        ~timing:(Des.Pipeline_sim.Independent (Laws.exponential scaled))
        ~seed:(seed + (7919 * i))
        ~data_sets
    in
    Array.iteri (fun n c -> events.((i * data_sets) + n) <- { time = c; tenant = i }) completions
  done;
  Array.sort (fun a b -> compare a.time b.time) events;
  events

type estimate = { id : string; des : float; exact : float; rel_err : float }

let cross_check ?(cap = 500_000) ?(warmup_fraction = 0.2) ps model ~seed ~data_sets =
  let k = Platform_share.n_tenants ps in
  let events = interleaved_completions ps model ~seed ~data_sets in
  (* measure on the window where every tenant is still producing: up to
     the earliest tenant's last completion, past the warm-up prefix *)
  let last = Array.make k 0.0 in
  Array.iter (fun e -> if e.time > last.(e.tenant) then last.(e.tenant) <- e.time) events;
  let horizon = Array.fold_left Float.min last.(0) last in
  let warm = warmup_fraction *. horizon in
  let counts = Array.make k 0 in
  Array.iter
    (fun e -> if e.time > warm && e.time <= horizon then counts.(e.tenant) <- counts.(e.tenant) + 1)
    events;
  List.init k (fun i ->
      let des = float_of_int counts.(i) /. (horizon -. warm) in
      let exact = Platform_share.exponential_throughput ~cap ps ~tenant:i model in
      {
        id = (Platform_share.decl ps i).Instance_io.tenant_id;
        des;
        exact;
        rel_err = Float.abs (des -. exact) /. exact;
      })
