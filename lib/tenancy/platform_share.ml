open Streaming

module Rmap = Map.Make (Resource)

type t = {
  tenants : Instance_io.tenant_decl array;
  platform : Platform.t;
  load : float Rmap.t;  (* aggregate weight per shared resource *)
  scaled : Mapping.t array;  (* per-tenant derated mapping, in decl order *)
}

let same_platform a b =
  a == b
  ||
  let m = Platform.n_processors a in
  Platform.n_processors b = m
  &&
  let ok = ref true in
  for i = 0 to m - 1 do
    if Platform.speed a i <> Platform.speed b i then ok := false;
    for j = 0 to m - 1 do
      if i <> j && Platform.bandwidth a ~src:i ~dst:j <> Platform.bandwidth b ~src:i ~dst:j then
        ok := false
    done
  done;
  !ok

let validate tenants =
  match tenants with
  | [] -> Error "Platform_share.create: at least one tenant"
  | first :: rest -> (
      let platform = Mapping.platform first.Instance_io.tenant_mapping in
      let mismatch =
        List.exists
          (fun d -> not (same_platform platform (Mapping.platform d.Instance_io.tenant_mapping)))
          rest
      in
      if mismatch then Error "Platform_share.create: tenants do not share one platform"
      else
        let seen = Hashtbl.create 8 in
        let dup =
          List.find_opt
            (fun d ->
              let id = d.Instance_io.tenant_id in
              if Hashtbl.mem seen id then true
              else begin
                Hashtbl.add seen id ();
                false
              end)
            tenants
        in
        match dup with
        | Some d -> Error (Printf.sprintf "Platform_share.create: duplicate tenant id %s" d.Instance_io.tenant_id)
        | None -> (
            let bad_number =
              List.find_opt
                (fun d ->
                  let w = d.Instance_io.weight and f = d.Instance_io.floor in
                  (not (Float.is_finite w)) || w <= 0.0 || (not (Float.is_finite f)) || f < 0.0)
                tenants
            in
            match bad_number with
            | Some d ->
                Error
                  (Printf.sprintf
                     "Platform_share.create: tenant %s needs a finite positive weight and a \
                      finite non-negative floor"
                     d.Instance_io.tenant_id)
            | None -> Ok platform))

let aggregate tenants =
  List.fold_left
    (fun load d ->
      List.fold_left
        (fun load r ->
          let w = d.Instance_io.weight in
          Rmap.update r (function None -> Some w | Some acc -> Some (acc +. w)) load)
        load
        (Mapping.resources d.Instance_io.tenant_mapping))
    Rmap.empty tenants

let share_of load d r =
  match Rmap.find_opt r load with
  | None -> 1.0
  | Some total -> d.Instance_io.weight /. total

(* the tenant's pipeline on the platform derated to its reserved shares:
   every resource the tenant uses runs at [share] times its nominal rate *)
let scale load platform d =
  let mapping = d.Instance_io.tenant_mapping in
  let m = Platform.n_processors platform in
  let speeds = Array.init m (Platform.speed platform) in
  let bandwidth =
    Array.init m (fun p -> Array.init m (fun q -> Platform.bandwidth platform ~src:p ~dst:q))
  in
  List.iter
    (fun r ->
      let s = share_of load d r in
      match r with
      | Resource.Compute p -> speeds.(p) <- speeds.(p) *. s
      | Resource.Transfer (p, q) -> bandwidth.(p).(q) <- bandwidth.(p).(q) *. s)
    (Mapping.resources mapping);
  let app = Mapping.app mapping in
  let teams = Array.init (Mapping.n_stages mapping) (Mapping.team mapping) in
  Mapping.create ~app ~platform:(Platform.create ~speeds ~bandwidth) ~teams

let create ~tenants =
  match validate tenants with
  | Error _ as e -> e
  | Ok platform -> (
      let load = aggregate tenants in
      match List.map (scale load platform) tenants with
      | scaled ->
          Ok
            {
              tenants = Array.of_list tenants;
              platform;
              load;
              scaled = Array.of_list scaled;
            }
      | exception Invalid_argument msg -> Error ("Platform_share.create: " ^ msg))

let n_tenants t = Array.length t.tenants
let decl t i = t.tenants.(i)
let decls t = Array.to_list t.tenants

let index_of t id =
  let rec go i =
    if i >= Array.length t.tenants then None
    else if t.tenants.(i).Instance_io.tenant_id = id then Some i
    else go (i + 1)
  in
  go 0

let platform t = t.platform

let aggregate_weight t r = match Rmap.find_opt r t.load with None -> 0.0 | Some w -> w
let share t ~tenant r = share_of t.load t.tenants.(tenant) r
let scaled_mapping t ~tenant = t.scaled.(tenant)

let bound t ~tenant model = Deterministic.throughput t.scaled.(tenant) model

let exponential_throughput ?(cap = 500_000) t ~tenant model =
  match model with
  | Model.Overlap -> Expo.overlap_throughput t.scaled.(tenant)
  | Model.Strict -> Expo.strict_throughput ~cap t.scaled.(tenant)
