(** Sequential admission control over a tenant declaration list.

    Tenants arrive in declaration order.  A newcomer is admitted iff,
    with the newcomer's weight added to the contention, {e every} tenant
    of the trial set (the already-admitted ones and the newcomer itself)
    keeps its cheap deterministic bound at or above its declared floor.
    The bound ({!Platform_share.bound}) is a Theorem 7 upper bound on the
    exponential throughput, so a rejection decided on bounds is safe to
    issue before paying for an exact solve; the decision sequence is a
    pure function of the declarations and therefore deterministic. *)

type rejection = {
  newcomer : string;  (** the tenant whose admission was refused *)
  victim : string;  (** whose floor the trial set would violate (may be the newcomer) *)
  floor : float;  (** the violated floor *)
  bound : float;  (** the bound the victim would be left with *)
}

type step = {
  decl : Streaming.Instance_io.tenant_decl;
  admitted : bool;
  rejection : rejection option;  (** [Some _] iff not admitted *)
  bounds : (string * float) list;
      (** per-tenant bound in the trial set (admitted set + newcomer),
          in admission order — the audit trail *)
}

val sequence :
  ?model:Streaming.Model.t ->
  Streaming.Instance_io.tenant_decl list ->
  (step list, string) result
(** Replay the whole admission sequence (default model: Overlap).
    [Error] only for structurally invalid input (mismatched platforms,
    duplicate ids, …) — a floor violation is a rejected {!step}, not an
    error. *)

val admitted : step list -> Streaming.Instance_io.tenant_decl list

val check :
  ?model:Streaming.Model.t ->
  Streaming.Instance_io.tenant_decl list ->
  ((unit, rejection) result, string) result
(** The static variant used by [solve_multi]: all tenants at once, no
    sequencing.  [Ok (Error r)] names the first tenant whose bound under
    full contention sits below its own floor ([newcomer = victim]). *)
