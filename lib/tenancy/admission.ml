open Streaming

type rejection = { newcomer : string; victim : string; floor : float; bound : float }

type step = {
  decl : Instance_io.tenant_decl;
  admitted : bool;
  rejection : rejection option;
  bounds : (string * float) list;
}

let trial_bounds model trial =
  match Platform_share.create ~tenants:trial with
  | Error msg -> Error msg
  | Ok ps ->
      Ok
        (List.mapi
           (fun i d -> (d.Instance_io.tenant_id, d.Instance_io.floor, Platform_share.bound ps ~tenant:i model))
           trial)

let first_violation bounds =
  List.find_map
    (fun (id, floor, bound) -> if bound < floor then Some (id, floor, bound) else None)
    bounds

let sequence ?(model = Model.Overlap) tenants =
  let rec go admitted_rev steps_rev = function
    | [] -> Ok (List.rev steps_rev)
    | cand :: rest -> (
        let trial = List.rev (cand :: admitted_rev) in
        match trial_bounds model trial with
        | Error msg -> Error msg
        | Ok bounds ->
            let audit = List.map (fun (id, _, b) -> (id, b)) bounds in
            let step, admitted_rev =
              match first_violation bounds with
              | Some (victim, floor, bound) ->
                  ( {
                      decl = cand;
                      admitted = false;
                      rejection =
                        Some { newcomer = cand.Instance_io.tenant_id; victim; floor; bound };
                      bounds = audit;
                    },
                    admitted_rev )
              | None ->
                  ({ decl = cand; admitted = true; rejection = None; bounds = audit }, cand :: admitted_rev)
            in
            go admitted_rev (step :: steps_rev) rest)
  in
  go [] [] tenants

let admitted steps = List.filter_map (fun s -> if s.admitted then Some s.decl else None) steps

let check ?(model = Model.Overlap) tenants =
  match trial_bounds model tenants with
  | Error msg -> Error msg
  | Ok bounds ->
      Ok
        (match first_violation bounds with
        | Some (victim, floor, bound) ->
            Error { newcomer = victim; victim; floor; bound }
        | None -> Ok ())
