(** K concurrent applications on one shared platform.

    Each tenant brings its own pipeline mapped onto the {e shared}
    processors and links; contention is modelled by exact per-resource
    rate scaling with weighted reserved shares: a resource [r] used by
    tenants [U_r] serves tenant [t] at the fraction

    {v share_t(r) = w_t / sum of w_u over u in U_r v}

    of its nominal rate (a processor hosting teams from several tenants
    divides its speed by its aggregate load share; links likewise).
    Shares are reserved, not work-conserving, so tenants are decoupled:
    tenant [t]'s dynamics on the shared platform are exactly its own
    pipeline on a derated platform — the {e scaled mapping} — and every
    single-tenant solver of the paper applies per tenant unchanged.

    The deterministic critical-cycle value (§4) of the scaled mapping is
    the Theorem 7 upper bound on the tenant's exponential throughput, so
    it serves as a cheap, admissible admission bound ({!bound} ≥ exact,
    proven as a qcheck property in the test suite). *)

type t

val create : tenants:Streaming.Instance_io.tenant_decl list -> (t, string) result
(** Validates: at least one tenant, unique ids, finite positive weights,
    finite non-negative floors, and one structurally identical shared
    platform across all declarations. *)

val n_tenants : t -> int
val decl : t -> int -> Streaming.Instance_io.tenant_decl
val decls : t -> Streaming.Instance_io.tenant_decl list
val index_of : t -> string -> int option
val platform : t -> Streaming.Platform.t

val aggregate_weight : t -> Streaming.Resource.t -> float
(** Total weight of the tenants using the resource; 0.0 if unused. *)

val share : t -> tenant:int -> Streaming.Resource.t -> float
(** The tenant's reserved fraction of the resource's rate; 1.0 for a
    resource no other tenant touches, and for resources the tenant does
    not use at all (they are never exercised). *)

val scaled_mapping : t -> tenant:int -> Streaming.Mapping.t
(** The tenant's pipeline on the derated platform: speed and bandwidth of
    every resource the tenant uses multiplied by its share.  Computed
    once per tenant at {!create} time. *)

val bound : t -> tenant:int -> Streaming.Model.t -> float
(** Deterministic critical-cycle throughput of the scaled mapping — the
    cheap per-tenant admission bound (an upper bound on the N.B.U.E.
    throughput by Theorem 7). *)

val exponential_throughput : ?cap:int -> t -> tenant:int -> Streaming.Model.t -> float
(** Exact per-tenant throughput under contention with I.I.D. exponential
    operation times: Theorem 3/4 per-column decomposition (Overlap) or
    the general method (Strict, marking exploration bounded by [cap]) on
    the scaled mapping. *)
