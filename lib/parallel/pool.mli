(** Deterministic fixed-size domain pool.

    A pool owns [domains - 1] worker domains (the caller of {!map} is the
    last one) pulling tasks from a shared queue.  Work is distributed in
    contiguous index chunks and every result is written at the index of its
    input, so for a pure task function the output of {!map} is the same
    array — same floats, same ordering — for every pool size, including 1.
    Tasks that need randomness take their generator from
    {!Prng.stream}[ ~seed index] (see {!map_seeded}), which depends only on
    the task's index, never on the schedule; this is the determinism
    contract relied on by the experiment sweeps.

    Nested use is allowed: a task may itself call {!map} on the same pool.
    A caller waiting for its own tasks keeps executing whatever is queued,
    so nested maps cannot deadlock.  Exceptions raised by tasks are
    re-raised in the caller once the whole batch has finished. *)

type t

val create : domains:int -> t
(** [create ~domains] spawns [domains - 1] worker domains ([domains >= 1]);
    with [domains = 1] every map runs in the caller, with no domain
    spawned. *)

val shutdown : t -> unit
(** Drains the queue, terminates and joins the workers.  Idempotent and
    safe under concurrency: any number of callers, from any thread, may
    shut the same pool down — one of them joins the workers and the rest
    block until the join has finished, so every call returns with the
    workers gone.  A map in flight when shutdown starts completes
    normally (workers finish the queued tasks before exiting, and the
    mapping caller keeps executing its own tasks).  A map started {e
    after} shutdown still returns the right result: with the workers
    gone, the caller executes every task itself — the daemon's graceful
    drain relies on both properties. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] on a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)

val size : t -> int
(** Number of domains the pool uses, caller included. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
val mapi : t -> (int -> 'a -> 'b) -> 'a array -> 'b array
val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

val map_result : t -> ('a -> 'b) -> 'a array -> ('b, exn) result array
(** Like {!map}, but a task that raises yields [Error exn] at its index
    instead of failing the whole batch: the other items still complete
    and return [Ok].  Determinism contract as in {!map}. *)

val map_list_result : t -> ('a -> 'b) -> 'a list -> ('b, exn) result list

val mapi_list_result : t -> (int -> 'a -> 'b) -> 'a list -> ('b, exn) result list
(** {!map_list_result} with the item's index — the optimizer hands each
    candidate its list position for deterministic tie-breaking and
    index-derived seeds, independent of the pool size. *)

val map_seeded : t -> seed:int -> (Prng.t -> 'a -> 'b) -> 'a list -> 'b list
(** [map_seeded pool ~seed f xs] runs [f g_i x_i] where [g_i] is the
    independent stream [Prng.stream ~seed i]: the i-th task always sees the
    same generator, whatever the pool size or schedule. *)

val init : t -> int -> (int -> 'a) -> 'a array

val run_all : t -> (unit -> unit) array -> unit
(** Low-level primitive behind [map]: run every task, caller
    participating, and return (or re-raise the first task exception) once
    all have completed. *)

(** {1 Global default pool}

    Library entry points that accept [?pool] fall back to this pool.  Its
    size comes from the [PAR_DOMAINS] environment variable when set to a
    positive integer, from [Domain.recommended_domain_count ()] otherwise.
    The pool is created on first use and shut down at exit. *)

val get : unit -> t
val set_domains : int -> unit
(** Replace the default pool with one of the given size (used by
    [bench/main.exe --domains N]). *)

val default_domains : unit -> int
(** The size {!get} would use for a fresh default pool. *)
