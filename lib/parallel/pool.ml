type t = {
  size : int;
  mutex : Mutex.t;
  cond : Condition.t;  (** signalled on enqueue, task completion and close *)
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable drained : bool;  (** workers joined; only ever set after [closed] *)
  mutable workers : unit Domain.t list;
}

let size t = t.size

(* Pool observability: counters/gauges live in the process-wide registry.
   "caller" tasks are the ones the mapping caller steals back while it
   waits (the caller-helps discipline), "worker" tasks ran on a spawned
   domain.  All updates are per-task or per-batch, never per-item, so the
   cost is invisible next to the mutex traffic they ride along with. *)
let m_queue_depth =
  Obs.Metrics.Gauge.create ~help:"Tasks currently waiting in the shared pool queue"
    "pool_queue_depth"

let m_pool_domains =
  Obs.Metrics.Gauge.create ~help:"Domains of the most recently created pool (caller included)"
    "pool_domains"

let m_utilization =
  Obs.Metrics.Gauge.create
    ~help:"Busy fraction of the pool during the most recent run_all batch"
    "pool_utilization"

let m_tasks executor =
  Obs.Metrics.Counter.create
    ~labels:[ ("executor", executor) ]
    ~help:"Pool tasks executed" "pool_tasks_total"

let m_tasks_worker = m_tasks "worker"
let m_tasks_caller = m_tasks "caller"

let m_busy executor =
  Obs.Metrics.Counter.create
    ~labels:[ ("executor", executor) ]
    ~help:"Nanoseconds spent executing pool tasks" "pool_busy_ns_total"

let m_busy_worker = m_busy "worker"
let m_busy_caller = m_busy "caller"

let note_depth pool = Obs.Metrics.Gauge.set m_queue_depth (float_of_int (Queue.length pool.queue))

let timed_task busy tasks task =
  let t0 = Obs.Clock.now_ns () in
  task ();
  Obs.Metrics.Counter.add busy (Obs.Clock.now_ns () - t0);
  Obs.Metrics.Counter.incr tasks

let worker pool =
  let rec loop () =
    Mutex.lock pool.mutex;
    let rec next () =
      if not (Queue.is_empty pool.queue) then begin
        let task = Queue.pop pool.queue in
        note_depth pool;
        Some task
      end
      else if pool.closed then None
      else begin
        Condition.wait pool.cond pool.mutex;
        next ()
      end
    in
    match next () with
    | None -> Mutex.unlock pool.mutex
    | Some task ->
        Mutex.unlock pool.mutex;
        timed_task m_busy_worker m_tasks_worker task;
        loop ()
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: need at least one domain";
  let pool =
    {
      size = domains;
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      closed = false;
      drained = false;
      workers = [];
    }
  in
  pool.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
  Obs.Metrics.Gauge.set m_pool_domains (float_of_int domains);
  pool

(* Idempotent and safe under concurrency: exactly one caller takes the
   worker list (under the mutex) and joins it; every other caller —
   concurrent or later — waits until that join has finished, so all
   shutdown calls return with the workers really gone.  Workers drain the
   queue before honouring [closed] (see [worker]), and a caller blocked in
   [run_all] keeps executing its own tasks, so in-flight maps complete. *)
let shutdown pool =
  Mutex.lock pool.mutex;
  if pool.closed then begin
    while not pool.drained do
      Condition.wait pool.cond pool.mutex
    done;
    Mutex.unlock pool.mutex
  end
  else begin
    pool.closed <- true;
    let workers = pool.workers in
    pool.workers <- [];
    Condition.broadcast pool.cond;
    Mutex.unlock pool.mutex;
    List.iter Domain.join workers;
    Mutex.lock pool.mutex;
    pool.drained <- true;
    Condition.broadcast pool.cond;
    Mutex.unlock pool.mutex
  end

let with_pool ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Runs every task, blocking until all have completed.  The caller executes
   tasks too — including, while it waits, tasks enqueued by OTHER concurrent
   [run_all] calls.  That keeps nested parallelism (a pooled task that itself
   calls [map]) deadlock-free: somebody always makes progress.  The first
   exception (in task order of observation) is re-raised once every task has
   finished. *)
let run_all pool tasks =
  let n = Array.length tasks in
  if n > 0 then begin
    let remaining = ref n in
    let first_error = ref None in
    let wrapped task () =
      (try task ()
       with e ->
         Mutex.lock pool.mutex;
         if !first_error = None then first_error := Some e;
         Mutex.unlock pool.mutex);
      Mutex.lock pool.mutex;
      decr remaining;
      Condition.broadcast pool.cond;
      Mutex.unlock pool.mutex
    in
    let batch_t0 = Obs.Clock.now_ns () in
    let busy_before =
      Obs.Metrics.Counter.value m_busy_worker + Obs.Metrics.Counter.value m_busy_caller
    in
    Mutex.lock pool.mutex;
    Array.iter (fun task -> Queue.add (wrapped task) pool.queue) tasks;
    note_depth pool;
    Condition.broadcast pool.cond;
    while !remaining > 0 do
      if Queue.is_empty pool.queue then Condition.wait pool.cond pool.mutex
      else begin
        let task = Queue.pop pool.queue in
        note_depth pool;
        Mutex.unlock pool.mutex;
        timed_task m_busy_caller m_tasks_caller task;
        Mutex.lock pool.mutex
      end
    done;
    Mutex.unlock pool.mutex;
    (* Approximate batch utilization: busy-ns accumulated process-wide over
       the batch's wall time, normalised by pool width.  Concurrent batches
       bleed into each other's figure — good enough for a load gauge. *)
    let wall = Obs.Clock.now_ns () - batch_t0 in
    if wall > 0 then begin
      let busy_after =
        Obs.Metrics.Counter.value m_busy_worker + Obs.Metrics.Counter.value m_busy_caller
      in
      Obs.Metrics.Gauge.set m_utilization
        (float_of_int (busy_after - busy_before) /. float_of_int (pool.size * wall))
    end;
    match !first_error with None -> () | Some e -> raise e
  end

(* Contiguous chunks, a few per domain so that uneven task costs still
   balance.  Results land at their input index, so the output never depends
   on execution order. *)
let chunk_tasks pool n run_range =
  let chunks = min n (4 * pool.size) in
  Array.init chunks (fun c ->
      let lo = c * n / chunks and hi = (c + 1) * n / chunks in
      fun () -> run_range lo hi)

let map pool f input =
  let n = Array.length input in
  if n = 0 then [||]
  else if pool.size = 1 || n = 1 then Array.map f input
  else begin
    let results = Array.make n None in
    run_all pool
      (chunk_tasks pool n (fun lo hi ->
           for i = lo to hi - 1 do
             results.(i) <- Some (f input.(i))
           done));
    Array.map (function Some v -> v | None -> assert false) results
  end

let mapi pool f input =
  let indexed = Array.mapi (fun i x -> (i, x)) input in
  map pool (fun (i, x) -> f i x) indexed

let map_list pool f input = Array.to_list (map pool f (Array.of_list input))

(* Per-item error capture: a failing item yields [Error exn] at its index
   instead of poisoning the whole batch.  [map] keeps first-error-wins
   semantics for callers that want the batch to fail as a unit. *)
let map_result pool f input =
  map pool (fun x -> match f x with v -> Ok v | exception e -> Error e) input

let map_list_result pool f input = Array.to_list (map_result pool f (Array.of_list input))

let mapi_list_result pool f input =
  Array.to_list
    (map_result pool
       (fun (i, x) -> f i x)
       (Array.of_list (List.mapi (fun i x -> (i, x)) input)))

let map_seeded pool ~seed f input =
  Array.to_list
    (mapi pool (fun i x -> f (Prng.stream ~seed i) x) (Array.of_list input))

let init pool n f = map pool f (Array.init n Fun.id)

(* ---- global default pool ---- *)

let env_domains () =
  match Sys.getenv_opt "PAR_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> Some d
      | _ -> None)

let default_domains () =
  match env_domains () with Some d -> d | None -> Domain.recommended_domain_count ()

let default : t option ref = ref None
let default_mutex = Mutex.create ()

let () =
  at_exit (fun () ->
      Mutex.lock default_mutex;
      let p = !default in
      default := None;
      Mutex.unlock default_mutex;
      Option.iter shutdown p)

let get () =
  Mutex.lock default_mutex;
  let pool =
    match !default with
    | Some p -> p
    | None ->
        let p = create ~domains:(default_domains ()) in
        default := Some p;
        p
  in
  Mutex.unlock default_mutex;
  pool

let set_domains domains =
  if domains < 1 then invalid_arg "Pool.set_domains: need at least one domain";
  Mutex.lock default_mutex;
  let old = !default in
  default := Some (create ~domains);
  Mutex.unlock default_mutex;
  Option.iter shutdown old
