type t = {
  size : int;
  mutex : Mutex.t;
  cond : Condition.t;  (** signalled on enqueue, task completion and close *)
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable drained : bool;  (** workers joined; only ever set after [closed] *)
  mutable workers : unit Domain.t list;
}

let size t = t.size

let worker pool =
  let rec loop () =
    Mutex.lock pool.mutex;
    let rec next () =
      if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
      else if pool.closed then None
      else begin
        Condition.wait pool.cond pool.mutex;
        next ()
      end
    in
    match next () with
    | None -> Mutex.unlock pool.mutex
    | Some task ->
        Mutex.unlock pool.mutex;
        task ();
        loop ()
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: need at least one domain";
  let pool =
    {
      size = domains;
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      closed = false;
      drained = false;
      workers = [];
    }
  in
  pool.workers <- List.init (domains - 1) (fun _ -> Domain.spawn (fun () -> worker pool));
  pool

(* Idempotent and safe under concurrency: exactly one caller takes the
   worker list (under the mutex) and joins it; every other caller —
   concurrent or later — waits until that join has finished, so all
   shutdown calls return with the workers really gone.  Workers drain the
   queue before honouring [closed] (see [worker]), and a caller blocked in
   [run_all] keeps executing its own tasks, so in-flight maps complete. *)
let shutdown pool =
  Mutex.lock pool.mutex;
  if pool.closed then begin
    while not pool.drained do
      Condition.wait pool.cond pool.mutex
    done;
    Mutex.unlock pool.mutex
  end
  else begin
    pool.closed <- true;
    let workers = pool.workers in
    pool.workers <- [];
    Condition.broadcast pool.cond;
    Mutex.unlock pool.mutex;
    List.iter Domain.join workers;
    Mutex.lock pool.mutex;
    pool.drained <- true;
    Condition.broadcast pool.cond;
    Mutex.unlock pool.mutex
  end

let with_pool ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* Runs every task, blocking until all have completed.  The caller executes
   tasks too — including, while it waits, tasks enqueued by OTHER concurrent
   [run_all] calls.  That keeps nested parallelism (a pooled task that itself
   calls [map]) deadlock-free: somebody always makes progress.  The first
   exception (in task order of observation) is re-raised once every task has
   finished. *)
let run_all pool tasks =
  let n = Array.length tasks in
  if n > 0 then begin
    let remaining = ref n in
    let first_error = ref None in
    let wrapped task () =
      (try task ()
       with e ->
         Mutex.lock pool.mutex;
         if !first_error = None then first_error := Some e;
         Mutex.unlock pool.mutex);
      Mutex.lock pool.mutex;
      decr remaining;
      Condition.broadcast pool.cond;
      Mutex.unlock pool.mutex
    in
    Mutex.lock pool.mutex;
    Array.iter (fun task -> Queue.add (wrapped task) pool.queue) tasks;
    Condition.broadcast pool.cond;
    while !remaining > 0 do
      if Queue.is_empty pool.queue then Condition.wait pool.cond pool.mutex
      else begin
        let task = Queue.pop pool.queue in
        Mutex.unlock pool.mutex;
        task ();
        Mutex.lock pool.mutex
      end
    done;
    Mutex.unlock pool.mutex;
    match !first_error with None -> () | Some e -> raise e
  end

(* Contiguous chunks, a few per domain so that uneven task costs still
   balance.  Results land at their input index, so the output never depends
   on execution order. *)
let chunk_tasks pool n run_range =
  let chunks = min n (4 * pool.size) in
  Array.init chunks (fun c ->
      let lo = c * n / chunks and hi = (c + 1) * n / chunks in
      fun () -> run_range lo hi)

let map pool f input =
  let n = Array.length input in
  if n = 0 then [||]
  else if pool.size = 1 || n = 1 then Array.map f input
  else begin
    let results = Array.make n None in
    run_all pool
      (chunk_tasks pool n (fun lo hi ->
           for i = lo to hi - 1 do
             results.(i) <- Some (f input.(i))
           done));
    Array.map (function Some v -> v | None -> assert false) results
  end

let mapi pool f input =
  let indexed = Array.mapi (fun i x -> (i, x)) input in
  map pool (fun (i, x) -> f i x) indexed

let map_list pool f input = Array.to_list (map pool f (Array.of_list input))

(* Per-item error capture: a failing item yields [Error exn] at its index
   instead of poisoning the whole batch.  [map] keeps first-error-wins
   semantics for callers that want the batch to fail as a unit. *)
let map_result pool f input =
  map pool (fun x -> match f x with v -> Ok v | exception e -> Error e) input

let map_list_result pool f input = Array.to_list (map_result pool f (Array.of_list input))

let map_seeded pool ~seed f input =
  Array.to_list
    (mapi pool (fun i x -> f (Prng.stream ~seed i) x) (Array.of_list input))

let init pool n f = map pool f (Array.init n Fun.id)

(* ---- global default pool ---- *)

let env_domains () =
  match Sys.getenv_opt "PAR_DOMAINS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d >= 1 -> Some d
      | _ -> None)

let default_domains () =
  match env_domains () with Some d -> d | None -> Domain.recommended_domain_count ()

let default : t option ref = ref None
let default_mutex = Mutex.create ()

let () =
  at_exit (fun () ->
      Mutex.lock default_mutex;
      let p = !default in
      default := None;
      Mutex.unlock default_mutex;
      Option.iter shutdown p)

let get () =
  Mutex.lock default_mutex;
  let pool =
    match !default with
    | Some p -> p
    | None ->
        let p = create ~domains:(default_domains ()) in
        default := Some p;
        p
  in
  Mutex.unlock default_mutex;
  pool

let set_domains domains =
  if domains < 1 then invalid_arg "Pool.set_domains: need at least one domain";
  Mutex.lock default_mutex;
  let old = !default in
  default := Some (create ~domains);
  Mutex.unlock default_mutex;
  Option.iter shutdown old
