(** Mapping heuristics — the future work announced in the paper's
    conclusion: now that the throughput of a given one-to-many mapping can
    be evaluated (deterministically via critical cycles, probabilistically
    via Theorems 3/4), use it to *choose* a mapping.

    Finding the optimal mapping is NP-complete even deterministically and
    without communications, so these are heuristics over the Overlap
    model:

    - {!baseline_fastest} maps each stage to one processor (fastest
      processors to heaviest stages) — the no-replication reference;
    - {!greedy} starts from that baseline and repeatedly gives one more
      processor to whichever stage improves the objective most;
    - {!exhaustive} scores every composition of the pool into team sizes
      (processors assigned to stages in a fixed speed-vs-work order) —
      exponential in the number of stages, for small instances and for
      calibrating the greedy heuristic. *)

open Streaming

type metric =
  | Deterministic  (** constant times: polynomial, cheap *)
  | Exponential
      (** exponential times (Theorem 3/4 machinery): the robust choice
          when operation times fluctuate; costlier on heterogeneous
          networks (pattern CTMCs) *)

val evaluate : metric -> Mapping.t -> float
(** Throughput of a mapping under the metric (Overlap model).  Returns 0
    when the probabilistic evaluation is intractable for this mapping —
    precisely, when it fails with a {e recoverable} typed solver error
    (see {!Supervise.Error.is_recoverable}): state space over the cap,
    stalled iteration, exhausted budget.  Any other failure —
    [Non_ergodic], [Numerical], [Invalid_argument] — propagates: a
    programming error never scores as a worthless mapping. *)

val compositions : int -> int -> int list list
(** [compositions total parts] is every way of writing [total] as an
    ordered sum of [parts] positive integers — the team-size search space
    of {!exhaustive} — and [[]] when [total < parts] or [parts <= 0].
    There are C(total-1, parts-1) of them. *)

val baseline_fastest : app:Application.t -> platform:Platform.t -> ?pool:int list -> unit -> Mapping.t
(** One processor per stage: sort the stages by work and the pool by
    speed, pair them up.  Raises [Invalid_argument] if the pool is smaller
    than the number of stages. *)

val greedy : ?metric:metric -> app:Application.t -> platform:Platform.t -> ?pool:int list -> unit -> Mapping.t
(** Hill climbing from {!baseline_fastest}: unused processors are placed
    one at a time (fastest first) on the team that maximises the
    objective, accepting neutral moves so that plateaus are crossed; the
    best mapping encountered is returned, so the result's throughput is
    never below the baseline's.  Default metric: {!Exponential}. *)

val exhaustive : ?metric:metric -> app:Application.t -> platform:Platform.t -> ?pool:int list -> unit -> Mapping.t
(** Best composition of the pool into positive team sizes under a fixed
    processor-assignment rule (heaviest per-processor stage load gets the
    fastest processors).  Cost grows as C(pool-1, stages-1); use on small
    instances.  Raises [Supervise.Error.Solver_error (Numerical _)] if
    the search space is empty (no composition at all). *)
