open Streaming

type metric = Deterministic | Exponential

(* Only typed, recoverable solver failures (state space over the cap, a
   stalled iteration, an exhausted budget) may demote a candidate to a
   zero score: they are information about the candidate, not about the
   code.  Everything else — [Non_ergodic], [Numerical], [Invalid_argument]
   — propagates, so a genuine programming error can never masquerade as a
   "worthless mapping" that the climbs silently route around. *)
let evaluate metric mapping =
  match metric with
  | Deterministic -> Streaming.Deterministic.overlap_throughput_decomposed mapping
  | Exponential -> (
      try Expo.overlap_throughput ~pattern_cap:200_000 mapping with
      | Supervise.Error.Solver_error err when Supervise.Error.is_recoverable err -> 0.0)

let default_pool platform = List.init (Platform.n_processors platform) Fun.id

let stages_by_work app =
  List.init (Application.n_stages app) Fun.id
  |> List.sort (fun i j -> compare (Application.work app j) (Application.work app i))

let pool_by_speed platform pool =
  List.sort (fun p q -> compare (Platform.speed platform q) (Platform.speed platform p)) pool

let mapping_of_teams app platform teams = Mapping.create ~app ~platform ~teams

let baseline_teams ~app ~platform pool =
  let n = Application.n_stages app in
  if List.length pool < n then invalid_arg "Mapper: pool smaller than the number of stages";
  let sorted_pool = Array.of_list (pool_by_speed platform pool) in
  let teams = Array.make n [||] in
  List.iteri (fun k stage -> teams.(stage) <- [| sorted_pool.(k) |]) (stages_by_work app);
  teams

let baseline_fastest ~app ~platform ?pool () =
  let pool = Option.value pool ~default:(default_pool platform) in
  mapping_of_teams app platform (baseline_teams ~app ~platform pool)

let greedy ?(metric = Exponential) ~app ~platform ?pool () =
  let pool = Option.value pool ~default:(default_pool platform) in
  let teams = baseline_teams ~app ~platform pool in
  let used = Hashtbl.create 16 in
  Array.iter (Array.iter (fun p -> Hashtbl.replace used p ())) teams;
  let remaining = pool_by_speed platform (List.filter (fun p -> not (Hashtbl.mem used p)) pool) in
  let best = ref (mapping_of_teams app platform teams) in
  let best_score = ref (evaluate metric !best) in
  (* Place every remaining processor on whichever stage scores best at
     this point, keeping the best mapping seen: neutral moves are
     accepted so that plateaus (where two additions are needed before the
     throughput moves) do not stop the climb early. *)
  List.iter
    (fun candidate ->
      let choice = ref None in
      Array.iteri
        (fun stage team ->
          let grown = Array.copy teams in
          grown.(stage) <- Array.append team [| candidate |];
          let mapping = mapping_of_teams app platform grown in
          let score = evaluate metric mapping in
          match !choice with
          | Some (_, best_candidate_score) when score <= best_candidate_score -> ()
          | _ -> choice := Some (stage, score))
        teams;
      match !choice with
      | None -> ()
      | Some (stage, score) ->
          teams.(stage) <- Array.append teams.(stage) [| candidate |];
          if score > !best_score then begin
            best := mapping_of_teams app platform teams;
            best_score := score
          end)
    remaining;
  !best

(* all compositions of [total] into [parts] positive integers; [] when
   [total < parts] or [parts <= 0] — the recursion below keeps the
   invariant [total >= parts >= 1], so [List.init] never sees a negative
   length *)
let compositions total parts =
  let rec go total parts =
    if parts = 1 then [ [ total ] ]
    else
      List.concat_map
        (fun first -> List.map (List.cons first) (go (total - first) (parts - 1)))
        (List.init (total - parts + 1) (fun i -> i + 1))
  in
  if parts <= 0 || total < parts then [] else go total parts

let exhaustive ?(metric = Exponential) ~app ~platform ?pool () =
  let pool = Option.value pool ~default:(default_pool platform) in
  let n = Application.n_stages app in
  if List.length pool < n then invalid_arg "Mapper: pool smaller than the number of stages";
  let sorted_pool = Array.of_list (pool_by_speed platform pool) in
  let stage_order = stages_by_work app in
  let best = ref None in
  List.iter
    (fun sizes ->
      let sizes = Array.of_list sizes in
      (* per-processor load work/size decides which stages deserve the
         fastest processors *)
      let order =
        List.sort
          (fun i j ->
            compare
              (Application.work app j /. float_of_int sizes.(j))
              (Application.work app i /. float_of_int sizes.(i)))
          stage_order
      in
      let teams = Array.make n [||] in
      let next = ref 0 in
      List.iter
        (fun stage ->
          teams.(stage) <- Array.sub sorted_pool !next sizes.(stage);
          next := !next + sizes.(stage))
        order;
      let mapping = mapping_of_teams app platform teams in
      let score = evaluate metric mapping in
      match !best with
      | Some (_, s) when s >= score -> ()
      | _ -> best := Some (mapping, score))
    (compositions (List.length pool) n);
  match !best with
  | Some (m, _) -> m
  | None ->
      Supervise.Error.raise_
        (Supervise.Error.Numerical
           {
             what = "empty search space: no composition of the pool into positive team sizes";
             where = "Mapper.exhaustive";
           })
