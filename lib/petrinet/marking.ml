type t = int array

let initial teg = Array.of_list (List.map (fun p -> p.Teg.tokens) (Teg.places teg))

let equal (a : t) (b : t) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec loop i = i >= n || (a.(i) = b.(i) && loop (i + 1)) in
  loop 0

(* FNV-1a over the token counts: allocation-free, and token counts are
   small so every count contributes to the low bits of the hash. *)
let hash (m : t) =
  let h = ref 0x811c9dc5 in
  for i = 0 to Array.length m - 1 do
    h := (!h lxor m.(i)) * 0x01000193 land max_int
  done;
  !h

let is_enabled teg m v = List.for_all (fun p -> m.(p) > 0) (Teg.in_places teg v)

let enabled teg m =
  let n = Teg.n_transitions teg in
  let rec collect v acc = if v < 0 then acc else collect (v - 1) (if is_enabled teg m v then v :: acc else acc) in
  collect (n - 1) []

let fire teg m v =
  if not (is_enabled teg m v) then invalid_arg "Marking.fire: transition not enabled";
  let m' = Array.copy m in
  List.iter (fun p -> m'.(p) <- m'.(p) - 1) (Teg.in_places teg v);
  List.iter (fun p -> m'.(p) <- m'.(p) + 1) (Teg.out_places teg v);
  m'

let fire_into teg m v ~into =
  if not (is_enabled teg m v) then invalid_arg "Marking.fire_into: transition not enabled";
  Array.blit m 0 into 0 (Array.length m);
  List.iter (fun p -> into.(p) <- into.(p) - 1) (Teg.in_places teg v);
  List.iter (fun p -> into.(p) <- into.(p) + 1) (Teg.out_places teg v)

let capacity_exceeded ~cap ~explored =
  Supervise.Error.raise_ (Supervise.Error.State_space_exceeded { cap; explored })

(* the budget's wall deadline is polled once per [budget_stride] registered
   states — BFS registration is the explorer's unit of progress *)
let budget_stride = 1024

let budget_tick budget count =
  match budget with
  | None -> ()
  | Some b -> if count land (budget_stride - 1) = 0 then Supervise.Budget.check b

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(* ---- compact state-space kernel ----

   Reachability exploration works on a packed representation whenever the
   whole marking fits one OCaml int: each place gets a fixed bit field
   sized from the tokens it can hold.  Firing a transition is then a
   single integer addition (the net token movement of the transition is a
   constant code delta) and deduplication hashes a machine int instead of
   an array.  Two width ladders are tried — per-place initial counts, then
   the total token count T of the net (a sound per-place bound for
   conservative nets, i.e. every net whose exploration terminates is
   covered by token-invariant cycles) — with an overflow guard on every
   firing; a net that outgrows both ladders restarts on the int-array
   path, which deduplicates whole markings but fires into a scratch buffer
   instead of copying an array per edge. *)

type graph = {
  markings : t array;  (** BFS discovery order; index 0 is the initial marking *)
  row_ptr : int array;  (** length [n_states + 1] *)
  succ : int array;  (** CSR successor state ids *)
  via : int array;  (** CSR transition fired along each edge *)
}

module Ibuf = struct
  type t = { mutable a : int array; mutable len : int }

  let create n = { a = Array.make (max n 16) 0; len = 0 }

  let push b x =
    if b.len = Array.length b.a then begin
      let a' = Array.make (2 * b.len) 0 in
      Array.blit b.a 0 a' 0 b.len;
      b.a <- a'
    end;
    b.a.(b.len) <- x;
    b.len <- b.len + 1

  let to_array b = Array.sub b.a 0 b.len
end

(* bits needed to store values 0..bound *)
let nbits bound =
  let rec go b acc = if b = 0 then max acc 1 else go (b lsr 1) (acc + 1) in
  go bound 0

type codec = {
  c_shift : int array;
  c_mask : int array;  (** per place, already shifted to bit 0 *)
}

let codec_of_widths widths =
  let n = Array.length widths in
  let shift = Array.make n 0 in
  let mask = Array.make n 0 in
  let total = ref 0 in
  for p = 0 to n - 1 do
    shift.(p) <- !total;
    mask.(p) <- (1 lsl widths.(p)) - 1;
    total := !total + widths.(p)
  done;
  if !total > 62 then None else Some { c_shift = shift; c_mask = mask }

let encode c (m : t) =
  let code = ref 0 in
  for p = 0 to Array.length m - 1 do
    code := !code lor (m.(p) lsl c.c_shift.(p))
  done;
  !code

let decode c ~n_places code =
  Array.init n_places (fun p -> (code lsr c.c_shift.(p)) land c.c_mask.(p))

exception Field_overflow

(* per-transition effect, as flat arrays *)
type effects = {
  e_in : int array array;  (** input place indices *)
  e_out : int array array;  (** output place indices *)
  e_out_pure : int array array;  (** output places that are not also inputs *)
  e_delta : int array;  (** net packed-code delta (packed path only) *)
}

let effects_of teg codec =
  let nt = Teg.n_transitions teg in
  let e_in = Array.init nt (fun v -> Array.of_list (Teg.in_places teg v)) in
  let e_out = Array.init nt (fun v -> Array.of_list (Teg.out_places teg v)) in
  let e_out_pure =
    Array.init nt (fun v ->
        let ins = Teg.in_places teg v in
        Array.of_list (List.filter (fun p -> not (List.mem p ins)) (Teg.out_places teg v)))
  in
  let e_delta =
    match codec with
    | None -> Array.make nt 0
    | Some c ->
        Array.init nt (fun v ->
            let d = ref 0 in
            List.iter (fun p -> d := !d + (1 lsl c.c_shift.(p))) (Teg.out_places teg v);
            List.iter (fun p -> d := !d - (1 lsl c.c_shift.(p))) (Teg.in_places teg v);
            !d)
  in
  { e_in; e_out; e_out_pure; e_delta }

(* Packed BFS.  Raises [Field_overflow] if any place outgrows its field —
   the caller then retries with wider fields or the array path. *)
let explore_packed ~cap ~budget ~record teg codec =
  let eff = effects_of teg (Some codec) in
  let nt = Teg.n_transitions teg in
  let codes = Ibuf.create 1024 in
  let index : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let row = Ibuf.create 1024 in
  let succ = Ibuf.create 1024 in
  let via = Ibuf.create 1024 in
  let register code =
    match Hashtbl.find_opt index code with
    | Some id -> id
    | None ->
        if codes.Ibuf.len >= cap then capacity_exceeded ~cap ~explored:codes.Ibuf.len;
        budget_tick budget codes.Ibuf.len;
        let id = codes.Ibuf.len in
        Hashtbl.add index code id;
        Ibuf.push codes code;
        id
  in
  let m0 = initial teg in
  ignore (register (encode codec m0));
  let head = ref 0 in
  while !head < codes.Ibuf.len do
    let code = codes.Ibuf.a.(!head) in
    if record then Ibuf.push row succ.Ibuf.len;
    for v = 0 to nt - 1 do
      let ins = eff.e_in.(v) in
      let enabled =
        let ok = ref true in
        for k = 0 to Array.length ins - 1 do
          let p = ins.(k) in
          if (code lsr codec.c_shift.(p)) land codec.c_mask.(p) = 0 then ok := false
        done;
        !ok
      in
      if enabled then begin
        let outs = eff.e_out_pure.(v) in
        for k = 0 to Array.length outs - 1 do
          let p = outs.(k) in
          if (code lsr codec.c_shift.(p)) land codec.c_mask.(p) = codec.c_mask.(p) then
            raise Field_overflow
        done;
        let id = register (code + eff.e_delta.(v)) in
        if record then begin
          Ibuf.push succ id;
          Ibuf.push via v
        end
      end
    done;
    incr head
  done;
  if record then Ibuf.push row succ.Ibuf.len;
  let n_places = Teg.n_places teg in
  {
    markings = Array.init codes.Ibuf.len (fun i -> decode codec ~n_places codes.Ibuf.a.(i));
    row_ptr = Ibuf.to_array row;
    succ = Ibuf.to_array succ;
    via = Ibuf.to_array via;
  }

(* Array-path BFS: markings are deduplicated whole, firings go into a
   scratch buffer that is only retained (and re-allocated) when it is a
   new state. *)
let explore_arrays ~cap ~budget ~record teg =
  let eff = effects_of teg None in
  let nt = Teg.n_transitions teg in
  let n_places = Teg.n_places teg in
  let store = ref (Array.make 1024 [||]) in
  let count = ref 0 in
  let index = Table.create 1024 in
  let row = Ibuf.create 1024 in
  let succ = Ibuf.create 1024 in
  let via = Ibuf.create 1024 in
  let register m =
    match Table.find_opt index m with
    | Some id -> (id, false)
    | None ->
        if !count >= cap then capacity_exceeded ~cap ~explored:!count;
        budget_tick budget !count;
        let id = !count in
        if id = Array.length !store then begin
          let a' = Array.make (2 * id) [||] in
          Array.blit !store 0 a' 0 id;
          store := a'
        end;
        !store.(id) <- m;
        Table.add index m id;
        incr count;
        (id, true)
  in
  ignore (register (initial teg));
  let scratch = ref (Array.make n_places 0) in
  let head = ref 0 in
  while !head < !count do
    let m = !store.(!head) in
    if record then Ibuf.push row succ.Ibuf.len;
    for v = 0 to nt - 1 do
      let ins = eff.e_in.(v) in
      let enabled =
        let ok = ref true in
        for k = 0 to Array.length ins - 1 do
          if m.(ins.(k)) = 0 then ok := false
        done;
        !ok
      in
      if enabled then begin
        let s = !scratch in
        Array.blit m 0 s 0 n_places;
        for k = 0 to Array.length ins - 1 do
          s.(ins.(k)) <- s.(ins.(k)) - 1
        done;
        let outs = eff.e_out.(v) in
        for k = 0 to Array.length outs - 1 do
          s.(outs.(k)) <- s.(outs.(k)) + 1
        done;
        let id, fresh = register s in
        if fresh then scratch := Array.make n_places 0;
        if record then begin
          Ibuf.push succ id;
          Ibuf.push via v
        end
      end
    done;
    incr head
  done;
  if record then Ibuf.push row succ.Ibuf.len;
  {
    markings = Array.sub !store 0 !count;
    row_ptr = Ibuf.to_array row;
    succ = Ibuf.to_array succ;
    via = Ibuf.to_array via;
  }

let explore_auto ~cap ~budget ~record ~packed teg =
  if not packed then explore_arrays ~cap ~budget ~record teg
  else begin
    let m0 = initial teg in
    let total = Array.fold_left ( + ) 0 m0 in
    let widths_initial = Array.map nbits m0 in
    let widths_total = Array.map (fun _ -> nbits total) m0 in
    let attempts =
      (if widths_initial = widths_total then [ widths_initial ] else [ widths_initial; widths_total ])
      |> List.filter_map codec_of_widths
    in
    let rec try_codecs = function
      | [] -> explore_arrays ~cap ~budget ~record teg
      | c :: rest -> (
          try explore_packed ~cap ~budget ~record teg c with Field_overflow -> try_codecs rest)
    in
    try_codecs attempts
  end

let effective_cap cap budget =
  match budget with None -> cap | Some b -> Supervise.Budget.cap_allowed b cap

let m_states_explored =
  Obs.Metrics.Counter.create ~help:"Markings discovered by reachability exploration"
    "marking_states_explored_total"

let m_edges_explored =
  Obs.Metrics.Counter.create ~help:"Marking-graph edges discovered by reachability exploration"
    "marking_edges_total"

let explore_graph ?(cap = 200_000) ?budget ?(packed = true) teg =
  Obs.Trace.span "petrinet:explore_graph" (fun () ->
      let g = explore_auto ~cap:(effective_cap cap budget) ~budget ~record:true ~packed teg in
      (* counters bump once per exploration, not per state, so the
         disabled-tracing overhead stays negligible *)
      let states = Array.length g.markings and edges = Array.length g.succ in
      Obs.Metrics.Counter.add m_states_explored states;
      Obs.Metrics.Counter.add m_edges_explored edges;
      Obs.Trace.add_attr "states" (string_of_int states);
      Obs.Trace.add_attr "edges" (string_of_int edges);
      g)

let explore ?(cap = 200_000) ?budget teg =
  (explore_auto ~cap:(effective_cap cap budget) ~budget ~record:false ~packed:true teg).markings
