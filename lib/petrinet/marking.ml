type t = int array

let initial teg = Array.of_list (List.map (fun p -> p.Teg.tokens) (Teg.places teg))

let equal (a : t) (b : t) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec loop i = i >= n || (a.(i) = b.(i) && loop (i + 1)) in
  loop 0

(* FNV-1a over the token counts: allocation-free, and token counts are
   small so every count contributes to the low bits of the hash. *)
let hash (m : t) =
  let h = ref 0x811c9dc5 in
  for i = 0 to Array.length m - 1 do
    h := (!h lxor m.(i)) * 0x01000193 land max_int
  done;
  !h

let is_enabled teg m v = List.for_all (fun p -> m.(p) > 0) (Teg.in_places teg v)

let enabled teg m =
  let n = Teg.n_transitions teg in
  let rec collect v acc = if v < 0 then acc else collect (v - 1) (if is_enabled teg m v then v :: acc else acc) in
  collect (n - 1) []

let fire teg m v =
  if not (is_enabled teg m v) then invalid_arg "Marking.fire: transition not enabled";
  let m' = Array.copy m in
  List.iter (fun p -> m'.(p) <- m'.(p) - 1) (Teg.in_places teg v);
  List.iter (fun p -> m'.(p) <- m'.(p) + 1) (Teg.out_places teg v);
  m'

let fire_into teg m v ~into =
  if not (is_enabled teg m v) then invalid_arg "Marking.fire_into: transition not enabled";
  Array.blit m 0 into 0 (Array.length m);
  List.iter (fun p -> into.(p) <- into.(p) - 1) (Teg.in_places teg v);
  List.iter (fun p -> into.(p) <- into.(p) + 1) (Teg.out_places teg v)

let capacity_exceeded ~cap ~explored =
  Supervise.Error.raise_ (Supervise.Error.State_space_exceeded { cap; explored })

(* The budget's wall deadline is polled once per [budget_poll_stride]
   registered states — BFS registration is the explorer's unit of progress.
   Serial and sharded exploration share this cadence (a power of two, so
   the poll test is a mask), and the sharded explorer additionally polls
   before allocating each frontier block so a spent wall clock cannot
   overshoot by a whole level of work. *)
let budget_poll_stride = 1024

let budget_tick budget count =
  match budget with
  | None -> ()
  | Some b -> if count land (budget_poll_stride - 1) = 0 then Supervise.Budget.check b

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(* ---- compact state-space kernel ----

   Reachability exploration works on a packed representation whenever the
   whole marking fits one OCaml int: each place gets a fixed bit field
   sized from the tokens it can hold.  Firing a transition is then a
   single integer addition (the net token movement of the transition is a
   constant code delta) and deduplication hashes a machine int instead of
   an array.  Two width ladders are tried — per-place initial counts, then
   the total token count T of the net (a sound per-place bound for
   conservative nets, i.e. every net whose exploration terminates is
   covered by token-invariant cycles) — with an overflow guard on every
   firing; a net that outgrows both ladders restarts on the int-array
   path, which deduplicates whole markings but fires into a scratch buffer
   instead of copying an array per edge. *)

type graph = {
  markings : t array;  (** BFS discovery order; index 0 is the initial marking *)
  row_ptr : int array;  (** length [n_states + 1] *)
  succ : int array;  (** CSR successor state ids *)
  via : int array;  (** CSR transition fired along each edge *)
}

module Ibuf = struct
  type t = { mutable a : int array; mutable len : int }

  let create n = { a = Array.make (max n 16) 0; len = 0 }

  let push b x =
    if b.len = Array.length b.a then begin
      let a' = Array.make (2 * b.len) 0 in
      Array.blit b.a 0 a' 0 b.len;
      b.a <- a'
    end;
    b.a.(b.len) <- x;
    b.len <- b.len + 1

  let to_array b = Array.sub b.a 0 b.len

  (* grow by [n] zero-filled slots and return nothing; callers write the
     reserved region through [b.a] directly (sharded CSR assembly) *)
  let extend b n =
    let need = b.len + n in
    if need > Array.length b.a then begin
      let cap = ref (max 16 (Array.length b.a)) in
      while !cap < need do
        cap := 2 * !cap
      done;
      let a' = Array.make !cap 0 in
      Array.blit b.a 0 a' 0 b.len;
      b.a <- a'
    end;
    b.len <- need
end

(* bits needed to store values 0..bound *)
let nbits bound =
  let rec go b acc = if b = 0 then max acc 1 else go (b lsr 1) (acc + 1) in
  go bound 0

type codec = {
  c_shift : int array;
  c_mask : int array;  (** per place, already shifted to bit 0 *)
}

let codec_of_widths widths =
  let n = Array.length widths in
  let shift = Array.make n 0 in
  let mask = Array.make n 0 in
  let total = ref 0 in
  for p = 0 to n - 1 do
    shift.(p) <- !total;
    mask.(p) <- (1 lsl widths.(p)) - 1;
    total := !total + widths.(p)
  done;
  if !total > 62 then None else Some { c_shift = shift; c_mask = mask }

let encode c (m : t) =
  let code = ref 0 in
  for p = 0 to Array.length m - 1 do
    code := !code lor (m.(p) lsl c.c_shift.(p))
  done;
  !code

let decode c ~n_places code =
  Array.init n_places (fun p -> (code lsr c.c_shift.(p)) land c.c_mask.(p))

exception Field_overflow

(* per-transition effect, as flat arrays *)
type effects = {
  e_in : int array array;  (** input place indices *)
  e_out : int array array;  (** output place indices *)
  e_out_pure : int array array;  (** output places that are not also inputs *)
  e_delta : int array;  (** net packed-code delta (packed path only) *)
}

let effects_of teg codec =
  let nt = Teg.n_transitions teg in
  let e_in = Array.init nt (fun v -> Array.of_list (Teg.in_places teg v)) in
  let e_out = Array.init nt (fun v -> Array.of_list (Teg.out_places teg v)) in
  let e_out_pure =
    Array.init nt (fun v ->
        let ins = Teg.in_places teg v in
        Array.of_list (List.filter (fun p -> not (List.mem p ins)) (Teg.out_places teg v)))
  in
  let e_delta =
    match codec with
    | None -> Array.make nt 0
    | Some c ->
        Array.init nt (fun v ->
            let d = ref 0 in
            List.iter (fun p -> d := !d + (1 lsl c.c_shift.(p))) (Teg.out_places teg v);
            List.iter (fun p -> d := !d - (1 lsl c.c_shift.(p))) (Teg.in_places teg v);
            !d)
  in
  { e_in; e_out; e_out_pure; e_delta }

(* Packed BFS.  Raises [Field_overflow] if any place outgrows its field —
   the caller then retries with wider fields or the array path. *)
let explore_packed ~cap ~budget ~record teg codec =
  let eff = effects_of teg (Some codec) in
  let nt = Teg.n_transitions teg in
  let codes = Ibuf.create 1024 in
  let index : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let row = Ibuf.create 1024 in
  let succ = Ibuf.create 1024 in
  let via = Ibuf.create 1024 in
  let register code =
    match Hashtbl.find_opt index code with
    | Some id -> id
    | None ->
        if codes.Ibuf.len >= cap then capacity_exceeded ~cap ~explored:codes.Ibuf.len;
        budget_tick budget codes.Ibuf.len;
        let id = codes.Ibuf.len in
        Hashtbl.add index code id;
        Ibuf.push codes code;
        id
  in
  let m0 = initial teg in
  ignore (register (encode codec m0));
  let head = ref 0 in
  while !head < codes.Ibuf.len do
    let code = codes.Ibuf.a.(!head) in
    if record then Ibuf.push row succ.Ibuf.len;
    for v = 0 to nt - 1 do
      let ins = eff.e_in.(v) in
      let enabled =
        let ok = ref true in
        for k = 0 to Array.length ins - 1 do
          let p = ins.(k) in
          if (code lsr codec.c_shift.(p)) land codec.c_mask.(p) = 0 then ok := false
        done;
        !ok
      in
      if enabled then begin
        let outs = eff.e_out_pure.(v) in
        for k = 0 to Array.length outs - 1 do
          let p = outs.(k) in
          if (code lsr codec.c_shift.(p)) land codec.c_mask.(p) = codec.c_mask.(p) then
            raise Field_overflow
        done;
        let id = register (code + eff.e_delta.(v)) in
        if record then begin
          Ibuf.push succ id;
          Ibuf.push via v
        end
      end
    done;
    incr head
  done;
  if record then Ibuf.push row succ.Ibuf.len;
  let n_places = Teg.n_places teg in
  {
    markings = Array.init codes.Ibuf.len (fun i -> decode codec ~n_places codes.Ibuf.a.(i));
    row_ptr = Ibuf.to_array row;
    succ = Ibuf.to_array succ;
    via = Ibuf.to_array via;
  }

(* Array-path BFS: markings are deduplicated whole, firings go into a
   scratch buffer that is only retained (and re-allocated) when it is a
   new state. *)
let explore_arrays ~cap ~budget ~record teg =
  let eff = effects_of teg None in
  let nt = Teg.n_transitions teg in
  let n_places = Teg.n_places teg in
  let store = ref (Array.make 1024 [||]) in
  let count = ref 0 in
  let index = Table.create 1024 in
  let row = Ibuf.create 1024 in
  let succ = Ibuf.create 1024 in
  let via = Ibuf.create 1024 in
  let register m =
    match Table.find_opt index m with
    | Some id -> (id, false)
    | None ->
        if !count >= cap then capacity_exceeded ~cap ~explored:!count;
        budget_tick budget !count;
        let id = !count in
        if id = Array.length !store then begin
          let a' = Array.make (2 * id) [||] in
          Array.blit !store 0 a' 0 id;
          store := a'
        end;
        !store.(id) <- m;
        Table.add index m id;
        incr count;
        (id, true)
  in
  ignore (register (initial teg));
  let scratch = ref (Array.make n_places 0) in
  let head = ref 0 in
  while !head < !count do
    let m = !store.(!head) in
    if record then Ibuf.push row succ.Ibuf.len;
    for v = 0 to nt - 1 do
      let ins = eff.e_in.(v) in
      let enabled =
        let ok = ref true in
        for k = 0 to Array.length ins - 1 do
          if m.(ins.(k)) = 0 then ok := false
        done;
        !ok
      in
      if enabled then begin
        let s = !scratch in
        Array.blit m 0 s 0 n_places;
        for k = 0 to Array.length ins - 1 do
          s.(ins.(k)) <- s.(ins.(k)) - 1
        done;
        let outs = eff.e_out.(v) in
        for k = 0 to Array.length outs - 1 do
          s.(outs.(k)) <- s.(outs.(k)) + 1
        done;
        let id, fresh = register s in
        if fresh then scratch := Array.make n_places 0;
        if record then begin
          Ibuf.push succ id;
          Ibuf.push via v
        end
      end
    done;
    incr head
  done;
  if record then Ibuf.push row succ.Ibuf.len;
  {
    markings = Array.sub !store 0 !count;
    row_ptr = Ibuf.to_array row;
    succ = Ibuf.to_array succ;
    via = Ibuf.to_array via;
  }

let explore_auto ~cap ~budget ~record ~packed teg =
  if not packed then explore_arrays ~cap ~budget ~record teg
  else begin
    let m0 = initial teg in
    let total = Array.fold_left ( + ) 0 m0 in
    let widths_initial = Array.map nbits m0 in
    let widths_total = Array.map (fun _ -> nbits total) m0 in
    let attempts =
      (if widths_initial = widths_total then [ widths_initial ] else [ widths_initial; widths_total ])
      |> List.filter_map codec_of_widths
    in
    let rec try_codecs = function
      | [] -> explore_arrays ~cap ~budget ~record teg
      | c :: rest -> (
          try explore_packed ~cap ~budget ~record teg c with Field_overflow -> try_codecs rest)
    in
    try_codecs attempts
  end

(* ---- sharded level-synchronous exploration ----

   BFS sharded over the domain pool, with the CSR output byte-identical to
   the serial explorers at any pool size.  The frontier is processed in
   level-synchronous rounds of three parallel phases plus one serial merge:

     phase 1  parents are split into contiguous chunks; each chunk worker
              enumerates successors and resolves them against the marking
              table READ-ONLY (the table only holds pre-level states, so no
              synchronisation is needed).  Unknown successors are recorded
              as (key, hash) pairs per chunk, in scan order.
     phase 2  the hash space is statically split into [n_shards] shards and
              each worker owns a subset exclusively, so insertion needs no
              locks.  A worker walks every chunk's unknowns in (chunk,
              position) order — i.e. global discovery order — and claims
              the first occurrence of each key with a provisional entry.
     merge    (serial) the claimed states from all shards are sorted by
              (chunk, position), which is exactly the (parent id,
              transition) order in which serial BFS would discover them,
              and registered with the same cap test and budget cadence as
              the serial path.  Ids therefore coincide with serial ids.
     phase 3  chunk workers resolve every edge target against the now
              complete table and write the succ/via slices at offsets fixed
              by a serial prefix sum — the same edge order serial BFS
              emits.

   The number of chunks depends on the pool size, but chunks are contiguous
   parent ranges, so (chunk, position) order never depends on it; neither do
   shard ownership (fixed [n_shards]) or id assignment (serial merge). *)

let n_shards = 64
let shard_bits = 6 (* log2 n_shards; the probe sequence starts above them *)

(* Exploration kernel over an abstract key type: a packed int code when the
   codec fits, the marking array itself otherwise.  [k_scan] enumerates the
   enabled firings of a parent in increasing transition order; the key it
   passes is transient (scratch) and must be retained through [k_copy]. *)
type 'k kernel = {
  k_dummy : 'k;
  k_initial : 'k;
  k_hash : 'k -> int;
  k_equal : 'k -> 'k -> bool;
  k_scan : 'k -> (int -> 'k -> unit) -> unit;
  k_copy : 'k -> 'k;
  k_marking : 'k -> t;
}

module Kbuf = struct
  type 'k t = { mutable a : 'k array; mutable len : int }

  let create dummy n = { a = Array.make (max n 16) dummy; len = 0 }

  let push b x =
    if b.len = Array.length b.a then begin
      let a' = Array.make (2 * b.len) b.a.(0) in
      Array.blit b.a 0 a' 0 b.len;
      b.a <- a'
    end;
    b.a.(b.len) <- x;
    b.len <- b.len + 1
end

(* Open-addressing shard: linear probing above the shard-selection bits.
   [ids] holds -1 for empty, a state id >= 0, or -2 for a provisional
   claim made during phase 2 (always finalised by the merge). *)
module Shard = struct
  type 'k t = {
    mutable keys : 'k array;
    mutable ids : int array;
    mutable mask : int;
    mutable used : int;
    dummy : 'k;
  }

  let create dummy =
    { keys = Array.make 64 dummy; ids = Array.make 64 (-1); mask = 63; used = 0; dummy }

  let slot t equal h key =
    let i = ref ((h lsr shard_bits) land t.mask) in
    while
      (let id = t.ids.(!i) in
       id <> -1 && not (equal t.keys.(!i) key))
    do
      i := (!i + 1) land t.mask
    done;
    !i

  let find t equal h key = t.ids.(slot t equal h key)

  let grow t equal hash =
    let okeys = t.keys and oids = t.ids in
    let cap = 2 * (t.mask + 1) in
    t.keys <- Array.make cap t.dummy;
    t.ids <- Array.make cap (-1);
    t.mask <- cap - 1;
    for i = 0 to Array.length oids - 1 do
      if oids.(i) <> -1 then begin
        let j = slot t equal (hash okeys.(i)) okeys.(i) in
        t.keys.(j) <- okeys.(i);
        t.ids.(j) <- oids.(i)
      end
    done

  let put t equal hash h key id =
    let i = slot t equal h key in
    if t.ids.(i) = -1 then begin
      t.keys.(i) <- key;
      t.used <- t.used + 1
    end;
    t.ids.(i) <- id;
    if 2 * t.used > t.mask then grow t equal hash
end

(* per-chunk phase-1 output: successor edges in scan order, each either a
   known id or a reference into the chunk's unknown-key list *)
type 'k chunk_scan = {
  c_deg : Ibuf.t;  (** edges per parent *)
  c_via : Ibuf.t;
  c_ref : Ibuf.t;  (** id [>= 0], or [-1 - u] with [u] an unknown index *)
  c_ukeys : 'k Kbuf.t;
  c_uhash : Ibuf.t;
}

let explore_sharded ~cap ~budget ~pool kernel =
  let k_hash = kernel.k_hash and k_equal = kernel.k_equal in
  let shards = Array.init n_shards (fun _ -> Shard.create kernel.k_dummy) in
  let shard_of h = h land (n_shards - 1) in
  let all = Kbuf.create kernel.k_dummy 1024 in
  let row = Ibuf.create 1024 in
  let succ = Ibuf.create 1024 in
  let via = Ibuf.create 1024 in
  (* replicates serial registration exactly: same cap test, same budget
     poll cadence, ids assigned in discovery order *)
  let register h key =
    if all.Kbuf.len >= cap then capacity_exceeded ~cap ~explored:all.Kbuf.len;
    budget_tick budget all.Kbuf.len;
    let id = all.Kbuf.len in
    Kbuf.push all key;
    Shard.put shards.(shard_of h) k_equal k_hash h key id;
    id
  in
  let k0 = kernel.k_initial in
  ignore (register (k_hash k0) k0);
  let lo = ref 0 in
  while !lo < all.Kbuf.len do
    let hi = all.Kbuf.len in
    (* poll the wall deadline before allocating the next frontier block so
       a spent budget cannot overshoot by a whole level of work *)
    (match budget with None -> () | Some b -> Supervise.Budget.check b);
    let width = hi - !lo in
    let nchunks = min width (4 * Parallel.Pool.size pool) in
    let lo0 = !lo in
    let bounds =
      Array.init nchunks (fun c ->
          (lo0 + (c * width / nchunks), lo0 + ((c + 1) * width / nchunks)))
    in
    let scans =
      Parallel.Pool.map pool
        (fun (clo, chi) ->
          let sc =
            {
              c_deg = Ibuf.create 64;
              c_via = Ibuf.create 256;
              c_ref = Ibuf.create 256;
              c_ukeys = Kbuf.create kernel.k_dummy 64;
              c_uhash = Ibuf.create 64;
            }
          in
          for i = clo to chi - 1 do
            let deg = ref 0 in
            kernel.k_scan all.Kbuf.a.(i) (fun v key ->
                incr deg;
                let h = k_hash key in
                let id = Shard.find shards.(shard_of h) k_equal h key in
                Ibuf.push sc.c_via v;
                if id >= 0 then Ibuf.push sc.c_ref id
                else begin
                  Ibuf.push sc.c_ref (-1 - sc.c_ukeys.Kbuf.len);
                  Kbuf.push sc.c_ukeys (kernel.k_copy key);
                  Ibuf.push sc.c_uhash h
                end);
            Ibuf.push sc.c_deg !deg
          done;
          sc)
        bounds
    in
    let news =
      Parallel.Pool.init pool n_shards (fun s ->
          let shard = shards.(s) in
          let n_chunk = Ibuf.create 16 and n_pos = Ibuf.create 16 in
          Array.iteri
            (fun ci sc ->
              for u = 0 to sc.c_ukeys.Kbuf.len - 1 do
                let h = sc.c_uhash.Ibuf.a.(u) in
                if shard_of h = s then begin
                  let key = sc.c_ukeys.Kbuf.a.(u) in
                  if Shard.find shard k_equal h key = -1 then begin
                    Shard.put shard k_equal k_hash h key (-2);
                    Ibuf.push n_chunk ci;
                    Ibuf.push n_pos u
                  end
                end
              done)
            scans;
          (n_chunk, n_pos))
    in
    let entries = ref [] in
    Array.iter
      (fun (n_chunk, n_pos) ->
        for j = n_chunk.Ibuf.len - 1 downto 0 do
          entries := (n_chunk.Ibuf.a.(j), n_pos.Ibuf.a.(j)) :: !entries
        done)
      news;
    let entries = Array.of_list !entries in
    Array.sort
      (fun (c1, p1) (c2, p2) -> if c1 <> c2 then compare c1 c2 else compare p1 p2)
      entries;
    Array.iter
      (fun (ci, u) ->
        let sc = scans.(ci) in
        ignore (register sc.c_uhash.Ibuf.a.(u) sc.c_ukeys.Kbuf.a.(u)))
      entries;
    let base = Array.make (nchunks + 1) 0 in
    Array.iteri (fun ci sc -> base.(ci + 1) <- base.(ci) + sc.c_via.Ibuf.len) scans;
    let e0 = succ.Ibuf.len in
    let off = ref e0 in
    Array.iter
      (fun sc ->
        for j = 0 to sc.c_deg.Ibuf.len - 1 do
          Ibuf.push row !off;
          off := !off + sc.c_deg.Ibuf.a.(j)
        done)
      scans;
    Ibuf.extend succ base.(nchunks);
    Ibuf.extend via base.(nchunks);
    Parallel.Pool.run_all pool
      (Array.init nchunks (fun ci ->
           fun () ->
             let sc = scans.(ci) in
             let o = e0 + base.(ci) in
             Array.blit sc.c_via.Ibuf.a 0 via.Ibuf.a o sc.c_via.Ibuf.len;
             for j = 0 to sc.c_ref.Ibuf.len - 1 do
               let r = sc.c_ref.Ibuf.a.(j) in
               succ.Ibuf.a.(o + j) <-
                 (if r >= 0 then r
                  else begin
                    let u = -1 - r in
                    let h = sc.c_uhash.Ibuf.a.(u) in
                    Shard.find shards.(shard_of h) k_equal h sc.c_ukeys.Kbuf.a.(u)
                  end)
             done));
    lo := hi
  done;
  Ibuf.push row succ.Ibuf.len;
  let n = all.Kbuf.len in
  let markings = Array.make n [||] in
  let nchunks = min n (4 * Parallel.Pool.size pool) in
  Parallel.Pool.run_all pool
    (Array.init nchunks (fun c ->
         let clo = c * n / nchunks and chi = (c + 1) * n / nchunks in
         fun () ->
           for i = clo to chi - 1 do
             markings.(i) <- kernel.k_marking all.Kbuf.a.(i)
           done));
  { markings; row_ptr = Ibuf.to_array row; succ = Ibuf.to_array succ; via = Ibuf.to_array via }

(* splitmix-style finaliser: the shard index consumes the low 6 bits and
   linear probing the rest, so packed codes need both well mixed *)
let mix_int code =
  let h = code lxor (code lsr 33) in
  let h = h * 0x27d4eb2f165667c5 land max_int in
  h lxor (h lsr 29)

let packed_kernel teg codec =
  let eff = effects_of teg (Some codec) in
  let nt = Teg.n_transitions teg in
  let n_places = Teg.n_places teg in
  {
    k_dummy = 0;
    k_initial = encode codec (initial teg);
    k_hash = mix_int;
    k_equal = Int.equal;
    k_scan =
      (fun code f ->
        for v = 0 to nt - 1 do
          let ins = eff.e_in.(v) in
          let enabled =
            let ok = ref true in
            for k = 0 to Array.length ins - 1 do
              let p = ins.(k) in
              if (code lsr codec.c_shift.(p)) land codec.c_mask.(p) = 0 then ok := false
            done;
            !ok
          in
          if enabled then begin
            let outs = eff.e_out_pure.(v) in
            for k = 0 to Array.length outs - 1 do
              let p = outs.(k) in
              if (code lsr codec.c_shift.(p)) land codec.c_mask.(p) = codec.c_mask.(p) then
                raise Field_overflow
            done;
            f v (code + eff.e_delta.(v))
          end
        done);
    k_copy = Fun.id;
    k_marking = decode codec ~n_places;
  }

let array_kernel teg =
  let eff = effects_of teg None in
  let nt = Teg.n_transitions teg in
  let n_places = Teg.n_places teg in
  {
    k_dummy = [||];
    k_initial = initial teg;
    k_hash = hash;
    k_equal = equal;
    k_scan =
      (fun m f ->
        (* one scratch per parent scan: the callback copies only the
           successors it has to retain (genuinely new states) *)
        let s = Array.make n_places 0 in
        for v = 0 to nt - 1 do
          let ins = eff.e_in.(v) in
          let enabled =
            let ok = ref true in
            for k = 0 to Array.length ins - 1 do
              if m.(ins.(k)) = 0 then ok := false
            done;
            !ok
          in
          if enabled then begin
            Array.blit m 0 s 0 n_places;
            for k = 0 to Array.length ins - 1 do
              s.(ins.(k)) <- s.(ins.(k)) - 1
            done;
            let outs = eff.e_out.(v) in
            for k = 0 to Array.length outs - 1 do
              s.(outs.(k)) <- s.(outs.(k)) + 1
            done;
            f v s
          end
        done);
    k_copy = Array.copy;
    k_marking = Fun.id;
  }

(* same codec ladder as [explore_auto], sharded kernels instead *)
let explore_sharded_auto ~cap ~budget ~packed ~pool teg =
  if not packed then explore_sharded ~cap ~budget ~pool (array_kernel teg)
  else begin
    let m0 = initial teg in
    let total = Array.fold_left ( + ) 0 m0 in
    let widths_initial = Array.map nbits m0 in
    let widths_total = Array.map (fun _ -> nbits total) m0 in
    let attempts =
      (if widths_initial = widths_total then [ widths_initial ] else [ widths_initial; widths_total ])
      |> List.filter_map codec_of_widths
    in
    let rec try_codecs = function
      | [] -> explore_sharded ~cap ~budget ~pool (array_kernel teg)
      | c :: rest -> (
          try explore_sharded ~cap ~budget ~pool (packed_kernel teg c)
          with Field_overflow -> try_codecs rest)
    in
    try_codecs attempts
  end

let effective_cap cap budget =
  match budget with None -> cap | Some b -> Supervise.Budget.cap_allowed b cap

let m_states_explored =
  Obs.Metrics.Counter.create ~help:"Markings discovered by reachability exploration"
    "marking_states_explored_total"

let m_edges_explored =
  Obs.Metrics.Counter.create ~help:"Marking-graph edges discovered by reachability exploration"
    "marking_edges_total"

let m_sharded_explorations =
  Obs.Metrics.Counter.create
    ~help:"Explorations that took the sharded level-synchronous path"
    "marking_sharded_explorations_total"

let explore_graph ?(cap = 200_000) ?budget ?(packed = true) ?pool teg =
  Obs.Trace.span "petrinet:explore_graph" (fun () ->
      let cap = effective_cap cap budget in
      let g =
        match pool with
        | Some p when Parallel.Pool.size p > 1 ->
            Obs.Metrics.Counter.incr m_sharded_explorations;
            Obs.Trace.add_attr "mode" "sharded";
            explore_sharded_auto ~cap ~budget ~packed ~pool:p teg
        | _ -> explore_auto ~cap ~budget ~record:true ~packed teg
      in
      (* counters bump once per exploration, not per state, so the
         disabled-tracing overhead stays negligible *)
      let states = Array.length g.markings and edges = Array.length g.succ in
      Obs.Metrics.Counter.add m_states_explored states;
      Obs.Metrics.Counter.add m_edges_explored edges;
      Obs.Trace.add_attr "states" (string_of_int states);
      Obs.Trace.add_attr "edges" (string_of_int edges);
      g)

let explore ?(cap = 200_000) ?budget teg =
  (explore_auto ~cap:(effective_cap cap budget) ~budget ~record:false ~packed:true teg).markings
