type t = int array

let initial teg = Array.of_list (List.map (fun p -> p.Teg.tokens) (Teg.places teg))
let equal (a : t) (b : t) =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec loop i = i >= n || (a.(i) = b.(i) && loop (i + 1)) in
  loop 0

(* FNV-1a over the token counts: allocation-free, and token counts are
   small so every count contributes to the low bits of the hash. *)
let hash (m : t) =
  let h = ref 0x811c9dc5 in
  for i = 0 to Array.length m - 1 do
    h := (!h lxor m.(i)) * 0x01000193 land max_int
  done;
  !h

let is_enabled teg m v = List.for_all (fun p -> m.(p) > 0) (Teg.in_places teg v)

let enabled teg m =
  let n = Teg.n_transitions teg in
  let rec collect v acc = if v < 0 then acc else collect (v - 1) (if is_enabled teg m v then v :: acc else acc) in
  collect (n - 1) []

let fire teg m v =
  if not (is_enabled teg m v) then invalid_arg "Marking.fire: transition not enabled";
  let m' = Array.copy m in
  List.iter (fun p -> m'.(p) <- m'.(p) - 1) (Teg.in_places teg v);
  List.iter (fun p -> m'.(p) <- m'.(p) + 1) (Teg.out_places teg v);
  m'

exception Capacity_exceeded of int

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

let explore ?(cap = 200_000) teg =
  let seen = Table.create 1024 in
  let order = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let register m =
    if not (Table.mem seen m) then begin
      if !count >= cap then raise (Capacity_exceeded cap);
      Table.add seen m !count;
      incr count;
      order := m :: !order;
      Queue.add m queue
    end
  in
  register (initial teg);
  while not (Queue.is_empty queue) do
    let m = Queue.pop queue in
    List.iter (fun v -> register (fire teg m v)) (enabled teg m)
  done;
  Array.of_list (List.rev !order)
