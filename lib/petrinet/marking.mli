(** Markings of a timed event graph and reachability exploration.

    A marking assigns a token count to every place.  This is the state
    space on which §5.1's general method builds its Markov chain: under
    exponential firing times the marking process is a CTMC. *)

type t = int array
(** Token count per place, indexed like [Teg.place]. *)

val initial : Teg.t -> t
val equal : t -> t -> bool
val hash : t -> int

val enabled : Teg.t -> t -> int list
(** Transitions whose every input place holds at least one token, in
    increasing index order. *)

val is_enabled : Teg.t -> t -> int -> bool

val fire : Teg.t -> t -> int -> t
(** [fire teg m v] consumes one token from each input place of [v] and
    produces one in each output place.  Raises [Invalid_argument] if [v] is
    not enabled. *)

val fire_into : Teg.t -> t -> int -> into:t -> unit
(** In-place counterpart of {!fire}: writes the successor marking into
    [into] (same length as [m]) instead of allocating.  [into] may not
    alias [m].  Raises [Invalid_argument] if [v] is not enabled. *)


type graph = {
  markings : t array;  (** BFS discovery order; index 0 is the initial marking *)
  row_ptr : int array;  (** length [Array.length markings + 1] *)
  succ : int array;  (** successor state id of each edge, rows concatenated *)
  via : int array;  (** transition fired along each edge *)
}
(** The reachable marking graph in compressed-sparse-row form: the edges
    out of state [i] are [succ.(k), via.(k)] for
    [k] in [row_ptr.(i) .. row_ptr.(i+1) - 1], listed in increasing
    transition order. *)

val budget_poll_stride : int
(** Registered-state interval (a power of two) at which exploration polls
    the budget's wall deadline.  Shared by the serial and the sharded BFS
    so both abort at the same registration counts. *)

val explore : ?cap:int -> ?budget:Supervise.Budget.t -> Teg.t -> t array
(** Breadth-first enumeration of the reachable markings, starting from the
    initial one (index 0 of the result).  [cap] (default 200_000) bounds
    the exploration; exceeding it raises
    [Supervise.Error.Solver_error (State_space_exceeded _)] — which is
    the signature of a token-unbounded net such as the full Overlap TPN.
    A [budget] tightens the cap with its state ceiling, and its wall
    deadline is polled every {!budget_poll_stride} registered states
    ([Budget_exhausted]). *)

val explore_graph :
  ?cap:int -> ?budget:Supervise.Budget.t -> ?packed:bool -> ?pool:Parallel.Pool.t -> Teg.t -> graph
(** Like {!explore} but also records the marking graph (one edge per
    enabled firing).  Markings are packed into single-int codes whenever
    the per-place bit fields fit one machine word — firing is then an
    integer addition — with an automatic fallback to the int-array
    representation.  [packed:false] forces the fallback path (the two
    paths return identical graphs; the flag exists for differential
    testing and benchmarks).

    With a [pool] of size >= 2 the BFS runs sharded over the pool in
    level-synchronous rounds: parent chunks are scanned in parallel,
    unknown successors are deduplicated in 64 exclusively-owned hash
    shards, and a serial merge assigns state ids in the exact (parent id,
    transition) discovery order of the serial BFS.  The resulting graph —
    markings, row_ptr, succ, via — is byte-identical to the serial result
    at every pool size, and the budget is additionally polled before each
    frontier block so a spent wall clock cannot overshoot by a level. *)
