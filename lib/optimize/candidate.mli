(** A search point: one one-to-many replicated mapping, represented as
    the per-stage processor teams.

    Candidates are kept in canonical form (each team sorted ascending) so
    that textually equal candidates are semantically equal: the search
    dedups visited points by {!key}, and every neighbourhood enumeration
    is in a fixed deterministic order — stage-major, then processor id —
    which is what makes the whole engine bit-identical for any domain
    pool size. *)

open Streaming

type t = private int array array
(** [t.(stage)] is the sorted team of the stage; never empty. *)

val of_teams : int array array -> t
(** Canonicalize (sort each team, copy).  Raises [Invalid_argument] on an
    empty team. *)

val teams : t -> int array array
(** A copy, safe to mutate. *)

val key : t -> string
(** Canonical rendering, e.g. ["0,3|1|2,4"] — equal iff the candidates
    assign the same teams. *)

val sizes : t -> int array
(** Replication factor of each stage. *)

val mapping : app:Application.t -> platform:Platform.t -> t -> Mapping.t

val baseline : app:Application.t -> platform:Platform.t -> pool:int list -> t
(** One processor per stage: fastest processors to heaviest stages —
    the classical no-replication starting point (ties broken by lower
    processor id / lower stage index).  Raises [Invalid_argument] when
    the pool is smaller than the number of stages. *)

val of_composition :
  app:Application.t -> platform:Platform.t -> pool:int list -> int list -> t
(** Candidate for one composition of the pool into team sizes, under the
    fixed assignment rule of [Mapper.exhaustive]: stages ranked by
    per-processor load [work/size] get the fastest processors first. *)

val unused : pool:int list -> t -> int list
(** Pool processors not in any team, ascending. *)

(** One elementary edit.  [Grow] places an unused processor on a stage;
    [Shrink] returns a team member to the free pool; [Move] transfers a
    processor between stages; [Swap] exchanges two processors across
    stages (only meaningful on heterogeneous platforms). *)
type edit =
  | Grow of { stage : int; proc : int }
  | Shrink of { stage : int; proc : int }
  | Move of { src : int; dst : int; proc : int }
  | Swap of { s1 : int; p1 : int; s2 : int; p2 : int }

val edit_to_string : edit -> string

val apply : t -> edit -> t option
(** [None] when the edit is infeasible (team would empty, processor not
    where the edit expects it). *)

val neighbors : pool:int list -> t -> (edit * t) list
(** Every feasible Grow/Shrink/Move/Swap neighbour, in a fixed
    deterministic order. *)

val random_edit : Prng.t -> pool:int list -> t -> (edit * t) option
(** One feasible random edit drawn from the given generator — the
    simulated-annealing proposal.  [None] only when the candidate has no
    neighbour at all. *)
