open Streaming

type metric =
  | Deterministic
  | Exponential
  | Strict
  | Custom of {
      name : string;
      bound : Mapping.t -> float;
      value : Mapping.t -> float;
    }

let metric_name = function
  | Deterministic -> "deterministic"
  | Exponential -> "exponential"
  | Strict -> "strict"
  | Custom { name; _ } -> name

type t = {
  m : metric;
  cap : int;
  sweeps : int option;
  states : int option;
  wall : float option;
  seed : int;
}

let create ?(cap = 200_000) ?sweeps ?states ?wall ?(seed = 1) m =
  { m; cap; sweeps; states; wall; seed }

let metric t = t.m
let cap t = t.cap
let sweeps t = t.sweeps
let states t = t.states
let wall t = t.wall
let seed t = t.seed

(* Fresh budget per candidate: the wall clock (when any) restarts at the
   candidate's own solve, so one slow candidate cannot starve the rest. *)
let budget t =
  match (t.wall, t.sweeps, t.states) with
  | None, None, None -> None
  | wall, sweeps, states -> Some (Supervise.Budget.create ?wall ?sweeps ?states ())

let bound t mapping =
  match t.m with
  | Custom { bound; _ } -> bound mapping
  | Deterministic | Exponential -> Deterministic.overlap_throughput_decomposed mapping
  | Strict -> Deterministic.throughput mapping Model.Strict

let value t mapping =
  match t.m with
  | Custom { value; _ } -> value mapping
  | Deterministic -> Deterministic.overlap_throughput_decomposed mapping
  | Exponential ->
      (* the budget's state ceiling tightens the pattern cap; its wall
         deadline is checked before the solve starts *)
      let cap =
        match budget t with
        | None -> t.cap
        | Some b ->
            Supervise.Budget.check b;
            Supervise.Budget.cap_allowed b t.cap
      in
      Expo.overlap_throughput ~pattern_cap:cap mapping
  | Strict ->
      let rho, (_ : Supervise.Provenance.t) =
        Experiments.Solve.throughput ~cap:t.cap ?budget:(budget t) ~seed:t.seed mapping
      in
      rho

type outcome =
  | Evaluated of float
  | Pruned of float
  | Failed of Supervise.Error.t

let outcome_to_string = function
  | Evaluated v -> Printf.sprintf "evaluated %.6g" v
  | Pruned b -> Printf.sprintf "pruned (upper bound %.6g)" b
  | Failed e -> "failed: " ^ Supervise.Error.to_string e

let evaluate t ~incumbent mapping =
  match t.m with
  | Deterministic ->
      (* bound = value: one computation serves both roles *)
      let v = Deterministic.overlap_throughput_decomposed mapping in
      if v <= incumbent then Pruned v else Evaluated v
  | _ -> (
      let b = bound t mapping in
      if b <= incumbent then Pruned b
      else
        match value t mapping with
        | v -> Evaluated v
        | exception Supervise.Error.Solver_error err -> Failed err)
