open Streaming

type t = int array array

let of_teams teams =
  Array.map
    (fun team ->
      if Array.length team = 0 then invalid_arg "Candidate.of_teams: empty team";
      let copy = Array.copy team in
      Array.sort compare copy;
      copy)
    teams

let teams t = Array.map Array.copy t

let key t =
  String.concat "|"
    (Array.to_list
       (Array.map (fun team -> String.concat "," (List.map string_of_int (Array.to_list team))) t))

let sizes t = Array.map Array.length t

let mapping ~app ~platform t = Mapping.create ~app ~platform ~teams:t

(* Fastest processors to heaviest stages; [compare (speed q, q) (speed p, p)]
   style tie-breaks keep the order total, hence deterministic. *)
let pool_by_speed platform pool =
  List.sort
    (fun p q -> compare (Platform.speed platform q, p) (Platform.speed platform p, q))
    pool

let stages_by_work app =
  List.init (Application.n_stages app) Fun.id
  |> List.sort (fun i j -> compare (Application.work app j, i) (Application.work app i, j))

let baseline ~app ~platform ~pool =
  let n = Application.n_stages app in
  if List.length pool < n then invalid_arg "Candidate.baseline: pool smaller than the number of stages";
  let sorted = Array.of_list (pool_by_speed platform pool) in
  let teams = Array.make n [||] in
  List.iteri (fun k stage -> teams.(stage) <- [| sorted.(k) |]) (stages_by_work app);
  of_teams teams

let of_composition ~app ~platform ~pool comp =
  let n = Application.n_stages app in
  if List.length comp <> n then invalid_arg "Candidate.of_composition: wrong number of parts";
  let comp = Array.of_list comp in
  let sorted = Array.of_list (pool_by_speed platform pool) in
  (* stages ranked by per-processor load work/size take the fastest
     processors first — the assignment rule of [Mapper.exhaustive] *)
  let order =
    List.sort
      (fun i j ->
        compare
          (Application.work app j /. float_of_int comp.(j), i)
          (Application.work app i /. float_of_int comp.(i), j))
      (List.init n Fun.id)
  in
  let teams = Array.make n [||] in
  let next = ref 0 in
  List.iter
    (fun stage ->
      teams.(stage) <- Array.sub sorted !next comp.(stage);
      next := !next + comp.(stage))
    order;
  of_teams teams

let unused ~pool t =
  let used = Hashtbl.create 16 in
  Array.iter (Array.iter (fun p -> Hashtbl.replace used p ())) t;
  List.sort compare (List.filter (fun p -> not (Hashtbl.mem used p)) pool)

type edit =
  | Grow of { stage : int; proc : int }
  | Shrink of { stage : int; proc : int }
  | Move of { src : int; dst : int; proc : int }
  | Swap of { s1 : int; p1 : int; s2 : int; p2 : int }

let edit_to_string = function
  | Grow { stage; proc } -> Printf.sprintf "grow(stage %d += p%d)" stage proc
  | Shrink { stage; proc } -> Printf.sprintf "shrink(stage %d -= p%d)" stage proc
  | Move { src; dst; proc } -> Printf.sprintf "move(p%d: stage %d -> %d)" proc src dst
  | Swap { s1; p1; s2; p2 } -> Printf.sprintf "swap(p%d@%d <-> p%d@%d)" p1 s1 p2 s2

let without team p =
  let filtered = Array.of_list (List.filter (fun q -> q <> p) (Array.to_list team)) in
  if Array.length filtered = Array.length team then None else Some filtered

let with_proc team p =
  let grown = Array.append team [| p |] in
  Array.sort compare grown;
  grown

let apply t edit =
  let n = Array.length t in
  let in_range s = s >= 0 && s < n in
  match edit with
  | Grow { stage; proc } ->
      if not (in_range stage) || Array.exists (fun team -> Array.mem proc team) t then None
      else begin
        let copy = Array.copy t in
        copy.(stage) <- with_proc t.(stage) proc;
        Some copy
      end
  | Shrink { stage; proc } ->
      if not (in_range stage) || Array.length t.(stage) < 2 then None
      else
        Option.map
          (fun team ->
            let copy = Array.copy t in
            copy.(stage) <- team;
            copy)
          (without t.(stage) proc)
  | Move { src; dst; proc } ->
      if (not (in_range src)) || (not (in_range dst)) || src = dst || Array.length t.(src) < 2
      then None
      else
        Option.map
          (fun team ->
            let copy = Array.copy t in
            copy.(src) <- team;
            copy.(dst) <- with_proc t.(dst) proc;
            copy)
          (without t.(src) proc)
  | Swap { s1; p1; s2; p2 } ->
      if (not (in_range s1)) || (not (in_range s2)) || s1 = s2 then None
      else (
        match (without t.(s1) p1, without t.(s2) p2) with
        | Some t1, Some t2 ->
            let copy = Array.copy t in
            copy.(s1) <- with_proc t1 p2;
            copy.(s2) <- with_proc t2 p1;
            Some copy
        | _ -> None)

(* Enumeration order is part of the determinism contract: stage-major,
   then team members ascending, then the partner dimension ascending. *)
let neighbors ~pool t =
  let n = Array.length t in
  let free = unused ~pool t in
  let acc = ref [] in
  let push edit = match apply t edit with None -> () | Some c -> acc := (edit, c) :: !acc in
  for stage = 0 to n - 1 do
    List.iter (fun proc -> push (Grow { stage; proc })) free
  done;
  for stage = 0 to n - 1 do
    Array.iter (fun proc -> push (Shrink { stage; proc })) t.(stage)
  done;
  for src = 0 to n - 1 do
    Array.iter
      (fun proc ->
        for dst = 0 to n - 1 do
          if dst <> src then push (Move { src; dst; proc })
        done)
      t.(src)
  done;
  for s1 = 0 to n - 1 do
    for s2 = s1 + 1 to n - 1 do
      Array.iter (fun p1 -> Array.iter (fun p2 -> push (Swap { s1; p1; s2; p2 })) t.(s2)) t.(s1)
    done
  done;
  List.rev !acc

let random_edit g ~pool t =
  let n = Array.length t in
  let free = Array.of_list (unused ~pool t) in
  let pick_stage () = Prng.int g n in
  let pick_member team = team.(Prng.int g (Array.length team)) in
  (* rejection-sample a feasible edit; the loop terminates whenever any
     neighbour exists, and the candidate always has one when n >= 2 or a
     free processor remains *)
  let attempt () =
    match Prng.int g 4 with
    | 0 when Array.length free > 0 ->
        let stage = pick_stage () in
        let proc = free.(Prng.int g (Array.length free)) in
        Some (Grow { stage; proc })
    | 1 ->
        let stage = pick_stage () in
        if Array.length t.(stage) < 2 then None
        else Some (Shrink { stage; proc = pick_member t.(stage) })
    | 2 when n >= 2 ->
        let src = pick_stage () in
        if Array.length t.(src) < 2 then None
        else
          let dst = (src + 1 + Prng.int g (n - 1)) mod n in
          Some (Move { src; dst; proc = pick_member t.(src) })
    | 3 when n >= 2 ->
        let s1 = pick_stage () in
        let s2 = (s1 + 1 + Prng.int g (n - 1)) mod n in
        let s1, s2 = (min s1 s2, max s1 s2) in
        Some (Swap { s1; p1 = pick_member t.(s1); s2; p2 = pick_member t.(s2) })
    | _ -> None
  in
  let has_any =
    Array.length free > 0 || Array.exists (fun team -> Array.length team >= 2) t || n >= 2
  in
  if not has_any then None
  else begin
    let rec go budget =
      if budget = 0 then None
      else
        match attempt () with
        | None -> go (budget - 1)
        | Some edit -> (
            match apply t edit with None -> go (budget - 1) | Some c -> Some (edit, c))
    in
    go 256
  end
