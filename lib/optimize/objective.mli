(** What the search maximizes, and what one evaluation may cost.

    Every candidate carries a cheap deterministic critical-cycle value —
    by Theorem 7 (N.B.U.E. sandwich) an {e upper bound} on the
    exponential-law throughput of the same mapping — so a candidate whose
    bound cannot beat the incumbent is {e pruned} before paying for the
    exponential solve.  A candidate that fails its solve with a typed
    [Supervise.Error] is {e demoted with provenance}: the failure is
    recorded in the search's attempt list and the candidate scores as
    unusable, but it is never silently converted into a [0.0] that the
    climbs would route around.  Any non-typed exception (for instance an
    [Invalid_argument] from a genuine programming error) propagates out
    of the whole search. *)

open Streaming

type metric =
  | Deterministic
      (** constant operation times: the critical-cycle value itself is
          the objective — polynomial, no prune/solve split *)
  | Exponential
      (** I.I.D. exponential times, Overlap model: Theorem 3/4 per-column
          decomposition through the pattern CTMCs and the [lib/young]
          caches *)
  | Strict
      (** I.I.D. exponential times, Strict model through
          [Experiments.Solve.throughput]: the full supervised ladder with
          the DES rung, so the evaluation itself never raises for solver
          reasons *)
  | Custom of {
      name : string;
      bound : Mapping.t -> float;  (** must upper-bound [value] *)
      value : Mapping.t -> float;
    }  (** test hook: inject arbitrary objective/bound pairs *)

val metric_name : metric -> string

type t
(** A configured objective: metric + per-candidate resource policy. *)

val create :
  ?cap:int ->
  ?sweeps:int ->
  ?states:int ->
  ?wall:float ->
  ?seed:int ->
  metric ->
  t
(** [cap] bounds each pattern/marking exploration (default 200_000);
    [sweeps]/[states]/[wall] build a fresh [Supervise.Budget] per
    candidate ([wall] breaks bit-identity across pool sizes — leave it
    unset when determinism matters); [seed] feeds the DES rung of
    {!Strict} (default 1). *)

val metric : t -> metric

(** {2 Resource-policy accessors} — mirrored into daemon requests by the
    [Remote] batch path. *)

val cap : t -> int
val sweeps : t -> int option
val states : t -> int option
val wall : t -> float option
val seed : t -> int

val bound : t -> Mapping.t -> float
(** The deterministic upper bound (critical-cycle throughput).  Cheap —
    polynomial — and exact for {!Deterministic}. *)

val value : t -> Mapping.t -> float
(** The objective value.  May raise [Supervise.Error.Solver_error]. *)

(** The outcome of one candidate under {!evaluate}. *)
type outcome =
  | Evaluated of float
  | Pruned of float
      (** not solved: the carried upper bound cannot beat the incumbent *)
  | Failed of Supervise.Error.t
      (** typed solver failure — search-space information, never [0.0] *)

val outcome_to_string : outcome -> string

val evaluate : t -> incumbent:float -> Mapping.t -> outcome
(** Prune against [incumbent] (a candidate with [bound <= incumbent]
    cannot improve on it), else solve.  [incumbent = neg_infinity]
    disables the prune. *)
