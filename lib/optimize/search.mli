(** The optimizer's search rungs, all driving one shared {!state}.

    Determinism contract: for a fixed seed and settings, every rung
    visits, evaluates and ranks candidates in an order that depends only
    on the instance — never on the domain-pool size or the scheduling of
    the parallel batches.  Candidate batches are fanned out over the
    [lib/parallel] pool (results land at their input index); incumbents
    update only between batches; ties break on batch index; annealing
    randomness comes from [Prng.stream]s indexed by the proposal's round
    and slot.  Consequently the engine's output is bit-identical for any
    [--domains] value. *)

open Streaming

type settings = {
  pool : Parallel.Pool.t;  (** evaluation fan-out *)
  objective : Objective.t;
  procs : int list;  (** processor pool of the platform to search over *)
  seed : int;  (** annealing PRNG stream family *)
  local_max_iters : int;  (** local-search step ceiling *)
  first_improvement : bool;
      (** take the first improving neighbour (chunked scan) instead of
          the steepest *)
  anneal_rounds : int;
  anneal_batch : int;
      (** proposals per annealing round — a fixed constant, {e not} the
          pool size, to keep the schedule pool-independent *)
  anneal_t0 : float;  (** initial temperature, relative-delta units *)
  anneal_alpha : float;  (** geometric cooling factor per round *)
  evaluator : (Mapping.t list -> Objective.outcome list) option;
      (** override the in-process solve for a whole (already
          bound-pruned) batch — the daemon batch path; [None] evaluates
          locally over [pool].  Must return one outcome per input, in
          order, and only [Evaluated]/[Failed]. *)
}

val default_settings :
  pool:Parallel.Pool.t -> objective:Objective.t -> procs:int list -> settings

type attempt = {
  rung : string;
  candidate : string;  (** {!Candidate.key} *)
  outcome : Objective.outcome;
}

(** Shared accumulator across rungs: incumbent, counters, and the
    attempt list (every typed failure, every new incumbent). *)
type state

val init : app:Application.t -> platform:Platform.t -> settings -> state

val best : state -> (Candidate.t * float) option

val candidates : state -> int
(** generated (incl. pruned/failed/dedup'd) *)

val evaluated : state -> int
val pruned : state -> int
val failed : state -> int

val attempts : state -> attempt list
(** in chronological order *)

val run_greedy : state -> unit
(** Repaired greedy: from the one-processor-per-stage baseline, place
    every remaining processor on the stage that scores best, accepting
    neutral moves (plateaus), tracking the best mapping seen.  Failures
    are recorded, never scored as [0.0]. *)

val run_local : state -> unit
(** Hill climbing over the Grow/Shrink/Move/Swap neighbourhood from the
    current incumbent (or the baseline when none): steepest ascent, or
    first-improvement when [first_improvement] is set.  Neighbours whose
    deterministic bound cannot beat the current point are pruned without
    paying for a solve. *)

val run_anneal : state -> unit
(** Batched simulated annealing with bound-gated Metropolis acceptance:
    each round draws [anneal_batch] proposals from per-(round,slot) PRNG
    streams, evaluates the ones whose bound survives an optimistic
    acceptance test, and accepts the first passing proposal.  A proposal
    whose acceptance coin rejects even the optimistic bound-delta is
    pruned without a solve (rejecting the true, smaller delta a
    fortiori). *)

val run_exhaustive : state -> unit
(** Score every composition of the pool into positive team sizes (the
    [Mapper.exhaustive] space) with bound-pruning and pool fan-out.
    Cost grows as C(pool-1, stages-1). *)
