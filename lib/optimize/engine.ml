open Streaming
module Json = Service.Json

type rung = Greedy | Local | Anneal | Exhaustive

let rung_to_string = function
  | Greedy -> "greedy"
  | Local -> "local"
  | Anneal -> "anneal"
  | Exhaustive -> "exhaustive"

let rung_of_string = function
  | "greedy" -> Ok Greedy
  | "local" -> Ok Local
  | "anneal" -> Ok Anneal
  | "exhaustive" -> Ok Exhaustive
  | s -> Error (Printf.sprintf "unknown rung %S (greedy|local|anneal|exhaustive)" s)

let default_rungs = [ Greedy; Local ]

type report = {
  metric : string;
  seed : int;
  rungs : rung list;
  n_stages : int;
  n_procs : int;
  best : (Candidate.t * float) option;
  candidates : int;
  evaluated : int;
  pruned : int;
  failed : int;
  attempts : Search.attempt list;
}

let run ?(rungs = default_rungs) ~app ~platform (settings : Search.settings) =
  let st = Search.init ~app ~platform settings in
  List.iter
    (fun rung ->
      match rung with
      | Greedy -> Search.run_greedy st
      | Local -> Search.run_local st
      | Anneal -> Search.run_anneal st
      | Exhaustive -> Search.run_exhaustive st)
    rungs;
  {
    metric = Objective.metric_name (Objective.metric settings.Search.objective);
    seed = settings.Search.seed;
    rungs;
    n_stages = Application.n_stages app;
    n_procs = List.length settings.Search.procs;
    best = Search.best st;
    candidates = Search.candidates st;
    evaluated = Search.evaluated st;
    pruned = Search.pruned st;
    failed = Search.failed st;
    attempts = Search.attempts st;
  }

let teams_json cand =
  Json.List
    (Array.to_list
       (Array.map
          (fun team -> Json.List (Array.to_list (Array.map (fun p -> Json.Int p) team)))
          (Candidate.teams cand)))

let attempt_json (a : Search.attempt) =
  let outcome_fields =
    match a.Search.outcome with
    | Objective.Evaluated v -> [ ("outcome", Json.String "evaluated"); ("throughput", Json.Float v) ]
    | Objective.Pruned b -> [ ("outcome", Json.String "pruned"); ("bound", Json.Float b) ]
    | Objective.Failed err ->
        [
          ("outcome", Json.String "failed");
          ("error", Json.String (Supervise.Error.to_string err));
        ]
  in
  Json.Obj ([ ("rung", Json.String a.Search.rung); ("candidate", Json.String a.Search.candidate) ] @ outcome_fields)

let report_json r =
  let best_fields =
    match r.best with
    | None -> [ ("found", Json.Bool false) ]
    | Some (cand, rho) ->
        [
          ("found", Json.Bool true);
          ("teams", teams_json cand);
          ("key", Json.String (Candidate.key cand));
          ("throughput", Json.Float rho);
        ]
  in
  Json.Obj
    [
      ("record", Json.String "optimize");
      ("metric", Json.String r.metric);
      ("seed", Json.Int r.seed);
      ("rungs", Json.List (List.map (fun rung -> Json.String (rung_to_string rung)) r.rungs));
      ("stages", Json.Int r.n_stages);
      ("procs", Json.Int r.n_procs);
      ("best", Json.Obj best_fields);
      ( "search",
        Json.Obj
          [
            ("candidates", Json.Int r.candidates);
            ("evaluated", Json.Int r.evaluated);
            ("pruned", Json.Int r.pruned);
            ("failed", Json.Int r.failed);
          ] );
      ("attempts", Json.List (List.map attempt_json r.attempts));
    ]

let report_to_string r = Json.render (report_json r)
