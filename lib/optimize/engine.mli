(** Orchestration: run a ladder of search rungs over one shared state and
    assemble a deterministic result record.

    The report deliberately carries {e no} wall-clock times and no
    [Young.Pattern] cache statistics — both depend on scheduling, and the
    record (like its {!report_json} rendering) must be bit-identical for
    any domain-pool size.  Throughput-per-second style numbers belong to
    the bench harness, which measures around the engine. *)

open Streaming

type rung = Greedy | Local | Anneal | Exhaustive

val rung_to_string : rung -> string
val rung_of_string : string -> (rung, string) result

val default_rungs : rung list
(** [[Greedy; Local]] — the polynomial ladder. *)

type report = {
  metric : string;
  seed : int;
  rungs : rung list;
  n_stages : int;
  n_procs : int;
  best : (Candidate.t * float) option;
  candidates : int;
  evaluated : int;
  pruned : int;
  failed : int;
  attempts : Search.attempt list;
}

val run :
  ?rungs:rung list -> app:Application.t -> platform:Platform.t -> Search.settings -> report
(** Runs the rungs in order on one {!Search.state} (later rungs start
    from the earlier rungs' incumbent, and the memo carries over), inside
    an [Obs.Trace] span per rung. *)

val report_json : report -> Service.Json.t
(** Deterministic record: best mapping (teams, key, throughput, its
    deterministic upper bound is {e not} re-derived), search counters,
    and the attempt trail (new incumbents and typed failures, in
    order). *)

val report_to_string : report -> string
(** [Service.Json.render (report_json r)] — one line, JSONL-ready. *)
