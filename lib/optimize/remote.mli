(** Daemon-backed candidate evaluation — the optimizer's batch path.

    {!evaluator} turns a connected {!Service.Client} into the
    [Search.settings.evaluator] hook: each (already bound-pruned) batch
    of mappings is rendered in the [Instance_io] text format, shipped as
    protocol [batch] requests (chunked to [Protocol.max_batch] items)
    and the replies decoded back into {!Objective.outcome}s.  Typed
    solver failures are reconstructed from the reply's [kind] + extras,
    so the daemon path and the in-process path are observationally
    identical — up to the DES tie-break seed of the {e Strict} metric's
    last ladder rung, which is the daemon's, not the objective's.

    Transport failures and non-solver protocol errors ([bad_request],
    [busy], ...) raise [Failure]: they mean the daemon or the wiring is
    broken, not that the candidate is. *)

open Streaming

val error_of_json : Service.Json.t -> Supervise.Error.t option
(** Rebuild the typed solver failure carried by an [ok:false] reply's
    ["error"] object; [None] when the kind is not a solver kind. *)

val evaluator :
  Service.Client.t -> objective:Objective.t -> Mapping.t list -> Objective.outcome list
(** May raise [Failure] (transport/protocol) or [Invalid_argument] when
    the objective's metric is [Custom] — custom objectives are local by
    definition. *)
