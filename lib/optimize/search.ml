open Streaming

type settings = {
  pool : Parallel.Pool.t;
  objective : Objective.t;
  procs : int list;
  seed : int;
  local_max_iters : int;
  first_improvement : bool;
  anneal_rounds : int;
  anneal_batch : int;
  anneal_t0 : float;
  anneal_alpha : float;
  evaluator : (Mapping.t list -> Objective.outcome list) option;
}

let default_settings ~pool ~objective ~procs =
  {
    pool;
    objective;
    procs;
    seed = 1;
    local_max_iters = 64;
    first_improvement = false;
    anneal_rounds = 64;
    anneal_batch = 8;
    anneal_t0 = 0.10;
    anneal_alpha = 0.92;
    evaluator = None;
  }

type attempt = {
  rung : string;
  candidate : string;
  outcome : Objective.outcome;
}

type state = {
  app : Application.t;
  platform : Platform.t;
  s : settings;
  memo : (string, Objective.outcome) Hashtbl.t;
      (** [Evaluated]/[Failed] per candidate key: re-visits are free, and a
          candidate that failed once is never solved again *)
  mutable n_candidates : int;
  mutable n_evaluated : int;
  mutable n_pruned : int;
  mutable n_failed : int;
  mutable attempts_rev : attempt list;
  mutable best : (Candidate.t * float) option;
}

(* ---- observability: process-wide counters + best-so-far gauge ---- *)

let m_candidates =
  Obs.Metrics.Counter.create ~help:"Mapping candidates considered by the optimizer"
    "optimize_candidates_total"

let m_evaluated =
  Obs.Metrics.Counter.create ~help:"Candidates actually solved (throughput queries paid for)"
    "optimize_evaluated_total"

let m_pruned =
  Obs.Metrics.Counter.create
    ~help:"Candidates discarded by the deterministic critical-cycle upper bound"
    "optimize_pruned_total"

let m_failed =
  Obs.Metrics.Counter.create ~help:"Candidates demoted by a typed solver failure"
    "optimize_failed_total"

let g_best =
  Obs.Metrics.Gauge.create ~help:"Best throughput found so far by the optimizer"
    "optimize_best_throughput"

let init ~app ~platform s =
  if List.length s.procs < Application.n_stages app then
    invalid_arg "Search.init: processor pool smaller than the number of stages";
  {
    app;
    platform;
    s;
    memo = Hashtbl.create 256;
    n_candidates = 0;
    n_evaluated = 0;
    n_pruned = 0;
    n_failed = 0;
    attempts_rev = [];
    best = None;
  }

let best st = st.best
let candidates st = st.n_candidates
let evaluated st = st.n_evaluated
let pruned st = st.n_pruned
let failed st = st.n_failed
let attempts st = List.rev st.attempts_rev

let best_score st = match st.best with None -> neg_infinity | Some (_, v) -> v

let record st rung key outcome = st.attempts_rev <- { rung; candidate = key; outcome } :: st.attempts_rev

let note_best st rung key cand v =
  if v > best_score st then begin
    st.best <- Some (cand, v);
    Obs.Metrics.Gauge.set g_best v;
    record st rung key (Objective.Evaluated v)
  end

let mapping_of st cand = Candidate.mapping ~app:st.app ~platform:st.platform cand

(* ---- batch primitives ----
   All fan-out goes through the pool with results at their input index;
   counters and the memo are updated by the (single-threaded) caller, so
   the state never needs a lock and the update order is deterministic. *)

let bounds st cands =
  Parallel.Pool.map_list st.s.pool
    (fun c -> Objective.bound st.s.objective (mapping_of st c))
    cands

(* Solve every candidate (no pruning here), memo-aware.  Outcomes are
   [Evaluated] or [Failed]; any non-typed exception from a solve is
   re-raised — a programming error must not be routed around. *)
let solve_batch st rung cands =
  let keys = List.map Candidate.key cands in
  let fresh =
    List.filter_map
      (fun (key, c) -> if Hashtbl.mem st.memo key then None else Some (key, c))
      (List.combine keys cands)
  in
  (* dedup within the batch itself, keeping first occurrence order *)
  let fresh =
    let seen = Hashtbl.create 16 in
    List.filter
      (fun (key, _) ->
        if Hashtbl.mem seen key then false
        else begin
          Hashtbl.add seen key ();
          true
        end)
      fresh
  in
  let outcomes =
    match st.s.evaluator with
    | Some remote -> remote (List.map (fun (_, c) -> mapping_of st c) fresh)
    | None ->
        List.map
          (function
            | Ok v -> Objective.Evaluated v
            | Error (Supervise.Error.Solver_error err) -> Objective.Failed err
            | Error exn -> raise exn)
          (Parallel.Pool.map_list_result st.s.pool
             (fun (_, c) -> Objective.value st.s.objective (mapping_of st c))
             fresh)
  in
  List.iter2
    (fun (key, _) outcome ->
      Hashtbl.replace st.memo key outcome;
      match outcome with
      | Objective.Evaluated _ ->
          st.n_evaluated <- st.n_evaluated + 1;
          Obs.Metrics.Counter.incr m_evaluated
      | Objective.Failed _ ->
          st.n_failed <- st.n_failed + 1;
          Obs.Metrics.Counter.incr m_failed;
          record st rung key outcome
      | Objective.Pruned _ -> ())
    fresh outcomes;
  List.map (fun key -> Hashtbl.find st.memo key) keys

(* Bound-prune against [incumbent], then solve the survivors.  Returns one
   outcome per candidate, in order. *)
let eval_batch st rung ~incumbent cands =
  st.n_candidates <- st.n_candidates + List.length cands;
  Obs.Metrics.Counter.add m_candidates (List.length cands);
  let keys = List.map Candidate.key cands in
  let bs = bounds st cands in
  let kept =
    List.filter_map
      (fun ((key, c), b) ->
        match Hashtbl.find_opt st.memo key with
        | Some _ -> Some c (* memo hit: no solve cost, keep the known outcome *)
        | None ->
            if b <= incumbent then begin
              st.n_pruned <- st.n_pruned + 1;
              Obs.Metrics.Counter.incr m_pruned;
              None
            end
            else Some c)
      (List.combine (List.combine keys cands) bs)
  in
  let solved = solve_batch st rung kept in
  let tbl = Hashtbl.create 16 in
  List.iter2 (fun c o -> Hashtbl.replace tbl (Candidate.key c) o) kept solved;
  List.map2
    (fun key b ->
      match Hashtbl.find_opt tbl key with
      | Some o -> o
      | None -> (
          match Hashtbl.find_opt st.memo key with
          | Some o -> o
          | None -> Objective.Pruned b))
    keys bs

(* ---- rung: repaired greedy ---- *)

let pool_by_speed st procs =
  List.sort
    (fun p q ->
      compare (Platform.speed st.platform q, p) (Platform.speed st.platform p, q))
    procs

let ensure_start st rung =
  match st.best with
  | Some (c, v) -> (c, v)
  | None -> (
      let base = Candidate.baseline ~app:st.app ~platform:st.platform ~pool:st.s.procs in
      st.n_candidates <- st.n_candidates + 1;
      Obs.Metrics.Counter.incr m_candidates;
      match solve_batch st rung [ base ] with
      | [ Objective.Evaluated v ] ->
          note_best st rung (Candidate.key base) base v;
          (base, v)
      | [ Objective.Failed err ] -> Supervise.Error.raise_ err
      | _ -> assert false)

let run_greedy st =
  Obs.Trace.span "optimize:greedy" @@ fun () ->
  let rung = "greedy" in
  let base = Candidate.baseline ~app:st.app ~platform:st.platform ~pool:st.s.procs in
  st.n_candidates <- st.n_candidates + 1;
  Obs.Metrics.Counter.incr m_candidates;
  (match solve_batch st rung [ base ] with
  | [ Objective.Evaluated v ] -> note_best st rung (Candidate.key base) base v
  | [ Objective.Failed err ] ->
      (* no usable starting point: the typed failure is already in the
         attempt list; nothing to climb from *)
      ignore err
  | _ -> assert false);
  let current = ref base in
  let n = Application.n_stages st.app in
  let free = pool_by_speed st (Candidate.unused ~pool:st.s.procs base) in
  (* place every remaining processor (fastest first) on whichever stage
     scores best at this point; neutral and even losing placements are
     accepted so plateaus do not stop the climb — the best mapping seen is
     tracked separately by [note_best] *)
  List.iter
    (fun proc ->
      let placements =
        List.filter_map
          (fun stage ->
            Option.map (fun c -> (stage, c)) (Candidate.apply !current (Candidate.Grow { stage; proc })))
          (List.init n Fun.id)
      in
      if placements <> [] then begin
        (* exact scores are needed to rank neutral moves, so greedy does
           not bound-prune its placements *)
        let outcomes = eval_batch st rung ~incumbent:neg_infinity (List.map snd placements) in
        (* on a plateau (several placements with the same score — common
           early, when another stage is still the bottleneck) prefer the
           stage with the highest per-processor load after the placement:
           stacking everything on the first stage would strand the climb *)
        let load_after stage cand =
          Application.work st.app stage /. float_of_int (Candidate.sizes cand).(stage)
        in
        let chosen =
          List.fold_left
            (fun acc ((stage, cand), outcome) ->
              match outcome with
              | Objective.Evaluated v -> (
                  let l = load_after stage cand in
                  match acc with
                  | Some (_, _, best_v, best_l) when best_v > v || (best_v = v && best_l >= l)
                    ->
                      acc
                  | _ -> Some (stage, cand, v, l))
              | Objective.Pruned _ | Objective.Failed _ -> acc)
            None
            (List.combine placements outcomes)
        in
        match chosen with
        | None -> () (* every placement failed: skip this processor *)
        | Some (_, cand, v, _) ->
            current := cand;
            note_best st rung (Candidate.key cand) cand v
      end)
    free

(* ---- rung: local search (steepest / first-improvement) ---- *)

let run_local st =
  Obs.Trace.span "optimize:local" @@ fun () ->
  let rung = "local" in
  let start = ensure_start st rung in
  let current = ref start in
  let improved = ref true in
  let iters = ref 0 in
  while !improved && !iters < st.s.local_max_iters do
    incr iters;
    improved := false;
    let _, cur_v = !current in
    let neighbors = Candidate.neighbors ~pool:st.s.procs (fst !current) in
    let cands = List.map snd neighbors in
    let better = ref None in
    if st.s.first_improvement then begin
      (* fixed-size chunks keep the scan order (and hence the chosen
         neighbour) independent of the pool size *)
      let chunk = 16 in
      let rec scan = function
        | [] -> ()
        | rest ->
            let head = List.filteri (fun i _ -> i < chunk) rest in
            let tail = List.filteri (fun i _ -> i >= chunk) rest in
            let outcomes = eval_batch st rung ~incumbent:cur_v head in
            List.iter2
              (fun c o ->
                match (o, !better) with
                | Objective.Evaluated v, None when v > cur_v -> better := Some (c, v)
                | _ -> ())
              head outcomes;
            if !better = None then scan tail
      in
      scan cands
    end
    else begin
      let outcomes = eval_batch st rung ~incumbent:cur_v cands in
      List.iter2
        (fun c o ->
          match o with
          | Objective.Evaluated v when v > cur_v -> (
              match !better with
              | Some (_, bv) when bv >= v -> ()
              | _ -> better := Some (c, v))
          | _ -> ())
        cands outcomes
    end;
    match !better with
    | Some (c, v) ->
        current := (c, v);
        note_best st rung (Candidate.key c) c v;
        improved := true
    | None -> ()
  done

(* ---- rung: simulated annealing, bound-gated Metropolis ---- *)

let run_anneal st =
  Obs.Trace.span "optimize:anneal" @@ fun () ->
  let rung = "anneal" in
  let start = ensure_start st rung in
  let current = ref start in
  let temp = ref st.s.anneal_t0 in
  (* relative-delta acceptance: a move from v to v' passes the coin [u]
     when u < exp(((v' - v)/v) / T); improving moves always pass *)
  let accepts u ~from ~to_ =
    to_ >= from || u < exp ((to_ -. from) /. Float.max from 1e-300 /. Float.max !temp 1e-12)
  in
  for round = 0 to st.s.anneal_rounds - 1 do
    let cur_c, cur_v = !current in
    let proposals =
      List.filter_map
        (fun slot ->
          let g = Prng.stream ~seed:st.s.seed ((round * st.s.anneal_batch) + slot) in
          match Candidate.random_edit g ~pool:st.s.procs cur_c with
          | None -> None
          | Some (_, cand) -> Some (cand, Prng.float g))
        (List.init st.s.anneal_batch Fun.id)
    in
    if proposals <> [] then begin
      st.n_candidates <- st.n_candidates + List.length proposals;
      Obs.Metrics.Counter.add m_candidates (List.length proposals);
      let bs = bounds st (List.map fst proposals) in
      (* the bound is an upper bound on the true value, so a coin that
         rejects the optimistic bound-delta rejects the true (smaller)
         delta a fortiori: prune without paying for the solve *)
      let gated =
        List.map2
          (fun (cand, coin) b ->
            let known = Hashtbl.mem st.memo (Candidate.key cand) in
            (cand, coin, b, known || accepts coin ~from:cur_v ~to_:b))
          proposals bs
      in
      List.iter
        (fun (_, _, _, keep) ->
          if not keep then begin
            st.n_pruned <- st.n_pruned + 1;
            Obs.Metrics.Counter.incr m_pruned
          end)
        gated;
      let to_solve = List.filter_map (fun (c, _, _, keep) -> if keep then Some c else None) gated in
      let solved = solve_batch st rung to_solve in
      let tbl = Hashtbl.create 16 in
      List.iter2 (fun c o -> Hashtbl.replace tbl (Candidate.key c) o) to_solve solved;
      (* accept the first proposal whose coin passes against its true
         value; the rest of the round is discarded *)
      let rec fold = function
        | [] -> ()
        | (cand, coin, _, keep) :: rest ->
            let outcome = if keep then Hashtbl.find_opt tbl (Candidate.key cand) else None in
            (match outcome with
            | Some (Objective.Evaluated v) when accepts coin ~from:cur_v ~to_:v ->
                current := (cand, v);
                note_best st rung (Candidate.key cand) cand v
            | _ -> fold rest)
      in
      fold gated
    end;
    temp := !temp *. st.s.anneal_alpha
  done

(* ---- rung: exhaustive composition sweep ---- *)

let run_exhaustive st =
  Obs.Trace.span "optimize:exhaustive" @@ fun () ->
  let rung = "exhaustive" in
  let n = Application.n_stages st.app in
  let comps = Mapper.compositions (List.length st.s.procs) n in
  let cands =
    List.map
      (fun comp -> Candidate.of_composition ~app:st.app ~platform:st.platform ~pool:st.s.procs comp)
      comps
  in
  (* fixed-size chunks: the incumbent (and with it the prune) tightens
     between chunks, deterministically *)
  let chunk = 64 in
  let rec go = function
    | [] -> ()
    | rest ->
        let head = List.filteri (fun i _ -> i < chunk) rest in
        let tail = List.filteri (fun i _ -> i >= chunk) rest in
        let outcomes = eval_batch st rung ~incumbent:(best_score st) head in
        List.iter2
          (fun c o ->
            match o with
            | Objective.Evaluated v -> note_best st rung (Candidate.key c) c v
            | _ -> ())
          head outcomes;
        go tail
  in
  go cands
