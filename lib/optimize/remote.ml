open Streaming
module Json = Service.Json

let error_of_json err =
  let str k = Option.bind (Json.member k err) Json.to_string_opt in
  let int k d = Option.value ~default:d (Option.bind (Json.member k err) Json.to_int_opt) in
  let flt k d = Option.value ~default:d (Option.bind (Json.member k err) Json.to_float_opt) in
  match str "kind" with
  | Some "no_convergence" ->
      Some
        (Supervise.Error.No_convergence
           { sweeps = int "sweeps" 0; residual = flt "residual" Float.nan })
  | Some "state_space_exceeded" ->
      Some
        (Supervise.Error.State_space_exceeded { cap = int "cap" 0; explored = int "explored" 0 })
  | Some "non_ergodic" ->
      Some
        (Supervise.Error.Non_ergodic { recurrent = int "recurrent" 0; transient = int "transient" 0 })
  | Some "numerical" ->
      Some
        (Supervise.Error.Numerical
           {
             what = Option.value ~default:"(unreported)" (str "what");
             where = Option.value ~default:"(daemon)" (str "where");
           })
  | Some "budget_exhausted" ->
      Some (Supervise.Error.Budget_exhausted { elapsed = flt "elapsed_s" 0. })
  | _ -> None

let query_params objective =
  match Objective.metric objective with
  | Objective.Deterministic -> (Model.Overlap, Service.Engine.Deterministic, false)
  | Objective.Exponential -> (Model.Overlap, Service.Engine.Exponential, false)
  | Objective.Strict -> (Model.Strict, Service.Engine.Exponential, true)
  | Objective.Custom { name; _ } ->
      invalid_arg (Printf.sprintf "Remote.evaluator: custom objective %S is local-only" name)

let chunks n xs =
  let rec go acc = function
    | [] -> List.rev acc
    | rest ->
        let head = List.filteri (fun i _ -> i < n) rest in
        let tail = List.filteri (fun i _ -> i >= n) rest in
        go (head :: acc) tail
  in
  go [] xs

let decode_item item =
  match Option.bind (Json.member "ok" item) Json.to_bool_opt with
  | Some true -> (
      match
        Option.bind (Json.member "result" item) (fun r ->
            Option.bind (Json.member "throughput" r) Json.to_float_opt)
      with
      | Some rho -> Objective.Evaluated rho
      | None -> failwith "Remote.evaluator: batch item without a throughput field")
  | _ -> (
      match Json.member "error" item with
      | Some err -> (
          match error_of_json err with
          | Some solver_err -> Objective.Failed solver_err
          | None ->
              let msg =
                Option.value ~default:"(no message)"
                  (Option.bind (Json.member "message" err) Json.to_string_opt)
              in
              failwith ("Remote.evaluator: daemon refused a batch item: " ^ msg))
      | None -> failwith "Remote.evaluator: malformed batch item")

let evaluator client ~objective mappings =
  let model, law, simulate = query_params objective in
  let request_of m =
    Service.Client.solve_request ~model ~law ~cap:(Objective.cap objective)
      ?wall:(Objective.wall objective) ?sweeps:(Objective.sweeps objective)
      ?states:(Objective.states objective) ~simulate
      ~instance:(Instance_io.to_string m) ()
  in
  List.concat_map
    (fun chunk ->
      let req = Service.Client.batch_request (List.map request_of chunk) in
      match Service.Client.rpc client req with
      | Error e -> failwith ("Remote.evaluator: transport: " ^ Service.Client.error_message e)
      | Ok reply -> (
          if not (Service.Client.reply_ok reply) then
            failwith
              ("Remote.evaluator: daemon refused the batch: "
              ^ Option.value ~default:"(no kind)" (Service.Client.reply_error_kind reply));
          match
            Option.bind (Service.Client.reply_result reply) (Json.member "results")
          with
          | Some (Json.List items) when List.length items = List.length chunk ->
              List.map decode_item items
          | _ -> failwith "Remote.evaluator: malformed batch reply"))
    (chunks Service.Protocol.max_batch mappings)
