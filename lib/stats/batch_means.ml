type t = { mean : float; half_width : float; batches : int }

(* Two-sided 97.5% Student quantiles: the complete table for df 1..30,
   then the hyperbolic tail 1.96 + 2.46/df, which matches the table at
   df = 30 (2.042) and decreases monotonically towards the normal
   quantile 1.96 (at df = 40/60/120 it gives 2.022/2.001/1.981 against
   tabulated 2.021/2.000/1.980).  The whole function is strictly
   decreasing in df, which the previous sparse table was not. *)
let student975_table =
  [|
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
    2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
    2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
  |]

let student975 df =
  if df < 1 then invalid_arg "Batch_means.student975: need at least one degree of freedom"
  else if df <= 30 then student975_table.(df - 1)
  else 1.96 +. (2.46 /. float_of_int df)

let of_batch_means means =
  let k = Array.length means in
  let s = Summary.of_list (Array.to_list means) in
  {
    mean = Summary.mean s;
    half_width = student975 (k - 1) *. Summary.std_dev s /. sqrt (float_of_int k);
    batches = k;
  }

let post_warmup warmup_fraction xs =
  let n = Array.length xs in
  let start = int_of_float (warmup_fraction *. float_of_int n) in
  Array.sub xs start (n - start)

let estimate ?(batches = 20) ?(warmup_fraction = 0.2) observations =
  let xs = post_warmup warmup_fraction observations in
  let n = Array.length xs in
  if batches < 2 then invalid_arg "Batch_means.estimate: need at least two batches";
  if n < 2 * batches then invalid_arg "Batch_means.estimate: too few observations";
  let size = n / batches in
  (* the [n mod batches] tail observations are folded into the final
     batch; silently discarding them would bias the mean *)
  let means =
    Array.init batches (fun b ->
        let first = b * size in
        let last = if b = batches - 1 then n - 1 else first + size - 1 in
        let acc = ref 0.0 in
        for i = first to last do
          acc := !acc +. xs.(i)
        done;
        !acc /. float_of_int (last - first + 1))
  in
  of_batch_means means

let throughput_of_completions ?(batches = 20) ?(warmup_fraction = 0.2) completions =
  let n = Array.length completions in
  let start = int_of_float (warmup_fraction *. float_of_int n) in
  if batches < 2 then invalid_arg "Batch_means.throughput_of_completions: need at least two batches";
  if n - start < 2 * batches then
    invalid_arg "Batch_means.throughput_of_completions: too few completions";
  let size = (n - start) / batches in
  let means =
    Array.init batches (fun b ->
        let first = start + (b * size) in
        (* fold the remainder completions into the final batch *)
        let last = if b = batches - 1 then n - 1 else first + size - 1 in
        (* the batch's time span starts at the previous completion, so the
           warmup interval is never counted *)
        let span = completions.(last) -. (if first = 0 then 0.0 else completions.(first - 1)) in
        if span <= 0.0 then invalid_arg "Batch_means: degenerate completion batch"
        else float_of_int (last - first + 1) /. span)
  in
  of_batch_means means
