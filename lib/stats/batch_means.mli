(** Batch-means confidence intervals for steady-state simulation output.

    Throughput estimates from a single simulation run are autocorrelated,
    so the naive i.i.d. confidence interval is too narrow.  The
    batch-means method splits the (post-warmup) observations into [k]
    contiguous batches; the batch means are approximately independent, so
    their sample variance yields an honest interval for the steady-state
    mean.  Used by the experiment harness to report simulation error. *)

type t = {
  mean : float;
  half_width : float;  (** 95% confidence half width *)
  batches : int;
}

val student975 : int -> float
(** Two-sided 97.5% Student quantile for the given degrees of freedom
    (>= 1): exact table for df 1..30, then a monotone hyperbolic
    approximation decreasing towards the normal quantile 1.96.  The
    function is strictly decreasing in df. *)

val estimate : ?batches:int -> ?warmup_fraction:float -> float array -> t
(** [estimate observations] drops the first [warmup_fraction] (default
    0.2) of the samples, splits the rest into [batches] (default 20)
    contiguous batches and returns the batch-means interval.  When the
    post-warmup count is not a multiple of [batches], the remaining
    [n mod batches] observations are folded into the final batch (no
    observation is discarded; the final batch mean simply averages up to
    [batches - 1] extra points).  Raises [Invalid_argument] with fewer
    than 2 observations per batch. *)

val throughput_of_completions : ?batches:int -> ?warmup_fraction:float -> float array -> t
(** Batch-means interval for the throughput given sorted completion
    times: each batch's throughput is (its count) / (its time span).  As
    in {!estimate}, the remainder completions are folded into the final
    batch rather than discarded. *)
