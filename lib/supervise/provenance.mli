(** Where a numeric answer came from, and how hard it was to get.

    Every supervised solve returns its value together with a provenance:
    the quality of the winning method and the ordered list of ladder
    rungs attempted before it (each with its typed failure).  A result
    that did not come from the first rung at nominal tolerance — or that
    came from simulation — is flagged [degraded], so a sweep can report
    exactly which points are softer than the rest. *)

type quality =
  | Exact  (** closed form or GTH elimination *)
  | Iterative of { residual : float }  (** sparse sweep, achieved L1 residual *)
  | Simulated of { ci : float }  (** DES estimate, batch-means 95% half-width *)

type attempt = { rung : string; outcome : (quality, Error.t) result }

type t = {
  quality : quality;
  degraded : bool;
      (** true when an earlier rung failed first, or the value is simulated *)
  attempts : attempt list;  (** in the order tried; the last one succeeded *)
}

val solved : rung:string -> prior:attempt list -> quality -> t
(** [solved ~rung ~prior quality] is the provenance of a solve won by
    [rung] after the failed attempts [prior] (in order). *)

val quality_to_string : quality -> string

val describe : t -> string
(** One line: winning quality, then every attempt with its outcome. *)
