type t = {
  started : float;
  wall : float option;
  max_sweeps : int option;
  state_cap : int option;
}

let unlimited = { started = 0.0; wall = None; max_sweeps = None; state_cap = None }

let create ?wall ?sweeps ?states () =
  (match wall with
  | Some w when w <= 0.0 -> invalid_arg "Budget.create: wall must be positive"
  | _ -> ());
  (match sweeps with
  | Some s when s < 1 -> invalid_arg "Budget.create: sweeps must be at least 1"
  | _ -> ());
  (match states with
  | Some c when c < 1 -> invalid_arg "Budget.create: states must be at least 1"
  | _ -> ());
  { started = Unix.gettimeofday (); wall; max_sweeps = sweeps; state_cap = states }

let elapsed b = Unix.gettimeofday () -. b.started

let check b =
  match b.wall with
  | None -> ()
  | Some w ->
      let e = elapsed b in
      if e > w then Error.raise_ (Error.Budget_exhausted { elapsed = e })

let sweeps_allowed b default =
  match b.max_sweeps with None -> default | Some s -> min s default

let cap_allowed b default = match b.state_cap with None -> default | Some c -> min c default

let restart b = { b with started = Unix.gettimeofday () }
