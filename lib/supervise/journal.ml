type status = Exact | Degraded | Failed

type record = {
  exp : string;
  point : string;
  status : status;
  detail : string;
  output : string;
  elapsed : string;
}

let status_to_string = function Exact -> "exact" | Degraded -> "degraded" | Failed -> "failed"

let status_of_string = function
  | "exact" -> Some Exact
  | "degraded" -> Some Degraded
  | "failed" -> Some Failed
  | _ -> None

(* ---- minimal JSON (objects of string fields, one per line) ---- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let encode r =
  let buf = Buffer.create (String.length r.output + 64) in
  let field k v =
    Buffer.add_char buf '"';
    Buffer.add_string buf k;
    Buffer.add_string buf "\":\"";
    escape buf v;
    Buffer.add_char buf '"'
  in
  Buffer.add_char buf '{';
  field "exp" r.exp;
  Buffer.add_char buf ',';
  field "point" r.point;
  Buffer.add_char buf ',';
  field "status" (status_to_string r.status);
  Buffer.add_char buf ',';
  field "detail" r.detail;
  Buffer.add_char buf ',';
  (* wall-clock timing is advisory: omitted when unknown, and ignored by
     the resume byte-identity check (which compares only the payload) *)
  if r.elapsed <> "" then begin
    field "elapsed_s" r.elapsed;
    Buffer.add_char buf ','
  end;
  field "output" r.output;
  Buffer.add_char buf '}';
  Buffer.contents buf

exception Malformed

(* parse one {"k":"v",...} line; raises [Malformed] on anything else,
   including a line truncated by a crash mid-write *)
let decode line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos >= n then raise Malformed else line.[!pos] in
  let advance () = incr pos in
  let expect c = if peek () <> c then raise Malformed else advance () in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      let c = peek () in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          let e = peek () in
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'; go ()
          | '\\' -> Buffer.add_char buf '\\'; go ()
          | '/' -> Buffer.add_char buf '/'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'u' ->
              if !pos + 4 > n then raise Malformed;
              let code =
                try int_of_string ("0x" ^ String.sub line !pos 4) with _ -> raise Malformed
              in
              pos := !pos + 4;
              if code > 0xff then raise Malformed;
              Buffer.add_char buf (Char.chr code);
              go ()
          | _ -> raise Malformed)
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  expect '{';
  let fields = ref [] in
  let rec members () =
    let k = parse_string () in
    expect ':';
    let v = parse_string () in
    fields := (k, v) :: !fields;
    match peek () with
    | ',' -> advance (); members ()
    | '}' -> advance ()
    | _ -> raise Malformed
  in
  members ();
  if !pos <> n then raise Malformed;
  let get k = match List.assoc_opt k !fields with Some v -> v | None -> raise Malformed in
  let status = match status_of_string (get "status") with Some s -> s | None -> raise Malformed in
  (* [elapsed_s] is optional: journals written before it existed load fine *)
  let elapsed = Option.value (List.assoc_opt "elapsed_s" !fields) ~default:"" in
  { exp = get "exp"; point = get "point"; status; detail = get "detail"; output = get "output"; elapsed }

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error _ -> []
  | text ->
      let lines = String.split_on_char '\n' text in
      (* valid prefix only: a truncated or corrupt line (crash mid-write,
         disk damage) drops it and everything after it *)
      let rec prefix acc = function
        | [] -> List.rev acc
        | "" :: rest when List.for_all (( = ) "") rest -> List.rev acc
        | line :: rest -> (
            match decode line with
            | r -> prefix (r :: acc) rest
            | exception Malformed -> List.rev acc)
      in
      prefix [] lines

let save path records =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      List.iter
        (fun r ->
          Out_channel.output_string oc (encode r);
          Out_channel.output_char oc '\n')
        records;
      Out_channel.flush oc);
  Sys.rename tmp path
