(** Crash-safe JSONL journal of completed experiment points.

    One record per line, a flat JSON object of string fields:

    {v
    {"exp":"fig10","point":"n=500","status":"exact","detail":"...","output":"..."}
    v}

    [output] holds the point's rendered text fragment verbatim (escaped),
    so a resumed run can replay completed points byte-identically without
    re-solving them.  {!save} writes the whole journal to a temporary
    file and renames it over the target, so a crash never leaves a
    half-written journal in place; {!load} additionally tolerates a
    truncated or corrupt tail (it returns the longest valid prefix), so
    even a journal damaged by external means resumes from what survived. *)

type status = Exact | Degraded | Failed

type record = {
  exp : string;  (** experiment id, or ["@meta"] for the run-config header *)
  point : string;
  status : status;
  detail : string;  (** provenance / error description *)
  output : string;  (** rendered fragment; empty for failed points *)
  elapsed : string;
      (** wall-clock duration of the solve in seconds (["%.6f"]), or [""]
          when unknown (e.g. journals written before this field existed).
          Advisory only: resume replays compare the payload, never this. *)
}

val status_to_string : status -> string
val encode : record -> string
(** One JSON line, no trailing newline. *)

val load : string -> record list
(** Records of the longest valid prefix; [[]] when the file is missing. *)

val save : string -> record list -> unit
(** Atomic whole-file rewrite: temp file + rename. *)
