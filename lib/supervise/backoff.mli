(** Exponential backoff with deterministic jitter.

    Shared by the cluster supervisor (worker-restart schedule) and the
    request path (client/router retry schedule).  A delay is a pure
    function of (policy, seed, attempt): the jitter derives from an
    FNV-1a hash of the pair, so schedules are reproducible — tests
    assert them exactly and byte-identity across runs is preserved. *)

type policy = {
  base : float;  (** delay before the first retry, seconds *)
  multiplier : float;  (** growth factor per attempt (>= 1) *)
  max_delay : float;  (** ceiling on the un-jittered delay *)
  jitter : float;  (** fraction of the delay randomized, in [0,1] *)
  max_attempts : int;  (** retries allowed; 0 means never retry *)
}

val validate : policy -> policy
(** Identity on well-formed policies; [Invalid_argument] otherwise. *)

val default_restart : policy
(** Worker restarts: 0.1 s base, doubling to a 2 s ceiling, 25% jitter,
    5 attempts. *)

val default_retry : policy
(** Request retries: 20 ms base, doubling to a 0.5 s ceiling, 50%
    jitter, 4 attempts. *)

val exhausted : policy -> attempt:int -> bool
(** [attempt] is 0-based: [exhausted p ~attempt] is true once [attempt]
    reaches [p.max_attempts]. *)

val delay : policy -> seed:int -> attempt:int -> float
(** The pause before retry [attempt] (0-based), in seconds: the capped
    exponential delay shifted into [(1-jitter)·d, d] by the hash of
    (seed, attempt).  Deterministic. *)

val worst_case_total : policy -> float
(** Sum of the un-jittered delays of the full schedule — an upper bound
    on how long a supervised restart can take before success or
    mark-dead. *)
