type quality =
  | Exact
  | Iterative of { residual : float }
  | Simulated of { ci : float }

type attempt = { rung : string; outcome : (quality, Error.t) result }

type t = { quality : quality; degraded : bool; attempts : attempt list }

let quality_to_string = function
  | Exact -> "exact"
  | Iterative { residual } -> Printf.sprintf "iterative (residual %.3g)" residual
  | Simulated { ci } -> Printf.sprintf "simulated (95%% ci half-width %.3g)" ci

let solved ~rung ~prior quality =
  {
    quality;
    degraded = (prior <> [] || match quality with Simulated _ -> true | _ -> false);
    attempts = prior @ [ { rung; outcome = Ok quality } ];
  }

let describe t =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (quality_to_string t.quality);
  List.iter
    (fun a ->
      match a.outcome with
      | Ok q -> Buffer.add_string buf (Printf.sprintf "; %s: %s" a.rung (quality_to_string q))
      | Error e -> Buffer.add_string buf (Printf.sprintf "; %s: %s" a.rung (Error.to_string e)))
    t.attempts;
  Buffer.contents buf
