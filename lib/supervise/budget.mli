(** Per-solve resource budgets, checked cooperatively by the solvers.

    A budget bounds one solve along three axes: wall-clock time (checked
    every few sweeps of the iterative solvers and every batch of
    registered states in the explorers), iteration count (folded into the
    solver's sweep ceiling), and state count (folded into the explorer's
    cap).  Exceeding the deadline raises
    [Error.Solver_error (Budget_exhausted _)]; the other two axes surface
    through the solver's own [No_convergence] / [State_space_exceeded]
    errors with the tightened limits. *)

type t

val unlimited : t
(** No deadline, no sweep ceiling, no state cap: the behaviour of every
    solver when no budget is passed. *)

val create : ?wall:float -> ?sweeps:int -> ?states:int -> unit -> t
(** [create ()] starts the wall clock now.  [wall] is in seconds;
    [sweeps] caps iterative sweeps; [states] caps explored states. *)

val elapsed : t -> float
(** Seconds since {!create} (meaningless for {!unlimited}). *)

val check : t -> unit
(** Raises [Error.Solver_error (Budget_exhausted _)] once the wall
    deadline has passed; cheap enough to call inside sweep loops. *)

val sweeps_allowed : t -> int -> int
(** [sweeps_allowed b default] is the solver's effective sweep ceiling. *)

val cap_allowed : t -> int -> int
(** [cap_allowed b default] is the explorer's effective state cap. *)

val restart : t -> t
(** Same limits, wall clock restarted now — the budget handed to a
    degraded retry of a failed experiment point. *)
