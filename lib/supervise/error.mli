(** Typed failure taxonomy of the throughput solvers.

    Every solver entry point of the reproduction — the stationary solvers
    of [Linalg], the marking-space explorers of [Petrinet] and
    [Markov.Tpn_markov(_ph)], and the throughput drivers built on them —
    reports failure as a {!Solver_error} carrying one of these values
    instead of a bare [Failure _].  Callers can therefore distinguish
    "the chain is too big" from "the iteration stalled" from "the model
    is broken" and react per case (escalate a ladder rung, retry with a
    degraded budget, or surface an actionable message). *)

type t =
  | No_convergence of { sweeps : int; residual : float }
      (** An iterative solver hit its sweep ceiling; [residual] is the L1
          residual achieved when it gave up. *)
  | State_space_exceeded of { cap : int; explored : int }
      (** A state-space exploration outgrew its cap after registering
          [explored] states — the signature of a token-unbounded net or an
          over-replicated pattern. *)
  | Non_ergodic of { recurrent : int; transient : int }
      (** The marking chain has no unique recurrent class ([recurrent]
          states sit in zero or several bottom components). *)
  | Numerical of { what : string; where : string }
      (** A numeric invariant broke ([what]) inside function [where] —
          reducible generator, zero distribution mass, singular matrix. *)
  | Budget_exhausted of { elapsed : float }
      (** A cooperative wall-clock deadline fired [elapsed] seconds into
          the solve. *)

exception Solver_error of t

val to_string : t -> string
(** One-line description, suitable for logs and CLI error messages. *)

val raise_ : t -> 'a
(** [raise_ e] is [raise (Solver_error e)]. *)

val is_recoverable : t -> bool
(** Whether a search may treat the failure as information about the
    candidate/budget pair and move on ([State_space_exceeded],
    [No_convergence], [Budget_exhausted]) rather than a broken model that
    must propagate ([Non_ergodic], [Numerical]).  This is the demotion
    contract of [Mapper.evaluate] and the [Optimize] objective layer. *)
