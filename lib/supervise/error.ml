type t =
  | No_convergence of { sweeps : int; residual : float }
  | State_space_exceeded of { cap : int; explored : int }
  | Non_ergodic of { recurrent : int; transient : int }
  | Numerical of { what : string; where : string }
  | Budget_exhausted of { elapsed : float }

exception Solver_error of t

let to_string = function
  | No_convergence { sweeps; residual } ->
      Printf.sprintf "no convergence after %d sweeps (achieved residual %.3g)" sweeps residual
  | State_space_exceeded { cap; explored } ->
      Printf.sprintf "state space exceeded: explored %d markings, cap %d" explored cap
  | Non_ergodic { recurrent; transient } ->
      Printf.sprintf "non-ergodic chain: %d recurrent state(s) not in a unique class, %d transient"
        recurrent transient
  | Numerical { what; where } -> Printf.sprintf "numerical failure in %s: %s" where what
  | Budget_exhausted { elapsed } ->
      Printf.sprintf "budget exhausted after %.3g s of wall clock" elapsed

let raise_ e = raise (Solver_error e)

(* Recoverable failures are properties of the *instance/budget pair* — a
   different candidate, cap or budget may succeed — so searches may demote
   the candidate and move on.  The others flag a broken model or a numeric
   invariant violation: routing around them would hide programming errors. *)
let is_recoverable = function
  | State_space_exceeded _ | No_convergence _ | Budget_exhausted _ -> true
  | Non_ergodic _ | Numerical _ -> false

let () =
  Printexc.register_printer (function
    | Solver_error e -> Some ("Solver_error: " ^ to_string e)
    | _ -> None)
