(* Exponential backoff with deterministic jitter.

   One policy type serves both sides of the cluster: the supervisor's
   worker-restart schedule and the client/router per-request retry
   schedule.  Delays are a pure function of (policy, seed, attempt) — the
   jitter comes from an FNV-1a hash of the pair, not from a PRNG or the
   clock — so tests can assert exact schedules and two processes with the
   same seed replay the same decisions. *)

type policy = {
  base : float;  (** delay before the first retry, seconds *)
  multiplier : float;  (** growth factor per attempt *)
  max_delay : float;  (** ceiling on the un-jittered delay *)
  jitter : float;  (** fraction of the delay randomized, in [0,1] *)
  max_attempts : int;  (** retries allowed; 0 means never retry *)
}

let validate p =
  if p.base < 0.0 then invalid_arg "Backoff: base must be non-negative";
  if p.multiplier < 1.0 then invalid_arg "Backoff: multiplier must be at least 1";
  if p.max_delay < p.base then invalid_arg "Backoff: max_delay must be at least base";
  if p.jitter < 0.0 || p.jitter > 1.0 then invalid_arg "Backoff: jitter must be in [0,1]";
  if p.max_attempts < 0 then invalid_arg "Backoff: max_attempts must be non-negative";
  p

(* worker restarts: quick first retry, then settle down; a crash loop
   reaches the 2 s ceiling after four attempts *)
let default_restart =
  validate { base = 0.1; multiplier = 2.0; max_delay = 2.0; jitter = 0.25; max_attempts = 5 }

(* request retries: tight enough that a retried solve still lands well
   inside an interactive deadline *)
let default_retry =
  validate { base = 0.02; multiplier = 2.0; max_delay = 0.5; jitter = 0.5; max_attempts = 4 }

let exhausted p ~attempt = attempt >= p.max_attempts

(* splitmix-style avalanche of the (seed, attempt) pair, folded to a
   unit float; constants fit OCaml's 63-bit int *)
let unit_hash ~seed ~attempt =
  let mix h =
    let h = h lxor (h lsr 30) in
    let h = h * 0x4be98134a5976fd3 in
    let h = h lxor (h lsr 29) in
    let h = h * 0x3bd6e995bd9d65 in
    h lxor (h lsr 32)
  in
  let h = mix ((seed * 0x2545f4914f6cdd1d) + attempt + 0x9e3779b9) in
  float_of_int (h land max_int) /. float_of_int max_int

let delay p ~seed ~attempt =
  if attempt < 0 then invalid_arg "Backoff.delay: attempt must be non-negative";
  let raw = p.base *. (p.multiplier ** float_of_int attempt) in
  let capped = Float.min raw p.max_delay in
  (* jitter shifts the delay inside [(1-j)·d, d]: never longer than the
     cap, never a thundering herd of identical schedules *)
  capped *. (1.0 -. (p.jitter *. unit_hash ~seed ~attempt))

(* the longest the whole schedule can take: an upper bound a test (or the
   chaos harness) can hold a restart against *)
let worst_case_total p =
  let total = ref 0.0 in
  for attempt = 0 to p.max_attempts - 1 do
    total := !total +. Float.min (p.base *. (p.multiplier ** float_of_int attempt)) p.max_delay
  done;
  !total
