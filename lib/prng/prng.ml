type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand the user seed into the 256-bit state. *)
let splitmix_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 g =
  let open Int64 in
  let result = mul (rotl (mul g.s1 5L) 7) 9L in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let stream ~seed index =
  if index < 0 then invalid_arg "Prng.stream: index must be non-negative";
  (* Hash the seed once, then place each stream at its own splitmix origin:
     the golden-ratio multiple keeps distinct indices far apart in the
     splitmix sequence and the xor decorrelates them from the base. *)
  let base = ref (Int64.of_int seed) in
  let h = splitmix_next base in
  let state = ref (Int64.logxor h (Int64.mul (Int64.of_int (index + 1)) 0x9E3779B97F4A7C15L)) in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

let split g =
  let state = ref (bits64 g) in
  let s0 = splitmix_next state in
  let s1 = splitmix_next state in
  let s2 = splitmix_next state in
  let s3 = splitmix_next state in
  { s0; s1; s2; s3 }

(* Top 53 bits scaled to [0,1). *)
let float g =
  let x = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float x *. 0x1p-53

let float_pos g =
  let x = Int64.shift_right_logical (bits64 g) 11 in
  (Int64.to_float x +. 1.0) *. 0x1p-53

let int g n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let rec draw () =
    let x = Int64.shift_right_logical (bits64 g) 1 in
    let r = Int64.rem x n64 in
    if Int64.sub x r > Int64.sub (Int64.sub Int64.max_int n64) 1L then draw ()
    else Int64.to_int r
  in
  draw ()

let uniform g a b = a +. ((b -. a) *. float g)
