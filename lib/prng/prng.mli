(** Deterministic, seedable pseudo-random number generator.

    The generator is xoshiro256** (Blackman & Vigna) seeded through
    splitmix64, which is the recommended seeding procedure.  All simulation
    code in this repository draws randomness through this module only, so
    every experiment is reproducible from its seed. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] builds a generator from a 63-bit seed.  Distinct seeds
    yield independent-looking streams. *)

val copy : t -> t
(** Duplicate the state; the copy evolves independently. *)

val stream : seed:int -> int -> t
(** [stream ~seed i] is the [i]-th generator of a family of independent
    streams derived from [seed] by splitmix64 mixing.  The stream depends
    only on [(seed, i)] — never on how many streams exist or on the order
    they are created in — so handing stream [i] to the task of index [i]
    makes a parallel computation reproduce the sequential one exactly.
    [i] must be non-negative. *)

val split : t -> t
(** [split g] advances [g] and returns a fresh generator whose stream is
    independent of the subsequent output of [g].  Used to hand disjoint
    streams to parallel experiment replicas. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [0,1) with 53-bit resolution. *)

val float_pos : t -> float
(** Uniform float in (0,1]; never returns 0, safe for [log]. *)

val int : t -> int -> int
(** [int g n] is uniform in [0, n-1]; [n] must be positive. *)

val uniform : t -> float -> float -> float
(** [uniform g a b] is uniform in [a, b). *)
