(* Latency under a controlled admission rate.

   The paper optimises the throughput; its companion metric is the
   end-to-end latency (cf. the latency/throughput tradeoffs of Subhlok &
   Vondran and Vydyanathan et al., cited in the introduction).  Here data
   sets are admitted at a fraction f of the maximum (exponential-case)
   throughput and we measure the per-data-set latency: flat at low load,
   diverging as f -> 1 — the classical hockey stick, now measurable for
   replicated mappings.

   Run with: dune exec examples/latency_study.exe *)

open Streaming

let () =
  let mapping = Workload.Scenarios.example_a in
  let model = Model.Overlap in
  let capacity = Expo.overlap_throughput mapping in
  (* latency of an isolated data set: every operation at its mean *)
  let isolated =
    let app = Mapping.app mapping in
    let n = Application.n_stages app in
    let per_row row =
      let rec walk stage acc =
        if stage = n then acc
        else
          let p = Mapping.proc_at mapping ~stage ~row in
          let acc = acc +. Mapping.comp_time mapping ~stage ~proc:p in
          if stage = n - 1 then walk (stage + 1) acc
          else
            let q = Mapping.proc_at mapping ~stage:(stage + 1) ~row in
            walk (stage + 1) (acc +. Mapping.comm_time mapping ~file:stage ~src:p ~dst:q)
      in
      walk 0 0.0
    in
    let rows = Mapping.rows mapping in
    List.fold_left (fun acc r -> acc +. per_row r) 0.0 (List.init rows Fun.id)
    /. float_of_int rows
  in
  Format.printf "capacity (exponential): %.5f data sets per unit time@." capacity;
  Format.printf "isolated latency (mean path time): %.1f@.@." isolated;
  Format.printf "%6s %12s %12s %12s@." "load" "mean lat" "max lat" "mean/isolated";
  List.iter
    (fun f ->
      let release n = float_of_int n /. (f *. capacity) in
      let lats =
        Des.Pipeline_sim.latencies ~release mapping model
          ~timing:(Des.Pipeline_sim.Independent (Laws.exponential mapping))
          ~seed:11 ~data_sets:20_000
      in
      (* drop the warmup third *)
      let steady = Array.sub lats (Array.length lats / 3) (2 * Array.length lats / 3) in
      let s = Stats.Summary.of_list (Array.to_list steady) in
      Format.printf "%6.2f %12.1f %12.1f %12.2f@." f (Stats.Summary.mean s)
        (Stats.Summary.max_value s)
        (Stats.Summary.mean s /. isolated))
    [ 0.30; 0.50; 0.70; 0.80; 0.90; 0.95; 0.99 ];
  Format.printf
    "@.Latency grows slowly at moderate load and explodes as the admission rate@.\
     approaches the throughput capacity (about 10x the isolated path time at@.\
     99%% load) - the hockey stick that a latency-aware mapping must respect.@."
