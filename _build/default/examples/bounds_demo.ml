(* Theorem 7 in action: for a replicated communication, the throughput
   under *any* N.B.U.E. law is sandwiched between the exponential case
   (below) and the deterministic case (above), while D.F.R. laws can fall
   below the exponential bound.

   Run with: dune exec examples/bounds_demo.exe *)

open Streaming

let laws : (string * (float -> Dist.t)) list =
  [
    ("constant", fun mu -> Dist.Deterministic mu);
    ("uniform +-25%", fun mu -> Dist.Uniform (0.75 *. mu, 1.25 *. mu));
    ("uniform [0,2mu]", fun mu -> Dist.Uniform (0.0, 2.0 *. mu));
    ("normal cv=0.2", fun mu -> Dist.Normal_trunc (mu, 0.2 *. mu));
    ("erlang-4", fun mu -> Dist.with_mean (Dist.Erlang (4, 1.0)) mu);
    ("beta(2,2)", fun mu -> Dist.with_mean (Dist.Beta (2.0, 2.0, 1.0)) mu);
    ("weibull k=2", fun mu -> Dist.with_mean (Dist.Weibull (2.0, 1.0)) mu);
    ("exponential", Dist.exponential_of_mean);
    ("gamma k=0.5 (DFR)", fun mu -> Dist.with_mean (Dist.Gamma (0.5, 1.0)) mu);
    ("weibull k=0.5 (DFR)", fun mu -> Dist.with_mean (Dist.Weibull (0.5, 1.0)) mu);
  ]

let () =
  (* 3 senders, 4 receivers, homogeneous unit-time links: bounds are
     min(u,v) = 3 above and u*v/(u+v-1) = 2 below *)
  let mapping = Workload.Scenarios.single_communication ~u:3 ~v:4 () in
  let bounds = Bounds.compute mapping Model.Overlap in
  Format.printf "3x4 replicated communication, mean link time 1@.";
  Format.printf "deterministic upper bound : %.4f@." bounds.Bounds.upper;
  Format.printf "exponential lower bound   : %.4f@.@." bounds.Bounds.lower;
  Format.printf "%-22s %6s %12s %s@." "law (per link)" "NBUE" "throughput" "position";
  List.iteri
    (fun k (name, family) ->
      let laws_of = Laws.of_family mapping ~family in
      let nbue = Laws.all_nbue mapping laws_of in
      let rho =
        Des.Pipeline_sim.throughput mapping Model.Overlap
          ~timing:(Des.Pipeline_sim.Independent laws_of) ~seed:(50 + k) ~data_sets:40_000
      in
      let position =
        if rho > bounds.Bounds.upper +. 0.02 then "ABOVE upper bound (!)"
        else if rho < bounds.Bounds.lower -. 0.02 then "below lower bound (allowed: not NBUE)"
        else "within the Theorem 7 sandwich"
      in
      Format.printf "%-22s %6s %12.4f %s@." name (if nbue then "yes" else "no") rho position)
    laws
