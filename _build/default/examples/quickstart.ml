(* Quickstart: analyse one replicated mapping end to end.

   Build a four-stage pipeline mapped on seven heterogeneous processors
   (the shape of the paper's Example A), then compute:
   - the deterministic throughput (critical cycle of the timed Petri net),
   - the exponential-case throughput (Markov analysis),
   - the N.B.U.E. bounds of Theorem 7,
   and check them against both simulators.

   Run with: dune exec examples/quickstart.exe *)

open Streaming

let () =
  (* A linear chain: T1 (52 flop) -> F1 (24 B) -> T2 (48 flop) -> ... *)
  let app = Application.create ~work:[| 52.; 48.; 72.; 32. |] ~files:[| 24.; 36.; 28. |] in

  (* Seven processors with heterogeneous speeds, all pairs connected. *)
  let speeds = [| 2.0; 0.8; 1.1; 0.9; 1.3; 0.7; 1.6 |] in
  let platform =
    Platform.of_link_function ~n:7 ~speeds ~bw:(fun p q ->
        0.35 +. (0.05 *. float_of_int (((p * 3) + (2 * q)) mod 7)))
  in

  (* One-to-many mapping: T2 replicated on two processors, T3 on three. *)
  let mapping = Mapping.create ~app ~platform ~teams:[| [| 0 |]; [| 1; 2 |]; [| 3; 4; 5 |]; [| 6 |] |] in
  Format.printf "%a@." Mapping.pp mapping;

  List.iter
    (fun model ->
      Format.printf "--- %s model ---@." (Model.to_string model);
      let a = Deterministic.analyse mapping model in
      Format.printf "deterministic throughput: %.6f (period %.3f per data set)@."
        a.Deterministic.throughput a.Deterministic.period;
      Format.printf "critical resource bound : %.3f on %s%s@." a.Deterministic.mct
        a.Deterministic.bottleneck
        (if Deterministic.has_critical_resource a then "" else "  <- no critical resource!");
      let bounds = Bounds.compute ~strict_cap:2_000_000 mapping model in
      Format.printf "Theorem 7 bounds        : any NBUE law gives a throughput in [%.6f, %.6f]@."
        bounds.Bounds.lower bounds.Bounds.upper;
      (* check by simulating a uniform law on every resource *)
      let uniform_family mu = Dist.Uniform (0.5 *. mu, 1.5 *. mu) in
      let rho =
        Des.Pipeline_sim.throughput mapping model
          ~timing:(Des.Pipeline_sim.Independent (Laws.of_family mapping ~family:uniform_family))
          ~seed:1 ~data_sets:30_000
      in
      Format.printf "simulated (uniform law) : %.6f -> %s@.@." rho
        (if Bounds.contains bounds rho then "within the bounds" else "OUTSIDE the bounds"))
    Model.all
