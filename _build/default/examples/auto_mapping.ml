(* Automatic mapping selection — the paper's announced future work.

   Given an application and a heterogeneous platform, use the throughput
   evaluators of this library as the objective of a mapping heuristic:
   - baseline: one (fast) processor per stage, no replication;
   - greedy: replicate whichever stage pays off most, one processor at a
     time (hill climbing on the exponential-case throughput, so that the
     chosen mapping is robust to random fluctuations);
   - exhaustive: rank every team-size composition (small instances only).

   The chosen mappings are then audited: deterministic and exponential
   throughput, Theorem 7 bounds, and a DES measurement under a uniform law.

   Run with: dune exec examples/auto_mapping.exe *)

open Streaming

let () =
  (* A 4-stage analytics pipeline on 12 heterogeneous processors. *)
  let app =
    Application.create ~work:[| 3.0; 18.0; 7.0; 2.0 |] ~files:[| 1.0; 1.5; 0.5 |]
  in
  let speeds = [| 2.1; 0.9; 1.4; 1.0; 1.8; 0.7; 1.2; 1.6; 0.8; 1.1; 1.3; 1.9 |] in
  let platform = Platform.fully_connected ~speeds ~bw:2.0 in

  let audit name mapping =
    let det = Deterministic.throughput mapping Model.Overlap in
    let expo = Expo.overlap_throughput mapping in
    let measured =
      Des.Pipeline_sim.throughput mapping Model.Overlap
        ~timing:
          (Des.Pipeline_sim.Independent
             (Laws.of_family mapping ~family:(fun mu -> Dist.Uniform (0.5 *. mu, 1.5 *. mu))))
        ~seed:3 ~data_sets:30_000
    in
    let replication =
      Mapping.replication mapping |> Array.to_list |> List.map string_of_int
      |> String.concat "-"
    in
    Format.printf "%-11s teams %-9s det %8.4f   exp %8.4f   DES(uniform) %8.4f@." name
      replication det expo measured
  in
  Format.printf "pipeline work 3/18/7/2, 12 processors with speeds 0.7..2.1@.@.";
  audit "baseline" (Mapper.baseline_fastest ~app ~platform ());
  audit "greedy" (Mapper.greedy ~app ~platform ());
  audit "exhaustive" (Mapper.exhaustive ~app ~platform ());
  Format.printf
    "@.The greedy heuristic replicates the 18-flop stage until the pipeline is@.\
     roughly balanced — a 2.6x gain over no replication.  The exhaustive@.\
     composition search does better still: greedy is path-dependent (it keeps@.\
     the fastest processor on a light stage where a slow one would do), which@.\
     is exactly why the paper calls for throughput evaluation as a subroutine@.\
     of smarter mapping heuristics.@."
