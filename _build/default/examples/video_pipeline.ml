(* A video-encoding workflow — the kind of streaming application the paper's
   introduction motivates (video/audio encoding, DSP).

   Pipeline: decode -> denoise -> encode -> mux.  The encode stage is by
   far the heaviest, and frames are independent, so it is *dealable*: we
   replicate it over several worker nodes and ask how the frame rate
   (throughput) grows, under both execution models, and how much of the
   nominal rate survives when computation times are random (exponential
   lower bound of Theorem 7).

   Run with: dune exec examples/video_pipeline.exe *)

open Streaming

(* stage costs in Mflop per frame, file sizes in MB per frame *)
let decode_cost = 40.0
let denoise_cost = 120.0
let encode_cost = 600.0
let mux_cost = 20.0
let raw_frame = 8.0 (* decoded frame shipped to denoise *)
let clean_frame = 8.0
let coded_frame = 0.4

(* node speeds in Mflop/s: one ingest node, one filter node, a rack of
   encode workers of mixed generations, one mux node *)
let worker_speeds = [| 900.; 1100.; 900.; 1000.; 800.; 1200.; 900.; 1000. |]

let platform_for workers =
  let speeds = Array.concat [ [| 500.0; 800.0 |]; Array.sub worker_speeds 0 workers; [| 600.0 |] ] in
  (* 1 Gb/s switch: 125 MB/s on every (logical) link *)
  Platform.fully_connected ~speeds ~bw:125.0

let mapping_for workers =
  let app =
    Application.create
      ~work:[| decode_cost; denoise_cost; encode_cost; mux_cost |]
      ~files:[| raw_frame; clean_frame; coded_frame |]
  in
  let encode_team = Array.init workers (fun k -> 2 + k) in
  let mux = 2 + workers in
  Mapping.create ~app ~platform:(platform_for workers)
    ~teams:[| [| 0 |]; [| 1 |]; encode_team; [| mux |] |]

let () =
  Format.printf "Video pipeline: decode(%.0f) -> denoise(%.0f) -> encode(%.0f) -> mux(%.0f) Mflop@."
    decode_cost denoise_cost encode_cost mux_cost;
  Format.printf "%6s | %10s %10s | %10s %10s | %9s@." "encode" "overlap" "overlap" "strict"
    "strict" "measured";
  Format.printf "%6s | %10s %10s | %10s %10s | %9s@." "nodes" "det fps" "exp fps" "det fps"
    "exp fps" "exp fps";
  List.iter
    (fun workers ->
      let mapping = mapping_for workers in
      let det_o = Deterministic.throughput mapping Model.Overlap in
      let exp_o = Expo.overlap_throughput mapping in
      let det_s = Deterministic.throughput mapping Model.Strict in
      (* the strict exponential value through the general method would be
         exponential in the replication factor; estimate it by simulation *)
      let exp_s =
        Des.Pipeline_sim.throughput mapping Model.Strict
          ~timing:(Des.Pipeline_sim.Independent (Laws.exponential mapping))
          ~seed:7 ~data_sets:20_000
      in
      let measured =
        Des.Pipeline_sim.throughput mapping Model.Overlap
          ~timing:(Des.Pipeline_sim.Independent (Laws.exponential mapping))
          ~seed:8 ~data_sets:20_000
      in
      Format.printf "%6d | %10.2f %10.2f | %10.2f %10.2f | %9.2f@." workers det_o exp_o det_s
        exp_s measured)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  Format.printf
    "@.The encode stage stops being the bottleneck once its team outruns the@.\
     slowest remaining resource; past that point extra workers buy nothing.@."
