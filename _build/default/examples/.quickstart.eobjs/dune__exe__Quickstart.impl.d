examples/quickstart.ml: Application Bounds Des Deterministic Dist Format Laws List Mapping Model Platform Streaming
