examples/bounds_demo.ml: Bounds Des Dist Format Laws List Model Streaming Workload
