examples/auto_mapping.mli:
