examples/bounds_demo.mli:
