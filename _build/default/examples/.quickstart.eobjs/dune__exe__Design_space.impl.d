examples/design_space.ml: Application Array Deterministic Expo Format List Mapping Platform Streaming String
