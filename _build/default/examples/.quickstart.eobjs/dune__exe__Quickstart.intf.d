examples/quickstart.mli:
