examples/latency_study.ml: Application Array Des Expo Format Fun Laws List Mapping Model Stats Streaming Workload
