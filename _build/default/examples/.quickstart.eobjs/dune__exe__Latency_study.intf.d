examples/latency_study.mli:
