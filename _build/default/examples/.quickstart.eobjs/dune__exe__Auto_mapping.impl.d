examples/auto_mapping.ml: Application Array Des Deterministic Dist Expo Format Laws List Mapper Mapping Model Platform Streaming String
