examples/video_pipeline.ml: Application Array Des Deterministic Expo Format Laws List Mapping Model Platform Streaming
