(* Design-space exploration: how should a fixed pool of processors be
   split into teams?

   The paper's throughput evaluation is the building block such a search
   needs: for every composition of the processor pool into one team per
   stage, we evaluate the deterministic and exponential throughput with
   the polynomial Overlap machinery and rank the allocations.  This is the
   "compare heuristics" use case the paper's conclusion announces.

   Run with: dune exec examples/design_space.exe *)

open Streaming

let n_stages = 3
let pool = 9 (* identical processors to distribute *)
let works = [| 2.0; 6.0; 3.0 |]
let file_size = 1.0
let link_time = 4.0

let mapping_of sizes =
  let app = Application.create ~work:works ~files:(Array.make (n_stages - 1) file_size) in
  let platform = Platform.fully_connected ~speeds:(Array.make pool 1.0) ~bw:(1.0 /. link_time) in
  let teams =
    let next = ref 0 in
    Array.map
      (fun size ->
        let t = Array.init size (fun k -> !next + k) in
        next := !next + size;
        t)
      sizes
  in
  Mapping.create ~app ~platform ~teams

(* all compositions of [pool] into [n_stages] positive parts *)
let compositions =
  let rec go remaining parts k =
    if k = 1 then [ [ remaining ] ]
    else
      List.concat_map
        (fun first -> List.map (fun rest -> first :: rest) (go (remaining - first) parts (k - 1)))
        (List.init (remaining - k + 1) (fun i -> i + 1))
  in
  go pool n_stages n_stages

let () =
  Format.printf "distributing %d processors over %d stages (work %.0f/%.0f/%.0f, links %.0f)@.@."
    pool n_stages works.(0) works.(1) works.(2) link_time;
  let scored =
    List.map
      (fun sizes ->
        let mapping = mapping_of (Array.of_list sizes) in
        let det = Deterministic.overlap_throughput_decomposed mapping in
        let expo = Expo.overlap_throughput mapping in
        (sizes, det, expo))
      compositions
  in
  let ranked = List.sort (fun (_, _, a) (_, _, b) -> compare b a) scored in
  Format.printf "%12s %14s %14s %14s@." "teams" "deterministic" "exponential" "exp/det";
  List.iteri
    (fun rank (sizes, det, expo) ->
      if rank < 8 then
        Format.printf "%12s %14.4f %14.4f %14.3f@."
          (String.concat "-" (List.map string_of_int sizes))
          det expo (expo /. det))
    ranked;
  let best_sizes, _, best_expo = List.hd ranked in
  Format.printf "@.best allocation under random (exponential) times: %s at %.4f data sets/s@."
    (String.concat "-" (List.map string_of_int best_sizes))
    best_expo;
  (* ranking by the deterministic value alone can be misleading: show the
     allocation that maximises det and where it lands on the exp ranking *)
  let by_det = List.sort (fun (_, a, _) (_, b, _) -> compare b a) scored in
  let det_sizes, det_best, det_expo = List.hd by_det in
  Format.printf "best by the deterministic metric: %s (det %.4f, exp %.4f)@."
    (String.concat "-" (List.map string_of_int det_sizes))
    det_best det_expo
