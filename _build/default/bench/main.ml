(* Benchmark harness.

   Running this executable regenerates every table and figure of the
   paper's experimental section (quick-sized; pass --full for sizes close
   to the paper's) and then times the computational kernels behind each of
   them with Bechamel — the running-time study of §7.7.

   Usage: dune exec bench/main.exe [-- --full | -- table1 fig13 ...] *)

open Bechamel
open Toolkit
open Streaming

(* ---- one Bechamel test per table/figure: the kernel that regenerates
   its central quantity, at a size that keeps one run under ~100ms ---- *)

let table1_kernel =
  (* deterministic critical-cycle analysis of a random (10,20) instance *)
  let g = Prng.create ~seed:1 in
  let mapping =
    Workload.Gen.random_mapping g
      {
        Workload.Gen.n_stages = 10;
        n_procs = 20;
        comp_range = (5., 15.);
        comm_range = (5., 15.);
        max_rows = 60;
      }
  in
  Test.make ~name:"table1: critical cycle (10,20)"
    (Staged.stage (fun () -> ignore (Deterministic.analyse mapping Model.Strict)))

let fig10_kernel =
  let mapping = Workload.Scenarios.fig10_system in
  let laws = Laws.exponential mapping in
  Test.make ~name:"fig10: eg_sim 1000 data sets"
    (Staged.stage (fun () ->
         ignore (Teg_sim.throughput mapping Model.Overlap ~laws ~seed:1 ~data_sets:1000)))

let fig11_kernel =
  let mapping = Workload.Scenarios.fig10_system in
  let timing = Des.Pipeline_sim.Independent (Laws.exponential mapping) in
  Test.make ~name:"fig11: DES 1000 data sets"
    (Staged.stage (fun () ->
         ignore (Des.Pipeline_sim.throughput mapping Model.Overlap ~timing ~seed:1 ~data_sets:1000)))

let fig12_kernel =
  let mapping = Workload.Scenarios.pattern_chain ~stages:8 () in
  Test.make ~name:"fig12: 8-stage chain theory"
    (Staged.stage (fun () -> ignore (Expo.overlap_throughput mapping)))

let fig13_kernel =
  Test.make ~name:"fig13: pattern CTMC 3x4"
    (Staged.stage (fun () ->
         ignore
           (Young.Pattern.exponential_inner_throughput ~u:3 ~v:4
              ~rate:(fun ~sender:_ ~receiver:_ -> 1.0)
              ())))

let fig14_kernel =
  Test.make ~name:"fig14: heterogeneous pattern CTMC 3x4"
    (Staged.stage (fun () ->
         ignore
           (Young.Pattern.exponential_inner_throughput ~u:3 ~v:4
              ~rate:(fun ~sender ~receiver -> 0.5 +. (0.1 *. float_of_int ((3 * sender) + receiver)))
              ())))

let fig15_kernel =
  let mapping = Workload.Scenarios.single_communication ~u:7 ~v:5 () in
  Test.make ~name:"fig15: closed form + decomposition"
    (Staged.stage (fun () ->
         ignore (Expo.overlap_throughput mapping);
         ignore (Deterministic.overlap_throughput_decomposed mapping)))

let fig16_kernel =
  let mapping = Workload.Scenarios.single_communication ~u:3 ~v:5 () in
  let timing =
    Des.Pipeline_sim.Independent
      (Laws.of_family mapping ~family:(fun mu -> Dist.Normal_trunc (mu, 0.2 *. mu)))
  in
  Test.make ~name:"fig16: DES gauss law 2000 data sets"
    (Staged.stage (fun () ->
         ignore (Des.Pipeline_sim.throughput mapping Model.Overlap ~timing ~seed:1 ~data_sets:2000)))

let fig17_kernel =
  let mapping = Workload.Scenarios.single_communication ~u:3 ~v:5 () in
  let timing =
    Des.Pipeline_sim.Independent
      (Laws.of_family mapping ~family:(fun mu -> Dist.with_mean (Dist.Gamma (0.5, 1.0)) mu))
  in
  Test.make ~name:"fig17: DES gamma law 2000 data sets"
    (Staged.stage (fun () ->
         ignore (Des.Pipeline_sim.throughput mapping Model.Overlap ~timing ~seed:1 ~data_sets:2000)))

let thm8_kernel =
  let mapping = Workload.Scenarios.single_communication ~u:3 ~v:4 () in
  Test.make ~name:"thm8: DES with a common data-set factor"
    (Staged.stage (fun () ->
         ignore
           (Des.Pipeline_sim.throughput mapping Model.Overlap
              ~timing:(Des.Pipeline_sim.Scaled (Dist.Uniform (0.5, 1.5)))
              ~seed:1 ~data_sets:2000)))

let ablation_kernel =
  let app = Application.create ~work:[| 1.0; 1.2; 0.9 |] ~files:[| 0.05; 0.05 |] in
  let platform = Platform.fully_connected ~speeds:[| 1.0; 1.0; 1.0 |] ~bw:1.0 in
  let mapping = Mapping.create ~app ~platform ~teams:[| [| 0 |]; [| 1 |]; [| 2 |] |] in
  Test.make ~name:"ablation: buffer-bounded marking CTMC"
    (Staged.stage (fun () ->
         ignore (Expo.general_throughput ~cap:500_000 ~buffer:3 mapping Model.Overlap)))

(* ---- substrate kernels (running time study, §7.7) ---- *)

let substrate_kernels =
  let mapping = Workload.Scenarios.example_a in
  [
    Test.make ~name:"substrate: TPN build (example A)"
      (Staged.stage (fun () -> ignore (Tpn.build mapping Model.Overlap)));
    Test.make ~name:"substrate: strict TPN -> CTMC (example A)"
      (Staged.stage (fun () -> ignore (Expo.strict_throughput ~cap:500_000 mapping)));
    Test.make ~name:"substrate: GTH stationary (200 states)"
      (let g = Prng.create ~seed:3 in
       let n = 200 in
       let rates =
         Array.init n (fun i ->
             Array.init n (fun j ->
                 if i = j then 0.0
                 else if (i + 1) mod n = j then 1.0 +. Prng.float g
                 else if Prng.float g < 0.05 then Prng.float g
                 else 0.0))
       in
       Staged.stage (fun () -> ignore (Linalg.Gth.stationary rates)));
    Test.make ~name:"substrate: state count S(9,7)"
      (Staged.stage (fun () -> ignore (Young.Combin.state_count ~u:9 ~v:7)));
  ]

let all_tests =
  [
    table1_kernel; fig10_kernel; fig11_kernel; fig12_kernel; fig13_kernel; fig14_kernel;
    fig15_kernel; fig16_kernel; fig17_kernel; thm8_kernel; ablation_kernel;
  ]
  @ substrate_kernels

let run_benchmarks () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) ~stabilize:false ~kde:(Some 10) () in
  Format.printf "@.== Running-time study (cf. paper section 7.7) ==@.";
  Format.printf "%-45s %15s@." "kernel" "time per run";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analysis = Analyze.all ols (List.hd instances) results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] ->
              let pretty =
                if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
                else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
                else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
                else Printf.sprintf "%.0f ns" est
              in
              Format.printf "%-45s %15s@." name pretty
          | _ -> Format.printf "%-45s %15s@." name "n/a")
        analysis)
    all_tests

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let ids = List.filter (fun a -> a <> "--full" && a <> "--no-bench") args in
  let quick = not full in
  (match ids with
  | [] -> Experiments.Registry.run_all ~quick Format.std_formatter
  | ids ->
      List.iter
        (fun id ->
          match Experiments.Registry.find id with
          | Some e -> e.Experiments.Registry.run ~quick Format.std_formatter
          | None -> Format.eprintf "unknown experiment %S@." id)
        ids);
  if not (List.mem "--no-bench" args) then run_benchmarks ()
