open Streaming

let qcheck_team_sizes =
  QCheck.Test.make ~name:"random team sizes form a composition under the row cap" ~count:200
    QCheck.(triple small_int (int_range 2 8) (int_range 10 25))
    (fun (seed, n_stages, n_procs) ->
      let g = Prng.create ~seed:(seed + 1) in
      let sizes = Workload.Gen.random_team_sizes g ~n_stages ~n_procs ~max_rows:60 in
      let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
      let lcm a b = a / gcd a b * b in
      Array.length sizes = n_stages
      && Array.for_all (fun s -> s >= 1) sizes
      && Array.fold_left ( + ) 0 sizes = n_procs
      && Array.fold_left lcm 1 sizes <= 60)

let qcheck_random_mapping_valid =
  QCheck.Test.make ~name:"random mappings use every processor once with in-range times" ~count:60
    QCheck.small_int
    (fun seed ->
      let g = Prng.create ~seed:(seed + 7) in
      let params =
        {
          Workload.Gen.n_stages = 4;
          n_procs = 10;
          comp_range = (5.0, 15.0);
          comm_range = (10.0, 50.0);
          max_rows = 60;
        }
      in
      let mapping = Workload.Gen.random_mapping g params in
      let used =
        List.concat_map (fun i -> Array.to_list (Mapping.team mapping i)) (List.init 4 Fun.id)
      in
      let all_used = List.sort compare used = List.init 10 Fun.id in
      let comp_ok =
        List.for_all
          (fun p ->
            match Mapping.stage_of mapping p with
            | None -> false
            | Some stage ->
                let t = Mapping.comp_time mapping ~stage ~proc:p in
                t >= 5.0 -. 1e-9 && t <= 15.0 +. 1e-9)
          (List.init 10 Fun.id)
      in
      let comm_ok =
        List.for_all
          (fun r ->
            match r with
            | Resource.Transfer (src, dst) ->
                let i = Option.get (Mapping.stage_of mapping src) in
                let t = Mapping.comm_time mapping ~file:i ~src ~dst in
                t >= 10.0 -. 1e-9 && t <= 50.0 +. 1e-9
            | Resource.Compute _ -> true)
          (Mapping.resources mapping)
      in
      all_used && comp_ok && comm_ok)

let test_table1_sets_well_formed () =
  List.iter
    (fun (label, p) ->
      Alcotest.(check bool) (label ^ " stages <= procs") true
        (p.Workload.Gen.n_stages <= p.Workload.Gen.n_procs);
      let lo, hi = p.Workload.Gen.comp_range in
      Alcotest.(check bool) (label ^ " comp range ordered") true (lo <= hi))
    Workload.Gen.table1_sets;
  Alcotest.(check int) "six configurations" 6 (List.length Workload.Gen.table1_sets)

let test_scenarios () =
  Alcotest.(check int) "example A rows" 6 (Mapping.rows Workload.Scenarios.example_a);
  Alcotest.(check (list int)) "fig10 replication" [ 1; 3; 4; 5; 6; 7; 1 ]
    (Array.to_list (Mapping.replication Workload.Scenarios.fig10_system));
  Alcotest.(check int) "fig10 rows" 420 (Mapping.rows Workload.Scenarios.fig10_system);
  let single = Workload.Scenarios.single_communication ~u:3 ~v:4 () in
  Alcotest.(check (list int)) "single comm teams" [ 3; 4 ]
    (Array.to_list (Mapping.replication single));
  Alcotest.(check (float 1e-9)) "unit link time" 1.0
    (Mapping.comm_time single ~file:0 ~src:0 ~dst:3);
  let chain = Workload.Scenarios.pattern_chain ~stages:4 () in
  Alcotest.(check (list int)) "pattern chain" [ 5; 7; 5; 7 ]
    (Array.to_list (Mapping.replication chain));
  Alcotest.check_raises "chain needs 2 stages"
    (Invalid_argument "Scenarios.pattern_chain: need at least two stages") (fun () ->
      ignore (Workload.Scenarios.pattern_chain ~stages:1 ()))

let test_example_c_teams () =
  Alcotest.(check (list int)) "example C" [ 5; 21; 27; 11 ]
    (Array.to_list Workload.Scenarios.example_c_teams)

let qcheck_instance_io_roundtrip =
  QCheck.Test.make ~name:"instance files roundtrip through the parser" ~count:40 QCheck.small_int
    (fun seed ->
      let g = Prng.create ~seed:(seed + 31) in
      let mapping =
        Workload.Gen.random_mapping g
          {
            Workload.Gen.n_stages = 2 + Prng.int g 3;
            n_procs = 5 + Prng.int g 4;
            comp_range = (5.0, 15.0);
            comm_range = (5.0, 15.0);
            max_rows = 60;
          }
      in
      let text = Format.asprintf "%a" Instance_io.print mapping in
      match Instance_io.parse text with
      | Error _ -> false
      | Ok mapping' ->
          List.for_all
            (fun model ->
              let a = Deterministic.throughput mapping model in
              let b = Deterministic.throughput mapping' model in
              abs_float (a -. b) < 1e-6 *. a)
            Model.all)

let () =
  Alcotest.run "workload"
    [
      ( "generator",
        [
          QCheck_alcotest.to_alcotest qcheck_team_sizes;
          QCheck_alcotest.to_alcotest qcheck_random_mapping_valid;
          Alcotest.test_case "table1 sets" `Quick test_table1_sets_well_formed;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "named instances" `Quick test_scenarios;
          Alcotest.test_case "example C teams" `Quick test_example_c_teams;
          QCheck_alcotest.to_alcotest qcheck_instance_io_roundtrip;
        ] );
    ]
