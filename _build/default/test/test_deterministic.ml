open Streaming

let check_float tol = Alcotest.(check (float tol))

let linear_chain works files speeds bw =
  let app = Application.create ~work:works ~files in
  let platform = Platform.fully_connected ~speeds ~bw in
  let teams = Array.init (Array.length works) (fun i -> [| i |]) in
  Mapping.create ~app ~platform ~teams

let test_single_stage () =
  let app = Application.create ~work:[| 6.0 |] ~files:[||] in
  let platform = Platform.fully_connected ~speeds:[| 2.0 |] ~bw:1.0 in
  let mapping = Mapping.create ~app ~platform ~teams:[| [| 0 |] |] in
  List.iter
    (fun model ->
      let a = Deterministic.analyse mapping model in
      check_float 1e-9 "throughput = s/w" (1.0 /. 3.0) a.Deterministic.throughput;
      check_float 1e-9 "period" 3.0 a.Deterministic.period;
      check_float 1e-9 "mct = period" a.Deterministic.period a.Deterministic.mct;
      Alcotest.(check bool) "critical" true (Deterministic.has_critical_resource a))
    Model.all

let test_two_stage_chain_overlap () =
  (* comp0 = 3, comm = 8, comp1 = 8: overlap period = max = 8 *)
  let mapping = linear_chain [| 6.0; 8.0 |] [| 4.0 |] [| 2.0; 1.0 |] 0.5 in
  let a = Deterministic.analyse mapping Model.Overlap in
  check_float 1e-9 "overlap period" 8.0 a.Deterministic.period;
  check_float 1e-9 "throughput" 0.125 a.Deterministic.throughput

let test_two_stage_chain_strict () =
  (* strict: P0 does 3+8, P1 does 8+8 -> period 16 *)
  let mapping = linear_chain [| 6.0; 8.0 |] [| 4.0 |] [| 2.0; 1.0 |] 0.5 in
  let a = Deterministic.analyse mapping Model.Strict in
  check_float 1e-9 "strict period" 16.0 a.Deterministic.period;
  Alcotest.(check bool) "strict critical" true (Deterministic.has_critical_resource a)

let test_three_stage_chain () =
  let mapping = linear_chain [| 2.0; 5.0; 3.0 |] [| 1.0; 1.0 |] [| 1.0; 1.0; 1.0 |] 1.0 in
  let a = Deterministic.analyse mapping Model.Overlap in
  check_float 1e-9 "bottleneck stage" 5.0 a.Deterministic.period;
  let s = Deterministic.analyse mapping Model.Strict in
  (* middle processor: 1 + 5 + 1 = 7 *)
  check_float 1e-9 "strict period" 7.0 s.Deterministic.period

let test_replicated_homogeneous_pattern () =
  (* u=3 senders, v=4 receivers, unit comm time, negligible computation:
     deterministic throughput = min(u,v) *)
  let mapping = Workload.Scenarios.single_communication ~u:3 ~v:4 () in
  check_float 1e-6 "det = min(u,v)" 3.0 (Deterministic.throughput mapping Model.Overlap)

let test_replication_beats_single () =
  (* replicating the slow stage 3x triples the throughput *)
  let app = Application.create ~work:[| 0.1; 9.0 |] ~files:[| 0.01 |] in
  let platform = Platform.fully_connected ~speeds:(Array.make 4 1.0) ~bw:1.0 in
  let single = Mapping.create ~app ~platform ~teams:[| [| 0 |]; [| 1 |] |] in
  let triple = Mapping.create ~app ~platform ~teams:[| [| 0 |]; [| 1; 2; 3 |] |] in
  let rho1 = Deterministic.throughput single Model.Overlap in
  let rho3 = Deterministic.throughput triple Model.Overlap in
  check_float 1e-6 "single" (1.0 /. 9.0) rho1;
  check_float 1e-6 "triple" (3.0 /. 9.0) rho3

let test_example_a_models () =
  let mapping = Workload.Scenarios.example_a in
  let o = Deterministic.analyse mapping Model.Overlap in
  let s = Deterministic.analyse mapping Model.Strict in
  Alcotest.(check bool) "strict period >= overlap period" true
    (s.Deterministic.period >= o.Deterministic.period -. 1e-9);
  Alcotest.(check bool) "mct <= period (overlap)" true
    (o.Deterministic.mct <= o.Deterministic.period +. 1e-9);
  Alcotest.(check bool) "mct <= period (strict)" true
    (s.Deterministic.mct <= s.Deterministic.period +. 1e-9)

let random_mapping seed =
  let g = Prng.create ~seed in
  Workload.Gen.random_mapping g
    {
      Workload.Gen.n_stages = 2 + Prng.int g 4;
      n_procs = 8 + Prng.int g 6;
      comp_range = (5.0, 15.0);
      comm_range = (5.0, 15.0);
      max_rows = 60;
    }

let qcheck_mct_lower_bound =
  QCheck.Test.make ~name:"Mct is a lower bound on the period (both models)" ~count:40
    QCheck.small_int
    (fun seed ->
      let mapping = random_mapping (seed + 1) in
      List.for_all
        (fun model ->
          let a = Deterministic.analyse mapping model in
          a.Deterministic.mct <= a.Deterministic.paper_period +. (1e-9 *. a.Deterministic.paper_period))
        Model.all)

let qcheck_strict_slower_than_overlap =
  QCheck.Test.make ~name:"strict period >= overlap period" ~count:40 QCheck.small_int
    (fun seed ->
      let mapping = random_mapping (seed + 101) in
      let o = Deterministic.analyse mapping Model.Overlap in
      let s = Deterministic.analyse mapping Model.Strict in
      s.Deterministic.period >= o.Deterministic.period -. (1e-9 *. o.Deterministic.period))

let qcheck_decomposition_matches_full_tpn =
  QCheck.Test.make ~name:"overlap: column decomposition = full critical cycle" ~count:30
    QCheck.small_int
    (fun seed ->
      (* the generated mappings have an unreplicated... not necessarily;
         compare against m/P only when the decomposed row rates are all
         equal (single bottleneck visible to every row), which the full-TPN
         formula assumes; otherwise check the decomposition dominates. *)
      let mapping = random_mapping (seed + 202) in
      let full = Deterministic.throughput mapping Model.Overlap in
      let dec = Deterministic.overlap_throughput_decomposed mapping in
      dec >= full -. (1e-6 *. full))

let test_decomposition_exact_on_single_ended () =
  (* first and last stages unreplicated: the two formulas agree *)
  List.iter
    (fun seed ->
      let g = Prng.create ~seed in
      let app = Application.create ~work:[| 1.0; 1.0; 1.0 |] ~files:[| 1.0; 1.0 |] in
      let n_procs = 7 in
      let speeds = Array.init n_procs (fun _ -> Prng.uniform g 0.5 2.0) in
      let bw_matrix =
        Array.init n_procs (fun _ -> Array.init n_procs (fun _ -> Prng.uniform g 0.5 2.0))
      in
      let platform = Platform.create ~speeds ~bandwidth:bw_matrix in
      let mapping =
        Mapping.create ~app ~platform ~teams:[| [| 0 |]; [| 1; 2; 3 |]; [| 4 |] |]
      in
      let full = Deterministic.throughput mapping Model.Overlap in
      let dec = Deterministic.overlap_throughput_decomposed mapping in
      check_float (1e-6 *. full) (Printf.sprintf "seed %d" seed) full dec)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_eg_sim_matches_theory () =
  List.iter
    (fun model ->
      let mapping = Workload.Scenarios.example_a in
      let theory = Deterministic.throughput mapping model in
      let sim =
        Teg_sim.throughput mapping model ~laws:(Laws.deterministic mapping) ~seed:1
          ~data_sets:5000
      in
      check_float (1e-6 *. theory) (Model.to_string model) theory sim)
    Model.all

let test_critical_transitions_nonempty () =
  let a = Deterministic.analyse Workload.Scenarios.example_a Model.Overlap in
  Alcotest.(check bool) "has critical cycle" true (List.length a.Deterministic.critical_transitions > 0)

let () =
  Alcotest.run "deterministic"
    [
      ( "chains",
        [
          Alcotest.test_case "single stage" `Quick test_single_stage;
          Alcotest.test_case "two stages overlap" `Quick test_two_stage_chain_overlap;
          Alcotest.test_case "two stages strict" `Quick test_two_stage_chain_strict;
          Alcotest.test_case "three stages" `Quick test_three_stage_chain;
        ] );
      ( "replication",
        [
          Alcotest.test_case "homogeneous pattern" `Quick test_replicated_homogeneous_pattern;
          Alcotest.test_case "replication speedup" `Quick test_replication_beats_single;
          Alcotest.test_case "example A" `Quick test_example_a_models;
          Alcotest.test_case "decomposition exact" `Quick test_decomposition_exact_on_single_ended;
          Alcotest.test_case "critical cycle labels" `Quick test_critical_transitions_nonempty;
          QCheck_alcotest.to_alcotest qcheck_mct_lower_bound;
          QCheck_alcotest.to_alcotest qcheck_strict_slower_than_overlap;
          QCheck_alcotest.to_alcotest qcheck_decomposition_matches_full_tpn;
        ] );
      ( "simulation agreement",
        [ Alcotest.test_case "eg_sim matches theory" `Slow test_eg_sim_matches_theory ] );
    ]
