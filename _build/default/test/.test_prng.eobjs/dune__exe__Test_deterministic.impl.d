test/test_deterministic.ml: Alcotest Application Array Deterministic Laws List Mapping Model Platform Printf Prng QCheck QCheck_alcotest Streaming Teg_sim Workload
