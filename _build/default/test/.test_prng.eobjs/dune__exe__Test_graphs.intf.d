test/test_graphs.mli:
