test/test_dist.ml: Alcotest Dist List Printf Prng QCheck QCheck_alcotest Stats
