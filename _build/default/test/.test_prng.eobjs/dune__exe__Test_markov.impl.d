test/test_markov.ml: Alcotest Array Dist Eg_sim Fun List Markov Petrinet Printf Prng Teg Young
