test/test_mapper.ml: Alcotest Application Array Deterministic Expo Fun List Mapper Mapping Platform Printf Prng QCheck QCheck_alcotest Streaming
