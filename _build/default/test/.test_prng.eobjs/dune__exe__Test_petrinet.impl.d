test/test_petrinet.ml: Alcotest Array Cycle_time Dist Dot Eg_sim Expand Format Fun List Marking Petrinet Printf Prng QCheck QCheck_alcotest String Structural Teg Teg_io
