test/test_bounds.ml: Alcotest Application Bounds Des Dist Laws List Mapping Model Platform Printf Streaming Workload
