test/test_deterministic.mli:
