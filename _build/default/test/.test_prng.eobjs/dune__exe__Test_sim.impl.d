test/test_sim.ml: Alcotest Application Array Des Deterministic Dist Expo Laws List Mapping Model Platform Printf Prng QCheck QCheck_alcotest Stats Streaming Teg_sim Workload
