test/test_streaming.ml: Alcotest Application Array Fun Gen List Mapping Model Petrinet Platform QCheck QCheck_alcotest Resource Sensitivity Streaming Tpn Utilization
