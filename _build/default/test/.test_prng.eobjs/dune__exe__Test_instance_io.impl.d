test/test_instance_io.ml: Alcotest Application Array Columns Deterministic Expo Format Instance_io List Mapping Model Platform Printf Streaming String Workload Young
