test/test_young.ml: Alcotest Array Combin List Markov Pattern Petrinet Printf Prng QCheck QCheck_alcotest Young
