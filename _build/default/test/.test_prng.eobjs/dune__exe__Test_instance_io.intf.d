test/test_instance_io.mli:
