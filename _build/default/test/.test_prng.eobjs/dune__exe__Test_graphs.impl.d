test/test_graphs.ml: Alcotest Array Cycle_ratio Digraph Fun Graphs Howard List Petrinet Prng QCheck QCheck_alcotest Streaming Workload
