test/test_prng.ml: Alcotest Array Float Prng QCheck QCheck_alcotest Stats
