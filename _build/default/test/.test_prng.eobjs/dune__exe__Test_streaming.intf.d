test/test_streaming.mli:
