test/test_young.mli:
