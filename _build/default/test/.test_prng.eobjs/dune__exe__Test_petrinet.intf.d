test/test_petrinet.mli:
