test/test_stats.ml: Alcotest Array Batch_means Gen List Printf Prng QCheck QCheck_alcotest Series Stats Summary
