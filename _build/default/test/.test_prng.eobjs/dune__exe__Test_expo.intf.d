test/test_expo.mli:
