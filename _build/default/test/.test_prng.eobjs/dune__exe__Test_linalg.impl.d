test/test_linalg.ml: Alcotest Array Gth Linalg List Matrix Printf Prng QCheck QCheck_alcotest Sparse
