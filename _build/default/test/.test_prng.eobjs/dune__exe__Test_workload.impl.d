test/test_workload.ml: Alcotest Array Deterministic Format Fun Instance_io List Mapping Model Option Prng QCheck QCheck_alcotest Resource Streaming Workload
