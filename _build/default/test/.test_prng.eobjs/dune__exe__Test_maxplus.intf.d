test/test_maxplus.mli:
