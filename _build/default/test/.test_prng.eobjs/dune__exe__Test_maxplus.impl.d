test/test_maxplus.ml: Alcotest Array Graphs Maxplus Option Prng QCheck QCheck_alcotest
