test/test_dist.mli:
