open Streaming

let test_bounds_ordering () =
  List.iter
    (fun (u, v) ->
      let mapping = Workload.Scenarios.single_communication ~u ~v () in
      let b = Bounds.compute mapping Model.Overlap in
      Alcotest.(check bool)
        (Printf.sprintf "%dx%d: lower <= upper" u v)
        true
        (b.Bounds.lower <= b.Bounds.upper +. 1e-9))
    [ (1, 1); (2, 3); (3, 4); (5, 4) ]

let test_bounds_values () =
  let mapping = Workload.Scenarios.single_communication ~u:3 ~v:4 () in
  let b = Bounds.compute mapping Model.Overlap in
  Alcotest.(check (float 1e-6)) "upper = det = 3" 3.0 b.Bounds.upper;
  Alcotest.(check (float 1e-6)) "lower = exp = 2" 2.0 b.Bounds.lower;
  Alcotest.(check (float 1e-9)) "width" (1.0 /. 3.0) (Bounds.width b)

let test_contains () =
  let b = { Bounds.lower = 2.0; upper = 3.0 } in
  Alcotest.(check bool) "inside" true (Bounds.contains b 2.5);
  Alcotest.(check bool) "slack below" true (Bounds.contains b 1.97);
  Alcotest.(check bool) "far below" false (Bounds.contains b 1.5);
  Alcotest.(check bool) "far above" false (Bounds.contains b 3.5)

let test_strict_bounds () =
  let app = Application.create ~work:[| 4.0; 6.0 |] ~files:[| 2.0 |] in
  let platform = Platform.fully_connected ~speeds:[| 1.0; 1.0; 1.0 |] ~bw:1.0 in
  let mapping = Mapping.create ~app ~platform ~teams:[| [| 0 |]; [| 1; 2 |] |] in
  let b = Bounds.compute mapping Model.Strict in
  Alcotest.(check bool) "strict lower <= upper" true (b.Bounds.lower <= b.Bounds.upper)

let nbue_families =
  [
    ("uniform", fun mu -> Dist.with_mean (Dist.Uniform (0.5, 1.5)) mu);
    ("gauss", fun mu -> Dist.Normal_trunc (mu, 0.25 *. mu));
    ("beta(2,2)", fun mu -> Dist.with_mean (Dist.Beta (2.0, 2.0, 1.0)) mu);
    ("erlang-3", fun mu -> Dist.with_mean (Dist.Erlang (3, 1.0)) mu);
    ("weibull-2", fun mu -> Dist.with_mean (Dist.Weibull (2.0, 1.0)) mu);
  ]

(* Figure 16: N.B.U.E. laws fall between the exponential and deterministic
   cases. *)
let test_nbue_laws_within_bounds () =
  let mapping = Workload.Scenarios.single_communication ~u:3 ~v:4 () in
  let b = Bounds.compute mapping Model.Overlap in
  List.iter
    (fun (name, family) ->
      let laws = Laws.of_family mapping ~family in
      Alcotest.(check bool) (name ^ " is NBUE") true (Laws.all_nbue mapping laws);
      let rho =
        Des.Pipeline_sim.throughput mapping Model.Overlap
          ~timing:(Des.Pipeline_sim.Independent laws) ~seed:31 ~data_sets:60_000
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: %.4f within [%.4f, %.4f]" name rho b.Bounds.lower b.Bounds.upper)
        true
        (Bounds.contains ~slack:0.02 b rho))
    nbue_families

(* Figure 17: a D.F.R. (non-N.B.U.E.) law can fall below the exponential
   lower bound. *)
let test_gamma_dfr_below_lower_bound () =
  let mapping = Workload.Scenarios.single_communication ~u:3 ~v:4 () in
  let b = Bounds.compute mapping Model.Overlap in
  let family mu = Dist.with_mean (Dist.Gamma (0.2, 1.0)) mu in
  let laws = Laws.of_family mapping ~family in
  Alcotest.(check bool) "gamma(0.2) is not NBUE" false (Laws.all_nbue mapping laws);
  let rho =
    Des.Pipeline_sim.throughput mapping Model.Overlap
      ~timing:(Des.Pipeline_sim.Independent laws) ~seed:37 ~data_sets:60_000
  in
  Alcotest.(check bool)
    (Printf.sprintf "gamma(0.2): %.4f below exponential bound %.4f" rho b.Bounds.lower)
    true
    (rho < b.Bounds.lower)

let test_single_server_insensitive () =
  (* on an unreplicated chain the bottleneck is a single serial resource:
     the throughput is 1/mean for any law, so bounds coincide and any law
     achieves them *)
  let app = Application.create ~work:[| 1.0; 5.0 |] ~files:[| 0.01 |] in
  let platform = Platform.fully_connected ~speeds:[| 1.0; 1.0 |] ~bw:1.0 in
  let mapping = Mapping.create ~app ~platform ~teams:[| [| 0 |]; [| 1 |] |] in
  let b = Bounds.compute mapping Model.Overlap in
  Alcotest.(check (float 1e-6)) "bounds coincide" b.Bounds.upper b.Bounds.lower;
  let rho =
    Des.Pipeline_sim.throughput mapping Model.Overlap
      ~timing:
        (Des.Pipeline_sim.Independent
           (Laws.of_family mapping ~family:(fun mu -> Dist.with_mean (Dist.Gamma (0.5, 1.0)) mu)))
      ~seed:5 ~data_sets:60_000
  in
  Alcotest.(check bool)
    (Printf.sprintf "gamma matches %.4f vs %.4f" rho b.Bounds.upper)
    true
    (abs_float (rho -. b.Bounds.upper) /. b.Bounds.upper < 0.03)

let () =
  Alcotest.run "bounds"
    [
      ( "structure",
        [
          Alcotest.test_case "ordering" `Quick test_bounds_ordering;
          Alcotest.test_case "values" `Quick test_bounds_values;
          Alcotest.test_case "contains" `Quick test_contains;
          Alcotest.test_case "strict" `Quick test_strict_bounds;
        ] );
      ( "laws",
        [
          Alcotest.test_case "NBUE within bounds (fig 16)" `Slow test_nbue_laws_within_bounds;
          Alcotest.test_case "DFR below lower bound (fig 17)" `Slow test_gamma_dfr_below_lower_bound;
          Alcotest.test_case "single server insensitivity" `Slow test_single_server_insensitive;
        ] );
    ]
