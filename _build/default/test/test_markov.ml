open Petrinet

let check_float tol = Alcotest.(check (float tol))

let ring times =
  let k = Array.length times in
  let teg = Teg.create ~labels:(Array.init k (Printf.sprintf "t%d")) ~times in
  for l = 0 to k - 1 do
    Teg.add_place teg ~src:l ~dst:((l + 1) mod k) ~tokens:(if l = k - 1 then 1 else 0)
  done;
  teg

let test_ctmc_two_state () =
  let chain = Markov.Ctmc.create 2 in
  Markov.Ctmc.add_rate chain 0 1 3.0;
  Markov.Ctmc.add_rate chain 1 0 1.0;
  let pi = Markov.Ctmc.stationary chain in
  check_float 1e-12 "pi0" 0.25 pi.(0);
  check_float 1e-12 "pi1" 0.75 pi.(1);
  check_float 1e-12 "flow 0->1" 0.75 (Markov.Ctmc.flow chain ~pi ~src:0 ~dst:1);
  check_float 1e-12 "flow balance" (Markov.Ctmc.flow chain ~pi ~src:0 ~dst:1)
    (Markov.Ctmc.flow chain ~pi ~src:1 ~dst:0)

let test_ctmc_add_rate_accumulates () =
  let chain = Markov.Ctmc.create 2 in
  Markov.Ctmc.add_rate chain 0 1 1.0;
  Markov.Ctmc.add_rate chain 0 1 2.0;
  Markov.Ctmc.add_rate chain 1 0 1.0;
  let pi = Markov.Ctmc.stationary chain in
  check_float 1e-12 "accumulated rate" 0.25 pi.(0)

let test_ctmc_solvers_agree () =
  let build () =
    let chain = Markov.Ctmc.create 4 in
    Markov.Ctmc.add_rate chain 0 1 1.0;
    Markov.Ctmc.add_rate chain 1 2 2.0;
    Markov.Ctmc.add_rate chain 2 3 3.0;
    Markov.Ctmc.add_rate chain 3 0 4.0;
    Markov.Ctmc.add_rate chain 0 2 0.5;
    chain
  in
  let chain = build () in
  let gth = Markov.Ctmc.stationary ~solver:Markov.Ctmc.Gth chain in
  let gs = Markov.Ctmc.stationary ~solver:Markov.Ctmc.Gauss_seidel chain in
  let pw = Markov.Ctmc.stationary ~solver:Markov.Ctmc.Power chain in
  Array.iteri (fun i v -> check_float 1e-8 "gth vs gs" v gs.(i)) gth;
  Array.iteri (fun i v -> check_float 1e-6 "gth vs power" v pw.(i)) gth

(* -- tpn_markov -- *)

let test_self_loop_rate () =
  let teg = Teg.create ~labels:[| "only" |] ~times:[| 2.0 |] in
  Teg.add_place teg ~src:0 ~dst:0 ~tokens:1;
  let chain = Markov.Tpn_markov.analyse ~rates:(fun _ -> 0.5) teg in
  Alcotest.(check int) "one marking" 1 (Markov.Tpn_markov.n_markings chain);
  check_float 1e-12 "always enabled" 1.0 (Markov.Tpn_markov.enabled_probability chain 0);
  check_float 1e-12 "firing rate = rate" 0.5 (Markov.Tpn_markov.firing_rate chain 0)

let test_alternating_renewal () =
  (* ring of two exponential transitions: completions of each transition
     form a renewal process of rate 1/(1/l1 + 1/l2) *)
  let teg = ring [| 1.0; 1.0 |] in
  let l1 = 2.0 and l2 = 3.0 in
  let chain = Markov.Tpn_markov.analyse ~rates:(fun v -> if v = 0 then l1 else l2) teg in
  Alcotest.(check int) "two markings" 2 (Markov.Tpn_markov.n_markings chain);
  let expected = 1.0 /. ((1.0 /. l1) +. (1.0 /. l2)) in
  check_float 1e-12 "t0 rate" expected (Markov.Tpn_markov.firing_rate chain 0);
  check_float 1e-12 "t1 rate" expected (Markov.Tpn_markov.firing_rate chain 1);
  check_float 1e-12 "throughput_of sums" (2.0 *. expected)
    (Markov.Tpn_markov.throughput_of chain [ 0; 1 ])

let test_ring_k_rate () =
  (* ring of k identical transitions: one token moving at rate l -> each
     transition fires at rate l/k *)
  let k = 5 and l = 2.0 in
  let teg = ring (Array.make k 1.0) in
  let chain = Markov.Tpn_markov.analyse ~rates:(fun _ -> l) teg in
  check_float 1e-12 "per transition" (l /. float_of_int k) (Markov.Tpn_markov.firing_rate chain 0);
  check_float 1e-12 "total" l (Markov.Tpn_markov.throughput_of chain (List.init k Fun.id))

let test_independent_rings_product_chain () =
  (* two independent rings share the chain; each keeps its own rate *)
  let teg = Teg.create ~labels:[| "a"; "b"; "c" |] ~times:(Array.make 3 1.0) in
  Teg.add_place teg ~src:0 ~dst:0 ~tokens:1;
  Teg.add_place teg ~src:1 ~dst:2 ~tokens:0;
  Teg.add_place teg ~src:2 ~dst:1 ~tokens:1;
  let chain = Markov.Tpn_markov.analyse ~rates:(fun v -> if v = 0 then 5.0 else 2.0) teg in
  Alcotest.(check int) "2 markings (self-loop is invariant)" 2 (Markov.Tpn_markov.n_markings chain);
  check_float 1e-12 "self loop rate" 5.0 (Markov.Tpn_markov.firing_rate chain 0);
  check_float 1e-12 "ring rate" 1.0 (Markov.Tpn_markov.firing_rate chain 1)

let test_rate_validation () =
  let teg = ring [| 1.0; 1.0 |] in
  Alcotest.check_raises "non-positive rate"
    (Invalid_argument "Tpn_markov: rate of t0 not positive") (fun () ->
      ignore (Markov.Tpn_markov.analyse ~rates:(fun _ -> 0.0) teg))

let test_markov_vs_simulation () =
  (* 2x3 pattern with heterogeneous rates: stationary throughput matches a
     long event-graph simulation *)
  let rate ~sender ~receiver = 0.5 +. (0.3 *. float_of_int ((2 * sender) + receiver)) in
  let exact = Young.Pattern.exponential_inner_throughput ~u:2 ~v:3 ~rate () in
  let teg = Young.Pattern.build ~u:2 ~v:3 ~time:(fun ~sender ~receiver -> 1.0 /. rate ~sender ~receiver) in
  let g = Prng.create ~seed:42 in
  let sample ~transition ~firing:_ =
    let s, r = Young.Pattern.transition_of ~u:2 ~v:3 transition in
    Dist.sample (Dist.Exponential (rate ~sender:s ~receiver:r)) g
  in
  let iterations = 30_000 in
  let series = Eg_sim.simulate ~sample teg ~iterations ~watch:(List.init 6 Fun.id) in
  let horizon = Array.fold_left (fun acc s -> max acc s.(iterations - 1)) 0.0 series in
  let simulated = 6.0 *. float_of_int iterations /. horizon in
  Alcotest.(check bool)
    (Printf.sprintf "markov %.4f vs sim %.4f" exact simulated)
    true
    (abs_float (exact -. simulated) /. exact < 0.02)


(* -- transient analysis (uniformisation) -- *)

let test_transient_distribution_t0 () =
  let chain = Markov.Ctmc.create 2 in
  Markov.Ctmc.add_rate chain 0 1 1.0;
  Markov.Ctmc.add_rate chain 1 0 1.0;
  let d = Markov.Transient.distribution chain ~initial:0 ~horizon:0.0 in
  check_float 1e-12 "all mass at the start" 1.0 d.(0)

let test_transient_two_state_exact () =
  (* symmetric 2-state chain, rate r each way:
     P(X_t = start) = (1 + exp (-2 r t)) / 2 *)
  let r = 0.7 in
  let chain = Markov.Ctmc.create 2 in
  Markov.Ctmc.add_rate chain 0 1 r;
  Markov.Ctmc.add_rate chain 1 0 r;
  List.iter
    (fun t ->
      let d = Markov.Transient.distribution chain ~initial:0 ~horizon:t in
      check_float 1e-9 (Printf.sprintf "t=%g" t) ((1.0 +. exp (-2.0 *. r *. t)) /. 2.0) d.(0))
    [ 0.1; 0.5; 1.0; 3.0; 10.0 ]

let test_transient_converges_to_stationary () =
  let chain = Markov.Ctmc.create 3 in
  Markov.Ctmc.add_rate chain 0 1 1.0;
  Markov.Ctmc.add_rate chain 1 2 2.0;
  Markov.Ctmc.add_rate chain 2 0 3.0;
  Markov.Ctmc.add_rate chain 0 2 0.5;
  let pi = Markov.Ctmc.stationary chain in
  let d = Markov.Transient.distribution chain ~initial:1 ~horizon:200.0 in
  Array.iteri (fun i v -> check_float 1e-8 "limit = stationary" v d.(i)) pi

let test_occupancy_sums_to_horizon () =
  let chain = Markov.Ctmc.create 2 in
  Markov.Ctmc.add_rate chain 0 1 2.0;
  Markov.Ctmc.add_rate chain 1 0 0.5;
  let occ = Markov.Transient.occupancy chain ~initial:0 ~horizon:7.5 in
  check_float 1e-8 "total time" 7.5 (Array.fold_left ( +. ) 0.0 occ)

let test_expected_firings_poisson () =
  (* one transition with a token self-loop: completions form a Poisson
     process, E[N_t] = rate * t exactly *)
  let teg = Teg.create ~labels:[| "only" |] ~times:[| 1.0 |] in
  Teg.add_place teg ~src:0 ~dst:0 ~tokens:1;
  let chain = Markov.Tpn_markov.analyse ~rates:(fun _ -> 0.8) teg in
  List.iter
    (fun t ->
      check_float 1e-8 (Printf.sprintf "E[N_%g]" t) (0.8 *. t)
        (Markov.Tpn_markov.expected_firings chain ~horizon:t [ 0 ]))
    [ 0.5; 2.0; 25.0 ]

let test_expected_firings_renewal_slope () =
  (* 2-ring: E[N_t]/t tends to the stationary rate from below *)
  let teg = ring [| 1.0; 1.0 |] in
  let chain = Markov.Tpn_markov.analyse ~rates:(fun v -> if v = 0 then 2.0 else 3.0) teg in
  let stationary = Markov.Tpn_markov.throughput_of chain [ 0; 1 ] in
  let at t = Markov.Tpn_markov.expected_firings chain ~horizon:t [ 0; 1 ] /. t in
  Alcotest.(check bool) "monotone towards the rate" true (at 1.0 <= at 10.0 && at 10.0 <= at 100.0);
  check_float 1e-3 "slope at t=1000" stationary (at 1000.0);
  Alcotest.(check bool) "transient slope below stationary" true (at 1.0 < stationary)


(* -- phase-type distributions -- *)

let test_ph_exponential_moments () =
  let ph = Markov.Ph.exponential ~rate:2.0 in
  check_float 1e-12 "mean" 0.5 (Markov.Ph.mean ph);
  check_float 1e-9 "scv" 1.0 (Markov.Ph.scv ph)

let test_ph_erlang_moments () =
  let ph = Markov.Ph.erlang ~phases:4 ~rate:2.0 in
  check_float 1e-12 "mean k/r" 2.0 (Markov.Ph.mean ph);
  check_float 1e-9 "scv 1/k" 0.25 (Markov.Ph.scv ph)

let test_ph_hyperexponential_moments () =
  let ph = Markov.Ph.hyperexponential [ (0.5, 0.4); (0.5, 4.0) ] in
  (* mean = 0.5/0.4 + 0.5/4 = 1.375; m2 = 2(0.5/0.16 + 0.5/16) = 6.3125 *)
  check_float 1e-9 "mean" 1.375 (Markov.Ph.mean ph);
  check_float 1e-9 "scv" ((6.3125 /. (1.375 *. 1.375)) -. 1.0) (Markov.Ph.scv ph);
  Alcotest.(check bool) "high variance" true (Markov.Ph.scv ph > 1.0)

let test_ph_coxian () =
  (* Coxian with continue probability 1 is an Erlang chain *)
  let cox = Markov.Ph.coxian [ (2.0, 1.0); (2.0, 0.0) ] in
  check_float 1e-9 "coxian = erlang mean" (Markov.Ph.mean (Markov.Ph.erlang ~phases:2 ~rate:2.0))
    (Markov.Ph.mean cox);
  Alcotest.check_raises "last stage must absorb"
    (Invalid_argument "Ph.coxian: last stage must absorb") (fun () ->
      ignore (Markov.Ph.coxian [ (1.0, 0.5) ]))

let test_ph_with_mean () =
  let ph = Markov.Ph.with_mean (Markov.Ph.hyperexponential [ (0.3, 1.0); (0.7, 5.0) ]) 4.0 in
  check_float 1e-9 "rescaled mean" 4.0 (Markov.Ph.mean ph);
  (* scv is scale-invariant *)
  check_float 1e-9 "scv preserved"
    (Markov.Ph.scv (Markov.Ph.hyperexponential [ (0.3, 1.0); (0.7, 5.0) ]))
    (Markov.Ph.scv ph)

let test_ph_validate () =
  Alcotest.(check bool) "bad initial sums" true
    (Markov.Ph.validate
       { Markov.Ph.initial = [| 0.5 |]; jump = [| [| 0.0 |] |]; exit = [| 1.0 |] }
    <> Ok ())

(* -- phase-augmented marking chain -- *)

let test_ph_chain_single_server_insensitive () =
  (* one transition with a token self-loop: completions form a renewal
     process of rate 1/mean for ANY law *)
  let teg = Teg.create ~labels:[| "only" |] ~times:[| 1.0 |] in
  Teg.add_place teg ~src:0 ~dst:0 ~tokens:1;
  List.iter
    (fun (name, ph) ->
      let chain = Markov.Tpn_markov_ph.analyse ~ph_of:(fun _ -> ph) teg in
      check_float 1e-9 name (1.0 /. Markov.Ph.mean ph)
        (Markov.Tpn_markov_ph.completion_rate chain 0))
    [
      ("exponential", Markov.Ph.exponential ~rate:0.8);
      ("erlang", Markov.Ph.erlang ~phases:3 ~rate:2.0);
      ("hyper", Markov.Ph.hyperexponential [ (0.4, 0.5); (0.6, 3.0) ]);
      ("coxian", Markov.Ph.coxian [ (2.0, 0.7); (1.0, 0.0) ]);
    ]

let test_ph_chain_ring_alternating () =
  (* two PH transitions in a ring: renewal of rate 1/(m1+m2) *)
  let teg = ring [| 1.0; 1.0 |] in
  let ph0 = Markov.Ph.erlang ~phases:2 ~rate:4.0 in
  let ph1 = Markov.Ph.hyperexponential [ (0.5, 1.0); (0.5, 2.0) ] in
  let chain = Markov.Tpn_markov_ph.analyse ~ph_of:(fun v -> if v = 0 then ph0 else ph1) teg in
  let expected = 1.0 /. (Markov.Ph.mean ph0 +. Markov.Ph.mean ph1) in
  check_float 1e-9 "t0 rate" expected (Markov.Tpn_markov_ph.completion_rate chain 0);
  check_float 1e-9 "t1 rate" expected (Markov.Tpn_markov_ph.completion_rate chain 1)

let test_ph_chain_matches_exponential_chain () =
  (* with exponential laws the phase augmentation is trivial: both chains
     agree on a 2x3 pattern with heterogeneous rates *)
  let rate ~sender ~receiver = 0.5 +. (0.3 *. float_of_int ((2 * sender) + receiver)) in
  let plain = Young.Pattern.exponential_inner_throughput ~u:2 ~v:3 ~rate () in
  let ph =
    Young.Pattern.ph_inner_throughput ~u:2 ~v:3
      ~ph:(fun ~sender ~receiver -> Markov.Ph.exponential ~rate:(rate ~sender ~receiver))
      ()
  in
  check_float 1e-9 "phase chain = marking chain" plain ph

let test_ph_chain_erlang_matches_expansion () =
  List.iter
    (fun k ->
      let via_ph =
        Young.Pattern.ph_inner_throughput ~u:2 ~v:3
          ~ph:(fun ~sender:_ ~receiver:_ -> Markov.Ph.erlang ~phases:k ~rate:(float_of_int k))
          ()
      in
      let via_expansion =
        Young.Pattern.erlang_inner_throughput ~phases:k ~u:2 ~v:3
          ~rate:(fun ~sender:_ ~receiver:_ -> 1.0)
          ()
      in
      check_float 1e-9 (Printf.sprintf "k=%d" k) via_expansion via_ph)
    [ 2; 3 ]

let test_ph_chain_hyper_below_exponential () =
  let hyper = Markov.Ph.with_mean (Markov.Ph.hyperexponential [ (0.5, 0.4); (0.5, 4.0) ]) 1.0 in
  let value =
    Young.Pattern.ph_inner_throughput ~u:2 ~v:3 ~ph:(fun ~sender:_ ~receiver:_ -> hyper) ()
  in
  let expo =
    Young.Pattern.exponential_inner_throughput ~u:2 ~v:3
      ~rate:(fun ~sender:_ ~receiver:_ -> 1.0)
      ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "hyper %.4f strictly below exponential %.4f" value expo)
    true (value < expo -. 0.05)

let () =
  Alcotest.run "markov"
    [
      ( "ctmc",
        [
          Alcotest.test_case "two states" `Quick test_ctmc_two_state;
          Alcotest.test_case "rate accumulation" `Quick test_ctmc_add_rate_accumulates;
          Alcotest.test_case "solvers agree" `Quick test_ctmc_solvers_agree;
        ] );
      ( "tpn markov",
        [
          Alcotest.test_case "self loop" `Quick test_self_loop_rate;
          Alcotest.test_case "alternating renewal" `Quick test_alternating_renewal;
          Alcotest.test_case "k-ring" `Quick test_ring_k_rate;
          Alcotest.test_case "independent rings" `Quick test_independent_rings_product_chain;
          Alcotest.test_case "rate validation" `Quick test_rate_validation;
          Alcotest.test_case "markov vs simulation" `Slow test_markov_vs_simulation;
        ] );
      ( "transient",
        [
          Alcotest.test_case "t = 0" `Quick test_transient_distribution_t0;
          Alcotest.test_case "two-state exact" `Quick test_transient_two_state_exact;
          Alcotest.test_case "limit = stationary" `Quick test_transient_converges_to_stationary;
          Alcotest.test_case "occupancy total" `Quick test_occupancy_sums_to_horizon;
          Alcotest.test_case "poisson counts" `Quick test_expected_firings_poisson;
          Alcotest.test_case "renewal slope" `Quick test_expected_firings_renewal_slope;
        ] );
      ( "phase type",
        [
          Alcotest.test_case "exponential moments" `Quick test_ph_exponential_moments;
          Alcotest.test_case "erlang moments" `Quick test_ph_erlang_moments;
          Alcotest.test_case "hyperexponential moments" `Quick test_ph_hyperexponential_moments;
          Alcotest.test_case "coxian" `Quick test_ph_coxian;
          Alcotest.test_case "with_mean" `Quick test_ph_with_mean;
          Alcotest.test_case "validate" `Quick test_ph_validate;
          Alcotest.test_case "single server insensitive" `Quick test_ph_chain_single_server_insensitive;
          Alcotest.test_case "alternating ring" `Quick test_ph_chain_ring_alternating;
          Alcotest.test_case "matches exponential chain" `Quick test_ph_chain_matches_exponential_chain;
          Alcotest.test_case "matches erlang expansion" `Quick test_ph_chain_erlang_matches_expansion;
          Alcotest.test_case "hyper below exponential" `Quick test_ph_chain_hyper_below_exponential;
        ] );
    ]
