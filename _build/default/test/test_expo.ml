open Streaming

let check_float tol = Alcotest.(check (float tol))

let test_single_stage_rate () =
  let app = Application.create ~work:[| 4.0 |] ~files:[||] in
  let platform = Platform.fully_connected ~speeds:[| 2.0 |] ~bw:1.0 in
  let mapping = Mapping.create ~app ~platform ~teams:[| [| 0 |] |] in
  check_float 1e-9 "overlap" 0.5 (Expo.overlap_throughput mapping);
  check_float 1e-9 "strict" 0.5 (Expo.strict_throughput mapping)

let test_fig13_closed_form_grid () =
  (* single homogeneous communication: rho = u*v/(u+v-1), Theorem 4 *)
  List.iter
    (fun (u, v) ->
      let mapping = Workload.Scenarios.single_communication ~u ~v () in
      let expected = float_of_int (u * v) /. float_of_int (u + v - 1) in
      check_float 1e-6 (Printf.sprintf "%dx%d" u v) expected (Expo.overlap_throughput mapping))
    [ (1, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 6); (2, 7); (7, 2); (8, 9) ]

let test_fig15_ratio_formula () =
  (* exponential/deterministic = max(u,v)/(u+v-1) for a single homogeneous
     communication (§7.5) *)
  List.iter
    (fun (u, v) ->
      let mapping = Workload.Scenarios.single_communication ~u ~v () in
      let expo = Expo.overlap_throughput mapping in
      let det = Deterministic.throughput mapping Model.Overlap in
      let expected = float_of_int (max u v) /. float_of_int (u + v - 1) in
      check_float 1e-6 (Printf.sprintf "%dx%d ratio" u v) expected (expo /. det))
    [ (2, 3); (3, 4); (5, 4); (2, 9); (6, 7) ]

let test_closed_form_only_flag () =
  let het ~u ~v =
    Workload.Scenarios.single_communication ~u ~v
      ~comm_time:(fun s r -> 1.0 +. (0.2 *. float_of_int (s + r)))
      ()
  in
  let mapping = het ~u:2 ~v:3 in
  Alcotest.check_raises "heterogeneous rejected"
    (Invalid_argument "Expo.overlap_throughput: heterogeneous component under closed_form_only")
    (fun () -> ignore (Expo.overlap_throughput ~closed_form_only:true mapping));
  (* homogeneous instance passes *)
  let hom = Workload.Scenarios.single_communication ~u:2 ~v:3 () in
  check_float 1e-9 "closed-form-only on homogeneous" (Expo.overlap_throughput hom)
    (Expo.overlap_throughput ~closed_form_only:true hom)

let test_strict_markov_vs_des () =
  let app = Application.create ~work:[| 10.; 20.; 30.; 10. |] ~files:[| 8.; 12.; 6. |] in
  let speeds = [| 2.; 1.; 1.5; 1.; 2.; 1.; 2. |] in
  let platform =
    Platform.of_link_function ~n:7 ~speeds ~bw:(fun p q -> 1.0 +. (0.1 *. float_of_int (p + q)))
  in
  let mapping = Mapping.create ~app ~platform ~teams:[| [| 0 |]; [| 1; 2 |]; [| 3; 4; 5 |]; [| 6 |] |] in
  let theory = Expo.strict_throughput ~cap:500_000 mapping in
  let sim =
    Des.Pipeline_sim.throughput mapping Model.Strict
      ~timing:(Des.Pipeline_sim.Independent (Laws.exponential mapping))
      ~seed:4 ~data_sets:60_000
  in
  Alcotest.(check bool)
    (Printf.sprintf "theory %.5f vs sim %.5f" theory sim)
    true
    (abs_float (theory -. sim) /. theory < 0.03)

let test_overlap_decomposition_vs_bounded_markov () =
  let app = Application.create ~work:[| 0.001; 0.001 |] ~files:[| 1.0 |] in
  let platform =
    Platform.of_link_function ~n:3 ~speeds:(Array.make 3 1.0) ~bw:(fun p q ->
        0.6 +. (0.13 *. float_of_int ((p * 2) + q)))
  in
  let mapping = Mapping.create ~app ~platform ~teams:[| [| 0 |]; [| 1; 2 |] |] in
  let dec = Expo.overlap_throughput mapping in
  let markov = Expo.general_throughput ~cap:500_000 ~buffer:4 mapping Model.Overlap in
  check_float (2e-3 *. dec) "decomposition = bounded markov" dec markov

let test_overlap_decomposition_vs_sims () =
  let app = Application.create ~work:[| 0.001; 0.001 |] ~files:[| 1.0 |] in
  let platform =
    Platform.of_link_function ~n:5 ~speeds:(Array.make 5 1.0) ~bw:(fun p q ->
        0.6 +. (0.13 *. float_of_int ((p * 2) + q)))
  in
  let mapping = Mapping.create ~app ~platform ~teams:[| [| 0; 1 |]; [| 2; 3; 4 |] |] in
  let dec = Expo.overlap_throughput mapping in
  let des =
    Des.Pipeline_sim.throughput mapping Model.Overlap
      ~timing:(Des.Pipeline_sim.Independent (Laws.exponential mapping))
      ~seed:3 ~data_sets:100_000
  in
  let egs =
    Teg_sim.throughput mapping Model.Overlap ~laws:(Laws.exponential mapping) ~seed:5
      ~data_sets:100_000
  in
  Alcotest.(check bool)
    (Printf.sprintf "dec %.4f vs des %.4f" dec des)
    true
    (abs_float (dec -. des) /. dec < 0.02);
  Alcotest.(check bool)
    (Printf.sprintf "dec %.4f vs egsim %.4f" dec egs)
    true
    (abs_float (dec -. egs) /. dec < 0.02)

let test_per_row_composition () =
  (* slow unreplicated producer feeding a duplicated consumer: the naive
     "sum of min over predecessors" would give 2x the producer rate; the
     per-row composition gives the producer rate *)
  let app = Application.create ~work:[| 1.0; 1.0 |] ~files:[| 0.001 |] in
  let platform = Platform.fully_connected ~speeds:[| 1.0; 1.0; 1.0 |] ~bw:1.0 in
  let mapping = Mapping.create ~app ~platform ~teams:[| [| 0 |]; [| 1; 2 |] |] in
  let dec = Expo.overlap_throughput mapping in
  check_float 1e-6 "gated by the producer" 1.0 dec;
  let des =
    Des.Pipeline_sim.throughput mapping Model.Overlap
      ~timing:(Des.Pipeline_sim.Independent (Laws.exponential mapping))
      ~seed:11 ~data_sets:100_000
  in
  Alcotest.(check bool) (Printf.sprintf "des %.4f" des) true (abs_float (des -. 1.0) < 0.02)

let random_mapping seed =
  let g = Prng.create ~seed in
  Workload.Gen.random_mapping g
    {
      Workload.Gen.n_stages = 2 + Prng.int g 3;
      n_procs = 6 + Prng.int g 5;
      comp_range = (5.0, 15.0);
      comm_range = (5.0, 15.0);
      max_rows = 40;
    }

let qcheck_exponential_below_deterministic =
  QCheck.Test.make ~name:"overlap: exponential <= deterministic (Theorem 7)" ~count:25
    QCheck.small_int
    (fun seed ->
      let mapping = random_mapping (seed + 17) in
      let det = Deterministic.overlap_throughput_decomposed mapping in
      let expo = Expo.overlap_throughput ~pattern_cap:300_000 mapping in
      expo <= det +. (1e-9 *. det))

let qcheck_throughput_dispatch =
  QCheck.Test.make ~name:"throughput dispatches to the right method" ~count:5 QCheck.small_int
    (fun seed ->
      let mapping = random_mapping (seed + 400) in
      abs_float (Expo.throughput mapping Model.Overlap -. Expo.overlap_throughput mapping)
      < 1e-12)


let qcheck_strict_below_overlap =
  (* the Strict model only adds constraints: its exponential throughput
     cannot exceed the Overlap one *)
  QCheck.Test.make ~name:"exponential: strict <= overlap" ~count:10 QCheck.small_int
    (fun seed ->
      let g = Prng.create ~seed:(seed + 900) in
      let mapping =
        Workload.Gen.random_mapping g
          {
            Workload.Gen.n_stages = 2;
            n_procs = 4 + Prng.int g 2;
            comp_range = (5.0, 15.0);
            comm_range = (5.0, 15.0);
            max_rows = 6;
          }
      in
      let strict = Expo.strict_throughput ~cap:400_000 mapping in
      let overlap = Expo.overlap_throughput mapping in
      strict <= overlap +. (1e-9 *. overlap))

let qcheck_columns_partition_rows =
  (* within each column, the components' row sets partition the m rows *)
  QCheck.Test.make ~name:"column components partition the rows" ~count:40 QCheck.small_int
    (fun seed ->
      let g = Prng.create ~seed:(seed + 1200) in
      let mapping =
        Workload.Gen.random_mapping g
          {
            Workload.Gen.n_stages = 2 + Prng.int g 3;
            n_procs = 6 + Prng.int g 5;
            comp_range = (5.0, 15.0);
            comm_range = (5.0, 15.0);
            max_rows = 60;
          }
      in
      let m = Mapping.rows mapping in
      let n = Mapping.n_stages mapping in
      (* group components by column: stage i computes then file i comms *)
      let columns = Array.make ((2 * n) - 1) [] in
      List.iter
        (fun c ->
          let col =
            match c with
            | Columns.Compute { stage; _ } -> 2 * stage
            | Columns.Communication { Columns.file; _ } -> (2 * file) + 1
          in
          columns.(col) <- c :: columns.(col))
        (Columns.components mapping);
      Array.for_all
        (fun comps ->
          let rows =
            List.concat_map
              (fun c ->
                match c with
                | Columns.Compute { stage; proc } ->
                    let team = Mapping.team mapping stage in
                    let idx = Option.get (Array.find_index (Int.equal proc) team) in
                    List.init (m / Array.length team) (fun k -> idx + (k * Array.length team))
                | Columns.Communication { Columns.file; residue; _ } ->
                    let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
                    let gg =
                      gcd
                        (Array.length (Mapping.team mapping file))
                        (Array.length (Mapping.team mapping (file + 1)))
                    in
                    List.init (m / gg) (fun k -> residue + (k * gg)))
              comps
          in
          List.sort_uniq compare rows = List.init m Fun.id)
        columns)


let test_erlang_matches_des () =
  let mapping = Workload.Scenarios.single_communication ~u:2 ~v:3 () in
  List.iter
    (fun k ->
      let exact = Expo.overlap_throughput_erlang ~phases:k mapping in
      let des =
        Des.Pipeline_sim.throughput mapping Model.Overlap
          ~timing:
            (Des.Pipeline_sim.Independent
               (Laws.of_family mapping ~family:(fun mu -> Dist.with_mean (Dist.Erlang (k, 1.0)) mu)))
          ~seed:3 ~data_sets:60_000
      in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d exact %.4f vs des %.4f" k exact des)
        true
        (abs_float (exact -. des) /. exact < 0.02))
    [ 1; 2; 4 ]

let test_erlang_within_bounds () =
  (* Erlang is N.B.U.E.: the exact value must respect Theorem 7 *)
  let mapping = Workload.Scenarios.single_communication ~u:3 ~v:4 () in
  let bounds = Bounds.compute mapping Model.Overlap in
  List.iter
    (fun k ->
      let exact = Expo.overlap_throughput_erlang ~phases:k mapping in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d within [%.3f, %.3f]" k bounds.Bounds.lower bounds.Bounds.upper)
        true
        (exact >= bounds.Bounds.lower -. 1e-9 && exact <= bounds.Bounds.upper +. 1e-9))
    [ 1; 2; 3; 5 ]

let test_strict_erlang () =
  (* small strict instance: k=1 equals the exponential general method, and
     k=3 lies between it and the deterministic value *)
  let app = Application.create ~work:[| 4.0; 6.0 |] ~files:[| 2.0 |] in
  let platform = Platform.fully_connected ~speeds:[| 1.0; 1.0; 1.0 |] ~bw:1.0 in
  let mapping = Mapping.create ~app ~platform ~teams:[| [| 0 |]; [| 1; 2 |] |] in
  let expo = Expo.strict_throughput ~cap:500_000 mapping in
  let det = Deterministic.throughput mapping Model.Strict in
  let k1 = Expo.strict_throughput_erlang ~cap:500_000 ~phases:1 mapping in
  let k3 = Expo.strict_throughput_erlang ~cap:500_000 ~phases:3 mapping in
  Alcotest.(check (float 1e-9)) "k=1 = exponential" expo k1;
  Alcotest.(check bool)
    (Printf.sprintf "exp %.4f < k3 %.4f < det %.4f" expo k3 det)
    true
    (expo < k3 && k3 < det)


let test_ph_hyper_matches_des () =
  let mapping = Workload.Scenarios.single_communication ~u:2 ~v:3 () in
  let branches = [ (0.5, 0.4); (0.5, 4.0) ] in
  let exact =
    Expo.overlap_throughput_ph
      ~ph:(fun r ->
        Markov.Ph.with_mean (Markov.Ph.hyperexponential branches) (Mapping.mean_time mapping r))
      mapping
  in
  let des =
    Des.Pipeline_sim.throughput mapping Model.Overlap
      ~timing:
        (Des.Pipeline_sim.Independent
           (Laws.of_family mapping ~family:(fun mu -> Dist.with_mean (Dist.Hyperexp branches) mu)))
      ~seed:9 ~data_sets:100_000
  in
  let lower = Expo.overlap_throughput mapping in
  Alcotest.(check bool)
    (Printf.sprintf "exact %.4f vs des %.4f" exact des)
    true
    (abs_float (exact -. des) /. exact < 0.02);
  Alcotest.(check bool)
    (Printf.sprintf "DFR: exact %.4f below exponential %.4f" exact lower)
    true (exact < lower)


let test_throughput_facade () =
  let mapping = Workload.Scenarios.single_communication ~u:2 ~v:3 () in
  let check_f tol = Alcotest.(check (float tol)) in
  (* every spec dispatches to its reference implementation *)
  check_f 1e-9 "constant" (Deterministic.throughput mapping Model.Overlap)
    (Throughput.evaluate Throughput.Constant mapping Model.Overlap);
  check_f 1e-9 "exponential" (Expo.overlap_throughput mapping)
    (Throughput.evaluate Throughput.Exponential_times mapping Model.Overlap);
  check_f 1e-9 "erlang" (Expo.overlap_throughput_erlang ~phases:3 mapping)
    (Throughput.evaluate (Throughput.Erlang_times 3) mapping Model.Overlap);
  (* Ph with an Erlang-3 law coincides with the Erlang expansion *)
  check_f 1e-9 "ph = erlang"
    (Throughput.evaluate (Throughput.Erlang_times 3) mapping Model.Overlap)
    (Throughput.evaluate (Throughput.Ph_times (Markov.Ph.erlang ~phases:3 ~rate:3.0)) mapping
       Model.Overlap);
  (* strict dispatch *)
  let app = Application.create ~work:[| 4.0; 6.0 |] ~files:[| 2.0 |] in
  let platform = Platform.fully_connected ~speeds:[| 1.0; 1.0; 1.0 |] ~bw:1.0 in
  let small = Mapping.create ~app ~platform ~teams:[| [| 0 |]; [| 1; 2 |] |] in
  check_f 1e-9 "strict exponential" (Expo.strict_throughput ~cap:500_000 small)
    (Throughput.evaluate Throughput.Exponential_times small Model.Strict);
  check_f 1e-9 "strict ph exponential = strict exponential"
    (Throughput.evaluate Throughput.Exponential_times small Model.Strict)
    (Throughput.evaluate (Throughput.Ph_times (Markov.Ph.exponential ~rate:1.0)) small
       Model.Strict);
  (* simulation spec runs and lands in the NBUE sandwich *)
  let simulated =
    Throughput.evaluate
      (Throughput.Simulated
         { family = (fun mu -> Dist.Uniform (0.5 *. mu, 1.5 *. mu)); seed = 4; data_sets = 30_000 })
      mapping Model.Overlap
  in
  let b = Bounds.compute mapping Model.Overlap in
  Alcotest.(check bool) "simulated within bounds" true (Bounds.contains b simulated)


let qcheck_erlang_monotone_in_phases =
  (* Erlang-k is stochastically "more deterministic" as k grows: the exact
     throughput must be nondecreasing in k and capped by the bounds *)
  QCheck.Test.make ~name:"erlang exact value monotone in the phase count" ~count:8
    QCheck.small_int
    (fun seed ->
      let g = Prng.create ~seed:(seed + 60) in
      let pairs = [| (2, 3); (3, 4); (1, 2); (2, 5) |] in
      let u, v = pairs.(Prng.int g (Array.length pairs)) in
      let mapping = Workload.Scenarios.single_communication ~u ~v () in
      let b = Bounds.compute mapping Model.Overlap in
      let values =
        List.map (fun k -> Expo.overlap_throughput_erlang ~phases:k mapping) [ 1; 2; 3; 5 ]
      in
      let rec monotone = function
        | a :: (b' :: _ as rest) -> a <= b' +. 1e-9 && monotone rest
        | _ -> true
      in
      monotone values
      && List.for_all
           (fun x -> x >= b.Bounds.lower -. 1e-9 && x <= b.Bounds.upper +. 1e-9)
           values)

let () =
  Alcotest.run "expo"
    [
      ( "closed forms",
        [
          Alcotest.test_case "single stage" `Quick test_single_stage_rate;
          Alcotest.test_case "fig13 grid" `Quick test_fig13_closed_form_grid;
          Alcotest.test_case "fig15 ratio" `Quick test_fig15_ratio_formula;
          Alcotest.test_case "closed_form_only" `Quick test_closed_form_only_flag;
        ] );
      ( "cross validation",
        [
          Alcotest.test_case "strict markov vs DES" `Slow test_strict_markov_vs_des;
          Alcotest.test_case "decomposition vs bounded markov" `Slow
            test_overlap_decomposition_vs_bounded_markov;
          Alcotest.test_case "decomposition vs simulators" `Slow test_overlap_decomposition_vs_sims;
          Alcotest.test_case "per-row composition" `Slow test_per_row_composition;
          QCheck_alcotest.to_alcotest qcheck_exponential_below_deterministic;
          QCheck_alcotest.to_alcotest qcheck_throughput_dispatch;
          QCheck_alcotest.to_alcotest qcheck_strict_below_overlap;
          QCheck_alcotest.to_alcotest qcheck_columns_partition_rows;
        ] );
      ( "erlang phase-type",
        [
          Alcotest.test_case "matches DES" `Slow test_erlang_matches_des;
          Alcotest.test_case "within Theorem 7 bounds" `Quick test_erlang_within_bounds;
          Alcotest.test_case "strict erlang" `Quick test_strict_erlang;
          Alcotest.test_case "hyperexponential matches DES" `Slow test_ph_hyper_matches_des;
          Alcotest.test_case "throughput facade" `Quick test_throughput_facade;
          QCheck_alcotest.to_alcotest qcheck_erlang_monotone_in_phases;
        ] );
    ]
