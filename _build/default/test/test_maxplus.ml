let check_float tol = Alcotest.(check (float tol))

let test_scalars () =
  check_float 1e-12 "oplus is max" 5.0 (Maxplus.oplus 3.0 5.0);
  check_float 1e-12 "otimes is plus" 8.0 (Maxplus.otimes 3.0 5.0);
  Alcotest.(check bool) "epsilon absorbs otimes" true
    (Maxplus.otimes Maxplus.epsilon 3.0 = Maxplus.epsilon);
  check_float 1e-12 "epsilon neutral for oplus" 3.0 (Maxplus.oplus Maxplus.epsilon 3.0);
  check_float 1e-12 "zero neutral for otimes" 3.0 (Maxplus.otimes Maxplus.zero 3.0)

let test_identity_mul () =
  let a = [| [| 1.0; Maxplus.epsilon |]; [| 2.0; 3.0 |] |] in
  let prod = Maxplus.mul (Maxplus.eye 2) a in
  Alcotest.(check bool) "I (x) a = a" true (prod = a)

let test_mul_known () =
  let a = [| [| 1.0; 2.0 |]; [| Maxplus.epsilon; 0.0 |] |] in
  let b = [| [| 0.0; Maxplus.epsilon |]; [| 3.0; 1.0 |] |] in
  let c = Maxplus.mul a b in
  (* c00 = max(1+0, 2+3) = 5; c01 = max(eps, 2+1) = 3 *)
  check_float 1e-12 "c00" 5.0 c.(0).(0);
  check_float 1e-12 "c01" 3.0 c.(0).(1);
  check_float 1e-12 "c10" 3.0 c.(1).(0);
  check_float 1e-12 "c11" 1.0 c.(1).(1)

let test_star_nilpotent () =
  (* strictly upper triangular: star converges and accumulates paths *)
  let e = Maxplus.epsilon in
  let a = [| [| e; 2.0; e |]; [| e; e; 3.0 |]; [| e; e; e |] |] in
  let s = Maxplus.star a in
  check_float 1e-12 "diag is 0" 0.0 s.(0).(0);
  check_float 1e-12 "direct edge" 2.0 s.(0).(1);
  check_float 1e-12 "two-step path" 5.0 s.(0).(2)

let test_star_diverges () =
  let a = [| [| 1.0 |] |] in
  Alcotest.check_raises "positive cycle" (Failure "Maxplus.star: diverges (positive-weight cycle)")
    (fun () -> ignore (Maxplus.star a))

let test_star_zero_cycle () =
  (* a zero-weight cycle is fine: star converges *)
  let a = [| [| 0.0 |] |] in
  let s = Maxplus.star a in
  check_float 1e-12 "star of zero self-loop" 0.0 s.(0).(0)

let test_cycle_time_self_loop () =
  let a = [| [| 4.0 |] |] in
  check_float 1e-9 "growth rate" 4.0 (Maxplus.cycle_time a [| 0.0 |])

let test_cycle_time_two_cycle () =
  let e = Maxplus.epsilon in
  (* x0(n) = x1(n-1) + 2 ; x1(n) = x0(n-1) + 6: growth (2+6)/2 = 4 *)
  let a = [| [| e; 2.0 |]; [| 6.0; e |] |] in
  check_float 1e-9 "average cycle" 4.0 (Maxplus.cycle_time a [| 0.0; 0.0 |])

let test_cycle_time_max_of_components () =
  let e = Maxplus.epsilon in
  let a = [| [| 3.0; e |]; [| e; 7.0 |] |] in
  check_float 1e-9 "max growth" 7.0 (Maxplus.cycle_time a [| 0.0; 0.0 |])

let qcheck_mul_associative =
  QCheck.Test.make ~name:"matrix multiplication associative" ~count:100
    QCheck.(small_int)
    (fun seed ->
      let g = Prng.create ~seed:(seed + 1) in
      let n = 1 + Prng.int g 5 in
      let random () =
        Array.init n (fun _ ->
            Array.init n (fun _ ->
                if Prng.float g < 0.3 then Maxplus.epsilon else Prng.uniform g 0.0 9.0))
      in
      let a = random () and b = random () and c = random () in
      let lhs = Maxplus.mul (Maxplus.mul a b) c and rhs = Maxplus.mul a (Maxplus.mul b c) in
      let close x y =
        (x = Maxplus.epsilon && y = Maxplus.epsilon) || abs_float (x -. y) < 1e-9
      in
      Array.for_all2 (fun ra rb -> Array.for_all2 close ra rb) lhs rhs)


(* -- exact eigenvalue -- *)

let test_eigenvalue_self_loop () =
  check_float 1e-12 "self loop" 4.0 (Option.get (Maxplus.eigenvalue [| [| 4.0 |] |]))

let test_eigenvalue_two_cycle () =
  let e = Maxplus.epsilon in
  let a = [| [| e; 2.0 |]; [| 6.0; e |] |] in
  check_float 1e-9 "period-2 orbit" 4.0 (Option.get (Maxplus.eigenvalue a))

let test_eigenvalue_vs_estimate () =
  let e = Maxplus.epsilon in
  let a = [| [| 1.0; 5.0; e |]; [| e; e; 3.0 |]; [| 2.5; e; 0.5 |] |] in
  let exact = Option.get (Maxplus.eigenvalue a) in
  (* critical cycle 0 -> 1 -> 2 -> 0 of mean (5 + 3 + 2.5)/3 *)
  check_float 1e-12 "exact eigenvalue" 3.5 exact;
  (* the slope estimator carries O(transient/iterations) bias *)
  let estimate = Maxplus.cycle_time ~iterations:2000 a [| 0.0; 0.0; 0.0 |] in
  check_float 1e-2 "estimate close to the eigenvalue" exact estimate

let qcheck_eigenvalue_matches_howard =
  QCheck.Test.make ~name:"maxplus eigenvalue = Howard max cycle mean" ~count:100
    QCheck.(pair (int_range 1 8) small_int)
    (fun (n, seed) ->
      let g = Prng.create ~seed:(seed + 9) in
      (* irreducible: backbone cycle plus random entries *)
      let a =
        Array.init n (fun i ->
            Array.init n (fun j ->
                if j = (i + 1) mod n then Prng.uniform g 0.0 8.0
                else if Prng.float g < 0.3 then Prng.uniform g 0.0 8.0
                else Maxplus.epsilon))
      in
      let graph = Graphs.Digraph.create n in
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun j w ->
              if w > Maxplus.epsilon then
                (* x_i(k) = a_ij + x_j(k-1): an edge j -> i with one token *)
                Graphs.Digraph.add_edge graph ~src:j ~dst:i ~weight:w ~tokens:1 ())
            row)
        a;
      match (Maxplus.eigenvalue a, Graphs.Howard.max_cycle_ratio graph) with
      | Some ev, Some howard -> abs_float (ev -. howard) < 1e-6
      | _ -> false)

let () =
  Alcotest.run "maxplus"
    [
      ( "algebra",
        [
          Alcotest.test_case "scalars" `Quick test_scalars;
          Alcotest.test_case "identity" `Quick test_identity_mul;
          Alcotest.test_case "mul known" `Quick test_mul_known;
          Alcotest.test_case "star nilpotent" `Quick test_star_nilpotent;
          Alcotest.test_case "star diverges" `Quick test_star_diverges;
          Alcotest.test_case "star zero cycle" `Quick test_star_zero_cycle;
          QCheck_alcotest.to_alcotest qcheck_mul_associative;
        ] );
      ( "cycle time",
        [
          Alcotest.test_case "self loop" `Quick test_cycle_time_self_loop;
          Alcotest.test_case "two cycle" `Quick test_cycle_time_two_cycle;
          Alcotest.test_case "components" `Quick test_cycle_time_max_of_components;
        ] );
      ( "eigenvalue",
        [
          Alcotest.test_case "self loop" `Quick test_eigenvalue_self_loop;
          Alcotest.test_case "two cycle" `Quick test_eigenvalue_two_cycle;
          Alcotest.test_case "matches estimate" `Quick test_eigenvalue_vs_estimate;
          QCheck_alcotest.to_alcotest qcheck_eigenvalue_matches_howard;
        ] );
    ]
