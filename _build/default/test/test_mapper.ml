open Streaming

let check_float tol = Alcotest.(check (float tol))

let random_instance seed ~n_stages ~n_procs =
  let g = Prng.create ~seed in
  let app =
    Application.create
      ~work:(Array.init n_stages (fun _ -> Prng.uniform g 1.0 10.0))
      ~files:(Array.init (n_stages - 1) (fun _ -> Prng.uniform g 0.2 2.0))
  in
  let speeds = Array.init n_procs (fun _ -> Prng.uniform g 0.5 2.0) in
  let platform = Platform.fully_connected ~speeds ~bw:1.0 in
  (app, platform)

let test_baseline_structure () =
  let app, platform = random_instance 1 ~n_stages:3 ~n_procs:8 in
  let mapping = Mapper.baseline_fastest ~app ~platform () in
  Alcotest.(check (list int)) "one processor per stage" [ 1; 1; 1 ]
    (Array.to_list (Mapping.replication mapping));
  (* the heaviest stage got the fastest processor *)
  let heaviest =
    List.init 3 Fun.id
    |> List.sort (fun i j -> compare (Application.work app j) (Application.work app i))
    |> List.hd
  in
  let fastest =
    List.init 8 Fun.id
    |> List.sort (fun p q -> compare (Platform.speed platform q) (Platform.speed platform p))
    |> List.hd
  in
  Alcotest.(check int) "fastest on heaviest" fastest (Mapping.team mapping heaviest).(0)

let test_baseline_pool_too_small () =
  let app, platform = random_instance 2 ~n_stages:3 ~n_procs:8 in
  Alcotest.check_raises "pool too small"
    (Invalid_argument "Mapper: pool smaller than the number of stages") (fun () ->
      ignore (Mapper.baseline_fastest ~app ~platform ~pool:[ 0; 1 ] ()))

let test_evaluate_matches_analysis () =
  let app, platform = random_instance 3 ~n_stages:3 ~n_procs:9 in
  let mapping = Mapper.baseline_fastest ~app ~platform () in
  check_float 1e-9 "deterministic metric"
    (Deterministic.overlap_throughput_decomposed mapping)
    (Mapper.evaluate Mapper.Deterministic mapping);
  check_float 1e-9 "exponential metric" (Expo.overlap_throughput mapping)
    (Mapper.evaluate Mapper.Exponential mapping)

let qcheck_greedy_beats_baseline =
  QCheck.Test.make ~name:"greedy never falls below the no-replication baseline" ~count:25
    QCheck.(pair small_int (int_range 2 4))
    (fun (seed, n_stages) ->
      let app, platform = random_instance (seed + 10) ~n_stages ~n_procs:(n_stages + 5) in
      let baseline = Mapper.baseline_fastest ~app ~platform () in
      let greedy = Mapper.greedy ~metric:Mapper.Deterministic ~app ~platform () in
      Mapper.evaluate Mapper.Deterministic greedy
      >= Mapper.evaluate Mapper.Deterministic baseline -. 1e-9)

let qcheck_greedy_valid_mapping =
  QCheck.Test.make ~name:"greedy produces a valid mapping over the pool" ~count:25
    QCheck.small_int
    (fun seed ->
      let app, platform = random_instance (seed + 50) ~n_stages:3 ~n_procs:8 in
      let pool = [ 0; 2; 3; 5; 6; 7 ] in
      let mapping = Mapper.greedy ~metric:Mapper.Deterministic ~app ~platform ~pool () in
      let used =
        List.concat_map (fun i -> Array.to_list (Mapping.team mapping i)) [ 0; 1; 2 ]
      in
      List.for_all (fun p -> List.mem p pool) used
      && List.length used = List.length (List.sort_uniq compare used))

let qcheck_exhaustive_beats_greedy_homogeneous =
  (* on identical processors greedy only explores a subset of the
     compositions the exhaustive search ranks *)
  QCheck.Test.make ~name:"exhaustive >= greedy on homogeneous platforms" ~count:15
    QCheck.(pair small_int (int_range 2 3))
    (fun (seed, n_stages) ->
      let g = Prng.create ~seed:(seed + 80) in
      let app =
        Application.create
          ~work:(Array.init n_stages (fun _ -> Prng.uniform g 1.0 10.0))
          ~files:(Array.init (n_stages - 1) (fun _ -> Prng.uniform g 0.2 2.0))
      in
      let platform = Platform.fully_connected ~speeds:(Array.make (n_stages + 4) 1.0) ~bw:1.0 in
      let greedy = Mapper.greedy ~metric:Mapper.Deterministic ~app ~platform () in
      let exhaustive = Mapper.exhaustive ~metric:Mapper.Deterministic ~app ~platform () in
      Mapper.evaluate Mapper.Deterministic exhaustive
      >= Mapper.evaluate Mapper.Deterministic greedy -. 1e-9)

let test_greedy_replicates_bottleneck () =
  (* one stage 10x heavier than the rest: greedy must replicate it *)
  let app = Application.create ~work:[| 1.0; 20.0; 1.0 |] ~files:[| 0.1; 0.1 |] in
  let platform = Platform.fully_connected ~speeds:(Array.make 9 1.0) ~bw:1.0 in
  let mapping = Mapper.greedy ~metric:Mapper.Exponential ~app ~platform () in
  Alcotest.(check bool) "bottleneck stage replicated" true
    ((Mapping.replication mapping).(1) >= 3);
  let baseline = Mapper.baseline_fastest ~app ~platform () in
  let gain =
    Mapper.evaluate Mapper.Exponential mapping /. Mapper.evaluate Mapper.Exponential baseline
  in
  Alcotest.(check bool) (Printf.sprintf "gain %.2f >= 2.5" gain) true (gain >= 2.5)

let () =
  Alcotest.run "mapper"
    [
      ( "baseline",
        [
          Alcotest.test_case "structure" `Quick test_baseline_structure;
          Alcotest.test_case "pool too small" `Quick test_baseline_pool_too_small;
          Alcotest.test_case "evaluate" `Quick test_evaluate_matches_analysis;
        ] );
      ( "heuristics",
        [
          QCheck_alcotest.to_alcotest qcheck_greedy_beats_baseline;
          QCheck_alcotest.to_alcotest qcheck_greedy_valid_mapping;
          QCheck_alcotest.to_alcotest qcheck_exhaustive_beats_greedy_homogeneous;
          Alcotest.test_case "bottleneck replication" `Quick test_greedy_replicates_bottleneck;
        ] );
    ]
