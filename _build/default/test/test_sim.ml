open Streaming

let check_float tol = Alcotest.(check (float tol))

let random_mapping seed =
  let g = Prng.create ~seed in
  Workload.Gen.random_mapping g
    {
      Workload.Gen.n_stages = 2 + Prng.int g 4;
      n_procs = 6 + Prng.int g 8;
      comp_range = (5.0, 15.0);
      comm_range = (5.0, 15.0);
      max_rows = 60;
    }

(* §7.4 fidelity: with deterministic times, the event-graph recurrence and
   the operational discrete-event simulation compute the same greedy
   schedule, so per-data-set completion times must agree exactly. *)
let qcheck_des_equals_eg_sim_deterministic =
  QCheck.Test.make ~name:"DES completions = event-graph completions (deterministic)" ~count:25
    QCheck.(pair small_int (oneofl Model.all))
    (fun (seed, model) ->
      let mapping = random_mapping (seed + 1) in
      let data_sets = 4 * Mapping.rows mapping in
      let des =
        Des.Pipeline_sim.completions mapping model
          ~timing:(Des.Pipeline_sim.Independent (Laws.deterministic mapping))
          ~seed:0 ~data_sets
      in
      let egs =
        Teg_sim.completions mapping model ~laws:(Laws.deterministic mapping) ~seed:0 ~data_sets
      in
      (* both series are truncated at their common-activity horizon, which
         may differ slightly (egs rounds data_sets up to whole rounds);
         compare the common prefix *)
      let k = min (Array.length des) (Array.length egs) in
      k > data_sets / 2
      && Array.for_all2
           (fun a b -> abs_float (a -. b) < 1e-9 *. (1.0 +. abs_float a))
           (Array.sub des 0 k) (Array.sub egs 0 k))

let test_des_engine_cycle_detection () =
  let e = Des.Engine.create ~n_tasks:2 in
  Des.Engine.add_dep e ~task:0 ~after:1;
  Des.Engine.add_dep e ~task:1 ~after:0;
  Alcotest.check_raises "cycle"
    (Failure "Engine.run: dependency cycle, some tasks never became ready") (fun () ->
      ignore (Des.Engine.run e ~duration:(fun _ -> 1.0)))

let test_des_engine_chain () =
  let e = Des.Engine.create ~n_tasks:3 in
  Des.Engine.add_dep e ~task:1 ~after:0;
  Des.Engine.add_dep e ~task:2 ~after:1;
  let completion = Des.Engine.run e ~duration:(fun i -> float_of_int (i + 1)) in
  check_float 1e-12 "t0" 1.0 completion.(0);
  check_float 1e-12 "t1" 3.0 completion.(1);
  check_float 1e-12 "t2" 6.0 completion.(2)

let test_des_engine_diamond () =
  let e = Des.Engine.create ~n_tasks:4 in
  Des.Engine.add_dep e ~task:1 ~after:0;
  Des.Engine.add_dep e ~task:2 ~after:0;
  Des.Engine.add_dep e ~task:3 ~after:1;
  Des.Engine.add_dep e ~task:3 ~after:2;
  let durations = [| 1.0; 5.0; 2.0; 1.0 |] in
  let completion = Des.Engine.run e ~duration:(fun i -> durations.(i)) in
  check_float 1e-12 "join waits for the slow branch" 7.0 completion.(3)

let test_same_seed_reproducible () =
  let mapping = random_mapping 7 in
  let run () =
    Des.Pipeline_sim.throughput mapping Model.Overlap
      ~timing:(Des.Pipeline_sim.Independent (Laws.exponential mapping))
      ~seed:123 ~data_sets:2000
  in
  check_float 0.0 "bitwise reproducible" (run ()) (run ())

let test_different_seeds_differ () =
  let mapping = random_mapping 7 in
  let run seed =
    Des.Pipeline_sim.throughput mapping Model.Overlap
      ~timing:(Des.Pipeline_sim.Independent (Laws.exponential mapping))
      ~seed ~data_sets:2000
  in
  Alcotest.(check bool) "seeds matter" true (run 1 <> run 2)

let test_deterministic_dist_equals_deterministic_theory () =
  (* DES with Deterministic laws reproduces the critical-cycle value *)
  List.iter
    (fun model ->
      let mapping = Workload.Scenarios.example_a in
      let theory = Deterministic.throughput mapping model in
      let sim =
        Des.Pipeline_sim.throughput mapping model
          ~timing:(Des.Pipeline_sim.Independent (Laws.deterministic mapping))
          ~seed:0 ~data_sets:6000
      in
      check_float (1e-6 *. theory) (Model.to_string model) theory sim)
    Model.all

let test_exponential_des_vs_eg_sim () =
  let mapping = Workload.Scenarios.example_a in
  let des =
    Des.Pipeline_sim.throughput mapping Model.Overlap
      ~timing:(Des.Pipeline_sim.Independent (Laws.exponential mapping))
      ~seed:21 ~data_sets:60_000
  in
  let egs =
    Teg_sim.throughput mapping Model.Overlap ~laws:(Laws.exponential mapping) ~seed:22
      ~data_sets:60_000
  in
  Alcotest.(check bool)
    (Printf.sprintf "des %.5f vs egsim %.5f" des egs)
    true
    (abs_float (des -. egs) /. des < 0.02)

let test_associated_deterministic_sizes () =
  (* associated mode with constant sizes equals the deterministic case *)
  let mapping = Workload.Scenarios.example_a in
  let app = Mapping.app mapping in
  let timing =
    Des.Pipeline_sim.Associated
      {
        work = (fun i -> Dist.Deterministic (Application.work app i));
        files = (fun i -> Dist.Deterministic (Application.file_size app i));
      }
  in
  let theory = Deterministic.throughput mapping Model.Overlap in
  let sim = Des.Pipeline_sim.throughput mapping Model.Overlap ~timing ~seed:0 ~data_sets:6000 in
  check_float (1e-6 *. theory) "associated constant = deterministic" theory sim

let test_associated_random_sizes_run () =
  (* Theorem 8: with associated N.B.U.E. sizes the throughput still sits
     below the deterministic bound *)
  let mapping = Workload.Scenarios.example_a in
  let app = Mapping.app mapping in
  let timing =
    Des.Pipeline_sim.Associated
      {
        work = (fun i -> Dist.with_mean (Dist.Uniform (0.5, 1.5)) (Application.work app i));
        files = (fun i -> Dist.with_mean (Dist.Uniform (0.5, 1.5)) (Application.file_size app i));
      }
  in
  let det = Deterministic.throughput mapping Model.Overlap in
  let sim = Des.Pipeline_sim.throughput mapping Model.Overlap ~timing ~seed:5 ~data_sets:40_000 in
  Alcotest.(check bool)
    (Printf.sprintf "associated %.5f <= det %.5f" sim det)
    true
    (sim <= det *. 1.005)

let test_throughput_estimator_on_exact_series () =
  let mapping = Workload.Scenarios.example_a in
  let completions =
    Teg_sim.completions mapping Model.Overlap ~laws:(Laws.deterministic mapping) ~seed:0
      ~data_sets:3000
  in
  Alcotest.(check bool) "sorted" true
    (Array.for_all2 ( <= ) (Array.sub completions 0 (Array.length completions - 1))
       (Array.sub completions 1 (Array.length completions - 1)))


(* -- release dates and latency -- *)

let test_release_slows_throughput () =
  (* admitting below capacity: the output rate equals the admission rate *)
  let mapping = Workload.Scenarios.example_a in
  let capacity = Deterministic.throughput mapping Model.Overlap in
  let rate = 0.5 *. capacity in
  let release n = float_of_int n /. rate in
  let rho =
    Des.Pipeline_sim.throughput ~release mapping Model.Overlap
      ~timing:(Des.Pipeline_sim.Independent (Laws.deterministic mapping))
      ~seed:0 ~data_sets:5_000
  in
  check_float (1e-6 *. rate) "output = admission" rate rho

let test_latency_isolated () =
  (* releases far apart: each data set crosses an empty pipeline, so its
     latency is the sum of the operation times along its path *)
  let mapping = Workload.Scenarios.example_a in
  let huge_gap n = 1e7 *. float_of_int n in
  let lats =
    Des.Pipeline_sim.latencies ~release:huge_gap mapping Model.Overlap
      ~timing:(Des.Pipeline_sim.Independent (Laws.deterministic mapping))
      ~seed:0 ~data_sets:(2 * Mapping.rows mapping)
  in
  let app = Mapping.app mapping in
  let n = Application.n_stages app in
  Array.iteri
    (fun ds lat ->
      let rec path stage acc =
        if stage = n then acc
        else
          let p = Mapping.proc_at mapping ~stage ~row:ds in
          let acc = acc +. Mapping.comp_time mapping ~stage ~proc:p in
          if stage = n - 1 then acc
          else
            let q = Mapping.proc_at mapping ~stage:(stage + 1) ~row:ds in
            path (stage + 1) (acc +. Mapping.comm_time mapping ~file:stage ~src:p ~dst:q)
      in
      check_float 1e-6 (Printf.sprintf "data set %d" ds) (path 0 0.0) lat)
    lats

let test_latency_increases_with_load () =
  let mapping = Workload.Scenarios.example_a in
  let capacity = Expo.overlap_throughput mapping in
  let mean_latency f =
    let release n = float_of_int n /. (f *. capacity) in
    let lats =
      Des.Pipeline_sim.latencies ~release mapping Model.Overlap
        ~timing:(Des.Pipeline_sim.Independent (Laws.exponential mapping))
        ~seed:5 ~data_sets:8_000
    in
    Stats.Summary.mean (Stats.Summary.of_list (Array.to_list lats))
  in
  let l30 = mean_latency 0.3 and l80 = mean_latency 0.8 and l99 = mean_latency 0.99 in
  Alcotest.(check bool)
    (Printf.sprintf "monotone: %.0f < %.0f < %.0f" l30 l80 l99)
    true
    (l30 < l80 && l80 < l99)


let test_decoupled_rows_strict () =
  (* under Strict the rows of this mapping are also decoupled chains; the
     per-weak-component analysis must match both simulators *)
  let app = Application.create ~work:[| 6.0; 6.0 |] ~files:[| 0.01 |] in
  let speeds = [| 2.0; 1.0; 0.5; 2.0; 1.0; 0.5 |] in
  let platform = Platform.fully_connected ~speeds ~bw:100.0 in
  let mapping = Mapping.create ~app ~platform ~teams:[| [| 0; 1; 2 |]; [| 3; 4; 5 |] |] in
  let theory = Deterministic.throughput mapping Model.Strict in
  let egs =
    Teg_sim.throughput mapping Model.Strict ~laws:(Laws.deterministic mapping) ~seed:1
      ~data_sets:30_000
  in
  let des =
    Des.Pipeline_sim.throughput mapping Model.Strict
      ~timing:(Des.Pipeline_sim.Independent (Laws.deterministic mapping))
      ~seed:1 ~data_sets:30_000
  in
  check_float (1e-6 *. theory) "eg_sim matches per-component theory" theory egs;
  check_float (1e-6 *. theory) "DES matches per-component theory" theory des

let test_decoupled_rows_estimator () =
  (* regression: with every team of size m the rows are fully decoupled
     chains of different speeds; the throughput is the SUM of the row
     rates, which the estimator only sees if it stops measuring when the
     fastest row runs out of simulated data sets *)
  let app = Application.create ~work:[| 6.0; 6.0 |] ~files:[| 0.01 |] in
  let speeds = [| 2.0; 1.0; 0.5; 2.0; 1.0; 0.5 |] in
  let platform = Platform.fully_connected ~speeds ~bw:100.0 in
  let mapping = Mapping.create ~app ~platform ~teams:[| [| 0; 1; 2 |]; [| 3; 4; 5 |] |] in
  (* rows: (2,2), (1,1), (0.5,0.5) -> rates 1/3 + 1/6 + 1/12 = 7/12 *)
  let expected = 7.0 /. 12.0 in
  check_float (1e-6 *. expected) "decomposition" expected
    (Deterministic.overlap_throughput_decomposed mapping);
  let egs =
    Teg_sim.throughput mapping Model.Overlap ~laws:(Laws.deterministic mapping) ~seed:1
      ~data_sets:30_000
  in
  check_float (1e-6 *. expected) "eg_sim" expected egs;
  let des =
    Des.Pipeline_sim.throughput mapping Model.Overlap
      ~timing:(Des.Pipeline_sim.Independent (Laws.deterministic mapping))
      ~seed:1 ~data_sets:30_000
  in
  check_float (1e-6 *. expected) "DES" expected des

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "cycle detection" `Quick test_des_engine_cycle_detection;
          Alcotest.test_case "chain" `Quick test_des_engine_chain;
          Alcotest.test_case "diamond" `Quick test_des_engine_diamond;
        ] );
      ( "fidelity",
        [
          QCheck_alcotest.to_alcotest qcheck_des_equals_eg_sim_deterministic;
          Alcotest.test_case "deterministic laws" `Slow test_deterministic_dist_equals_deterministic_theory;
          Alcotest.test_case "exponential des vs egsim" `Slow test_exponential_des_vs_eg_sim;
        ] );
      ( "modes",
        [
          Alcotest.test_case "reproducible" `Quick test_same_seed_reproducible;
          Alcotest.test_case "seed sensitivity" `Quick test_different_seeds_differ;
          Alcotest.test_case "associated constant" `Slow test_associated_deterministic_sizes;
          Alcotest.test_case "associated random" `Slow test_associated_random_sizes_run;
          Alcotest.test_case "completions sorted" `Quick test_throughput_estimator_on_exact_series;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "decoupled rows estimator" `Quick test_decoupled_rows_estimator;
          Alcotest.test_case "decoupled rows strict" `Quick test_decoupled_rows_strict;
        ] );
      ( "latency",
        [
          Alcotest.test_case "admission-limited throughput" `Quick test_release_slows_throughput;
          Alcotest.test_case "isolated latency" `Quick test_latency_isolated;
          Alcotest.test_case "monotone in load" `Slow test_latency_increases_with_load;
        ] );
    ]
