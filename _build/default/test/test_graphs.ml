open Graphs

let check_float tol = Alcotest.(check (float tol))

let add g src dst weight tokens = Digraph.add_edge g ~src ~dst ~weight ~tokens ()

let test_topo_dag () =
  let g = Digraph.create 4 in
  add g 0 1 0.0 0;
  add g 1 2 0.0 0;
  add g 0 3 0.0 0;
  add g 3 2 0.0 0;
  match Digraph.topological_order g with
  | None -> Alcotest.fail "expected a topological order"
  | Some order ->
      let pos = Array.make 4 0 in
      List.iteri (fun i v -> pos.(v) <- i) order;
      Alcotest.(check bool) "0 before 1" true (pos.(0) < pos.(1));
      Alcotest.(check bool) "1 before 2" true (pos.(1) < pos.(2));
      Alcotest.(check bool) "3 before 2" true (pos.(3) < pos.(2))

let test_topo_cycle () =
  let g = Digraph.create 2 in
  add g 0 1 0.0 0;
  add g 1 0 0.0 0;
  Alcotest.(check bool) "cycle has no topo order" true (Digraph.topological_order g = None)

let test_zero_token_acyclic () =
  let g = Digraph.create 2 in
  add g 0 1 0.0 0;
  add g 1 0 0.0 1;
  Alcotest.(check bool) "token breaks the cycle" true (Digraph.zero_token_acyclic g);
  let g2 = Digraph.create 2 in
  add g2 0 1 0.0 0;
  add g2 1 0 0.0 0;
  Alcotest.(check bool) "tokenless cycle detected" false (Digraph.zero_token_acyclic g2)

let test_sccs_known () =
  let g = Digraph.create 5 in
  add g 0 1 0.0 0;
  add g 1 2 0.0 0;
  add g 2 0 0.0 0;
  add g 2 3 0.0 0;
  add g 3 4 0.0 0;
  let sccs = List.map (List.sort compare) (Digraph.sccs g) in
  let sorted = List.sort compare sccs in
  Alcotest.(check (list (list int))) "components" [ [ 0; 1; 2 ]; [ 3 ]; [ 4 ] ] sorted

let qcheck_sccs_partition =
  QCheck.Test.make ~name:"SCCs partition the nodes" ~count:200
    QCheck.(pair (int_range 1 20) small_int)
    (fun (n, seed) ->
      let g = Digraph.create n in
      let rng = Prng.create ~seed:(seed + 3) in
      for _ = 1 to 3 * n do
        add g (Prng.int rng n) (Prng.int rng n) 0.0 0
      done;
      let all = List.concat (Digraph.sccs g) in
      List.length all = n && List.sort compare all = List.init n Fun.id)

let test_reachable () =
  let g = Digraph.create 4 in
  add g 0 1 0.0 0;
  add g 1 2 0.0 0;
  let r = Digraph.reachable g 0 in
  Alcotest.(check bool) "0 reaches 2" true r.(2);
  Alcotest.(check bool) "0 does not reach 3" false r.(3)

(* -- cycle ratios -- *)

let test_self_loop_ratio () =
  let g = Digraph.create 1 in
  add g 0 0 5.0 1;
  match Cycle_ratio.max_cycle_ratio g with
  | None -> Alcotest.fail "expected a cycle"
  | Some { Cycle_ratio.ratio; cycle } ->
      check_float 1e-9 "ratio" 5.0 ratio;
      Alcotest.(check int) "cycle length" 1 (List.length cycle)

let test_two_cycles_max () =
  let g = Digraph.create 4 in
  (* cycle A: 0->1->0 with total weight 6, 1 token -> ratio 6 *)
  add g 0 1 2.0 0;
  add g 1 0 4.0 1;
  (* cycle B: 2->3->2 with total weight 10, 2 tokens -> ratio 5 *)
  add g 2 3 5.0 1;
  add g 3 2 5.0 1;
  match Cycle_ratio.max_cycle_ratio g with
  | None -> Alcotest.fail "expected a cycle"
  | Some { Cycle_ratio.ratio; _ } -> check_float 1e-9 "max ratio" 6.0 ratio

let test_tokens_divide_ratio () =
  let g = Digraph.create 2 in
  add g 0 1 3.0 1;
  add g 1 0 3.0 1;
  match Cycle_ratio.max_cycle_ratio g with
  | None -> Alcotest.fail "expected a cycle"
  | Some { Cycle_ratio.ratio; _ } -> check_float 1e-9 "ratio 6/2" 3.0 ratio

let test_unbounded () =
  let g = Digraph.create 2 in
  add g 0 1 1.0 0;
  add g 1 0 1.0 0;
  Alcotest.check_raises "zero-token cycle" Cycle_ratio.Unbounded (fun () ->
      ignore (Cycle_ratio.max_cycle_ratio g))

let test_acyclic_none () =
  let g = Digraph.create 3 in
  add g 0 1 1.0 0;
  add g 1 2 1.0 1;
  Alcotest.(check bool) "acyclic" true (Cycle_ratio.max_cycle_ratio g = None)

let test_witness_consistency () =
  let g = Digraph.create 3 in
  add g 0 1 1.0 1;
  add g 1 2 2.0 0;
  add g 2 0 3.5 1;
  match Cycle_ratio.max_cycle_ratio g with
  | None -> Alcotest.fail "expected a cycle"
  | Some { Cycle_ratio.ratio; cycle } ->
      let weight = List.fold_left (fun acc e -> acc +. e.Digraph.weight) 0.0 cycle in
      let tokens = List.fold_left (fun acc e -> acc + e.Digraph.tokens) 0 cycle in
      check_float 1e-9 "witness ratio matches" ratio (weight /. float_of_int tokens);
      check_float 1e-9 "ratio value" 3.25 ratio

let random_unit_token_graph rng n =
  let g = Digraph.create n in
  (* guarantee at least one cycle *)
  for v = 0 to n - 1 do
    add g v ((v + 1) mod n) (Prng.uniform rng 0.0 10.0) 1
  done;
  for _ = 1 to 2 * n do
    add g (Prng.int rng n) (Prng.int rng n) (Prng.uniform rng 0.0 10.0) 1
  done;
  g

let qcheck_karp_matches_lawler =
  QCheck.Test.make ~name:"Karp cycle mean = Lawler ratio on unit-token graphs" ~count:150
    QCheck.(pair (int_range 2 12) small_int)
    (fun (n, seed) ->
      let rng = Prng.create ~seed:(seed + 31) in
      let g = random_unit_token_graph rng n in
      match (Cycle_ratio.max_cycle_ratio g, Cycle_ratio.karp_max_cycle_mean g) with
      | Some { Cycle_ratio.ratio; _ }, Some mean -> abs_float (ratio -. mean) < 1e-6
      | _ -> false)

let qcheck_ratio_scale_invariance =
  QCheck.Test.make ~name:"scaling weights scales the ratio" ~count:100
    QCheck.(pair (int_range 2 10) small_int)
    (fun (n, seed) ->
      let rng = Prng.create ~seed:(seed + 47) in
      let g = random_unit_token_graph rng n in
      let factor = 3.0 in
      let g2 = Digraph.create n in
      List.iter
        (fun e ->
          Digraph.add_edge g2 ~src:e.Digraph.src ~dst:e.Digraph.dst
            ~weight:(factor *. e.Digraph.weight) ~tokens:e.Digraph.tokens ())
        (Digraph.edges g);
      match (Cycle_ratio.max_cycle_ratio g, Cycle_ratio.max_cycle_ratio g2) with
      | Some a, Some b -> abs_float ((factor *. a.Cycle_ratio.ratio) -. b.Cycle_ratio.ratio) < 1e-6
      | _ -> false)

(* -- Howard policy iteration -- *)

let howard_check = Alcotest.(check (float 1e-6))

let test_howard_self_loop () =
  let g = Digraph.create 1 in
  add g 0 0 5.0 1;
  match Howard.max_cycle_ratio g with
  | None -> Alcotest.fail "expected a cycle"
  | Some r -> howard_check "self loop" 5.0 r

let test_howard_acyclic () =
  let g = Digraph.create 2 in
  add g 0 1 3.0 1;
  Alcotest.(check bool) "acyclic" true (Howard.max_cycle_ratio g = None)

let test_howard_unbounded () =
  let g = Digraph.create 2 in
  add g 0 1 1.0 0;
  add g 1 0 1.0 0;
  Alcotest.check_raises "zero-token cycle" Cycle_ratio.Unbounded (fun () ->
      ignore (Howard.max_cycle_ratio g))

let test_howard_two_components () =
  let g = Digraph.create 4 in
  add g 0 1 2.0 1;
  add g 1 0 2.0 1;
  add g 2 3 9.0 1;
  add g 3 2 1.0 1;
  match Howard.max_cycle_ratio g with
  | None -> Alcotest.fail "expected cycles"
  | Some r -> howard_check "max over components" 5.0 r

let qcheck_howard_matches_lawler =
  QCheck.Test.make ~name:"Howard = Lawler on random token graphs" ~count:200
    QCheck.(pair (int_range 2 14) small_int)
    (fun (n, seed) ->
      let rng = Prng.create ~seed:(seed + 77) in
      let g = Digraph.create n in
      (* a tokened backbone cycle plus random chords *)
      for v = 0 to n - 1 do
        add g v ((v + 1) mod n) (Prng.uniform rng 0.0 10.0) 1
      done;
      for _ = 1 to 3 * n do
        add g (Prng.int rng n) (Prng.int rng n) (Prng.uniform rng 0.0 10.0) (Prng.int rng 3)
      done;
      if not (Digraph.zero_token_acyclic g) then QCheck.assume_fail ()
      else
        match (Howard.max_cycle_ratio g, Cycle_ratio.max_cycle_ratio g) with
        | Some h, Some { Cycle_ratio.ratio; _ } -> abs_float (h -. ratio) < 1e-6 *. (1.0 +. ratio)
        | None, None -> true
        | _ -> false)

let qcheck_howard_on_tpns =
  QCheck.Test.make ~name:"Howard agrees with Lawler on mapping TPNs" ~count:20 QCheck.small_int
    (fun seed ->
      let rng = Prng.create ~seed:(seed + 3000) in
      let mapping =
        Workload.Gen.random_mapping rng
          {
            Workload.Gen.n_stages = 2 + Prng.int rng 3;
            n_procs = 6 + Prng.int rng 5;
            comp_range = (5.0, 15.0);
            comm_range = (5.0, 15.0);
            max_rows = 40;
          }
      in
      List.for_all
        (fun model ->
          let g = Petrinet.Teg.to_digraph (Streaming.Tpn.teg (Streaming.Tpn.build mapping model)) in
          match (Howard.max_cycle_ratio g, Cycle_ratio.max_cycle_ratio g) with
          | Some h, Some { Cycle_ratio.ratio; _ } -> abs_float (h -. ratio) < 1e-6 *. ratio
          | _ -> false)
        Streaming.Model.all)

let () =
  Alcotest.run "graphs"
    [
      ( "structure",
        [
          Alcotest.test_case "topological order" `Quick test_topo_dag;
          Alcotest.test_case "topo detects cycles" `Quick test_topo_cycle;
          Alcotest.test_case "zero-token acyclicity" `Quick test_zero_token_acyclic;
          Alcotest.test_case "sccs known" `Quick test_sccs_known;
          Alcotest.test_case "reachable" `Quick test_reachable;
          QCheck_alcotest.to_alcotest qcheck_sccs_partition;
        ] );
      ( "cycle ratio",
        [
          Alcotest.test_case "self loop" `Quick test_self_loop_ratio;
          Alcotest.test_case "max of two cycles" `Quick test_two_cycles_max;
          Alcotest.test_case "tokens divide" `Quick test_tokens_divide_ratio;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "acyclic" `Quick test_acyclic_none;
          Alcotest.test_case "witness consistency" `Quick test_witness_consistency;
          QCheck_alcotest.to_alcotest qcheck_karp_matches_lawler;
          QCheck_alcotest.to_alcotest qcheck_ratio_scale_invariance;
        ] );
      ( "howard",
        [
          Alcotest.test_case "self loop" `Quick test_howard_self_loop;
          Alcotest.test_case "acyclic" `Quick test_howard_acyclic;
          Alcotest.test_case "unbounded" `Quick test_howard_unbounded;
          Alcotest.test_case "two components" `Quick test_howard_two_components;
          QCheck_alcotest.to_alcotest qcheck_howard_matches_lawler;
          QCheck_alcotest.to_alcotest qcheck_howard_on_tpns;
        ] );
    ]
