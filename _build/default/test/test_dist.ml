let check_float tol = Alcotest.(check (float tol))

let all_laws =
  [
    Dist.Deterministic 3.0;
    Dist.Exponential 0.5;
    Dist.Uniform (2.0, 6.0);
    Dist.Normal_trunc (10.0, 2.0);
    Dist.Gamma (2.0, 1.5);
    Dist.Gamma (0.4, 5.0);
    Dist.Beta (2.0, 3.0, 10.0);
    Dist.Beta (0.5, 0.5, 4.0);
    Dist.Erlang (3, 0.75);
    Dist.Weibull (1.5, 2.0);
    Dist.Weibull (0.7, 2.0);
    Dist.Hyperexp [ (0.5, 0.4); (0.5, 4.0) ];
  ]

let monte_carlo_mean law n =
  let g = Prng.create ~seed:1234 in
  let s = Stats.Summary.create () in
  for _ = 1 to n do
    Stats.Summary.add s (Dist.sample law g)
  done;
  s

let test_analytic_means () =
  check_float 1e-12 "deterministic" 3.0 (Dist.mean (Dist.Deterministic 3.0));
  check_float 1e-12 "exponential" 2.0 (Dist.mean (Dist.Exponential 0.5));
  check_float 1e-12 "uniform" 4.0 (Dist.mean (Dist.Uniform (2.0, 6.0)));
  check_float 1e-12 "gamma" 3.0 (Dist.mean (Dist.Gamma (2.0, 1.5)));
  check_float 1e-12 "beta" 4.0 (Dist.mean (Dist.Beta (2.0, 3.0, 10.0)));
  check_float 1e-12 "erlang" 4.0 (Dist.mean (Dist.Erlang (3, 0.75)));
  check_float 1e-12 "hyperexp" 1.375 (Dist.mean (Dist.Hyperexp [ (0.5, 0.4); (0.5, 4.0) ]));
  (* Weibull(1, s) is exponential of mean s *)
  check_float 1e-9 "weibull shape 1" 2.0 (Dist.mean (Dist.Weibull (1.0, 2.0)))

let test_analytic_variances () =
  check_float 1e-12 "deterministic" 0.0 (Dist.variance (Dist.Deterministic 3.0));
  check_float 1e-12 "exponential" 4.0 (Dist.variance (Dist.Exponential 0.5));
  check_float 1e-12 "uniform" (16.0 /. 12.0) (Dist.variance (Dist.Uniform (2.0, 6.0)));
  check_float 1e-12 "gamma" 4.5 (Dist.variance (Dist.Gamma (2.0, 1.5)));
  check_float 1e-9 "weibull shape 1" 4.0 (Dist.variance (Dist.Weibull (1.0, 2.0)))

let test_sample_means_match () =
  List.iter
    (fun law ->
      let s = monte_carlo_mean law 300_000 in
      let expected = Dist.mean law in
      let rel = abs_float (Stats.Summary.mean s -. expected) /. expected in
      Alcotest.(check bool)
        (Printf.sprintf "MC mean of %s within 2%%" (Dist.to_string law))
        true (rel < 0.02))
    all_laws

let test_sample_variances_match () =
  List.iter
    (fun law ->
      let s = monte_carlo_mean law 300_000 in
      let expected = Dist.variance law in
      let got = Stats.Summary.variance s in
      let ok =
        if expected = 0.0 then got = 0.0
        else abs_float (got -. expected) /. expected < 0.06
      in
      Alcotest.(check bool)
        (Printf.sprintf "MC variance of %s within 6%%" (Dist.to_string law))
        true ok)
    [ Dist.Exponential 0.5; Dist.Uniform (2.0, 6.0); Dist.Gamma (2.0, 1.5); Dist.Erlang (3, 0.75) ]

let test_samples_positive () =
  let g = Prng.create ~seed:99 in
  List.iter
    (fun law ->
      for _ = 1 to 5_000 do
        let x = Dist.sample law g in
        Alcotest.(check bool) (Dist.to_string law ^ " sample positive") true (x > 0.0)
      done)
    all_laws

let test_uniform_support () =
  let g = Prng.create ~seed:17 in
  for _ = 1 to 10_000 do
    let x = Dist.sample (Dist.Uniform (2.0, 6.0)) g in
    Alcotest.(check bool) "uniform support" true (x >= 2.0 && x < 6.0)
  done

let test_beta_support () =
  let g = Prng.create ~seed:18 in
  for _ = 1 to 10_000 do
    let x = Dist.sample (Dist.Beta (2.0, 3.0, 10.0)) g in
    Alcotest.(check bool) "beta support [0,10]" true (x >= 0.0 && x <= 10.0)
  done

let test_exponential_tail () =
  let g = Prng.create ~seed:23 in
  let n = 200_000 in
  let above = ref 0 in
  for _ = 1 to n do
    if Dist.sample (Dist.Exponential 0.5) g > 2.0 then incr above
  done;
  let freq = float_of_int !above /. float_of_int n in
  check_float 0.01 "P(X>2) = e^-1" (exp (-1.0)) freq

let test_nbue_classification () =
  Alcotest.(check bool) "deterministic" true (Dist.is_nbue (Dist.Deterministic 1.0));
  Alcotest.(check bool) "exponential" true (Dist.is_nbue (Dist.Exponential 1.0));
  Alcotest.(check bool) "uniform" true (Dist.is_nbue (Dist.Uniform (0.0, 2.0)));
  Alcotest.(check bool) "normal" true (Dist.is_nbue (Dist.Normal_trunc (5.0, 1.0)));
  Alcotest.(check bool) "gamma k>=1" true (Dist.is_nbue (Dist.Gamma (2.0, 1.0)));
  Alcotest.(check bool) "gamma k<1" false (Dist.is_nbue (Dist.Gamma (0.5, 1.0)));
  Alcotest.(check bool) "beta a>=1" true (Dist.is_nbue (Dist.Beta (2.0, 2.0, 1.0)));
  Alcotest.(check bool) "beta a<1" false (Dist.is_nbue (Dist.Beta (0.5, 0.5, 1.0)));
  Alcotest.(check bool) "erlang" true (Dist.is_nbue (Dist.Erlang (4, 1.0)));
  Alcotest.(check bool) "weibull k>=1" true (Dist.is_nbue (Dist.Weibull (2.0, 1.0)));
  Alcotest.(check bool) "weibull k<1" false (Dist.is_nbue (Dist.Weibull (0.5, 1.0)));
  Alcotest.(check bool) "hyperexp mixture" false (Dist.is_nbue (Dist.Hyperexp [ (0.5, 1.0); (0.5, 2.0) ]));
  Alcotest.(check bool) "degenerate hyperexp" true (Dist.is_nbue (Dist.Hyperexp [ (1.0, 2.0) ]))

let test_with_mean () =
  List.iter
    (fun law ->
      let rescaled = Dist.with_mean law 7.5 in
      check_float 1e-9 (Dist.to_string law ^ " with_mean") 7.5 (Dist.mean rescaled))
    all_laws

let test_with_mean_invalid () =
  Alcotest.check_raises "non-positive mean"
    (Invalid_argument "Dist.with_mean: mean must be positive") (fun () ->
      ignore (Dist.with_mean (Dist.Exponential 1.0) 0.0))

let test_scale () =
  List.iter
    (fun law ->
      let scaled = Dist.scale law 3.0 in
      check_float 1e-9 (Dist.to_string law ^ " scale mean") (3.0 *. Dist.mean law)
        (Dist.mean scaled);
      check_float 1e-9
        (Dist.to_string law ^ " scale variance")
        (9.0 *. Dist.variance law)
        (Dist.variance scaled))
    all_laws

let test_exponential_of_mean () =
  match Dist.exponential_of_mean 4.0 with
  | Dist.Exponential rate -> check_float 1e-12 "rate" 0.25 rate
  | _ -> Alcotest.fail "expected exponential"

let qcheck_with_mean =
  QCheck.Test.make ~name:"with_mean hits any positive target" ~count:200
    QCheck.(float_range 0.01 1000.)
    (fun target ->
      List.for_all
        (fun law -> abs_float (Dist.mean (Dist.with_mean law target) -. target) < 1e-6 *. target)
        all_laws)

let () =
  Alcotest.run "dist"
    [
      ( "analytic",
        [
          Alcotest.test_case "means" `Quick test_analytic_means;
          Alcotest.test_case "variances" `Quick test_analytic_variances;
          Alcotest.test_case "nbue" `Quick test_nbue_classification;
          Alcotest.test_case "with_mean" `Quick test_with_mean;
          Alcotest.test_case "with_mean invalid" `Quick test_with_mean_invalid;
          Alcotest.test_case "scale" `Quick test_scale;
          Alcotest.test_case "exponential_of_mean" `Quick test_exponential_of_mean;
          QCheck_alcotest.to_alcotest qcheck_with_mean;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "MC means" `Slow test_sample_means_match;
          Alcotest.test_case "MC variances" `Slow test_sample_variances_match;
          Alcotest.test_case "positivity" `Quick test_samples_positive;
          Alcotest.test_case "uniform support" `Quick test_uniform_support;
          Alcotest.test_case "beta support" `Quick test_beta_support;
          Alcotest.test_case "exponential tail" `Slow test_exponential_tail;
        ] );
    ]
