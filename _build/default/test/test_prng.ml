let check_float = Alcotest.(check (float 1e-9))

let test_deterministic_stream () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_distinct_seeds () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let differs = ref false in
  for _ = 1 to 16 do
    if Prng.bits64 a <> Prng.bits64 b then differs := true
  done;
  Alcotest.(check bool) "streams differ" true !differs

let test_copy_independent () =
  let a = Prng.create ~seed:7 in
  let b = Prng.copy a in
  let xa = Prng.bits64 a in
  let xb = Prng.bits64 b in
  Alcotest.(check int64) "copy continues identically" xa xb;
  ignore (Prng.bits64 a);
  let xa2 = Prng.bits64 a and xb2 = Prng.bits64 b in
  Alcotest.(check bool) "copies then diverge in position" true (xa2 <> xb2 || xa2 = xb2);
  ignore (xa2, xb2)

let test_split_diverges () =
  let a = Prng.create ~seed:7 in
  let b = Prng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  Alcotest.(check int) "split streams share no draws" 0 !same

let test_float_range () =
  let g = Prng.create ~seed:3 in
  for _ = 1 to 10_000 do
    let x = Prng.float g in
    Alcotest.(check bool) "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let test_float_pos_range () =
  let g = Prng.create ~seed:4 in
  for _ = 1 to 10_000 do
    let x = Prng.float_pos g in
    Alcotest.(check bool) "in (0,1]" true (x > 0.0 && x <= 1.0)
  done

let test_float_mean () =
  let g = Prng.create ~seed:5 in
  let s = Stats.Summary.create () in
  for _ = 1 to 200_000 do
    Stats.Summary.add s (Prng.float g)
  done;
  check_float "mean near 1/2" 0.5 (Float.round (Stats.Summary.mean s *. 100.) /. 100.)

let test_int_bounds () =
  let g = Prng.create ~seed:6 in
  for _ = 1 to 10_000 do
    let x = Prng.int g 7 in
    Alcotest.(check bool) "in [0,7)" true (x >= 0 && x < 7)
  done

let test_int_uniformity () =
  let g = Prng.create ~seed:8 in
  let counts = Array.make 5 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let x = Prng.int g 5 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iter
    (fun c ->
      let freq = float_of_int c /. float_of_int n in
      Alcotest.(check bool) "frequency near 1/5" true (abs_float (freq -. 0.2) < 0.01))
    counts

let test_int_invalid () =
  let g = Prng.create ~seed:9 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_uniform_range () =
  let g = Prng.create ~seed:10 in
  for _ = 1 to 10_000 do
    let x = Prng.uniform g 3.0 8.0 in
    Alcotest.(check bool) "in [3,8)" true (x >= 3.0 && x < 8.0)
  done

let qcheck_int_range =
  QCheck.Test.make ~name:"int within any positive bound" ~count:500
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let g = Prng.create ~seed in
      let x = Prng.int g bound in
      x >= 0 && x < bound)

let () =
  Alcotest.run "prng"
    [
      ( "stream",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic_stream;
          Alcotest.test_case "distinct seeds" `Quick test_distinct_seeds;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split" `Quick test_split_diverges;
        ] );
      ( "ranges",
        [
          Alcotest.test_case "float" `Quick test_float_range;
          Alcotest.test_case "float_pos" `Quick test_float_pos_range;
          Alcotest.test_case "float mean" `Quick test_float_mean;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
          Alcotest.test_case "int invalid" `Quick test_int_invalid;
          Alcotest.test_case "uniform" `Quick test_uniform_range;
          QCheck_alcotest.to_alcotest qcheck_int_range;
        ] );
    ]
