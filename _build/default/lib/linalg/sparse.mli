(** Sparse stationary-distribution solvers for large Markov chains.

    The GTH solver is O(n³); the Young-diagram pattern chains of Theorem 3
    grow combinatorially with the replication factors, so beyond ~1500
    states we switch to iterative solvers on a sparse representation. *)

type t
(** A CTMC generator in sparse form: [n] states, outgoing transition lists. *)

val create : int -> t
(** [create n] is an empty generator over states [0..n-1]. *)

val add_rate : t -> int -> int -> float -> unit
(** [add_rate t i j r] adds rate [r] to the transition i → j (i ≠ j, r > 0). *)

val size : t -> int
val exit_rate : t -> int -> float
val outgoing : t -> int -> (int * float) list

val stationary_gauss_seidel : ?tol:float -> ?max_sweeps:int -> t -> float array
(** Gauss–Seidel iteration on the balance equations
    π_j · exit_j = Σ_i π_i q_{ij}, renormalised each sweep.  Converges for
    irreducible chains; raises [Failure] if the tolerance (default 1e-12 on
    the L1 residual) is not met within [max_sweeps] (default 100_000). *)

val stationary_power : ?tol:float -> ?max_iters:int -> t -> float array
(** Power iteration on the uniformised chain; slower but useful as an
    independent cross-check of the Gauss–Seidel result. *)
