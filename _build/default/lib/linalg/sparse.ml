type t = {
  n : int;
  out_rates : (int * float) list array;  (** outgoing, per source state *)
  in_rates : (int * float) list array;  (** incoming, per target state *)
  exit : float array;
}

let create n =
  { n; out_rates = Array.make n []; in_rates = Array.make n []; exit = Array.make n 0.0 }

let add_rate t i j r =
  if i < 0 || i >= t.n || j < 0 || j >= t.n then invalid_arg "Sparse.add_rate: state out of range";
  if i = j then invalid_arg "Sparse.add_rate: no self loops in a generator";
  if r <= 0.0 then invalid_arg "Sparse.add_rate: rate must be positive";
  t.out_rates.(i) <- (j, r) :: t.out_rates.(i);
  t.in_rates.(j) <- (i, r) :: t.in_rates.(j);
  t.exit.(i) <- t.exit.(i) +. r

let size t = t.n
let exit_rate t i = t.exit.(i)
let outgoing t i = t.out_rates.(i)

let normalize pi =
  let total = Array.fold_left ( +. ) 0.0 pi in
  if total <= 0.0 then failwith "Sparse: zero distribution";
  Array.iteri (fun i v -> pi.(i) <- v /. total) pi

let residual t pi =
  (* L1 norm of pi.Q *)
  let acc = ref 0.0 in
  for j = 0 to t.n - 1 do
    let inflow = List.fold_left (fun s (i, r) -> s +. (pi.(i) *. r)) 0.0 t.in_rates.(j) in
    acc := !acc +. abs_float (inflow -. (pi.(j) *. t.exit.(j)))
  done;
  !acc

let stationary_gauss_seidel ?(tol = 1e-12) ?(max_sweeps = 100_000) t =
  let pi = Array.make t.n (1.0 /. float_of_int t.n) in
  let rec sweep k =
    if k > max_sweeps then failwith "Sparse.stationary_gauss_seidel: no convergence";
    for j = 0 to t.n - 1 do
      if t.exit.(j) > 0.0 then begin
        let inflow = List.fold_left (fun s (i, r) -> s +. (pi.(i) *. r)) 0.0 t.in_rates.(j) in
        pi.(j) <- inflow /. t.exit.(j)
      end
    done;
    normalize pi;
    if residual t pi > tol then sweep (k + 1)
  in
  sweep 1;
  pi

let stationary_power ?(tol = 1e-12) ?(max_iters = 1_000_000) t =
  let lambda = 1.01 *. Array.fold_left max 1e-12 t.exit in
  let pi = Array.make t.n (1.0 /. float_of_int t.n) in
  let next = Array.make t.n 0.0 in
  let rec iterate k =
    if k > max_iters then failwith "Sparse.stationary_power: no convergence";
    for j = 0 to t.n - 1 do
      next.(j) <- pi.(j) *. (1.0 -. (t.exit.(j) /. lambda))
    done;
    for i = 0 to t.n - 1 do
      List.iter (fun (j, r) -> next.(j) <- next.(j) +. (pi.(i) *. r /. lambda)) t.out_rates.(i)
    done;
    let diff = ref 0.0 in
    for j = 0 to t.n - 1 do
      diff := !diff +. abs_float (next.(j) -. pi.(j));
      pi.(j) <- next.(j)
    done;
    normalize pi;
    if !diff > tol then iterate (k + 1)
  in
  iterate 1;
  pi
