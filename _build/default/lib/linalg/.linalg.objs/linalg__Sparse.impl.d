lib/linalg/sparse.ml: Array List
