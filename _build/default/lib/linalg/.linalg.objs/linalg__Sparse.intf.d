lib/linalg/sparse.mli:
