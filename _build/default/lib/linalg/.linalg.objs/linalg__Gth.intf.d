lib/linalg/gth.mli:
