lib/linalg/gth.ml: Array
