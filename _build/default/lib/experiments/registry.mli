(** Registry of the paper's tables and figures, each reproduced by one
    module of this library. *)

type entry = {
  id : string;  (** e.g. "table1", "fig13" *)
  title : string;
  run : ?quick:bool -> Format.formatter -> unit;
}

val all : entry list
val find : string -> entry option
val run_all : ?quick:bool -> Format.formatter -> unit
