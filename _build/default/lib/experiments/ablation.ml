open Streaming

let buffer_instance () =
  (* a 3-stage chain of comparable exponential servers with fast links:
     blocking between stages is what limits the bounded-buffer variants *)
  let app = Application.create ~work:[| 1.0; 1.2; 0.9 |] ~files:[| 0.05; 0.05 |] in
  let platform = Platform.fully_connected ~speeds:[| 1.0; 1.0; 1.0 |] ~bw:1.0 in
  Mapping.create ~app ~platform ~teams:[| [| 0 |]; [| 1 |]; [| 2 |] |]

let buffer_sweep ?(quick = false) () =
  let mapping = buffer_instance () in
  let buffers = if quick then [ 1; 2; 4 ] else [ 1; 2; 3; 4; 6; 8; 12 ] in
  let reference = Expo.overlap_throughput mapping in
  ( List.map
      (fun b -> (b, Expo.general_throughput ~cap:2_000_000 ~buffer:b mapping Model.Overlap))
      buffers,
    reference )

let dominance_sweep ?(quick = false) () =
  let factors = if quick then [ 1.0; 4.0; 16.0 ] else [ 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 100.0 ] in
  List.map
    (fun factor ->
      let time s r = if s = 0 && r = 0 then 100.0 *. factor else 100.0 in
      let mapping =
        Workload.Scenarios.single_communication ~comp_time:0.1 ~comm_time:time ~u:2 ~v:3 ()
      in
      let det = Deterministic.overlap_throughput_decomposed mapping in
      let expo = Expo.overlap_throughput mapping in
      (factor, expo /. det))
    factors

let run ?quick ppf =
  Exp_common.header ppf "Ablation: buffer capacity (blocking vs unbounded Overlap)";
  let points, reference = buffer_sweep ?quick () in
  Exp_common.row ppf "unbounded (per-column decomposition): %.6f" reference;
  Exp_common.row ppf "%8s %12s %12s" "buffer" "throughput" "fraction";
  List.iter
    (fun (b, rho) -> Exp_common.row ppf "%8d %12.6f %12.4f" b rho (rho /. reference))
    points;
  Exp_common.row ppf "";
  Exp_common.header ppf "Ablation: slow-link dominance (exp/det ratio, 2x3 pattern)";
  Exp_common.row ppf "%8s %12s" "factor" "exp/det";
  List.iter (fun (f, r) -> Exp_common.row ppf "%8.0f %12.4f" f r) (dominance_sweep ?quick ())
