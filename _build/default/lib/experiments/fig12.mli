(** Figure 12 (§7.4): the throughput does not depend on the number of
    stages — chains of k stages alternating 5 and 7 replicas with a costly
    communication between each pair behave like a single 5×7 pattern,
    because the Overlap TPN has no backward dependence between columns. *)

type point = { stages : int; cst_des : float; exp_des : float; exp_theory : float }

val compute : ?quick:bool -> unit -> point list
val run : ?quick:bool -> Format.formatter -> unit
