(** Extension experiment — the research agenda of the paper's conclusion:
    use the throughput evaluators to compare mapping heuristics.

    Random applications on random heterogeneous platforms; three mapping
    strategies (no-replication baseline, greedy hill-climbing, exhaustive
    composition search) scored by the exponential-case throughput and
    audited by DES under a uniform law. *)

type row = {
  instance : int;
  baseline : float;
  greedy : float;
  exhaustive : float;
  greedy_audit : float;  (** DES measurement of the greedy mapping *)
}

val compute : ?quick:bool -> unit -> row list
val run : ?quick:bool -> Format.formatter -> unit
