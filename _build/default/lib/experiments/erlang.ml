open Streaming

type point = { phases : int; exact : float; des : float }

let compute ?(quick = false) () =
  let mapping = Workload.Scenarios.single_communication ~u:3 ~v:4 () in
  let bounds = Bounds.compute mapping Model.Overlap in
  let phase_counts = if quick then [ 1; 2; 4 ] else [ 1; 2; 3; 4; 6; 8 ] in
  let data_sets = if quick then 20_000 else 60_000 in
  let points =
    List.map
      (fun phases ->
        {
          phases;
          exact = Expo.overlap_throughput_erlang ~pattern_cap:3_000_000 ~phases mapping;
          des =
            Des.Pipeline_sim.throughput mapping Model.Overlap
              ~timing:
                (Des.Pipeline_sim.Independent
                   (Laws.of_family mapping ~family:(fun mu ->
                        Dist.with_mean (Dist.Erlang (phases, 1.0)) mu)))
              ~seed:(40 + phases) ~data_sets;
        })
      phase_counts
  in
  (bounds.Bounds.lower, bounds.Bounds.upper, points)

type hyper_point = { scv : float; ph_exact : float; ph_des : float }

let compute_hyper ?(quick = false) () =
  (* balanced-mean two-branch hyperexponentials of growing variance *)
  let mapping = Workload.Scenarios.single_communication ~u:3 ~v:4 () in
  let scvs = if quick then [ 2.0; 6.0 ] else [ 1.5; 2.0; 3.0; 4.0; 6.0; 10.0 ] in
  let data_sets = if quick then 20_000 else 60_000 in
  List.map
    (fun scv ->
      (* two balanced branches: p = 1/2(1 +- sqrt((scv-1)/(scv+1))), rates
         2p and 2(1-p) give mean 1 and the requested scv *)
      let w = sqrt ((scv -. 1.0) /. (scv +. 1.0)) in
      let p = 0.5 *. (1.0 +. w) in
      let branches = [ (p, 2.0 *. p); (1.0 -. p, 2.0 *. (1.0 -. p)) ] in
      let ph_exact =
        Expo.overlap_throughput_ph
          ~ph:(fun r ->
            Markov.Ph.with_mean (Markov.Ph.hyperexponential branches) (Mapping.mean_time mapping r))
          mapping
      in
      let ph_des =
        Des.Pipeline_sim.throughput mapping Model.Overlap
          ~timing:
            (Des.Pipeline_sim.Independent
               (Laws.of_family mapping ~family:(fun mu -> Dist.with_mean (Dist.Hyperexp branches) mu)))
          ~seed:(int_of_float (10.0 *. scv)) ~data_sets
      in
      { scv; ph_exact; ph_des })
    scvs

let run ?quick ppf =
  Exp_common.header ppf "Phase-type (extension): exact analysis across the Theorem 7 bounds";
  let lower, upper, points = compute ?quick () in
  Exp_common.row ppf "3x4 pattern, unit means: exponential bound %.4f, deterministic bound %.4f"
    lower upper;
  Exp_common.row ppf "(a) Erlang-k (N.B.U.E., scv = 1/k): interpolates towards the upper bound";
  Exp_common.row ppf "%8s %8s %12s %12s %12s" "phases" "scv" "exact" "DES" "of gap";
  List.iter
    (fun p ->
      Exp_common.row ppf "%8d %8.3f %12.6f %12.6f %11.1f%%" p.phases
        (1.0 /. float_of_int p.phases)
        p.exact p.des
        (100.0 *. (p.exact -. lower) /. (upper -. lower)))
    points;
  Exp_common.row ppf "(b) hyperexponential (D.F.R.): exact values BELOW the exponential bound";
  Exp_common.row ppf "%8s %12s %12s %14s" "scv" "exact" "DES" "vs exp bound";
  List.iter
    (fun h ->
      Exp_common.row ppf "%8.1f %12.6f %12.6f %13.1f%%" h.scv h.ph_exact h.ph_des
        (100.0 *. (h.ph_exact -. lower) /. lower))
    (compute_hyper ?quick ())
