(** Figure 14 (§7.4): single replicated communication on a *heterogeneous*
    network (mean link times drawn in [100,1000]) — the exponential case
    is nearly indistinguishable from the constant case because the
    round-robin is gated by the slowest link.  All values are normalised
    to the constant-case DES throughput. *)

type point = {
  u : int;
  v : int;
  cst_theory : float;  (** critical-cycle value, the scscyc role *)
  cst_des : float;
  cst_eg : float;
  exp_des : float;
  exp_eg : float;
  exp_theory : float;  (** pattern-CTMC value *)
}

val compute : ?quick:bool -> unit -> point list
(** Link times drawn uniformly in [100,1000], the paper's protocol. *)

val compute_dominated : ?quick:bool -> unit -> point list
(** One link an order of magnitude slower than the others — the regime in
    which the paper's "<2% difference" observation holds exactly (a single
    serial resource gates the round-robin, and a serial resource's rate is
    1/mean regardless of the law). *)

val run : ?quick:bool -> Format.formatter -> unit
