(** Figure 16 (§7.6): several N.B.U.E. laws on a single homogeneous
    communication — their throughput falls between the exponential lower
    bound and the deterministic upper bound (Theorem 7).  All values are
    normalised to the constant-case throughput. *)

type point = { senders : int; law : string; normalised : float; lower : float; upper : float }

val laws : (string * (float -> Dist.t)) list
val compute : ?quick:bool -> unit -> point list
val run : ?quick:bool -> Format.formatter -> unit
