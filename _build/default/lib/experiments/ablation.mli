(** Design-choice ablations (not figures of the paper).

    {b Buffers}: the Overlap model implicitly assumes unbounded buffers
    between consecutive operations of a row (the forward places of the
    TPN are unbounded).  Bounding them with back-places turns the model
    into a blocking pipeline; the sweep quantifies how much buffer is
    needed before the unbounded-model throughput is recovered — and
    validates the general Markov method against the per-column
    decomposition in the limit.

    {b Dominance}: §7.4's claim that a heterogeneous network behaves like
    its slowest link (exp ≈ cst) holds in proportion to how dominant that
    link is; the sweep makes the transition quantitative (see the Fig. 14
    discussion in EXPERIMENTS.md). *)

val buffer_sweep : ?quick:bool -> unit -> (int * float) list * float
(** [(buffer, exponential throughput) list, unbounded reference]. *)

val dominance_sweep : ?quick:bool -> unit -> (float * float) list
(** [(slow-link factor, exponential/deterministic ratio)] for a 2×3
    communication where one link is [factor] times slower than the
    others. *)

val run : ?quick:bool -> Format.formatter -> unit
