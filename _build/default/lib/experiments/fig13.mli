(** Figure 13 (§7.4): single replicated communication on a homogeneous
    network — Theorem 4's predicted exponential throughput against DES
    measurements, normalised to the constant-case throughput. *)

type point = {
  u : int;
  v : int;
  cst_des : float;
  exp_des : float;
  exp_theorem : float;  (** Theorem 4 *)
  cst_theory : float;
}

val compute : ?quick:bool -> unit -> point list
val run : ?quick:bool -> Format.formatter -> unit
