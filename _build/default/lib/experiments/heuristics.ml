open Streaming

type row = {
  instance : int;
  baseline : float;
  greedy : float;
  exhaustive : float;
  greedy_audit : float;
}

let random_instance g =
  let n_stages = 3 + Prng.int g 2 in
  let n_procs = n_stages + 5 + Prng.int g 3 in
  let app =
    Application.create
      ~work:(Array.init n_stages (fun _ -> Prng.uniform g 1.0 20.0))
      ~files:(Array.init (n_stages - 1) (fun _ -> Prng.uniform g 0.1 2.0))
  in
  let speeds = Array.init n_procs (fun _ -> Prng.uniform g 0.5 2.0) in
  (app, Platform.fully_connected ~speeds ~bw:2.0)

let compute ?(quick = false) () =
  let instances = if quick then 4 else 12 in
  let data_sets = if quick then 10_000 else 30_000 in
  let g = Prng.create ~seed:(Exp_common.base_seed + 99) in
  List.init instances (fun instance ->
      let app, platform = random_instance g in
      let score m = Mapper.evaluate Mapper.Exponential m in
      let baseline = Mapper.baseline_fastest ~app ~platform () in
      let greedy = Mapper.greedy ~app ~platform () in
      let exhaustive = Mapper.exhaustive ~app ~platform () in
      let audit =
        Des.Pipeline_sim.throughput greedy Model.Overlap
          ~timing:
            (Des.Pipeline_sim.Independent
               (Laws.of_family greedy ~family:(fun mu -> Dist.Uniform (0.5 *. mu, 1.5 *. mu))))
          ~seed:(instance + 1) ~data_sets
      in
      {
        instance;
        baseline = score baseline;
        greedy = score greedy;
        exhaustive = score exhaustive;
        greedy_audit = audit;
      })

let run ?quick ppf =
  Exp_common.header ppf "Heuristics (extension): replication chosen by the throughput evaluator";
  Exp_common.row ppf "%8s %12s %12s %12s %14s %12s" "instance" "baseline" "greedy" "exhaustive"
    "greedy/base" "DES audit";
  let rows = compute ?quick () in
  List.iter
    (fun r ->
      Exp_common.row ppf "%8d %12.4f %12.4f %12.4f %14.2f %12.4f" r.instance r.baseline r.greedy
        r.exhaustive (r.greedy /. r.baseline) r.greedy_audit)
    rows;
  let mean f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows /. float_of_int (List.length rows) in
  Exp_common.row ppf "mean speedup: greedy %.2fx, exhaustive %.2fx over the no-replication baseline"
    (mean (fun r -> r.greedy /. r.baseline))
    (mean (fun r -> r.exhaustive /. r.baseline))
