open Streaming

type point = { law : string; deterministic : float; associated : float; independent : float }

let factor_laws =
  [
    ("uniform [0.5,1.5]", Dist.Uniform (0.5, 1.5));
    ("uniform [0,2]", Dist.Uniform (0.0, 2.0));
    ("exponential(1)", Dist.Exponential 1.0);
    ("gamma k=2", Dist.Gamma (2.0, 0.5));
  ]

let compute ?(quick = false) () =
  let data_sets = if quick then 10_000 else 100_000 in
  let mapping = Workload.Scenarios.single_communication ~u:3 ~v:4 () in
  let deterministic =
    Des.Pipeline_sim.throughput mapping Model.Overlap
      ~timing:(Des.Pipeline_sim.Independent (Laws.deterministic mapping))
      ~seed:80 ~data_sets
  in
  List.mapi
    (fun k (name, factor) ->
      let associated =
        Des.Pipeline_sim.throughput mapping Model.Overlap
          ~timing:(Des.Pipeline_sim.Scaled factor) ~seed:(81 + k) ~data_sets
      in
      let independent =
        (* same marginals: every operation time is nominal x an i.i.d.
           copy of the factor *)
        let family mu = Dist.scale factor mu in
        Des.Pipeline_sim.throughput mapping Model.Overlap
          ~timing:(Des.Pipeline_sim.Independent (Laws.of_family mapping ~family))
          ~seed:(91 + k) ~data_sets
      in
      { law = name; deterministic; associated; independent })
    factor_laws

let run ?quick ppf =
  Exp_common.header ppf "Theorem 8 (extension): deterministic >= associated >= independent";
  Exp_common.row ppf "%-18s %14s %12s %12s %8s" "factor law" "deterministic" "associated"
    "independent" "ordered";
  List.iter
    (fun p ->
      (* the associated >= independent ordering of Theorem 8 is weak: for
         low-variance factors the two regimes coincide up to noise *)
      let ordered =
        p.deterministic *. 1.02 >= p.associated
        && p.associated >= p.independent -. (0.02 *. p.independent)
      in
      Exp_common.row ppf "%-18s %14.6f %12.6f %12.6f %8s" p.law p.deterministic p.associated
        p.independent
        (if ordered then "yes" else "NO"))
    (compute ?quick ())
