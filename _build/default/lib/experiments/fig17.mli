(** Figure 17 (§7.6): laws *without* the N.B.U.E. property can escape the
    [exponential, deterministic] throughput sandwich.  D.F.R. laws (gamma
    and Weibull with shape < 1) fall below the exponential bound, while
    N.B.U.E. members of the same families (shape >= 1, and uniform laws)
    stay inside.  Normalised to the constant-case throughput. *)

type point = {
  senders : int;
  law : string;
  nbue : bool;
  normalised : float;
  lower : float;  (** exponential bound, normalised *)
}

val laws : (string * bool * (float -> Dist.t)) list
val compute : ?quick:bool -> unit -> point list
val run : ?quick:bool -> Format.formatter -> unit
