let header ppf title =
  let line = String.make (String.length title + 4) '=' in
  Format.fprintf ppf "%s@\n= %s =@\n%s@\n" line title line

let row ppf fmt = Format.fprintf ppf (fmt ^^ "@\n")
let base_seed = 20260706

let des_throughput ?(data_sets = 20_000) mapping model ~laws ~seed =
  Des.Pipeline_sim.throughput mapping model ~timing:(Des.Pipeline_sim.Independent laws) ~seed
    ~data_sets

let rec gcd a b = if b = 0 then a else gcd b (a mod b)
let coprime a b = gcd a b = 1
