(** Extension experiment — exact Erlang (phase-type) throughput.

    The bounds of Theorem 7 bracket every N.B.U.E. law between the
    exponential and deterministic cases; for Erlang laws the library
    computes the *exact* value by phase expansion of the marking chain.
    The sweep shows the interpolation as the number of phases grows
    (Erlang-k has squared coefficient of variation 1/k), audited by DES. *)

type point = {
  phases : int;
  exact : float;  (** phase-expanded CTMC value *)
  des : float;  (** DES measurement with Erlang laws *)
}

val compute : ?quick:bool -> unit -> float * float * point list
(** (exponential lower bound, deterministic upper bound, sweep). *)

type hyper_point = { scv : float; ph_exact : float; ph_des : float }

val compute_hyper : ?quick:bool -> unit -> hyper_point list
(** Hyperexponential (D.F.R.) links of growing squared coefficient of
    variation: exact phase-type values below the exponential bound,
    audited by DES. *)

val run : ?quick:bool -> Format.formatter -> unit
