(** Shared helpers for the experiment reproductions of §7. *)

val header : Format.formatter -> string -> unit
(** Print a boxed experiment title. *)

val row : Format.formatter -> ('a, Format.formatter, unit) format -> 'a
(** Print one table row, newline-terminated. *)

val base_seed : int
(** Seed from which every experiment derives its generators, so the whole
    harness is reproducible run to run. *)

val des_throughput :
  ?data_sets:int ->
  Streaming.Mapping.t ->
  Streaming.Model.t ->
  laws:Streaming.Laws.t ->
  seed:int ->
  float
(** DES throughput with sensible experiment defaults (20_000 data sets). *)

val coprime : int -> int -> bool
