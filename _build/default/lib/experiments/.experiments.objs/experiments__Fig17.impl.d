lib/experiments/fig17.ml: Bounds Dist Exp_common Laws List Model Streaming Workload
