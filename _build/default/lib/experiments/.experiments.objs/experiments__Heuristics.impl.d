lib/experiments/heuristics.ml: Application Array Des Dist Exp_common Laws List Mapper Model Platform Prng Streaming
