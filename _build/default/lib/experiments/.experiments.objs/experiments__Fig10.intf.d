lib/experiments/fig10.mli: Format
