lib/experiments/fig13.ml: Deterministic Exp_common Expo Laws List Model Streaming Workload
