lib/experiments/fig10.ml: Deterministic Exp_common Expo Laws List Model Streaming Teg_sim Workload
