lib/experiments/table1.mli: Format Streaming
