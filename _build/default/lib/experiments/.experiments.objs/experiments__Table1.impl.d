lib/experiments/table1.ml: Deterministic Exp_common List Model Prng Streaming Workload
