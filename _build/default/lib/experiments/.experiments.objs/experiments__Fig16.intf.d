lib/experiments/fig16.mli: Dist Format
