lib/experiments/fig15.ml: Deterministic Exp_common Expo Laws List Model Streaming Workload
