lib/experiments/thm8.mli: Format
