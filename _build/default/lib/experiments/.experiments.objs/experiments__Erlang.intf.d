lib/experiments/erlang.mli: Format
