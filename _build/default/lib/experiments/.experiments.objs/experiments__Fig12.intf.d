lib/experiments/fig12.mli: Format
