lib/experiments/registry.ml: Ablation Erlang Fig10 Fig11 Fig12 Fig13 Fig14 Fig15 Fig16 Fig17 Format Heuristics List Table1 Thm8
