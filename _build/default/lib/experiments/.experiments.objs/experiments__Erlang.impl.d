lib/experiments/erlang.ml: Bounds Des Dist Exp_common Expo Laws List Mapping Markov Model Streaming Workload
