lib/experiments/fig12.ml: Exp_common Expo Laws List Model Streaming Workload
