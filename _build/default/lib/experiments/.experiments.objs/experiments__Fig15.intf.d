lib/experiments/fig15.mli: Format
