lib/experiments/fig13.mli: Format
