lib/experiments/fig17.mli: Dist Format
