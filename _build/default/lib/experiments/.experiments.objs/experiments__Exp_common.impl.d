lib/experiments/exp_common.ml: Des Format String
