lib/experiments/fig14.mli: Format
