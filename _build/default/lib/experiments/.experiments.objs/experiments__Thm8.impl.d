lib/experiments/thm8.ml: Des Dist Exp_common Laws List Model Streaming Workload
