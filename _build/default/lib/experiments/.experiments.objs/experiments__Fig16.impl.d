lib/experiments/fig16.ml: Bounds Dist Exp_common Laws List Model Streaming Workload
