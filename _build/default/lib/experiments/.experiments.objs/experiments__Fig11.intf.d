lib/experiments/fig11.mli: Format Stats
