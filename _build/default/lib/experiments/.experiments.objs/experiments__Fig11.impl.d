lib/experiments/fig11.ml: Deterministic Exp_common Laws List Model Stats Streaming Teg_sim Workload
