lib/experiments/heuristics.mli: Format
