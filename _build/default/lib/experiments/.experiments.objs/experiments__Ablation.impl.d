lib/experiments/ablation.ml: Application Deterministic Exp_common Expo List Mapping Model Platform Streaming Workload
