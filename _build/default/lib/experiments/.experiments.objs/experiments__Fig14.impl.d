lib/experiments/fig14.ml: Array Deterministic Exp_common Expo Laws List Model Prng Streaming Teg_sim Workload Young
