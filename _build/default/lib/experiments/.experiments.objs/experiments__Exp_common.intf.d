lib/experiments/exp_common.mli: Format Streaming
