(** Figure 11 (§7.3): dispersion of the exponential-case throughput
    estimate across many independent simulation runs, as a function of the
    number of processed data sets — min, max, average and standard
    deviation over the replicas, for both simulators. *)

type point = {
  data_sets : int;
  des : Stats.Summary.report;
  eg : Stats.Summary.report;
}

val compute : ?quick:bool -> unit -> float * point list
(** (deterministic reference, dispersion per data-set count). *)

val run : ?quick:bool -> Format.formatter -> unit
