(** Table 1 (§7.1): how often do random mappings have *no* critical
    resource, i.e. a period strictly larger than every resource cycle
    time?  One row per (configuration, model): instances without critical
    resource / total, plus the largest relative gap observed. *)

type row = {
  label : string;
  model : Streaming.Model.t;
  total : int;
  without_critical : int;
  max_gap : float;  (** largest (period - Mct)/Mct over the instances *)
}

val compute : ?quick:bool -> unit -> row list
val run : ?quick:bool -> Format.formatter -> unit
