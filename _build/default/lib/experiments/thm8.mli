(** Extension experiment — the associated case of §6.2 (Theorem 8).

    With a common per-data-set scale factor on every operation (the
    strongest positive association) and the same marginal laws, the
    throughput should satisfy

    deterministic >= associated >= independent.

    The experiment measures the three regimes by DES on a replicated
    communication, for several marginal laws of mean 1. *)

type point = {
  law : string;
  deterministic : float;  (** DES with constant times *)
  associated : float;  (** one factor per data set *)
  independent : float;  (** one factor per operation *)
}

val compute : ?quick:bool -> unit -> point list
val run : ?quick:bool -> Format.formatter -> unit
