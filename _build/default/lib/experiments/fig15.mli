(** Figure 15 (§7.5): exponential vs deterministic case for a single
    homogeneous communication as the number of senders grows — the ratio
    is max(u,v)/(u+v-1). *)

type point = {
  senders : int;
  receivers : int;
  exp_theorem : float;  (** normalised to the constant throughput *)
  exp_des : float;
  ratio_formula : float;  (** max(u,v)/(u+v-1) *)
}

val compute : ?quick:bool -> unit -> point list
val run : ?quick:bool -> Format.formatter -> unit
