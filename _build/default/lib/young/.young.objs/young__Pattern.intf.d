lib/young/pattern.mli: Markov Petrinet
