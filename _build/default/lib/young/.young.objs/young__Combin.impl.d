lib/young/combin.ml:
