lib/young/pattern.ml: Array Fun List Markov Petrinet Printf
