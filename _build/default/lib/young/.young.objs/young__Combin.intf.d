lib/young/combin.mli:
