(** Counting reachable markings of a u×v communication pattern (§5.2).

    A valid marking of the pattern is the union of two Young diagrams
    delimiting the transitions fired k+1, k and k−1 times; the paper
    counts them as S(u,v) = C(u+v−1, u−1)·v, of which
    S'(u,v) = C(u+v−2, u−1) enable any fixed transition. *)

val binomial : int -> int -> int
(** [binomial n k] = n!/(k!(n−k)!); raises [Invalid_argument] on overflow
    or negative input. *)

val state_count : u:int -> v:int -> int
(** S(u,v): number of reachable markings of the pattern. *)

val enabled_state_count : u:int -> v:int -> int
(** S'(u,v): number of markings in which a given transition is enabled. *)
