let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let check u v =
  if u < 1 || v < 1 then invalid_arg "Pattern: u and v must be at least 1";
  if gcd u v <> 1 then invalid_arg "Pattern: u and v must be coprime"

let transition_of ~u ~v k = (k mod u, k mod v)

let build ~u ~v ~time =
  check u v;
  let n = u * v in
  let labels =
    Array.init n (fun k ->
        let s, r = transition_of ~u ~v k in
        Printf.sprintf "xfer(s%d->r%d,k%d)" s r k)
  in
  let times =
    Array.init n (fun k ->
        let s, r = transition_of ~u ~v k in
        time ~sender:s ~receiver:r)
  in
  let teg = Petrinet.Teg.create ~labels ~times in
  let add_ring members =
    let k = Array.length members in
    for l = 0 to k - 1 do
      Petrinet.Teg.add_place teg ~src:members.(l) ~dst:members.((l + 1) mod k)
        ~tokens:(if l = k - 1 then 1 else 0)
    done
  in
  (* one-port rings: each sender's v transfers, each receiver's u ones *)
  for s = 0 to u - 1 do
    add_ring (Array.init v (fun i -> s + (i * u)))
  done;
  for r = 0 to v - 1 do
    add_ring (Array.init u (fun i -> r + (i * v)))
  done;
  teg

let deterministic_inner_throughput ~u ~v ~time =
  let teg = build ~u ~v ~time in
  match Petrinet.Cycle_time.analyse teg with
  | None -> invalid_arg "Pattern.deterministic_inner_throughput: acyclic pattern"
  | Some { Petrinet.Cycle_time.period; _ } -> float_of_int (u * v) /. period

let exponential_inner_throughput ?cap ~u ~v ~rate () =
  let teg = build ~u ~v ~time:(fun ~sender ~receiver -> 1.0 /. rate ~sender ~receiver) in
  let rates id =
    let s, r = transition_of ~u ~v id in
    rate ~sender:s ~receiver:r
  in
  let chain = Markov.Tpn_markov.analyse ?cap ~rates teg in
  Markov.Tpn_markov.throughput_of chain (List.init (u * v) Fun.id)

let homogeneous_inner_throughput ~u ~v ~lambda =
  check u v;
  float_of_int (u * v) *. lambda /. float_of_int (u + v - 1)

let erlang_inner_throughput ?cap ~phases ~u ~v ~rate () =
  if phases < 1 then invalid_arg "Pattern.erlang_inner_throughput: phases must be at least 1";
  let base = build ~u ~v ~time:(fun ~sender ~receiver -> 1.0 /. rate ~sender ~receiver) in
  let expansion = Petrinet.Expand.erlang ~phases:(fun _ -> phases) base in
  let original_rate k =
    let s, r = transition_of ~u ~v k in
    rate ~sender:s ~receiver:r
  in
  let rates id = Petrinet.Expand.phase_rates expansion ~original_rate id in
  let chain = Markov.Tpn_markov.analyse ?cap ~rates (Petrinet.Expand.teg expansion) in
  (* one data set completes per firing of a transfer's LAST phase *)
  Markov.Tpn_markov.throughput_of chain
    (List.init (u * v) (fun k -> Petrinet.Expand.last expansion k))

let ph_inner_throughput ?cap ~u ~v ~ph () =
  let laws =
    Array.init (u * v) (fun k ->
        let s, r = transition_of ~u ~v k in
        ph ~sender:s ~receiver:r)
  in
  let teg = build ~u ~v ~time:(fun ~sender ~receiver -> Markov.Ph.mean (ph ~sender ~receiver)) in
  let chain = Markov.Tpn_markov_ph.analyse ?cap ~ph_of:(fun k -> laws.(k)) teg in
  Markov.Tpn_markov_ph.throughput_of chain (List.init (u * v) Fun.id)
