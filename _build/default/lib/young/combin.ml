let binomial n k =
  if n < 0 || k < 0 || k > n then invalid_arg "Combin.binomial: invalid arguments";
  let k = min k (n - k) in
  let acc = ref 1 in
  for i = 1 to k do
    let next = !acc * (n - k + i) in
    if next < 0 || next / (n - k + i) <> !acc then invalid_arg "Combin.binomial: overflow";
    acc := next / i
  done;
  !acc

let state_count ~u ~v = binomial (u + v - 1) (u - 1) * v
let enabled_state_count ~u ~v = binomial (u + v - 2) (u - 1)
