(** Streaming descriptive statistics (Welford's online algorithm).

    Used by every experiment to aggregate throughput estimates across
    replicated simulation runs without storing the samples. *)

type t
(** Mutable accumulator. *)

val create : unit -> t

val add : t -> float -> unit
(** Feed one observation. *)

val add_all : t -> float list -> unit

val count : t -> int
val mean : t -> float
(** Mean of the observations; 0 when empty. *)

val variance : t -> float
(** Unbiased sample variance; 0 with fewer than two observations. *)

val std_dev : t -> float
val min_value : t -> float
(** Smallest observation; [infinity] when empty. *)

val max_value : t -> float
(** Largest observation; [neg_infinity] when empty. *)

val std_error : t -> float
(** Standard error of the mean. *)

val ci95_half_width : t -> float
(** Half width of the normal-approximation 95% confidence interval. *)

val of_list : float list -> t

type report = {
  n : int;
  mean : float;
  std_dev : float;
  min : float;
  max : float;
  ci95 : float;
}

val report : t -> report

val pp_report : Format.formatter -> report -> unit
