let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 xs /. float_of_int n

let linspace a b n =
  if n < 2 then invalid_arg "Series.linspace: need at least two points";
  let step = (b -. a) /. float_of_int (n - 1) in
  Array.init n (fun i -> a +. (float_of_int i *. step))

let least_squares_slope xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Series.least_squares_slope: length mismatch";
  if n < 2 then invalid_arg "Series.least_squares_slope: need at least two points";
  let mx = mean xs and my = mean ys in
  let num = ref 0.0 and den = ref 0.0 in
  for i = 0 to n - 1 do
    let dx = xs.(i) -. mx in
    num := !num +. (dx *. (ys.(i) -. my));
    den := !den +. (dx *. dx)
  done;
  if !den = 0.0 then invalid_arg "Series.least_squares_slope: degenerate abscissa";
  !num /. !den

let throughput_of_completions ?(warmup_fraction = 0.2) completions =
  let n = Array.length completions in
  if n < 4 then invalid_arg "Series.throughput_of_completions: too few completions";
  let start = int_of_float (warmup_fraction *. float_of_int n) in
  let start = if start > n - 2 then n - 2 else start in
  let m = n - start in
  let xs = Array.init m (fun i -> float_of_int (start + i)) in
  let ys = Array.init m (fun i -> completions.(start + i)) in
  let slope = least_squares_slope xs ys in
  1.0 /. slope

let relative_error measured reference = abs_float (measured -. reference) /. abs_float reference
