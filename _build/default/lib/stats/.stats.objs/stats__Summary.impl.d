lib/stats/summary.ml: Format List
