lib/stats/series.ml: Array
