lib/stats/series.mli:
