lib/stats/batch_means.mli:
