lib/stats/batch_means.ml: Array Summary
