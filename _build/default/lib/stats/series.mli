(** Small utilities over float arrays used by the throughput estimators. *)

val mean : float array -> float
val linspace : float -> float -> int -> float array
(** [linspace a b n] is [n] evenly spaced points from [a] to [b] inclusive. *)

val least_squares_slope : float array -> float array -> float
(** Slope of the least-squares line through [(x_i, y_i)]; raises
    [Invalid_argument] on length mismatch or fewer than two points. *)

val throughput_of_completions : ?warmup_fraction:float -> float array -> float
(** Steady-state throughput estimate from sorted completion times of
    consecutive data sets: the inverse of the least-squares slope of
    completion time against data-set index, ignoring the first
    [warmup_fraction] (default 0.2) of the samples so that the transient
    regime does not bias the estimate. *)

val relative_error : float -> float -> float
(** [relative_error measured reference] = |measured - reference| / |reference|. *)
