type t = { mean : float; half_width : float; batches : int }

(* two-sided 97.5% Student quantiles for small degrees of freedom, then
   the normal approximation *)
let student975 = function
  | 1 -> 12.706
  | 2 -> 4.303
  | 3 -> 3.182
  | 4 -> 2.776
  | 5 -> 2.571
  | 6 -> 2.447
  | 7 -> 2.365
  | 8 -> 2.306
  | 9 -> 2.262
  | 10 -> 2.228
  | 11 -> 2.201
  | 12 -> 2.179
  | 13 -> 2.160
  | 14 -> 2.145
  | 15 -> 2.131
  | 19 -> 2.093
  | 29 -> 2.045
  | df -> if df >= 30 then 1.96 else 2.1 (* between 15 and 29 *)

let of_batch_means means =
  let k = Array.length means in
  let s = Summary.of_list (Array.to_list means) in
  {
    mean = Summary.mean s;
    half_width = student975 (k - 1) *. Summary.std_dev s /. sqrt (float_of_int k);
    batches = k;
  }

let post_warmup warmup_fraction xs =
  let n = Array.length xs in
  let start = int_of_float (warmup_fraction *. float_of_int n) in
  Array.sub xs start (n - start)

let estimate ?(batches = 20) ?(warmup_fraction = 0.2) observations =
  let xs = post_warmup warmup_fraction observations in
  let n = Array.length xs in
  if batches < 2 then invalid_arg "Batch_means.estimate: need at least two batches";
  if n < 2 * batches then invalid_arg "Batch_means.estimate: too few observations";
  let size = n / batches in
  let means =
    Array.init batches (fun b ->
        let acc = ref 0.0 in
        for i = b * size to ((b + 1) * size) - 1 do
          acc := !acc +. xs.(i)
        done;
        !acc /. float_of_int size)
  in
  of_batch_means means

let throughput_of_completions ?(batches = 20) ?(warmup_fraction = 0.2) completions =
  let n = Array.length completions in
  let start = int_of_float (warmup_fraction *. float_of_int n) in
  if batches < 2 then invalid_arg "Batch_means.throughput_of_completions: need at least two batches";
  if n - start < 2 * batches then
    invalid_arg "Batch_means.throughput_of_completions: too few completions";
  let size = (n - start) / batches in
  let means =
    Array.init batches (fun b ->
        let first = start + (b * size) and last = start + (((b + 1) * size) - 1) in
        (* the batch's time span starts at the previous completion, so the
           warmup interval is never counted *)
        let span = completions.(last) -. (if first = 0 then 0.0 else completions.(first - 1)) in
        if span <= 0.0 then invalid_arg "Batch_means: degenerate completion batch"
        else float_of_int (last - first + 1) /. span)
  in
  of_batch_means means
