type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let add_all t xs = List.iter (add t) xs
let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let std_dev t = sqrt (variance t)
let min_value t = t.min
let max_value t = t.max

let std_error t = if t.n = 0 then 0.0 else std_dev t /. sqrt (float_of_int t.n)
let ci95_half_width t = 1.959964 *. std_error t

let of_list xs =
  let t = create () in
  add_all t xs;
  t

type report = {
  n : int;
  mean : float;
  std_dev : float;
  min : float;
  max : float;
  ci95 : float;
}

let report (t : t) =
  {
    n = t.n;
    mean = mean t;
    std_dev = std_dev t;
    min = min_value t;
    max = max_value t;
    ci95 = ci95_half_width t;
  }

let pp_report ppf r =
  Format.fprintf ppf "n=%d mean=%.6g sd=%.3g min=%.6g max=%.6g ci95=%.3g" r.n r.mean r.std_dev
    r.min r.max r.ci95
