(** (max,+) algebra.

    The daters of a timed event graph satisfy the linear recurrence
    x(n) = A0 (x) x(n) (+) A1 (x) x(n-1), where (+) is max and (x) is +
    (Baccelli, Cohen, Olsder, Quadrat, "Synchronization and Linearity").
    Solving the implicit part gives x(n) = star(A0) (x) A1 (x) x(n-1), and the
    asymptotic growth rate of the iteration is the cycle time of the graph.
    This module provides the algebra and that growth-rate estimator; it is
    used as an independent cross-check of the critical-cycle computation. *)

type scalar = float
(** ε (the ⊕-neutral) is [neg_infinity]; e (the ⊗-neutral) is [0.]. *)

val epsilon : scalar
val zero : scalar
(** ⊗-neutral, i.e. [0.]. *)

val oplus : scalar -> scalar -> scalar
val otimes : scalar -> scalar -> scalar

type matrix = scalar array array

val eye : int -> matrix
val const : int -> int -> scalar -> matrix
val add : matrix -> matrix -> matrix
val mul : matrix -> matrix -> matrix
val mul_vec : matrix -> scalar array -> scalar array

val star : matrix -> matrix
(** Kleene star I (+) A (+) A^2 (+) ...; raises [Failure] if the iteration does
    not stabilise after n steps (which happens iff A has a cycle of
    positive weight, i.e. the implicit system has no solution). *)

val cycle_time : ?iterations:int -> matrix -> scalar array -> float
(** [cycle_time a x0] iterates x <- a (x) x and returns the average growth
    per iteration of the largest coordinate over the second half of the
    run — the (max,+) eigenvalue when [a] is irreducible, and the largest
    component growth rate otherwise. *)

val eigenvalue : ?max_iterations:int -> matrix -> float option
(** Exact (max,+) eigenvalue by the power algorithm: by the cyclicity
    theorem, for an irreducible matrix the normalised iterates
    x(k) - max(x(k)) become periodic with some period c after a finite
    transient, and then the eigenvalue is (max x(k+c) - max x(k)) / c
    exactly.  Returns [None] if no repetition is found within
    [max_iterations] (reducible matrix or pathological transient), in
    which case fall back to {!cycle_time}. *)
