type scalar = float

let epsilon = neg_infinity
let zero = 0.0
let oplus a b = if a >= b then a else b
let otimes a b = if a = neg_infinity || b = neg_infinity then neg_infinity else a +. b

type matrix = scalar array array

let const rows cols v = Array.init rows (fun _ -> Array.make cols v)

let eye n =
  let m = const n n epsilon in
  for i = 0 to n - 1 do
    m.(i).(i) <- zero
  done;
  m

let dims m = (Array.length m, if Array.length m = 0 then 0 else Array.length m.(0))

let add a b =
  let ra, ca = dims a and rb, cb = dims b in
  if ra <> rb || ca <> cb then invalid_arg "Maxplus.add: dimension mismatch";
  Array.init ra (fun i -> Array.init ca (fun j -> oplus a.(i).(j) b.(i).(j)))

let mul a b =
  let ra, ca = dims a and rb, cb = dims b in
  if ca <> rb then invalid_arg "Maxplus.mul: dimension mismatch";
  Array.init ra (fun i ->
      Array.init cb (fun j ->
          let acc = ref epsilon in
          for k = 0 to ca - 1 do
            acc := oplus !acc (otimes a.(i).(k) b.(k).(j))
          done;
          !acc))

let mul_vec a x =
  let ra, ca = dims a in
  if ca <> Array.length x then invalid_arg "Maxplus.mul_vec: dimension mismatch";
  Array.init ra (fun i ->
      let acc = ref epsilon in
      for k = 0 to ca - 1 do
        acc := oplus !acc (otimes a.(i).(k) x.(k))
      done;
      !acc)

let equal a b =
  let ra, ca = dims a and rb, cb = dims b in
  ra = rb && ca = cb
  &&
  let same = ref true in
  for i = 0 to ra - 1 do
    for j = 0 to ca - 1 do
      if a.(i).(j) <> b.(i).(j) then same := false
    done
  done;
  !same

let star a =
  let n, c = dims a in
  if n <> c then invalid_arg "Maxplus.star: matrix must be square";
  let rec fixpoint acc power k =
    if k > n then failwith "Maxplus.star: diverges (positive-weight cycle)"
    else
      let power' = mul power a in
      let acc' = add acc power' in
      if equal acc acc' then acc else fixpoint acc' power' (k + 1)
  in
  fixpoint (eye n) (eye n) 0

let max_coord x = Array.fold_left oplus epsilon x

let eigenvalue ?(max_iterations = 2000) a =
  let n = Array.length a in
  if n = 0 then None
  else begin
    let normalise x =
      let m = max_coord x in
      if m = epsilon then None else Some (Array.map (fun v -> v -. m) x, m)
    in
    (* keep every normalised iterate; the state space of normalised
       vectors visited is finite once the periodic regime is reached *)
    let seen = Hashtbl.create 64 in
    (* quantised key so that harmless last-bit float noise does not hide a
       repetition *)
    let key shape =
      Array.to_list
        (Array.map
           (fun v -> if v = epsilon then Int64.min_int else Int64.of_float (Float.round (v *. 1e9)))
           shape)
    in
    let rec iterate x max_so_far k =
      if k > max_iterations then None
      else
        match normalise x with
        | None -> None (* the orbit died: no recycling, reducible *)
        | Some (shape, m) -> (
            let total = max_so_far +. m in
            match Hashtbl.find_opt seen (key shape) with
            | Some (k0, total0) -> Some ((total -. total0) /. float_of_int (k - k0))
            | None ->
                Hashtbl.add seen (key shape) (k, total);
                iterate (mul_vec a shape) total (k + 1))
    in
    iterate (Array.make n zero) 0.0 0
  end

let cycle_time ?(iterations = 400) a x0 =
  let x = ref (Array.copy x0) in
  let half = iterations / 2 in
  let at_half = ref neg_infinity in
  for k = 1 to iterations do
    x := mul_vec a !x;
    if k = half then at_half := max_coord !x
  done;
  (max_coord !x -. !at_half) /. float_of_int (iterations - half)
