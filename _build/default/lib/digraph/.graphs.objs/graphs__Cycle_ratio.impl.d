lib/digraph/cycle_ratio.ml: Array Digraph List
