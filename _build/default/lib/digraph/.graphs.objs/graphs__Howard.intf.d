lib/digraph/howard.mli: Digraph
