lib/digraph/digraph.mli:
