lib/digraph/digraph.ml: Array List Queue
