lib/digraph/howard.ml: Array Cycle_ratio Digraph Hashtbl List
