lib/digraph/cycle_ratio.mli: Digraph
