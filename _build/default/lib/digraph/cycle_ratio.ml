exception Unbounded

type result = { ratio : float; cycle : Digraph.edge list }

(* Longest-path Bellman-Ford from an implicit super source (all distances
   start at 0).  Returns a cycle whose reweighted cost exceeds [eps], if
   any.  [lambda] reweights each edge to [weight - lambda * tokens].

   Early exit: no simple path can accumulate more than the sum of the
   positive edge costs, so crossing that threshold proves a positive cycle
   without waiting for the n-th pass.  If the predecessor graph does not
   yet expose the cycle (which the theory rules out, but floating point
   does not), we fall back to the plain O(V.E) run. *)
let rec positive_cycle ?(early = true) graph ~lambda ~eps =
  let n = Digraph.n_nodes graph in
  let dist = Array.make n 0.0 in
  let pred = Array.make n None in
  let all_edges = Digraph.edges graph in
  let cost e = e.Digraph.weight -. (lambda *. float_of_int e.Digraph.tokens) in
  let threshold =
    if early then 1.0 +. List.fold_left (fun acc e -> acc +. max 0.0 (cost e)) 0.0 all_edges
    else infinity
  in
  let overflow = ref None in
  let changed = ref true in
  let passes = ref 0 in
  while !overflow = None && !changed && !passes < n do
    changed := false;
    incr passes;
    List.iter
      (fun e ->
        let candidate = dist.(e.Digraph.src) +. cost e in
        if candidate > dist.(e.Digraph.dst) +. eps then begin
          dist.(e.Digraph.dst) <- candidate;
          pred.(e.Digraph.dst) <- Some e;
          if candidate > threshold && !overflow = None then overflow := Some e.Digraph.dst;
          changed := true
        end)
      all_edges
  done;
  if !overflow = None && not !changed then None
  else begin
    let start = ref !overflow in
    List.iter
      (fun e ->
        if !start = None && dist.(e.Digraph.src) +. cost e > dist.(e.Digraph.dst) +. eps then
          start := Some e.Digraph.dst)
      all_edges;
    match !start with
    | None -> None
    | Some v0 -> (
        (* walk the predecessor chain until a vertex repeats: that vertex
           anchors a cycle of the predecessor graph *)
        let visited = Array.make n false in
        let rec find_repeat u steps =
          if visited.(u) then Some u
          else if steps > n then None
          else begin
            visited.(u) <- true;
            match pred.(u) with None -> None | Some e -> find_repeat e.Digraph.src (steps + 1)
          end
        in
        match find_repeat v0 0 with
        | Some anchor ->
            let rec collect u acc =
              match pred.(u) with
              | None -> acc
              | Some e ->
                  if e.Digraph.src = anchor then e :: acc else collect e.Digraph.src (e :: acc)
            in
            Some (collect anchor [])
        | None ->
            if early then positive_cycle ~early:false graph ~lambda ~eps
            else None)
  end

let cycle_ratio_of edges =
  let weight = List.fold_left (fun acc e -> acc +. e.Digraph.weight) 0.0 edges in
  let tokens = List.fold_left (fun acc e -> acc + e.Digraph.tokens) 0 edges in
  if tokens = 0 then raise Unbounded;
  weight /. float_of_int tokens

(* Some cycle of the graph, used as the witness when the max ratio is 0. *)
let any_cycle graph =
  let n = Digraph.n_nodes graph in
  let state = Array.make n 0 in
  (* 0 unvisited, 1 on stack, 2 done *)
  let found = ref None in
  let rec visit path v =
    if !found = None then begin
      state.(v) <- 1;
      List.iter
        (fun e ->
          if !found = None then
            let w = e.Digraph.dst in
            if state.(w) = 1 then begin
              let rec unwind acc = function
                | [] -> acc
                | e' :: rest ->
                    if e'.Digraph.src = w then e' :: acc else unwind (e' :: acc) rest
              in
              found := Some (unwind [] (e :: path))
            end
            else if state.(w) = 0 then visit (e :: path) w)
        (Digraph.out_edges graph v);
      state.(v) <- 2
    end
  in
  let v = ref 0 in
  while !found = None && !v < n do
    if state.(!v) = 0 then visit [] !v;
    incr v
  done;
  !found

let max_cycle_ratio graph =
  if not (Digraph.zero_token_acyclic graph) then raise Unbounded;
  let scale =
    List.fold_left (fun acc e -> max acc (abs_float e.Digraph.weight)) 1.0 (Digraph.edges graph)
  in
  let eps = 1e-9 *. scale in
  match positive_cycle graph ~lambda:0.0 ~eps with
  | None -> (
      match any_cycle graph with
      | None -> None
      | Some cycle -> Some { ratio = 0.0; cycle })
  | Some first_cycle ->
      let hi =
        1.0
        +. List.fold_left
             (fun acc e -> acc +. max 0.0 e.Digraph.weight)
             0.0 (Digraph.edges graph)
      in
      (* Invariant: a positive cycle exists at [lo], none at [hi]. *)
      let rec search lo hi witness iterations =
        if iterations = 0 || hi -. lo <= 1e-12 *. scale then (lo, witness)
        else
          let mid = 0.5 *. (lo +. hi) in
          match positive_cycle graph ~lambda:mid ~eps with
          | Some cycle -> search mid hi cycle (iterations - 1)
          | None -> search lo mid witness (iterations - 1)
      in
      let _, witness = search 0.0 hi first_cycle 200 in
      (* Snap to the exact ratio of the witness cycle, then keep improving
         while a strictly better cycle exists. *)
      let rec improve cycle =
        let r = cycle_ratio_of cycle in
        match positive_cycle graph ~lambda:r ~eps with
        | None -> { ratio = r; cycle }
        | Some better -> if cycle_ratio_of better > r then improve better else { ratio = r; cycle }
      in
      Some (improve witness)

let karp_max_cycle_mean graph =
  let n = Digraph.n_nodes graph in
  if n = 0 then None
  else begin
    let d = Array.make_matrix (n + 1) n neg_infinity in
    for v = 0 to n - 1 do
      d.(0).(v) <- 0.0
    done;
    let all_edges = Digraph.edges graph in
    for k = 1 to n do
      List.iter
        (fun e ->
          let src = e.Digraph.src and dst = e.Digraph.dst in
          if d.(k - 1).(src) > neg_infinity then begin
            let candidate = d.(k - 1).(src) +. e.Digraph.weight in
            if candidate > d.(k).(dst) then d.(k).(dst) <- candidate
          end)
        all_edges
    done;
    let best = ref neg_infinity in
    for v = 0 to n - 1 do
      if d.(n).(v) > neg_infinity then begin
        let worst = ref infinity in
        for k = 0 to n - 1 do
          if d.(k).(v) > neg_infinity then begin
            let mean = (d.(n).(v) -. d.(k).(v)) /. float_of_int (n - k) in
            if mean < !worst then worst := mean
          end
        done;
        if !worst > !best then best := !worst
      end
    done;
    if !best = neg_infinity then None else Some !best
  end
