(** Directed graphs with weighted, token-carrying edges.

    This is the graph view of a timed event graph: nodes are transitions,
    edges are places; an edge carries the firing duration accounted to the
    cycle ([weight]) and the number of initial tokens of the place. *)

type edge = { src : int; dst : int; weight : float; tokens : int; tag : int }
(** [tag] is an opaque client label (e.g. the place index in a Petri net). *)

type t

val create : int -> t
(** [create n] is an empty graph over nodes [0..n-1]. *)

val add_edge : t -> ?tag:int -> src:int -> dst:int -> weight:float -> tokens:int -> unit -> unit
val n_nodes : t -> int
val n_edges : t -> int
val edges : t -> edge list
(** All edges, in insertion order. *)

val out_edges : t -> int -> edge list
val succ : t -> int -> int list

val topological_order : t -> int list option
(** Kahn's algorithm; [None] if the graph has a cycle.  Token counts are
    ignored (every edge is a constraint). *)

val zero_token_acyclic : t -> bool
(** Whether the subgraph of edges with zero tokens is acyclic — the
    liveness precondition for a timed event graph to execute at all. *)

val sccs : t -> int list list
(** Strongly connected components (Tarjan), in reverse topological order.
    Singleton components without a self-loop are included. *)

val reachable : t -> int -> bool array
(** [reachable g v] marks every node reachable from [v] (including [v]). *)
