(* Policy iteration (Howard) for the maximum cycle ratio, run per strongly
   connected component.  After the zero-token-acyclicity pre-check, every
   cycle carries at least one token, so all ratios are finite. *)

let max_cycle_ratio graph =
  if not (Digraph.zero_token_acyclic graph) then raise Cycle_ratio.Unbounded;
  let n = Digraph.n_nodes graph in
  let scale =
    List.fold_left (fun acc e -> max acc (abs_float e.Digraph.weight)) 1.0 (Digraph.edges graph)
  in
  let tol = 1e-10 *. scale in
  let component_of = Array.make n (-1) in
  List.iteri (fun c nodes -> List.iter (fun u -> component_of.(u) <- c) nodes)
    (Digraph.sccs graph);
  let best = ref None in
  let record lambda = match !best with Some b when b >= lambda -> () | _ -> best := Some lambda in
  let solve_component nodes =
    match nodes with
    | [] -> ()
    | [ u ] when not (List.exists (fun e -> e.Digraph.dst = u) (Digraph.out_edges graph u)) ->
        () (* trivial SCC without self loop: no cycle *)
    | _ ->
        let members = Array.of_list nodes in
        let local = Hashtbl.create (Array.length members) in
        Array.iteri (fun i u -> Hashtbl.add local u i) members;
        let k = Array.length members in
        let out_edges =
          Array.map
            (fun u ->
              List.filter
                (fun e -> component_of.(e.Digraph.dst) = component_of.(u))
                (Digraph.out_edges graph u)
              |> Array.of_list)
            members
        in
        (* policy: index of the chosen edge in out_edges.(i) *)
        let policy = Array.make k 0 in
        let lambda = Array.make k neg_infinity in
        let value = Array.make k 0.0 in
        let succ i =
          let e = out_edges.(i).(policy.(i)) in
          Hashtbl.find local e.Digraph.dst
        in
        let edge_cost lam e =
          e.Digraph.weight -. (lam *. float_of_int e.Digraph.tokens)
        in
        let evaluate () =
          (* find the cycles of the functional policy graph, set lambda and
             propagate values backward *)
          let state = Array.make k 0 in
          (* 0 unseen, 1 on path, 2 done *)
          let settled = Array.make k false in
          let rec walk path i =
            if state.(i) = 1 then begin
              (* found a new cycle: unwind [path] back to i *)
              let rec cycle acc = function
                | [] -> acc
                | j :: rest -> if j = i then i :: acc else cycle (j :: acc) rest
              in
              let cycle_nodes = cycle [] path in
              let weight = ref 0.0 and tokens = ref 0 in
              List.iter
                (fun j ->
                  let e = out_edges.(j).(policy.(j)) in
                  weight := !weight +. e.Digraph.weight;
                  tokens := !tokens + e.Digraph.tokens)
                cycle_nodes;
              let lam = !weight /. float_of_int !tokens in
              (* values around the cycle: root gets 0, then propagate
                 backward along the cycle order *)
              let arr = Array.of_list cycle_nodes in
              let len = Array.length arr in
              value.(arr.(0)) <- 0.0;
              lambda.(arr.(0)) <- lam;
              settled.(arr.(0)) <- true;
              for idx = len - 1 downto 1 do
                let j = arr.(idx) in
                let e = out_edges.(j).(policy.(j)) in
                value.(j) <- edge_cost lam e +. value.(arr.((idx + 1) mod len));
                lambda.(j) <- lam;
                settled.(j) <- true
              done
            end
            else if state.(i) = 0 then begin
              state.(i) <- 1;
              walk (i :: path) (succ i);
              state.(i) <- 2;
              if not settled.(i) then begin
                let j = succ i in
                let e = out_edges.(i).(policy.(i)) in
                lambda.(i) <- lambda.(j);
                value.(i) <- edge_cost lambda.(j) e +. value.(j);
                settled.(i) <- true
              end
            end
          in
          for i = 0 to k - 1 do
            if state.(i) = 0 then walk [] i
          done
        in
        let improve () =
          let changed = ref false in
          for i = 0 to k - 1 do
            Array.iteri
              (fun ei e ->
                if ei <> policy.(i) then begin
                  let j = Hashtbl.find local e.Digraph.dst in
                  let better_ratio = lambda.(j) > lambda.(i) +. tol in
                  let equal_ratio = abs_float (lambda.(j) -. lambda.(i)) <= tol in
                  let better_value =
                    equal_ratio && edge_cost lambda.(i) e +. value.(j) > value.(i) +. tol
                  in
                  if better_ratio || better_value then begin
                    policy.(i) <- ei;
                    changed := true
                  end
                end)
              out_edges.(i)
          done;
          !changed
        in
        let rec iterate budget =
          evaluate ();
          if budget > 0 && improve () then iterate (budget - 1)
        in
        iterate (4 * k * k);
        Array.iter (fun lam -> if lam > neg_infinity then record lam) lambda
  in
  List.iter solve_component (Digraph.sccs graph);
  !best
