(** Howard's policy iteration for the maximum cycle ratio.

    An independent (and typically faster) alternative to the parametric
    search of {!Cycle_ratio}: maintain one outgoing edge per node (a
    "policy"), evaluate the cycles of the policy graph, and switch a
    node's edge whenever a neighbour offers a better ratio — or an equal
    ratio with a better potential.  Used both as a production solver and
    as a cross-check of {!Cycle_ratio.max_cycle_ratio} in the test suite.

    Restrictions: as in {!Cycle_ratio}, a cycle with positive weight and
    no token makes the ratio infinite ({!Cycle_ratio.Unbounded}). *)

val max_cycle_ratio : Digraph.t -> float option
(** [None] when the graph is acyclic.  Raises {!Cycle_ratio.Unbounded} on
    a zero-token positive-weight cycle. *)
