(** Maximum cycle ratio of a weighted, token-carrying digraph.

    For a timed event graph, the steady-state period is
    max over cycles C of (sum of firing times on C) / (sum of tokens on C)
    (Baccelli et al., "Synchronization and Linearity").  This module solves
    that maximisation with Lawler's parametric search — λ is feasible iff
    the reweighted graph (weight − λ·tokens) has no positive cycle — and
    snaps the binary-search answer to the exact rational ratio of a witness
    cycle. *)

exception Unbounded
(** Raised when a cycle carries positive weight but no token: the event
    graph is not live and the ratio is +∞. *)

type result = {
  ratio : float;  (** the maximum cycle ratio *)
  cycle : Digraph.edge list;  (** a critical cycle achieving it *)
}

val max_cycle_ratio : Digraph.t -> result option
(** [None] when the graph has no cycle at all.  Raises {!Unbounded} if a
    zero-token cycle with positive weight exists. *)

val karp_max_cycle_mean : Digraph.t -> float option
(** Karp's algorithm for the maximum cycle *mean* (every edge counted as
    one token); used as an independent cross-check when all edges carry
    exactly one token. [None] when acyclic. *)
