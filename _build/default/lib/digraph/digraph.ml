type edge = { src : int; dst : int; weight : float; tokens : int; tag : int }

type t = { n : int; mutable edge_list : edge list; mutable count : int; out_adj : edge list array }

let create n = { n; edge_list = []; count = 0; out_adj = Array.make n [] }

let add_edge g ?(tag = -1) ~src ~dst ~weight ~tokens () =
  if src < 0 || src >= g.n || dst < 0 || dst >= g.n then
    invalid_arg "Digraph.add_edge: node out of range";
  if tokens < 0 then invalid_arg "Digraph.add_edge: negative tokens";
  let e = { src; dst; weight; tokens; tag } in
  g.edge_list <- e :: g.edge_list;
  g.count <- g.count + 1;
  g.out_adj.(src) <- e :: g.out_adj.(src)

let n_nodes g = g.n
let n_edges g = g.count
let edges g = List.rev g.edge_list
let out_edges g v = g.out_adj.(v)
let succ g v = List.map (fun e -> e.dst) g.out_adj.(v)

let topological_order_filtered g keep =
  let indeg = Array.make g.n 0 in
  List.iter (fun e -> if keep e then indeg.(e.dst) <- indeg.(e.dst) + 1) g.edge_list;
  let queue = Queue.create () in
  for v = 0 to g.n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    incr seen;
    order := v :: !order;
    List.iter
      (fun e ->
        if keep e then begin
          indeg.(e.dst) <- indeg.(e.dst) - 1;
          if indeg.(e.dst) = 0 then Queue.add e.dst queue
        end)
      g.out_adj.(v)
  done;
  if !seen = g.n then Some (List.rev !order) else None

let topological_order g = topological_order_filtered g (fun _ -> true)
let zero_token_acyclic g = topological_order_filtered g (fun e -> e.tokens = 0) <> None

let sccs g =
  (* Tarjan; recursion depth is bounded by the number of transitions, which
     stays in the thousands for the TPNs built here. *)
  let index = Array.make g.n (-1) in
  let lowlink = Array.make g.n 0 in
  let on_stack = Array.make g.n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let components = ref [] in
  let rec strong_connect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun e ->
        let w = e.dst in
        if index.(w) = -1 then begin
          strong_connect w;
          if lowlink.(w) < lowlink.(v) then lowlink.(v) <- lowlink.(w)
        end
        else if on_stack.(w) && index.(w) < lowlink.(v) then lowlink.(v) <- index.(w))
      g.out_adj.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  for v = 0 to g.n - 1 do
    if index.(v) = -1 then strong_connect v
  done;
  !components

let reachable g v =
  let seen = Array.make g.n false in
  let rec visit u =
    if not seen.(u) then begin
      seen.(u) <- true;
      List.iter (fun e -> visit e.dst) g.out_adj.(u)
    end
  in
  visit v;
  seen
