(** Transient analysis of a CTMC by uniformisation.

    Complements the stationary analysis of §5: the paper's §7.2/§7.3 study
    how many data sets a *simulation* must process before the throughput
    estimate converges; uniformisation answers the same question exactly
    for chains small enough to build — the expected number of completions
    in a finite horizon, not just the stationary rate. *)

val distribution : ?tol:float -> Ctmc.t -> initial:int -> horizon:float -> float array
(** State distribution at time [horizon], starting from [initial].
    [tol] (default 1e-12) bounds the truncation error of the Poisson
    series. *)

val occupancy : ?tol:float -> Ctmc.t -> initial:int -> horizon:float -> float array
(** Expected time spent in each state during [0, horizon]; entries sum to
    [horizon] (up to [tol]). *)
