lib/ctmc/tpn_markov_ph.ml: Array Ctmc Graphs Hashtbl List Marking Petrinet Ph Printf Queue Teg
