lib/ctmc/ph.ml: Array Linalg List
