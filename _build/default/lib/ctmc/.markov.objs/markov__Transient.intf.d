lib/ctmc/transient.mli: Ctmc
