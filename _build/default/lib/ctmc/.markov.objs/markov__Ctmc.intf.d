lib/ctmc/ctmc.mli:
