lib/ctmc/ctmc.ml: Array Hashtbl Linalg Option
