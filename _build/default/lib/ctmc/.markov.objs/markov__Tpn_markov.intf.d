lib/ctmc/tpn_markov.mli: Petrinet
