lib/ctmc/transient.ml: Array Ctmc List
