lib/ctmc/tpn_markov_ph.mli: Petrinet Ph
