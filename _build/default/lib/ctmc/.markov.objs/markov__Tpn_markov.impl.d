lib/ctmc/tpn_markov.ml: Array Ctmc Graphs Hashtbl List Marking Petrinet Printf Teg Transient
