lib/ctmc/ph.mli:
