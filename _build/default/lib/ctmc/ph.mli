(** Continuous phase-type (PH) distributions.

    A PH law is the absorption time of a small CTMC: initial distribution
    [initial] over transient phases, inter-phase rates [jump], absorption
    rate [exit] from each phase.  PH laws are dense in the distributions
    on [0,∞) and close the gap between the exact exponential analysis and
    arbitrary laws: Erlang (low variance, N.B.U.E.) and hyperexponential
    (high variance, D.F.R.) are the two canonical families. *)

type t = {
  initial : float array;  (** sums to 1 *)
  jump : float array array;  (** jump.(i).(j), i ≠ j, ≥ 0 *)
  exit : float array;  (** absorption rate from each phase, ≥ 0 *)
}

val validate : t -> (unit, string) result
val n_phases : t -> int

val exponential : rate:float -> t
val erlang : phases:int -> rate:float -> t
(** [phases] stages of rate [rate] each: mean phases/rate. *)

val hyperexponential : (float * float) list -> t
(** [(probability, rate)] branches; probabilities must sum to 1.  A
    mixture of exponentials is D.F.R., hence *not* N.B.U.E.: its exact
    throughput can fall below the exponential bound of Theorem 7. *)

val coxian : (float * float) list -> t
(** Stages [(rate, continue probability)]: after stage i, continue to
    stage i+1 with the given probability, absorb otherwise (the last
    stage's continuation must be 0). *)

val mean : t -> float
(** Expected absorption time (solves the linear system (−T)·m = 1). *)

val scv : t -> float
(** Squared coefficient of variation Var/mean². *)

val with_mean : t -> float -> t
(** Rescale all rates so that the mean becomes the given value. *)
