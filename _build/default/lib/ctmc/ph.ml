type t = { initial : float array; jump : float array array; exit : float array }

let n_phases t = Array.length t.initial

let validate t =
  let n = n_phases t in
  if Array.length t.exit <> n || Array.length t.jump <> n then Error "dimension mismatch"
  else if Array.exists (fun row -> Array.length row <> n) t.jump then Error "jump not square"
  else if abs_float (Array.fold_left ( +. ) 0.0 t.initial -. 1.0) > 1e-9 then
    Error "initial distribution must sum to 1"
  else if Array.exists (fun p -> p < 0.0) t.initial then Error "negative initial probability"
  else if Array.exists (fun r -> r < 0.0) t.exit then Error "negative exit rate"
  else if Array.exists (Array.exists (fun r -> r < 0.0)) t.jump then Error "negative jump rate"
  else begin
    let dead = ref false in
    for i = 0 to n - 1 do
      let total = t.exit.(i) +. Array.fold_left ( +. ) 0.0 t.jump.(i) -. t.jump.(i).(i) in
      if total <= 0.0 then dead := true
    done;
    if !dead then Error "a phase has no outgoing rate" else Ok ()
  end

let check t = match validate t with Ok () -> t | Error msg -> invalid_arg ("Ph: " ^ msg)

let exponential ~rate =
  if rate <= 0.0 then invalid_arg "Ph.exponential: rate must be positive";
  check { initial = [| 1.0 |]; jump = [| [| 0.0 |] |]; exit = [| rate |] }

let erlang ~phases ~rate =
  if phases < 1 then invalid_arg "Ph.erlang: need at least one phase";
  if rate <= 0.0 then invalid_arg "Ph.erlang: rate must be positive";
  let jump =
    Array.init phases (fun i ->
        Array.init phases (fun j -> if j = i + 1 then rate else 0.0))
  in
  let exit = Array.init phases (fun i -> if i = phases - 1 then rate else 0.0) in
  let initial = Array.init phases (fun i -> if i = 0 then 1.0 else 0.0) in
  check { initial; jump; exit }

let hyperexponential branches =
  let n = List.length branches in
  if n = 0 then invalid_arg "Ph.hyperexponential: no branches";
  let initial = Array.of_list (List.map fst branches) in
  let exit = Array.of_list (List.map snd branches) in
  check { initial; jump = Array.make_matrix n n 0.0; exit }

let coxian stages =
  let n = List.length stages in
  if n = 0 then invalid_arg "Ph.coxian: no stages";
  let rates = Array.of_list (List.map fst stages) in
  let continue = Array.of_list (List.map snd stages) in
  if continue.(n - 1) <> 0.0 then invalid_arg "Ph.coxian: last stage must absorb";
  Array.iter
    (fun p -> if p < 0.0 || p > 1.0 then invalid_arg "Ph.coxian: bad continue probability")
    continue;
  let jump =
    Array.init n (fun i ->
        Array.init n (fun j -> if j = i + 1 then rates.(i) *. continue.(i) else 0.0))
  in
  let exit = Array.init n (fun i -> rates.(i) *. (1.0 -. continue.(i))) in
  let initial = Array.init n (fun i -> if i = 0 then 1.0 else 0.0) in
  check { initial; jump; exit }

(* first and second moments of the absorption time: m1 = (-T)^-1 1 and
   m2 = 2 (-T)^-2 1, with T the transient generator *)
let moments t =
  let n = n_phases t in
  let neg_t =
    Array.init n (fun i ->
        Array.init n (fun j ->
            if i = j then t.exit.(i) +. Array.fold_left ( +. ) 0.0 t.jump.(i) -. t.jump.(i).(i)
            else -.t.jump.(i).(j)))
  in
  let ones = Array.make n 1.0 in
  let m1 = Linalg.Matrix.solve neg_t ones in
  let m2_half = Linalg.Matrix.solve neg_t m1 in
  let dot v = Array.fold_left ( +. ) 0.0 (Array.mapi (fun i a -> a *. v.(i)) t.initial) in
  (dot m1, 2.0 *. dot m2_half)

let mean t = fst (moments t)

let scv t =
  let m1, m2 = moments t in
  (m2 -. (m1 *. m1)) /. (m1 *. m1)

let with_mean t target =
  if target <= 0.0 then invalid_arg "Ph.with_mean: mean must be positive";
  let factor = mean t /. target in
  {
    initial = Array.copy t.initial;
    jump = Array.map (Array.map (fun r -> r *. factor)) t.jump;
    exit = Array.map (fun r -> r *. factor) t.exit;
  }
