type t =
  | Deterministic of float
  | Exponential of float
  | Uniform of float * float
  | Normal_trunc of float * float
  | Gamma of float * float
  | Beta of float * float * float
  | Erlang of int * float
  | Weibull of float * float
  | Hyperexp of (float * float) list

let gamma_fn =
  (* Lanczos approximation, g = 7; accurate to ~15 digits for x > 0. *)
  let coefficients =
    [|
      0.99999999999980993; 676.5203681218851; -1259.1392167224028; 771.32342877765313;
      -176.61502916214059; 12.507343278686905; -0.13857109526572012; 9.9843695780195716e-6;
      1.5056327351493116e-7;
    |]
  in
  let rec gamma x =
    if x < 0.5 then Float.pi /. (sin (Float.pi *. x) *. gamma (1.0 -. x))
    else
      let x = x -. 1.0 in
      let a = ref coefficients.(0) in
      let t = x +. 7.5 in
      for i = 1 to 8 do
        a := !a +. (coefficients.(i) /. (x +. float_of_int i))
      done;
      sqrt (2.0 *. Float.pi) *. (t ** (x +. 0.5)) *. exp (-.t) *. !a
  in
  gamma

let mean = function
  | Deterministic v -> v
  | Exponential rate -> 1.0 /. rate
  | Uniform (a, b) -> (a +. b) /. 2.0
  | Normal_trunc (mu, _) -> mu
  | Gamma (shape, scale) -> shape *. scale
  | Beta (alpha, beta, c) -> c *. alpha /. (alpha +. beta)
  | Erlang (k, rate) -> float_of_int k /. rate
  | Weibull (shape, scale) -> scale *. gamma_fn (1.0 +. (1.0 /. shape))
  | Hyperexp branches -> List.fold_left (fun acc (p, r) -> acc +. (p /. r)) 0.0 branches

let variance = function
  | Deterministic _ -> 0.0
  | Exponential rate -> 1.0 /. (rate *. rate)
  | Uniform (a, b) -> (b -. a) ** 2.0 /. 12.0
  | Normal_trunc (_, sigma) -> sigma *. sigma
  | Gamma (shape, scale) -> shape *. scale *. scale
  | Beta (alpha, beta, c) ->
      let s = alpha +. beta in
      c *. c *. alpha *. beta /. (s *. s *. (s +. 1.0))
  | Erlang (k, rate) -> float_of_int k /. (rate *. rate)
  | Weibull (shape, scale) ->
      let g1 = gamma_fn (1.0 +. (1.0 /. shape)) in
      let g2 = gamma_fn (1.0 +. (2.0 /. shape)) in
      scale *. scale *. (g2 -. (g1 *. g1))
  | Hyperexp branches ->
      let m1 = List.fold_left (fun acc (p, r) -> acc +. (p /. r)) 0.0 branches in
      let m2 = List.fold_left (fun acc (p, r) -> acc +. (2.0 *. p /. (r *. r))) 0.0 branches in
      m2 -. (m1 *. m1)

let is_nbue = function
  | Deterministic _ -> true
  | Exponential _ -> true
  | Uniform (a, _) -> a >= 0.0
  | Normal_trunc _ -> true
  | Gamma (shape, _) -> shape >= 1.0
  | Beta (alpha, _, _) -> alpha >= 1.0
  | Erlang _ -> true
  | Weibull (shape, _) -> shape >= 1.0
  | Hyperexp branches ->
      (* a nondegenerate mixture of exponentials is strictly D.F.R. *)
      List.length (List.sort_uniq compare (List.map snd branches)) <= 1

let sample_exponential rate g = -.log (Prng.float_pos g) /. rate

let sample_normal mu sigma g =
  (* Box-Muller; one value per call keeps the stream reproducible. *)
  let u1 = Prng.float_pos g and u2 = Prng.float g in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

(* Marsaglia-Tsang squeeze for shape >= 1; the shape < 1 case uses the
   standard boost Gamma(k) = Gamma(k+1) * U^(1/k). *)
let rec sample_gamma shape scale g =
  if shape < 1.0 then
    let boost = Prng.float_pos g ** (1.0 /. shape) in
    boost *. sample_gamma (shape +. 1.0) scale g
  else
    let d = shape -. (1.0 /. 3.0) in
    let c = 1.0 /. sqrt (9.0 *. d) in
    let rec draw () =
      let x = sample_normal 0.0 1.0 g in
      let v = (1.0 +. (c *. x)) ** 3.0 in
      if v <= 0.0 then draw ()
      else
        let u = Prng.float_pos g in
        let x2 = x *. x in
        if u < 1.0 -. (0.0331 *. x2 *. x2) then d *. v
        else if log u < (0.5 *. x2) +. (d *. (1.0 -. v +. log v)) then d *. v
        else draw ()
    in
    scale *. draw ()

let sample law g =
  match law with
  | Deterministic v -> v
  | Exponential rate -> sample_exponential rate g
  | Uniform (a, b) -> Prng.uniform g a b
  | Normal_trunc (mu, sigma) ->
      let rec positive () =
        let x = sample_normal mu sigma g in
        if x > 0.0 then x else positive ()
      in
      positive ()
  | Gamma (shape, scale) -> sample_gamma shape scale g
  | Beta (alpha, beta, c) ->
      let x = sample_gamma alpha 1.0 g in
      let y = sample_gamma beta 1.0 g in
      c *. x /. (x +. y)
  | Erlang (k, rate) ->
      let acc = ref 0.0 in
      for _ = 1 to k do
        acc := !acc +. sample_exponential rate g
      done;
      !acc
  | Weibull (shape, scale) -> scale *. ((-.log (Prng.float_pos g)) ** (1.0 /. shape))
  | Hyperexp branches ->
      let u = Prng.float g in
      let rec pick acc = function
        | [] -> invalid_arg "Dist.sample: hyperexponential probabilities do not sum to 1"
        | [ (_, rate) ] -> sample_exponential rate g
        | (p, rate) :: rest -> if u < acc +. p then sample_exponential rate g else pick (acc +. p) rest
      in
      pick 0.0 branches

let exponential_of_mean m =
  if m <= 0.0 then invalid_arg "Dist.exponential_of_mean: mean must be positive";
  Exponential (1.0 /. m)

let scale law c =
  if c <= 0.0 then invalid_arg "Dist.scale: factor must be positive";
  match law with
  | Deterministic v -> Deterministic (v *. c)
  | Exponential rate -> Exponential (rate /. c)
  | Uniform (a, b) -> Uniform (a *. c, b *. c)
  | Normal_trunc (mu, sigma) -> Normal_trunc (mu *. c, sigma *. c)
  | Gamma (shape, s) -> Gamma (shape, s *. c)
  | Beta (alpha, beta, s) -> Beta (alpha, beta, s *. c)
  | Erlang (k, rate) -> Erlang (k, rate /. c)
  | Weibull (shape, s) -> Weibull (shape, s *. c)
  | Hyperexp branches -> Hyperexp (List.map (fun (p, r) -> (p, r /. c)) branches)

let with_mean law m =
  if m <= 0.0 then invalid_arg "Dist.with_mean: mean must be positive";
  match law with
  | Normal_trunc (_, sigma) -> Normal_trunc (m, sigma)
  | _ ->
      let current = mean law in
      if current <= 0.0 then invalid_arg "Dist.with_mean: law has non-positive mean";
      scale law (m /. current)

let pp ppf = function
  | Deterministic v -> Format.fprintf ppf "Cst(%g)" v
  | Exponential rate -> Format.fprintf ppf "Exp(rate=%g)" rate
  | Uniform (a, b) -> Format.fprintf ppf "Unif[%g,%g]" a b
  | Normal_trunc (mu, sigma) -> Format.fprintf ppf "Gauss(mu=%g,sigma=%g)" mu sigma
  | Gamma (shape, s) -> Format.fprintf ppf "Gamma(k=%g,theta=%g)" shape s
  | Beta (alpha, beta, c) -> Format.fprintf ppf "Beta(%g,%g)x%g" alpha beta c
  | Erlang (k, rate) -> Format.fprintf ppf "Erlang(k=%d,rate=%g)" k rate
  | Weibull (shape, s) -> Format.fprintf ppf "Weibull(k=%g,lambda=%g)" shape s
  | Hyperexp branches ->
      Format.fprintf ppf "Hyperexp(";
      List.iteri
        (fun i (p, r) -> Format.fprintf ppf "%s%g@@%g" (if i > 0 then "," else "") p r)
        branches;
      Format.fprintf ppf ")"

let to_string law = Format.asprintf "%a" pp law
