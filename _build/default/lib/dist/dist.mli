(** Random laws for computation and communication times.

    These are the laws exercised by the paper's experimental section (§7):
    constant, exponential, uniform, (truncated) normal — "Gauss X" —, beta,
    gamma, plus Erlang and Weibull for wider N.B.U.E. coverage.  Every law
    knows its mean, its variance and whether it is N.B.U.E. (New Better than
    Used in Expectation), the hypothesis under which Theorem 7 sandwiches the
    throughput between the exponential and the deterministic cases. *)

type t =
  | Deterministic of float  (** constant time *)
  | Exponential of float  (** rate λ; mean 1/λ *)
  | Uniform of float * float  (** uniform on [a, b], 0 ≤ a ≤ b *)
  | Normal_trunc of float * float
      (** normal(μ, σ) resampled until positive; for μ ≫ σ the truncation
          bias is negligible, matching the paper's "Gauss X" laws *)
  | Gamma of float * float  (** shape k > 0, scale θ > 0; mean kθ *)
  | Beta of float * float * float  (** α, β, scale c: the law of c·Beta(α,β) *)
  | Erlang of int * float  (** k ≥ 1 exponential phases of rate λ; mean k/λ *)
  | Weibull of float * float  (** shape k > 0, scale λ > 0 *)
  | Hyperexp of (float * float) list
      (** mixture of exponentials, [(probability, rate)] branches summing
          to probability 1; D.F.R. (hence not N.B.U.E.) whenever two
          branches have distinct rates *)

val mean : t -> float
val variance : t -> float

val is_nbue : t -> bool
(** Whether the law has the N.B.U.E. property.  Constant, exponential,
    uniform (on a non-negative support), truncated normal, Erlang,
    Gamma/Weibull with shape ≥ 1 and Beta with α ≥ 1 are N.B.U.E.;
    Gamma/Weibull with shape < 1 are D.F.R. hence not N.B.U.E. (strict). *)

val sample : t -> Prng.t -> float
(** Draw one value; always ≥ 0 (and > 0 for continuous laws). *)

val exponential_of_mean : float -> t
(** Exponential law with the given mean. *)

val with_mean : t -> float -> t
(** [with_mean d m] rescales [d] so that its mean becomes [m] (shape
    parameters are preserved; for [Normal_trunc] only μ moves).  Raises
    [Invalid_argument] if [m <= 0]. *)

val scale : t -> float -> t
(** [scale d c] is the law of c*X for X ~ d ([Normal_trunc] scales both μ
    and σ). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
