type verdict = Bounded | Possibly_unbounded of int list

let scc_ids teg =
  let graph = Teg.to_digraph teg in
  let ids = Array.make (Teg.n_transitions teg) (-1) in
  List.iteri (fun c nodes -> List.iter (fun v -> ids.(v) <- c) nodes) (Graphs.Digraph.sccs graph);
  ids

(* a place lies on a cycle iff its two endpoint transitions belong to the
   same strongly connected component *)
let boundedness teg =
  let ids = scc_ids teg in
  let uncovered = ref [] in
  List.iteri
    (fun index p -> if ids.(p.Teg.src) <> ids.(p.Teg.dst) then uncovered := index :: !uncovered)
    (Teg.places teg);
  match !uncovered with [] -> Bounded | l -> Possibly_unbounded (List.rev l)

let is_cycle teg = function
  | [] -> false
  | first :: _ as indices ->
      let rec chained = function
        | [] -> true
        | [ last ] -> (Teg.place teg last).Teg.dst = (Teg.place teg first).Teg.src
        | p :: (q :: _ as rest) -> (Teg.place teg p).Teg.dst = (Teg.place teg q).Teg.src && chained rest
      in
      chained indices

let tokens_on teg indices marking =
  List.fold_left
    (fun acc index ->
      if index < 0 || index >= Teg.n_places teg then invalid_arg "Structural.tokens_on: bad place"
      else acc + marking.(index))
    0 indices
