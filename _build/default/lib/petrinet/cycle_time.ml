type analysis = { period : float; critical : Graphs.Digraph.edge list }

let analyse teg =
  match Graphs.Cycle_ratio.max_cycle_ratio (Teg.to_digraph teg) with
  | None -> None
  | Some { Graphs.Cycle_ratio.ratio; cycle } -> Some { period = ratio; critical = cycle }

let period teg = match analyse teg with None -> 0.0 | Some a -> a.period

let maxplus_period_estimate ?(iterations = 600) teg =
  let a0, a1 = Teg.to_maxplus teg in
  let a = Maxplus.mul (Maxplus.star a0) a1 in
  let x0 = Array.make (Teg.n_transitions teg) Maxplus.zero in
  Maxplus.cycle_time ~iterations a x0
