(** Markings of a timed event graph and reachability exploration.

    A marking assigns a token count to every place.  This is the state
    space on which §5.1's general method builds its Markov chain: under
    exponential firing times the marking process is a CTMC. *)

type t = int array
(** Token count per place, indexed like [Teg.place]. *)

val initial : Teg.t -> t
val equal : t -> t -> bool
val hash : t -> int

val enabled : Teg.t -> t -> int list
(** Transitions whose every input place holds at least one token, in
    increasing index order. *)

val is_enabled : Teg.t -> t -> int -> bool

val fire : Teg.t -> t -> int -> t
(** [fire teg m v] consumes one token from each input place of [v] and
    produces one in each output place.  Raises [Invalid_argument] if [v] is
    not enabled. *)

exception Capacity_exceeded of int
(** Raised by {!explore} when more markings than the cap are reachable. *)

val explore : ?cap:int -> Teg.t -> t array
(** Breadth-first enumeration of the reachable markings, starting from the
    initial one (index 0 of the result).  [cap] (default 200_000) bounds
    the exploration; exceeding it raises {!Capacity_exceeded} — which is
    the signature of a token-unbounded net such as the full Overlap TPN. *)
