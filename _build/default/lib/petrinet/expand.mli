(** Phase-type expansion of a timed event graph.

    An Erlang-k firing time is a chain of k exponential phases; replacing
    a transition by k serial transitions (with 0-token places between the
    phases) preserves the event-graph property, so the exponential
    machinery — marking CTMC, stationary analysis — applies *exactly* to
    Erlang-distributed operation times.  As k grows the law concentrates
    on its mean: the expanded analysis interpolates between the
    exponential (k = 1) and deterministic (k → ∞) bounds of Theorem 7. *)

type t

val erlang : phases:(int -> int) -> Teg.t -> t
(** [erlang ~phases teg] expands transition [v] into [phases v >= 1]
    serial phases.  The nominal duration of each phase is
    [Teg.time teg v / phases v], so the expanded net preserves both the
    deterministic schedule and, when phases fire at exponential rate
    [phases v / time v], the mean of every original firing time. *)

val teg : t -> Teg.t
(** The expanded net. *)

val first : t -> int -> int
(** Expanded id of the first phase of an original transition. *)

val last : t -> int -> int
(** Expanded id of the last phase — its firings are the completions of
    the original transition. *)

val phase_rates : t -> original_rate:(int -> float) -> int -> float
(** Rate of an expanded transition so that the original transition's
    total firing time is Erlang([phases], [phases] x original rate) with
    the original mean: phase rate = phases(v) * original_rate(v). *)

val original : t -> int -> int
(** The original transition an expanded phase belongs to. *)
